package subseq_test

import (
	"fmt"

	subseq "repro"
)

// The longest similar subsequence (query Type II): the query and the
// database sequence disagree globally but share a long local region.
func ExampleMatcher_longest() {
	db := []subseq.Sequence[byte]{
		subseq.Sequence[byte]("NNNNNNNNTHECATSATONTHEMATNNNNNNN"),
	}
	q := subseq.Sequence[byte]("ZZZZTHECATSATONTHEMATZZZZ")
	matcher, err := subseq.NewMatcher(
		subseq.LevenshteinMeasure[byte](),
		subseq.Config{Params: subseq.Params{Lambda: 8, Lambda0: 1}},
		db,
	)
	if err != nil {
		panic(err)
	}
	m, _ := matcher.Longest(q, 0)
	fmt.Printf("%s\n", q[m.QStart:m.QEnd])
	// Output: THECATSATONTHEMAT
}

// The reference net as a standalone metric index: range and k-NN queries
// over scalar data.
func ExampleRefNet() {
	net := subseq.NewRefNet(subseq.AbsDiff)
	for _, v := range []float64{1, 2, 3, 10, 11, 30} {
		net.Insert(v)
	}
	in := net.Range(2, 1) // everything within 1 of 2
	fmt.Println(len(in))
	nn := net.KNN(12, 2)
	fmt.Printf("%.0f %.0f\n", nn[0].Item, nn[1].Item)
	// Output:
	// 3
	// 11 10
}

// Verifying the paper's consistency property (Definition 1) on a pair of
// sequences: every subsequence of X has a counterpart in Q at no greater
// distance than δ(Q,X).
func ExampleConsistentOn() {
	dfd := subseq.DiscreteFrechetMeasure(subseq.AbsDiff).Fn
	q := []float64{1, 2, 3, 4, 5}
	x := []float64{1, 2, 2, 4, 5}
	fmt.Println(subseq.ConsistentOn(dfd, q, x, 1e-9))
	// Output: true
}
