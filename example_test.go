package subseq_test

import (
	"context"
	"fmt"

	subseq "repro"
)

// Building a matcher and answering a range query (Type I): every pair of
// similar subsequences within the radius, reported as (query span,
// database span, distance).
func ExampleNewMatcher() {
	db := []subseq.Sequence[byte]{
		subseq.Sequence[byte]("XXXXXXXXGREENEGGSANDHAMXXXXXXXXX"),
	}
	q := subseq.Sequence[byte]("IDONOTLIKEGREENEGGSANDHAMIAMSAM")
	matcher, err := subseq.NewMatcher(
		subseq.LevenshteinMeasure[byte](),
		subseq.Config{Params: subseq.Params{Lambda: 12, Lambda0: 1}},
		db,
	)
	if err != nil {
		panic(err)
	}
	matches := matcher.FindAll(q, 0)
	longest := matches[0]
	for _, m := range matches {
		if m.QLen() > longest.QLen() {
			longest = m
		}
	}
	fmt.Printf("%d exact pairs; longest %q\n", len(matches), q[longest.QStart:longest.QEnd])
	// Output: 10 exact pairs; longest "GREENEGGSANDHAM"
}

// Answering a batch of queries on a worker pool: result i of each pool
// method is exactly the sequential answer for query i.
func ExampleNewQueryPool() {
	db := []subseq.Sequence[byte]{
		subseq.Sequence[byte]("AAAABBBBCCCCDDDDEEEEFFFF"),
		subseq.Sequence[byte]("XXXXCCCCDDDDEEEEYYYYZZZZ"),
	}
	matcher, err := subseq.NewMatcher(
		subseq.LevenshteinMeasure[byte](),
		subseq.Config{Params: subseq.Params{Lambda: 8, Lambda0: 1}},
		db,
	)
	if err != nil {
		panic(err)
	}
	queries := []subseq.Sequence[byte]{
		subseq.Sequence[byte]("PPPPCCCCDDDDEEEEQQQQ"),
		subseq.Sequence[byte]("MMMMAAAABBBBCCCCNNNN"),
	}
	pool := subseq.NewQueryPool(matcher, 2)
	matches, found := pool.Longest(queries, 0)
	for i := range queries {
		fmt.Printf("query %d: found=%v span=%d\n", i, found[i], matches[i].QLen())
	}
	// Output:
	// query 0: found=true span=12
	// query 1: found=true span=12
}

// Streaming queries through a pool: each submission returns a Future
// immediately, concurrent submissions at the same radius coalesce into one
// shared index traversal, and every future resolves to exactly the
// sequential answer. This is the serving shape behind `subseqctl serve`.
func ExampleQueryPool_Submit() {
	db := []subseq.Sequence[byte]{
		subseq.Sequence[byte]("AAAABBBBCCCCDDDDEEEEFFFF"),
		subseq.Sequence[byte]("XXXXCCCCDDDDEEEEYYYYZZZZ"),
	}
	matcher, err := subseq.NewMatcher(
		subseq.LevenshteinMeasure[byte](),
		subseq.Config{Params: subseq.Params{Lambda: 8, Lambda0: 1}},
		db,
	)
	if err != nil {
		panic(err)
	}
	pool := subseq.NewQueryPool(matcher, 2, subseq.WithQueueDepth(64))
	defer pool.Close()

	ctx := context.Background()
	queries := []subseq.Sequence[byte]{
		subseq.Sequence[byte]("PPPPCCCCDDDDEEEEQQQQ"),
		subseq.Sequence[byte]("MMMMAAAABBBBCCCCNNNN"),
	}
	futures := make([]*subseq.Future[[]subseq.Match], len(queries))
	for i, q := range queries {
		futures[i] = pool.Submit(ctx, q, 0) // Type I, streamed
	}
	for i, f := range futures {
		matches, err := f.Await(ctx)
		if err != nil {
			panic(err)
		}
		longest := 0
		for _, m := range matches {
			if m.QLen() > longest {
				longest = m.QLen()
			}
		}
		fmt.Printf("query %d: %d pairs, longest span %d\n", i, len(matches), longest)
	}
	// Output:
	// query 0: 30 pairs, longest span 12
	// query 1: 15 pairs, longest span 12
}

// Recovering an optimal DTW alignment: each coupling pairs one element of
// the first sequence with one of the second.
func ExampleDTWAlignment() {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 2, 3}
	d, alignment := subseq.DTWAlignment(subseq.AbsDiff, a, b)
	fmt.Printf("distance %g, couplings %v\n", d, alignment)
	// Output: distance 0, couplings [{0 0} {1 1} {1 2} {2 3}]
}

// The longest similar subsequence (query Type II): the query and the
// database sequence disagree globally but share a long local region.
func ExampleMatcher_longest() {
	db := []subseq.Sequence[byte]{
		subseq.Sequence[byte]("NNNNNNNNTHECATSATONTHEMATNNNNNNN"),
	}
	q := subseq.Sequence[byte]("ZZZZTHECATSATONTHEMATZZZZ")
	matcher, err := subseq.NewMatcher(
		subseq.LevenshteinMeasure[byte](),
		subseq.Config{Params: subseq.Params{Lambda: 8, Lambda0: 1}},
		db,
	)
	if err != nil {
		panic(err)
	}
	m, _ := matcher.Longest(q, 0)
	fmt.Printf("%s\n", q[m.QStart:m.QEnd])
	// Output: THECATSATONTHEMAT
}

// The reference net as a standalone metric index: range and k-NN queries
// over scalar data.
func ExampleRefNet() {
	net := subseq.NewRefNet(subseq.AbsDiff)
	for _, v := range []float64{1, 2, 3, 10, 11, 30} {
		net.Insert(v)
	}
	in := net.Range(2, 1) // everything within 1 of 2
	fmt.Println(len(in))
	nn := net.KNN(12, 2)
	fmt.Printf("%.0f %.0f\n", nn[0].Item, nn[1].Item)
	// Output:
	// 3
	// 11 10
}

// Verifying the paper's consistency property (Definition 1) on a pair of
// sequences: every subsequence of X has a counterpart in Q at no greater
// distance than δ(Q,X).
func ExampleConsistentOn() {
	dfd := subseq.DiscreteFrechetMeasure(subseq.AbsDiff).Fn
	q := []float64{1, 2, 3, 4, 5}
	x := []float64{1, 2, 2, 4, 5}
	fmt.Println(subseq.ConsistentOn(dfd, q, x, 1e-9))
	// Output: true
}
