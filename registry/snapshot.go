package registry

import (
	"io"
	"strconv"

	subseq "repro"
)

// Snapshot glue: a Store snapshot carries a self-describing header
// (measure, element type, backend, λ/λ0, construction parameters), and
// the registry is where header names meet session names. SnapshotCheck
// turns a SessionSpec into the validation OpenStore runs before any
// restoration work happens, so a snapshot taken under one session can
// never be silently reinterpreted under another — every refusal names
// the disagreeing field, the snapshot's value and the session's value,
// in the same spirit as Compatible's explained rejections.

// SnapshotCheck resolves spec and returns the header validation it
// imposes on a snapshot: element type, canonical measure name, backend
// and the λ/λ0 parameters must all agree. Measure aliases are accepted
// on either side ("frechet" matches a snapshot written under "dfd").
func (s SessionSpec) SnapshotCheck() (func(subseq.SnapshotHeader) error, error) {
	di, mi, bi, err := s.Resolve()
	if err != nil {
		return nil, err
	}
	wl, err := resolveWindowLen(s.WindowLen)
	if err != nil {
		return nil, err
	}
	lambda0, err := s.Lambda0For(mi)
	if err != nil {
		return nil, err
	}
	return func(h subseq.SnapshotHeader) error {
		if h.Elem != di.Elem {
			return &subseq.SnapshotMismatchError{Field: "element type", Got: h.Elem, Want: di.Elem}
		}
		if CanonicalMeasure(h.Measure) != mi.Name {
			return &subseq.SnapshotMismatchError{Field: "measure", Got: h.Measure, Want: mi.Name}
		}
		if h.Backend != bi.Name {
			return &subseq.SnapshotMismatchError{Field: "backend", Got: h.Backend, Want: bi.Name}
		}
		if h.Lambda != 2*wl {
			return &subseq.SnapshotMismatchError{Field: "lambda", Got: strconv.Itoa(h.Lambda), Want: strconv.Itoa(2 * wl)}
		}
		if h.Lambda0 != lambda0 {
			return &subseq.SnapshotMismatchError{Field: "lambda0", Got: strconv.Itoa(h.Lambda0), Want: strconv.Itoa(lambda0)}
		}
		return nil
	}, nil
}

// NewStore resolves spec, generates its dataset and builds a live Store
// over it — NewMatcher's lifecycle-owning sibling, which `subseqctl
// serve` runs on. E must be the element type of the spec's dataset
// family.
func NewStore[E any](spec SessionSpec) (*subseq.Store[E], Dataset[E], error) {
	di, mi, bi, err := spec.Resolve()
	if err != nil {
		return nil, Dataset[E]{}, err
	}
	m, err := Measure[E](mi.Name)
	if err != nil {
		return nil, Dataset[E]{}, err
	}
	wl, err := resolveWindowLen(spec.WindowLen)
	if err != nil {
		return nil, Dataset[E]{}, err
	}
	lambda0, err := spec.Lambda0For(mi)
	if err != nil {
		return nil, Dataset[E]{}, err
	}
	ds, err := GenerateDataset[E](di.Name, spec.Windows, wl, spec.Seed)
	if err != nil {
		return nil, Dataset[E]{}, err
	}
	st, err := subseq.NewStore(m, subseq.Config{
		Params: subseq.Params{Lambda: 2 * wl, Lambda0: lambda0},
		Index:  bi.Kind,
	}, ds.Sequences)
	if err != nil {
		return nil, Dataset[E]{}, err
	}
	return st, ds, nil
}

// OpenStore restores a Store from a snapshot stream under spec: the
// spec is resolved, the snapshot header is held against it
// (SnapshotCheck), and only a fully matching snapshot restores — a
// mismatched measure, backend, element type or parameter set is refused
// with the disagreement explained. E must be the element type of the
// spec's dataset family.
func OpenStore[E any](r io.Reader, spec SessionSpec) (*subseq.Store[E], error) {
	check, err := spec.SnapshotCheck()
	if err != nil {
		return nil, err
	}
	_, mi, _, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	m, err := Measure[E](mi.Name)
	if err != nil {
		return nil, err
	}
	return subseq.OpenStore(r, m, check)
}

// OpenStoreFile is OpenStore over a snapshot file.
func OpenStoreFile[E any](path string, spec SessionSpec) (*subseq.Store[E], error) {
	check, err := spec.SnapshotCheck()
	if err != nil {
		return nil, err
	}
	_, mi, _, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	m, err := Measure[E](mi.Name)
	if err != nil {
		return nil, err
	}
	return subseq.OpenStoreFile(path, m, check)
}
