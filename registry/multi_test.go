package registry

import (
	"strings"
	"testing"
)

func serverSpec(name, dataset string, mut func(*ServerSpec)) ServerSpec {
	s := ServerSpec{
		SessionSpec: SessionSpec{Dataset: dataset, Windows: 30, WindowLen: 6, Seed: 3},
		Name:        name,
	}
	if mut != nil {
		mut(&s)
	}
	return s
}

func TestValidateServerSpecs(t *testing.T) {
	cases := []struct {
		name    string
		specs   []ServerSpec
		wantSub string // "" means accept
	}{
		{
			name:  "one unnamed session",
			specs: []ServerSpec{serverSpec("", "proteins", nil)},
		},
		{
			name: "distinct names and families",
			specs: []ServerSpec{
				serverSpec("", "proteins", nil),
				serverSpec("", "songs", nil),
				serverSpec("traj-a", "traj", nil),
				serverSpec("traj-b", "traj", nil),
			},
		},
		{
			name: "shard fleet of one family",
			specs: []ServerSpec{
				serverSpec("p0", "proteins", func(s *ServerSpec) { s.ShardLo, s.ShardHi = 0, 3 }),
				serverSpec("p1", "proteins", func(s *ServerSpec) { s.ShardLo, s.ShardHi = 3, 6 }),
			},
		},
		{
			name:    "no sessions",
			specs:   nil,
			wantSub: "no sessions",
		},
		{
			name: "duplicate explicit names",
			specs: []ServerSpec{
				serverSpec("idx", "proteins", nil),
				serverSpec("idx", "songs", nil),
			},
			wantSub: `both mount as "idx"`,
		},
		{
			name: "duplicate defaulted names",
			specs: []ServerSpec{
				serverSpec("", "proteins", nil),
				serverSpec("", "proteins", nil),
			},
			wantSub: `both mount as "proteins"`,
		},
		{
			name:    "name with a slash",
			specs:   []ServerSpec{serverSpec("a/b", "proteins", nil)},
			wantSub: "letters, digits",
		},
		{
			name:    "name with a space",
			specs:   []ServerSpec{serverSpec("my index", "proteins", nil)},
			wantSub: "letters, digits",
		},
		{
			name:    "dot-dot name",
			specs:   []ServerSpec{serverSpec("..", "proteins", nil)},
			wantSub: "path traversal",
		},
		{
			name: "conflicting snapshot paths",
			specs: []ServerSpec{
				serverSpec("a", "proteins", func(s *ServerSpec) {
					s.SnapshotInterval = 1e9
					s.SnapshotPath = "/tmp/snaps/x.snap"
				}),
				serverSpec("b", "songs", func(s *ServerSpec) {
					s.SnapshotInterval = 1e9
					s.SnapshotPath = "/tmp/snaps//x.snap" // same file after Clean
				}),
			},
			wantSub: "clobber",
		},
		{
			name: "distinct snapshot paths accepted",
			specs: []ServerSpec{
				serverSpec("a", "proteins", func(s *ServerSpec) {
					s.SnapshotInterval = 1e9
					s.SnapshotPath = "/tmp/snaps/a.snap"
				}),
				serverSpec("b", "songs", func(s *ServerSpec) {
					s.SnapshotInterval = 1e9
					s.SnapshotPath = "/tmp/snaps/b.snap"
				}),
			},
		},
		{
			name: "negative shard range",
			specs: []ServerSpec{
				serverSpec("p", "proteins", func(s *ServerSpec) { s.ShardLo, s.ShardHi = -1, 4 }),
			},
			wantSub: "before sequence 0",
		},
		{
			name: "empty shard range",
			specs: []ServerSpec{
				serverSpec("p", "proteins", func(s *ServerSpec) { s.ShardLo, s.ShardHi = 4, 4 }),
			},
			// [4,4) has ShardLo != 0, so it counts as sharded and empty.
			wantSub: "empty",
		},
		{
			name: "inverted shard range",
			specs: []ServerSpec{
				serverSpec("p", "proteins", func(s *ServerSpec) { s.ShardLo, s.ShardHi = 5, 2 }),
			},
			wantSub: "shard_hi must exceed shard_lo",
		},
		{
			name: "bad session inside the list names its index",
			specs: []ServerSpec{
				serverSpec("ok", "proteins", nil),
				serverSpec("bad", "no-such-family", nil),
			},
			wantSub: "session 1",
		},
		{
			name: "unsound pairing rejected with rationale",
			specs: []ServerSpec{
				serverSpec("dtw-tree", "songs", func(s *ServerSpec) { s.Measure = "dtw"; s.Backend = "refnet" }),
			},
			wantSub: "not a metric",
		},
		{
			name: "conflicting listen addresses",
			specs: []ServerSpec{
				serverSpec("a", "proteins", func(s *ServerSpec) { s.Addr = "127.0.0.1:9001" }),
				serverSpec("b", "songs", func(s *ServerSpec) { s.Addr = "127.0.0.1:9002" }),
			},
			wantSub: "one listener",
		},
		{
			name: "one addr named once is fine",
			specs: []ServerSpec{
				serverSpec("a", "proteins", func(s *ServerSpec) { s.Addr = "127.0.0.1:9001" }),
				serverSpec("b", "songs", nil),
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ValidateServerSpecs(c.specs)
			if c.wantSub == "" {
				if err != nil {
					t.Fatalf("rejected valid spec list: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("accepted invalid spec list")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestMountNameDefaultsToDataset(t *testing.T) {
	if got := serverSpec("", "songs", nil).MountName(); got != "songs" {
		t.Errorf("MountName() = %q, want songs", got)
	}
	if got := serverSpec("x", "songs", nil).MountName(); got != "x" {
		t.Errorf("MountName() = %q, want x", got)
	}
}

func TestListenAddr(t *testing.T) {
	specs := []ServerSpec{
		serverSpec("a", "proteins", nil),
		serverSpec("b", "songs", func(s *ServerSpec) { s.Addr = "127.0.0.1:9005" }),
	}
	if got := ListenAddr(specs); got != "127.0.0.1:9005" {
		t.Errorf("ListenAddr = %q", got)
	}
	if got := ListenAddr(specs[:1]); got != DefaultServeAddr {
		t.Errorf("ListenAddr with no addr = %q, want default", got)
	}
}

func TestServerSpecResolveEchoesShardAndName(t *testing.T) {
	s := serverSpec("p1", "proteins", func(s *ServerSpec) { s.ShardLo, s.ShardHi = 3, 7 })
	cfg, err := s.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if cfg.Name != "p1" || cfg.ShardLo != 3 || cfg.ShardHi != 7 {
		t.Errorf("config does not echo name/shard: %+v", cfg)
	}
}
