package registry

import (
	"bytes"
	"errors"
	"testing"

	subseq "repro"
)

func snapSpec() SessionSpec {
	return SessionSpec{Dataset: "proteins", Measure: "levenshtein-fast", Backend: "refnet",
		Windows: 40, WindowLen: 8, Seed: 3}
}

// A snapshot taken under a spec restores under the same spec and keeps
// answering identically; the restored refnet recomputes no distances.
func TestOpenStoreRoundTrip(t *testing.T) {
	st, ds, err := NewStore[byte](snapSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(append(subseq.Sequence[byte](nil), ds.Sequences[0]...)); err != nil {
		t.Fatal(err)
	}
	q := ds.Sequences[0][:18]
	want := st.Matcher().FindAll(q, 2)
	if len(want) == 0 {
		t.Fatal("no matches for a verbatim database subsequence")
	}

	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenStore[byte](bytes.NewReader(buf.Bytes()), snapSpec())
	if err != nil {
		t.Fatal(err)
	}
	got := restored.Matcher().FindAll(q, 2)
	if len(got) != len(want) {
		t.Fatalf("restored store finds %d matches, original %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d: restored %+v, original %+v", i, got[i], want[i])
		}
	}
	if calls := restored.Matcher().BuildDistanceCalls(); calls != 0 {
		t.Fatalf("restore computed %d build distances, want 0", calls)
	}
}

// OpenStore under a mismatched spec is refused with the disagreeing
// field explained — measure, backend and parameters all gate.
func TestOpenStoreMismatchedSpecs(t *testing.T) {
	st, _, err := NewStore[byte](snapSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		mut   func(*SessionSpec)
		field string
	}{
		{"measure", func(s *SessionSpec) { s.Measure = "weighted-edit" }, "measure"},
		{"backend", func(s *SessionSpec) { s.Backend = "covertree" }, "backend"},
		{"window length", func(s *SessionSpec) { s.WindowLen = 10 }, "lambda"},
		{"lambda0", func(s *SessionSpec) { s.Lambda0 = 2 }, "lambda0"},
	}
	for _, c := range cases {
		spec := snapSpec()
		c.mut(&spec)
		_, err := OpenStore[byte](bytes.NewReader(buf.Bytes()), spec)
		var mm *subseq.SnapshotMismatchError
		if !errors.As(err, &mm) {
			t.Fatalf("%s mismatch: error %v, want SnapshotMismatchError", c.name, err)
		}
		if mm.Field != c.field {
			t.Fatalf("%s mismatch rejected as field %q, want %q", c.name, mm.Field, c.field)
		}
		if mm.Error() == "" || mm.Got == mm.Want {
			t.Fatalf("%s mismatch not explained: %+v", c.name, mm)
		}
	}
	// Element-type mismatch: a byte snapshot opened under a float64 spec.
	spec := snapSpec()
	spec.Dataset = "songs"
	spec.Measure = ""
	_, err = OpenStore[float64](bytes.NewReader(buf.Bytes()), spec)
	var mm *subseq.SnapshotMismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("element mismatch: error %v, want SnapshotMismatchError", err)
	}

	// The matching spec still restores (the snapshot itself is fine).
	if _, err := OpenStore[byte](bytes.NewReader(buf.Bytes()), snapSpec()); err != nil {
		t.Fatalf("matching spec refused: %v", err)
	}
}
