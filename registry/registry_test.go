package registry_test

import (
	"reflect"
	"strings"
	"testing"

	subseq "repro"
	"repro/registry"
)

// TestUnknownNames pins the error text of name resolution: unknown names
// must list what is available, and a measure asked for over the wrong
// element type must name the types it is defined over.
func TestUnknownNames(t *testing.T) {
	_, err := registry.Measure[byte]("frobnicate")
	if err == nil {
		t.Fatal("unknown measure accepted")
	}
	for _, want := range []string{`unknown measure "frobnicate"`, "levenshtein", "dtw", "weighted-edit"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-measure error %q does not mention %q", err, want)
		}
	}

	_, err = registry.Measure[byte]("erp")
	if err == nil {
		t.Fatal("erp over byte accepted; it is not registered for byte")
	}
	for _, want := range []string{`measure "erp" is not defined over byte`, "float64", "point2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("wrong-elem error %q does not mention %q", err, want)
		}
	}

	// An aliased name that resolves but misses the element type must keep
	// the user's spelling in the message alongside the canonical name.
	_, err = registry.Measure[byte]("frechet")
	if err == nil {
		t.Fatal("frechet over byte accepted; it is not registered for byte")
	}
	for _, want := range []string{`"frechet"`, `"dfd"`, "not defined over byte"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aliased wrong-elem error %q does not mention %q", err, want)
		}
	}

	_, err = registry.Backend("btree")
	if err == nil || !strings.Contains(err.Error(), `unknown backend "btree"`) ||
		!strings.Contains(err.Error(), "refnet, covertree, mv, linear") {
		t.Errorf("unknown-backend error = %v", err)
	}

	_, err = registry.DatasetByName("genomes")
	if err == nil || !strings.Contains(err.Error(), `unknown dataset "genomes"`) ||
		!strings.Contains(err.Error(), "proteins, songs, traj") {
		t.Errorf("unknown-dataset error = %v", err)
	}
}

// TestAliases verifies the accepted alternate measure names resolve to the
// same instantiation as their canonical spelling.
func TestAliases(t *testing.T) {
	for alias, canonical := range map[string]string{
		"frechet": "dfd", "protein": "protein-edit", "myers": "levenshtein-fast",
	} {
		var name string
		switch canonical {
		case "dfd":
			m, err := registry.Measure[float64](alias)
			if err != nil {
				t.Fatalf("alias %q: %v", alias, err)
			}
			name = m.Name
		default:
			m, err := registry.Measure[byte](alias)
			if err != nil {
				t.Fatalf("alias %q: %v", alias, err)
			}
			name = m.Name
		}
		if name != canonical {
			t.Errorf("alias %q resolved to %q, want %q", alias, name, canonical)
		}
	}
}

// TestPairingRejections mirrors the public-API rejection tests on the
// name level: the registry must reject unsound measure × backend pairings
// up front, with the reason, and accept the sound ones.
func TestPairingRejections(t *testing.T) {
	for _, backend := range []string{"refnet", "covertree", "mv"} {
		spec := registry.SessionSpec{Dataset: "songs", Measure: "dtw", Backend: backend,
			Windows: 10, WindowLen: 4}
		if _, _, _, err := spec.Resolve(); err == nil {
			t.Errorf("dtw × %s accepted; want rejection", backend)
		} else if !strings.Contains(err.Error(), "not a metric") {
			t.Errorf("dtw × %s rejection does not state the reason: %v", backend, err)
		}
	}
	spec := registry.SessionSpec{Dataset: "songs", Measure: "dtw", Backend: "linear",
		Windows: 10, WindowLen: 4}
	if _, _, _, err := spec.Resolve(); err != nil {
		t.Errorf("dtw × linear rejected: %v", err)
	}

	// Lock-step measures admit no temporal shift.
	spec = registry.SessionSpec{Dataset: "songs", Measure: "euclidean", Backend: "refnet",
		Windows: 10, WindowLen: 4, Lambda0: 2}
	_, mi, _, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Lambda0For(mi); err == nil {
		t.Error("euclidean with lambda0=2 accepted; want rejection")
	}
	if l0, err := (registry.SessionSpec{}).Lambda0For(mi); err != nil || l0 != 0 {
		t.Errorf("euclidean default lambda0 = %d, %v; want 0, nil", l0, err)
	}

	// Non-lock-step λ0 defaulting: the zero value selects 1, -1 forces 0.
	erp, err := registry.LookupMeasure("erp", "float64")
	if err != nil {
		t.Fatal(err)
	}
	if l0, err := (registry.SessionSpec{}).Lambda0For(erp); err != nil || l0 != 1 {
		t.Errorf("erp default lambda0 = %d, %v; want 1, nil", l0, err)
	}
	if l0, err := (registry.SessionSpec{Lambda0: -1}).Lambda0For(erp); err != nil || l0 != 0 {
		t.Errorf("erp forced lambda0 = %d, %v; want 0, nil", l0, err)
	}
}

// sweepCase fixes the query radius per measure; radii are chosen so FindAll
// returns a non-trivial (but bounded) result on the tiny sweep datasets.
var sweepEps = map[string]float64{
	"levenshtein": 3, "levenshtein-fast": 3, "protein-edit": 3, "weighted-edit": 3,
	"hamming": 2, "euclidean": 3, "erp": 6, "dfd": 2, "dtw": 6,
}

// sweepElem runs the full measure × backend matrix for one dataset family:
// every compatible pairing must be constructible through the registry and
// must return exactly the matches of a directly-constructed session; every
// incompatible pairing must be rejected by both paths.
func sweepElem[E any](t *testing.T, dataset string, direct map[string]subseq.Measure[E]) {
	t.Helper()
	di, err := registry.DatasetByName(dataset)
	if err != nil {
		t.Fatal(err)
	}
	measures := registry.MeasuresFor(di.Elem)
	if len(measures) != len(direct) {
		names := make([]string, len(measures))
		for i, m := range measures {
			names[i] = m.Name
		}
		t.Fatalf("registry has %d measures over %s (%v); the direct table has %d — keep them in sync",
			len(measures), di.Elem, names, len(direct))
	}
	for _, mi := range measures {
		dm, ok := direct[mi.Name]
		if !ok {
			t.Fatalf("no direct construction for measure %q", mi.Name)
		}
		eps, ok := sweepEps[mi.Name]
		if !ok {
			t.Fatalf("no sweep radius for measure %q", mi.Name)
		}
		for _, bi := range registry.Backends() {
			t.Run(dataset+"/"+mi.Name+"/"+bi.Name, func(t *testing.T) {
				spec := registry.SessionSpec{
					Dataset: dataset, Measure: mi.Name, Backend: bi.Name,
					Windows: 40, WindowLen: 6, Seed: 7,
				}
				mt, ds, err := registry.NewMatcher[E](spec)
				if incompat := registry.Compatible(mi, bi); incompat != nil {
					if err == nil {
						t.Fatalf("incompatible pairing constructed: %v", incompat)
					}
					// The direct path must agree that the pairing is unsound.
					if _, derr := subseq.NewMatcher(dm, subseq.Config{
						Params: subseq.Params{Lambda: 12, Lambda0: 0},
						Index:  bi.Kind,
					}, nil); derr == nil {
						t.Fatalf("core accepted a pairing the registry rejects: %v", incompat)
					}
					return
				}
				if err != nil {
					t.Fatal(err)
				}
				lambda0 := 1
				if mi.LockStep {
					lambda0 = 0
				}
				dmt, err := subseq.NewMatcher(dm, subseq.Config{
					Params: subseq.Params{Lambda: 12, Lambda0: lambda0},
					Index:  bi.Kind,
				}, ds.Sequences)
				if err != nil {
					t.Fatal(err)
				}
				mut, err := registry.QueryMutator[E](dataset)
				if err != nil {
					t.Fatal(err)
				}
				q := registry.RandomQuery(ds, 18, 0.2, mut, 99)
				got := mt.FindAll(q, eps)
				want := dmt.FindAll(q, eps)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("registry session: %d matches, direct session: %d matches\ngot  %v\nwant %v",
						len(got), len(want), got, want)
				}
			})
		}
	}
}

// TestMatrixSweep is the acceptance sweep: every registered measure ×
// compatible backend, for every dataset family, agrees with direct
// construction.
func TestMatrixSweep(t *testing.T) {
	sweepElem(t, "proteins", map[string]subseq.Measure[byte]{
		"levenshtein":      subseq.LevenshteinMeasure[byte](),
		"levenshtein-fast": subseq.LevenshteinFastMeasure(),
		"protein-edit":     subseq.ProteinEditMeasure(),
		"weighted-edit":    subseq.WeightedEditMeasure(),
		"hamming":          subseq.HammingMeasure[byte](),
	})
	sweepElem(t, "songs", map[string]subseq.Measure[float64]{
		"levenshtein": subseq.LevenshteinMeasure[float64](),
		"hamming":     subseq.HammingMeasure[float64](),
		"euclidean":   subseq.EuclideanMeasure(subseq.AbsDiff),
		"dtw":         subseq.DTWMeasure(subseq.AbsDiff),
		"erp":         subseq.ERPMeasure(subseq.AbsDiff, 0),
		"dfd":         subseq.DiscreteFrechetMeasure(subseq.AbsDiff),
	})
	sweepElem(t, "traj", map[string]subseq.Measure[subseq.Point2]{
		"euclidean": subseq.EuclideanMeasure(subseq.Point2Dist),
		"dtw":       subseq.DTWMeasure(subseq.Point2Dist),
		"erp":       subseq.ERPMeasure(subseq.Point2Dist, subseq.Point2{}),
		"dfd":       subseq.DiscreteFrechetMeasure(subseq.Point2Dist),
	})
}

// TestSessionDefaults verifies the spec's zero-value defaulting: dataset
// default measure, refnet backend, window length 20.
func TestSessionDefaults(t *testing.T) {
	di, mi, bi, err := (registry.SessionSpec{Dataset: "proteins", Windows: 10}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if di.Name != "proteins" || mi.Name != "levenshtein-fast" || bi.Name != "refnet" {
		t.Errorf("defaults resolved to %s/%s/%s", di.Name, mi.Name, bi.Name)
	}
	mt, ds, err := registry.NewMatcher[byte](registry.SessionSpec{
		Dataset: "proteins", Windows: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.WindowLen != 20 {
		t.Errorf("default window length %d, want 20", ds.WindowLen)
	}
	if mt.Params().Lambda != 40 || mt.Params().Lambda0 != 1 {
		t.Errorf("default params %+v", mt.Params())
	}
}
