package registry

import (
	"fmt"
	"path/filepath"
)

// Multi-session validation: a single serving process may host several
// named sessions (subseqctl serve -config, docs/SHARDING.md). The specs
// are validated as a set before anything is built, so a bad topology
// file fails at startup with the offending entry named — not mid-flight
// with two sessions clobbering each other's snapshots.

// MountName returns the name a spec's session mounts under: Name when
// set, else the dataset family name (the natural default — one session
// per family is the common multi-tenant shape).
func (s ServerSpec) MountName() string {
	if s.Name != "" {
		return s.Name
	}
	return s.Dataset
}

// validSessionName checks that a session name can appear in a URL path
// segment without escaping: letters, digits, '-', '_' and '.'. The empty
// name is allowed here (it defaults later); ValidateServerSpecs checks
// the defaulted names for uniqueness.
func validSessionName(name string) error {
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("registry: session name %q contains %q; names must use letters, digits, '-', '_' or '.'", name, r)
		}
	}
	if name == "." || name == ".." {
		return fmt.Errorf("registry: session name %q is a path traversal", name)
	}
	return nil
}

// ValidateServerSpecs checks a list of server specs as one multi-session
// process configuration. Beyond resolving each spec individually (which
// catches unknown names, unsound pairings, bad shard ranges and bad
// serving knobs), it rejects cross-spec conflicts: duplicate session
// names (after defaulting), two sessions writing background snapshots to
// the same file, and disagreeing listen addresses (the process has one
// listener; at most one distinct non-empty addr may be named). Every
// rejection names the spec index and the conflict.
func ValidateServerSpecs(specs []ServerSpec) error {
	if len(specs) == 0 {
		return fmt.Errorf("registry: no sessions configured")
	}
	names := make(map[string]int, len(specs))
	snapPaths := make(map[string]int, len(specs))
	addr := ""
	addrAt := -1
	for i, s := range specs {
		if _, err := s.Resolve(); err != nil {
			return fmt.Errorf("registry: session %d (%q): %w", i, s.MountName(), err)
		}
		name := s.MountName()
		if err := validSessionName(name); err != nil {
			return fmt.Errorf("registry: session %d: %w", i, err)
		}
		if prev, dup := names[name]; dup {
			return fmt.Errorf("registry: sessions %d and %d both mount as %q; give one an explicit distinct name", prev, i, name)
		}
		names[name] = i
		if s.SnapshotPath != "" {
			p := filepath.Clean(s.SnapshotPath)
			if prev, dup := snapPaths[p]; dup {
				return fmt.Errorf("registry: sessions %d and %d both write background snapshots to %q; snapshots would clobber each other", prev, i, s.SnapshotPath)
			}
			snapPaths[p] = i
		}
		if s.Addr != "" {
			if addr != "" && s.Addr != addr {
				return fmt.Errorf("registry: session %d names listen address %q but session %d named %q; a process has one listener", i, s.Addr, addrAt, addr)
			}
			addr, addrAt = s.Addr, i
		}
	}
	return nil
}

// ListenAddr returns the one listen address a validated spec list names,
// or DefaultServeAddr when none does.
func ListenAddr(specs []ServerSpec) string {
	for _, s := range specs {
		if s.Addr != "" {
			return s.Addr
		}
	}
	return DefaultServeAddr
}
