// Package registry names the framework's building blocks — distance
// measures, index backends, dataset families — and glues them together into
// runnable sessions, so that a CLI flag, a config file or a test table can
// select any supported measure × backend combination without recompiling.
//
// The paper's framework is generic over its distance measure (any measure
// satisfying Definition 1), and the Go API mirrors that genericity with
// type-parameterised constructors. Genericity compiled in is only half the
// claim, though: this package makes the parameterisation operational. Every
// built-in measure self-registers its canonical instantiations per element
// type (see the catalog in internal/dist), every backend and dataset family
// is described here, and Compatible explains — rather than just rejects —
// why an unsound pairing (a non-metric measure on a metric index, a
// lock-step measure with temporal shift) cannot run.
//
// Lookup is typed: Measure[byte]("levenshtein") returns a Measure[byte],
// and the element type is checked against the registration, so a measure
// that is not defined over a dataset's element type is a name-resolution
// error, not a runtime panic. Common alternate names resolve via aliases
// ("frechet" → "dfd", "protein" → "protein-edit").
//
// NewMatcher ties it all together: resolve a SessionSpec (dataset, measure,
// backend by name), validate the pairing, generate the dataset and build
// the matcher. `subseqctl` and the table-driven matrix tests are both thin
// wrappers over it.
package registry

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sort"
	"strings"
	"time"

	subseq "repro"
	"repro/internal/data"
	"repro/internal/dist"
)

// MeasureInfo is the untyped view of one registered (measure, element type)
// pair: name, element type and capability bits, as a listing or a
// compatibility check needs them.
type MeasureInfo struct {
	// Name is the canonical measure name.
	Name string `json:"name"`
	// Elem names the element type the instantiation is registered for:
	// "byte", "float64" or "point2".
	Elem string `json:"elem"`
	// Description is a one-line summary.
	Description string `json:"description"`
	// Metric, Consistent and LockStep are the measure's vetted properties.
	Metric     bool `json:"metric"`
	Consistent bool `json:"consistent"`
	LockStep   bool `json:"lock_step"`
	// Incremental and Bounded report the optional fast-path capabilities.
	Incremental bool `json:"incremental"`
	Bounded     bool `json:"bounded"`
}

// measureAliases maps accepted alternate names to canonical measure names.
var measureAliases = map[string]string{
	"frechet": "dfd",
	"protein": "protein-edit",
	"myers":   "levenshtein-fast",
	"edit":    "levenshtein",
	"l2":      "euclidean",
}

// CanonicalMeasure resolves accepted alternate spellings ("frechet",
// "protein", …) to the canonical measure name; unknown names pass through
// unchanged.
func CanonicalMeasure(name string) string {
	if c, ok := measureAliases[name]; ok {
		return c
	}
	return name
}

func infoOf(e dist.CatalogEntry) MeasureInfo {
	return MeasureInfo{
		Name:        e.Name,
		Elem:        e.Elem,
		Description: e.Description,
		Metric:      e.Props.Metric,
		Consistent:  e.Props.Consistent,
		LockStep:    e.Props.LockStep,
		Incremental: e.Incremental,
		Bounded:     e.Bounded,
	}
}

// Measures returns every registered (measure, element type) pair, sorted by
// name then element type.
func Measures() []MeasureInfo {
	cat := dist.Catalog()
	out := make([]MeasureInfo, len(cat))
	for i, e := range cat {
		out[i] = infoOf(e)
	}
	return out
}

// MeasuresFor returns the measures registered over one element type.
func MeasuresFor(elem string) []MeasureInfo {
	cat := dist.CatalogFor(elem)
	out := make([]MeasureInfo, len(cat))
	for i, e := range cat {
		out[i] = infoOf(e)
	}
	return out
}

// MeasureNames returns the sorted canonical measure names, each once.
func MeasureNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range dist.Catalog() {
		if !seen[e.Name] {
			seen[e.Name] = true
			out = append(out, e.Name)
		}
	}
	sort.Strings(out)
	return out
}

// unknownMeasureErr builds the name-resolution error for the name the
// caller typed (canonical is its alias-resolved form): it distinguishes a
// name that exists nowhere from one registered over other element types,
// and keeps the typed spelling in the message so the error stays
// actionable when an alias was used.
func unknownMeasureErr(typed, canonical, elem string) error {
	display := fmt.Sprintf("%q", typed)
	if typed != canonical {
		display = fmt.Sprintf("%q (= %q)", typed, canonical)
	}
	var elems []string
	for _, e := range dist.Catalog() {
		if e.Name == canonical {
			elems = append(elems, e.Elem)
		}
	}
	if len(elems) > 0 {
		return fmt.Errorf("registry: measure %s is not defined over %s elements (defined over: %s)",
			display, elem, strings.Join(elems, ", "))
	}
	return fmt.Errorf("registry: unknown measure %s (measures: %s)",
		display, strings.Join(MeasureNames(), ", "))
}

// LookupMeasure returns the info of the named measure over the given
// element type, resolving aliases.
func LookupMeasure(name, elem string) (MeasureInfo, error) {
	canonical := CanonicalMeasure(name)
	for _, e := range dist.CatalogFor(elem) {
		if e.Name == canonical {
			return infoOf(e), nil
		}
	}
	return MeasureInfo{}, unknownMeasureErr(name, canonical, elem)
}

// Measure returns the canonical Measure[E] registered under name (aliases
// accepted). The element type is part of the lookup: asking for a measure
// over an element type it is not registered for is an error naming the
// types it is registered for.
func Measure[E any](name string) (subseq.Measure[E], error) {
	canonical := CanonicalMeasure(name)
	if m, ok := dist.Builtin[E](canonical); ok {
		return m, nil
	}
	return subseq.Measure[E]{}, unknownMeasureErr(name, canonical, dist.ElemName[E]())
}

// BackendInfo describes one index backend of the window filter.
type BackendInfo struct {
	// Name is the backend's CLI name.
	Name string `json:"name"`
	// Kind is the core backend selector.
	Kind subseq.IndexKind `json:"-"`
	// Description is a one-line summary.
	Description string `json:"description"`
	// NeedsMetric reports that the backend prunes by the triangle
	// inequality and therefore accepts only metric measures.
	NeedsMetric bool `json:"needs_metric"`
}

// backends lists the four filter backends, in display order.
var backends = []BackendInfo{
	{"refnet", subseq.IndexRefNet, "the paper's Reference Net (multi-parent hierarchical metric index)", true},
	{"covertree", subseq.IndexCoverTree, "single-parent cover-tree baseline", true},
	{"mv", subseq.IndexMV, "reference-based index with maximum-variance reference selection", true},
	{"linear", subseq.IndexLinearScan, "exhaustive window scan (sound for every consistent measure)", false},
}

// Backends returns the filter backends in display order.
func Backends() []BackendInfo { return append([]BackendInfo(nil), backends...) }

// Backend returns the named backend.
func Backend(name string) (BackendInfo, error) {
	for _, b := range backends {
		if b.Name == name {
			return b, nil
		}
	}
	names := make([]string, len(backends))
	for i, b := range backends {
		names[i] = b.Name
	}
	return BackendInfo{}, fmt.Errorf("registry: unknown backend %q (backends: %s)",
		name, strings.Join(names, ", "))
}

// Compatible reports whether measure m can soundly drive backend b: nil if
// so, otherwise an error stating which capability is missing and why it
// matters. It is the name-level mirror of the constructor-time validation
// in core.NewMatcher — the CLI uses it to reject a pairing up front with
// the same rationale.
func Compatible(m MeasureInfo, b BackendInfo) error {
	if !m.Consistent {
		return fmt.Errorf("measure %q is not consistent: the window filter would miss matches (Definition 1)", m.Name)
	}
	if b.NeedsMetric && !m.Metric {
		return fmt.Errorf("measure %q is not a metric: backend %q prunes by the triangle inequality and would drop true matches — use the linear backend", m.Name, b.Name)
	}
	return nil
}

// Dataset is a generated dataset: sequences plus their indexed windows.
type Dataset[E any] = data.Dataset[E]

// DatasetInfo describes one synthetic dataset family.
type DatasetInfo struct {
	// Name is the family name.
	Name string `json:"name"`
	// Elem names the element type of its sequences.
	Elem string `json:"elem"`
	// Description is a one-line summary.
	Description string `json:"description"`
	// DefaultMeasure is the measure a session uses when none is named —
	// the pairing the paper evaluates the family with.
	DefaultMeasure string `json:"default_measure"`
}

// datasets lists the dataset families, in display order.
var datasets = []DatasetInfo{
	{"proteins", "byte", "protein-like strings over the 20-letter amino-acid alphabet", "levenshtein-fast"},
	{"songs", "float64", "melodic pitch-class series (values 0..11)", "dfd"},
	{"traj", "point2", "2-D parking-lot trajectories", "erp"},
}

// Datasets returns the dataset families in display order.
func Datasets() []DatasetInfo { return append([]DatasetInfo(nil), datasets...) }

// DatasetByName returns the named dataset family's description.
func DatasetByName(name string) (DatasetInfo, error) {
	for _, d := range datasets {
		if d.Name == name {
			return d, nil
		}
	}
	names := make([]string, len(datasets))
	for i, d := range datasets {
		names[i] = d.Name
	}
	return DatasetInfo{}, fmt.Errorf("registry: unknown dataset %q (datasets: %s)",
		name, strings.Join(names, ", "))
}

// GenerateDataset builds the named dataset at element type E; the element
// type must match the family's.
func GenerateDataset[E any](name string, numWindows, windowLen int, seed uint64) (Dataset[E], error) {
	return data.Generate[E](name, numWindows, windowLen, seed)
}

// QueryMutator returns the named dataset family's query point-mutation
// function, for deriving mutated queries from database subsequences with
// RandomQuery.
func QueryMutator[E any](name string) (func(rng *rand.Rand, e E) E, error) {
	return data.MutatorFor[E](name)
}

// RandomQuery copies a random subsequence of length qlen from ds and
// applies point mutations at the given rate using mutate.
func RandomQuery[E any](ds Dataset[E], qlen int, rate float64,
	mutate func(rng *rand.Rand, e E) E, seed uint64) subseq.Sequence[E] {
	return data.RandomQuery(ds, qlen, rate, mutate, seed)
}

// SessionSpec names a complete framework configuration. The zero values of
// the optional fields select sensible defaults; only Dataset and Windows
// must be set.
type SessionSpec struct {
	// Dataset is the dataset family to generate.
	Dataset string `json:"dataset"`
	// Measure selects the distance measure; "" selects the family's
	// default. Aliases are accepted.
	Measure string `json:"measure,omitempty"`
	// Backend selects the filter backend; "" selects refnet.
	Backend string `json:"backend,omitempty"`
	// Windows is the number of database windows to generate.
	Windows int `json:"windows"`
	// WindowLen is the window length l (λ = 2l); 0 selects 20, the
	// paper's setting.
	WindowLen int `json:"window_len,omitempty"`
	// Lambda0 is the temporal-shift bound λ0. The zero value selects the
	// measure's default (0 for lock-step measures, 1 otherwise); -1
	// explicitly forces λ0 = 0 for a non-lock-step measure; positive
	// values are used as given (lock-step measures reject them).
	Lambda0 int `json:"lambda0,omitempty"`
	// Seed seeds dataset generation.
	Seed uint64 `json:"seed,omitempty"`
	// ShardLo/ShardHi restrict the session to the generated dataset's
	// sequences with indices in [ShardLo, ShardHi) — one shard of the
	// logical index, reporting matches under the global sequence
	// numbering (see internal/shard and docs/SHARDING.md). Both zero
	// means unsharded (the whole dataset). Generation is deterministic
	// per (dataset, windows, window_len, seed), so every shard process
	// derives its slice from the same logical whole.
	ShardLo int `json:"shard_lo,omitempty"`
	ShardHi int `json:"shard_hi,omitempty"`
}

// Sharded reports whether the spec restricts the session to a shard
// range.
func (s SessionSpec) Sharded() bool { return s.ShardLo != 0 || s.ShardHi != 0 }

// Resolve fills the spec's defaults and resolves its names against the
// registry, without generating anything: the dataset family, the measure
// info (element-type checked) and the backend, with the pairing validated.
func (s SessionSpec) Resolve() (DatasetInfo, MeasureInfo, BackendInfo, error) {
	di, err := DatasetByName(s.Dataset)
	if err != nil {
		return DatasetInfo{}, MeasureInfo{}, BackendInfo{}, err
	}
	mname := s.Measure
	if mname == "" {
		mname = di.DefaultMeasure
	}
	mi, err := LookupMeasure(mname, di.Elem)
	if err != nil {
		return DatasetInfo{}, MeasureInfo{}, BackendInfo{}, err
	}
	bname := s.Backend
	if bname == "" {
		bname = "refnet"
	}
	bi, err := Backend(bname)
	if err != nil {
		return DatasetInfo{}, MeasureInfo{}, BackendInfo{}, err
	}
	if err := Compatible(mi, bi); err != nil {
		return DatasetInfo{}, MeasureInfo{}, BackendInfo{}, fmt.Errorf("registry: %w", err)
	}
	if s.Sharded() {
		if s.ShardLo < 0 {
			return DatasetInfo{}, MeasureInfo{}, BackendInfo{}, fmt.Errorf(
				"registry: shard range [%d,%d) starts before sequence 0", s.ShardLo, s.ShardHi)
		}
		if s.ShardHi <= s.ShardLo {
			return DatasetInfo{}, MeasureInfo{}, BackendInfo{}, fmt.Errorf(
				"registry: shard range [%d,%d) is empty (shard_hi must exceed shard_lo)", s.ShardLo, s.ShardHi)
		}
	}
	return di, mi, bi, nil
}

// Lambda0For returns the λ0 the spec resolves to for measure mi: lock-step
// measures force 0; otherwise the zero value selects the default of 1,
// negative values explicitly select no temporal shift, and positive values
// pass through.
func (s SessionSpec) Lambda0For(mi MeasureInfo) (int, error) {
	if mi.LockStep {
		if s.Lambda0 > 0 {
			return 0, fmt.Errorf("registry: lock-step measure %q admits no temporal shift; lambda0 must be 0, got %d",
				mi.Name, s.Lambda0)
		}
		return 0, nil
	}
	switch {
	case s.Lambda0 < 0:
		return 0, nil
	case s.Lambda0 == 0:
		return 1, nil
	default:
		return s.Lambda0, nil
	}
}

// ServerSpec names a complete serving-daemon configuration: a session
// (dataset × measure × backend, exactly as `subseqctl query` takes it)
// plus the knobs serving adds — the listen address and the streaming
// engine's worker count and in-flight bound. `subseqctl serve` fills one
// from its flags; Resolve turns it into the fully-resolved ServerConfig
// the daemon runs and reports on /stats. See docs/SERVING.md.
type ServerSpec struct {
	SessionSpec
	// Name names the session inside a multi-session process: its routes
	// mount under /s/{name}/ (see docs/SHARDING.md). "" defaults to the
	// dataset family name. Names must be URL-path-safe (letters, digits,
	// '-', '_', '.') and unique within one process (ValidateServerSpecs).
	Name string `json:"name,omitempty"`
	// Restore makes the session restore its index from this snapshot
	// file instead of building it (the snapshot must match the session
	// spec; see docs/PERSISTENCE.md).
	Restore string `json:"restore,omitempty"`
	// Addr is the TCP listen address; "" selects 127.0.0.1:8077.
	Addr string `json:"addr,omitempty"`
	// Workers is the streaming engine's worker count; 0 selects
	// GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// QueueDepth bounds in-flight submissions (accepted but not yet
	// answered); 0 selects subseq.DefaultQueueDepth.
	QueueDepth int `json:"queue_depth,omitempty"`
	// Shed names the load-shedding policy applied when the in-flight
	// budget is exhausted: "block" (default), "reject" or "fair"
	// (synonyms accepted, see subseq.ParseShedPolicy).
	Shed string `json:"shed,omitempty"`
	// RequestTimeout bounds each query request end to end; expired work
	// is dropped before a worker prices it. 0 means no timeout.
	RequestTimeout time.Duration `json:"request_timeout,omitempty"`
	// SnapshotInterval enables background periodic snapshots to
	// SnapshotPath; 0 disables them.
	SnapshotInterval time.Duration `json:"snapshot_interval,omitempty"`
	// SnapshotPath is where background snapshots land (required when
	// SnapshotInterval is set).
	SnapshotPath string `json:"snapshot_path,omitempty"`
}

// DefaultServeAddr is the listen address a ServerSpec resolves to when
// none is given.
const DefaultServeAddr = "127.0.0.1:8077"

// resolveWindowLen applies the shared window-length default (0 selects
// 20, the paper's setting; λ = 2l follows) and floor — the single place
// every session constructor resolves it, so a served /stats config can
// never diverge from the matcher the daemon built.
func resolveWindowLen(wl int) (int, error) {
	if wl == 0 {
		wl = 20
	}
	if wl < 2 {
		return 0, fmt.Errorf("registry: window length must be at least 2, got %d", wl)
	}
	return wl, nil
}

// ServerConfig is a ServerSpec after name resolution: the canonical
// dataset, measure and backend descriptors plus every resolved parameter.
// It marshals to the JSON a daemon's /stats endpoint echoes, so a client
// can always ask a server what it is.
type ServerConfig struct {
	// Name is the session's mount name inside a multi-session process
	// ("" when the process serves it as its only, legacy-routed session).
	Name      string      `json:"name,omitempty"`
	Dataset   DatasetInfo `json:"dataset"`
	Measure   MeasureInfo `json:"measure"`
	Backend   BackendInfo `json:"backend"`
	Windows   int         `json:"windows"`
	WindowLen int         `json:"window_len"`
	Lambda    int         `json:"lambda"`
	Lambda0   int         `json:"lambda0"`
	Seed      uint64      `json:"seed"`
	// ShardLo/ShardHi echo the session's shard range ([0,0) = unsharded).
	ShardLo    int    `json:"shard_lo,omitempty"`
	ShardHi    int    `json:"shard_hi,omitempty"`
	Restore    string `json:"restore,omitempty"`
	Addr       string `json:"addr"`
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	// Shed is the canonical shed-policy name ("block", "reject", "fair").
	Shed string `json:"shed"`
	// RequestTimeoutMillis is the per-request timeout in milliseconds
	// (0: none).
	RequestTimeoutMillis int64 `json:"request_timeout_ms,omitempty"`
	// SnapshotIntervalMillis is the background snapshot period in
	// milliseconds (0: disabled); SnapshotPath is its target file.
	SnapshotIntervalMillis int64  `json:"snapshot_interval_ms,omitempty"`
	SnapshotPath           string `json:"snapshot_path,omitempty"`
}

// Resolve fills the spec's defaults and resolves every name against the
// registry, validating the measure × backend pairing; nothing is generated
// or built. The returned config is what the daemon serves under /stats.
func (s ServerSpec) Resolve() (ServerConfig, error) {
	di, mi, bi, err := s.SessionSpec.Resolve()
	if err != nil {
		return ServerConfig{}, err
	}
	lambda0, err := s.Lambda0For(mi)
	if err != nil {
		return ServerConfig{}, err
	}
	wl, err := resolveWindowLen(s.WindowLen)
	if err != nil {
		return ServerConfig{}, err
	}
	shed, err := subseq.ParseShedPolicy(s.Shed)
	if err != nil {
		return ServerConfig{}, fmt.Errorf("registry: %w", err)
	}
	if s.RequestTimeout < 0 {
		return ServerConfig{}, fmt.Errorf("registry: request timeout %v is negative", s.RequestTimeout)
	}
	if s.SnapshotInterval < 0 {
		return ServerConfig{}, fmt.Errorf("registry: snapshot interval %v is negative", s.SnapshotInterval)
	}
	if s.SnapshotInterval > 0 && s.SnapshotPath == "" {
		return ServerConfig{}, fmt.Errorf("registry: snapshot interval %v set without a snapshot path", s.SnapshotInterval)
	}
	if err := validSessionName(s.Name); err != nil {
		return ServerConfig{}, err
	}
	cfg := ServerConfig{
		Name:    s.Name,
		Dataset: di, Measure: mi, Backend: bi,
		Windows: s.Windows, WindowLen: wl,
		Lambda: 2 * wl, Lambda0: lambda0, Seed: s.Seed,
		ShardLo: s.ShardLo, ShardHi: s.ShardHi, Restore: s.Restore,
		Addr: s.Addr, Workers: s.Workers, QueueDepth: s.QueueDepth,
		Shed:                   shed.String(),
		RequestTimeoutMillis:   s.RequestTimeout.Milliseconds(),
		SnapshotIntervalMillis: s.SnapshotInterval.Milliseconds(),
		SnapshotPath:           s.SnapshotPath,
	}
	if cfg.Addr == "" {
		cfg.Addr = DefaultServeAddr
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = subseq.DefaultQueueDepth
	}
	return cfg, nil
}

// NewMatcher resolves spec, generates its dataset and builds the matcher
// over it. E must be the element type of the spec's dataset family.
func NewMatcher[E any](spec SessionSpec) (*subseq.Matcher[E], Dataset[E], error) {
	di, mi, bi, err := spec.Resolve()
	if err != nil {
		return nil, Dataset[E]{}, err
	}
	m, err := Measure[E](mi.Name)
	if err != nil {
		return nil, Dataset[E]{}, err
	}
	wl, err := resolveWindowLen(spec.WindowLen)
	if err != nil {
		return nil, Dataset[E]{}, err
	}
	lambda0, err := spec.Lambda0For(mi)
	if err != nil {
		return nil, Dataset[E]{}, err
	}
	ds, err := GenerateDataset[E](di.Name, spec.Windows, wl, spec.Seed)
	if err != nil {
		return nil, Dataset[E]{}, err
	}
	mt, err := subseq.NewMatcher(m, subseq.Config{
		Params: subseq.Params{Lambda: 2 * wl, Lambda0: lambda0},
		Index:  bi.Kind,
	}, ds.Sequences)
	if err != nil {
		return nil, Dataset[E]{}, err
	}
	return mt, ds, nil
}
