package registry_test

import (
	"context"
	"fmt"

	subseq "repro"
	"repro/registry"
)

// Resolving a measure by name: the string a CLI flag or a config file
// holds becomes a typed Measure, with aliases accepted.
func ExampleMeasure() {
	m, err := registry.Measure[byte]("levenshtein")
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Name, m.Props.Metric, m.Fn([]byte("kitten"), []byte("sitting")))

	// "frechet" is an alias for the canonical scalar DFD instantiation.
	dfd, err := registry.Measure[float64]("frechet")
	if err != nil {
		panic(err)
	}
	fmt.Println(dfd.Name, dfd.Fn([]float64{1, 2, 3}, []float64{1, 2, 5}))
	// Output:
	// levenshtein true 3
	// dfd 2
}

// Validating a measure × backend pairing up front: Compatible explains why
// an unsound combination is rejected instead of just rejecting it.
func ExampleCompatible() {
	dtw, _ := registry.LookupMeasure("dtw", "float64")
	refnet, _ := registry.Backend("refnet")
	linear, _ := registry.Backend("linear")
	fmt.Println(registry.Compatible(dtw, refnet))
	fmt.Println(registry.Compatible(dtw, linear))
	// Output:
	// measure "dtw" is not a metric: backend "refnet" prunes by the triangle inequality and would drop true matches — use the linear backend
	// <nil>
}

// Resolving a serving-daemon configuration from names: a ServerSpec is a
// SessionSpec plus the serving knobs, and Resolve yields the canonical
// configuration a daemon runs (and echoes on /stats). Building the server
// itself is then registry.NewMatcher plus a streaming QueryPool — exactly
// what `subseqctl serve` does.
func ExampleServerSpec() {
	spec := registry.ServerSpec{
		SessionSpec: registry.SessionSpec{
			Dataset: "proteins",
			Backend: "refnet",
			Windows: 30,
			Seed:    1,
		},
		Addr:       "127.0.0.1:8077",
		Workers:    4,
		QueueDepth: 256,
	}
	cfg, err := spec.Resolve()
	if err != nil {
		panic(err)
	}
	fmt.Println(cfg.Measure.Name, cfg.Backend.Name, cfg.Lambda, cfg.Addr, cfg.Workers)

	// The resolved session builds the matcher the daemon serves from; the
	// streaming pool answers its requests.
	matcher, ds, err := registry.NewMatcher[byte](spec.SessionSpec)
	if err != nil {
		panic(err)
	}
	pool := subseq.NewQueryPool(matcher, cfg.Workers, subseq.WithQueueDepth(cfg.QueueDepth))
	defer pool.Close()
	query := make(subseq.Sequence[byte], 60)
	copy(query, ds.Sequences[0][:60])
	res, err := pool.SubmitLongest(context.Background(), query, 2).Await(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Found)
	// Output:
	// levenshtein-fast refnet 40 127.0.0.1:8077 4
	// true
}

// Building a full session from names: dataset, measure and backend resolve
// through the registry, defaults fill in, and the pairing is validated
// before anything is generated.
func ExampleNewMatcher() {
	matcher, ds, err := registry.NewMatcher[byte](registry.SessionSpec{
		Dataset: "proteins",
		Measure: "protein-edit",
		Backend: "covertree",
		Windows: 30,
		Seed:    1,
	})
	if err != nil {
		panic(err)
	}
	query := make(subseq.Sequence[byte], 60)
	copy(query, ds.Sequences[0][:60])
	_, found := matcher.Longest(query, 2)
	fmt.Println(ds.Name, len(ds.Windows), found)
	// Output: proteins 30 true
}
