package registry_test

import (
	"fmt"

	subseq "repro"
	"repro/registry"
)

// Resolving a measure by name: the string a CLI flag or a config file
// holds becomes a typed Measure, with aliases accepted.
func ExampleMeasure() {
	m, err := registry.Measure[byte]("levenshtein")
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Name, m.Props.Metric, m.Fn([]byte("kitten"), []byte("sitting")))

	// "frechet" is an alias for the canonical scalar DFD instantiation.
	dfd, err := registry.Measure[float64]("frechet")
	if err != nil {
		panic(err)
	}
	fmt.Println(dfd.Name, dfd.Fn([]float64{1, 2, 3}, []float64{1, 2, 5}))
	// Output:
	// levenshtein true 3
	// dfd 2
}

// Validating a measure × backend pairing up front: Compatible explains why
// an unsound combination is rejected instead of just rejecting it.
func ExampleCompatible() {
	dtw, _ := registry.LookupMeasure("dtw", "float64")
	refnet, _ := registry.Backend("refnet")
	linear, _ := registry.Backend("linear")
	fmt.Println(registry.Compatible(dtw, refnet))
	fmt.Println(registry.Compatible(dtw, linear))
	// Output:
	// measure "dtw" is not a metric: backend "refnet" prunes by the triangle inequality and would drop true matches — use the linear backend
	// <nil>
}

// Building a full session from names: dataset, measure and backend resolve
// through the registry, defaults fill in, and the pairing is validated
// before anything is generated.
func ExampleNewMatcher() {
	matcher, ds, err := registry.NewMatcher[byte](registry.SessionSpec{
		Dataset: "proteins",
		Measure: "protein-edit",
		Backend: "covertree",
		Windows: 30,
		Seed:    1,
	})
	if err != nil {
		panic(err)
	}
	query := make(subseq.Sequence[byte], 60)
	copy(query, ds.Sequences[0][:60])
	_, found := matcher.Longest(query, 2)
	fmt.Println(ds.Name, len(ds.Windows), found)
	// Output: proteins 30 true
}
