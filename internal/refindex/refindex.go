// Package refindex implements reference-based indexing for metric spaces
// (Venkateswaran et al., VLDB 2006), the second baseline of the paper's
// evaluation. A set of k references is selected with the Maximum Variance
// heuristic; the index stores the n×k matrix of item-to-reference
// distances. A range query computes the k query-to-reference distances and
// uses the triangle inequality to prune items — or certify them — without
// touching the actual data, falling back to real distance computations only
// for items the bounds cannot decide.
//
// The paper's MV-5 / MV-20 / MV-50 configurations are instances with
// k = 5, 20, 50; space is Θ(n·k), which is why the paper contrasts them
// with the linear-space reference net.
package refindex

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/metric"
)

// Index is a reference-based metric index built over an initial item set
// by Build. The reference set is fixed at construction (matching [36],
// which selects references offline), but the item set may evolve: Insert
// appends an item and its table row (k distance computations), and
// RemoveFunc drops items with their rows. References are stored by value,
// so removing the item a reference was chosen from does not invalidate it
// — it simply remains a pivot. Reference quality is only a pruning
// concern, never a correctness one, so an index that has drifted far from
// its build-time distribution still answers exactly; rebuild when pruning
// degrades.
type Index[T any] struct {
	dist  metric.DistFunc[T]
	items []T
	refs  []T
	// table[i][j] = dist(items[i], refs[j]), laid out row-major.
	table []float64
	k     int
}

// Options configures reference selection.
type Options struct {
	// CandidatePool is how many randomly sampled items compete for each
	// reference slot (default 32).
	CandidatePool int
	// SampleSize is how many items each candidate's distance variance is
	// estimated over (default 128).
	SampleSize int
	// Seed seeds candidate and sample selection for reproducibility.
	Seed uint64
}

func (o *Options) defaults() {
	if o.CandidatePool <= 0 {
		o.CandidatePool = 32
	}
	if o.SampleSize <= 0 {
		o.SampleSize = 128
	}
}

// Build constructs an index over items with k references chosen by the
// Maximum Variance heuristic: among a random candidate pool, pick the
// items whose distances to a data sample have the largest variance —
// high-variance references split the data well under triangle-inequality
// bounds. Build computes n·k distances for the table plus the selection
// sample costs.
func Build[T any](items []T, k int, dist metric.DistFunc[T], opts Options) (*Index[T], error) {
	if k <= 0 {
		return nil, fmt.Errorf("refindex: k must be positive, got %d", k)
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("refindex: no items")
	}
	if k > len(items) {
		k = len(items)
	}
	opts.defaults()
	rng := rand.New(rand.NewPCG(opts.Seed, 0x9e3779b97f4a7c15))

	refs := selectMaxVariance(items, k, dist, opts, rng)
	idx := &Index[T]{
		dist: dist,
		// Copy: Insert/RemoveFunc mutate the item slice, and sharing the
		// caller's backing array would let those mutations collide with the
		// caller's own appends.
		items: append([]T(nil), items...),
		refs:  refs,
		table: make([]float64, len(items)*k),
		k:     k,
	}
	for i, it := range items {
		row := idx.table[i*k : (i+1)*k]
		for j, r := range refs {
			row[j] = dist(it, r)
		}
	}
	return idx, nil
}

// selectMaxVariance scores a random candidate pool by the variance of their
// distances to a random data sample and returns the top k scorers.
func selectMaxVariance[T any](items []T, k int, dist metric.DistFunc[T], opts Options, rng *rand.Rand) []T {
	pool := opts.CandidatePool * k
	if pool > len(items) {
		pool = len(items)
	}
	sample := opts.SampleSize
	if sample > len(items) {
		sample = len(items)
	}
	candIdx := rng.Perm(len(items))[:pool]
	sampleIdx := rng.Perm(len(items))[:sample]

	type scored struct {
		idx int
		v   float64
	}
	scoredCands := make([]scored, 0, pool)
	for _, ci := range candIdx {
		var sum, sumSq float64
		for _, si := range sampleIdx {
			d := dist(items[ci], items[si])
			sum += d
			sumSq += d * d
		}
		n := float64(len(sampleIdx))
		mean := sum / n
		scoredCands = append(scoredCands, scored{ci, sumSq/n - mean*mean})
	}
	// Partial selection sort: k is small.
	refs := make([]T, 0, k)
	for len(refs) < k && len(scoredCands) > 0 {
		best := 0
		for i := 1; i < len(scoredCands); i++ {
			if scoredCands[i].v > scoredCands[best].v {
				best = i
			}
		}
		refs = append(refs, items[scoredCands[best].idx])
		scoredCands[best] = scoredCands[len(scoredCands)-1]
		scoredCands = scoredCands[:len(scoredCands)-1]
	}
	return refs
}

// Len reports the number of indexed items.
func (x *Index[T]) Len() int { return len(x.items) }

// Insert appends an item, computing its k reference distances. Result
// order of Range is item insertion order, so an index grown by Insert
// answers queries identically to one built over the full set up front
// (references affect pruning cost only, never which items are returned).
// Not safe to call concurrently with queries.
func (x *Index[T]) Insert(item T) {
	x.items = append(x.items, item)
	for _, r := range x.refs {
		x.table = append(x.table, x.dist(item, r))
	}
}

// RemoveFunc deletes every item for which pred returns true, along with
// its distance-table row, preserving the order of the remainder. It
// returns the number of items removed. Not safe to call concurrently with
// queries.
func (x *Index[T]) RemoveFunc(pred func(T) bool) int {
	kept := x.items[:0]
	table := x.table[:0]
	for i, it := range x.items {
		if pred(it) {
			continue
		}
		kept = append(kept, it)
		table = append(table, x.table[i*x.k:(i+1)*x.k]...)
	}
	removed := len(x.items) - len(kept)
	var zero T
	for i := len(kept); i < len(x.items); i++ {
		x.items[i] = zero
	}
	x.items = kept
	x.table = table
	return removed
}

// K reports the number of references.
func (x *Index[T]) K() int { return x.k }

// References returns the selected references (shared slice; do not mutate).
func (x *Index[T]) References() []T { return x.refs }

// TableBytes reports the size of the precomputed distance table, the
// index's dominant space cost (8 bytes per entry).
func (x *Index[T]) TableBytes() int64 { return int64(len(x.table)) * 8 }

// Range returns every item within eps of q (inclusive). It computes k
// reference distances, then for each item derives
//
//	lower = max_j |d(q,ref_j) − table[i][j]|   (triangle inequality)
//	upper = min_j (d(q,ref_j) + table[i][j])
//
// pruning when lower > eps, certifying when upper ≤ eps, and computing the
// true distance only otherwise.
func (x *Index[T]) Range(q T, eps float64) []T {
	var out []T
	x.RangeFunc(q, eps, func(item T) { out = append(out, item) })
	return out
}

// RangeFunc streams every item within eps of q to yield.
func (x *Index[T]) RangeFunc(q T, eps float64, yield func(T)) {
	qd := make([]float64, x.k)
	for j, r := range x.refs {
		qd[j] = x.dist(q, r)
	}
	for i, it := range x.items {
		row := x.table[i*x.k : (i+1)*x.k]
		lower, upper := 0.0, qd[0]+row[0]
		for j := 0; j < x.k; j++ {
			lo := qd[j] - row[j]
			if lo < 0 {
				lo = -lo
			}
			if lo > lower {
				lower = lo
			}
			if hi := qd[j] + row[j]; hi < upper {
				upper = hi
			}
		}
		if lower > eps {
			continue
		}
		if upper <= eps {
			yield(it)
			continue
		}
		if x.dist(q, it) <= eps {
			yield(it)
		}
	}
}
