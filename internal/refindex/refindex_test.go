package refindex

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/metric"
)

func absDist(a, b float64) float64 { return math.Abs(a - b) }

func sortedScan(items []float64, q, eps float64) []float64 {
	var out []float64
	for _, v := range items {
		if absDist(q, v) <= eps {
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}

func buildUniform(t *testing.T, n, k int) (*Index[float64], []float64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(41, 42))
	items := make([]float64, n)
	for i := range items {
		items[i] = rng.Float64() * 1000
	}
	idx, err := Build(items, k, absDist, Options{Seed: 7})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return idx, items
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]float64{1}, 0, absDist, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Build(nil, 3, absDist, Options{}); err == nil {
		t.Error("empty items accepted")
	}
	// k larger than the dataset is clamped, not an error.
	idx, err := Build([]float64{1, 2}, 10, absDist, Options{})
	if err != nil {
		t.Fatalf("clamped k: %v", err)
	}
	if idx.K() > 2 {
		t.Errorf("K = %d, want ≤ 2", idx.K())
	}
}

func TestRangeMatchesLinearScan(t *testing.T) {
	idx, items := buildUniform(t, 500, 5)
	rng := rand.New(rand.NewPCG(43, 44))
	for _, eps := range []float64{0, 1, 10, 100, 1500} {
		for trial := 0; trial < 20; trial++ {
			q := rng.Float64() * 1000
			got := idx.Range(q, eps)
			sort.Float64s(got)
			want := sortedScan(items, q, eps)
			if len(got) != len(want) {
				t.Fatalf("eps=%v q=%v: got %d, want %d", eps, q, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("eps=%v q=%v: result sets differ", eps, q)
				}
			}
		}
	}
}

func TestMoreReferencesPruneMore(t *testing.T) {
	// With the same data, MV-20's bounds must decide at least as many
	// items as MV-2's, i.e. it computes no more ITEM distances (each
	// query additionally pays k reference distances up front — the very
	// overhead that makes MV-50 lose at large ranges in Figure 8).
	rng := rand.New(rand.NewPCG(45, 46))
	items := make([]float64, 1000)
	for i := range items {
		items[i] = rng.Float64() * 1000
	}
	const numQueries = 10
	itemCalls := func(k int) int64 {
		counter := metric.NewCounter(absDist)
		idx, err := Build(items, k, counter.Distance, Options{Seed: 7})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		counter.Reset()
		for q := 0.0; q < 1000; q += 1000 / numQueries {
			idx.Range(q, 5)
		}
		return counter.Calls() - int64(k*numQueries)
	}
	few, many := itemCalls(2), itemCalls(20)
	if many > few {
		t.Errorf("MV-20 computed %d item distances, MV-2 computed %d; more references should not prune less", many, few)
	}
}

func TestTableBytes(t *testing.T) {
	idx, _ := buildUniform(t, 100, 5)
	if got := idx.TableBytes(); got != 100*5*8 {
		t.Errorf("TableBytes = %d, want %d", got, 100*5*8)
	}
	if idx.Len() != 100 {
		t.Errorf("Len = %d", idx.Len())
	}
	if len(idx.References()) != 5 {
		t.Errorf("References = %d", len(idx.References()))
	}
}

func TestQueryCostIsBounded(t *testing.T) {
	// Each range query costs at most k + n distance computations.
	rng := rand.New(rand.NewPCG(47, 48))
	items := make([]float64, 400)
	for i := range items {
		items[i] = rng.Float64() * 100
	}
	counter := metric.NewCounter(absDist)
	idx, err := Build(items, 5, counter.Distance, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counter.Reset()
	idx.Range(50, 1)
	if calls := counter.Calls(); calls > int64(len(items)+5) {
		t.Errorf("query cost %d exceeds n+k", calls)
	}
	// And pruning should beat the naive n for a small radius.
	if calls := counter.Calls(); calls >= int64(len(items)) {
		t.Errorf("query computed %d distances; no pruning at all", calls)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	items := make([]float64, 200)
	rng := rand.New(rand.NewPCG(49, 50))
	for i := range items {
		items[i] = rng.Float64() * 100
	}
	a, err := Build(items, 4, absDist, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(items, 4, absDist, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.References() {
		if a.References()[i] != b.References()[i] {
			t.Fatal("same seed produced different references")
		}
	}
}
