package shard

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// adminShard is a fake replica recording which admin writes reached it.
type adminShard struct {
	mu      sync.Mutex
	appends int
	retires int
	paths   []string // snapshot targets received
	seqID   int      // allocated ID reported by /admin/append
	status  int      // admin verdict; 200 acks, 409 refuses, etc.
	srv     *httptest.Server
}

func newAdminShard(t *testing.T, seqID, status int) *adminShard {
	t.Helper()
	as := &adminShard{seqID: seqID, status: status}
	mux := http.NewServeMux()
	reply := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		if as.status != http.StatusOK {
			w.WriteHeader(as.status)
			json.NewEncoder(w).Encode(ErrorResponse{Error: "refused"})
			return
		}
		json.NewEncoder(w).Encode(v)
	}
	mux.HandleFunc("POST /admin/append", func(w http.ResponseWriter, r *http.Request) {
		as.mu.Lock()
		as.appends++
		as.mu.Unlock()
		reply(w, map[string]any{"seq_id": as.seqID, "windows_added": 3})
	})
	mux.HandleFunc("POST /admin/retire", func(w http.ResponseWriter, r *http.Request) {
		as.mu.Lock()
		as.retires++
		as.mu.Unlock()
		reply(w, map[string]any{"retired": true})
	})
	mux.HandleFunc("POST /admin/snapshot", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Path string `json:"path"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		as.mu.Lock()
		as.paths = append(as.paths, req.Path)
		as.mu.Unlock()
		reply(w, map[string]any{"path": req.Path, "bytes": 1})
	})
	as.srv = httptest.NewServer(mux)
	t.Cleanup(as.srv.Close)
	return as
}

func (as *adminShard) counts() (appends, retires int) {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.appends, as.retires
}

// adminFleet builds a 2-ranges × 2-replicas gateway over fake replicas.
// Appends allocate global ID 4 (the tail range [2,4) growing to [2,5)).
func adminFleet(t *testing.T) (*Gateway, [][]*adminShard) {
	t.Helper()
	shards := make([][]*adminShard, 2)
	groups := make([][]string, 2)
	for i := range shards {
		for j := 0; j < 2; j++ {
			as := newAdminShard(t, 4, http.StatusOK)
			shards[i] = append(shards[i], as)
			groups[i] = append(groups[i], as.srv.URL)
		}
	}
	g, err := NewReplicatedGateway(mustPlan(t, 4, []Range{{0, 2}, {2, 4}}), groups, WithCache(1<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	return g, shards
}

func decodeAdmin(t *testing.T, b []byte) AdminFanoutResponse {
	t.Helper()
	var ar AdminFanoutResponse
	if err := json.Unmarshal(b, &ar); err != nil {
		t.Fatalf("decoding admin response: %v: %s", err, b)
	}
	return ar
}

func TestAdminAppendFansToTailRangeAndGrowsPlan(t *testing.T) {
	g, shards := adminFleet(t)
	rec, b := doPost(t, g.Handler(), "/admin/append", `{"sequence":"abcdef"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("append: %d: %s", rec.Code, b)
	}
	ar := decodeAdmin(t, b)
	if ar.Op != "append" || ar.Acks != 2 || ar.Replicas != 2 || !ar.Quorum || ar.Diverged {
		t.Fatalf("append fan-out: %+v", ar)
	}
	if ar.Shard == nil || *ar.Shard != 1 || ar.SeqID == nil || *ar.SeqID != 4 {
		t.Fatalf("append ownership: shard %v seq %v", ar.Shard, ar.SeqID)
	}
	if ar.Epoch != 1 {
		t.Fatalf("epoch after append = %d", ar.Epoch)
	}
	// Only the tail range's replicas may see the write — both of them.
	for j, as := range shards[0] {
		if a, _ := as.counts(); a != 0 {
			t.Errorf("range 0 replica %d got %d appends", j, a)
		}
	}
	for j, as := range shards[1] {
		if a, _ := as.counts(); a != 1 {
			t.Errorf("range 1 replica %d got %d appends, want 1", j, a)
		}
	}
	// The plan grew: global ID 4 now exists, so retiring it must route.
	if p := g.Plan(); p.Seqs != 5 || p.Ranges[1].Hi != 5 {
		t.Fatalf("plan after append: %+v", p)
	}
	rec, b = doPost(t, g.Handler(), "/admin/retire", `{"seq_id":4}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("retire of appended id: %d: %s", rec.Code, b)
	}
	if ar := decodeAdmin(t, b); ar.Shard == nil || *ar.Shard != 1 || ar.Epoch != 2 {
		t.Fatalf("retire of appended id: %+v", ar)
	}
}

func TestAdminRetireRoutesToOwningRange(t *testing.T) {
	g, shards := adminFleet(t)
	rec, b := doPost(t, g.Handler(), "/admin/retire", `{"seq_id":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("retire: %d: %s", rec.Code, b)
	}
	ar := decodeAdmin(t, b)
	if ar.Shard == nil || *ar.Shard != 0 || ar.Acks != 2 || !ar.Quorum {
		t.Fatalf("retire fan-out: %+v", ar)
	}
	for j, as := range shards[0] {
		if _, r := as.counts(); r != 1 {
			t.Errorf("range 0 replica %d got %d retires, want 1", j, r)
		}
	}
	for j, as := range shards[1] {
		if _, r := as.counts(); r != 0 {
			t.Errorf("range 1 replica %d got %d retires", j, r)
		}
	}
}

func TestAdminRetireRejectsUnownedID(t *testing.T) {
	g, shards := adminFleet(t)
	for _, body := range []string{`{"seq_id":99}`, `{"seq_id":-1}`, `{}`, `not json`} {
		rec, b := doPost(t, g.Handler(), "/admin/retire", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("retire %s: status %d: %s", body, rec.Code, b)
		}
	}
	if g.Epoch() != 0 {
		t.Fatalf("rejected retires bumped the epoch to %d", g.Epoch())
	}
	for i := range shards {
		for j, as := range shards[i] {
			if _, r := as.counts(); r != 0 {
				t.Errorf("replica %d/%d saw a rejected retire", i, j)
			}
		}
	}
}

func TestAdminWriteQuorumAccountingUnderReplicaLoss(t *testing.T) {
	g, shards := adminFleet(t)
	shards[0][1].srv.Close() // one replica of the owning range is dead
	rec, b := doPost(t, g.Handler(), "/admin/retire", `{"seq_id":0}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("partially-acked write should still answer 200: %d: %s", rec.Code, b)
	}
	ar := decodeAdmin(t, b)
	if ar.Acks != 1 || ar.Replicas != 2 || ar.Quorum {
		t.Fatalf("quorum accounting: %+v", ar)
	}
	var dead *AdminReplicaResult
	for i := range ar.Results {
		if !ar.Results[i].OK {
			dead = &ar.Results[i]
		}
	}
	if dead == nil || dead.Error == "" {
		t.Fatalf("dead replica not itemised: %+v", ar.Results)
	}
	if ar.Epoch != 1 {
		t.Fatalf("an acked write must still invalidate: epoch %d", ar.Epoch)
	}
}

func TestAdminZeroAckPassesClientErrorVerbatim(t *testing.T) {
	// Both replicas refuse with 409 (e.g. covertree's unsupported
	// retire): the verdict passes through and nothing is invalidated.
	as0 := newAdminShard(t, 4, http.StatusConflict)
	as1 := newAdminShard(t, 4, http.StatusConflict)
	g, err := NewReplicatedGateway(mustPlan(t, 2, []Range{{0, 2}}),
		[][]string{{as0.srv.URL, as1.srv.URL}}, WithCache(1<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	rec, b := doPost(t, g.Handler(), "/admin/retire", `{"seq_id":0}`)
	if rec.Code != http.StatusConflict {
		t.Fatalf("status %d, want 409: %s", rec.Code, b)
	}
	var er ErrorResponse
	if err := json.Unmarshal(b, &er); err != nil || er.Error == "" {
		t.Fatalf("pass-through body not the shard's envelope: %s", b)
	}
	if g.Epoch() != 0 {
		t.Fatalf("refused write bumped the epoch to %d", g.Epoch())
	}
}

func TestAdminZeroAckAllDeadIs502(t *testing.T) {
	dead0 := httptest.NewServer(http.NotFoundHandler())
	dead0.Close()
	dead1 := httptest.NewServer(http.NotFoundHandler())
	dead1.Close()
	g, err := NewReplicatedGateway(mustPlan(t, 2, []Range{{0, 2}}),
		[][]string{{dead0.URL, dead1.URL}})
	if err != nil {
		t.Fatal(err)
	}
	rec, b := doPost(t, g.Handler(), "/admin/append", `{"sequence":"abc"}`)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502: %s", rec.Code, b)
	}
	if g.Epoch() != 0 {
		t.Fatalf("failed write bumped the epoch to %d", g.Epoch())
	}
}

func TestAdminSnapshotFansToWholeFleet(t *testing.T) {
	g, shards := adminFleet(t)
	rec, b := doPost(t, g.Handler(), "/admin/snapshot", `{"path":"/tmp/fleet.snap"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot: %d: %s", rec.Code, b)
	}
	ar := decodeAdmin(t, b)
	if ar.Op != "snapshot" || ar.Acks != 4 || ar.Replicas != 4 || !ar.Quorum {
		t.Fatalf("snapshot fan-out: %+v", ar)
	}
	if ar.Epoch != 0 {
		t.Fatalf("snapshot bumped the epoch to %d", ar.Epoch)
	}
	seen := map[string]bool{}
	for i := range shards {
		for j, as := range shards[i] {
			as.mu.Lock()
			paths := append([]string(nil), as.paths...)
			as.mu.Unlock()
			if len(paths) != 1 {
				t.Fatalf("replica %d/%d got %d snapshot calls", i, j, len(paths))
			}
			if seen[paths[0]] {
				t.Fatalf("snapshot path %q reused across replicas", paths[0])
			}
			seen[paths[0]] = true
		}
	}
	for _, res := range ar.Results {
		if res.Path == "" || !res.OK {
			t.Fatalf("snapshot result missing path or ack: %+v", res)
		}
	}
}
