package shard

import (
	"context"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Per-replica health model. Every replica of every range carries a
// consecutive-failure circuit breaker; breakers are fed from two sides —
// real query traffic (a transport error or 5xx is a failure, any decoded
// answer is a success) and the background /healthz prober — so a replica
// that dies under load is marked sick within a handful of requests even
// between probe ticks, and a replica that comes back is re-admitted by
// the next successful probe without waiting for a query to gamble on it.
//
// The breaker is deliberately availability-biased: its state orders the
// replicas a query tries (closed first, probe-ready next, open last) but
// never forbids the attempt outright. A range whose every breaker is
// open is still tried in full — the worst the breaker can do is cost a
// failed first attempt, never manufacture an outage the fleet doesn't
// actually have.

// BreakerState is a circuit breaker's routing verdict for one replica.
type BreakerState int

const (
	// BreakerClosed: the replica is believed healthy; route freely.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the replica failed repeatedly and its cool-down has
	// not elapsed; route only as a last resort.
	BreakerOpen
	// BreakerHalfOpen: the cool-down has elapsed; the replica should be
	// offered trial traffic — one success closes the breaker, one
	// failure re-arms the cool-down.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

const (
	// defaultBreakerThreshold is how many consecutive failures open a
	// breaker: one lost request is routine (a kill mid-flight, a dropped
	// connection), three in a row with zero successes in between is a
	// dead process.
	defaultBreakerThreshold = 3
	// defaultBreakerCooldown is how long an open breaker deflects
	// traffic before offering the replica a half-open trial.
	defaultBreakerCooldown = 5 * time.Second
	// defaultProbeInterval paces the background /healthz prober.
	defaultProbeInterval = 2 * time.Second
	// maxProbeTimeout caps a single health probe no matter how lazy the
	// probe interval is.
	maxProbeTimeout = 2 * time.Second
)

// breaker is one replica's consecutive-failure circuit breaker. The
// half-open state is derived rather than stored: an open breaker whose
// cool-down has elapsed reports BreakerHalfOpen, and the next outcome
// decides — success closes it, failure re-arms the cool-down from now.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	open        bool
	openedAt    time.Time
	consecFails int
	lastErr     string
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// state reports the breaker's routing verdict at time now.
func (b *breaker) state(now time.Time) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked(now)
}

func (b *breaker) stateLocked(now time.Time) BreakerState {
	if !b.open {
		return BreakerClosed
	}
	if now.Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return BreakerOpen
}

// success records a healthy interaction: the breaker closes and the
// failure streak resets, whatever state it was in.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.open = false
	b.consecFails = 0
	b.lastErr = ""
}

// failure records a failed interaction. A closed breaker opens at the
// consecutive-failure threshold; an open (or half-open) breaker re-arms
// its cool-down, so a failed trial pushes the next one a full cool-down
// out instead of hammering a still-dead replica.
func (b *breaker) failure(errText string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails++
	b.lastErr = errText
	if b.open {
		b.openedAt = time.Now()
		return
	}
	if b.consecFails >= b.threshold {
		b.open = true
		b.openedAt = time.Now()
	}
}

// status snapshots the breaker for /healthz and /stats reporting.
func (b *breaker) status(now time.Time) BreakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStatus{
		State:               b.stateLocked(now).String(),
		ConsecutiveFailures: b.consecFails,
		LastError:           b.lastErr,
	}
}

// replicaSet is one range's replicas: the endpoints, their breakers and
// a round-robin cursor that spreads first-attempt load across the
// healthy members.
type replicaSet struct {
	addrs    []string
	breakers []*breaker
	rr       atomic.Uint64
}

func newReplicaSet(addrs []string, threshold int, cooldown time.Duration) *replicaSet {
	s := &replicaSet{addrs: addrs, breakers: make([]*breaker, len(addrs))}
	for i := range s.breakers {
		s.breakers[i] = newBreaker(threshold, cooldown)
	}
	return s
}

// order returns the replica indices in attempt order: breaker-closed
// replicas first (rotated round-robin so repeated queries spread load),
// then half-open ones due a trial, then open ones as the last resort.
// Every replica always appears — the breaker biases routing, it never
// blacks a range out on its own.
func (s *replicaSet) order(now time.Time) []int {
	n := len(s.addrs)
	if n == 1 {
		return []int{0}
	}
	start := int(s.rr.Add(1)-1) % n
	closed := make([]int, 0, n)
	var trial, open []int
	for k := 0; k < n; k++ {
		i := (start + k) % n
		switch s.breakers[i].state(now) {
		case BreakerClosed:
			closed = append(closed, i)
		case BreakerHalfOpen:
			trial = append(trial, i)
		default:
			open = append(open, i)
		}
	}
	return append(append(closed, trial...), open...)
}

// health snapshots the set for reporting; probeOK, when non-nil, carries
// live per-replica probe results to fold in.
func (s *replicaSet) health(shard int, r Range, now time.Time, probeOK []bool) RangeHealth {
	rh := RangeHealth{Shard: shard, Range: r, Replicas: make([]ReplicaHealth, len(s.addrs))}
	for i, addr := range s.addrs {
		ok := s.breakers[i].state(now) == BreakerClosed
		if probeOK != nil {
			ok = probeOK[i]
		}
		if ok {
			rh.Up++
		}
		rh.Replicas[i] = ReplicaHealth{Replica: i, Addr: addr, OK: ok, Breaker: s.breakers[i].status(now)}
	}
	return rh
}

// StartProbing launches the background health prober: every probe
// interval, every replica's /healthz is fetched and the result fed to
// its breaker, so dead replicas are deflected before a query pays for
// the discovery and recovered ones are re-admitted promptly. Returns a
// stop function (idempotent to call once; blocks until the prober
// exits). A non-positive probe interval disables probing.
func (g *Gateway) StartProbing() (stop func()) {
	if g.probeInterval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(g.probeInterval)
		defer ticker.Stop()
		for {
			g.probeAll(context.Background())
			select {
			case <-done:
				return
			case <-ticker.C:
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// probeAll probes every replica of every range concurrently, feeding
// breakers, and returns the per-range live results (indexed like
// g.health). It is shared by the background prober and GET /healthz.
func (g *Gateway) probeAll(ctx context.Context) [][]bool {
	timeout := g.probeInterval
	if timeout <= 0 || timeout > maxProbeTimeout {
		timeout = maxProbeTimeout
	}
	results := make([][]bool, len(g.health))
	var wg sync.WaitGroup
	for ri, set := range g.health {
		results[ri] = make([]bool, len(set.addrs))
		for i := range set.addrs {
			wg.Add(1)
			go func(ri, i int, set *replicaSet) {
				defer wg.Done()
				pctx, cancel := context.WithTimeout(ctx, timeout)
				defer cancel()
				results[ri][i] = g.probeReplica(pctx, set, i)
			}(ri, i, set)
		}
	}
	wg.Wait()
	return results
}

// probeReplica GETs one replica's /healthz and feeds its breaker.
func (g *Gateway) probeReplica(ctx context.Context, set *replicaSet, i int) bool {
	resp, err := g.get(ctx, set.addrs[i]+"/healthz")
	if err != nil {
		set.breakers[i].failure(err.Error())
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		set.breakers[i].failure("healthz HTTP " + resp.Status)
		return false
	}
	set.breakers[i].success()
	return true
}
