package shard

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
)

// randomMatches draws n matches with small coordinates so duplicates and
// near-ties occur.
func randomMatches(rng *rand.Rand, n int) []Match {
	ms := make([]Match, n)
	for i := range ms {
		qs := rng.IntN(8)
		xs := rng.IntN(16)
		ms[i] = Match{
			SeqID:  rng.IntN(6),
			QStart: qs, QEnd: qs + 1 + rng.IntN(8),
			XStart: xs, XEnd: xs + 1 + rng.IntN(8),
			Dist: float64(rng.IntN(20)) / 4,
		}
	}
	return ms
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool { return matchLess(ms[i], ms[j]) })
}

func TestMergeMatchesEqualsGlobalSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.IntN(5)
		lists := make([][]Match, k)
		var all []Match
		for i := range lists {
			lists[i] = randomMatches(rng, rng.IntN(12))
			sortMatches(lists[i])
			all = append(all, lists[i]...)
		}
		sortMatches(all)
		got := MergeMatches(lists)
		if len(all) == 0 {
			if len(got) != 0 {
				t.Fatalf("trial %d: merged %d matches from empty input", trial, len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, all) {
			t.Fatalf("trial %d: k-way merge differs from global sort\n got %v\nwant %v", trial, got, all)
		}
	}
}

func TestMergeMatchesDisjointRangesIsConcatenation(t *testing.T) {
	// The Plan invariant: per-shard lists own disjoint ascending SeqID
	// ranges, so the merge must be the exact concatenation.
	a := []Match{{SeqID: 0, XStart: 5, XEnd: 9, QStart: 0, QEnd: 4, Dist: 1},
		{SeqID: 1, XStart: 0, XEnd: 3, QStart: 1, QEnd: 4, Dist: 0.5}}
	b := []Match{{SeqID: 2, XStart: 2, XEnd: 6, QStart: 0, QEnd: 4, Dist: 2}}
	c := []Match{{SeqID: 4, XStart: 1, XEnd: 5, QStart: 0, QEnd: 4, Dist: 0}}
	got := MergeMatches([][]Match{a, b, c})
	want := append(append(append([]Match{}, a...), b...), c...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge of disjoint ranges reordered:\n got %v\nwant %v", got, want)
	}
}

func TestMergeMatchesEmptyInputs(t *testing.T) {
	if got := MergeMatches(nil); len(got) != 0 {
		t.Fatalf("MergeMatches(nil) = %v", got)
	}
	if got := MergeMatches([][]Match{nil, {}, nil}); len(got) != 0 {
		t.Fatalf("MergeMatches(empties) = %v", got)
	}
}

func TestMergeHitsCanonicalOrder(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 13))
	lists := make([][]Hit, 3)
	var all []Hit
	for i := range lists {
		for j := 0; j < 10; j++ {
			h := Hit{SeqID: rng.IntN(4), WindowStart: rng.IntN(10), SegStart: rng.IntN(10)}
			h.WindowEnd = h.WindowStart + 4
			h.SegEnd = h.SegStart + 2 + rng.IntN(4)
			lists[i] = append(lists[i], h)
			all = append(all, h)
		}
	}
	got := MergeHits(lists)
	SortHits(all)
	if !reflect.DeepEqual(got, all) {
		t.Fatalf("MergeHits differs from canonical sort\n got %v\nwant %v", got, all)
	}
	for i := 1; i < len(got); i++ {
		if hitLess(got[i], got[i-1]) {
			t.Fatalf("merged hits out of order at %d: %v after %v", i, got[i], got[i-1])
		}
	}
}

func TestBestLongestDeterministic(t *testing.T) {
	longer := Match{SeqID: 3, QStart: 0, QEnd: 8, XStart: 0, XEnd: 8, Dist: 2}
	shorterCloser := Match{SeqID: 1, QStart: 0, QEnd: 6, XStart: 0, XEnd: 6, Dist: 0}
	tieLowSeq := Match{SeqID: 0, QStart: 0, QEnd: 8, XStart: 2, XEnd: 10, Dist: 2}

	if got := BestLongest([]*Match{&shorterCloser, &longer}); *got != longer {
		t.Fatalf("BestLongest preferred shorter match: %v", got)
	}
	// Equal QLen and Dist: canonical order (lowest SeqID) decides,
	// independent of argument order.
	for _, cands := range [][]*Match{{&longer, &tieLowSeq}, {&tieLowSeq, &longer}} {
		if got := BestLongest(cands); *got != tieLowSeq {
			t.Fatalf("BestLongest tie-break not canonical: %v", got)
		}
	}
	if got := BestLongest([]*Match{nil, nil}); got != nil {
		t.Fatalf("BestLongest of nils = %v", got)
	}
	if got := BestLongest(nil); got != nil {
		t.Fatalf("BestLongest(nil) = %v", got)
	}
}

func TestBestNearestDeterministic(t *testing.T) {
	near := Match{SeqID: 2, QStart: 0, QEnd: 4, XStart: 0, XEnd: 4, Dist: 0.25}
	far := Match{SeqID: 0, QStart: 0, QEnd: 4, XStart: 0, XEnd: 4, Dist: 1}
	tie := Match{SeqID: 1, QStart: 0, QEnd: 4, XStart: 9, XEnd: 13, Dist: 0.25}
	if got := BestNearest([]*Match{&far, &near}); *got != near {
		t.Fatalf("BestNearest preferred farther match: %v", got)
	}
	for _, cands := range [][]*Match{{&near, &tie}, {&tie, &near}} {
		if got := BestNearest(cands); *got != tie {
			t.Fatalf("BestNearest tie-break not canonical: %v", got)
		}
	}
}

func TestBestByDoesNotAliasInput(t *testing.T) {
	m := Match{SeqID: 1, QStart: 0, QEnd: 4, Dist: 1}
	got := BestNearest([]*Match{&m})
	if got == &m {
		t.Fatal("BestNearest returned the caller's pointer")
	}
	got.Dist = 99
	if m.Dist != 1 {
		t.Fatal("mutating the result mutated the input")
	}
}
