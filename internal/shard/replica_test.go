package shard

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newReplicatedTestGateway(t *testing.T, plan Plan, replicas [][]string, opts ...GatewayOption) *Gateway {
	t.Helper()
	g, err := NewReplicatedGateway(plan, replicas, opts...)
	if err != nil {
		t.Fatalf("NewReplicatedGateway: %v", err)
	}
	return g
}

func deadServer() *httptest.Server {
	s := httptest.NewServer(http.NotFoundHandler())
	s.Close() // connection refused from now on
	return s
}

// TestReplicaFailoverMasksDeadReplica: with two replicas per range and one
// replica dead, every query kind still answers 200 with no Degradation,
// byte-for-byte identical to a fleet with no failures.
func TestReplicaFailoverMasksDeadReplica(t *testing.T) {
	m0 := Match{SeqID: 0, QStart: 0, QEnd: 4, XStart: 1, XEnd: 5, Dist: 0.5}
	m2 := Match{SeqID: 2, QStart: 0, QEnd: 4, XStart: 3, XEnd: 7, Dist: 0.25}
	resp0 := map[string]any{"POST /query/findall": MatchesResponse{Count: 1, Matches: []Match{m0}}}
	resp1 := map[string]any{"POST /query/findall": MatchesResponse{Count: 1, Matches: []Match{m2}}}
	s0a, s0b := fakeShard(t, resp0), fakeShard(t, resp0)
	s1a := fakeShard(t, resp1)
	dead := deadServer()
	plan := mustPlan(t, 4, []Range{{0, 2}, {2, 4}})

	healthy := newReplicatedTestGateway(t, plan, [][]string{{s0a.URL, s0b.URL}, {s1a.URL}})
	_, wantBody := doPost(t, healthy.Handler(), "/query/findall", `{"query":"abc","eps":1}`)

	// Range 1's first replica is dead; the query must fail over silently.
	g := newReplicatedTestGateway(t, plan, [][]string{{s0a.URL, s0b.URL}, {dead.URL, s1a.URL}})
	for i := 0; i < 4; i++ { // several queries so round-robin hits the dead replica first at least once
		rec, body := doPost(t, g.Handler(), "/query/findall", `{"query":"abc","eps":1}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, rec.Code, body)
		}
		if !bytes.Equal(body, wantBody) {
			t.Fatalf("query %d: answer differs from healthy fleet:\n got %s\nwant %s", i, body, wantBody)
		}
		var resp MatchesResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if resp.Degradation != nil {
			t.Fatalf("query %d: replica loss leaked as degradation: %+v", i, resp.Degradation)
		}
	}
	if g.failovers.Load() == 0 {
		t.Error("dead replica never triggered a failover")
	}
}

// TestReplicaAllDownDegrades: only when every replica of a range is down
// does the range degrade, and the failure itemises each replica's error.
func TestReplicaAllDownDegrades(t *testing.T) {
	m0 := Match{SeqID: 0, QStart: 0, QEnd: 4, XStart: 1, XEnd: 5, Dist: 0.5}
	s0 := fakeShard(t, map[string]any{"POST /query/findall": MatchesResponse{Count: 1, Matches: []Match{m0}}})
	deadA, deadB := deadServer(), deadServer()
	plan := mustPlan(t, 4, []Range{{0, 2}, {2, 4}})
	g := newReplicatedTestGateway(t, plan, [][]string{{s0.URL}, {deadA.URL, deadB.URL}})

	rec, body := doPost(t, g.Handler(), "/query/findall", `{"query":"abc","eps":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp MatchesResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Degradation == nil || len(resp.Degradation.Failures) != 1 {
		t.Fatalf("degradation = %+v, want one range failure", resp.Degradation)
	}
	f := resp.Degradation.Failures[0]
	if f.Shard != 1 || (f.Range != Range{2, 4}) {
		t.Fatalf("failure names wrong range: %+v", f)
	}
	if !strings.Contains(f.Error, "all 2 replicas failed") {
		t.Fatalf("failure error %q does not say every replica failed", f.Error)
	}
	if len(f.Replicas) != 2 {
		t.Fatalf("replica errors = %+v, want both itemised", f.Replicas)
	}
	for _, re := range f.Replicas {
		if re.Addr == "" || re.Error == "" {
			t.Fatalf("replica error missing detail: %+v", re)
		}
	}
	if !strings.Contains(f.Addr, ",") {
		t.Fatalf("failure addr %q should list the whole replica set", f.Addr)
	}
}

// TestHedgedReadMasksStalledReplica: replica 0 stalls without erroring;
// the hedge fires, replica 1 answers, and the stalled attempt is
// cancelled through its context.
func TestHedgedReadMasksStalledReplica(t *testing.T) {
	m := Match{SeqID: 0, QStart: 0, QEnd: 4, XStart: 0, XEnd: 4, Dist: 1}
	cancelled := make(chan struct{})
	var cancelOnce sync.Once
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server can detect the client abort (a
		// handler with unread body bytes never sees the disconnect) —
		// real serve processes always decode the request first.
		io.ReadAll(r.Body)
		select {
		case <-r.Context().Done():
			cancelOnce.Do(func() { close(cancelled) })
		case <-time.After(30 * time.Second):
		}
	}))
	t.Cleanup(stalled.Close)
	fast := fakeShard(t, map[string]any{"POST /query/findall": MatchesResponse{Count: 1, Matches: []Match{m}}})

	plan := mustPlan(t, 2, []Range{{0, 2}})
	// Round-robin starts at replica 0 (the stalled one) for the first query.
	g := newReplicatedTestGateway(t, plan, [][]string{{stalled.URL, fast.URL}},
		WithHedgeAfter(10*time.Millisecond))

	start := time.Now()
	rec, body := doPost(t, g.Handler(), "/query/findall", `{"query":"abc","eps":1}`)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("hedge did not mask the stall: query took %v", elapsed)
	}
	var resp MatchesResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Count != 1 || resp.Matches[0] != m || resp.Degradation != nil {
		t.Fatalf("hedged answer wrong: %+v", resp)
	}
	if g.hedges.Load() != 1 || g.hedgeWins.Load() != 1 {
		t.Errorf("hedges = %d, hedgeWins = %d, want 1/1", g.hedges.Load(), g.hedgeWins.Load())
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled attempt was never cancelled")
	}
}

// TestBreakerStateMachine exercises the breaker directly: threshold
// failures open it, the cool-down elapsing derives half-open, a success
// closes it, a failed trial re-arms the cool-down.
func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(3, 50*time.Millisecond)
	now := time.Now()
	if s := b.state(now); s != BreakerClosed {
		t.Fatalf("fresh breaker = %v", s)
	}
	b.failure("boom")
	b.failure("boom")
	if s := b.state(now); s != BreakerClosed {
		t.Fatalf("below threshold should stay closed, got %v", s)
	}
	b.failure("boom")
	if s := b.state(time.Now()); s != BreakerOpen {
		t.Fatalf("at threshold should open, got %v", s)
	}
	if s := b.state(time.Now().Add(time.Second)); s != BreakerHalfOpen {
		t.Fatalf("after cool-down should be half-open, got %v", s)
	}
	// A failed half-open trial re-arms the cool-down from now.
	b.failure("still dead")
	if s := b.state(time.Now()); s != BreakerOpen {
		t.Fatalf("failed trial should re-open, got %v", s)
	}
	b.success()
	if s := b.state(time.Now()); s != BreakerClosed {
		t.Fatalf("success should close, got %v", s)
	}
	st := b.status(time.Now())
	if st.State != "closed" || st.ConsecutiveFailures != 0 || st.LastError != "" {
		t.Fatalf("status after success = %+v", st)
	}
}

// TestReplicaOrderPrefersClosedBreakers: open breakers are tried last but
// never dropped.
func TestReplicaOrderPrefersClosedBreakers(t *testing.T) {
	s := newReplicaSet([]string{"http://a", "http://b", "http://c"}, 1, time.Hour)
	s.breakers[0].failure("dead")
	now := time.Now()
	for trial := 0; trial < 6; trial++ {
		order := s.order(now)
		if len(order) != 3 {
			t.Fatalf("order dropped replicas: %v", order)
		}
		if order[len(order)-1] != 0 {
			t.Fatalf("open breaker not last: %v", order)
		}
		seen := map[int]bool{}
		for _, i := range order {
			seen[i] = true
		}
		if len(seen) != 3 {
			t.Fatalf("order repeats replicas: %v", order)
		}
	}
}

// TestProbingOpensAndRecoversBreaker: the health prober marks a sick
// replica open after threshold failed probes and re-admits it on the
// first successful probe.
func TestProbingOpensAndRecoversBreaker(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	t.Cleanup(flaky.Close)
	up := fakeShard(t, map[string]any{"GET /healthz": map[string]any{"ok": true}})

	plan := mustPlan(t, 2, []Range{{0, 2}})
	g := newReplicatedTestGateway(t, plan, [][]string{{flaky.URL, up.URL}},
		WithBreaker(3, 50*time.Millisecond))
	ctx := t.Context()

	g.probeAll(ctx)
	if s := g.health[0].breakers[0].state(time.Now()); s != BreakerClosed {
		t.Fatalf("healthy replica's breaker = %v", s)
	}
	healthy.Store(false)
	for i := 0; i < 3; i++ {
		g.probeAll(ctx)
	}
	if s := g.health[0].breakers[0].state(time.Now()); s != BreakerOpen {
		t.Fatalf("after 3 failed probes breaker = %v, want open", s)
	}
	healthy.Store(true)
	g.probeAll(ctx)
	if s := g.health[0].breakers[0].state(time.Now()); s != BreakerClosed {
		t.Fatalf("after recovery probe breaker = %v, want closed", s)
	}
}

// TestSingleFlightCollapsesIdenticalQueries: identical concurrent queries
// share one fan-out — the shard sees one request, every caller gets the
// same answer, and the hit/miss counters account for all of them.
func TestSingleFlightCollapsesIdenticalQueries(t *testing.T) {
	var shardHits atomic.Int64
	release := make(chan struct{})
	first := make(chan struct{}, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		shardHits.Add(1)
		select {
		case first <- struct{}{}:
		default:
		}
		<-release
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(MatchesResponse{Count: 0, Matches: []Match{}})
	}))
	t.Cleanup(srv.Close)

	g := newTestGateway(t, mustPlan(t, 2, []Range{{0, 2}}), []string{srv.URL})
	const callers = 8
	bodies := make([][]byte, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, bodies[i] = doPost(t, g.Handler(), "/query/findall", `{"query":"abc","eps":1}`)
		}(i)
	}
	<-first                            // the leader's fan-out reached the shard
	time.Sleep(200 * time.Millisecond) // let the other callers join the flight
	close(release)
	wg.Wait()

	hits, misses := g.flightHits.Load(), g.flightMisses.Load()
	if hits+misses != callers {
		t.Fatalf("hits %d + misses %d != %d callers", hits, misses, callers)
	}
	if hits == 0 {
		t.Fatal("no caller joined an existing flight")
	}
	if got := shardHits.Load(); got != misses {
		t.Fatalf("shard saw %d requests but gateway counted %d misses", got, misses)
	}
	for i := 1; i < callers; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("caller %d got a different body", i)
		}
	}
}

// TestHealthzReportsBreakers: /healthz carries the full per-range,
// per-replica roster — probe verdicts, breaker states and last errors.
func TestHealthzReportsBreakers(t *testing.T) {
	up := fakeShard(t, map[string]any{"GET /healthz": map[string]any{"ok": true}})
	dead := deadServer()
	plan := mustPlan(t, 4, []Range{{0, 2}, {2, 4}})
	g := newReplicatedTestGateway(t, plan, [][]string{{up.URL, dead.URL}, {up.URL}},
		WithBreaker(3, time.Hour))

	var resp HealthzResponse
	for i := 0; i < 3; i++ { // each /healthz probes once; 3 failures open the breaker
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		rec := httptest.NewRecorder()
		g.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("healthz status %d with a live replica per range", rec.Code)
		}
		resp = HealthzResponse{}
		if err := json.NewDecoder(rec.Result().Body).Decode(&resp); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	if !resp.OK || !resp.FullCoverage || resp.ShardsUp != 2 {
		t.Fatalf("fleet verdicts = %+v, want ok + full coverage (every range has a live replica)", resp)
	}
	if len(resp.Ranges) != 2 || len(resp.Ranges[0].Replicas) != 2 {
		t.Fatalf("roster shape wrong: %+v", resp.Ranges)
	}
	r0 := resp.Ranges[0]
	if r0.Up != 1 {
		t.Fatalf("range 0 up = %d, want 1", r0.Up)
	}
	live, sick := r0.Replicas[0], r0.Replicas[1]
	if !live.OK || live.Breaker.State != "closed" {
		t.Fatalf("live replica = %+v", live)
	}
	if sick.OK || sick.Breaker.State != "open" {
		t.Fatalf("dead replica = %+v", sick)
	}
	if sick.Breaker.ConsecutiveFailures < 3 || sick.Breaker.LastError == "" {
		t.Fatalf("dead replica breaker detail = %+v", sick.Breaker)
	}
}

// TestStatsReportsReplication: /stats names the answering replica per
// range and carries the breaker roster plus the new counters.
func TestStatsReportsReplication(t *testing.T) {
	stats := map[string]any{"num_windows": 40}
	dead := deadServer()
	up := fakeShard(t, map[string]any{"GET /stats": stats})
	plan := mustPlan(t, 2, []Range{{0, 2}})
	g := newReplicatedTestGateway(t, plan, [][]string{{dead.URL, up.URL}})

	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	var resp GatewayStatsResponse
	if err := json.NewDecoder(rec.Result().Body).Decode(&resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(resp.Shards) != 1 || !resp.Shards[0].OK {
		t.Fatalf("stats should come from the live replica: %+v", resp.Shards)
	}
	if resp.Shards[0].Replica != 1 || resp.Shards[0].Addr != strings.TrimRight(up.URL, "/") {
		t.Fatalf("answering replica not named: %+v", resp.Shards[0])
	}
	if resp.Totals.NumWindows != 40 {
		t.Fatalf("totals = %+v", resp.Totals)
	}
	if resp.Degradation != nil {
		t.Fatalf("one live replica should satisfy stats: %+v", resp.Degradation)
	}
	if len(resp.Replication) != 1 || len(resp.Replication[0].Replicas) != 2 {
		t.Fatalf("replication roster = %+v", resp.Replication)
	}
}

func TestNewReplicatedGatewayValidation(t *testing.T) {
	plan := mustPlan(t, 4, []Range{{0, 2}, {2, 4}})
	if _, err := NewReplicatedGateway(plan, [][]string{{"http://a"}}); err == nil {
		t.Fatal("accepted replica-set count != range count")
	}
	if _, err := NewReplicatedGateway(plan, [][]string{{"http://a"}, {}}); err == nil {
		t.Fatal("accepted empty replica set")
	}
	if _, err := NewReplicatedGateway(plan, [][]string{{"http://a"}, {"http://b", ""}}); err == nil {
		t.Fatal("accepted empty replica URL")
	}
}
