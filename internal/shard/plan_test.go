package shard

import (
	"math/rand/v2"
	"strings"
	"testing"
)

func TestPartitionEvenAndRemainder(t *testing.T) {
	cases := []struct {
		seqs, n int
		want    []Range
	}{
		{seqs: 6, n: 3, want: []Range{{0, 2}, {2, 4}, {4, 6}}},
		{seqs: 7, n: 3, want: []Range{{0, 3}, {3, 5}, {5, 7}}},
		{seqs: 5, n: 1, want: []Range{{0, 5}}},
		{seqs: 3, n: 3, want: []Range{{0, 1}, {1, 2}, {2, 3}}},
	}
	for _, c := range cases {
		p, err := Partition(c.seqs, c.n)
		if err != nil {
			t.Fatalf("Partition(%d, %d): %v", c.seqs, c.n, err)
		}
		if p.Seqs != c.seqs || len(p.Ranges) != len(c.want) {
			t.Fatalf("Partition(%d, %d) = %+v", c.seqs, c.n, p)
		}
		for i, r := range p.Ranges {
			if r != c.want[i] {
				t.Errorf("Partition(%d, %d) range %d = %v, want %v", c.seqs, c.n, i, r, c.want[i])
			}
		}
	}
}

func TestPartitionRejections(t *testing.T) {
	cases := []struct {
		name    string
		seqs, n int
		wantSub string
	}{
		{"zero sequences", 0, 1, "cannot partition"},
		{"zero shards", 5, 0, "at least 1"},
		{"more shards than sequences", 3, 5, "empty"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Partition(c.seqs, c.n)
			if err == nil {
				t.Fatalf("Partition(%d, %d) accepted", c.seqs, c.n)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestPlanFromRangesValidation(t *testing.T) {
	cases := []struct {
		name    string
		seqs    int
		ranges  []Range
		wantSub string // "" means accept
	}{
		{"exact cover", 10, []Range{{0, 4}, {4, 10}}, ""},
		{"single shard", 10, []Range{{0, 10}}, ""},
		{"no ranges", 10, nil, "no ranges"},
		{"negative start", 10, []Range{{-1, 10}}, "before sequence 0"},
		{"empty range", 10, []Range{{0, 5}, {5, 5}, {5, 10}}, "empty"},
		{"gap", 10, []Range{{0, 4}, {6, 10}}, "unassigned"},
		{"overlap", 10, []Range{{0, 6}, {4, 10}}, "overlaps"},
		{"doesn't start at zero", 10, []Range{{2, 10}}, "unassigned"},
		{"short of the end", 10, []Range{{0, 8}}, "unassigned"},
		{"past the end", 10, []Range{{0, 12}}, "past the"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := PlanFromRanges(c.seqs, c.ranges)
			if c.wantSub == "" {
				if err != nil {
					t.Fatalf("rejected valid plan: %v", err)
				}
				if p.Seqs != c.seqs {
					t.Fatalf("Seqs = %d, want %d", p.Seqs, c.seqs)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted invalid plan %v", c.ranges)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestRandomPlanAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 200; trial++ {
		seqs := 1 + rng.IntN(40)
		n := 1 + rng.IntN(seqs)
		p, err := RandomPlan(seqs, n, rng)
		if err != nil {
			t.Fatalf("RandomPlan(%d, %d): %v", seqs, n, err)
		}
		if len(p.Ranges) != n {
			t.Fatalf("RandomPlan(%d, %d): %d ranges", seqs, n, len(p.Ranges))
		}
		// PlanFromRanges already validated coverage; re-assert the invariant
		// independently.
		want := 0
		for _, r := range p.Ranges {
			if r.Lo != want || r.Hi <= r.Lo {
				t.Fatalf("RandomPlan(%d, %d): bad range %v at lo=%d", seqs, n, r, want)
			}
			want = r.Hi
		}
		if want != seqs {
			t.Fatalf("RandomPlan(%d, %d): covers [0,%d)", seqs, n, want)
		}
	}
}
