package shard

import "sync"

// Single-flight collapse of identical in-flight queries. Two clients
// asking the gateway the exact same question (same endpoint, same raw
// body — which pins kind, ε and the query bytes) at the same moment
// would trigger two identical fan-outs over the fleet; instead the
// second joins the first's flight and both get the one merged answer.
// Queries are pure reads over an immutable-per-request index view, so
// sharing the response bytes is semantically free; the only care needed
// is that the shared fan-out must not die with whichever caller happens
// to lead it (the gateway detaches the flight from the leader's request
// context before scattering).

// flightResult is the materialised HTTP answer a flight produces: every
// waiter writes the same status and body.
type flightResult struct {
	status int
	body   []byte
	// degraded marks an answer merged without every range. Such a result
	// is still served to the flight's waiters but must never enter the
	// result cache — the next attempt may get the complete answer.
	degraded bool
}

// flightCall is one in-flight fan-out; done closes when res is set.
type flightCall struct {
	done chan struct{}
	res  flightResult
}

// flightGroup deduplicates concurrent calls by key.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// do executes fn once per key among concurrent callers: the first caller
// (the leader) runs fn, everyone else blocks until the leader finishes
// and shares its result. shared reports whether this caller joined an
// existing flight instead of leading one. Once a flight completes its
// key is forgotten, so a later identical query fans out afresh.
func (fg *flightGroup) do(key string, fn func() flightResult) (res flightResult, shared bool) {
	fg.mu.Lock()
	if fg.m == nil {
		fg.m = make(map[string]*flightCall)
	}
	if c, ok := fg.m[key]; ok {
		fg.mu.Unlock()
		<-c.done
		return c.res, true
	}
	c := &flightCall{done: make(chan struct{})}
	fg.m[key] = c
	fg.mu.Unlock()

	// Waiters must never hang: even if fn panics (the HTTP server
	// recovers per-connection panics, so the process would survive with
	// the flight stuck forever), the key is released and done closed.
	defer func() {
		fg.mu.Lock()
		delete(fg.m, key)
		fg.mu.Unlock()
		close(c.done)
	}()
	c.res = fn()
	return c.res, false
}

// pending reports the number of in-flight keys — the leak probe tests
// use: once traffic quiesces it must return to zero.
func (fg *flightGroup) pending() int {
	fg.mu.Lock()
	defer fg.mu.Unlock()
	return len(fg.m)
}
