package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- canonical key ---

func TestCacheKeyCanonicalisation(t *testing.T) {
	const path, epoch = "/query/findall", 7
	key := func(body string) string {
		t.Helper()
		k, err := CacheKey(path, epoch, []byte(body))
		if err != nil {
			t.Fatalf("CacheKey(%q): %v", body, err)
		}
		return k
	}
	equal := []struct{ name, a, b string }{
		{"whitespace is noise", `{"query":"abc","eps":2}`, ` { "query" : "abc" , "eps" : 2 } `},
		{"key order is noise", `{"query":"abc","eps":2}`, `{"eps":2,"query":"abc"}`},
		{"nested key order is noise", `{"q":{"a":1,"b":[1,2]}}`, `{"q":{"b":[1,2],"a":1}}`},
		{"duplicate keys collapse last-wins, as the shards decode them",
			`{"eps":1,"eps":2,"query":"abc"}`, `{"query":"abc","eps":2}`},
	}
	for _, tc := range equal {
		t.Run(tc.name, func(t *testing.T) {
			if key(tc.a) != key(tc.b) {
				t.Errorf("keys differ:\n  %q\n  %q", tc.a, tc.b)
			}
		})
	}
	distinct := []struct{ name, a, b string }{
		{"different eps", `{"query":"abc","eps":2}`, `{"query":"abc","eps":3}`},
		{"different query", `{"query":"abc","eps":2}`, `{"query":"abd","eps":2}`},
		{"number literals stay verbatim", `{"eps":1}`, `{"eps":1.0}`},
		{"null is not absent", `{"query":null}`, `{}`},
		{"null is not empty string", `{"query":null}`, `{"query":""}`},
		{"empty string is not empty array", `{"query":""}`, `{"query":[]}`},
		{"empty array is not null", `{"query":[]}`, `{"query":null}`},
	}
	for _, tc := range distinct {
		t.Run(tc.name, func(t *testing.T) {
			if key(tc.a) == key(tc.b) {
				t.Errorf("distinct bodies collide: %q vs %q", tc.a, tc.b)
			}
		})
	}

	// Path and epoch are part of the key.
	body := []byte(`{"query":"abc","eps":2}`)
	k1, _ := CacheKey("/query/findall", 1, body)
	k2, _ := CacheKey("/query/filter", 1, body)
	k3, _ := CacheKey("/query/findall", 2, body)
	if k1 == k2 || k1 == k3 {
		t.Errorf("path/epoch not separating keys: %q %q %q", k1, k2, k3)
	}
}

func TestCacheKeyRejectsNonCanonicalisableBodies(t *testing.T) {
	for _, body := range []string{"", "not json", `{"a":1} trailing`, `{"a":}`} {
		if _, err := CacheKey("/query/findall", 0, []byte(body)); err == nil {
			t.Errorf("CacheKey accepted %q", body)
		}
	}
}

// --- LRU / TTL / flush mechanics ---

// sameSegmentKeys finds n keys hashing to one cache segment, so LRU
// order inside that segment is deterministic to assert.
func sameSegmentKeys(t *testing.T, n int) []string {
	t.Helper()
	var keys []string
	for i := 0; len(keys) < n && i < 1_000_000; i++ {
		k := fmt.Sprintf("k%06d", i)
		if segIndex(k) == 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) < n {
		t.Fatalf("found only %d same-segment keys", len(keys))
	}
	return keys
}

func TestCacheLRUEvictionWithinByteBudget(t *testing.T) {
	// Per-segment budget 300 bytes; each entry is 7 (key) + 1 (body) +
	// overhead = 136, so two fit and a third evicts the least recent.
	c := NewCache(300*cacheSegments, 0)
	k := sameSegmentKeys(t, 3)
	c.Put(k[0], []byte("a"))
	c.Put(k[1], []byte("b"))
	if _, ok := c.Get(k[0]); !ok { // refresh k0: k1 is now least recent
		t.Fatal("k0 missing before eviction")
	}
	c.Put(k[2], []byte("c"))
	if _, ok := c.Get(k[1]); ok {
		t.Error("least-recently-used entry survived over budget")
	}
	if _, ok := c.Get(k[0]); !ok {
		t.Error("recently-used entry evicted")
	}
	if _, ok := c.Get(k[2]); !ok {
		t.Error("newest entry evicted")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Errorf("evictions=%d entries=%d, want 1 and 2", s.Evictions, s.Entries)
	}
	if s.Bytes <= 0 || s.Bytes > 300 {
		t.Errorf("segment bytes %d outside (0, 300]", s.Bytes)
	}
}

func TestCacheOversizedEntryIsNotStored(t *testing.T) {
	c := NewCache(256*cacheSegments, 0)
	c.Put("big", make([]byte, 4096))
	if _, ok := c.Get("big"); ok {
		t.Error("entry larger than a segment budget was cached")
	}
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Errorf("stats after rejected put: %+v", s)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := NewCache(1<<20, time.Second)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.Put("k", []byte("v"))
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry missing before expiry")
	}
	now = now.Add(2 * time.Second)
	if _, ok := c.Get("k"); ok {
		t.Error("expired entry served")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 0 {
		t.Errorf("expiry not counted as eviction: %+v", s)
	}
}

func TestCacheFlushCountsInvalidations(t *testing.T) {
	c := NewCache(1<<20, 0)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	if n := c.Flush(); n != 10 {
		t.Errorf("Flush dropped %d entries, want 10", n)
	}
	s := c.Stats()
	if s.Invalidations != 10 || s.Entries != 0 || s.Bytes != 0 {
		t.Errorf("stats after flush: %+v", s)
	}
	if _, ok := c.Get("k0"); ok {
		t.Error("entry survived flush")
	}
}

// --- single-flight + cache interaction ---

// gatedShard is a fake shard whose findall handler blocks on a gate, so
// a test can hold a flight open while more requests pile in. Admin
// endpoints ack immediately.
type gatedShard struct {
	mu      sync.Mutex
	calls   int // findall arrivals
	status  int
	gate    chan struct{}
	entered chan struct{}
	srv     *httptest.Server
}

func newGatedShard(t *testing.T, status int) *gatedShard {
	t.Helper()
	gs := &gatedShard{status: status, gate: make(chan struct{}), entered: make(chan struct{}, 64)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query/findall", func(w http.ResponseWriter, r *http.Request) {
		gs.mu.Lock()
		gs.calls++
		gs.mu.Unlock()
		gs.entered <- struct{}{}
		<-gs.gate
		w.Header().Set("Content-Type", "application/json")
		if gs.status != http.StatusOK {
			w.WriteHeader(gs.status)
			json.NewEncoder(w).Encode(ErrorResponse{Error: "injected"})
			return
		}
		json.NewEncoder(w).Encode(MatchesResponse{Count: 1, Matches: []Match{{SeqID: 0, QEnd: 3, XEnd: 3, Dist: 1}}})
	})
	ack := func(v any) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(v)
		}
	}
	mux.HandleFunc("POST /admin/append", ack(map[string]any{"seq_id": 2, "windows_added": 1}))
	mux.HandleFunc("POST /admin/retire", ack(map[string]any{"seq_id": 0, "retired": true}))
	gs.srv = httptest.NewServer(mux)
	t.Cleanup(gs.srv.Close)
	return gs
}

func (gs *gatedShard) callCount() int {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.calls
}

// TestFlightCacheInteraction is the table the PR 10 issue asks for: how
// the cache composes with the single-flight group. Each case runs one
// round of concurrent identical queries against a gated shard, releases
// the gate, then probes with one more identical query to see whether the
// first round populated the cache.
func TestFlightCacheInteraction(t *testing.T) {
	cases := []struct {
		name         string
		concurrent   int
		cancelLeader bool
		shardStatus  int
		deadRange    bool
		wantStatus   int
		wantRound1   int  // shard calls after round 1
		wantCached   bool // probe answered from cache (no new shard call)
	}{
		{name: "miss populates cache, repeat hits it",
			concurrent: 1, shardStatus: 200, wantStatus: 200, wantRound1: 1, wantCached: true},
		{name: "in-flight identical misses join the leader's flight",
			concurrent: 8, shardStatus: 200, wantStatus: 200, wantRound1: 1, wantCached: true},
		{name: "cancelled leader neither poisons nor loses the answer",
			concurrent: 1, cancelLeader: true, shardStatus: 200, wantStatus: 200, wantRound1: 1, wantCached: true},
		{name: "failed flights are not cached",
			concurrent: 1, shardStatus: 500, wantStatus: http.StatusBadGateway, wantRound1: 1, wantCached: false},
		{name: "degraded answers are not cached",
			concurrent: 1, shardStatus: 200, deadRange: true, wantStatus: 200, wantRound1: 1, wantCached: false},
	}
	const body = `{"query":"abc","eps":1}`
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gs := newGatedShard(t, tc.shardStatus)
			urls := []string{gs.srv.URL}
			ranges := []Range{{0, 2}}
			if tc.deadRange {
				dead := httptest.NewServer(http.NotFoundHandler())
				dead.Close()
				urls = append(urls, dead.URL)
				ranges = append(ranges, Range{2, 4})
			}
			g, err := NewGateway(mustPlan(t, ranges[len(ranges)-1].Hi, ranges), urls,
				WithCache(1<<20, 0))
			if err != nil {
				t.Fatal(err)
			}

			type reply struct {
				code int
				body string
			}
			replies := make(chan reply, tc.concurrent)
			var cancel context.CancelFunc
			for i := 0; i < tc.concurrent; i++ {
				req := httptest.NewRequest(http.MethodPost, "/query/findall", strings.NewReader(body))
				if i == 0 && tc.cancelLeader {
					var ctx context.Context
					ctx, cancel = context.WithCancel(context.Background())
					req = req.WithContext(ctx)
				}
				go func(req *http.Request) {
					rec := httptest.NewRecorder()
					g.Handler().ServeHTTP(rec, req)
					replies <- reply{rec.Code, rec.Body.String()}
				}(req)
				if i == 0 {
					// Let the leader's fan-out reach the shard before the
					// followers start, so they find a flight to join. (If one
					// raced in late it would hit the freshly populated cache
					// instead — either way the shard computes once.)
					<-gs.entered
				}
			}
			if cancel != nil {
				cancel() // leader's client goes away mid-flight
				time.Sleep(20 * time.Millisecond)
			}
			close(gs.gate)
			var got []reply
			for i := 0; i < tc.concurrent; i++ {
				got = append(got, <-replies)
			}
			for i, r := range got {
				if r.code != tc.wantStatus {
					t.Fatalf("reply %d: status %d, want %d (%s)", i, r.code, tc.wantStatus, r.body)
				}
				if r.body != got[len(got)-1].body {
					t.Fatalf("reply %d differs from its flight peers", i)
				}
			}
			if n := gs.callCount(); n != tc.wantRound1 {
				t.Fatalf("shard computed %d times in round 1, want %d", n, tc.wantRound1)
			}

			// Probe: one more identical request. A cached answer must not
			// reach the shard; an uncacheable one must.
			done := make(chan reply, 1)
			go func() {
				rec := httptest.NewRecorder()
				g.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query/findall", strings.NewReader(body)))
				done <- reply{rec.Code, rec.Body.String()}
			}()
			if !tc.wantCached {
				<-gs.entered // the probe must fan out again
			}
			probe := <-done
			wantCalls := tc.wantRound1
			if !tc.wantCached {
				wantCalls++
			}
			if n := gs.callCount(); n != wantCalls {
				t.Fatalf("shard calls after probe = %d, want %d", n, wantCalls)
			}
			if probe.code != tc.wantStatus {
				t.Fatalf("probe status %d, want %d (%s)", probe.code, tc.wantStatus, probe.body)
			}
			if tc.wantCached {
				if cs, ok := g.CacheStats(); !ok || cs.Hits == 0 || cs.Entries != 1 {
					t.Fatalf("cache stats after hit: %+v", cs)
				}
				// Cached bytes must be the flight's own answer, bit for bit.
				if probe.body != got[len(got)-1].body {
					t.Fatal("cached answer differs from the flight's answer")
				}
			}
			if p := g.PendingFlights(); p != 0 {
				t.Fatalf("%d flights leaked", p)
			}
		})
	}
}

// TestWriteInvalidatesCache drives the full loop: warm the cache, mutate
// through the gateway's admin fan-out, and prove the cached answer is
// unreachable — the next identical query fans out afresh under the new
// epoch.
func TestWriteInvalidatesCache(t *testing.T) {
	gs := newGatedShard(t, http.StatusOK)
	close(gs.gate) // nothing gated in this test
	g, err := NewGateway(mustPlan(t, 2, []Range{{0, 2}}), []string{gs.srv.URL}, WithCache(1<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	const body = `{"query":"abc","eps":1}`
	post := func(path, b string) (*httptest.ResponseRecorder, []byte) {
		return doPost(t, g.Handler(), path, b)
	}
	post("/query/findall", body)
	post("/query/findall", body)
	drain := func() {
		for {
			select {
			case <-gs.entered:
			default:
				return
			}
		}
	}
	drain()
	if n := gs.callCount(); n != 1 {
		t.Fatalf("warm-up computed %d times, want 1", n)
	}
	if g.Epoch() != 0 {
		t.Fatalf("epoch %d before any write", g.Epoch())
	}

	rec, b := post("/admin/retire", `{"seq_id":0}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("retire through gateway: %d: %s", rec.Code, b)
	}
	var ar AdminFanoutResponse
	if err := json.Unmarshal(b, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Epoch != 1 || ar.Invalidated != 1 || ar.Acks != 1 || !ar.Quorum {
		t.Fatalf("retire fan-out: %+v", ar)
	}
	if g.Epoch() != 1 {
		t.Fatalf("epoch %d after write, want 1", g.Epoch())
	}

	post("/query/findall", body)
	drain()
	if n := gs.callCount(); n != 2 {
		t.Fatalf("post-write query computed %d times total, want 2 (fresh fan-out)", n)
	}
	cs, _ := g.CacheStats()
	if cs.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", cs.Invalidations)
	}
}

// TestNonJSONBodiesBypassCache: a body that is not one JSON value cannot
// be canonically keyed; it must never be cached (the shards will judge
// it), though identical concurrent copies still collapse by raw bytes.
func TestNonJSONBodiesBypassCache(t *testing.T) {
	gs := newGatedShard(t, http.StatusOK)
	close(gs.gate)
	g, err := NewGateway(mustPlan(t, 2, []Range{{0, 2}}), []string{gs.srv.URL}, WithCache(1<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		doPost(t, g.Handler(), "/query/findall", "not json at all")
	}
	for i := 0; i < 2; i++ {
		<-gs.entered
	}
	if n := gs.callCount(); n != 2 {
		t.Fatalf("non-JSON body hit the cache: %d shard calls, want 2", n)
	}
	if cs, _ := g.CacheStats(); cs.Entries != 0 {
		t.Fatalf("non-JSON body was cached: %+v", cs)
	}
}
