package shard

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzCacheKey hammers the canonical cache-key encoding with arbitrary
// body pairs. The invariants are the ones the result cache's correctness
// rests on:
//
//   - determinism: the same (path, epoch, body) always yields the same
//     key — across calls, processes and sessions (nothing in the encoding
//     may depend on map order, addresses or time);
//   - idempotence: canonicalising a canonical body is the identity, so
//     formatting variants of one query funnel to one key;
//   - injectivity: two bodies share a key only if they decode to the
//     same JSON value — i.e. only if the shards themselves could not
//     tell them apart. Distinct queries never collide;
//   - separation: the epoch and the path are always part of the key, so
//     a write-path epoch bump strands every older entry.
//
// The seed corpus under testdata/fuzz/FuzzCacheKey pins the shapes that
// bit PR 8's query decoder: JSON null vs empty string vs empty array,
// number-literal variants (1 vs 1.0), duplicate keys and whitespace.
func FuzzCacheKey(f *testing.F) {
	seeds := [][2]string{
		{`{"query":"ACDEFGHIKLMNPQRS","eps":2}`, `{"eps":2,"query":"ACDEFGHIKLMNPQRS"}`},
		{`{"query":null}`, `{"query":""}`},
		{`{"query":null}`, `{"query":[]}`},
		{`{"query":""}`, `{}`},
		{`{"eps":1}`, `{"eps":1.0}`},
		{`{"eps":1e0}`, `{"eps":1}`},
		{`{"query":"abc","eps":1,"eps":2}`, `{"query":"abc","eps":2}`},
		{`{"query":[1,2,3,4.5,-6,7e2],"eps":0.5}`, ` {"eps":0.5,"query":[1,2,3,4.5,-6,7e2]} `},
		{`{"query":[[0,1],[2.5,-3]],"eps_max":10}`, `{"query":[[0,1],[2.5,-3]],"eps_max":10}`},
		{`{"kind":"findall","queries":["ab",null],"eps":2}`, `{"queries":["ab",null],"kind":"findall","eps":2}`},
		{`not json`, ``},
		{`{"a":1} trailing`, `{"a":1}`},
		{"{\"query\":\" \\u0000\"}", `{"query":"x"}`},
	}
	for _, s := range seeds {
		f.Add([]byte(s[0]), []byte(s[1]), uint64(3))
	}
	f.Fuzz(func(t *testing.T, bodyA, bodyB []byte, epoch uint64) {
		const path = "/query/findall"
		keyA, errA := CacheKey(path, epoch, bodyA)
		keyA2, errA2 := CacheKey(path, epoch, bodyA)
		if (errA == nil) != (errA2 == nil) || keyA != keyA2 {
			t.Fatalf("CacheKey not deterministic for %q: (%q,%v) vs (%q,%v)", bodyA, keyA, errA, keyA2, errA2)
		}
		if errA != nil {
			return
		}

		// Idempotence: the canonical form canonicalises to itself, so it
		// shares the original body's key.
		canon, err := canonicalJSON(bodyA)
		if err != nil {
			t.Fatalf("canonicalJSON errored on its own input %q: %v", bodyA, err)
		}
		canon2, err := canonicalJSON(canon)
		if err != nil || !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical form not a fixed point: %q → %q (%v)", canon, canon2, err)
		}
		// And it must still be valid JSON the shards would decode the
		// same way.
		if !json.Valid(canon) {
			t.Fatalf("canonical form is not valid JSON: %q", canon)
		}

		// Separation: epoch and path always split the keyspace.
		if k, err := CacheKey(path, epoch+1, bodyA); err != nil || k == keyA {
			t.Fatalf("epoch bump did not change the key for %q", bodyA)
		}
		if k, err := CacheKey("/query/filter", epoch, bodyA); err != nil || k == keyA {
			t.Fatalf("path did not change the key for %q", bodyA)
		}

		// Injectivity: a key collision is allowed only when the decoded
		// values are indistinguishable to the shards.
		keyB, errB := CacheKey(path, epoch, bodyB)
		if errB != nil || keyA != keyB {
			return
		}
		va, errVA := decodeGeneric(bodyA)
		vb, errVB := decodeGeneric(bodyB)
		if errVA != nil || errVB != nil {
			t.Fatalf("canonicalisable body failed generic decode: %v / %v", errVA, errVB)
		}
		if !reflect.DeepEqual(va, vb) {
			t.Fatalf("distinct queries collide:\n  %q\n  %q\n  key %q", bodyA, bodyB, keyA)
		}
	})
}

// decodeGeneric mirrors canonicalJSON's decoding (UseNumber, one value)
// to define "indistinguishable to the shards" for the injectivity check.
func decodeGeneric(raw []byte) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	err := dec.Decode(&v)
	return v, err
}
