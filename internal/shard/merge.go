package shard

import (
	"container/heap"
	"sort"
)

// Deterministic merges. The single-node engine's verified answers come
// out in a canonical order — internal/core's verifyAll sorts matches by
// (SeqID, XStart, XEnd, QStart, QEnd) — and a Plan gives each shard a
// disjoint, contiguous slice of the SeqID space, so a k-way merge of
// per-shard answers under the same comparator reproduces the single-node
// byte order exactly. Filter hits are the one traversal-order-dependent
// answer (each backend walks its index differently), so the gateway
// imposes a canonical hit order of its own; longest and nearest reduce
// to a best-of with explicit tie-breaking so the gateway's pick never
// depends on which shard answered first.

// matchLess is the canonical match order: the comparator verifyAll sorts
// single-node answers by, extended with Dist as a final key so the order
// is total even over hypothetical duplicate coordinates.
func matchLess(a, b Match) bool {
	if a.SeqID != b.SeqID {
		return a.SeqID < b.SeqID
	}
	if a.XStart != b.XStart {
		return a.XStart < b.XStart
	}
	if a.XEnd != b.XEnd {
		return a.XEnd < b.XEnd
	}
	if a.QStart != b.QStart {
		return a.QStart < b.QStart
	}
	if a.QEnd != b.QEnd {
		return a.QEnd < b.QEnd
	}
	return a.Dist < b.Dist
}

// hitLess is the canonical filter-hit order: by database offset first
// (the "stable sort by offset" the merged answer promises), then window.
func hitLess(a, b Hit) bool {
	if a.SeqID != b.SeqID {
		return a.SeqID < b.SeqID
	}
	if a.SegStart != b.SegStart {
		return a.SegStart < b.SegStart
	}
	if a.SegEnd != b.SegEnd {
		return a.SegEnd < b.SegEnd
	}
	return a.WindowStart < b.WindowStart
}

// matchHeap is the k-way merge frontier: one cursor per shard list,
// ordered by the canonical comparator of the head element.
type matchHeap struct {
	lists [][]Match
	pos   []int
	order []int // heap of list indices
}

func (h *matchHeap) Len() int { return len(h.order) }
func (h *matchHeap) Less(i, j int) bool {
	a, b := h.order[i], h.order[j]
	am, bm := h.lists[a][h.pos[a]], h.lists[b][h.pos[b]]
	if matchLess(am, bm) {
		return true
	}
	if matchLess(bm, am) {
		return false
	}
	return a < b // equal heads: lower shard first, for stability
}
func (h *matchHeap) Swap(i, j int) { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *matchHeap) Push(x any)    { h.order = append(h.order, x.(int)) }
func (h *matchHeap) Pop() any {
	x := h.order[len(h.order)-1]
	h.order = h.order[:len(h.order)-1]
	return x
}

// MergeMatches k-way merges per-shard findall answers into the canonical
// global order. Each input list must itself be canonically ordered
// (single-node answers are); the lists need not cover disjoint SeqID
// ranges — the heap handles interleaving — but when they do (the Plan
// invariant) the merge degenerates to exact concatenation and the output
// is bit-identical to a single node over the union of the shards.
func MergeMatches(lists [][]Match) []Match {
	total := 0
	nonEmpty := 0
	for _, l := range lists {
		total += len(l)
		if len(l) > 0 {
			nonEmpty++
		}
	}
	if total == 0 {
		return []Match{}
	}
	out := make([]Match, 0, total)
	h := &matchHeap{lists: lists, pos: make([]int, len(lists)), order: make([]int, 0, nonEmpty)}
	for i, l := range lists {
		if len(l) > 0 {
			h.order = append(h.order, i)
		}
	}
	heap.Init(h)
	for h.Len() > 0 {
		i := h.order[0]
		out = append(out, h.lists[i][h.pos[i]])
		h.pos[i]++
		if h.pos[i] < len(h.lists[i]) {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out
}

// MergeHits gathers per-shard filter answers and sorts them into the
// canonical hit order. No k-way structure is exploitable here: each
// backend emits hits in its own traversal order, so the merged answer is
// defined by the sort, not by the arrival order.
func MergeHits(lists [][]Hit) []Hit {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]Hit, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool { return hitLess(out[i], out[j]) })
	return out
}

// SortHits sorts hits in place into the canonical order MergeHits uses —
// exported so the equivalence harness can canonicalise a single node's
// traversal-ordered answer before comparing.
func SortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool { return hitLess(hits[i], hits[j]) })
}

// betterLongest reports whether a beats b as a Type-II (longest) answer:
// longer matched query prefix wins, then smaller distance, then the
// canonical match order — so the gateway's pick is a pure function of
// the candidate set, never of shard arrival order.
func betterLongest(a, b Match) bool {
	if a.QLen() != b.QLen() {
		return a.QLen() > b.QLen()
	}
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return matchLess(a, b)
}

// betterNearest reports whether a beats b as a Type-III (nearest)
// answer: smaller distance wins, then the canonical match order.
func betterNearest(a, b Match) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return matchLess(a, b)
}

// BestLongest reduces per-shard longest answers (nil = shard found
// nothing) to the global deterministic best.
func BestLongest(cands []*Match) *Match {
	return bestBy(cands, betterLongest)
}

// BestNearest reduces per-shard nearest answers to the global
// deterministic best.
func BestNearest(cands []*Match) *Match {
	return bestBy(cands, betterNearest)
}

func bestBy(cands []*Match, better func(a, b Match) bool) *Match {
	var best *Match
	for _, c := range cands {
		if c == nil {
			continue
		}
		if best == nil || better(*c, *best) {
			m := *c
			best = &m
		}
	}
	return best
}
