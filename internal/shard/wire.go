package shard

import (
	"encoding/json"
	"fmt"
)

// Wire types shared by the shard serve processes and the scatter-gather
// gateway. The field names and JSON tags mirror the single-node serving
// tier's formats (cmd/subseqctl serve, documented in docs/SERVING.md)
// exactly — the gateway speaks the same protocol downstream (to shards)
// and upstream (to clients), so a client cannot tell a gateway from a
// single node except by the optional "degradation" block. The query
// payload itself stays a json.RawMessage throughout: the gateway is
// element-agnostic and never decodes sequences, it only fans bodies out
// and merges the typed result envelopes.

// Match is one verified subsequence match (core.Match on the wire).
type Match struct {
	SeqID  int     `json:"seq_id"`
	QStart int     `json:"q_start"`
	QEnd   int     `json:"q_end"`
	XStart int     `json:"x_start"`
	XEnd   int     `json:"x_end"`
	Dist   float64 `json:"dist"`
}

// QLen is the matched query-side length, the quantity Type-II (longest)
// queries maximise.
func (m Match) QLen() int { return m.QEnd - m.QStart }

// Hit is one filtered segment↔window pair.
type Hit struct {
	SeqID       int `json:"seq_id"`
	WindowStart int `json:"window_start"`
	WindowEnd   int `json:"window_end"`
	SegStart    int `json:"segment_start"`
	SegEnd      int `json:"segment_end"`
}

// MatchesResponse answers findall. Degradation is present only when a
// gateway answered with one or more shards unavailable.
type MatchesResponse struct {
	Count       int          `json:"count"`
	Matches     []Match      `json:"matches"`
	Degradation *Degradation `json:"degradation,omitempty"`
}

// BestResponse answers longest and nearest.
type BestResponse struct {
	Found       bool         `json:"found"`
	Match       *Match       `json:"match,omitempty"`
	Degradation *Degradation `json:"degradation,omitempty"`
}

// HitsResponse answers filter.
type HitsResponse struct {
	Count       int          `json:"count"`
	Hits        []Hit        `json:"hits"`
	Degradation *Degradation `json:"degradation,omitempty"`
}

// ErrorResponse is the error envelope every endpoint uses.
type ErrorResponse struct {
	Error string `json:"error"`
}

// BatchRequest is the body of POST /query/batch: many queries of one
// kind, answered by a single FilterHitsBatch/FindAllBatch/LongestBatch
// traversal on each serving process. Queries stay raw — the serve
// process decodes them element-typed; the gateway forwards them opaque.
type BatchRequest struct {
	// Kind selects the query type: "findall", "longest" or "filter"
	// (nearest probes radii adaptively and has no batched form).
	Kind    string            `json:"kind"`
	Queries []json.RawMessage `json:"queries"`
	// Eps is the shared radius (all kinds).
	Eps *float64 `json:"eps"`
}

// BatchResponse answers a batch: Results[i] answers Queries[i]. Exactly
// one of Matches/Best/Hits is populated, per Kind.
type BatchResponse struct {
	Kind  string `json:"kind"`
	Count int    `json:"count"`
	// Matches answers findall batches: Matches[i] is query i's matches.
	Matches [][]Match `json:"matches,omitempty"`
	// Best answers longest batches: Best[i] is query i's best match.
	Best []BestResult `json:"best,omitempty"`
	// Hits answers filter batches: Hits[i] is query i's hits.
	Hits        [][]Hit      `json:"hits,omitempty"`
	Degradation *Degradation `json:"degradation,omitempty"`
}

// BestResult is one query's longest-match answer inside a batch.
type BestResult struct {
	Found bool   `json:"found"`
	Match *Match `json:"match,omitempty"`
}

// ValidBatchKind reports whether kind names a batched query type.
func ValidBatchKind(kind string) bool {
	switch kind {
	case "findall", "longest", "filter":
		return true
	}
	return false
}

// --- Admin write fan-out (admin.go) ---

// AdminReplicaResult is one replica's outcome in a gateway write
// fan-out. Response carries the replica's own answer verbatim (the
// single-node appendResponse/retireResponse/snapshotResponse); Path is
// set for snapshots (the per-replica target the gateway substituted).
type AdminReplicaResult struct {
	Shard    int             `json:"shard"`
	Replica  int             `json:"replica"`
	Addr     string          `json:"addr"`
	OK       bool            `json:"ok"`
	Status   int             `json:"status,omitempty"`
	Error    string          `json:"error,omitempty"`
	Path     string          `json:"path,omitempty"`
	Response json.RawMessage `json:"response,omitempty"`
}

// AdminFanoutResponse answers POST /admin/{append,retire,snapshot} on
// the gateway: the owning range (append/retire), the global sequence ID
// the write concerned, quorum accounting over the fan-out, the plan
// epoch after the write and how many cached answers the write
// invalidated. Diverged flags acked replicas disagreeing on the
// allocated ID — split brain an operator must heal.
type AdminFanoutResponse struct {
	Op          string               `json:"op"`
	Shard       *int                 `json:"shard,omitempty"`
	Range       *Range               `json:"range,omitempty"`
	SeqID       *int                 `json:"seq_id,omitempty"`
	Acks        int                  `json:"acks"`
	Replicas    int                  `json:"replicas"`
	Quorum      bool                 `json:"quorum"`
	Diverged    bool                 `json:"diverged,omitempty"`
	Epoch       uint64               `json:"epoch"`
	Invalidated int                  `json:"invalidated,omitempty"`
	Results     []AdminReplicaResult `json:"results"`
}

// --- Result cache (cache.go) ---

// CacheCounters reports the gateway result cache on /stats: traffic
// (hits/misses), pressure (evictions against the byte budget, current
// residency), write-path invalidations, and the configured limits.
type CacheCounters struct {
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Evictions     int64   `json:"evictions"`
	Invalidations int64   `json:"invalidations"`
	Entries       int     `json:"entries"`
	Bytes         int64   `json:"bytes"`
	MaxBytes      int64   `json:"max_bytes"`
	TTLSeconds    float64 `json:"ttl_seconds"`
}

// --- Degradation: typed partial failure ---

// ShardFailure records one shard range that could not answer a query.
// Status is the HTTP status the shard returned, or 0 when the failure
// was at the transport (connection refused, timeout). With replicated
// ranges a failure means *every* replica of the range failed; Replicas
// then itemises each replica's own error, and Addr lists the whole set.
type ShardFailure struct {
	Shard    int            `json:"shard"`
	Range    Range          `json:"range"`
	Addr     string         `json:"addr"`
	Status   int            `json:"status,omitempty"`
	Error    string         `json:"error"`
	Replicas []ReplicaError `json:"replicas,omitempty"`
}

// ReplicaError is one replica's contribution to a range failure.
type ReplicaError struct {
	Replica int    `json:"replica"`
	Addr    string `json:"addr"`
	Status  int    `json:"status,omitempty"`
	Error   string `json:"error"`
}

func (f ShardFailure) String() string {
	if f.Status != 0 {
		return fmt.Sprintf("shard %d %s (%s): HTTP %d: %s", f.Shard, f.Range, f.Addr, f.Status, f.Error)
	}
	return fmt.Sprintf("shard %d %s (%s): %s", f.Shard, f.Range, f.Addr, f.Error)
}

// --- Health reporting: breaker state on the wire ---

// BreakerStatus is one replica breaker's snapshot as /healthz and
// /stats report it: the state name ("closed", "open", "half-open"), the
// current consecutive-failure streak, and the last error observed.
type BreakerStatus struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	LastError           string `json:"last_error,omitempty"`
}

// ReplicaHealth is one replica's health line. OK is the live probe
// verdict on /healthz and the breaker-closed verdict on /stats (which
// does not probe).
type ReplicaHealth struct {
	Replica int           `json:"replica"`
	Addr    string        `json:"addr"`
	OK      bool          `json:"ok"`
	Breaker BreakerStatus `json:"breaker"`
}

// RangeHealth is one shard range's replica roster: the range is up
// while any replica is.
type RangeHealth struct {
	Shard    int             `json:"shard"`
	Range    Range           `json:"range"`
	Up       int             `json:"up"`
	Replicas []ReplicaHealth `json:"replicas"`
}

// HealthzResponse answers GET /healthz on the gateway. OK (and HTTP
// 200) holds while at least one range can answer at all; FullCoverage
// additionally requires every range up — an operator watching a sick
// fleet sees full_coverage drop (and the per-replica breaker detail
// name the culprit) while ok still holds.
type HealthzResponse struct {
	OK           bool          `json:"ok"`
	ShardsUp     int           `json:"shards_up"`
	Shards       int           `json:"shards"`
	FullCoverage bool          `json:"full_coverage"`
	Ranges       []RangeHealth `json:"ranges"`
}

// Degradation marks a merged response assembled without every shard:
// the answer is complete over the surviving shards' sequence ranges and
// silent about the failed ones. Clients that need totality must treat a
// degraded response as an error; clients that prefer availability get
// the best answer the surviving fleet can give, with the blind spots
// named.
type Degradation struct {
	Degraded bool           `json:"degraded"`
	Failures []ShardFailure `json:"failures"`
}
