package shard

import (
	"bytes"
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Gateway result cache. The paper's filter-and-refine pipeline makes an
// answer expensive to compute and cheap to store, and gateway traffic is
// skewed toward hot queries, so the gateway keeps the merged response
// bytes of successful, undegraded answers and serves repeats without
// touching the fleet. The cache sits *behind* the single-flight group
// (flight.go): concurrent identical misses still collapse into one
// fan-out, whose leader populates the cache exactly once.
//
// Correctness rests on the key, not on expiry. Every entry is keyed by
// CacheKey — endpoint path ⊕ shard-plan epoch ⊕ canonical body — and
// every acknowledged admin write (append/retire fanned out by admin.go)
// bumps the epoch and flushes the cache. A request that starts after a
// write's HTTP response therefore computes a key no pre-write entry can
// ever match: stale answers are unreachable by construction, and the TTL
// is only a belt-and-suspenders bound for mutations that bypass the
// gateway entirely.
//
// The store is a fixed set of independently locked segments, each an LRU
// list under a slice of the total byte budget, so hot-path Get/Put never
// contend on one lock fleet-wide.

const (
	// cacheSegments is the lock-sharding fan-out. A power of two keeps
	// the modulo cheap; 16 is plenty for a handler pool's parallelism.
	cacheSegments = 16
	// cacheEntryOverhead approximates per-entry bookkeeping (map bucket,
	// list element, header) charged to the byte budget beyond key+body.
	cacheEntryOverhead = 128
)

// Cache is a sharded, bounded-memory LRU over canonical query keys.
// All methods are safe for concurrent use.
type Cache struct {
	maxBytes int64
	ttl      time.Duration
	now      func() time.Time // injectable clock, for TTL tests
	segs     [cacheSegments]cacheSegment

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

type cacheSegment struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	lru    *list.List // front = most recently used
	m      map[string]*list.Element
}

type cacheEntry struct {
	key     string
	body    []byte
	size    int64
	expires time.Time // zero: no TTL
}

// NewCache builds a cache with a total byte budget (split evenly across
// segments) and a per-entry TTL; ttl <= 0 keeps entries until they are
// evicted or invalidated.
func NewCache(maxBytes int64, ttl time.Duration) *Cache {
	c := &Cache{maxBytes: maxBytes, ttl: ttl, now: time.Now}
	for i := range c.segs {
		c.segs[i].budget = maxBytes / cacheSegments
		c.segs[i].lru = list.New()
		c.segs[i].m = make(map[string]*list.Element)
	}
	return c
}

// segIndex picks an entry's segment by FNV-1a over the key.
func segIndex(key string) int {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % cacheSegments)
}

// Get returns the cached body for key, refreshing its recency. A present
// but expired entry is dropped (counted as an eviction) and misses.
func (c *Cache) Get(key string) ([]byte, bool) {
	s := &c.segs[segIndex(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	ent := e.Value.(*cacheEntry)
	if !ent.expires.IsZero() && c.now().After(ent.expires) {
		s.removeLocked(e)
		c.evictions.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	s.lru.MoveToFront(e)
	c.hits.Add(1)
	return ent.body, true
}

// Put stores body under key, evicting least-recently-used entries until
// the segment fits its budget slice. A body too large for the segment is
// not cached at all — one oversized answer must not wipe the segment.
func (c *Cache) Put(key string, body []byte) {
	s := &c.segs[segIndex(key)]
	size := int64(len(key)) + int64(len(body)) + cacheEntryOverhead
	if size > s.budget {
		return
	}
	ent := &cacheEntry{key: key, body: body, size: size}
	if c.ttl > 0 {
		ent.expires = c.now().Add(c.ttl)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[key]; ok {
		// Replacement, not eviction: the key stays resident.
		s.removeLocked(e)
	}
	s.m[key] = s.lru.PushFront(ent)
	s.bytes += size
	for s.bytes > s.budget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		s.removeLocked(back)
		c.evictions.Add(1)
	}
}

// removeLocked unlinks one entry; the segment lock must be held.
func (s *cacheSegment) removeLocked(e *list.Element) {
	ent := e.Value.(*cacheEntry)
	s.lru.Remove(e)
	delete(s.m, ent.key)
	s.bytes -= ent.size
}

// Flush empties the cache — the write path's invalidation. The number of
// dropped entries is returned and added to the invalidations counter.
func (c *Cache) Flush() int {
	n := 0
	for i := range c.segs {
		s := &c.segs[i]
		s.mu.Lock()
		n += len(s.m)
		s.lru.Init()
		clear(s.m)
		s.bytes = 0
		s.mu.Unlock()
	}
	c.invalidations.Add(int64(n))
	return n
}

// Stats snapshots the cache counters for /stats.
func (c *Cache) Stats() CacheCounters {
	cs := CacheCounters{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		MaxBytes:      c.maxBytes,
		TTLSeconds:    c.ttl.Seconds(),
	}
	for i := range c.segs {
		s := &c.segs[i]
		s.mu.Lock()
		cs.Entries += len(s.m)
		cs.Bytes += s.bytes
		s.mu.Unlock()
	}
	return cs
}

// --- canonical cache keys ---

// CacheKey builds the cache's canonical key for one query: endpoint path
// ⊕ shard-plan epoch ⊕ the canonical JSON rendering of the request body.
// Two requests share a key iff they ask the same question of the same
// plan generation — the path pins the query kind, the epoch pins the
// mutation generation (admin.go bumps it on every acknowledged write),
// and the canonical body pins ε and the query sequence while erasing
// formatting noise (object key order, whitespace). The encoding is
// injective on decoded values — distinct queries never collide (number
// literals are kept verbatim, so 1 and 1.0 stay distinct instead of
// merging through a float; JSON null, "" and [] all stay distinct) — and
// deterministic across processes and sessions: no map iteration order,
// nothing time- or address-dependent. The NUL separators cannot occur
// inside any part: paths are fixed ASCII routes, the epoch is decimal,
// and canonical JSON escapes control characters. A body that is not
// exactly one JSON value cannot be canonicalised and returns an error;
// the gateway then bypasses the cache for that request.
func CacheKey(path string, epoch uint64, body []byte) (string, error) {
	canon, err := canonicalJSON(body)
	if err != nil {
		return "", err
	}
	return path + "\x00" + strconv.FormatUint(epoch, 10) + "\x00" + string(canon), nil
}

// canonicalJSON re-encodes one JSON value deterministically: object keys
// sorted, no insignificant whitespace, number literals preserved verbatim
// (UseNumber — no float round-trip). Duplicate object keys collapse
// last-wins, exactly as encoding/json decodes them on the serve side, so
// bodies the shards cannot tell apart share a key.
func canonicalJSON(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, errors.New("trailing data after JSON value")
	}
	var b bytes.Buffer
	if err := writeCanonical(&b, v); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

func writeCanonical(b *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case nil:
		b.WriteString("null")
	case bool:
		if x {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case json.Number:
		b.WriteString(string(x))
	case string:
		enc, err := json.Marshal(x)
		if err != nil {
			return err
		}
		b.Write(enc)
	case []any:
		b.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				b.WriteByte(',')
			}
			if err := writeCanonical(b, e); err != nil {
				return err
			}
		}
		b.WriteByte(']')
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			enc, err := json.Marshal(k)
			if err != nil {
				return err
			}
			b.Write(enc)
			b.WriteByte(':')
			if err := writeCanonical(b, x[k]); err != nil {
				return err
			}
		}
		b.WriteByte('}')
	default:
		return fmt.Errorf("unexpected decoded JSON type %T", v)
	}
	return nil
}
