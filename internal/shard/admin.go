package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Replica write fan-out: the admin surface behind the gateway. Reads
// scatter to *one* replica per range (whichever answers first); writes
// are the dual — /admin/append and /admin/retire go to EVERY replica of
// the owning range, /admin/snapshot to every replica of every range —
// because replicas are independent indexes that only stay
// interchangeable if each applies each mutation itself.
//
// Ownership: an append always lands on the tail range (shards number
// appended sequences after their existing slice, so the new sequence
// takes the next global IDs); a retire lands on the range whose [lo,hi)
// contains seq_id, exactly the ownership check the shards enforce
// themselves. An acknowledged append also grows the plan's tail range,
// so the new sequence is immediately retirable through the gateway.
//
// Accounting is per replica and quorum-scored: acks counts 2xx verdicts,
// quorum holds when a strict majority acked. The gateway is availability
// -biased like the read path — one ack makes the write observable, so
// one ack makes the overall response 200 with every miss itemised (an
// operator must heal a partially-acked range, e.g. by restarting the
// missed replica from a snapshot); zero acks is a failure: the first
// 4xx verdict (bad request, unsupported retire, unowned id) is passed
// through verbatim, anything else is a 502 naming each replica's error.
//
// Every acknowledged mutation bumps the shard-plan epoch and flushes the
// result cache before the client sees the response. Cache keys embed the
// epoch (CacheKey), so a request that starts after the write's response
// can never match — let alone be served — an answer computed before it.

// adminFanoutTimeout bounds one write fan-out. The fan-out runs on a
// context detached from the client's: once the gateway starts telling
// replicas to mutate, a client disconnect must not leave the range half
// written.
const adminFanoutTimeout = 30 * time.Second

func (g *Gateway) handleAdminAppend(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	plan := g.Plan()
	ri := len(plan.Ranges) - 1
	ctx, cancel := context.WithTimeout(context.WithoutCancel(r.Context()), adminFanoutTimeout)
	defer cancel()
	results := g.fanoutRange(ctx, ri, "/admin/append", func(int) []byte { return body })
	acks := countAcks(results)
	if acks == 0 {
		writeAdminFailure(w, "append", results)
		return
	}
	// Every ack must report the same allocated global ID; replicas of one
	// range hold identical slices, so disagreement means split brain.
	seqID, diverged := -1, false
	for _, res := range results {
		if !res.OK {
			continue
		}
		var ar struct {
			SeqID *int `json:"seq_id"`
		}
		if json.Unmarshal(res.Response, &ar) != nil || ar.SeqID == nil {
			continue
		}
		switch {
		case seqID == -1:
			seqID = *ar.SeqID
		case *ar.SeqID != seqID:
			diverged = true
		}
	}
	rng := plan.Ranges[ri]
	resp := AdminFanoutResponse{Op: "append", Shard: &ri, Acks: acks,
		Replicas: len(results), Quorum: 2*acks > len(results), Diverged: diverged,
		Results: results}
	if seqID >= 0 {
		rng = g.growPlan(seqID)
		resp.SeqID = &seqID
	}
	resp.Range = &rng
	resp.Epoch, resp.Invalidated = g.bumpEpoch()
	g.writes.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleAdminRetire(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Peek at seq_id to route; the body is still forwarded verbatim so
	// the shards run their own full validation.
	var req struct {
		SeqID *int `json:"seq_id"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid retire request: %w", err))
		return
	}
	if req.SeqID == nil {
		writeError(w, http.StatusBadRequest, errors.New(`"seq_id" is required`))
		return
	}
	plan := g.Plan()
	ri := -1
	for i, rg := range plan.Ranges {
		if *req.SeqID >= rg.Lo && *req.SeqID < rg.Hi {
			ri = i
			break
		}
	}
	if ri < 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("seq_id %d is outside every shard range (plan has %d sequences)", *req.SeqID, plan.Seqs))
		return
	}
	ctx, cancel := context.WithTimeout(context.WithoutCancel(r.Context()), adminFanoutTimeout)
	defer cancel()
	results := g.fanoutRange(ctx, ri, "/admin/retire", func(int) []byte { return body })
	acks := countAcks(results)
	if acks == 0 {
		writeAdminFailure(w, "retire", results)
		return
	}
	rng := plan.Ranges[ri]
	resp := AdminFanoutResponse{Op: "retire", Shard: &ri, Range: &rng, SeqID: req.SeqID,
		Acks: acks, Replicas: len(results), Quorum: 2*acks > len(results), Results: results}
	resp.Epoch, resp.Invalidated = g.bumpEpoch()
	g.writes.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleAdminSnapshot(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req struct {
		Path string `json:"path"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid snapshot request: %w", err))
		return
	}
	if strings.TrimSpace(req.Path) == "" {
		writeError(w, http.StatusBadRequest, errors.New(`"path" is required`))
		return
	}
	ctx, cancel := context.WithTimeout(context.WithoutCancel(r.Context()), adminFanoutTimeout)
	defer cancel()
	// Every replica of every range snapshots its own slice; the path is
	// suffixed per replica so the files never collide (each is restorable
	// with -restore on a process taking over that replica's slot).
	var all []AdminReplicaResult
	for ri := range g.health {
		suffix := func(j int) string { return fmt.Sprintf("%s.s%dr%d", req.Path, ri, j) }
		results := g.fanoutRange(ctx, ri, "/admin/snapshot", func(j int) []byte {
			b, _ := json.Marshal(struct {
				Path string `json:"path"`
			}{suffix(j)})
			return b
		})
		for j := range results {
			results[j].Path = suffix(j)
		}
		all = append(all, results...)
	}
	acks := countAcks(all)
	if acks == 0 {
		writeAdminFailure(w, "snapshot", all)
		return
	}
	// Snapshots mutate nothing: the epoch is reported, not bumped.
	writeJSON(w, http.StatusOK, AdminFanoutResponse{Op: "snapshot", Acks: acks,
		Replicas: len(all), Quorum: 2*acks > len(all), Epoch: g.epoch.Load(), Results: all})
}

// fanoutRange posts a body to every replica of range ri concurrently —
// no failover, no hedging, no breaker-preferred ordering: a write is for
// each replica individually, not for whichever answers first. Breakers
// are still fed through tryReplica, so a dead replica discovered by a
// write is deflected from subsequent reads.
func (g *Gateway) fanoutRange(ctx context.Context, ri int, path string, body func(replica int) []byte) []AdminReplicaResult {
	set := g.health[ri]
	out := make([]AdminReplicaResult, len(set.addrs))
	var wg sync.WaitGroup
	for j := range set.addrs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			rep := g.tryReplica(ctx, ri, j, path, body(j))
			ar := AdminReplicaResult{Shard: ri, Replica: j, Addr: set.addrs[j]}
			if rep.err != nil {
				ar.Error = rep.err.Error()
			} else {
				ar.Status = rep.status
				ar.OK = rep.status >= 200 && rep.status < 300
				ar.Response = json.RawMessage(rep.body)
				if !ar.OK {
					ar.Error = shardErrorText(rep.body)
				}
			}
			out[j] = ar
		}(j)
	}
	wg.Wait()
	return out
}

// countAcks counts the 2xx verdicts in a fan-out.
func countAcks(results []AdminReplicaResult) int {
	n := 0
	for _, r := range results {
		if r.OK {
			n++
		}
	}
	return n
}

// writeAdminFailure renders a zero-ack fan-out: the first client-error
// verdict passes through verbatim (every replica shares the session
// spec, so one 4xx speaks for the range — a malformed body, an
// unsupported retire, an unowned seq_id); otherwise the write found no
// living replica and fails 502 with each attempt itemised.
func writeAdminFailure(w http.ResponseWriter, op string, results []AdminReplicaResult) {
	for _, res := range results {
		if res.Status >= 400 && res.Status < 500 && len(res.Response) > 0 {
			writeRaw(w, res.Status, res.Response)
			return
		}
	}
	msgs := make([]string, len(results))
	for i, res := range results {
		if res.Status != 0 {
			msgs[i] = fmt.Sprintf("replica %d (%s): HTTP %d: %s", res.Replica, res.Addr, res.Status, res.Error)
		} else {
			msgs[i] = fmt.Sprintf("replica %d (%s): %s", res.Replica, res.Addr, res.Error)
		}
	}
	writeError(w, http.StatusBadGateway,
		fmt.Errorf("%s: no replica acknowledged the write: %s", op, strings.Join(msgs, "; ")))
}

// growPlan extends the plan's tail range to cover an appended sequence's
// global ID, returning the (possibly grown) tail range. Serialised by
// adminMu; readers see the old or new plan atomically either way.
func (g *Gateway) growPlan(seqID int) Range {
	g.adminMu.Lock()
	defer g.adminMu.Unlock()
	p := *g.planp.Load()
	last := len(p.Ranges) - 1
	if seqID >= p.Ranges[last].Hi {
		rs := append([]Range(nil), p.Ranges...)
		rs[last].Hi = seqID + 1
		p.Ranges = rs
		p.Seqs = seqID + 1
		g.planp.Store(&p)
	}
	return g.planp.Load().Ranges[last]
}

// bumpEpoch advances the shard-plan epoch and flushes the result cache:
// the write path's invalidation. Ordering matters — the epoch moves
// first, so a concurrent flight that still computes under the old epoch
// can only populate an old-epoch key no future request will ever read.
func (g *Gateway) bumpEpoch() (epoch uint64, invalidated int) {
	epoch = g.epoch.Add(1)
	if g.cache != nil {
		invalidated = g.cache.Flush()
	}
	return epoch, invalidated
}
