// Package shard partitions one logical subsequence index across several
// serving processes and merges their answers back into a single response.
//
// The metric backends are embarrassingly shardable by window range: every
// reported match pairs a query subsequence with a subsequence of ONE
// database sequence, and a window filter hit likewise names one window of
// one sequence, so partitioning the database by whole sequences keeps
// every query type exact — no match or hit can span two shards. A Plan
// assigns each shard a contiguous range of sequence indices; each shard
// builds the ordinary single-node engine over its slice and reports
// results under the global sequence numbering (its range's Lo is the
// offset). The Gateway (gateway.go) fans a query out to every shard over
// the serving tier's HTTP/JSON protocol and merges the per-shard answers
// deterministically (merge.go): filter and findall answers are merged in
// the engine's canonical result order, so the merged response is
// bit-identical to a single-node engine over the same windows; longest
// and nearest reduce to a deterministic best-of.
//
// docs/SHARDING.md documents the topology and the degradation semantics;
// the cross-shard equivalence suite in cmd/subseqctl proves the
// bit-identical claim on all four backends.
package shard

import (
	"fmt"
	"math/rand/v2"
)

// Range is one shard's slice of the database: the sequences with global
// indices in [Lo, Hi). Matches reported by the shard carry global
// sequence IDs (local ID + Lo).
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len returns the number of sequences in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// String renders the half-open range.
func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// Validate checks the range in isolation: non-negative start, non-empty
// extent. An empty shard would build an empty index (the MV backend
// rejects it outright) and contribute nothing — configuring one is
// always a mistake, so it is refused with the range shown.
func (r Range) Validate() error {
	if r.Lo < 0 {
		return fmt.Errorf("shard: range %s starts before sequence 0", r)
	}
	if r.Hi <= r.Lo {
		return fmt.Errorf("shard: range %s is empty (hi must exceed lo)", r)
	}
	return nil
}

// Plan is a complete partition of a database of Seqs sequences into
// contiguous shard ranges. Construct with Partition (even split) or
// PlanFromRanges (explicit split points); both guarantee the ranges
// cover [0, Seqs) exactly, in order, with no gaps or overlaps — the
// property that makes the scatter-gather merge a permutation-free
// concatenation of disjoint sequence ID spaces.
type Plan struct {
	Seqs   int     `json:"seqs"`
	Ranges []Range `json:"ranges"`
}

// Partition splits numSeqs sequences into n contiguous shards of
// near-equal size (the first numSeqs mod n shards hold one extra
// sequence). It is the default topology when no explicit split points
// are given.
func Partition(numSeqs, n int) (Plan, error) {
	if numSeqs < 1 {
		return Plan{}, fmt.Errorf("shard: cannot partition %d sequences", numSeqs)
	}
	if n < 1 {
		return Plan{}, fmt.Errorf("shard: shard count must be at least 1, got %d", n)
	}
	if n > numSeqs {
		return Plan{}, fmt.Errorf("shard: %d shards over %d sequences would leave %d shards empty",
			n, numSeqs, n-numSeqs)
	}
	ranges := make([]Range, n)
	base, extra := numSeqs/n, numSeqs%n
	lo := 0
	for i := range ranges {
		size := base
		if i < extra {
			size++
		}
		ranges[i] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return Plan{Seqs: numSeqs, Ranges: ranges}, nil
}

// PlanFromRanges validates caller-chosen ranges as a complete partition
// of numSeqs sequences: each range non-empty, in ascending order, the
// first starting at 0, each starting where its predecessor ended, and
// the last ending at numSeqs. Every violation is rejected with the
// offending range named, so a mistyped topology file fails loudly
// instead of silently dropping (or double-serving) part of the database.
func PlanFromRanges(numSeqs int, ranges []Range) (Plan, error) {
	if numSeqs < 1 {
		return Plan{}, fmt.Errorf("shard: cannot partition %d sequences", numSeqs)
	}
	if len(ranges) == 0 {
		return Plan{}, fmt.Errorf("shard: no ranges given")
	}
	want := 0
	for i, r := range ranges {
		if err := r.Validate(); err != nil {
			return Plan{}, fmt.Errorf("shard: range %d: %w", i, err)
		}
		if r.Lo != want {
			if r.Lo > want {
				return Plan{}, fmt.Errorf("shard: gap before range %d: sequences [%d,%d) are unassigned", i, want, r.Lo)
			}
			return Plan{}, fmt.Errorf("shard: range %d %s overlaps its predecessor (expected lo=%d)", i, r, want)
		}
		want = r.Hi
	}
	if want != numSeqs {
		if want < numSeqs {
			return Plan{}, fmt.Errorf("shard: sequences [%d,%d) are unassigned to any shard", want, numSeqs)
		}
		return Plan{}, fmt.Errorf("shard: last range ends at %d, past the %d database sequences", want, numSeqs)
	}
	return Plan{Seqs: numSeqs, Ranges: ranges}, nil
}

// RandomPlan draws a partition of numSeqs sequences into n shards with
// uniformly random split points — the shape the cross-shard equivalence
// suite sweeps, so correctness never quietly depends on even splits.
func RandomPlan(numSeqs, n int, rng *rand.Rand) (Plan, error) {
	if n < 1 || n > numSeqs {
		return Plan{}, fmt.Errorf("shard: cannot draw %d random shards over %d sequences", n, numSeqs)
	}
	// Choose n-1 distinct interior split points in [1, numSeqs).
	cuts := make(map[int]bool, n-1)
	for len(cuts) < n-1 {
		cuts[1+rng.IntN(numSeqs-1)] = true
	}
	ranges := make([]Range, 0, n)
	lo := 0
	for i := 1; i < numSeqs; i++ {
		if cuts[i] {
			ranges = append(ranges, Range{Lo: lo, Hi: i})
			lo = i
		}
	}
	ranges = append(ranges, Range{Lo: lo, Hi: numSeqs})
	return PlanFromRanges(numSeqs, ranges)
}
