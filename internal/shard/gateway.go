package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Gateway is the scatter-gather front end: one HTTP handler speaking the
// single-node serving protocol upstream, fanning every query out to the
// shard serve processes downstream and merging their answers
// deterministically (merge.go). It never decodes query payloads — the
// request body is forwarded to every shard verbatim — so one gateway
// binary fronts byte, float64 and point2 sessions alike.
//
// Failure semantics: a shard that answers 4xx has judged the request
// itself malformed; since every shard shares the session spec, the first
// such verdict is returned to the client verbatim. A shard that cannot
// answer at all (transport error, 5xx, or still shedding after the retry
// budget) is recorded as a ShardFailure; the merged response then
// carries a Degradation block naming the blind spots. Only when no
// shard answers does the gateway fail the request (502).

// PostFunc issues a POST with a JSON body, returning the response. The
// bounded-retry client in cmd/subseqctl satisfies this; tests inject
// httptest-backed functions.
type PostFunc func(ctx context.Context, url string, body []byte) (*http.Response, error)

// GetFunc issues a GET (stats, healthz probes).
type GetFunc func(ctx context.Context, url string) (*http.Response, error)

// maxGatewayBody caps an incoming request body, mirroring the serve
// process's own cap so the gateway never buffers what a shard would
// refuse anyway.
const maxGatewayBody = 8 << 20

// Gateway fans queries out over a Plan's shards. Construct with
// NewGateway; serve Handler().
type Gateway struct {
	plan  Plan
	urls  []string
	post  PostFunc
	get   GetFunc
	mux   *http.ServeMux
	start time.Time

	queries     atomic.Int64
	batches     atomic.Int64
	degraded    atomic.Int64
	shardErrors atomic.Int64
}

// GatewayOption customises NewGateway.
type GatewayOption func(*Gateway)

// WithPost injects the POST transport (e.g. the bounded-retry client).
func WithPost(p PostFunc) GatewayOption { return func(g *Gateway) { g.post = p } }

// WithGet injects the GET transport.
func WithGet(get GetFunc) GatewayOption { return func(g *Gateway) { g.get = get } }

// NewGateway builds a gateway over plan whose i-th shard serves at
// urls[i] (scheme://host:port, no trailing slash needed). The URL list
// must match the plan's ranges one to one.
func NewGateway(plan Plan, urls []string, opts ...GatewayOption) (*Gateway, error) {
	if len(urls) != len(plan.Ranges) {
		return nil, fmt.Errorf("shard: plan has %d ranges but %d shard URLs were given", len(plan.Ranges), len(urls))
	}
	if len(urls) == 0 {
		return nil, errors.New("shard: gateway needs at least one shard")
	}
	clean := make([]string, len(urls))
	for i, u := range urls {
		if u == "" {
			return nil, fmt.Errorf("shard: shard %d has an empty URL", i)
		}
		clean[i] = strings.TrimRight(u, "/")
	}
	g := &Gateway{plan: plan, urls: clean, start: time.Now()}
	for _, o := range opts {
		o(g)
	}
	if g.post == nil {
		g.post = func(ctx context.Context, url string, body []byte) (*http.Response, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(string(body)))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/json")
			return http.DefaultClient.Do(req)
		}
	}
	if g.get == nil {
		g.get = func(ctx context.Context, url string) (*http.Response, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
			if err != nil {
				return nil, err
			}
			return http.DefaultClient.Do(req)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query/findall", g.handleFindAll)
	mux.HandleFunc("POST /query/longest", func(w http.ResponseWriter, r *http.Request) { g.handleBest(w, r, "longest", BestLongest) })
	mux.HandleFunc("POST /query/nearest", func(w http.ResponseWriter, r *http.Request) { g.handleBest(w, r, "nearest", BestNearest) })
	mux.HandleFunc("POST /query/filter", g.handleFilter)
	mux.HandleFunc("POST /query/batch", g.handleBatch)
	mux.HandleFunc("GET /stats", g.handleStats)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux = mux
	return g, nil
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Plan returns the partition the gateway scatters over.
func (g *Gateway) Plan() Plan { return g.plan }

// --- scatter ---

// shardReply is one shard's raw answer: body + status on HTTP delivery,
// err on transport failure.
type shardReply struct {
	status int
	body   []byte
	err    error
}

// scatter POSTs body to path on every shard concurrently and collects
// the raw replies in shard order.
func (g *Gateway) scatter(ctx context.Context, path string, body []byte) []shardReply {
	replies := make([]shardReply, len(g.urls))
	var wg sync.WaitGroup
	for i, base := range g.urls {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			resp, err := g.post(ctx, url, body)
			if err != nil {
				replies[i] = shardReply{err: err}
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(io.LimitReader(resp.Body, maxGatewayBody))
			if err != nil {
				replies[i] = shardReply{err: fmt.Errorf("reading shard response: %w", err)}
				return
			}
			replies[i] = shardReply{status: resp.StatusCode, body: b}
		}(i, base+path)
	}
	wg.Wait()
	return replies
}

// shardErrorText extracts the serve process's error message from an
// error-envelope body, falling back to the raw body.
func shardErrorText(body []byte) string {
	var er ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		return er.Error
	}
	s := strings.TrimSpace(string(body))
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// classify splits raw replies into per-shard successes (decoded into
// fresh values of T), the first client-error reply to pass through
// verbatim (nil if none), and the shard failures. ok[i] is nil for a
// failed shard.
func classify[T any](g *Gateway, replies []shardReply) (ok []*T, passThrough *shardReply, deg *Degradation) {
	ok = make([]*T, len(replies))
	var failures []ShardFailure
	for i, rep := range replies {
		switch {
		case rep.err != nil:
			failures = append(failures, ShardFailure{
				Shard: i, Range: g.plan.Ranges[i], Addr: g.urls[i], Error: rep.err.Error(),
			})
		case rep.status >= 400 && rep.status < 500:
			// The request itself is bad; every shard shares the session
			// spec, so the first verdict speaks for the fleet.
			if passThrough == nil {
				r := rep
				passThrough = &r
			}
		case rep.status != http.StatusOK:
			failures = append(failures, ShardFailure{
				Shard: i, Range: g.plan.Ranges[i], Addr: g.urls[i],
				Status: rep.status, Error: shardErrorText(rep.body),
			})
		default:
			var v T
			if err := json.Unmarshal(rep.body, &v); err != nil {
				failures = append(failures, ShardFailure{
					Shard: i, Range: g.plan.Ranges[i], Addr: g.urls[i],
					Status: rep.status, Error: fmt.Sprintf("undecodable response: %v", err),
				})
				continue
			}
			ok[i] = &v
		}
	}
	if len(failures) > 0 {
		deg = &Degradation{Degraded: true, Failures: failures}
	}
	return ok, passThrough, deg
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// passVerbatim relays a shard's client-error reply unchanged.
func passVerbatim(w http.ResponseWriter, rep *shardReply) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(rep.status)
	w.Write(rep.body)
}

// allFailed answers when no shard produced a result at all: the gateway
// has nothing to merge, so the request fails with the failures named.
func (g *Gateway) allFailed(w http.ResponseWriter, deg *Degradation) {
	msgs := make([]string, len(deg.Failures))
	for i, f := range deg.Failures {
		msgs[i] = f.String()
	}
	writeError(w, http.StatusBadGateway, fmt.Errorf("all shards failed: %s", strings.Join(msgs, "; ")))
}

// readBody buffers the request body for fan-out.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxGatewayBody))
}

// gather runs the shared scatter/classify/accounting choreography and
// hands the per-shard successes plus degradation to merge; merge is only
// called when at least one shard answered. Returns false when gather
// already wrote the response (pass-through or total failure).
func gather[T any](g *Gateway, w http.ResponseWriter, r *http.Request, path string) ([]*T, *Degradation, bool) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, nil, false
	}
	g.queries.Add(1)
	replies := g.scatter(r.Context(), path, body)
	ok, passThrough, deg := classify[T](g, replies)
	if deg != nil {
		g.shardErrors.Add(int64(len(deg.Failures)))
	}
	if passThrough != nil {
		passVerbatim(w, passThrough)
		return nil, nil, false
	}
	answered := 0
	for _, v := range ok {
		if v != nil {
			answered++
		}
	}
	if answered == 0 {
		if deg == nil {
			// Unreachable by construction (no pass-through, no success, no
			// failure would mean zero shards), but fail loudly if it happens.
			writeError(w, http.StatusBadGateway, errors.New("no shard produced a response"))
			return nil, nil, false
		}
		g.allFailed(w, deg)
		return nil, nil, false
	}
	if deg != nil {
		g.degraded.Add(1)
	}
	return ok, deg, true
}

// --- query handlers ---

func (g *Gateway) handleFindAll(w http.ResponseWriter, r *http.Request) {
	ok, deg, proceed := gather[MatchesResponse](g, w, r, "/query/findall")
	if !proceed {
		return
	}
	lists := make([][]Match, 0, len(ok))
	for _, resp := range ok {
		if resp != nil {
			lists = append(lists, resp.Matches)
		}
	}
	merged := MergeMatches(lists)
	writeJSON(w, http.StatusOK, MatchesResponse{Count: len(merged), Matches: merged, Degradation: deg})
}

func (g *Gateway) handleFilter(w http.ResponseWriter, r *http.Request) {
	ok, deg, proceed := gather[HitsResponse](g, w, r, "/query/filter")
	if !proceed {
		return
	}
	lists := make([][]Hit, 0, len(ok))
	for _, resp := range ok {
		if resp != nil {
			lists = append(lists, resp.Hits)
		}
	}
	merged := MergeHits(lists)
	writeJSON(w, http.StatusOK, HitsResponse{Count: len(merged), Hits: merged, Degradation: deg})
}

func (g *Gateway) handleBest(w http.ResponseWriter, r *http.Request, kind string, best func([]*Match) *Match) {
	ok, deg, proceed := gather[BestResponse](g, w, r, "/query/"+kind)
	if !proceed {
		return
	}
	cands := make([]*Match, 0, len(ok))
	for _, resp := range ok {
		if resp != nil && resp.Found {
			cands = append(cands, resp.Match)
		}
	}
	b := best(cands)
	writeJSON(w, http.StatusOK, BestResponse{Found: b != nil, Match: b, Degradation: deg})
}

func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Peek at the envelope to learn the kind and query count; the body is
	// still forwarded verbatim so shards do their own full validation.
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid batch request: %w", err))
		return
	}
	if !ValidBatchKind(req.Kind) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch kind must be findall, longest or filter, got %q", req.Kind))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, errors.New(`"queries" must be non-empty`))
		return
	}
	n := len(req.Queries)
	g.batches.Add(1)
	g.queries.Add(int64(n))
	replies := g.scatter(r.Context(), "/query/batch", body)
	ok, passThrough, deg := classify[BatchResponse](g, replies)
	if deg != nil {
		g.shardErrors.Add(int64(len(deg.Failures)))
	}
	if passThrough != nil {
		passVerbatim(w, passThrough)
		return
	}
	// A shard whose answer doesn't line up query-for-query is a protocol
	// violation; demote it to a failure rather than misattributing results.
	var answered []*BatchResponse
	for i, resp := range ok {
		if resp == nil {
			continue
		}
		bad := resp.Kind != req.Kind || resp.Count != n ||
			(req.Kind == "findall" && len(resp.Matches) != n) ||
			(req.Kind == "longest" && len(resp.Best) != n) ||
			(req.Kind == "filter" && len(resp.Hits) != n)
		if bad {
			if deg == nil {
				deg = &Degradation{Degraded: true}
			}
			deg.Failures = append(deg.Failures, ShardFailure{
				Shard: i, Range: g.plan.Ranges[i], Addr: g.urls[i], Status: http.StatusOK,
				Error: fmt.Sprintf("batch answer mismatch: kind %q count %d (want %q × %d)", resp.Kind, resp.Count, req.Kind, n),
			})
			g.shardErrors.Add(1)
			continue
		}
		answered = append(answered, resp)
	}
	if len(answered) == 0 {
		g.allFailed(w, deg)
		return
	}
	if deg != nil {
		g.degraded.Add(1)
	}
	out := BatchResponse{Kind: req.Kind, Count: n, Degradation: deg}
	switch req.Kind {
	case "findall":
		out.Matches = make([][]Match, n)
		for q := 0; q < n; q++ {
			lists := make([][]Match, len(answered))
			for s, resp := range answered {
				lists[s] = resp.Matches[q]
			}
			out.Matches[q] = MergeMatches(lists)
		}
	case "filter":
		out.Hits = make([][]Hit, n)
		for q := 0; q < n; q++ {
			lists := make([][]Hit, len(answered))
			for s, resp := range answered {
				lists[s] = resp.Hits[q]
			}
			out.Hits[q] = MergeHits(lists)
		}
	case "longest":
		out.Best = make([]BestResult, n)
		for q := 0; q < n; q++ {
			cands := make([]*Match, 0, len(answered))
			for _, resp := range answered {
				if resp.Best[q].Found {
					cands = append(cands, resp.Best[q].Match)
				}
			}
			b := BestLongest(cands)
			out.Best[q] = BestResult{Found: b != nil, Match: b}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// --- stats & health ---

// ShardStats is one shard's slice of the merged /stats: its raw stats
// document when reachable, the error otherwise.
type ShardStats struct {
	Shard int             `json:"shard"`
	Range Range           `json:"range"`
	Addr  string          `json:"addr"`
	OK    bool            `json:"ok"`
	Stats json.RawMessage `json:"stats,omitempty"`
	Error string          `json:"error,omitempty"`
}

// StatsTotals sums the additive counters across reachable shards.
type StatsTotals struct {
	NumWindows    int `json:"num_windows"`
	DistanceCalls struct {
		Build  int64 `json:"build"`
		Filter int64 `json:"filter"`
		Verify int64 `json:"verify"`
	} `json:"distance_calls"`
}

// GatewayCounters is the gateway's own request accounting.
type GatewayCounters struct {
	Queries     int64 `json:"queries"`
	Batches     int64 `json:"batches"`
	Degraded    int64 `json:"degraded"`
	ShardErrors int64 `json:"shard_errors"`
}

// GatewayStatsResponse is GET /stats on the gateway: the plan, each
// shard's own stats verbatim, cross-shard totals, and the gateway's
// counters.
type GatewayStatsResponse struct {
	Plan          Plan            `json:"plan"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Shards        []ShardStats    `json:"shards"`
	Totals        StatsTotals     `json:"totals"`
	Gateway       GatewayCounters `json:"gateway"`
	Degradation   *Degradation    `json:"degradation,omitempty"`
}

// statsSubset is the additive slice of a shard's stats document.
type statsSubset struct {
	NumWindows    int `json:"num_windows"`
	DistanceCalls struct {
		Build  int64 `json:"build"`
		Filter int64 `json:"filter"`
		Verify int64 `json:"verify"`
	} `json:"distance_calls"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := GatewayStatsResponse{
		Plan:          g.plan,
		UptimeSeconds: time.Since(g.start).Seconds(),
		Shards:        make([]ShardStats, len(g.urls)),
		Gateway: GatewayCounters{
			Queries:     g.queries.Load(),
			Batches:     g.batches.Load(),
			Degraded:    g.degraded.Load(),
			ShardErrors: g.shardErrors.Load(),
		},
	}
	var wg sync.WaitGroup
	for i, base := range g.urls {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			ss := ShardStats{Shard: i, Range: g.plan.Ranges[i], Addr: g.urls[i]}
			res, err := g.get(r.Context(), url)
			if err != nil {
				ss.Error = err.Error()
			} else {
				defer res.Body.Close()
				b, rerr := io.ReadAll(io.LimitReader(res.Body, maxGatewayBody))
				switch {
				case rerr != nil:
					ss.Error = rerr.Error()
				case res.StatusCode != http.StatusOK:
					ss.Error = fmt.Sprintf("HTTP %d: %s", res.StatusCode, shardErrorText(b))
				default:
					ss.OK = true
					ss.Stats = json.RawMessage(b)
				}
			}
			resp.Shards[i] = ss
		}(i, base+"/stats")
	}
	wg.Wait()
	var failures []ShardFailure
	for _, ss := range resp.Shards {
		if !ss.OK {
			failures = append(failures, ShardFailure{Shard: ss.Shard, Range: ss.Range, Addr: ss.Addr, Error: ss.Error})
			continue
		}
		var sub statsSubset
		if json.Unmarshal(ss.Stats, &sub) == nil {
			resp.Totals.NumWindows += sub.NumWindows
			resp.Totals.DistanceCalls.Build += sub.DistanceCalls.Build
			resp.Totals.DistanceCalls.Filter += sub.DistanceCalls.Filter
			resp.Totals.DistanceCalls.Verify += sub.DistanceCalls.Verify
		}
	}
	if len(failures) > 0 {
		resp.Degradation = &Degradation{Degraded: true, Failures: failures}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	up := 0
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, base := range g.urls {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			res, err := g.get(r.Context(), url)
			if err != nil {
				return
			}
			defer res.Body.Close()
			io.Copy(io.Discard, res.Body)
			if res.StatusCode == http.StatusOK {
				mu.Lock()
				up++
				mu.Unlock()
			}
		}(base + "/healthz")
	}
	wg.Wait()
	// The gateway is healthy while it can still answer (possibly degraded)
	// queries, i.e. while any shard is up.
	status := http.StatusOK
	if up == 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ok": up > 0, "shards_up": up, "shards": len(g.urls)})
}
