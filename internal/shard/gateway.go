package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Gateway is the scatter-gather front end: one HTTP handler speaking the
// single-node serving protocol upstream, fanning every query out to the
// shard fleet downstream and merging the answers deterministically
// (merge.go). It never decodes query payloads — the request body is
// forwarded to every range verbatim — so one gateway binary fronts byte,
// float64 and point2 sessions alike.
//
// Each sequence range maps to a replica set (NewReplicatedGateway), and
// the fan-out is replica-aware: a query needs one answer per *range*,
// obtained from whichever replica answers first. Routing prefers
// replicas whose circuit breaker is closed (health.go), fails over to
// the next replica on error, and — when hedging is enabled — launches a
// second read against another replica once the first has been in flight
// longer than the hedge threshold; the first answer wins and the loser
// is cancelled through its request context. A range degrades only when
// every replica fails, so a single replica loss is masked completely:
// the merged answer stays bit-identical to a single node with no
// Degradation block.
//
// Failure semantics per range: a replica that answers 4xx has judged the
// request itself malformed; since every replica shares the session spec,
// that verdict stands for the range (and the first such verdict for the
// fleet) and is returned to the client verbatim. A replica that cannot
// answer (transport error, 5xx, or still shedding 429/503 after the
// retry budget) triggers failover; when every replica of a range is
// exhausted the range is recorded as a ShardFailure with each replica's
// error itemised, and the merged response carries a Degradation block.
// Only when no range answers does the gateway fail the request (502).

// PostFunc issues a POST with a JSON body, returning the response. The
// bounded-retry client in cmd/subseqctl satisfies this; tests inject
// httptest-backed functions.
type PostFunc func(ctx context.Context, url string, body []byte) (*http.Response, error)

// GetFunc issues a GET (stats, healthz probes).
type GetFunc func(ctx context.Context, url string) (*http.Response, error)

// maxGatewayBody caps an incoming request body, mirroring the serve
// process's own cap so the gateway never buffers what a shard would
// refuse anyway.
const maxGatewayBody = 8 << 20

// Gateway fans queries out over a Plan's ranges, each served by a
// replica set. Construct with NewGateway (one replica per range) or
// NewReplicatedGateway; serve Handler(); optionally StartProbing().
type Gateway struct {
	// planp holds the current plan behind an atomic pointer: admin
	// appends grow the tail range (admin.go), and handlers read the plan
	// lock-free. Mutations are serialised by adminMu.
	planp    atomic.Pointer[Plan]
	adminMu  sync.Mutex
	replicas [][]string    // per range, cleaned base URLs
	health   []*replicaSet // per range, breakers + round-robin cursor
	post     PostFunc
	get      GetFunc
	mux      *http.ServeMux
	start    time.Time

	hedgeAfter       time.Duration
	probeInterval    time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration

	flight flightGroup
	// cache holds merged 200-OK answers under canonical keys (cache.go);
	// nil when caching is off. epoch is the shard-plan epoch every cache
	// key embeds: admin.go bumps it on each acknowledged write, making
	// every pre-write entry unreachable.
	cache *Cache
	epoch atomic.Uint64

	queries      atomic.Int64
	batches      atomic.Int64
	degraded     atomic.Int64
	shardErrors  atomic.Int64
	hedges       atomic.Int64
	hedgeWins    atomic.Int64
	failovers    atomic.Int64
	flightHits   atomic.Int64
	flightMisses atomic.Int64
	writes       atomic.Int64
}

// GatewayOption customises NewGateway.
type GatewayOption func(*Gateway)

// WithPost injects the POST transport (e.g. the bounded-retry client).
func WithPost(p PostFunc) GatewayOption { return func(g *Gateway) { g.post = p } }

// WithGet injects the GET transport.
func WithGet(get GetFunc) GatewayOption { return func(g *Gateway) { g.get = get } }

// WithHedgeAfter enables hedged reads: when a range's first attempt has
// been in flight for d without answering, a second attempt is launched
// against the next-preferred replica and the first answer wins (the
// loser is cancelled). d <= 0 disables hedging (the default): failover
// then happens only on error, never on latency.
func WithHedgeAfter(d time.Duration) GatewayOption { return func(g *Gateway) { g.hedgeAfter = d } }

// WithProbeInterval paces the background health prober StartProbing
// launches. d <= 0 disables background probing; breakers are then fed
// by query traffic and /healthz requests alone.
func WithProbeInterval(d time.Duration) GatewayOption {
	return func(g *Gateway) { g.probeInterval = d }
}

// WithCache enables the gateway result cache: successful, undegraded
// merged answers are kept under their canonical key (CacheKey) within a
// total byte budget, evicted LRU within that budget and by TTL (ttl <= 0
// keeps entries until eviction or write-path invalidation). maxBytes <= 0
// disables the cache; single-flight collapse works either way.
func WithCache(maxBytes int64, ttl time.Duration) GatewayOption {
	return func(g *Gateway) {
		if maxBytes > 0 {
			g.cache = NewCache(maxBytes, ttl)
		}
	}
}

// WithBreaker tunes the per-replica circuit breakers: threshold
// consecutive failures open a breaker, which deflects traffic for
// cooldown before offering the replica a half-open trial.
func WithBreaker(threshold int, cooldown time.Duration) GatewayOption {
	return func(g *Gateway) {
		g.breakerThreshold = threshold
		g.breakerCooldown = cooldown
	}
}

// NewGateway builds an unreplicated gateway over plan whose i-th range
// is served solely by urls[i] — a replica set of one.
func NewGateway(plan Plan, urls []string, opts ...GatewayOption) (*Gateway, error) {
	replicas := make([][]string, len(urls))
	for i, u := range urls {
		replicas[i] = []string{u}
	}
	return NewReplicatedGateway(plan, replicas, opts...)
}

// NewReplicatedGateway builds a gateway over plan whose i-th range is
// served by the replica set replicas[i] (base URLs, scheme://host:port,
// no trailing slash needed). The outer list must match the plan's
// ranges one to one; every range needs at least one replica.
func NewReplicatedGateway(plan Plan, replicas [][]string, opts ...GatewayOption) (*Gateway, error) {
	if len(replicas) != len(plan.Ranges) {
		return nil, fmt.Errorf("shard: plan has %d ranges but %d replica sets were given", len(plan.Ranges), len(replicas))
	}
	if len(replicas) == 0 {
		return nil, errors.New("shard: gateway needs at least one shard range")
	}
	clean := make([][]string, len(replicas))
	for i, set := range replicas {
		if len(set) == 0 {
			return nil, fmt.Errorf("shard: range %d has no replicas", i)
		}
		clean[i] = make([]string, len(set))
		for j, u := range set {
			if u == "" {
				return nil, fmt.Errorf("shard: range %d replica %d has an empty URL", i, j)
			}
			clean[i][j] = strings.TrimRight(u, "/")
		}
	}
	g := &Gateway{
		replicas:      clean,
		start:         time.Now(),
		probeInterval: defaultProbeInterval,
	}
	g.planp.Store(&plan)
	for _, o := range opts {
		o(g)
	}
	g.health = make([]*replicaSet, len(clean))
	for i, set := range clean {
		g.health[i] = newReplicaSet(set, g.breakerThreshold, g.breakerCooldown)
	}
	if g.post == nil {
		g.post = func(ctx context.Context, url string, body []byte) (*http.Response, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(string(body)))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/json")
			return http.DefaultClient.Do(req)
		}
	}
	if g.get == nil {
		g.get = func(ctx context.Context, url string) (*http.Response, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
			if err != nil {
				return nil, err
			}
			return http.DefaultClient.Do(req)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query/findall", g.handleFindAll)
	mux.HandleFunc("POST /query/longest", func(w http.ResponseWriter, r *http.Request) { g.handleBest(w, r, "longest", BestLongest) })
	mux.HandleFunc("POST /query/nearest", func(w http.ResponseWriter, r *http.Request) { g.handleBest(w, r, "nearest", BestNearest) })
	mux.HandleFunc("POST /query/filter", g.handleFilter)
	mux.HandleFunc("POST /query/batch", g.handleBatch)
	mux.HandleFunc("POST /admin/append", g.handleAdminAppend)
	mux.HandleFunc("POST /admin/retire", g.handleAdminRetire)
	mux.HandleFunc("POST /admin/snapshot", g.handleAdminSnapshot)
	mux.HandleFunc("GET /stats", g.handleStats)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux = mux
	return g, nil
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Plan returns the partition the gateway scatters over. It can grow:
// every acknowledged append through the gateway extends the tail range.
func (g *Gateway) Plan() Plan { return *g.planp.Load() }

// rangeOf returns range i of the current plan.
func (g *Gateway) rangeOf(i int) Range { return g.planp.Load().Ranges[i] }

// Epoch returns the shard-plan epoch; every acknowledged admin write
// through the gateway bumps it (and with it every cache key).
func (g *Gateway) Epoch() uint64 { return g.epoch.Load() }

// PendingFlights reports in-flight single-flight fan-outs — the leak
// probe tests assert drains to zero once traffic quiesces.
func (g *Gateway) PendingFlights() int { return g.flight.pending() }

// CacheStats snapshots the result cache counters; ok is false when the
// gateway runs without a cache.
func (g *Gateway) CacheStats() (cs CacheCounters, ok bool) {
	if g.cache == nil {
		return CacheCounters{}, false
	}
	return g.cache.Stats(), true
}

// Replicas returns the per-range replica endpoints.
func (g *Gateway) Replicas() [][]string { return g.replicas }

// --- scatter: one answer per range, from whichever replica delivers ---

// shardReply is one replica's raw answer: body + status on HTTP
// delivery, err on transport failure.
type shardReply struct {
	status int
	body   []byte
	err    error
}

// rangeReply is one range's resolved answer. On success status/body
// carry the winning replica's reply; when every replica failed, err is
// set and replicaErrs itemises the attempts.
type rangeReply struct {
	status      int
	body        []byte
	err         error
	replicaErrs []ReplicaError
}

// failoverStatus reports whether an HTTP status means "this replica
// cannot answer, try another" rather than "this request is bad". 429
// and 503 are included: the bounded-retry client has already backed off
// and retried before the gateway sees them, so a replica still shedding
// is treated as unavailable and its peers get the request.
func failoverStatus(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// tryReplica POSTs body to one replica and feeds its breaker: any
// decoded answer (including 4xx — the replica is alive and judging) is
// a success, transport errors and failover statuses are failures. A
// failure caused by our own context cancellation (a hedge lost its
// race, the client went away) is not charged to the breaker.
func (g *Gateway) tryReplica(ctx context.Context, ri, idx int, path string, body []byte) shardReply {
	set := g.health[ri]
	b := set.breakers[idx]
	resp, err := g.post(ctx, set.addrs[idx]+path, body)
	if err != nil {
		if ctx.Err() == nil {
			b.failure(err.Error())
		}
		return shardReply{err: err}
	}
	defer resp.Body.Close()
	buf, rerr := io.ReadAll(io.LimitReader(resp.Body, maxGatewayBody))
	if rerr != nil {
		if ctx.Err() == nil {
			b.failure(rerr.Error())
		}
		return shardReply{err: fmt.Errorf("reading shard response: %w", rerr)}
	}
	if failoverStatus(resp.StatusCode) {
		b.failure(fmt.Sprintf("HTTP %d: %s", resp.StatusCode, shardErrorText(buf)))
	} else {
		b.success()
	}
	return shardReply{status: resp.StatusCode, body: buf}
}

// launchKind distinguishes why an attempt was started, for accounting.
type launchKind int

const (
	launchPrimary launchKind = iota
	launchFailover
	launchHedge
)

// askRange resolves one range: attempts are launched against replicas
// in breaker-preferred order — the first immediately, the next on
// failure (failover) or on the hedge timer (latency), each attempt
// cancellable — and the first usable answer wins. The attempt budget is
// the replica set itself: every replica is tried at most once, and the
// range fails only when all of them have.
func (g *Gateway) askRange(ctx context.Context, ri int, path string, body []byte) rangeReply {
	set := g.health[ri]
	order := set.order(time.Now())
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	type attemptResult struct {
		idx  int
		kind launchKind
		rep  shardReply
	}
	results := make(chan attemptResult, len(order))
	next := 0
	launch := func(kind launchKind) {
		idx := order[next]
		next++
		go func() {
			results <- attemptResult{idx: idx, kind: kind, rep: g.tryReplica(actx, ri, idx, path, body)}
		}()
	}
	launch(launchPrimary)
	outstanding := 1

	var hedge <-chan time.Time
	if g.hedgeAfter > 0 && next < len(order) {
		timer := time.NewTimer(g.hedgeAfter)
		defer timer.Stop()
		hedge = timer.C
	}

	var repErrs []ReplicaError
	for {
		select {
		case res := <-results:
			outstanding--
			if res.rep.err == nil && !failoverStatus(res.rep.status) {
				if res.kind == launchHedge {
					g.hedgeWins.Add(1)
				}
				return rangeReply{status: res.rep.status, body: res.rep.body}
			}
			re := ReplicaError{Replica: res.idx, Addr: set.addrs[res.idx]}
			if res.rep.err != nil {
				re.Error = res.rep.err.Error()
			} else {
				re.Status = res.rep.status
				re.Error = shardErrorText(res.rep.body)
			}
			repErrs = append(repErrs, re)
			switch {
			case next < len(order):
				g.failovers.Add(1)
				launch(launchFailover)
				outstanding++
			case outstanding == 0:
				return rangeReply{
					err:         fmt.Errorf("all %d replicas failed", len(order)),
					replicaErrs: repErrs,
				}
			}
		case <-hedge:
			hedge = nil
			if next < len(order) {
				g.hedges.Add(1)
				launch(launchHedge)
				outstanding++
			}
		case <-ctx.Done():
			return rangeReply{err: ctx.Err(), replicaErrs: repErrs}
		}
	}
}

// scatter resolves every range concurrently and collects the replies in
// range order.
func (g *Gateway) scatter(ctx context.Context, path string, body []byte) []rangeReply {
	replies := make([]rangeReply, len(g.replicas))
	var wg sync.WaitGroup
	for i := range g.replicas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replies[i] = g.askRange(ctx, i, path, body)
		}(i)
	}
	wg.Wait()
	return replies
}

// shardErrorText extracts the serve process's error message from an
// error-envelope body, falling back to the raw body.
func shardErrorText(body []byte) string {
	var er ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		return er.Error
	}
	s := strings.TrimSpace(string(body))
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// rangeAddrs renders a range's replica endpoints for failure reports.
func (g *Gateway) rangeAddrs(i int) string { return strings.Join(g.replicas[i], ",") }

// classify splits range replies into per-range successes (decoded into
// fresh values of T), the first client-error reply to pass through
// verbatim (nil if none), and the range failures. ok[i] is nil for a
// failed range.
func classify[T any](g *Gateway, replies []rangeReply) (ok []*T, passThrough *shardReply, deg *Degradation) {
	ok = make([]*T, len(replies))
	var failures []ShardFailure
	for i, rep := range replies {
		switch {
		case rep.err != nil:
			failures = append(failures, ShardFailure{
				Shard: i, Range: g.rangeOf(i), Addr: g.rangeAddrs(i),
				Error: rep.err.Error(), Replicas: rep.replicaErrs,
			})
		case rep.status >= 400 && rep.status < 500:
			// The request itself is bad; every shard shares the session
			// spec, so the first verdict speaks for the fleet.
			if passThrough == nil {
				passThrough = &shardReply{status: rep.status, body: rep.body}
			}
		case rep.status != http.StatusOK:
			failures = append(failures, ShardFailure{
				Shard: i, Range: g.rangeOf(i), Addr: g.rangeAddrs(i),
				Status: rep.status, Error: shardErrorText(rep.body),
			})
		default:
			var v T
			if err := json.Unmarshal(rep.body, &v); err != nil {
				failures = append(failures, ShardFailure{
					Shard: i, Range: g.rangeOf(i), Addr: g.rangeAddrs(i),
					Status: rep.status, Error: fmt.Sprintf("undecodable response: %v", err),
				})
				continue
			}
			ok[i] = &v
		}
	}
	if len(failures) > 0 {
		deg = &Degradation{Degraded: true, Failures: failures}
	}
	return ok, passThrough, deg
}

// --- response plumbing ---

// encodeJSON materialises a response body in the gateway's wire format
// (indented, trailing newline — matching json.Encoder with indent).
func encodeJSON(v any) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return []byte(`{"error":"encoding response"}` + "\n")
	}
	return append(b, '\n')
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	writeRaw(w, status, encodeJSON(v))
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	if status == 0 {
		// A flight that died without producing a result (leader panic).
		status = http.StatusInternalServerError
		body = encodeJSON(ErrorResponse{Error: "query flight aborted"})
	}
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// allFailed materialises the response for a query no range could
// answer: the gateway has nothing to merge, so the request fails with
// every failure named.
func allFailedResult(deg *Degradation) flightResult {
	msgs := make([]string, len(deg.Failures))
	for i, f := range deg.Failures {
		msgs[i] = f.String()
	}
	return flightResult{
		status: http.StatusBadGateway,
		body:   encodeJSON(ErrorResponse{Error: "all shards failed: " + strings.Join(msgs, "; ")}),
	}
}

// readBody buffers the request body for fan-out.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxGatewayBody))
}

// collapse answers one query through the cache and the single-flight
// group, in that order. The key is the canonical CacheKey — endpoint,
// current plan epoch, canonical body — so formatting variants of one
// question share both the cache line and the flight, and a write-path
// epoch bump reroutes every later request past all pre-write state. A
// cache hit returns stored bytes without touching the fleet. A miss
// joins (or leads) the flight for its key; the leader alone runs the
// fan-out — detached from its request context, so a leader that
// disconnects cannot fail its followers or poison the cache — and
// populates the cache exactly once, only with a successful, undegraded
// answer. Bodies that are not one JSON value cannot be canonicalised:
// they still collapse by raw bytes but never cache.
func (g *Gateway) collapse(ctx context.Context, path string, body []byte, compute func(ctx context.Context) flightResult) flightResult {
	key, kerr := CacheKey(path, g.epoch.Load(), body)
	cacheable := kerr == nil && g.cache != nil
	if kerr != nil {
		key = path + "\x00" + string(body)
	}
	if cacheable {
		if b, ok := g.cache.Get(key); ok {
			return flightResult{status: http.StatusOK, body: b}
		}
	}
	res, shared := g.flight.do(key, func() flightResult {
		g.flightMisses.Add(1)
		r := compute(context.WithoutCancel(ctx))
		if cacheable && r.status == http.StatusOK && !r.degraded {
			g.cache.Put(key, r.body)
		}
		return r
	})
	if shared {
		g.flightHits.Add(1)
	}
	return res
}

// gatherResult runs the scatter/classify/accounting choreography for
// one query kind and hands the per-range successes to merge; merge is
// only called when at least one range answered.
func gatherResult[T any](g *Gateway, ctx context.Context, path string, body []byte, merge func(ok []*T, deg *Degradation) flightResult) flightResult {
	replies := g.scatter(ctx, path, body)
	ok, passThrough, deg := classify[T](g, replies)
	if deg != nil {
		g.shardErrors.Add(int64(len(deg.Failures)))
	}
	if passThrough != nil {
		return flightResult{status: passThrough.status, body: passThrough.body}
	}
	answered := 0
	for _, v := range ok {
		if v != nil {
			answered++
		}
	}
	if answered == 0 {
		if deg == nil {
			// Unreachable by construction (no pass-through, no success, no
			// failure would mean zero ranges), but fail loudly if it happens.
			return flightResult{status: http.StatusBadGateway, body: encodeJSON(ErrorResponse{Error: "no shard produced a response"})}
		}
		return allFailedResult(deg)
	}
	if deg != nil {
		g.degraded.Add(1)
	}
	res := merge(ok, deg)
	res.degraded = deg != nil
	return res
}

// --- query handlers ---

func (g *Gateway) handleFindAll(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	g.queries.Add(1)
	res := g.collapse(r.Context(), "/query/findall", body, func(ctx context.Context) flightResult {
		return gatherResult(g, ctx, "/query/findall", body, func(ok []*MatchesResponse, deg *Degradation) flightResult {
			lists := make([][]Match, 0, len(ok))
			for _, resp := range ok {
				if resp != nil {
					lists = append(lists, resp.Matches)
				}
			}
			merged := MergeMatches(lists)
			return flightResult{status: http.StatusOK, body: encodeJSON(MatchesResponse{Count: len(merged), Matches: merged, Degradation: deg})}
		})
	})
	writeRaw(w, res.status, res.body)
}

func (g *Gateway) handleFilter(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	g.queries.Add(1)
	res := g.collapse(r.Context(), "/query/filter", body, func(ctx context.Context) flightResult {
		return gatherResult(g, ctx, "/query/filter", body, func(ok []*HitsResponse, deg *Degradation) flightResult {
			lists := make([][]Hit, 0, len(ok))
			for _, resp := range ok {
				if resp != nil {
					lists = append(lists, resp.Hits)
				}
			}
			merged := MergeHits(lists)
			return flightResult{status: http.StatusOK, body: encodeJSON(HitsResponse{Count: len(merged), Hits: merged, Degradation: deg})}
		})
	})
	writeRaw(w, res.status, res.body)
}

func (g *Gateway) handleBest(w http.ResponseWriter, r *http.Request, kind string, best func([]*Match) *Match) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	g.queries.Add(1)
	path := "/query/" + kind
	res := g.collapse(r.Context(), path, body, func(ctx context.Context) flightResult {
		return gatherResult(g, ctx, path, body, func(ok []*BestResponse, deg *Degradation) flightResult {
			cands := make([]*Match, 0, len(ok))
			for _, resp := range ok {
				if resp != nil && resp.Found {
					cands = append(cands, resp.Match)
				}
			}
			b := best(cands)
			return flightResult{status: http.StatusOK, body: encodeJSON(BestResponse{Found: b != nil, Match: b, Degradation: deg})}
		})
	})
	writeRaw(w, res.status, res.body)
}

func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Peek at the envelope to learn the kind and query count; the body is
	// still forwarded verbatim so shards do their own full validation.
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid batch request: %w", err))
		return
	}
	if !ValidBatchKind(req.Kind) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch kind must be findall, longest or filter, got %q", req.Kind))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, errors.New(`"queries" must be non-empty`))
		return
	}
	n := len(req.Queries)
	g.batches.Add(1)
	g.queries.Add(int64(n))
	res := g.collapse(r.Context(), "/query/batch", body, func(ctx context.Context) flightResult {
		return g.batchResult(ctx, body, req.Kind, n)
	})
	writeRaw(w, res.status, res.body)
}

func (g *Gateway) batchResult(ctx context.Context, body []byte, kind string, n int) flightResult {
	replies := g.scatter(ctx, "/query/batch", body)
	ok, passThrough, deg := classify[BatchResponse](g, replies)
	if deg != nil {
		g.shardErrors.Add(int64(len(deg.Failures)))
	}
	if passThrough != nil {
		return flightResult{status: passThrough.status, body: passThrough.body}
	}
	// A shard whose answer doesn't line up query-for-query is a protocol
	// violation; demote it to a failure rather than misattributing results.
	var answered []*BatchResponse
	for i, resp := range ok {
		if resp == nil {
			continue
		}
		bad := resp.Kind != kind || resp.Count != n ||
			(kind == "findall" && len(resp.Matches) != n) ||
			(kind == "longest" && len(resp.Best) != n) ||
			(kind == "filter" && len(resp.Hits) != n)
		if bad {
			if deg == nil {
				deg = &Degradation{Degraded: true}
			}
			deg.Failures = append(deg.Failures, ShardFailure{
				Shard: i, Range: g.rangeOf(i), Addr: g.rangeAddrs(i), Status: http.StatusOK,
				Error: fmt.Sprintf("batch answer mismatch: kind %q count %d (want %q × %d)", resp.Kind, resp.Count, kind, n),
			})
			g.shardErrors.Add(1)
			continue
		}
		answered = append(answered, resp)
	}
	if len(answered) == 0 {
		return allFailedResult(deg)
	}
	if deg != nil {
		g.degraded.Add(1)
	}
	out := BatchResponse{Kind: kind, Count: n, Degradation: deg}
	switch kind {
	case "findall":
		out.Matches = make([][]Match, n)
		for q := 0; q < n; q++ {
			lists := make([][]Match, len(answered))
			for s, resp := range answered {
				lists[s] = resp.Matches[q]
			}
			out.Matches[q] = MergeMatches(lists)
		}
	case "filter":
		out.Hits = make([][]Hit, n)
		for q := 0; q < n; q++ {
			lists := make([][]Hit, len(answered))
			for s, resp := range answered {
				lists[s] = resp.Hits[q]
			}
			out.Hits[q] = MergeHits(lists)
		}
	case "longest":
		out.Best = make([]BestResult, n)
		for q := 0; q < n; q++ {
			cands := make([]*Match, 0, len(answered))
			for _, resp := range answered {
				if resp.Best[q].Found {
					cands = append(cands, resp.Best[q].Match)
				}
			}
			b := BestLongest(cands)
			out.Best[q] = BestResult{Found: b != nil, Match: b}
		}
	}
	return flightResult{status: http.StatusOK, body: encodeJSON(out), degraded: deg != nil}
}

// --- stats & health ---

// ShardStats is one range's slice of the merged /stats: its raw stats
// document when some replica was reachable (Replica names which), the
// error otherwise.
type ShardStats struct {
	Shard   int             `json:"shard"`
	Range   Range           `json:"range"`
	Addr    string          `json:"addr"`
	Replica int             `json:"replica,omitempty"`
	OK      bool            `json:"ok"`
	Stats   json.RawMessage `json:"stats,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// StatsTotals sums the additive counters across reachable ranges
// (counting each range once, through whichever replica answered).
type StatsTotals struct {
	NumWindows    int `json:"num_windows"`
	DistanceCalls struct {
		Build  int64 `json:"build"`
		Filter int64 `json:"filter"`
		Verify int64 `json:"verify"`
	} `json:"distance_calls"`
}

// SingleFlightCounters reports the gateway-side collapse of identical
// in-flight queries: hits joined an existing fan-out, misses led one.
type SingleFlightCounters struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// GatewayCounters is the gateway's own request accounting. Writes counts
// acknowledged admin mutations fanned out through the gateway.
type GatewayCounters struct {
	Queries      int64                `json:"queries"`
	Batches      int64                `json:"batches"`
	Writes       int64                `json:"writes"`
	Degraded     int64                `json:"degraded"`
	ShardErrors  int64                `json:"shard_errors"`
	Hedges       int64                `json:"hedges"`
	HedgeWins    int64                `json:"hedge_wins"`
	Failovers    int64                `json:"failovers"`
	SingleFlight SingleFlightCounters `json:"single_flight"`
}

// GatewayStatsResponse is GET /stats on the gateway: the plan and its
// epoch, each range's own stats verbatim, cross-range totals, the
// per-replica breaker roster, the gateway's counters and — when caching
// is on — the result-cache counters.
type GatewayStatsResponse struct {
	Plan          Plan            `json:"plan"`
	Epoch         uint64          `json:"epoch"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Shards        []ShardStats    `json:"shards"`
	Replication   []RangeHealth   `json:"replication"`
	Totals        StatsTotals     `json:"totals"`
	Gateway       GatewayCounters `json:"gateway"`
	Cache         *CacheCounters  `json:"cache,omitempty"`
	Degradation   *Degradation    `json:"degradation,omitempty"`
}

// statsSubset is the additive slice of a shard's stats document.
type statsSubset struct {
	NumWindows    int `json:"num_windows"`
	DistanceCalls struct {
		Build  int64 `json:"build"`
		Filter int64 `json:"filter"`
		Verify int64 `json:"verify"`
	} `json:"distance_calls"`
}

// fetchRangeStats fetches one range's /stats through its replicas in
// breaker-preferred order, returning on the first success.
func (g *Gateway) fetchRangeStats(ctx context.Context, ri int) ShardStats {
	set := g.health[ri]
	ss := ShardStats{Shard: ri, Range: g.rangeOf(ri), Addr: g.rangeAddrs(ri)}
	var errs []string
	for _, idx := range set.order(time.Now()) {
		res, err := g.get(ctx, set.addrs[idx]+"/stats")
		if err != nil {
			errs = append(errs, fmt.Sprintf("replica %d (%s): %v", idx, set.addrs[idx], err))
			continue
		}
		b, rerr := io.ReadAll(io.LimitReader(res.Body, maxGatewayBody))
		res.Body.Close()
		switch {
		case rerr != nil:
			errs = append(errs, fmt.Sprintf("replica %d (%s): %v", idx, set.addrs[idx], rerr))
		case res.StatusCode != http.StatusOK:
			errs = append(errs, fmt.Sprintf("replica %d (%s): HTTP %d: %s", idx, set.addrs[idx], res.StatusCode, shardErrorText(b)))
		default:
			ss.OK = true
			ss.Replica = idx
			ss.Addr = set.addrs[idx]
			ss.Stats = json.RawMessage(b)
			return ss
		}
	}
	ss.Error = strings.Join(errs, "; ")
	return ss
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	resp := GatewayStatsResponse{
		Plan:          g.Plan(),
		Epoch:         g.epoch.Load(),
		UptimeSeconds: time.Since(g.start).Seconds(),
		Shards:        make([]ShardStats, len(g.replicas)),
		Replication:   make([]RangeHealth, len(g.replicas)),
		Gateway: GatewayCounters{
			Queries:     g.queries.Load(),
			Batches:     g.batches.Load(),
			Writes:      g.writes.Load(),
			Degraded:    g.degraded.Load(),
			ShardErrors: g.shardErrors.Load(),
			Hedges:      g.hedges.Load(),
			HedgeWins:   g.hedgeWins.Load(),
			Failovers:   g.failovers.Load(),
			SingleFlight: SingleFlightCounters{
				Hits:   g.flightHits.Load(),
				Misses: g.flightMisses.Load(),
			},
		},
	}
	if g.cache != nil {
		cs := g.cache.Stats()
		resp.Cache = &cs
	}
	var wg sync.WaitGroup
	for i := range g.replicas {
		resp.Replication[i] = g.health[i].health(i, g.rangeOf(i), now, nil)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp.Shards[i] = g.fetchRangeStats(r.Context(), i)
		}(i)
	}
	wg.Wait()
	var failures []ShardFailure
	for _, ss := range resp.Shards {
		if !ss.OK {
			failures = append(failures, ShardFailure{Shard: ss.Shard, Range: ss.Range, Addr: ss.Addr, Error: ss.Error})
			continue
		}
		var sub statsSubset
		if json.Unmarshal(ss.Stats, &sub) == nil {
			resp.Totals.NumWindows += sub.NumWindows
			resp.Totals.DistanceCalls.Build += sub.DistanceCalls.Build
			resp.Totals.DistanceCalls.Filter += sub.DistanceCalls.Filter
			resp.Totals.DistanceCalls.Verify += sub.DistanceCalls.Verify
		}
	}
	if len(failures) > 0 {
		resp.Degradation = &Degradation{Degraded: true, Failures: failures}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz live-probes every replica of every range (feeding the
// breakers as a side effect) and reports the full roster: per-replica
// probe verdicts and breaker state, per-range up counts, and the two
// fleet-level verdicts — ok (something can still answer; governs the
// HTTP status) and full_coverage (nothing is degraded).
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	probeOK := g.probeAll(r.Context())
	now := time.Now()
	resp := HealthzResponse{Shards: len(g.replicas), Ranges: make([]RangeHealth, len(g.replicas))}
	for i := range g.replicas {
		rh := g.health[i].health(i, g.rangeOf(i), now, probeOK[i])
		resp.Ranges[i] = rh
		if rh.Up > 0 {
			resp.ShardsUp++
		}
	}
	resp.OK = resp.ShardsUp > 0
	resp.FullCoverage = resp.ShardsUp == resp.Shards
	status := http.StatusOK
	if !resp.OK {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
