package shard

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeShard builds an httptest server answering the serving protocol
// with canned payloads per path.
func fakeShard(t *testing.T, responses map[string]any) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	for path, v := range responses {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(v)
		})
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func newTestGateway(t *testing.T, plan Plan, urls []string) *Gateway {
	t.Helper()
	g, err := NewGateway(plan, urls)
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	return g
}

func doPost(t *testing.T, h http.Handler, path, body string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	b, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return rec, b
}

func mustPlan(t *testing.T, seqs int, ranges []Range) Plan {
	t.Helper()
	p, err := PlanFromRanges(seqs, ranges)
	if err != nil {
		t.Fatalf("PlanFromRanges: %v", err)
	}
	return p
}

func TestGatewayFindAllMergesAcrossShards(t *testing.T) {
	m0 := Match{SeqID: 0, QStart: 0, QEnd: 4, XStart: 1, XEnd: 5, Dist: 0.5}
	m1 := Match{SeqID: 1, QStart: 0, QEnd: 4, XStart: 0, XEnd: 4, Dist: 1}
	m2 := Match{SeqID: 2, QStart: 0, QEnd: 4, XStart: 3, XEnd: 7, Dist: 0.25}
	s0 := fakeShard(t, map[string]any{"POST /query/findall": MatchesResponse{Count: 2, Matches: []Match{m0, m1}}})
	s1 := fakeShard(t, map[string]any{"POST /query/findall": MatchesResponse{Count: 1, Matches: []Match{m2}}})
	g := newTestGateway(t, mustPlan(t, 4, []Range{{0, 2}, {2, 4}}), []string{s0.URL, s1.URL})

	rec, body := doPost(t, g.Handler(), "/query/findall", `{"query":"abc","eps":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp MatchesResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Count != 3 || len(resp.Matches) != 3 {
		t.Fatalf("count = %d, matches = %v", resp.Count, resp.Matches)
	}
	want := []Match{m0, m1, m2}
	for i, m := range resp.Matches {
		if m != want[i] {
			t.Errorf("match %d = %v, want %v", i, m, want[i])
		}
	}
	if resp.Degradation != nil {
		t.Errorf("healthy merge marked degraded: %+v", resp.Degradation)
	}
}

func TestGatewayDegradedWhenShardDown(t *testing.T) {
	m0 := Match{SeqID: 0, QStart: 0, QEnd: 4, XStart: 1, XEnd: 5, Dist: 0.5}
	s0 := fakeShard(t, map[string]any{"POST /query/findall": MatchesResponse{Count: 1, Matches: []Match{m0}}})
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from now on
	g := newTestGateway(t, mustPlan(t, 4, []Range{{0, 2}, {2, 4}}), []string{s0.URL, dead.URL})

	rec, body := doPost(t, g.Handler(), "/query/findall", `{"query":"abc","eps":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded query should still answer 200, got %d: %s", rec.Code, body)
	}
	var resp MatchesResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Count != 1 || resp.Matches[0] != m0 {
		t.Fatalf("surviving shard's answer lost: %+v", resp)
	}
	if resp.Degradation == nil || !resp.Degradation.Degraded {
		t.Fatal("no degradation block on a partial answer")
	}
	if len(resp.Degradation.Failures) != 1 {
		t.Fatalf("failures = %+v", resp.Degradation.Failures)
	}
	f := resp.Degradation.Failures[0]
	if f.Shard != 1 || (f.Range != Range{2, 4}) || f.Error == "" {
		t.Fatalf("failure does not name the dead shard: %+v", f)
	}
}

func TestGatewayAllShardsDownIs502(t *testing.T) {
	dead1 := httptest.NewServer(http.NotFoundHandler())
	dead1.Close()
	dead2 := httptest.NewServer(http.NotFoundHandler())
	dead2.Close()
	g := newTestGateway(t, mustPlan(t, 4, []Range{{0, 2}, {2, 4}}), []string{dead1.URL, dead2.URL})

	rec, body := doPost(t, g.Handler(), "/query/findall", `{"query":"abc","eps":1}`)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502: %s", rec.Code, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !strings.Contains(er.Error, "all shards failed") {
		t.Fatalf("error %q does not explain total failure", er.Error)
	}
}

func TestGatewayPassesClientErrorVerbatim(t *testing.T) {
	badReq := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(ErrorResponse{Error: `missing "eps"`})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query/findall", badReq)
	s0 := httptest.NewServer(mux)
	t.Cleanup(s0.Close)
	s1 := httptest.NewServer(mux)
	t.Cleanup(s1.Close)
	g := newTestGateway(t, mustPlan(t, 4, []Range{{0, 2}, {2, 4}}), []string{s0.URL, s1.URL})

	rec, body := doPost(t, g.Handler(), "/query/findall", `{"query":"abc"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want shard's 400: %s", rec.Code, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if er.Error != `missing "eps"` {
		t.Fatalf("shard's error not passed verbatim: %q", er.Error)
	}
}

func TestGatewayBestMerge(t *testing.T) {
	long := Match{SeqID: 0, QStart: 0, QEnd: 8, XStart: 0, XEnd: 8, Dist: 2}
	short := Match{SeqID: 3, QStart: 0, QEnd: 4, XStart: 0, XEnd: 4, Dist: 0}
	s0 := fakeShard(t, map[string]any{
		"POST /query/longest": BestResponse{Found: true, Match: &long},
		"POST /query/nearest": BestResponse{Found: true, Match: &long},
	})
	s1 := fakeShard(t, map[string]any{
		"POST /query/longest": BestResponse{Found: true, Match: &short},
		"POST /query/nearest": BestResponse{Found: true, Match: &short},
	})
	g := newTestGateway(t, mustPlan(t, 6, []Range{{0, 3}, {3, 6}}), []string{s0.URL, s1.URL})

	_, body := doPost(t, g.Handler(), "/query/longest", `{"query":"abc","eps":2}`)
	var resp BestResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !resp.Found || *resp.Match != long {
		t.Fatalf("longest merge = %+v, want the longer match", resp)
	}

	_, body = doPost(t, g.Handler(), "/query/nearest", `{"query":"abc","eps_max":4}`)
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !resp.Found || *resp.Match != short {
		t.Fatalf("nearest merge = %+v, want the closer match", resp)
	}
}

func TestGatewayBestNoneFound(t *testing.T) {
	s0 := fakeShard(t, map[string]any{"POST /query/longest": BestResponse{Found: false}})
	s1 := fakeShard(t, map[string]any{"POST /query/longest": BestResponse{Found: false}})
	g := newTestGateway(t, mustPlan(t, 4, []Range{{0, 2}, {2, 4}}), []string{s0.URL, s1.URL})
	rec, body := doPost(t, g.Handler(), "/query/longest", `{"query":"abc","eps":0.1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp BestResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Found || resp.Match != nil {
		t.Fatalf("no-shard-found merge = %+v", resp)
	}
}

func TestGatewayBatchMerge(t *testing.T) {
	mA := Match{SeqID: 0, QStart: 0, QEnd: 4, XStart: 0, XEnd: 4, Dist: 0.5}
	mB := Match{SeqID: 2, QStart: 0, QEnd: 4, XStart: 1, XEnd: 5, Dist: 1}
	s0 := fakeShard(t, map[string]any{"POST /query/batch": BatchResponse{
		Kind: "findall", Count: 2, Matches: [][]Match{{mA}, {}},
	}})
	s1 := fakeShard(t, map[string]any{"POST /query/batch": BatchResponse{
		Kind: "findall", Count: 2, Matches: [][]Match{{}, {mB}},
	}})
	g := newTestGateway(t, mustPlan(t, 4, []Range{{0, 2}, {2, 4}}), []string{s0.URL, s1.URL})

	rec, body := doPost(t, g.Handler(), "/query/batch",
		`{"kind":"findall","queries":["ab","cd"],"eps":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Kind != "findall" || resp.Count != 2 || len(resp.Matches) != 2 {
		t.Fatalf("batch envelope = %+v", resp)
	}
	if len(resp.Matches[0]) != 1 || resp.Matches[0][0] != mA {
		t.Fatalf("query 0 merged = %v", resp.Matches[0])
	}
	if len(resp.Matches[1]) != 1 || resp.Matches[1][0] != mB {
		t.Fatalf("query 1 merged = %v", resp.Matches[1])
	}
}

func TestGatewayBatchRejectsBadEnvelope(t *testing.T) {
	s0 := fakeShard(t, map[string]any{"POST /query/batch": BatchResponse{}})
	g := newTestGateway(t, mustPlan(t, 2, []Range{{0, 2}}), []string{s0.URL})
	cases := []struct {
		body, wantSub string
	}{
		{`{"kind":"nearest","queries":["a"],"eps":1}`, "batch kind"},
		{`{"kind":"findall","queries":[],"eps":1}`, "non-empty"},
		{`not json`, "invalid batch request"},
	}
	for _, c := range cases {
		rec, body := doPost(t, g.Handler(), "/query/batch", c.body)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", c.body, rec.Code)
		}
		if !strings.Contains(string(body), c.wantSub) {
			t.Errorf("body %q: error %s does not mention %q", c.body, body, c.wantSub)
		}
	}
}

func TestGatewayBatchDemotesMismatchedShard(t *testing.T) {
	mA := Match{SeqID: 0, QStart: 0, QEnd: 4, XStart: 0, XEnd: 4, Dist: 0.5}
	good := fakeShard(t, map[string]any{"POST /query/batch": BatchResponse{
		Kind: "findall", Count: 2, Matches: [][]Match{{mA}, {}},
	}})
	// Liar: answers the wrong number of queries.
	liar := fakeShard(t, map[string]any{"POST /query/batch": BatchResponse{
		Kind: "findall", Count: 1, Matches: [][]Match{{}},
	}})
	g := newTestGateway(t, mustPlan(t, 4, []Range{{0, 2}, {2, 4}}), []string{good.URL, liar.URL})

	rec, body := doPost(t, g.Handler(), "/query/batch",
		`{"kind":"findall","queries":["ab","cd"],"eps":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Degradation == nil || len(resp.Degradation.Failures) != 1 {
		t.Fatalf("mismatched shard not surfaced as degradation: %+v", resp.Degradation)
	}
	if !strings.Contains(resp.Degradation.Failures[0].Error, "batch answer mismatch") {
		t.Fatalf("failure = %+v", resp.Degradation.Failures[0])
	}
	if len(resp.Matches[0]) != 1 || resp.Matches[0][0] != mA {
		t.Fatalf("good shard's answer lost: %v", resp.Matches)
	}
}

func TestGatewayStatsMergesTotals(t *testing.T) {
	mkStats := func(windows int, filter int64) map[string]any {
		return map[string]any{
			"num_windows": windows,
			"distance_calls": map[string]int64{
				"build": 10, "filter": filter, "verify": 3,
			},
		}
	}
	s0 := fakeShard(t, map[string]any{"GET /stats": mkStats(40, 100)})
	s1 := fakeShard(t, map[string]any{"GET /stats": mkStats(25, 50)})
	g := newTestGateway(t, mustPlan(t, 4, []Range{{0, 2}, {2, 4}}), []string{s0.URL, s1.URL})

	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	var resp GatewayStatsResponse
	if err := json.NewDecoder(rec.Result().Body).Decode(&resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Totals.NumWindows != 65 {
		t.Errorf("total windows = %d, want 65", resp.Totals.NumWindows)
	}
	if resp.Totals.DistanceCalls.Filter != 150 || resp.Totals.DistanceCalls.Build != 20 {
		t.Errorf("distance totals = %+v", resp.Totals.DistanceCalls)
	}
	if len(resp.Shards) != 2 || !resp.Shards[0].OK || !resp.Shards[1].OK {
		t.Errorf("shard stats = %+v", resp.Shards)
	}
	if resp.Degradation != nil {
		t.Errorf("healthy stats degraded: %+v", resp.Degradation)
	}
}

func TestGatewayStatsNamesDeadShard(t *testing.T) {
	s0 := fakeShard(t, map[string]any{"GET /stats": map[string]any{"num_windows": 40}})
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	g := newTestGateway(t, mustPlan(t, 4, []Range{{0, 2}, {2, 4}}), []string{s0.URL, dead.URL})

	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	var resp GatewayStatsResponse
	if err := json.NewDecoder(rec.Result().Body).Decode(&resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Degradation == nil || len(resp.Degradation.Failures) != 1 || resp.Degradation.Failures[0].Shard != 1 {
		t.Fatalf("dead shard not named: %+v", resp.Degradation)
	}
	if resp.Totals.NumWindows != 40 {
		t.Errorf("totals should cover surviving shards: %+v", resp.Totals)
	}
}

func TestGatewayHealthz(t *testing.T) {
	up := fakeShard(t, map[string]any{"GET /healthz": map[string]any{"ok": true}})
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	g := newTestGateway(t, mustPlan(t, 4, []Range{{0, 2}, {2, 4}}), []string{up.URL, dead.URL})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("one shard up should be healthy, got %d", rec.Code)
	}
	var h struct {
		OK       bool `json:"ok"`
		ShardsUp int  `json:"shards_up"`
	}
	if err := json.NewDecoder(rec.Result().Body).Decode(&h); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !h.OK || h.ShardsUp != 1 {
		t.Fatalf("healthz = %+v", h)
	}

	gDead := newTestGateway(t, mustPlan(t, 2, []Range{{0, 2}}), []string{dead.URL})
	rec = httptest.NewRecorder()
	gDead.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("all shards down should be 503, got %d", rec.Code)
	}
}

func TestNewGatewayValidation(t *testing.T) {
	plan := mustPlan(t, 4, []Range{{0, 2}, {2, 4}})
	if _, err := NewGateway(plan, []string{"http://a"}); err == nil {
		t.Fatal("accepted URL count != range count")
	}
	if _, err := NewGateway(plan, []string{"http://a", ""}); err == nil {
		t.Fatal("accepted empty shard URL")
	}
	if _, err := NewGateway(Plan{}, nil); err == nil {
		t.Fatal("accepted zero shards")
	}
}

func TestGatewayCountersAccumulate(t *testing.T) {
	s0 := fakeShard(t, map[string]any{
		"POST /query/findall": MatchesResponse{Count: 0, Matches: []Match{}},
		"POST /query/batch":   BatchResponse{Kind: "findall", Count: 2, Matches: [][]Match{{}, {}}},
	})
	g := newTestGateway(t, mustPlan(t, 2, []Range{{0, 2}}), []string{s0.URL})
	doPost(t, g.Handler(), "/query/findall", `{"query":"abc","eps":1}`)
	doPost(t, g.Handler(), "/query/batch", `{"kind":"findall","queries":["a","b"],"eps":1}`)
	if q := g.queries.Load(); q != 3 {
		t.Errorf("queries = %d, want 3 (1 single + 2 batched)", q)
	}
	if b := g.batches.Load(); b != 1 {
		t.Errorf("batches = %d, want 1", b)
	}
}
