// Package chaos is the fault-injection harness for the serving stack: it
// wraps a distance measure so that evaluation — the innermost, hottest
// operation every query funnels through — can be made to stall, fail or
// kill its worker on demand, while the injector stays disarmed during
// index construction. The chaos tests drive the streaming engine through
// worker kills mid-claim, evaluator stalls against deadlines, queue slams
// past depth and cancellation storms, asserting the three properties the
// robustness layer promises: the pool never deadlocks, every future
// resolves (no leaks), and every query that completes returns results
// bit-identical to the sequential path.
package chaos

import (
	"sync/atomic"
	"time"

	"repro/internal/dist"
)

// Faults is a shared fault-injection control block. All knobs are atomic
// so tests flip them while workers are mid-evaluation; the zero value
// injects nothing. Faults start disarmed — Arm after the index is built,
// so construction is never corrupted and faults land only on query-time
// evaluation.
type Faults struct {
	armed atomic.Bool

	// stallEvery makes every Nth armed evaluation sleep for stall
	// nanoseconds (0 disables): the slow-disk / cold-cache / adversarial-
	// input shape that turns queue wait into deadline pressure.
	stallEvery atomic.Int64
	stall      atomic.Int64

	// panicEvery makes every Nth armed evaluation panic (0 disables): the
	// closest Go gets to killing a worker mid-claim. The engine's
	// per-claim recovery must convert it into ErrWorkerCrashed futures,
	// never a dead worker or a deadlock.
	panicEvery atomic.Int64

	calls  atomic.Int64
	stalls atomic.Int64
	panics atomic.Int64
}

// Arm enables injection; Disarm disables it (evaluations already sleeping
// finish their stall).
func (f *Faults) Arm()    { f.armed.Store(true) }
func (f *Faults) Disarm() { f.armed.Store(false) }

// SetStall makes every Nth armed evaluation sleep for d (every ≤ 0
// disables).
func (f *Faults) SetStall(every int, d time.Duration) {
	if every <= 0 {
		f.stallEvery.Store(0)
		return
	}
	f.stall.Store(int64(d))
	f.stallEvery.Store(int64(every))
}

// SetPanic makes every Nth armed evaluation panic (every ≤ 0 disables).
func (f *Faults) SetPanic(every int) { f.panicEvery.Store(int64(every)) }

// Calls, Stalls and Panics report how many evaluations ran, stalled and
// panicked since construction.
func (f *Faults) Calls() int64  { return f.calls.Load() }
func (f *Faults) Stalls() int64 { return f.stalls.Load() }
func (f *Faults) Panics() int64 { return f.panics.Load() }

// inject runs the fault schedule for one evaluation.
func (f *Faults) inject() {
	n := f.calls.Add(1)
	if !f.armed.Load() {
		return
	}
	if every := f.stallEvery.Load(); every > 0 && n%every == 0 {
		f.stalls.Add(1)
		time.Sleep(time.Duration(f.stall.Load()))
	}
	if every := f.panicEvery.Load(); every > 0 && n%every == 0 {
		f.panics.Add(1)
		panic("chaos: injected evaluator fault")
	}
}

// WrapMeasure returns m with f's fault schedule injected into every
// distance evaluation: Fn and Bounded are wrapped, and Prepare is
// stripped (kernel evaluation runs inside opaque per-window states the
// injector cannot see) so every query-time distance call flows through a
// wrapped entry point. Results stay bit-identical to the unwrapped
// measure because the underlying evaluations are unchanged.
func WrapMeasure[E any](m dist.Measure[E], f *Faults) dist.Measure[E] {
	inner := m.Fn
	m.Fn = func(a, b []E) float64 {
		f.inject()
		return inner(a, b)
	}
	if bounded := m.Bounded; bounded != nil {
		m.Bounded = func(a, b []E, bound float64) float64 {
			f.inject()
			return bounded(a, b, bound)
		}
	}
	m.Prepare = nil
	return m
}
