package chaos

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/seq"
	"repro/internal/shard"
	"repro/internal/store"
)

// Cache storm: a replicated gateway with the result cache enabled takes
// a hot-key query storm (few distinct queries, many concurrent clients
// — the cache's best case and the single-flight's worst) while a
// replica dies and admin writes mutate the database through the
// gateway's own fan-out. The invariant under all of that churn is the
// cache's correctness contract: no response may ever be stale past an
// acknowledged write. Each reader brackets its request with two
// write-generation counters — acked writes before the request MUST be
// visible, writes merely started before the response MAY be — so every
// single answer is checked against the exact set of database states it
// is allowed to reflect. A cached answer surviving an epoch bump, a
// single-flight leader publishing a pre-write answer to post-write
// waiters, or a flush racing the epoch would all surface as an answer
// matching no admissible generation.
//
// The storm ends with the books balanced: no leaked single-flight
// futures, cache and flight counters consistent with each other and
// with the query counter, the epoch equal to the write count, and the
// killed replica's breaker closed again.

// mutableShard is a shard replica over a live store.Store: findall runs
// under the store's read guard, and the admin surface applies the
// gateway's write fan-out (append allocating the next global ID, retire
// by global ID) — the protocol slice a cache-invalidation storm needs.
func mutableShard(t *testing.T, seqs []seq.Sequence[byte], base int) http.Handler {
	t.Helper()
	st, err := store.New(dist.LevenshteinFastMeasure(), core.Config{
		Params: core.Params{Lambda: 40, Lambda0: 1},
	}, seqs)
	if err != nil {
		t.Fatal(err)
	}
	writeErr := func(w http.ResponseWriter, status int, err error) {
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(shard.ErrorResponse{Error: err.Error()})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query/findall", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Query string  `json:"query"`
			Eps   float64 `json:"eps"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		mt, release := st.View()
		ms := mt.FindAll(seq.Sequence[byte](req.Query), req.Eps)
		release()
		out := shard.MatchesResponse{Count: len(ms), Matches: make([]shard.Match, len(ms))}
		for i, m := range ms {
			out.Matches[i] = shard.Match{
				SeqID: m.SeqID + base, QStart: m.QStart, QEnd: m.QEnd,
				XStart: m.XStart, XEnd: m.XEnd, Dist: m.Dist,
			}
		}
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("POST /admin/append", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Sequence string `json:"sequence"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		res, err := st.Append(seq.Sequence[byte](req.Sequence))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"seq_id": res.SeqID + base, "windows_added": res.Windows,
		})
	})
	mux.HandleFunc("POST /admin/retire", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			SeqID *int `json:"seq_id"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.SeqID == nil {
			writeErr(w, http.StatusBadRequest, errors.New(`"seq_id" is required`))
			return
		}
		if *req.SeqID < base {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("seq_id %d below shard base %d", *req.SeqID, base))
			return
		}
		removed, err := st.Retire(*req.SeqID - base)
		switch {
		case errors.Is(err, core.ErrRetireUnsupported):
			writeErr(w, http.StatusConflict, err)
			return
		case err != nil:
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"seq_id": *req.SeqID, "windows_removed": removed})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}\n"))
	})
	return mux
}

func TestChaosCacheStorm(t *testing.T) {
	rng := NewRand(t, 17)
	base := BaseSeed(t)
	windows := 160
	if testing.Short() {
		windows = 100
	}
	ds := data.Proteins(windows, 20, base)
	numSeqs := len(ds.Sequences)
	if numSeqs < 2 {
		t.Fatalf("dataset generates %d sequences; the scenario needs at least 2", numSeqs)
	}

	// The mutable single-node reference: every admin write the gateway
	// fans out is applied here too (by the writer goroutine, between its
	// own FindAll calls — never concurrently with them), and the answer
	// after each write is frozen into wants[qi][generation].
	ref, err := core.NewMatcher(dist.LevenshteinFastMeasure(), core.Config{
		Params: core.Params{Lambda: 40, Lambda0: 1},
	}, ds.Sequences)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 4
	queries := make([]seq.Sequence[byte], 3)
	for i := range queries {
		queries[i] = data.RandomQuery(ds, 60, 0.1, data.MutateAA, base+uint64(1700+i))
	}
	snapshot := func(q seq.Sequence[byte]) []shard.Match {
		ms := ref.FindAll(q, eps)
		out := make([]shard.Match, len(ms))
		for i, m := range ms {
			out[i] = shard.Match{SeqID: m.SeqID, QStart: m.QStart, QEnd: m.QEnd,
				XStart: m.XStart, XEnd: m.XEnd, Dist: m.Dist}
		}
		return out
	}

	// The write schedule: append each hot query's own sequence (so its
	// answer provably changes — an exact match at distance 0 appears),
	// then retire it again (the answer provably reverts). Every write
	// targets the tail range, whose replicas all stay alive; the replica
	// we kill serves a range no write touches, so replicas never diverge.
	const totalWrites = 6
	wants := make([][][]shard.Match, len(queries))
	for qi := range wants {
		wants[qi] = make([][]shard.Match, totalWrites+1)
		wants[qi][0] = snapshot(queries[qi])
	}

	plan, err := shard.RandomPlan(numSeqs, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("plan: %d sequences over %d ranges %v, 2 replicas each", plan.Seqs, len(plan.Ranges), plan.Ranges)
	const replicasPerRange = 2
	procs := make([][]*replicaProcess, len(plan.Ranges))
	groups := make([][]string, len(plan.Ranges))
	for i, r := range plan.Ranges {
		for j := 0; j < replicasPerRange; j++ {
			p, err := startReplica(mutableShard(t, ds.Sequences[r.Lo:r.Hi], r.Lo))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(p.kill)
			procs[i] = append(procs[i], p)
			groups[i] = append(groups[i], "http://"+p.addr)
		}
	}
	gw, err := shard.NewReplicatedGateway(plan, groups,
		// Sized so no hot answer can trip the per-segment byte budget —
		// an oversized (uncacheable) answer would zero the hit counter.
		shard.WithCache(64<<20, 0),
		shard.WithProbeInterval(25*time.Millisecond),
		shard.WithBreaker(3, 150*time.Millisecond),
		shard.WithHedgeAfter(250*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	stopProbing := gw.StartProbing()
	defer stopProbing()
	gts := httptest.NewServer(gw.Handler())
	defer gts.Close()
	client := &http.Client{Timeout: 30 * time.Second}

	// Write-generation counters. started counts writes handed to the
	// gateway; acked counts writes it acknowledged (and therefore
	// invalidated the cache for). wants[qi][g] is published before
	// started reaches g, so a reader loading the counters around its
	// request may safely index every generation in [acked, started].
	var started, acked atomic.Int64

	var (
		stop     atomic.Bool
		served   atomic.Int64
		errsMu   sync.Mutex
		firstErr error
	)
	report := func(err error) {
		errsMu.Lock()
		if firstErr == nil {
			firstErr = err
			stop.Store(true)
		}
		errsMu.Unlock()
	}
	matchesEqual := func(got, want []shard.Match) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}

	// The storm: pairs of goroutines per hot query, so the single-flight
	// and the cache both stay under contention on every key. Each answer
	// must be bit-identical to the reference at SOME admissible write
	// generation — anything else is a stale or corrupted answer.
	var wg sync.WaitGroup
	for gi := 0; gi < 2*len(queries); gi++ {
		qi := gi % len(queries)
		wg.Add(1)
		go func(qi int) {
			defer wg.Done()
			body := `{"query":` + string(mustJSON(t, string(queries[qi]))) + `,"eps":4}`
			for !stop.Load() {
				lo := acked.Load()
				resp, err := client.Post(gts.URL+"/query/findall", "application/json", strings.NewReader(body))
				if err != nil {
					report(fmt.Errorf("query %d: %w", qi, err))
					return
				}
				var out shard.MatchesResponse
				derr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				hi := started.Load()
				switch {
				case resp.StatusCode != http.StatusOK:
					report(fmt.Errorf("query %d: HTTP %d", qi, resp.StatusCode))
					return
				case derr != nil:
					report(fmt.Errorf("query %d: decode: %w", qi, derr))
					return
				case out.Degradation != nil:
					report(fmt.Errorf("query %d: replica loss leaked as degradation: %+v", qi, out.Degradation))
					return
				}
				admissible := false
				for g := lo; g <= hi; g++ {
					if matchesEqual(out.Matches, wants[qi][g]) {
						admissible = true
						break
					}
				}
				if !admissible {
					report(fmt.Errorf("query %d: stale answer: %d matches, admissible generations [%d,%d]",
						qi, len(out.Matches), lo, hi))
					return
				}
				served.Add(1)
			}
		}(qi)
	}

	breakerState := func(ri, pi int) string {
		resp, err := client.Get(gts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h shard.HealthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h.Ranges[ri].Replicas[pi].Breaker.State
	}
	waitForState := func(ri, pi int, state string, deadline time.Duration) {
		t.Helper()
		end := time.Now().Add(deadline)
		for time.Now().Before(end) {
			if stop.Load() {
				return // traffic already failed; surface that error instead
			}
			if breakerState(ri, pi) == state {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("replica %d/%d breaker never reached %q", ri, pi, state)
	}

	// Warm the cache with the full fleet, then kill a seed-chosen replica
	// of the range the writes will NOT touch, and wait for the breaker to
	// notice — the writes below run against a degraded-but-masked fleet.
	time.Sleep(150 * time.Millisecond)
	pi := rng.IntN(replicasPerRange)
	t.Logf("killing replica %d of range 0 %s", pi, plan.Ranges[0])
	procs[0][pi].kill()
	waitForState(0, pi, "open", 10*time.Second)

	// The writes, fanned through the gateway while the storm runs. Each
	// publishes the post-write reference answer BEFORE the gateway sees
	// the write, then bumps started/acked around it.
	adminPost := func(path, body string) shard.AdminFanoutResponse {
		t.Helper()
		resp, err := client.Post(gts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ar shard.AdminFanoutResponse
		if resp.StatusCode != http.StatusOK {
			var er shard.ErrorResponse
			json.NewDecoder(resp.Body).Decode(&er)
			t.Fatalf("%s: HTTP %d: %s", path, resp.StatusCode, er.Error)
		}
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatal(err)
		}
		return ar
	}
	appended := -1
	for g := 0; g < totalWrites; g++ {
		if stop.Load() {
			break // a reader already failed; fall through to its error
		}
		qi := (g / 2) % len(queries)
		var ar shard.AdminFanoutResponse
		if g%2 == 0 {
			// Append the hot query's own sequence: its answer gains an
			// exact match, so serving the pre-write answer is detectable.
			refID, _, err := ref.AppendSequence(queries[qi])
			if err != nil {
				t.Fatal(err)
			}
			appended = refID
			for q := range queries {
				wants[q][g+1] = snapshot(queries[q])
			}
			started.Add(1)
			ar = adminPost("/admin/append", `{"sequence":`+string(mustJSON(t, string(queries[qi])))+`}`)
			if ar.SeqID == nil || *ar.SeqID != refID {
				t.Fatalf("write %d: fleet allocated seq %v, reference %d", g, ar.SeqID, refID)
			}
		} else {
			// Retire it again: the answer reverts, which is equally
			// detectable — a cached post-append answer is now stale.
			if _, err := ref.RetireSequence(appended); err != nil {
				t.Fatal(err)
			}
			for q := range queries {
				wants[q][g+1] = snapshot(queries[q])
			}
			started.Add(1)
			ar = adminPost("/admin/retire", fmt.Sprintf(`{"seq_id":%d}`, appended))
		}
		if ar.Acks != replicasPerRange || !ar.Quorum || ar.Diverged {
			t.Fatalf("write %d fan-out: %+v", g, ar)
		}
		if ar.Epoch != uint64(g+1) {
			t.Fatalf("write %d: epoch %d, want %d", g, ar.Epoch, g+1)
		}
		acked.Add(1)
		time.Sleep(30 * time.Millisecond)
	}

	// Resurrect the killed replica; the prober must re-admit it while the
	// storm still runs against the fully mutated database.
	if err := procs[0][pi].restart(); err != nil {
		t.Fatal(err)
	}
	waitForState(0, pi, "closed", 10*time.Second)
	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	errsMu.Lock()
	if firstErr != nil {
		errsMu.Unlock()
		t.Fatal(firstErr)
	}
	errsMu.Unlock()
	if served.Load() == 0 {
		t.Fatal("storm served no traffic")
	}

	// Settled fleet: every query answers exactly the final generation —
	// acked == started == totalWrites, so nothing else is admissible.
	for qi, q := range queries {
		body := `{"query":` + string(mustJSON(t, string(q))) + `,"eps":4}`
		resp, err := client.Post(gts.URL+"/query/findall", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out shard.MatchesResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !matchesEqual(out.Matches, wants[qi][totalWrites]) {
			t.Fatalf("settled query %d: %d matches, want %d (final generation)",
				qi, len(out.Matches), len(wants[qi][totalWrites]))
		}
	}

	// The books must balance. No leaked single-flight futures; the epoch
	// is exactly the write count; every request either hit the cache or
	// went through the single-flight group, with no third path.
	if n := gw.PendingFlights(); n != 0 {
		t.Fatalf("%d single-flight futures leaked", n)
	}
	if e := gw.Epoch(); e != totalWrites {
		t.Fatalf("epoch %d after %d writes", e, totalWrites)
	}
	resp, err := client.Get(gts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats shard.GatewayStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Cache == nil {
		t.Fatal("/stats reports no cache block with the cache enabled")
	}
	cs := *stats.Cache
	if cs.Hits == 0 {
		t.Fatal("hot-key storm never hit the cache")
	}
	if cs.Invalidations == 0 {
		t.Fatalf("%d writes invalidated nothing", totalWrites)
	}
	if got := cs.Hits + cs.Misses; got != stats.Gateway.Queries {
		t.Fatalf("counter books: cache hits+misses %d, queries %d", got, stats.Gateway.Queries)
	}
	sf := stats.Gateway.SingleFlight
	if got := sf.Hits + sf.Misses; got != cs.Misses {
		t.Fatalf("counter books: flight hits+misses %d, cache misses %d", got, cs.Misses)
	}
	if stats.Gateway.Writes != totalWrites {
		t.Fatalf("writes counter %d after %d writes", stats.Gateway.Writes, totalWrites)
	}
	t.Logf("%d answers served, %d cache hits, %d invalidated entries, %d flight joins",
		served.Load(), cs.Hits, cs.Invalidations, sf.Hits)
}
