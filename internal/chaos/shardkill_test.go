package chaos

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/seq"
	"repro/internal/shard"
)

// Shard kill: a scatter-gather gateway loses one whole shard process
// mid-traffic. The fleet must keep serving — HTTP 200, healthz up — with
// every answer complete over the surviving ranges and the blind spot
// named in a typed degradation block; and before and after the kill,
// answers over live ranges stay bit-identical to a single node. Which
// shard dies and how the fleet is partitioned comes from the suite seed
// (CHAOS_SEED), like every other schedule in this package.

// shardServer is a minimal serve process for one slice of the database:
// it answers POST /query/findall in the serving tier's wire format, with
// sequence IDs re-based to the slice's global range — just enough
// protocol for a gateway to treat it as a real shard.
func shardServer(t *testing.T, seqs []seq.Sequence[byte], base int) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(shardHandler(t, seqs, base))
	t.Cleanup(ts.Close)
	return ts
}

// shardHandler builds the shard protocol handler alone, so scenarios
// that need to kill and resurrect a replica on a fixed address (the
// replica-kill scenario) can rebind it to fresh listeners.
func shardHandler(t *testing.T, seqs []seq.Sequence[byte], base int) http.Handler {
	t.Helper()
	mt, err := core.NewMatcher(dist.LevenshteinFastMeasure(), core.Config{
		Params: core.Params{Lambda: 40, Lambda0: 1},
	}, seqs)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query/findall", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Query string  `json:"query"`
			Eps   float64 `json:"eps"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(shard.ErrorResponse{Error: err.Error()})
			return
		}
		ms := mt.FindAll(seq.Sequence[byte](req.Query), req.Eps)
		out := shard.MatchesResponse{Count: len(ms), Matches: make([]shard.Match, len(ms))}
		for i, m := range ms {
			out.Matches[i] = shard.Match{
				SeqID: m.SeqID + base, QStart: m.QStart, QEnd: m.QEnd,
				XStart: m.XStart, XEnd: m.XEnd, Dist: m.Dist,
			}
		}
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

func TestChaosShardKill(t *testing.T) {
	rng := NewRand(t, 7)
	base := BaseSeed(t)
	windows := 240
	if testing.Short() {
		windows = 120
	}
	ds := data.Proteins(windows, 20, base)
	numSeqs := len(ds.Sequences)
	if numSeqs < 2 {
		t.Fatalf("dataset generates %d sequences; the scenario needs at least 2", numSeqs)
	}

	// Single-node ground truth over the whole database.
	ref, err := core.NewMatcher(dist.LevenshteinFastMeasure(), core.Config{
		Params: core.Params{Lambda: 40, Lambda0: 1},
	}, ds.Sequences)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]seq.Sequence[byte], 6)
	for i := range qs {
		qs[i] = data.RandomQuery(ds, 60, 0.1, data.MutateAA, base+uint64(500+i))
	}

	// A seed-drawn partition, one shard process per range.
	n := 2 + rng.IntN(min(3, numSeqs-1))
	plan, err := shard.RandomPlan(numSeqs, n, rng)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("plan: %d sequences over %d shards %v", plan.Seqs, len(plan.Ranges), plan.Ranges)
	servers := make([]*httptest.Server, len(plan.Ranges))
	urls := make([]string, len(plan.Ranges))
	for i, r := range plan.Ranges {
		servers[i] = shardServer(t, ds.Sequences[r.Lo:r.Hi], r.Lo)
		urls[i] = servers[i].URL
	}
	gw, err := shard.NewGateway(plan, urls)
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw.Handler())
	defer gts.Close()

	ask := func(q seq.Sequence[byte]) shard.MatchesResponse {
		t.Helper()
		body := `{"query":` + string(mustJSON(t, string(q))) + `,"eps":4}`
		resp, err := http.Post(gts.URL+"/query/findall", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("gateway answered %d, want 200", resp.StatusCode)
		}
		var out shard.MatchesResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	checkMatches := func(qi int, got []shard.Match, want []core.Match) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("query %d: %d matches from fleet, single node %d", qi, len(got), len(want))
		}
		for j, m := range want {
			w := shard.Match{SeqID: m.SeqID, QStart: m.QStart, QEnd: m.QEnd, XStart: m.XStart, XEnd: m.XEnd, Dist: m.Dist}
			if got[j] != w {
				t.Fatalf("query %d match %d: %+v from fleet, single node %+v", qi, j, got[j], w)
			}
		}
	}

	// Healthy fleet: bit-identical to the single node, no degradation.
	for qi, q := range qs {
		out := ask(q)
		if out.Degradation != nil {
			t.Fatalf("healthy fleet reported degradation: %+v", out.Degradation)
		}
		checkMatches(qi, out.Matches, ref.FindAll(q, 4))
	}

	// Kill a seed-chosen shard process outright.
	victim := rng.IntN(len(servers))
	t.Logf("killing shard %d %s", victim, plan.Ranges[victim])
	servers[victim].Close()

	// The fleet keeps serving: every response is a 200 whose degradation
	// block names exactly the dead shard, and whose matches are the
	// single node's answer with the dead range excised.
	for qi, q := range qs {
		out := ask(q)
		if out.Degradation == nil || !out.Degradation.Degraded {
			t.Fatalf("query %d after kill: no degradation reported", qi)
		}
		if len(out.Degradation.Failures) != 1 {
			t.Fatalf("query %d after kill: %d failures, want 1: %+v", qi, len(out.Degradation.Failures), out.Degradation.Failures)
		}
		if f := out.Degradation.Failures[0]; f.Shard != victim || f.Range != plan.Ranges[victim] {
			t.Fatalf("query %d after kill: failure names shard %d %v, want %d %v", qi, f.Shard, f.Range, victim, plan.Ranges[victim])
		}
		var want []core.Match
		for _, m := range ref.FindAll(q, 4) {
			if m.SeqID < plan.Ranges[victim].Lo || m.SeqID >= plan.Ranges[victim].Hi {
				want = append(want, m)
			}
		}
		checkMatches(qi, out.Matches, want)
	}

	// The gateway itself stays healthy while any shard survives.
	resp, err := http.Get(gts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway healthz %d after losing one shard, want 200", resp.StatusCode)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
