package chaos

import (
	"math/rand/v2"
	"os"
	"strconv"
	"sync"
	"testing"
)

// Every randomized chaos scenario draws its randomness from a single base
// seed so a failing run can be replayed exactly: set CHAOS_SEED to the
// value a failure logged (or to any number) to pin the whole suite —
// query generation, kill timing, cancellation schedules — to that run.

// EnvSeed is the environment variable that pins the suite's base seed.
const EnvSeed = "CHAOS_SEED"

// defaultSeed keeps unpinned runs deterministic too: CI failures are
// reproducible locally without capturing anything from the log.
const defaultSeed = 1

var (
	seedOnce sync.Once
	seedVal  uint64
	seedErr  error
)

// BaseSeed returns the suite's base seed: CHAOS_SEED when set (a decimal
// uint64), defaultSeed otherwise. A malformed CHAOS_SEED fails the test
// loudly instead of silently running an unreproducible schedule.
func BaseSeed(tb testing.TB) uint64 {
	seedOnce.Do(func() {
		s := os.Getenv(EnvSeed)
		if s == "" {
			seedVal = defaultSeed
			return
		}
		seedVal, seedErr = strconv.ParseUint(s, 10, 64)
	})
	if seedErr != nil {
		tb.Fatalf("chaos: %s=%q is not a uint64: %v", EnvSeed, os.Getenv(EnvSeed), seedErr)
	}
	return seedVal
}

// LogSeedOnFailure registers a cleanup that names the base seed when the
// test fails, and returns it. Call once per scenario — including ones
// whose only randomness is query generation — so every chaos failure ends
// with the line that replays it.
func LogSeedOnFailure(tb testing.TB) uint64 {
	seed := BaseSeed(tb)
	tb.Cleanup(func() {
		if tb.Failed() {
			tb.Logf("chaos: failing run used base seed %d; rerun with %s=%d to reproduce",
				seed, EnvSeed, seed)
		}
	})
	return seed
}

// NewRand returns a PCG stream derived from the base seed. Distinct
// streams (one per goroutine, scenario, or phase) stay independent under
// one base seed.
func NewRand(tb testing.TB, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(LogSeedOnFailure(tb), stream))
}
