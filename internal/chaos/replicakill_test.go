package chaos

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/seq"
	"repro/internal/shard"
)

// Replica kill: every shard range is served by two replicas, and one
// replica dies outright under live traffic. Unlike the shard-kill
// scenario — where losing the only copy of a range rightly degrades the
// answers — replica loss must be invisible: every response during the
// outage stays HTTP 200 with no Degradation block and bit-identical to
// the single-node ground truth, with the gateway's breaker deflecting
// traffic to the surviving replica. The replica then comes back on the
// same address and the breaker must re-admit it. Which range loses which
// replica comes from the suite seed (CHAOS_SEED).

// replicaProcess is a shard replica that can be killed and resurrected
// on the same host:port, standing in for a crashed-and-restarted serve
// process. The handler (and its index) survives restarts, like an index
// rebuilt from the same snapshot.
type replicaProcess struct {
	handler http.Handler
	addr    string
	srv     *http.Server
	ln      net.Listener
}

func startReplica(h http.Handler) (*replicaProcess, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &replicaProcess{handler: h, addr: ln.Addr().String()}
	p.serveOn(ln)
	return p, nil
}

func (p *replicaProcess) serveOn(ln net.Listener) {
	p.ln = ln
	p.srv = &http.Server{Handler: p.handler}
	go p.srv.Serve(ln)
}

// kill drops the replica: the listener closes and every open connection
// is severed, exactly what a crashed process looks like from outside.
func (p *replicaProcess) kill() { p.srv.Close() }

// restart rebinds the same address. The port can linger briefly in the
// kernel after the kill, so binding retries for a bounded window.
func (p *replicaProcess) restart() error {
	var lastErr error
	for i := 0; i < 40; i++ {
		ln, err := net.Listen("tcp", p.addr)
		if err == nil {
			p.serveOn(ln)
			return nil
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("rebinding %s: %w", p.addr, lastErr)
}

func TestChaosReplicaKill(t *testing.T) {
	rng := NewRand(t, 11)
	base := BaseSeed(t)
	windows := 160
	if testing.Short() {
		windows = 100
	}
	ds := data.Proteins(windows, 20, base)
	numSeqs := len(ds.Sequences)
	if numSeqs < 2 {
		t.Fatalf("dataset generates %d sequences; the scenario needs at least 2", numSeqs)
	}

	// Single-node ground truth, precomputed so the traffic loops compare
	// bytes without racing on the reference matcher.
	ref, err := core.NewMatcher(dist.LevenshteinFastMeasure(), core.Config{
		Params: core.Params{Lambda: 40, Lambda0: 1},
	}, ds.Sequences)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 4
	queries := make([]seq.Sequence[byte], 4)
	want := make([][]shard.Match, len(queries))
	for i := range queries {
		queries[i] = data.RandomQuery(ds, 60, 0.1, data.MutateAA, base+uint64(900+i))
		for _, m := range ref.FindAll(queries[i], eps) {
			want[i] = append(want[i], shard.Match{
				SeqID: m.SeqID, QStart: m.QStart, QEnd: m.QEnd,
				XStart: m.XStart, XEnd: m.XEnd, Dist: m.Dist,
			})
		}
	}

	// A seed-drawn two-range partition, two replicas per range. Each
	// replica gets its own matcher over the same slice — independent
	// processes built from the same data, as in a real deployment.
	plan, err := shard.RandomPlan(numSeqs, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("plan: %d sequences over %d ranges %v, 2 replicas each", plan.Seqs, len(plan.Ranges), plan.Ranges)
	const replicasPerRange = 2
	procs := make([][]*replicaProcess, len(plan.Ranges))
	groups := make([][]string, len(plan.Ranges))
	for i, r := range plan.Ranges {
		for j := 0; j < replicasPerRange; j++ {
			p, err := startReplica(shardHandler(t, ds.Sequences[r.Lo:r.Hi], r.Lo))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(p.kill)
			procs[i] = append(procs[i], p)
			groups[i] = append(groups[i], "http://"+p.addr)
		}
	}
	gw, err := shard.NewReplicatedGateway(plan, groups,
		shard.WithProbeInterval(25*time.Millisecond),
		shard.WithBreaker(3, 150*time.Millisecond),
		shard.WithHedgeAfter(250*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	stopProbing := gw.StartProbing()
	defer stopProbing()
	gts := httptest.NewServer(gw.Handler())
	defer gts.Close()
	client := &http.Client{Timeout: 30 * time.Second}

	// Traffic: one goroutine per query, hammering the gateway until told
	// to stop. Every single response must be a 200 with no degradation,
	// bit-identical to the single node — replica loss is invisible.
	var (
		stop     atomic.Bool
		served   atomic.Int64
		errsMu   sync.Mutex
		firstErr error
	)
	report := func(err error) {
		errsMu.Lock()
		if firstErr == nil {
			firstErr = err
			stop.Store(true)
		}
		errsMu.Unlock()
	}
	var wg sync.WaitGroup
	for qi := range queries {
		wg.Add(1)
		go func(qi int) {
			defer wg.Done()
			body := `{"query":` + string(mustJSON(t, string(queries[qi]))) + `,"eps":4}`
			for !stop.Load() {
				resp, err := client.Post(gts.URL+"/query/findall", "application/json", strings.NewReader(body))
				if err != nil {
					report(fmt.Errorf("query %d: %w", qi, err))
					return
				}
				var out shard.MatchesResponse
				derr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				switch {
				case resp.StatusCode != http.StatusOK:
					report(fmt.Errorf("query %d: HTTP %d", qi, resp.StatusCode))
					return
				case derr != nil:
					report(fmt.Errorf("query %d: decode: %w", qi, derr))
					return
				case out.Degradation != nil:
					report(fmt.Errorf("query %d: replica loss leaked as degradation: %+v", qi, out.Degradation))
					return
				case len(out.Matches) != len(want[qi]) || (len(want[qi]) > 0 && !reflect.DeepEqual(out.Matches, want[qi])):
					report(fmt.Errorf("query %d: answer diverged from single node (%d matches, want %d)", qi, len(out.Matches), len(want[qi])))
					return
				}
				served.Add(1)
			}
		}(qi)
	}

	// breakerState polls the gateway's own /healthz roster — the same
	// view an operator gets — for one replica's breaker.
	breakerState := func(ri, pi int) string {
		resp, err := client.Get(gts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h shard.HealthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h.Ranges[ri].Replicas[pi].Breaker.State
	}
	waitForState := func(ri, pi int, state string, deadline time.Duration) {
		t.Helper()
		end := time.Now().Add(deadline)
		for time.Now().Before(end) {
			if stop.Load() {
				return // traffic already failed; surface that error instead
			}
			if breakerState(ri, pi) == state {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("replica %d/%d breaker never reached %q", ri, pi, state)
	}

	// Warm-up with the full fleet, then kill a seed-chosen replica.
	time.Sleep(150 * time.Millisecond)
	ri, pi := rng.IntN(len(procs)), rng.IntN(replicasPerRange)
	t.Logf("killing replica %d of range %d %s", pi, ri, plan.Ranges[ri])
	procs[ri][pi].kill()

	// The breaker must open on the dead replica while traffic flows on.
	waitForState(ri, pi, "open", 10*time.Second)
	beforeRestart := served.Load()

	// Resurrect it on the same address; the prober must close the breaker.
	if err := procs[ri][pi].restart(); err != nil {
		t.Fatal(err)
	}
	t.Logf("restarted replica %d of range %d at %s", pi, ri, procs[ri][pi].addr)
	waitForState(ri, pi, "closed", 10*time.Second)

	// Let traffic run against the healed fleet, then stop and settle.
	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	errsMu.Lock()
	defer errsMu.Unlock()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if total := served.Load(); total == 0 || total == beforeRestart {
		t.Fatalf("traffic stalled: %d answers total, %d before restart", total, beforeRestart)
	}
	t.Logf("%d bit-identical answers across kill and restart", served.Load())
}
