package chaos

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/seq"
)

// harness builds a protein matcher over a fault-wrapped Levenshtein
// measure, a query set, and the sequential ground truth (computed while
// the injector is disarmed, so it is exactly the library's answer).
type harness struct {
	faults *Faults
	mt     *core.Matcher[byte]
	qs     []seq.Sequence[byte]
	want   [][]core.Match
}

const chaosEps = 4

// scale shrinks a scenario's round count under -short: the CI chaos-smoke
// job runs the whole suite with -race on a time budget, so short mode
// trades repetition (not scenario coverage) for wall clock.
func scale(n int) int {
	if testing.Short() {
		return (n + 1) / 2
	}
	return n
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	base := LogSeedOnFailure(t)
	windows := 300
	if testing.Short() {
		windows = 120
	}
	ds := data.Proteins(windows, 20, base)
	f := &Faults{}
	// The bit-parallel Levenshtein keeps evaluation cheap so the suite's
	// wall clock is spent on injected faults, not on pricing.
	m := WrapMeasure(dist.LevenshteinFastMeasure(), f)
	mt, err := core.NewMatcher(m, core.Config{
		Params: core.Params{Lambda: 40, Lambda0: 1},
	}, ds.Sequences)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]seq.Sequence[byte], 8)
	for i := range qs {
		qs[i] = data.RandomQuery(ds, 60, 0.1, data.MutateAA, base+uint64(100+i))
	}
	return &harness{faults: f, mt: mt, qs: qs, want: mt.FindAllBatch(qs, chaosEps)}
}

// checkIdentical asserts one completed streaming answer is bit-identical
// to the sequential path's.
func (h *harness) checkIdentical(t *testing.T, qi int, got []core.Match) {
	t.Helper()
	if len(got) != len(h.want[qi]) {
		t.Fatalf("query %d: %d matches under chaos, sequential %d", qi, len(got), len(h.want[qi]))
	}
	for j := range got {
		if got[j] != h.want[qi][j] {
			t.Fatalf("query %d match %d: %v under chaos, sequential %v", qi, j, got[j], h.want[qi][j])
		}
	}
}

// checkAccounting asserts the engine drained and every submission landed
// in exactly one lifetime counter. Call after Close.
func checkAccounting(t *testing.T, st core.StreamStats) {
	t.Helper()
	if st.InFlight != 0 || st.Pending != 0 {
		t.Fatalf("engine not drained: %+v", st)
	}
	if st.Completed+st.Cancelled+st.Rejected+st.Shed+st.Expired+st.Crashed != st.Submitted {
		t.Fatalf("submission accounting leaks: %+v", st)
	}
}

type tagged struct {
	qi int
	f  *core.Future[[]core.Match]
}

// Workers killed mid-claim: injected evaluator panics must become typed
// ErrWorkerCrashed failures on exactly the claimed futures — never a dead
// worker, a leaked slot, or a wrong answer — and the pool keeps serving
// correct results afterwards.
func TestChaosWorkerKillMidClaim(t *testing.T) {
	h := newHarness(t)
	pool := core.NewQueryPool(h.mt, 3)
	h.faults.SetPanic(400)
	h.faults.Arm()
	ctx := context.Background()
	var futures []tagged
	for r := 0; r < scale(8); r++ {
		for qi := range h.qs {
			futures = append(futures, tagged{qi, pool.Submit(ctx, h.qs[qi], chaosEps)})
		}
	}
	var crashed int
	for _, tf := range futures {
		ms, err := tf.f.Await(ctx)
		switch {
		case err == nil:
			h.checkIdentical(t, tf.qi, ms)
		case errors.Is(err, core.ErrWorkerCrashed):
			crashed++
		default:
			t.Fatalf("query %d resolved to %v, want result or ErrWorkerCrashed", tf.qi, err)
		}
	}
	if h.faults.Panics() == 0 {
		t.Fatal("no panic fired; lower the panic interval")
	}
	if crashed == 0 {
		t.Fatal("panics fired but no future reported ErrWorkerCrashed")
	}
	// Self-healing: with faults off, the same pool answers every query
	// bit-identically — the workers survived their kills.
	h.faults.Disarm()
	for qi, q := range h.qs {
		ms, err := pool.Submit(ctx, q, chaosEps).Await(ctx)
		if err != nil {
			t.Fatalf("post-chaos query %d failed: %v", qi, err)
		}
		h.checkIdentical(t, qi, ms)
	}
	pool.Close()
	st := pool.StreamStats()
	if st.Crashed == 0 {
		t.Fatalf("stats show no crashes: %+v", st)
	}
	checkAccounting(t, st)
}

// Evaluator stalls against deadlines: slow distance evaluation pushes
// queue wait past tight submission deadlines. Expired submissions must
// fail typed (ErrDeadlineExceeded) without being priced; unexpired ones
// complete bit-identically.
func TestChaosEvaluatorStall(t *testing.T) {
	h := newHarness(t)
	pool := core.NewQueryPool(h.mt, 2)
	h.faults.SetStall(400, time.Millisecond)
	h.faults.Arm()
	ctx := context.Background()
	var futures []tagged
	var patient []tagged
	for r := 0; r < scale(4); r++ {
		for qi := range h.qs {
			// Alternate tight-deadline and patient traffic.
			if (r+qi)%2 == 0 {
				futures = append(futures, tagged{qi, pool.Submit(ctx, h.qs[qi], chaosEps,
					core.WithSubmitTimeout(5*time.Millisecond))})
			} else {
				patient = append(patient, tagged{qi, pool.Submit(ctx, h.qs[qi], chaosEps)})
			}
		}
	}
	var expired, completed int
	for _, tf := range futures {
		ms, err := tf.f.Await(ctx)
		switch {
		case err == nil:
			completed++
			h.checkIdentical(t, tf.qi, ms)
		case errors.Is(err, core.ErrDeadlineExceeded):
			expired++
		default:
			t.Fatalf("deadline query %d resolved to %v, want result or ErrDeadlineExceeded", tf.qi, err)
		}
	}
	for _, tf := range patient {
		ms, err := tf.f.Await(ctx)
		if err != nil {
			t.Fatalf("patient query %d failed under stalls: %v", tf.qi, err)
		}
		h.checkIdentical(t, tf.qi, ms)
	}
	if h.faults.Stalls() == 0 {
		t.Fatal("no stall fired; lower the stall interval")
	}
	pool.Close()
	st := pool.StreamStats()
	if int(st.Expired) != expired || expired+completed != len(futures) {
		t.Fatalf("deadline accounting: %d expired + %d completed of %d, stats %+v",
			expired, completed, len(futures), st)
	}
	checkAccounting(t, st)
}

// Queue slammed past depth: under ShedRejectNewest with a tiny budget and
// stalled workers, overflow must shed typed and immediately (ErrQueueFull)
// while every admitted submission still completes bit-identically.
func TestChaosQueueSlam(t *testing.T) {
	h := newHarness(t)
	pool := core.NewQueryPool(h.mt, 2,
		core.WithQueueDepth(4), core.WithShedPolicy(core.ShedRejectNewest))
	h.faults.SetStall(1000, time.Millisecond)
	h.faults.Arm()
	var wg sync.WaitGroup
	var shed, completed, bad atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < scale(8); i++ {
				qi := (g + i) % len(h.qs)
				ms, err := pool.Submit(ctx, h.qs[qi], chaosEps).Await(ctx)
				switch {
				case err == nil:
					completed.Add(1)
					if len(ms) != len(h.want[qi]) {
						bad.Add(1)
					}
				case errors.Is(err, core.ErrQueueFull):
					shed.Add(1)
				default:
					bad.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d wrong results or unexpected errors under slam", bad.Load())
	}
	if shed.Load() == 0 {
		t.Fatal("queue slam shed nothing; the engine is not saturating")
	}
	if completed.Load() == 0 {
		t.Fatal("queue slam completed nothing; the engine seized")
	}
	pool.Close()
	st := pool.StreamStats()
	if st.Shed != shed.Load() {
		t.Fatalf("stats count %d shed, callers saw %d", st.Shed, shed.Load())
	}
	checkAccounting(t, st)
}

// Cancellation storm: contexts die at random moments — before admission,
// while queued, while running. Every future must still resolve (result or
// context.Canceled), and the engine drains to zero.
func TestChaosCancelStorm(t *testing.T) {
	h := newHarness(t)
	pool := core.NewQueryPool(h.mt, 3, core.WithQueueDepth(16))
	h.faults.SetStall(800, 500*time.Microsecond)
	h.faults.Arm()
	var wg sync.WaitGroup
	var bad atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		rng := NewRand(t, uint64(g))
		go func(g int) {
			defer wg.Done()
			for i := 0; i < scale(8); i++ {
				qi := (g + i) % len(h.qs)
				ctx, cancel := context.WithCancel(context.Background())
				f := pool.Submit(ctx, h.qs[qi], chaosEps)
				switch rng.IntN(3) {
				case 0:
					cancel() // racing admission and the claim
				case 1:
					time.Sleep(time.Duration(rng.IntN(1000)) * time.Microsecond)
					cancel() // racing the run
				}
				ms, err := f.Await(context.Background())
				if err == nil {
					if len(ms) != len(h.want[qi]) {
						bad.Add(1)
					}
				} else if !errors.Is(err, context.Canceled) {
					bad.Add(1)
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d wrong results or unexpected errors under cancel storm", bad.Load())
	}
	pool.Close()
	checkAccounting(t, pool.StreamStats())
}

// Everything at once: kills, stalls, tight deadlines, saturation under
// fair-share shedding, and cancellations, from many tenants concurrently.
// The engine must resolve every future with a typed outcome, keep
// completed answers bit-identical, and drain clean.
func TestChaosEverything(t *testing.T) {
	h := newHarness(t)
	pool := core.NewQueryPool(h.mt, 3,
		core.WithQueueDepth(8), core.WithShedPolicy(core.ShedFairShare))
	h.faults.SetStall(150, time.Millisecond)
	h.faults.SetPanic(900)
	h.faults.Arm()
	tenants := []string{"alpha", "beta", "gamma"}
	var wg sync.WaitGroup
	var bad atomic.Int64
	for g := 0; g < 9; g++ {
		wg.Add(1)
		rng := NewRand(t, uint64(100+g))
		go func(g int) {
			defer wg.Done()
			tenant := tenants[g%len(tenants)]
			for i := 0; i < scale(16); i++ {
				qi := (g + i) % len(h.qs)
				ctx, cancel := context.WithCancel(context.Background())
				opts := []core.SubmitOption{core.WithTenant(tenant)}
				if rng.IntN(3) == 0 {
					opts = append(opts, core.WithSubmitTimeout(
						time.Duration(1+rng.IntN(20))*time.Millisecond))
				}
				f := pool.Submit(ctx, h.qs[qi], chaosEps, opts...)
				if rng.IntN(4) == 0 {
					cancel()
				}
				ms, err := f.Await(context.Background())
				switch {
				case err == nil:
					if len(ms) != len(h.want[qi]) {
						bad.Add(1)
					}
				case errors.Is(err, core.ErrQueueFull),
					errors.Is(err, core.ErrDeadlineExceeded),
					errors.Is(err, core.ErrWorkerCrashed),
					errors.Is(err, context.Canceled):
				default:
					bad.Add(1)
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d wrong results or untyped errors under combined chaos", bad.Load())
	}
	// The pool is still alive and correct after the storm.
	h.faults.Disarm()
	ctx := context.Background()
	for qi, q := range h.qs {
		ms, err := pool.Submit(ctx, q, chaosEps).Await(ctx)
		if err != nil {
			t.Fatalf("post-chaos query %d failed: %v", qi, err)
		}
		h.checkIdentical(t, qi, ms)
	}
	pool.Close()
	checkAccounting(t, pool.StreamStats())
}
