package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestParseSize(t *testing.T) {
	if s, err := ParseSize("small"); err != nil || s != Small {
		t.Errorf("ParseSize(small) = %v, %v", s, err)
	}
	if s, err := ParseSize("PAPER"); err != nil || s != Paper {
		t.Errorf("ParseSize(PAPER) = %v, %v", s, err)
	}
	if _, err := ParseSize("huge"); err == nil {
		t.Error("ParseSize(huge) accepted")
	}
}

func TestIDsCoverAllFigures(t *testing.T) {
	want := []string{"fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		ID: "x", Title: "T",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"n"},
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== x: T ==", "a    bb", "333  4", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fprint output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	tab.CSV(&buf)
	if got := buf.String(); got != "a,bb\n1,2\n333,4\n" {
		t.Errorf("CSV = %q", got)
	}
}

// parsePct parses "12.34%" cells.
func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage cell %q: %v", cell, err)
	}
	return v
}

func TestFig04Shapes(t *testing.T) {
	tables := Fig04(Small)
	if len(tables) != 6 { // summary + 5 detail histograms
		t.Fatalf("Fig04 returned %d tables", len(tables))
	}
	sum := tables[0]
	if len(sum.Rows) != 5 {
		t.Fatalf("summary has %d rows", len(sum.Rows))
	}
	// songs/dfd max must stay within the pitch bound 11; traj/erp spread
	// must dwarf songs/dfd spread.
	byName := map[string][]string{}
	for _, r := range sum.Rows {
		byName[r[0]+"/"+r[1]] = r
	}
	dfdMax, _ := strconv.ParseFloat(byName["songs/dfd"][7], 64)
	if dfdMax > 11 {
		t.Errorf("songs/dfd max %v exceeds pitch bound", dfdMax)
	}
	dfdStd, _ := strconv.ParseFloat(byName["songs/dfd"][4], 64)
	erpStd, _ := strconv.ParseFloat(byName["songs/erp"][4], 64)
	if dfdStd >= erpStd {
		t.Errorf("songs/dfd std %v not below songs/erp std %v", dfdStd, erpStd)
	}
}

func TestFig05Shapes(t *testing.T) {
	tab := Fig05(Small)[0]
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Links grow monotonically with windows and avg_parents stays sane.
	prevLinks := -1
	for _, r := range tab.Rows {
		links, _ := strconv.Atoi(r[3])
		if links <= prevLinks {
			t.Errorf("links not increasing: %v", r)
		}
		prevLinks = links
		ap, _ := strconv.ParseFloat(r[4], 64)
		if ap < 1 || ap > 8 {
			t.Errorf("avg_parents %v out of plausible range", ap)
		}
	}
}

func TestFig06Shapes(t *testing.T) {
	tab := Fig06(Small)[0]
	// Group rows by variant; compare final avg_parents: DFD > ERP and
	// DFD-5 ≤ DFD.
	last := map[string]float64{}
	for _, r := range tab.Rows {
		ap, _ := strconv.ParseFloat(r[4], 64)
		last[r[0]] = ap
	}
	if last["DFD"] <= last["ERP"] {
		t.Errorf("DFD avg_parents %v not above ERP %v", last["DFD"], last["ERP"])
	}
	if last["DFD-5"] > last["DFD"]+1e-9 {
		t.Errorf("DFD-5 avg_parents %v above uncapped DFD %v", last["DFD-5"], last["DFD"])
	}
	if last["DFD-5"] > 5 {
		t.Errorf("DFD-5 avg_parents %v exceeds the cap", last["DFD-5"])
	}
}

func TestFig07Shapes(t *testing.T) {
	tab := Fig07(Small)[0]
	for _, r := range tab.Rows {
		ratio, _ := strconv.ParseFloat(r[8], 64)
		if ratio > 2 {
			t.Errorf("rn/ct ratio %v above the paper's ~2x bound for TRAJ: %v", ratio, r)
		}
	}
}

func TestFig09Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("query-performance figure is seconds-scale")
	}
	tab := Fig09(Small)[0]
	// RN-5 within a few points of RN everywhere; RN ≤ CT at the smallest
	// radius (the paper's headline).
	for _, r := range tab.Rows {
		rn := parsePct(t, r[2])
		rn5 := parsePct(t, r[3])
		if diff := rn5 - rn; diff > 5 || -diff > 5 {
			t.Errorf("RN-5 (%v%%) deviates from RN (%v%%) at eps=%s", rn5, rn, r[0])
		}
	}
	first := tab.Rows[0]
	if rn, ct := parsePct(t, first[2]), parsePct(t, first[4]); rn > ct+0.5 {
		t.Errorf("RN (%v%%) above CT (%v%%) at the smallest radius", rn, ct)
	}
}

func TestFig12Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("matcher figure is seconds-scale")
	}
	tab := Fig12(Small)[0]
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	prevUnique := -1.0
	for _, r := range tab.Rows {
		unique := parsePct(t, r[1])
		consec := parsePct(t, r[2])
		if consec > unique+1e-9 {
			t.Errorf("consecutive%% %v above unique%% %v", consec, unique)
		}
		if unique < prevUnique {
			t.Errorf("unique%% not monotone in eps")
		}
		prevUnique = unique
	}
	lastRow := tab.Rows[len(tab.Rows)-1]
	if unique := parsePct(t, lastRow[1]); unique < 99.9 {
		t.Errorf("unique%% at eps=dmax is %v, want ~100", unique)
	}
}
