// Package experiments regenerates every figure of the paper's evaluation
// (Section 8, Figures 4–12) on the synthetic datasets of internal/data.
// Each runner returns printable tables with the same series the paper
// plots; cmd/experiments prints them and EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/dist"
	"repro/internal/metric"
	"repro/internal/seq"
	"repro/internal/stats"
)

// Size scales experiment workloads.
type Size int

const (
	// Small runs in seconds per figure: used by tests and benchmarks.
	Small Size = iota
	// Paper approximates the paper's dataset sizes (e.g. 100K windows);
	// minutes per figure.
	Paper
)

// ParseSize parses "small" or "paper".
func ParseSize(s string) (Size, error) {
	switch strings.ToLower(s) {
	case "small":
		return Small, nil
	case "paper":
		return Paper, nil
	}
	return 0, fmt.Errorf("experiments: unknown size %q (want small or paper)", s)
}

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len([]rune(c))
			}
			parts[i] = c + strings.Repeat(" ", pad)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values (no quoting; cells are
// numeric or simple identifiers).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Runner produces the tables for one figure.
type Runner func(size Size) []Table

// Registry maps figure IDs to runners.
var Registry = map[string]Runner{
	"fig04": Fig04,
	"fig05": Fig05,
	"fig06": Fig06,
	"fig07": Fig07,
	"fig08": Fig08,
	"fig09": Fig09,
	"fig10": Fig10,
	"fig11": Fig11,
	"fig12": Fig12,
}

// IDs returns the registered figure IDs in order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// windowCounter wraps a sequence distance as a counted window distance.
func windowCounter[E any](fn dist.Func[E]) *metric.Counter[seq.Window[E]] {
	return metric.NewCounter(func(a, b seq.Window[E]) float64 { return fn(a.Data, b.Data) })
}

// windowBytes estimates a window's payload size for space accounting.
func windowBytes[E any](perElem int) func(seq.Window[E]) int {
	return func(w seq.Window[E]) int { return len(w.Data)*perElem + 24 }
}

// probe wraps query element data as a window probe for the index.
func probe[E any](data []E) seq.Window[E] {
	return seq.Window[E]{SeqID: -1, Data: data}
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a percentage.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// sampleSummaryRow renders dataset/distance summary cells for Fig 4.
func sampleSummaryRow(name, distName string, sample []float64, h *stats.Histogram) []string {
	s := stats.Summarize(sample)
	return []string{
		name, distName, fmt.Sprintf("%d", s.N),
		f(s.Mean), f(s.Std), f(s.Min), f(s.Median), f(s.Max),
		h.Sparkline(),
	}
}
