package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
)

// Fig12 reproduces Figure 12: for PROTEINS queries at growing radii, the
// percentage of unique database windows that match at least one query
// segment, and the (much smaller) percentage of windows that participate
// in runs of at least two consecutive matching windows. The paper uses
// the consecutive-window count to argue that Type II/III verification
// starts from few candidates.
//
// Expected shape: unique-match % follows the distance distribution and
// reaches 100 % at ε = dmax = 20; consecutive % stays well below it until
// saturation.
func Fig12(size Size) []Table {
	numWindows, numQueries, qLen := 2000, 5, 60
	if size == Paper {
		numWindows, numQueries, qLen = 10000, 10, 60
	}
	const wl = 20
	ds := data.Proteins(numWindows, wl, 1)

	params := core.Params{Lambda: 2 * wl, Lambda0: 1}
	mt, err := core.NewMatcher(dist.LevenshteinFastMeasure(), core.Config{Params: params}, ds.Sequences)
	if err != nil {
		panic(err) // static experiment configuration
	}
	numIndexed := mt.NumWindows()

	queries := make([][]byte, numQueries)
	for i := range queries {
		queries[i] = data.RandomQuery(ds, qLen, 0.2, data.MutateAA, 5000+uint64(i))
	}

	t := Table{
		ID:    "fig12",
		Title: "Matching windows, PROTEINS (unique vs consecutive)",
		Columns: []string{"eps", "unique_windows%", "consecutive_windows%",
			"hits_per_query"},
		Notes: []string{
			fmt.Sprintf("windows=%d queries=%d query_len=%d lambda=%d lambda0=%d",
				numIndexed, numQueries, qLen, params.Lambda, params.Lambda0),
			"expect: unique% tracks the distance CDF, 100% at eps=20; consecutive% much lower until saturation",
		},
	}

	for _, eps := range []float64{2, 5, 8, 11, 14, 17, 20} {
		var uniqueSum, consecSum, hitCount float64
		for _, q := range queries {
			hits := mt.FilterHits(q, eps)
			hitCount += float64(len(hits))
			matched := map[[2]int]bool{}
			for _, h := range hits {
				matched[[2]int{h.Window.SeqID, h.Window.Ord}] = true
			}
			uniqueSum += float64(len(matched)) / float64(numIndexed)
			consec := map[[2]int]bool{}
			for k := range matched {
				next := [2]int{k[0], k[1] + 1}
				if matched[next] {
					consec[k] = true
					consec[next] = true
				}
			}
			consecSum += float64(len(consec)) / float64(numIndexed)
		}
		n := float64(len(queries))
		t.Rows = append(t.Rows, []string{
			f(eps), pct(uniqueSum / n), pct(consecSum / n),
			fmt.Sprintf("%.0f", hitCount/n),
		})
	}
	return []Table{t}
}
