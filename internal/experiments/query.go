package experiments

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/covertree"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/metric"
	"repro/internal/refindex"
	"repro/internal/refnet"
	"repro/internal/seq"
)

// ranger is the query interface shared by all index variants.
type ranger[E any] interface {
	Range(q seq.Window[E], eps float64) []seq.Window[E]
}

// perfVariant is one index configuration measured in Figures 8–11.
type perfVariant[E any] struct {
	name  string
	build func(wins []seq.Window[E], d metric.DistFunc[seq.Window[E]]) ranger[E]
}

func rnVariant[E any](name string, numMax int) perfVariant[E] {
	return perfVariant[E]{name: name, build: func(wins []seq.Window[E], d metric.DistFunc[seq.Window[E]]) ranger[E] {
		n := refnet.New(d, refnet.WithMaxParents(numMax))
		for _, w := range wins {
			n.Insert(w)
		}
		return n
	}}
}

func ctVariant[E any]() perfVariant[E] {
	return perfVariant[E]{name: "CT", build: func(wins []seq.Window[E], d metric.DistFunc[seq.Window[E]]) ranger[E] {
		t := covertree.New(d, 1)
		for _, w := range wins {
			t.Insert(w)
		}
		return t
	}}
}

func mvVariant[E any](k int) perfVariant[E] {
	return perfVariant[E]{name: fmt.Sprintf("MV-%d", k), build: func(wins []seq.Window[E], d metric.DistFunc[seq.Window[E]]) ranger[E] {
		idx, err := refindex.Build(wins, k, d, refindex.Options{Seed: 99})
		if err != nil {
			panic(err) // experiment configuration error, not a data condition
		}
		return idx
	}}
}

// queryPerf measures, for each index variant and radius, the percentage of
// distance computations relative to the naive linear scan — the metric of
// Figures 8–11. It also reports the selectivity (average fraction of
// windows returned), which the paper overlays in Figure 10: index cost
// tracks the distance distribution.
func queryPerf[E any](id, title string, fn dist.Func[E], wins []seq.Window[E],
	queries [][]E, epsList []float64, variants []perfVariant[E], notes ...string) Table {
	t := Table{
		ID:      id,
		Title:   title,
		Columns: []string{"eps", "selectivity"},
		Notes:   notes,
	}
	for _, v := range variants {
		t.Columns = append(t.Columns, v.name+"_dist%")
	}

	naive := int64(len(queries) * len(wins))
	type built struct {
		idx     ranger[E]
		counter *metric.Counter[seq.Window[E]]
	}
	builds := make([]built, len(variants))
	for i, v := range variants {
		counter := windowCounter(fn)
		builds[i] = built{v.build(wins, counter.Distance), counter}
	}

	for _, eps := range epsList {
		row := []string{f(eps)}
		var selectivity float64
		for i := range variants {
			b := builds[i]
			b.counter.Reset()
			var returned int64
			for _, q := range queries {
				returned += int64(len(b.idx.Range(probe(q), eps)))
			}
			if i == 0 {
				selectivity = float64(returned) / float64(naive)
				row = append(row, pct(selectivity))
			}
			row = append(row, pct(float64(b.counter.Calls())/float64(naive)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// windowQueries samples query segments: window-length subsequences of the
// dataset's sequences with light mutation, mirroring the paper's query
// workloads.
func windowQueries[E any](ds data.Dataset[E], n int,
	mutate func(rng *rand.Rand, e E) E, seed uint64) [][]E {
	out := make([][]E, n)
	for i := range out {
		out[i] = data.RandomQuery(ds, ds.WindowLen, 0.15, mutate, seed+uint64(i))
	}
	return out
}

// quantiles returns the q-quantile values of a sample for each q.
func quantiles(sample []float64, qs []float64) []float64 {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = s[int(q*float64(len(s)-1))]
	}
	return out
}

// Fig08 reproduces Figure 8: query performance on PROTEINS under
// Levenshtein for RN, CT, MV-5 and MV-50 across range sizes 1..20 (5–100 %
// of the maximum distance). Expected shape: all curves grow with ε along
// the distance CDF; RN below CT everywhere; MV-5 (equal space) far worse;
// MV-50 (10× space) competitive only at very small ε.
func Fig08(size Size) []Table {
	numWindows, numQueries := 4000, 15
	if size == Paper {
		numWindows, numQueries = 100000, 50
	}
	const wl = 20
	ds := data.Proteins(numWindows, wl, 1)
	queries := windowQueries(ds, numQueries, data.MutateAA, 1000)
	eps := []float64{1, 2, 4, 6, 8, 10, 12, 14, 16, 20}
	t := queryPerf("fig08", "Query performance, PROTEINS / Levenshtein (% distance computations vs naive)",
		dist.LevenshteinFast, ds.Windows, queries, eps,
		[]perfVariant[byte]{rnVariant[byte]("RN", 0), ctVariant[byte](), mvVariant[byte](5), mvVariant[byte](50)},
		"expect: RN ≤ CT; MV-5 worst; MV-50 good only at small eps; all → 100% as eps → dmax=20")
	return []Table{t}
}

// Fig09 reproduces Figure 9: query performance on SONGS under DFD for RN,
// RN-5 (nummax=5), CT and MV-5. Expected shape: RN-5 ≈ RN, both below CT
// and MV-5.
func Fig09(size Size) []Table {
	numWindows, numQueries := 2000, 15
	if size == Paper {
		numWindows, numQueries = 20000, 50
	}
	const wl = 20
	ds := data.Songs(numWindows, wl, 2)
	queries := windowQueries(ds, numQueries, data.MutatePitch, 2000)
	eps := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	t := queryPerf("fig09", "Query performance, SONGS / DFD (% distance computations vs naive)",
		dist.DiscreteFrechet(dist.AbsDiff), ds.Windows, queries, eps,
		[]perfVariant[float64]{rnVariant[float64]("RN", 0), rnVariant[float64]("RN-5", 5), ctVariant[float64](), mvVariant[float64](5)},
		"expect: RN-5 ≈ RN; both below CT and MV-5")
	return []Table{t}
}

// trajFig builds Figures 10 and 11 (TRAJ under ERP / DFD): RN, CT and
// MV-20, with radii at fixed quantiles of the pairwise distance
// distribution so the selectivity column doubles as the distribution
// overlay of Figure 10.
func trajFig(id, title string, fn dist.Func[seq.Point2], size Size, seed uint64) []Table {
	numWindows, numQueries := 3000, 10
	if size == Paper {
		numWindows, numQueries = 100000, 30
	}
	const wl = 20
	ds := data.Trajectories(numWindows, wl, 3)
	queries := windowQueries(ds, numQueries, data.MutatePoint, seed)

	// Radii at distribution quantiles.
	counterless := func(a, b seq.Window[seq.Point2]) float64 { return fn(a.Data, b.Data) }
	sample := make([]float64, 0, 4000)
	rng := rand.New(rand.NewPCG(seed, 17))
	for len(sample) < 4000 {
		i, j := rng.IntN(len(ds.Windows)), rng.IntN(len(ds.Windows))
		if i == j {
			continue
		}
		sample = append(sample, counterless(ds.Windows[i], ds.Windows[j]))
	}
	eps := quantiles(sample, []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75})

	t := queryPerf(id, title, fn, ds.Windows, queries, eps,
		[]perfVariant[seq.Point2]{rnVariant[seq.Point2]("RN", 0), ctVariant[seq.Point2](), mvVariant[seq.Point2](20)},
		"radii are the {0.1,0.5,1,5,10,25,50,75}-percentiles of the pairwise distance distribution",
		"expect: RN ≈ CT, both well below MV-20 despite its 10x space; curves track the distance CDF")
	return []Table{t}
}

// Fig10 reproduces Figure 10: TRAJ under ERP.
func Fig10(size Size) []Table {
	return trajFig("fig10", "Query performance, TRAJ / ERP (% distance computations vs naive)",
		dist.ERP(dist.Point2Dist, seq.Point2{}), size, 3000)
}

// Fig11 reproduces Figure 11: TRAJ under DFD.
func Fig11(size Size) []Table {
	return trajFig("fig11", "Query performance, TRAJ / DFD (% distance computations vs naive)",
		dist.DiscreteFrechet(dist.Point2Dist), size, 4000)
}
