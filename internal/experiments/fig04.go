package experiments

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/seq"
	"repro/internal/stats"
)

// Fig04 reproduces Figure 4: the pairwise window distance distributions of
// every dataset/distance combination used in the evaluation. The paper's
// qualitative observations to verify:
//
//   - PROTEINS/Levenshtein: unimodal around 60–80 % of the window length,
//     with a low-distance tail from repeated motifs;
//   - SONGS/DFD: very skewed, confined to a narrow band of small values
//     (pitch classes bound the max coupling cost by 11);
//   - SONGS/ERP: spread out over a wide range;
//   - TRAJ/DFD and TRAJ/ERP: wide-variance distributions.
func Fig04(size Size) []Table {
	numWindows, samples := 2000, 20000
	if size == Paper {
		numWindows, samples = 10000, 100000
	}
	const wl = 20

	proteins := data.Proteins(numWindows, wl, 1)
	songs := data.Songs(numWindows, wl, 2)
	traj := data.Trajectories(numWindows, wl, 3)

	summary := Table{
		ID:    "fig04",
		Title: "Distance distributions (sampled pairwise window distances)",
		Columns: []string{"dataset", "distance", "pairs", "mean", "std",
			"min", "median", "max", "histogram"},
	}
	var detail []Table

	addCombo := func(name, dn string, sample []float64, hmin, hmax float64) {
		h := stats.NewHistogram(hmin, hmax, 20)
		for _, v := range sample {
			h.Add(v)
		}
		summary.Rows = append(summary.Rows, sampleSummaryRow(name, dn, sample, h))
		dt := Table{
			ID:      "fig04-" + name + "-" + dn,
			Title:   fmt.Sprintf("Distance distribution: %s / %s", name, dn),
			Columns: []string{"bin_center", "fraction", "cdf"},
		}
		for i := range h.Counts {
			dt.Rows = append(dt.Rows, []string{
				f(h.BinCenter(i)), fmt.Sprintf("%.4f", h.Fraction(i)), fmt.Sprintf("%.4f", h.CDF(i)),
			})
		}
		detail = append(detail, dt)
	}

	lev := dist.LevenshteinFast
	levSample := stats.SampleDistances(proteins.Windows,
		func(a, b seq.Window[byte]) float64 { return lev(a.Data, b.Data) }, samples, 10)
	addCombo("proteins", "levenshtein", levSample, 0, wl)

	dfdP := dist.DiscreteFrechet(dist.AbsDiff)
	dfdSample := stats.SampleDistances(songs.Windows,
		func(a, b seq.Window[float64]) float64 { return dfdP(a.Data, b.Data) }, samples, 11)
	addCombo("songs", "dfd", dfdSample, 0, 12)

	erpP := dist.ERP(dist.AbsDiff, 0)
	erpSample := stats.SampleDistances(songs.Windows,
		func(a, b seq.Window[float64]) float64 { return erpP(a.Data, b.Data) }, samples, 12)
	addCombo("songs", "erp", erpSample, 0, stats.Summarize(erpSample).Max)

	dfdT := dist.DiscreteFrechet(dist.Point2Dist)
	dfdTSample := stats.SampleDistances(traj.Windows,
		func(a, b seq.Window[seq.Point2]) float64 { return dfdT(a.Data, b.Data) }, samples, 13)
	addCombo("traj", "dfd", dfdTSample, 0, stats.Summarize(dfdTSample).Max)

	erpT := dist.ERP(dist.Point2Dist, seq.Point2{})
	erpTSample := stats.SampleDistances(traj.Windows,
		func(a, b seq.Window[seq.Point2]) float64 { return erpT(a.Data, b.Data) }, samples, 14)
	addCombo("traj", "erp", erpTSample, 0, stats.Summarize(erpTSample).Max)

	summary.Notes = append(summary.Notes,
		"expect: songs/dfd narrow and skewed; songs/erp spread; traj wide for both; proteins unimodal with low tail")
	return append([]Table{summary}, detail...)
}
