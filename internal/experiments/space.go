package experiments

import (
	"fmt"

	"repro/internal/covertree"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/refnet"
	"repro/internal/seq"
)

// spaceVariant is one index configuration measured in the space figures.
type spaceVariant[E any] struct {
	name string
	fn   dist.Func[E]
	// numMax caps parents (0 = unlimited), mirroring DFD-5 / RN-5.
	numMax int
}

// spaceRows builds a reference net per variant and per window-count step
// and reports the quantities of Figures 5–7: node counts, list counts,
// average list size / parents-per-window, and index megabytes. A cover
// tree is built alongside the first variant as the size baseline the paper
// compares against.
func spaceRows[E any](t *Table, wins []seq.Window[E], steps []int,
	variants []spaceVariant[E], elemBytes int) {
	for _, v := range variants {
		counter := windowCounter(v.fn)
		net := refnet.New(counter.Distance, refnet.WithMaxParents(v.numMax))
		ct := covertree.New(counter.Distance, 1)
		next := 0
		for _, n := range steps {
			for ; next < n && next < len(wins); next++ {
				net.Insert(wins[next])
				ct.Insert(wins[next])
			}
			st := net.StatsWithPayload(windowBytes[E](elemBytes))
			cts := ct.Stats()
			ctBytes := cts.StructBytes + int64(st.PayloadBytes)
			t.Rows = append(t.Rows, []string{
				v.name,
				fmt.Sprintf("%d", st.Nodes),
				fmt.Sprintf("%d", st.Lists),
				fmt.Sprintf("%d", st.ParentLinks),
				f(st.AvgParents),
				f(st.AvgListSize),
				fmt.Sprintf("%.3f", float64(st.TotalBytes())/(1<<20)),
				fmt.Sprintf("%.3f", float64(ctBytes)/(1<<20)),
				f(float64(st.TotalBytes()) / float64(ctBytes)),
			})
		}
	}
}

var spaceColumns = []string{"variant", "windows", "lists", "links",
	"avg_parents", "avg_list", "rn_MB", "ct_MB", "rn/ct"}

// Fig05 reproduces Figure 5: reference-net space overhead on PROTEINS
// under the Levenshtein distance, for growing window counts. Expected
// shape: node count linear in windows, average parents below ~4, total
// size a few MB at the top step (the paper reports 2.9 MB at 100K).
func Fig05(size Size) []Table {
	var steps []int
	if size == Paper {
		for n := 10000; n <= 100000; n += 10000 {
			steps = append(steps, n)
		}
	} else {
		for n := 1000; n <= 5000; n += 1000 {
			steps = append(steps, n)
		}
	}
	const wl = 20
	ds := data.Proteins(steps[len(steps)-1], wl, 1)
	t := Table{
		ID:      "fig05",
		Title:   "Space overhead, PROTEINS / Levenshtein",
		Columns: spaceColumns,
		Notes: []string{
			"expect: links linear in windows; avg_parents < ~4; rn/ct ratio roughly the avg parent count",
		},
	}
	spaceRows(&t, ds.Windows, steps, []spaceVariant[byte]{
		{name: "RN", fn: dist.LevenshteinFast},
	}, 1)
	return []Table{t}
}

// Fig06 reproduces Figure 6: reference-net space on SONGS for DFD, ERP and
// DFD with nummax=5 (DFD-5). Expected shape: DFD's skewed distances make
// the average parent count grow with n and the index large; ERP stays
// small and flat; DFD-5 pulls DFD's size back near ERP's.
func Fig06(size Size) []Table {
	var steps []int
	if size == Paper {
		steps = []int{1000, 2000, 5000, 10000, 20000}
	} else {
		steps = []int{500, 1000, 2000}
	}
	const wl = 20
	ds := data.Songs(steps[len(steps)-1], wl, 2)
	t := Table{
		ID:      "fig06",
		Title:   "Space overhead, SONGS (DFD vs ERP vs DFD-5)",
		Columns: spaceColumns,
		Notes: []string{
			"expect: DFD avg_parents grows with windows; ERP flat and small; DFD-5 capped near 5 and size near ERP",
		},
	}
	spaceRows(&t, ds.Windows, steps, []spaceVariant[float64]{
		{name: "DFD", fn: dist.DiscreteFrechet(dist.AbsDiff)},
		{name: "ERP", fn: dist.ERP(dist.AbsDiff, 0)},
		{name: "DFD-5", fn: dist.DiscreteFrechet(dist.AbsDiff), numMax: 5},
	}, 8)
	return []Table{t}
}

// Fig07 reproduces Figure 7: reference-net space on TRAJ for DFD and ERP.
// Expected shape: wide-variance distances give small parent counts for
// both, and the net stays below ~2× the cover tree.
func Fig07(size Size) []Table {
	var steps []int
	if size == Paper {
		steps = []int{10000, 20000, 50000, 100000}
	} else {
		steps = []int{1000, 2000, 4000}
	}
	const wl = 20
	ds := data.Trajectories(steps[len(steps)-1], wl, 3)
	t := Table{
		ID:      "fig07",
		Title:   "Space overhead, TRAJ (DFD vs ERP)",
		Columns: spaceColumns,
		Notes: []string{
			"expect: small avg_parents for both distances; rn/ct below ~2",
		},
	}
	spaceRows(&t, ds.Windows, steps, []spaceVariant[seq.Point2]{
		{name: "DFD", fn: dist.DiscreteFrechet(dist.Point2Dist)},
		{name: "ERP", fn: dist.ERP(dist.Point2Dist, seq.Point2{})},
	}, 16)
	return []Table{t}
}
