package covertree

import (
	"container/heap"
	"math"
)

// Neighbor is one k-NN result.
type Neighbor[T any] struct {
	Item T
	Dist float64
}

// KNN returns the k items nearest to q, sorted by ascending distance,
// using the same best-first branch-and-bound as the reference net's KNN
// so the two structures can be compared beyond range queries.
func (t *Tree[T]) KNN(q T, k int) []Neighbor[T] {
	if t.root == nil || k <= 0 {
		return nil
	}
	if k > t.size {
		k = t.size
	}
	best := &knnMax[T]{}
	offer := func(item T, d float64) {
		if best.Len() < k {
			heap.Push(best, Neighbor[T]{item, d})
		} else if d < (*best)[0].Dist {
			(*best)[0] = Neighbor[T]{item, d}
			heap.Fix(best, 0)
		}
	}
	kth := func() float64 {
		if best.Len() < k {
			return math.Inf(1)
		}
		return (*best)[0].Dist
	}

	d := t.dist(q, t.root.item)
	offer(t.root.item, d)
	frontier := &knnMin[T]{}
	if len(t.root.children) > 0 {
		heap.Push(frontier, knnEntry[T]{t.root, d, d - t.CoverRadius(t.root.level)})
	}
	for frontier.Len() > 0 {
		e := heap.Pop(frontier).(knnEntry[T])
		if e.bound >= kth() {
			break
		}
		for _, ce := range e.n.children {
			c := ce.n
			rho := t.CoverRadius(c.level)
			lo := e.d - ce.d
			if lo < 0 {
				lo = -lo
			}
			if lo-rho >= kth() {
				continue
			}
			dc := t.dist(q, c.item)
			offer(c.item, dc)
			if len(c.children) > 0 && dc-rho < kth() {
				heap.Push(frontier, knnEntry[T]{c, dc, dc - rho})
			}
		}
	}
	out := make([]Neighbor[T], best.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(best).(Neighbor[T])
	}
	return out
}

type knnEntry[T any] struct {
	n     *node[T]
	d     float64
	bound float64
}

type knnMin[T any] []knnEntry[T]

func (h knnMin[T]) Len() int           { return len(h) }
func (h knnMin[T]) Less(i, j int) bool { return h[i].bound < h[j].bound }
func (h knnMin[T]) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *knnMin[T]) Push(x any)        { *h = append(*h, x.(knnEntry[T])) }
func (h *knnMin[T]) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type knnMax[T any] []Neighbor[T]

func (h knnMax[T]) Len() int           { return len(h) }
func (h knnMax[T]) Less(i, j int) bool { return h[i].Dist > h[j].Dist }
func (h knnMax[T]) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *knnMax[T]) Push(x any)        { *h = append(*h, x.(Neighbor[T])) }
func (h *knnMax[T]) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
