// Package covertree implements a cover tree (Beygelzimer, Kakade &
// Langford, ICML 2006) in its practical "condensed" form: each item is
// stored in a single node at the highest level where it acts as a
// reference, and every node has exactly one parent. The tree is the paper's
// main indexing baseline (Section 6, Figures 8–11).
//
// The implementation deliberately shares its geometry with the reference
// net — level radii ǫᵢ = ǫ′·2ⁱ and subtree cover radius ǫ′·(2^{l+1}−2) — so
// that space and pruning comparisons between the two structures isolate the
// single structural difference the paper highlights: multi-parent
// membership.
package covertree

import (
	"fmt"
	"math"

	"repro/internal/metric"
)

// Tree is a cover tree over items of type T. Create with New; the zero
// value is not usable. Not safe for concurrent mutation.
type Tree[T any] struct {
	dist metric.DistFunc[T]
	base float64
	root *node[T]
	size int
}

type node[T any] struct {
	item     T
	level    int
	children []edge[T]
}

type edge[T any] struct {
	n *node[T]
	d float64 // parent-child distance, precomputed at insert time
}

// New returns an empty cover tree using the given metric distance and base
// radius ǫ′ (level i covers radius ǫ′·2ⁱ). The distance must be a metric.
func New[T any](dist metric.DistFunc[T], base float64) *Tree[T] {
	if base <= 0 {
		panic(fmt.Sprintf("covertree: base radius must be positive, got %v", base))
	}
	return &Tree[T]{dist: dist, base: base}
}

// Compile-time check: Tree satisfies the shared index interface.
var _ metric.Index[int] = (*Tree[int])(nil)

// Eps returns the radius ǫ′·2ⁱ of level i.
func (t *Tree[T]) Eps(i int) float64 { return math.Ldexp(t.base, i) }

// CoverRadius bounds the distance from a level-l node to any descendant.
func (t *Tree[T]) CoverRadius(level int) float64 {
	if level <= 0 {
		return 0
	}
	return math.Ldexp(t.base, level+1) - 2*t.base
}

// Len reports the number of items in the tree.
func (t *Tree[T]) Len() int { return t.size }

// Insert adds an item to the tree.
func (t *Tree[T]) Insert(item T) {
	t.size++
	if t.root == nil {
		t.root = &node[T]{item: item, level: 1}
		return
	}
	d := t.dist(item, t.root.item)
	if math.IsInf(d, 1) || math.IsNaN(d) {
		panic("covertree: non-finite distance to root; the item cannot be indexed")
	}
	for d > t.Eps(t.root.level) {
		t.root.level++
	}
	// Descend a candidate frontier exactly as in the reference net (the
	// 2ǫᵢ bound keeps the frontier complete), but attach to the single
	// nearest qualifying parent.
	type cand struct {
		n *node[T]
		d float64
	}
	cur := []cand{{t.root, d}}
	bestLevel := -1
	var bestParent *node[T]
	var bestD float64
	for i := t.root.level; i >= 1; i-- {
		epsI := t.Eps(i)
		for _, c := range cur {
			if c.d <= epsI && (bestLevel != i || c.d < bestD) {
				if bestLevel != i {
					bestLevel, bestParent, bestD = i, c.n, c.d
				} else {
					bestParent, bestD = c.n, c.d
				}
			}
		}
		if i == 1 {
			break
		}
		bound := epsI // 2ǫ_{i−1}
		next := cur[:0:0]
		for _, c := range cur {
			if c.d <= bound {
				next = append(next, c)
			}
			for _, e := range c.n.children {
				if e.n.level != i-1 {
					continue
				}
				// Triangle lower bound from the stored parent-child
				// distance: skip children provably outside the frontier.
				if lb := c.d - e.d; lb > bound || -lb > bound {
					continue
				}
				dd := t.dist(item, e.n.item)
				if dd <= bound {
					next = append(next, cand{e.n, dd})
				}
			}
		}
		if len(next) == 0 {
			break
		}
		cur = next
	}
	n := &node[T]{item: item, level: bestLevel - 1}
	bestParent.children = append(bestParent.children, edge[T]{n: n, d: bestD})
}

// Range returns every item within eps of q (inclusive).
func (t *Tree[T]) Range(q T, eps float64) []T {
	var out []T
	t.RangeFunc(q, eps, func(item T) { out = append(out, item) })
	return out
}

// RangeFunc streams every item within eps of q to yield. The traversal uses
// the same four pruning rules as the reference net: stored parent-child
// distances give zero-computation subtree inclusion/exclusion bounds, and
// computed node distances give the exact subtree rules.
func (t *Tree[T]) RangeFunc(q T, eps float64, yield func(T)) {
	if t.root == nil {
		return
	}
	d := t.dist(q, t.root.item)
	if d <= eps {
		yield(t.root.item)
	}
	type entry struct {
		n *node[T]
		d float64
	}
	stack := []entry{{t.root, d}}
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ce := range e.n.children {
			c := ce.n
			rho := t.CoverRadius(c.level)
			lo := e.d - ce.d
			if lo < 0 {
				lo = -lo
			}
			if lo-rho > eps {
				continue // whole subtree provably outside
			}
			if e.d+ce.d+rho <= eps {
				collect(c, yield) // whole subtree provably inside
				continue
			}
			dc := t.dist(q, c.item)
			if dc-rho > eps {
				continue
			}
			if dc+rho <= eps {
				collect(c, yield)
				continue
			}
			if dc <= eps {
				yield(c.item)
			}
			if len(c.children) > 0 {
				stack = append(stack, entry{c, dc})
			}
		}
	}
}

func collect[T any](n *node[T], yield func(T)) {
	yield(n.item)
	for _, e := range n.children {
		collect(e.n, yield)
	}
}

// Stats summarises the tree's structure for space comparisons.
type Stats struct {
	Nodes       int
	MaxLevel    int
	Edges       int
	StructBytes int64
}

// Stats walks the tree and reports structural statistics. Each node costs
// one node struct plus one edge entry in its parent.
func (t *Tree[T]) Stats() Stats {
	var s Stats
	if t.root == nil {
		return s
	}
	s.MaxLevel = t.root.level
	var walk func(n *node[T])
	walk = func(n *node[T]) {
		s.Nodes++
		s.Edges += len(n.children)
		for _, e := range n.children {
			walk(e.n)
		}
	}
	walk(t.root)
	// 48 bytes per node (item header, level, slice header) plus 16 per
	// edge: an estimate consistent with the reference net's accounting.
	s.StructBytes = int64(s.Nodes)*48 + int64(s.Edges)*16
	return s
}

// Items returns all stored items in unspecified order.
func (t *Tree[T]) Items() []T {
	out := make([]T, 0, t.size)
	if t.root == nil {
		return out
	}
	var walk func(n *node[T])
	walk = func(n *node[T]) {
		out = append(out, n.item)
		for _, e := range n.children {
			walk(e.n)
		}
	}
	walk(t.root)
	return out
}

// Validate checks the covering invariant (every parent-child link within
// the child level's parent radius) and reachability of all Len() items.
func (t *Tree[T]) Validate() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("covertree: nil root but size %d", t.size)
		}
		return nil
	}
	count := 0
	var verr error
	var walk func(n *node[T])
	walk = func(n *node[T]) {
		count++
		for _, e := range n.children {
			if verr != nil {
				return
			}
			if e.n.level >= n.level {
				verr = fmt.Errorf("covertree: child level %d not below parent level %d", e.n.level, n.level)
				return
			}
			d := t.dist(n.item, e.n.item)
			if limit := t.Eps(e.n.level + 1); d > limit+1e-9 {
				verr = fmt.Errorf("covertree: edge distance %g exceeds parent radius %g for child level %d",
					d, limit, e.n.level)
				return
			}
			walk(e.n)
		}
	}
	walk(t.root)
	if verr != nil {
		return verr
	}
	if count != t.size {
		return fmt.Errorf("covertree: %d reachable nodes but size %d", count, t.size)
	}
	return nil
}
