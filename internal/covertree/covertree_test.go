package covertree

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/metric"
)

func absDist(a, b float64) float64 { return math.Abs(a - b) }

func sortedRange(t *Tree[float64], q, eps float64) []float64 {
	out := t.Range(q, eps)
	sort.Float64s(out)
	return out
}

func sortedScan(items []float64, q, eps float64) []float64 {
	var out []float64
	for _, v := range items {
		if absDist(q, v) <= eps {
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New(absDist, 1)
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.Range(0, 10); got != nil {
		t.Errorf("Range on empty tree = %v", got)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRangeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	tr := New(absDist, 1)
	var items []float64
	for i := 0; i < 600; i++ {
		v := rng.Float64() * 500
		items = append(items, v)
		tr.Insert(v)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	for _, eps := range []float64{0, 0.5, 2, 10, 100, 1000} {
		for trial := 0; trial < 20; trial++ {
			q := rng.Float64()*600 - 50
			if !equalFloats(sortedRange(tr, q, eps), sortedScan(items, q, eps)) {
				t.Fatalf("mismatch at q=%v eps=%v", q, eps)
			}
		}
	}
}

func TestRangeMatchesLinearScanClustered(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	tr := New(absDist, 1)
	var items []float64
	for c := 0; c < 8; c++ {
		center := float64(c * 53)
		for i := 0; i < 50; i++ {
			v := center + rng.NormFloat64()*0.5
			items = append(items, v)
			tr.Insert(v)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	for trial := 0; trial < 40; trial++ {
		q := rng.Float64() * 420
		eps := rng.Float64() * 30
		if !equalFloats(sortedRange(tr, q, eps), sortedScan(items, q, eps)) {
			t.Fatalf("mismatch at q=%v eps=%v", q, eps)
		}
	}
}

func TestSingleParentInvariant(t *testing.T) {
	// Every item except the root contributes exactly one edge.
	rng := rand.New(rand.NewPCG(35, 36))
	tr := New(absDist, 1)
	for i := 0; i < 300; i++ {
		tr.Insert(rng.NormFloat64() * 20)
	}
	st := tr.Stats()
	if st.Edges != st.Nodes-1 {
		t.Errorf("Edges = %d, want Nodes-1 = %d (single-parent tree)", st.Edges, st.Nodes-1)
	}
	if len(tr.Items()) != 300 {
		t.Errorf("Items() = %d", len(tr.Items()))
	}
}

func TestDuplicates(t *testing.T) {
	tr := New(absDist, 1)
	for i := 0; i < 7; i++ {
		tr.Insert(1.5)
	}
	if got := tr.Range(1.5, 0); len(got) != 7 {
		t.Errorf("Range found %d duplicates, want 7", len(got))
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBaseValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive base")
		}
	}()
	New(absDist, 0)
}

func TestPruningEffective(t *testing.T) {
	rng := rand.New(rand.NewPCG(37, 38))
	counter := metric.NewCounter(absDist)
	tr := New(counter.Distance, 1)
	const N = 2000
	for i := 0; i < N; i++ {
		cluster := float64(i%20) * 1000
		tr.Insert(cluster + rng.Float64())
	}
	counter.Reset()
	tr.Range(7000.5, 2)
	if calls := counter.Calls(); calls >= N/2 {
		t.Errorf("range query computed %d distances out of %d; pruning ineffective", calls, N)
	}
}

func TestInfiniteDistancePanics(t *testing.T) {
	d := func(a, b float64) float64 {
		if a != b {
			return math.Inf(1)
		}
		return 0
	}
	tr := New(d, 1)
	tr.Insert(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-finite distance")
		}
	}()
	tr.Insert(2)
}
