package covertree

import (
	"math/rand/v2"
	"sort"
	"testing"
)

func TestCoverTreeKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(81, 82))
	tr := New(absDist, 1)
	var items []float64
	for i := 0; i < 400; i++ {
		v := rng.Float64() * 300
		items = append(items, v)
		tr.Insert(v)
	}
	for _, k := range []int{1, 5, 25} {
		for trial := 0; trial < 10; trial++ {
			q := rng.Float64() * 300
			got := tr.KNN(q, k)
			if len(got) != k {
				t.Fatalf("k=%d: %d results", k, len(got))
			}
			ds := make([]float64, len(items))
			for i, v := range items {
				ds[i] = absDist(q, v)
			}
			sort.Float64s(ds)
			for i := range got {
				if got[i].Dist != ds[i] {
					t.Fatalf("k=%d rank %d: %v, want %v", k, i, got[i].Dist, ds[i])
				}
			}
		}
	}
}

func TestCoverTreeKNNEdgeCases(t *testing.T) {
	tr := New(absDist, 1)
	if got := tr.KNN(1, 5); got != nil {
		t.Errorf("empty tree: %v", got)
	}
	tr.Insert(2)
	got := tr.KNN(0, 99)
	if len(got) != 1 || got[0].Item != 2 {
		t.Errorf("k>n: %v", got)
	}
}
