package core

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/seq"
)

var allBackends = []IndexKind{IndexRefNet, IndexCoverTree, IndexMV, IndexLinearScan}

// sameHits requires bit-identical filter output: same pairs, same order.
func sameHits(t *testing.T, label string, got, want []Hit[byte]) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Window.String() != want[i].Window.String() ||
			got[i].Segment.String() != want[i].Segment.String() {
			t.Fatalf("%s hit %d: %v/%v, want %v/%v", label, i,
				got[i].Window, got[i].Segment, want[i].Window, want[i].Segment)
		}
	}
}

func sameMatches(t *testing.T, label string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s match %d: %v, want %v", label, i, got[i], want[i])
		}
	}
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.SeqID != b.SeqID {
			return a.SeqID < b.SeqID
		}
		if a.QStart != b.QStart {
			return a.QStart < b.QStart
		}
		if a.QEnd != b.QEnd {
			return a.QEnd < b.QEnd
		}
		if a.XStart != b.XStart {
			return a.XStart < b.XStart
		}
		return a.XEnd < b.XEnd
	})
}

// TestAppendEqualsRebuildAllBackends is the tentpole equivalence proof:
// on every backend, a matcher grown by AppendSequence answers queries
// bit-identically to one built from scratch over the extended database.
func TestAppendEqualsRebuildAllBackends(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(11, 1100))
	db, _ := randStrings(rng, 3, 48, 0, 0, false)
	extra, _ := randStrings(rng, 3, 40, 0, 0, false)
	extra = append(extra, seq.Sequence[byte]("AB")) // too short for a window
	queries := make([]seq.Sequence[byte], 6)
	for i := range queries {
		_, queries[i] = randStrings(rng, 1, 10, 14, 7, i%2 == 0)
	}
	const eps = 1.0
	for _, kind := range allBackends {
		cfg := Config{Params: p, Index: kind, MVRefs: 3}
		grown, err := NewMatcher(lev, cfg, append([]seq.Sequence[byte](nil), db...))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		full := append(append([]seq.Sequence[byte](nil), db...), extra...)
		for i, x := range extra {
			id, added, err := grown.AppendSequence(x)
			if err != nil {
				t.Fatalf("%v: append %d: %v", kind, i, err)
			}
			if id != len(db)+i {
				t.Fatalf("%v: append %d: seqID %d, want %d", kind, i, id, len(db)+i)
			}
			if wantWins := len(x) / p.WindowLen(); added != wantWins {
				t.Fatalf("%v: append %d: %d windows, want %d", kind, i, added, wantWins)
			}
		}
		rebuilt, err := NewMatcher(lev, cfg, full)
		if err != nil {
			t.Fatalf("%v rebuild: %v", kind, err)
		}
		if grown.NumWindows() != rebuilt.NumWindows() {
			t.Fatalf("%v: %d windows after append, rebuild has %d", kind, grown.NumWindows(), rebuilt.NumWindows())
		}
		for qi, q := range queries {
			sameHits(t, kind.String()+" filter", grown.FilterHits(q, eps), rebuilt.FilterHits(q, eps))
			sameMatches(t, kind.String()+" findall", grown.FindAll(q, eps), rebuilt.FindAll(q, eps))
			gm, gok := grown.Longest(q, eps)
			rm, rok := rebuilt.Longest(q, eps)
			if gok != rok || gm != rm {
				t.Fatalf("%v query %d: Longest %v/%v, want %v/%v", kind, qi, gm, gok, rm, rok)
			}
		}
	}
}

// TestRetireEqualsRebuild: after retiring a sequence, every backend that
// supports deletion answers with the same match set as a matcher built
// without that sequence. (The refnet's delete re-homes orphans, so its
// traversal order may differ from a fresh build — the comparison is
// order-insensitive, unlike the append test.)
func TestRetireEqualsRebuild(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(13, 1300))
	db, _ := randStrings(rng, 4, 48, 0, 0, false)
	queries := make([]seq.Sequence[byte], 5)
	for i := range queries {
		_, queries[i] = randStrings(rng, 1, 10, 14, 7, true)
	}
	const eps = 1.0
	const victim = 1
	for _, kind := range []IndexKind{IndexRefNet, IndexMV, IndexLinearScan} {
		cfg := Config{Params: p, Index: kind, MVRefs: 3}
		mt, err := NewMatcher(lev, cfg, append([]seq.Sequence[byte](nil), db...))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		removed, err := mt.RetireSequence(victim)
		if err != nil {
			t.Fatalf("%v: retire: %v", kind, err)
		}
		if want := len(db[victim]) / p.WindowLen(); removed != want {
			t.Fatalf("%v: retired %d windows, want %d", kind, removed, want)
		}
		reduced := append([]seq.Sequence[byte](nil), db...)
		reduced[victim] = nil
		rebuilt, err := NewMatcher(lev, cfg, reduced)
		if err != nil {
			t.Fatalf("%v rebuild: %v", kind, err)
		}
		if mt.NumWindows() != rebuilt.NumWindows() {
			t.Fatalf("%v: %d windows after retire, rebuild has %d", kind, mt.NumWindows(), rebuilt.NumWindows())
		}
		for qi, q := range queries {
			got, want := mt.FindAll(q, eps), rebuilt.FindAll(q, eps)
			sortMatches(got)
			sortMatches(want)
			sameMatches(t, kind.String()+" findall", got, want)
			if qi == 0 {
				for _, m := range got {
					if m.SeqID == victim {
						t.Fatalf("%v: match against retired sequence: %v", kind, m)
					}
				}
			}
		}
		// Double retire and bad IDs are errors.
		if _, err := mt.RetireSequence(victim); err == nil {
			t.Fatalf("%v: double retire accepted", kind)
		}
		if _, err := mt.RetireSequence(99); err == nil {
			t.Fatalf("%v: retire of unknown sequence accepted", kind)
		}
	}
}

func TestRetireUnsupportedOnCoverTree(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	rng := rand.New(rand.NewPCG(15, 1500))
	db, _ := randStrings(rng, 2, 24, 0, 0, false)
	mt, err := NewMatcher(dist.LevenshteinMeasure[byte](), Config{Params: p, Index: IndexCoverTree}, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mt.RetireSequence(0); !errors.Is(err, ErrRetireUnsupported) {
		t.Fatalf("cover tree retire: %v, want ErrRetireUnsupported", err)
	}
}

// TestAppendAfterKernelTablesBuilt mutates a matcher whose lazily-built
// prepared tables already exist (a query ran first), on both kernel-path
// backends: the grown/compacted slot arrays must stay positionally in
// lockstep with the window slice or kernels would price wrong windows.
func TestAppendAfterKernelTablesBuilt(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(17, 1700))
	db, _ := randStrings(rng, 3, 36, 0, 0, false)
	extra, _ := randStrings(rng, 2, 30, 0, 0, false)
	_, q := randStrings(rng, 1, 10, 14, 7, true)
	const eps = 1.0
	for _, kind := range []IndexKind{IndexRefNet, IndexLinearScan} {
		cfg := Config{Params: p, Index: kind}
		mt, err := NewMatcher(lev, cfg, append([]seq.Sequence[byte](nil), db...))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		mt.FilterHits(q, eps) // force prepared-table construction
		for _, x := range extra {
			if _, _, err := mt.AppendSequence(x); err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
		}
		if _, err := mt.RetireSequence(0); err != nil {
			t.Fatalf("%v: retire: %v", kind, err)
		}
		final := append(append([]seq.Sequence[byte](nil), db...), extra...)
		final[0] = nil
		rebuilt, err := NewMatcher(lev, cfg, final)
		if err != nil {
			t.Fatalf("%v rebuild: %v", kind, err)
		}
		got, want := mt.FindAll(q, eps), rebuilt.FindAll(q, eps)
		sortMatches(got)
		sortMatches(want)
		sameMatches(t, kind.String()+" post-mutation", got, want)
	}
}

// TestSaveRestoreMatcher: a refnet matcher restored from SaveIndex output
// answers bit-identically to the original — including after the original
// had been mutated — and stays live for further mutation.
func TestSaveRestoreMatcher(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(19, 1900))
	db, _ := randStrings(rng, 3, 48, 0, 0, false)
	extra, _ := randStrings(rng, 2, 40, 0, 0, false)
	queries := make([]seq.Sequence[byte], 5)
	for i := range queries {
		_, queries[i] = randStrings(rng, 1, 10, 14, 7, i%2 == 0)
	}
	const eps = 1.0
	cfg := Config{Params: p, Index: IndexRefNet}
	mt, err := NewMatcher(lev, cfg, append([]seq.Sequence[byte](nil), db...))
	if err != nil {
		t.Fatal(err)
	}
	// Mutate before saving so the snapshot covers a lived-in index.
	for _, x := range extra {
		if _, _, err := mt.AppendSequence(x); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mt.RetireSequence(1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mt.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := NewMatcherFromSavedIndex(lev, cfg, mt.DB(), &buf)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if restored.BuildDistanceCalls() != 0 {
		t.Errorf("restore computed %d distances; decoding should need none", restored.BuildDistanceCalls())
	}
	for qi, q := range queries {
		sameHits(t, "restored filter", restored.FilterHits(q, eps), mt.FilterHits(q, eps))
		sameMatches(t, "restored findall", restored.FindAll(q, eps), mt.FindAll(q, eps))
		gm, gok := restored.Longest(q, eps)
		wm, wok := mt.Longest(q, eps)
		if gok != wok || gm != wm {
			t.Fatalf("query %d: restored Longest %v/%v, want %v/%v", qi, gm, gok, wm, wok)
		}
	}
	// The restored matcher must accept further lifecycle operations.
	if _, _, err := restored.AppendSequence(extra[0]); err != nil {
		t.Fatalf("append after restore: %v", err)
	}
	if _, err := restored.RetireSequence(0); err != nil {
		t.Fatalf("retire after restore: %v", err)
	}
}

// TestSaveRestoreRejections: non-refnet backends refuse SaveIndex, and a
// restore against the wrong database is refused rather than silently
// serving inconsistent results.
func TestSaveRestoreRejections(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(21, 2100))
	db, _ := randStrings(rng, 2, 24, 0, 0, false)
	for _, kind := range []IndexKind{IndexCoverTree, IndexMV, IndexLinearScan} {
		mt, err := NewMatcher(lev, Config{Params: p, Index: kind, MVRefs: 3}, db)
		if err != nil {
			t.Fatal(err)
		}
		if err := mt.SaveIndex(&bytes.Buffer{}); !errors.Is(err, ErrSaveUnsupported) {
			t.Fatalf("%v SaveIndex: %v, want ErrSaveUnsupported", kind, err)
		}
	}
	cfg := Config{Params: p, Index: IndexRefNet}
	mt, err := NewMatcher(lev, cfg, db)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mt.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	wrongDB, _ := randStrings(rng, 3, 36, 0, 0, false)
	if _, err := NewMatcherFromSavedIndex(lev, cfg, wrongDB, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore against a different database accepted")
	}
	if _, err := NewMatcherFromSavedIndex(lev, Config{Params: p, Index: IndexCoverTree}, db, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore under a non-refnet backend accepted")
	}
}
