package core

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/dist"
	"repro/internal/metric"
	"repro/internal/refnet"
	"repro/internal/seq"
)

// Index lifecycle: live mutation of a built matcher, plus index
// serialisation for restart-without-rebuild. These methods mutate shared
// matcher state (the window slice, the backend, the lazily-built kernel
// tables), so they are NOT safe to call concurrently with queries or with
// each other — the owning tier (internal/store) serialises them behind a
// write lock and drains in-flight queries first. A freshly constructed or
// restored matcher answers queries bit-identically to one rebuilt from
// scratch over the same final database; the equivalence tests in
// lifecycle_test.go prove that per backend.

// ErrRetireUnsupported is returned by RetireSequence on backends with no
// deletion operation (the cover tree baseline).
var ErrRetireUnsupported = errors.New("core: index backend does not support retiring sequences")

// ErrSaveUnsupported is returned by SaveIndex on backends with no
// serialised form; their matchers are rebuilt from raw sequences instead
// (see store snapshot format notes).
var ErrSaveUnsupported = errors.New("core: index backend does not support serialisation")

// chargeBuild attributes the distance computations spent inside fn to the
// build/maintenance budget instead of the query-side filter counter, so
// FilterDistanceCalls keeps meaning "query evaluation cost" (the paper's
// Figures 8–11 quantity) across mutations.
func (mt *Matcher[E]) chargeBuild(fn func()) {
	before := mt.counter.Calls()
	fn()
	delta := mt.counter.Calls() - before
	mt.buildCalls += delta
	mt.counter.Add(-delta)
}

// AppendSequence partitions x into windows of length λ/2, inserts them
// into the live index, and returns the new sequence's ID plus the number
// of windows added (a trailing run shorter than λ/2 is discarded, so a
// short sequence can add zero windows and still occupy an ID). The matcher
// answers subsequent queries exactly as if it had been built over the
// extended database from scratch. Not safe concurrently with queries.
func (mt *Matcher[E]) AppendSequence(x seq.Sequence[E]) (seqID, added int, err error) {
	if mt.mv != nil && len(mt.windows) == 0 {
		// Unreachable in practice: NewMatcher refuses to build an MV index
		// over an empty database.
		return 0, 0, fmt.Errorf("core: MV index has no reference set to insert into")
	}
	seqID = len(mt.db)
	wins := seq.Partition(seqID, x, mt.cfg.Params.WindowLen())
	mt.chargeBuild(func() {
		for _, w := range wins {
			switch {
			case mt.net != nil:
				mt.tracked[winKey{w.SeqID, w.Ord}] = mt.net.InsertTracked(w)
			case mt.ct != nil:
				mt.ct.Insert(w)
			case mt.mv != nil:
				mt.mv.Insert(w)
			case mt.linear != nil:
				mt.linear.Insert(w)
			}
		}
	})
	mt.db = append(mt.db, x)
	mt.windows = append(mt.windows, wins...)
	// The verifier resolves SeqIDs against its own database slice; keep it
	// pointed at the (possibly reallocated) extended one.
	mt.verifier.db = mt.db
	mt.growPrepared(wins)
	return seqID, len(wins), nil
}

// RetireSequence removes every window of sequence seqID from the index and
// tombstones the sequence (its ID stays allocated and resolves to an empty
// sequence, so later windows keep their identities). It returns the number
// of windows removed. The cover-tree backend has no deletion and returns
// ErrRetireUnsupported. Not safe concurrently with queries.
func (mt *Matcher[E]) RetireSequence(seqID int) (removed int, err error) {
	if seqID < 0 || seqID >= len(mt.db) {
		return 0, fmt.Errorf("core: retire: sequence %d does not exist (database holds %d)", seqID, len(mt.db))
	}
	if mt.db[seqID] == nil {
		return 0, fmt.Errorf("core: retire: sequence %d already retired", seqID)
	}
	if mt.ct != nil {
		return 0, fmt.Errorf("%w: cover tree", ErrRetireUnsupported)
	}
	wins := seq.Partition(seqID, mt.db[seqID], mt.cfg.Params.WindowLen())
	mt.chargeBuild(func() {
		switch {
		case mt.net != nil:
			for _, w := range wins {
				k := winKey{w.SeqID, w.Ord}
				h, ok := mt.tracked[k]
				if !ok {
					err = fmt.Errorf("core: retire: window %v has no tracked handle", w)
					return
				}
				if derr := mt.net.Delete(h); derr != nil {
					err = fmt.Errorf("core: retire: %w", derr)
					return
				}
				delete(mt.tracked, k)
			}
			removed = len(wins)
		case mt.mv != nil:
			removed = mt.mv.RemoveFunc(func(w seq.Window[E]) bool { return w.SeqID == seqID })
		case mt.linear != nil:
			removed = mt.linear.RemoveFunc(func(w seq.Window[E]) bool { return w.SeqID == seqID })
		}
	})
	if err != nil {
		return 0, err
	}
	mt.db[seqID] = nil
	kept := mt.windows[:0]
	for _, w := range mt.windows {
		if w.SeqID != seqID {
			kept = append(kept, w)
		}
	}
	for i := len(kept); i < len(mt.windows); i++ {
		mt.windows[i] = seq.Window[E]{}
	}
	mt.windows = kept
	mt.compactPrepared()
	return removed, nil
}

// growPrepared extends the lazily-built kernel tables for freshly appended
// windows. If the slot array was never initialised (no kernel-path query
// has run yet), there is nothing to grow — preparedInit will see the
// extended window slice when it fires.
func (mt *Matcher[E]) growPrepared(wins []seq.Window[E]) {
	if mt.prepared == nil {
		return
	}
	for _, w := range wins {
		mt.winIndex[winKey{w.SeqID, w.Ord}] = int32(len(mt.prepared))
		mt.prepared = append(mt.prepared, &preparedSlot[E]{})
	}
}

// compactPrepared rebuilds the slot array and window→slot map to match the
// compacted window slice after a retire. Slots of surviving windows keep
// their pointers, so preprocessing already built on first touch survives
// the compaction; retired windows' slots are dropped and their tables
// freed. Positional invariant: prepared[i] belongs to windows[i], which
// filterHitsIncremental relies on (the linear backend's item order is kept
// in lockstep by LinearScan.RemoveFunc).
func (mt *Matcher[E]) compactPrepared() {
	if mt.prepared == nil {
		return
	}
	old := mt.winIndex
	next := make([]*preparedSlot[E], len(mt.windows))
	index := make(map[winKey]int32, len(mt.windows))
	for i, w := range mt.windows {
		k := winKey{w.SeqID, w.Ord}
		if oi, ok := old[k]; ok {
			next[i] = mt.prepared[oi]
		} else {
			next[i] = &preparedSlot[E]{}
		}
		index[k] = int32(i)
	}
	mt.prepared = next
	mt.winIndex = index
}

// DB exposes the matcher's database slice (shared; do not mutate).
// Retired sequences appear as nil entries.
func (mt *Matcher[E]) DB() []seq.Sequence[E] { return mt.db }

// SaveIndex serialises the index structure to w, for restart without
// re-indexing. Only the reference net has a serialised form
// (refnet.Save); other backends return ErrSaveUnsupported and are rebuilt
// from raw sequences on restore.
func (mt *Matcher[E]) SaveIndex(w io.Writer) error {
	if mt.net == nil {
		return fmt.Errorf("%w: %v", ErrSaveUnsupported, mt.cfg.Index)
	}
	return mt.net.Save(w)
}

// NewMatcherFromSavedIndex reconstructs a refnet-backed matcher from db
// and an index stream written by SaveIndex, without recomputing any
// distances — decoding a 100K-window net costs zero distance evaluations
// where rebuilding costs millions. cfg must be the configuration the net
// was built under (the store's snapshot header enforces that before
// calling here); cfg.Index must be IndexRefNet.
//
// The restored matcher is fully live: queries answer bit-identically to
// the matcher that was saved, and AppendSequence/RetireSequence work (the
// window→node handle map is rebuilt from a net walk). Window payloads
// decoded from the stream are re-aliased onto views of db, so sequences
// are held in memory once, not twice.
func NewMatcherFromSavedIndex[E any](m dist.Measure[E], cfg Config, db []seq.Sequence[E], r io.Reader) (*Matcher[E], error) {
	cfg.defaults()
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if err := validateMeasure(m, cfg); err != nil {
		return nil, err
	}
	if cfg.Index != IndexRefNet {
		return nil, fmt.Errorf("core: restore: backend %v has no serialised form", cfg.Index)
	}
	mt := &Matcher[E]{
		measure: m,
		cfg:     cfg,
		db:      db,
		windows: seq.PartitionAll(db, cfg.Params.WindowLen()),
	}
	mt.counter = metric.NewCounter(func(a, b seq.Window[E]) float64 {
		return m.Fn(a.Data, b.Data)
	})
	net, err := refnet.Load(r, mt.counter.Distance)
	if err != nil {
		return nil, err
	}
	if m.Bounded != nil {
		bounded := m.Bounded
		net.SetBounded(mt.counter.CountBounded(
			func(a, b seq.Window[E], eps float64) float64 {
				return bounded(a.Data, b.Data, eps)
			}))
	}
	if net.Len() != len(mt.windows) {
		return nil, fmt.Errorf("core: restore: index holds %d windows but database partitions into %d (sequences and index stream do not belong together)",
			net.Len(), len(mt.windows))
	}
	// Re-alias decoded window payloads onto the canonical database views
	// and rebuild the window→handle map for future retires. Every indexed
	// window must identify a window the database actually has.
	byKey := make(map[winKey]seq.Window[E], len(mt.windows))
	for _, w := range mt.windows {
		byKey[winKey{w.SeqID, w.Ord}] = w
	}
	mt.tracked = make(map[winKey]*refnet.Node[seq.Window[E]], len(mt.windows))
	rerr := error(nil)
	net.RewriteItems(func(w seq.Window[E]) seq.Window[E] {
		canon, ok := byKey[winKey{w.SeqID, w.Ord}]
		if !ok && rerr == nil {
			rerr = fmt.Errorf("core: restore: index window %v not present in database", w)
		}
		return canon
	})
	if rerr != nil {
		return nil, rerr
	}
	net.Walk(func(n *refnet.Node[seq.Window[E]]) {
		w := n.Item()
		mt.tracked[winKey{w.SeqID, w.Ord}] = n
	})
	if len(mt.tracked) != len(mt.windows) {
		return nil, fmt.Errorf("core: restore: index holds %d distinct windows, database has %d (duplicate or missing entries)",
			len(mt.tracked), len(mt.windows))
	}
	mt.index = net
	mt.net = net
	mt.buildCalls = mt.counter.Calls() // zero: decoding computes no distances
	mt.counter.Reset()
	mt.verifier = newVerifier(m.Fn, cfg.Params, db)
	return mt, nil
}
