package core

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/seq"
)

// gatedPool builds a matcher whose distance evaluation can be stalled, plus
// a single-worker pool over it. The gate starts disarmed so index
// construction runs at full speed; arm it (store a channel) to make every
// subsequent evaluation block until the channel closes — a deterministic
// way to wedge the worker and fill the queue. Prepare/Bounded are stripped
// so all evaluation flows through the gated Fn.
func gatedPool(t *testing.T, seed uint64, opts ...PoolOption) (*QueryPool[byte], *atomic.Pointer[chan struct{}], []seq.Sequence[byte]) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed*100))
	db, qs := batchQueries(rng, 6)
	m := dist.LevenshteinMeasure[byte]()
	inner := m.Fn
	var gate atomic.Pointer[chan struct{}]
	m.Fn = func(a, b []byte) float64 {
		if ch := gate.Load(); ch != nil {
			<-*ch
		}
		return inner(a, b)
	}
	m.Prepare = nil
	m.Bounded = nil
	mt, err := NewMatcher(m, Config{Params: Params{Lambda: 6, Lambda0: 1}}, db)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewQueryPool(mt, 1, opts...)
	return pool, &gate, qs
}

// armGate wedges all evaluation; the returned func unblocks it.
func armGate(gate *atomic.Pointer[chan struct{}]) func() {
	ch := make(chan struct{})
	gate.Store(&ch)
	return func() {
		gate.Store(nil)
		close(ch)
	}
}

// waitPending polls until the stream queue holds exactly n jobs (i.e. the
// worker has claimed everything earlier).
func waitPending(t *testing.T, pool *QueryPool[byte], n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for pool.StreamStats().Pending != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d pending: %+v", n, pool.StreamStats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestParseShedPolicy(t *testing.T) {
	for name, want := range map[string]ShedPolicy{
		"": ShedBlock, "block": ShedBlock,
		"reject": ShedRejectNewest, "Reject-Newest": ShedRejectNewest,
		"fair": ShedFairShare, "fair-share": ShedFairShare,
	} {
		got, err := ParseShedPolicy(name)
		if err != nil || got != want {
			t.Fatalf("ParseShedPolicy(%q) = (%v, %v), want %v", name, got, err, want)
		}
		if rt, err := ParseShedPolicy(got.String()); err != nil || rt != got {
			t.Fatalf("round trip %v → %q → (%v, %v)", got, got.String(), rt, err)
		}
	}
	if _, err := ParseShedPolicy("nope"); err == nil {
		t.Fatal("ParseShedPolicy accepted garbage")
	}
}

// A submission whose deadline has already passed fails immediately with
// ErrDeadlineExceeded — before touching the queue or the index.
func TestSubmitDeadlinePreExpired(t *testing.T) {
	pool, _, qs := gatedPool(t, 61)
	defer pool.Close()
	ctx := context.Background()
	f := pool.Submit(ctx, qs[0], 0.5, WithSubmitDeadline(time.Now().Add(-time.Second)))
	if _, err := f.Await(ctx); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("pre-expired submit resolved to %v, want ErrDeadlineExceeded", err)
	}
	st := pool.StreamStats()
	if st.Expired != 1 || st.Completed != 0 {
		t.Fatalf("stats after pre-expired submit: %+v", st)
	}
}

// A submission whose deadline passes while queued is dropped by the worker
// before being priced: its future fails with ErrDeadlineExceeded and it
// counts as Expired, not Completed.
func TestSubmitDeadlineExpiresInQueue(t *testing.T) {
	pool, gate, qs := gatedPool(t, 67)
	defer pool.Close()
	ctx := context.Background()
	release := armGate(gate)
	blocker := pool.Submit(ctx, qs[0], 0.5)
	waitPending(t, pool, 0) // worker claimed the blocker and is wedged
	doomed := pool.Submit(ctx, qs[1], 0.5, WithSubmitTimeout(20*time.Millisecond))
	time.Sleep(60 * time.Millisecond) // let the deadline lapse while queued
	release()
	if _, err := blocker.Await(ctx); err != nil {
		t.Fatalf("blocker failed: %v", err)
	}
	if _, err := doomed.Await(ctx); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("queued-past-deadline submit resolved to %v, want ErrDeadlineExceeded", err)
	}
	st := pool.StreamStats()
	if st.Expired != 1 || st.Completed != 1 {
		t.Fatalf("stats: %+v, want Expired=1 Completed=1", st)
	}
}

// Under ShedBlock a blocked submitter's deadline still fires: the slot wait
// itself is deadline-aware.
func TestShedBlockDeadlineWhileBlocked(t *testing.T) {
	pool, gate, qs := gatedPool(t, 71, WithQueueDepth(1))
	defer pool.Close()
	ctx := context.Background()
	release := armGate(gate)
	blocker := pool.Submit(ctx, qs[0], 0.5) // holds the only slot
	start := time.Now()
	f := pool.Submit(ctx, qs[1], 0.5, WithSubmitTimeout(30*time.Millisecond))
	if _, err := f.Await(ctx); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("blocked submit resolved to %v, want ErrDeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("blocked submit took %v to fail, deadline was 30ms", waited)
	}
	release()
	if _, err := blocker.Await(ctx); err != nil {
		t.Fatalf("blocker failed: %v", err)
	}
	if st := pool.StreamStats(); st.Expired != 1 {
		t.Fatalf("stats: %+v, want Expired=1", st)
	}
}

// ShedRejectNewest turns saturation into an immediate typed ErrQueueFull
// instead of blocking the submitter.
func TestShedRejectNewest(t *testing.T) {
	pool, gate, qs := gatedPool(t, 73, WithQueueDepth(2), WithShedPolicy(ShedRejectNewest))
	defer pool.Close()
	ctx := context.Background()
	release := armGate(gate)
	a := pool.Submit(ctx, qs[0], 0.5)
	b := pool.Submit(ctx, qs[1], 0.5)
	c := pool.Submit(ctx, qs[2], 0.5) // both slots held: shed
	select {
	case <-c.Done():
	default:
		t.Fatal("shed submission did not resolve immediately")
	}
	if _, err := c.Await(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated submit resolved to %v, want ErrQueueFull", err)
	}
	release()
	for i, f := range []*Future[[]Match]{a, b} {
		if _, err := f.Await(ctx); err != nil {
			t.Fatalf("admitted submission %d failed: %v", i, err)
		}
	}
	st := pool.StreamStats()
	if st.Shed != 1 || st.Completed != 2 {
		t.Fatalf("stats: %+v, want Shed=1 Completed=2", st)
	}
	if st.ShedPolicy != "reject" {
		t.Fatalf("stats echo policy %q, want reject", st.ShedPolicy)
	}
}

// ShedFairShare keeps a light tenant flowing through a heavy tenant's
// flood: at saturation the heavy tenant's newest queued submission is
// evicted in the newcomer's favour, while within one tenant saturation
// stays reject-newest.
func TestShedFairShare(t *testing.T) {
	pool, gate, qs := gatedPool(t, 79, WithQueueDepth(3), WithShedPolicy(ShedFairShare))
	defer pool.Close()
	ctx := context.Background()
	release := armGate(gate)
	hogRun := pool.Submit(ctx, qs[0], 0.5, WithTenant("hog"))
	waitPending(t, pool, 0) // claimed: the hog occupies the worker
	hog1 := pool.Submit(ctx, qs[1], 0.5, WithTenant("hog"))
	hog2 := pool.Submit(ctx, qs[2], 0.5, WithTenant("hog"))
	// Queue full (3 slots: running hog + 2 queued hogs). A light tenant's
	// arrival evicts the hog's newest queued job, not itself.
	mouse := pool.Submit(ctx, qs[3], 0.5, WithTenant("mouse"))
	if _, err := hog2.Await(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("heavy tenant's newest resolved to %v, want ErrQueueFull (evicted)", err)
	}
	select {
	case <-mouse.Done():
		_, err := mouse.Await(ctx)
		t.Fatalf("light tenant's submission resolved early: %v", err)
	default:
	}
	// hog1 (tenant load 2: running + queued) still outweighs the mice, so
	// a second mouse evicts it too rather than being shed itself.
	mouse2 := pool.Submit(ctx, qs[4], 0.5, WithTenant("mouse"))
	if _, err := hog1.Await(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("hog1 resolved to %v, want ErrQueueFull (evicted by mouse2)", err)
	}
	select {
	case <-mouse2.Done():
		_, err := mouse2.Await(ctx)
		t.Fatalf("second mouse resolved early: %v", err)
	default:
	}
	// Now the queue is all mice; a third mouse is shed itself.
	mouse3 := pool.Submit(ctx, qs[5], 0.5, WithTenant("mouse"))
	if _, err := mouse3.Await(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("mouse3 resolved to %v, want ErrQueueFull (own tenant is heaviest)", err)
	}
	release()
	if _, err := hogRun.Await(ctx); err != nil {
		t.Fatalf("running hog failed: %v", err)
	}
	for _, f := range []*Future[[]Match]{mouse, mouse2} {
		if _, err := f.Await(ctx); err != nil {
			t.Fatalf("admitted mouse failed: %v", err)
		}
	}
	st := pool.StreamStats()
	if st.Shed != 3 || st.Completed != 3 {
		t.Fatalf("stats: %+v, want Shed=3 Completed=3", st)
	}
	if st.Completed+st.Cancelled+st.Rejected+st.Shed+st.Expired+st.Crashed != st.Submitted {
		t.Fatalf("submission accounting leaks: %+v", st)
	}
}

// Worker claims seed from the highest-priority pending job; arrival order
// breaks ties, so default-priority traffic is untouched.
func TestClaimPrioritySeed(t *testing.T) {
	mk := func(eps float64, prio int) *streamJob[byte] {
		return &streamJob[byte]{kind: kindFindAll, eps: eps, priority: prio, ctx: context.Background()}
	}
	var s streamState[byte]
	lo1, lo2 := mk(2, 0), mk(2, 0)
	hi1, hi2 := mk(3, 5), mk(3, 5)
	s.queue = []*streamJob[byte]{lo1, hi1, lo2, hi2}
	claimed := s.claimLocked(1, 64, nil)
	if len(claimed) != 2 || claimed[0] != hi1 || claimed[1] != hi2 {
		t.Fatalf("claim = %v, want [hi1 hi2] (priority seeds, oldest tie-break)", claimed)
	}
	if len(s.queue) != 2 || s.queue[0] != lo1 || s.queue[1] != lo2 {
		t.Fatalf("left behind %v, want [lo1 lo2] in order", s.queue)
	}
	// All-default priorities claim strictly in arrival order (seed = head).
	s.queue = []*streamJob[byte]{lo1, lo2}
	claimed = s.claimLocked(1, 64, nil)
	if claimed[0] != lo1 {
		t.Fatal("default-priority claim did not seed from the head")
	}
}

// A worker panic mid-claim (a poisoned query) must not take the pool down:
// the claim's futures fail with ErrWorkerCrashed, the accounting moves to
// Crashed, and the pool keeps answering later submissions correctly.
func TestWorkerPanicSelfHeals(t *testing.T) {
	rng := rand.New(rand.NewPCG(83, 8300))
	db, qs := batchQueries(rng, 4)
	m := dist.LevenshteinMeasure[byte]()
	inner := m.Fn
	var bomb atomic.Bool
	m.Fn = func(a, b []byte) float64 {
		if bomb.Load() {
			panic("injected evaluator fault")
		}
		return inner(a, b)
	}
	m.Prepare = nil
	m.Bounded = nil
	mt, err := NewMatcher(m, Config{Params: Params{Lambda: 6, Lambda0: 1}}, db)
	if err != nil {
		t.Fatal(err)
	}
	want := mt.FindAllBatch(qs, 0.5)
	pool := NewQueryPool(mt, 2)
	defer pool.Close()
	ctx := context.Background()

	bomb.Store(true)
	f := pool.Submit(ctx, qs[0], 0.5)
	if _, err := f.Await(ctx); !errors.Is(err, ErrWorkerCrashed) {
		t.Fatalf("poisoned submission resolved to %v, want ErrWorkerCrashed", err)
	}
	bomb.Store(false)
	// The pool survived: the same query now answers bit-identically.
	for i, q := range qs {
		ms, err := pool.Submit(ctx, q, 0.5).Await(ctx)
		if err != nil {
			t.Fatalf("post-crash submission %d failed: %v", i, err)
		}
		if len(ms) != len(want[i]) {
			t.Fatalf("post-crash query %d: %d matches, want %d", i, len(ms), len(want[i]))
		}
		for j := range ms {
			if ms[j] != want[i][j] {
				t.Fatalf("post-crash query %d match %d: %v, want %v", i, j, ms[j], want[i][j])
			}
		}
	}
	st := pool.StreamStats()
	if st.Crashed != 1 {
		t.Fatalf("stats: %+v, want Crashed=1", st)
	}
	if st.Completed+st.Cancelled+st.Rejected+st.Shed+st.Expired+st.Crashed != st.Submitted {
		t.Fatalf("submission accounting leaks: %+v", st)
	}
	if st.InFlight != 0 {
		t.Fatalf("crashed claim leaked slots: %+v", st)
	}
}

// The latency histograms populate: every completed submission lands in
// both distributions, quantiles are sane, and an untouched pool reports
// empty histograms without starting workers.
func TestStreamLatencyHistograms(t *testing.T) {
	pool, _, qs := gatedPool(t, 89)
	defer pool.Close()
	if st := pool.StreamStats(); st.Latency.Count != 0 || st.QueueWait.Count != 0 {
		t.Fatalf("idle pool shows latency observations: %+v", st)
	}
	ctx := context.Background()
	const n = 24
	futures := make([]*Future[[]Match], 0, n)
	for i := 0; i < n; i++ {
		futures = append(futures, pool.Submit(ctx, qs[i%len(qs)], 0.5))
	}
	for _, f := range futures {
		if _, err := f.Await(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := pool.StreamStats()
	if st.Latency.Count != n || st.QueueWait.Count != n {
		t.Fatalf("histogram counts (%d, %d), want (%d, %d)", st.Latency.Count, st.QueueWait.Count, n, n)
	}
	l := st.Latency
	if l.MeanMillis <= 0 || l.MaxMillis < l.P99Millis/2 || l.P50Millis > l.P99Millis {
		t.Fatalf("implausible latency summary: %+v", l)
	}
	var bucketSum int64
	for _, b := range l.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != n {
		t.Fatalf("buckets sum to %d, want %d", bucketSum, n)
	}
}

// The latency histogram itself: bucket placement, quantile interpolation
// bounds, and concurrent observation safety.
func TestLatencyHistQuantiles(t *testing.T) {
	var h latencyHist
	for i := 0; i < 90; i++ {
		h.observe(1 * time.Millisecond) // ≤ 1ms bucket
	}
	for i := 0; i < 10; i++ {
		h.observe(40 * time.Millisecond) // (20ms, 50ms] bucket
	}
	st := h.snapshot()
	if st.Count != 100 {
		t.Fatalf("count %d, want 100", st.Count)
	}
	if st.P50Millis > 1.0 {
		t.Fatalf("p50 %.3fms, want ≤ 1ms", st.P50Millis)
	}
	if st.P99Millis <= 20 || st.P99Millis > 50 {
		t.Fatalf("p99 %.3fms, want in (20, 50]", st.P99Millis)
	}
	if st.MaxMillis != 40 {
		t.Fatalf("max %.3fms, want 40", st.MaxMillis)
	}
	// Concurrent observes do not race (run under -race in CI).
	var h2 latencyHist
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h2.observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h2.snapshot().Count; got != 4000 {
		t.Fatalf("concurrent count %d, want 4000", got)
	}
}

// Close racing Submit on every backend: each future must resolve (result
// or ErrPoolClosed), nothing deadlocks, and accounting balances. Runs
// under -race in CI.
func TestStreamCloseSubmitRaceAllBackends(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(97, 9700))
	db, qs := batchQueries(rng, 4)
	for _, kind := range []IndexKind{IndexRefNet, IndexCoverTree, IndexMV, IndexLinearScan} {
		mt, err := NewMatcher(lev, Config{Params: p, Index: kind, MVRefs: 3}, db)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		pool := NewQueryPool(mt, 2, WithQueueDepth(8), WithShedPolicy(ShedRejectNewest))
		var wg sync.WaitGroup
		futures := make(chan *Future[[]Match], 256)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				ctx := context.Background()
				for i := 0; i < 32; i++ {
					futures <- pool.Submit(ctx, qs[(g+i)%len(qs)], 0.5)
				}
			}(g)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			pool.Close() // races the submitters
		}()
		wg.Wait()
		close(futures)
		<-done
		ctx := context.Background()
		for f := range futures {
			if _, err := f.Await(ctx); err != nil &&
				!errors.Is(err, ErrPoolClosed) && !errors.Is(err, ErrQueueFull) {
				t.Fatalf("%v: future resolved to %v, want result, ErrPoolClosed or ErrQueueFull", kind, err)
			}
		}
		st := pool.StreamStats()
		if st.Completed+st.Cancelled+st.Rejected+st.Shed+st.Expired+st.Crashed != st.Submitted {
			t.Fatalf("%v: submission accounting leaks: %+v", kind, st)
		}
		if st.InFlight != 0 || st.Pending != 0 {
			t.Fatalf("%v: engine not drained: %+v", kind, st)
		}
	}
}

// Context cancellation racing the worker's claim on every backend: cancel
// fires while jobs sit queued and while they run; every future resolves,
// nothing leaks. Runs under -race in CI.
func TestStreamCancelDuringClaimAllBackends(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(101, 10100))
	db, qs := batchQueries(rng, 4)
	for _, kind := range []IndexKind{IndexRefNet, IndexCoverTree, IndexMV, IndexLinearScan} {
		mt, err := NewMatcher(lev, Config{Params: p, Index: kind, MVRefs: 3}, db)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		pool := NewQueryPool(mt, 2, WithQueueDepth(8))
		var wg sync.WaitGroup
		var unresolved atomic.Int64
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 24; i++ {
					ctx, cancel := context.WithCancel(context.Background())
					f := pool.Submit(ctx, qs[(g+i)%len(qs)], 0.5)
					if i%3 != 0 {
						cancel() // racing the claim
					}
					if _, err := f.Await(context.Background()); err != nil && !errors.Is(err, context.Canceled) {
						unresolved.Add(1)
					}
					cancel()
				}
			}(g)
		}
		wg.Wait()
		if unresolved.Load() != 0 {
			t.Fatalf("%v: %d futures resolved to unexpected errors", kind, unresolved.Load())
		}
		pool.Close()
		st := pool.StreamStats()
		if st.Completed+st.Cancelled+st.Rejected+st.Shed+st.Expired+st.Crashed != st.Submitted {
			t.Fatalf("%v: submission accounting leaks: %+v", kind, st)
		}
		if st.InFlight != 0 || st.Pending != 0 {
			t.Fatalf("%v: engine not drained: %+v", kind, st)
		}
	}
}
