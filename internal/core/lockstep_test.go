package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/dist"
	"repro/internal/seq"
)

// Lock-step distances (Euclidean, Hamming) force λ0 = 0: matched spans
// have equal length and no temporal shift, which makes the framework's
// completeness provable. These tests pin that contract end to end,
// complementing the warped-distance tests in core_test.go.

func TestEuclideanPipelineExactAgainstOracle(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 0}
	eu := dist.EuclideanMeasure(dist.AbsDiff)
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 1700))
		db := []seq.Sequence[float64]{walk(rng, 30), walk(rng, 30)}
		q := append(seq.Sequence[float64]{}, db[trial%2][4:26]...)
		// Perturb the copied region slightly so distances are non-zero.
		for i := range q {
			q[i] += rng.Float64() * 0.1
		}
		mt, err := NewMatcher(eu, Config{Params: p}, db)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := NewBruteForce(eu, p, db)
		if err != nil {
			t.Fatal(err)
		}
		const eps = 1.0
		got := matchSet(mt.FindAll(q, eps))
		for _, want := range oracle.FindAll(q, eps, p.Lambda) {
			if !got[want] {
				t.Errorf("trial %d: lock-step oracle pair %v missed", trial, want)
			}
		}
		// Longest must agree exactly on |SQ| (equal lengths, no warping).
		om, ook := oracle.Longest(q, eps)
		fm, fok := mt.Longest(q, eps)
		if ook != fok {
			t.Fatalf("trial %d: found mismatch oracle=%v framework=%v", trial, ook, fok)
		}
		if ook && fm.QLen() < om.QLen() {
			t.Errorf("trial %d: framework longest %d < oracle %d", trial, fm.QLen(), om.QLen())
		}
	}
}

func TestHammingNearestAgainstOracle(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 0}
	ham := dist.HammingMeasure[byte]()
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 1800))
		db, q := randStrings(rng, 2, 26, 18, 8, true)
		mt, err := NewMatcher(ham, Config{Params: p}, db)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := NewBruteForce(ham, p, db)
		if err != nil {
			t.Fatal(err)
		}
		fm, fok := mt.Nearest(q, NearestOptions{EpsMax: 18, EpsInc: 1})
		if !fok {
			t.Fatalf("trial %d: nothing found", trial)
		}
		oc, ok := oracle.Nearest(q, p.Lambda)
		if !ok {
			t.Fatalf("trial %d: capped oracle found nothing", trial)
		}
		if fm.Dist > oc.Dist+1e-9 {
			t.Errorf("trial %d: nearest %v worse than λ-capped optimum %v", trial, fm.Dist, oc.Dist)
		}
		og, _ := oracle.Nearest(q, 0)
		if fm.Dist < og.Dist-1e-9 {
			t.Errorf("trial %d: nearest %v beats global optimum %v — invalid pair", trial, fm.Dist, og.Dist)
		}
	}
}

// FilterHits through the batch path (reference net) must agree exactly
// with the sequential path (linear scan backend).
func TestFilterHitsBatchMatchesSequential(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(5, 1900))
	db, q := randStrings(rng, 3, 40, 24, 9, true)
	indexed, err := NewMatcher(lev, Config{Params: p, Index: IndexRefNet}, db)
	if err != nil {
		t.Fatal(err)
	}
	linear, err := NewMatcher(lev, Config{Params: p, Index: IndexLinearScan}, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0, 1, 2, 4} {
		type key struct {
			seqID, ord, segStart, segLen int
		}
		set := func(hits []Hit[byte]) map[key]bool {
			m := map[key]bool{}
			for _, h := range hits {
				m[key{h.Window.SeqID, h.Window.Ord, h.Segment.Start, len(h.Segment.Data)}] = true
			}
			return m
		}
		a := set(indexed.FilterHits(q, eps))
		b := set(linear.FilterHits(q, eps))
		if len(a) != len(b) {
			t.Fatalf("eps=%v: batch %d hits vs sequential %d", eps, len(a), len(b))
		}
		for k := range a {
			if !b[k] {
				t.Fatalf("eps=%v: hit %v only in batch path", eps, k)
			}
		}
	}
}

// The ProteinEdit measure drives the whole indexed pipeline.
func TestProteinEditPipeline(t *testing.T) {
	p := Params{Lambda: 8, Lambda0: 1}
	pe := dist.ProteinEditMeasure()
	rng := rand.New(rand.NewPCG(6, 2000))
	db, q := randStrings(rng, 2, 40, 24, 12, true)
	mt, err := NewMatcher(pe, Config{Params: p}, db)
	if err != nil {
		t.Fatal(err)
	}
	// The planted motif (one mutation) must be findable at a radius that
	// admits a couple of radical substitutions.
	if _, ok := mt.Longest(q, 3.5); !ok {
		t.Error("planted motif not found under ProteinEdit")
	}
}
