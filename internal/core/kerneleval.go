package core

import (
	"sort"
	"sync"

	"repro/internal/dist"
	"repro/internal/metric"
	"repro/internal/seq"
)

// Kernel-fed index traversal (ROADMAP: kernel-aware metric-index traversal
// below one-evaluation-per-probe).
//
// The filter's probes are query segments, and segments that share a start
// offset differ only in length: q[a:a+L] for L = λ/2−λ0 … λ/2+λ0. When the
// reference net's traversal needs the distances from several such probes to
// one database window, a single incremental-kernel pass prices all of them
// — bind the window's kernel, feed the longest member's elements, and read
// the distance off at every member length. kernelEvaluator implements
// refnet's BatchEvaluator hook with exactly that grouping, turning up to
// 2λ0+1 probe evaluations per (node, offset) into one streamed evaluation
// plus O(1) reads.
//
// Memory discipline mirrors the linear backend: the immutable window
// preprocessing (dist.Prepared — Myers peq tables, edit base rows) is built
// lazily, once per window on first touch, and shared matcher-wide
// (preparedAt), while each evaluator carries a single rebindable kernel
// state. Steady-state kernel memory is therefore O(touched windows) +
// O(concurrent evaluators), never O(windows × workers) — and a selective
// workload never pays for windows its traversals skip.

// preparedSlot is one window's share of the prepared-table array: the
// preprocessing plus the once that builds it on first touch. Building
// lazily matters for serving workloads — a selective query stream over a
// large index touches a sliver of the windows, and eager construction
// would pay O(windows) preprocessing (Myers peq tables are ~2KB per
// 64-byte window) at the first query.
type preparedSlot[E any] struct {
	once sync.Once
	p    dist.Prepared[E]
}

// preparedInit builds, once per matcher, the empty slot array and the
// window→slot map (keyed like the verifier's winKey, by sequence and
// ordinal) — no Prepare calls happen here; slots fill on first touch.
// Requires measure.Prepare != nil.
func (mt *Matcher[E]) preparedInit() {
	mt.preparedOnce.Do(func() {
		mt.prepared = make([]*preparedSlot[E], len(mt.windows))
		for i := range mt.prepared {
			mt.prepared[i] = &preparedSlot[E]{}
		}
		index := make(map[winKey]int32, len(mt.windows))
		for i, w := range mt.windows {
			index[winKey{w.SeqID, w.Ord}] = int32(i)
		}
		mt.winIndex = index
	})
}

// preparedAt resolves slot i, building its preprocessing on first touch.
// Safe for concurrent use: the winning goroutine builds, the rest wait on
// the slot's once and read the published value.
func (mt *Matcher[E]) preparedAt(i int32) dist.Prepared[E] {
	s := mt.prepared[i]
	s.once.Do(func() { s.p = mt.measure.Prepare(mt.windows[i].Data) })
	return s.p
}

// preparedFor resolves the shared preprocessing of an indexed window.
func (mt *Matcher[E]) preparedFor(w seq.Window[E]) dist.Prepared[E] {
	mt.preparedInit()
	return mt.preparedAt(mt.winIndex[winKey{w.SeqID, w.Ord}])
}

// kernelTraversal reports whether index traversals should evaluate probes
// through grouped incremental kernels: the measure must carry Prepare, and
// there must be more than one segment length per offset to group (λ0 > 0 —
// with a single length a kernel pass equals a plain evaluation).
func (mt *Matcher[E]) kernelTraversal() bool {
	return mt.measure.Prepare != nil && mt.cfg.Params.Lambda0 > 0
}

// batchRangerEval is the kernel-aware batched-query fast path (implemented
// by the reference net).
type batchRangerEval[E any] interface {
	BatchRangeEval(qs []seq.Window[E], eps float64, ev metric.BatchEvaluator[seq.Window[E]]) [][]seq.Window[E]
}

// kernelEvaluator implements metric.BatchEvaluator over segment probes by
// streaming each probe group — probes sharing a query offset — through the
// target window's shared incremental kernel. It lives in the pooled filter
// scratch, so each concurrent traversal owns one kernel state and one sort
// buffer. Each EvalBatch counts one filter distance evaluation per kernel
// pass (a pass costs one longest-member evaluation), which is what makes
// the refnet filter's counted cost drop below one evaluation per probe.
type kernelEvaluator[E any] struct {
	mt     *Matcher[E]
	probes []seq.Window[E]
	// groupOf assigns each probe its offset-group key: probes with equal
	// keys share a query and start offset, so the shorter ones are prefixes
	// of the longest. Keys only need to be distinct across groups.
	groupOf []int32
	state   dist.Kernel[E]
	ord     []int32
}

// bind readies the evaluator for one traversal over probes, with probe i in
// offset group groupOf[i].
func (ev *kernelEvaluator[E]) bind(mt *Matcher[E], probes []seq.Window[E]) {
	ev.mt = mt
	ev.probes = probes
	if cap(ev.groupOf) < len(probes) {
		ev.groupOf = make([]int32, len(probes))
	}
	ev.groupOf = ev.groupOf[:len(probes)]
}

func (ev *kernelEvaluator[E]) Exact() bool { return true }

func (ev *kernelEvaluator[E]) EvalBatch(item seq.Window[E], idxs []int32, _ float64, out []float64) {
	p := ev.mt.preparedFor(item)
	// Order the probes by (group, length): group members become contiguous
	// runs, shortest first. ord holds positions into idxs (and out), so the
	// sort never moves the caller's data. Deep nodes see a handful of
	// inconclusive probes (insertion sort, no allocation); the root sees
	// the whole chunk in length-major generation order — near-maximal
	// inversions — so larger sets go through sort.Slice.
	ord := ev.ord[:0]
	for k := range idxs {
		ord = append(ord, int32(k))
	}
	less := func(a, b int32) bool {
		ga, gb := ev.groupOf[idxs[a]], ev.groupOf[idxs[b]]
		if ga != gb {
			return ga < gb
		}
		return len(ev.probes[idxs[a]].Data) < len(ev.probes[idxs[b]].Data)
	}
	if len(ord) > 24 {
		sort.Slice(ord, func(i, j int) bool { return less(ord[i], ord[j]) })
	} else {
		for i := 1; i < len(ord); i++ {
			for j := i; j > 0 && less(ord[j], ord[j-1]); j-- {
				ord[j], ord[j-1] = ord[j-1], ord[j]
			}
		}
	}
	ev.ord = ord
	var passes int64
	for s := 0; s < len(ord); {
		g := ev.groupOf[idxs[ord[s]]]
		e := s + 1
		for e < len(ord) && ev.groupOf[idxs[ord[e]]] == g {
			e++
		}
		// One streamed pass prices the whole group: every member is a
		// prefix of the longest member's data.
		ev.state = dist.BindKernel(ev.state, p)
		longest := ev.probes[idxs[ord[e-1]]].Data
		k := s
		for n := 1; n <= len(longest); n++ {
			d := ev.state.Feed(longest[n-1])
			for k < e && len(ev.probes[idxs[ord[k]]].Data) == n {
				out[ord[k]] = d
				k++
			}
		}
		passes++
		s = e
	}
	ev.mt.counter.Add(passes)
}
