package core

import (
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/seq"
)

// The kernel-fed refnet traversal must issue measurably fewer filter
// distance evaluations than per-probe evaluation — the tentpole claim:
// probes sharing a query offset are priced by one streamed kernel pass, so
// counted evaluations drop below one per probe — while returning exactly
// the per-probe results.
func TestRefnetKernelTraversalFewerFilterCalls(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 2100))
	db, qs := batchQueries(rng, 6)
	p := Params{Lambda: 8, Lambda0: 2}

	kernel, err := NewMatcher(dist.LevenshteinMeasure[byte](), Config{Params: p, Index: IndexRefNet}, db)
	if err != nil {
		t.Fatal(err)
	}
	// The baseline evaluates every probe independently: strip both the
	// kernel and the bounded capability so each traversal evaluation is one
	// plain distance call.
	plainMeasure := dist.LevenshteinMeasure[byte]()
	plainMeasure.Prepare = nil
	plainMeasure.Bounded = nil
	plain, err := NewMatcher(plainMeasure, Config{Params: p, Index: IndexRefNet}, db)
	if err != nil {
		t.Fatal(err)
	}

	for _, eps := range []float64{0.5, 1, 2} {
		kernel.ResetFilterCalls()
		plain.ResetFilterCalls()
		got := kernel.FilterHitsBatch(qs, eps)
		want := plain.FilterHitsBatch(qs, eps)
		for i := range qs {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("eps=%v query %d: kernel %d hits, per-probe %d", eps, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j].Window.String() != want[i][j].Window.String() ||
					got[i][j].Segment.String() != want[i][j].Segment.String() {
					t.Fatalf("eps=%v query %d hit %d: kernel %v/%v, per-probe %v/%v", eps, i, j,
						got[i][j].Window, got[i][j].Segment, want[i][j].Window, want[i][j].Segment)
				}
			}
		}
		kc, pc := kernel.FilterDistanceCalls(), plain.FilterDistanceCalls()
		if kc == 0 || pc == 0 {
			t.Fatalf("eps=%v: vacuous counts (kernel %d, per-probe %d)", eps, kc, pc)
		}
		if kc >= pc {
			t.Fatalf("eps=%v: kernel traversal counted %d filter evaluations, per-probe %d — no reduction", eps, kc, pc)
		}
	}
}

// The single-query filter must take the same kernel traversal as the batch
// (FilterHits routes through BatchRangeEval on the refnet backend), with
// the same counted reduction.
func TestRefnetKernelSingleQueryFewerFilterCalls(t *testing.T) {
	rng := rand.New(rand.NewPCG(22, 2200))
	db, qs := batchQueries(rng, 2)
	p := Params{Lambda: 8, Lambda0: 1}
	kernel, err := NewMatcher(dist.LevenshteinMeasure[byte](), Config{Params: p, Index: IndexRefNet}, db)
	if err != nil {
		t.Fatal(err)
	}
	plainMeasure := dist.LevenshteinMeasure[byte]()
	plainMeasure.Prepare = nil
	plainMeasure.Bounded = nil
	plain, err := NewMatcher(plainMeasure, Config{Params: p, Index: IndexRefNet}, db)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1.5
	kernel.ResetFilterCalls()
	plain.ResetFilterCalls()
	for _, q := range qs {
		got := kernel.FilterHits(q, eps)
		want := plain.FilterHits(q, eps)
		if len(got) != len(want) {
			t.Fatalf("kernel %d hits, per-probe %d", len(got), len(want))
		}
	}
	if kc, pc := kernel.FilterDistanceCalls(), plain.FilterDistanceCalls(); kc == 0 || kc >= pc {
		t.Fatalf("kernel counted %d filter evaluations, per-probe %d", kc, pc)
	}
}

// The shared prepared tables must be built exactly once per matcher and
// handed to every concurrent worker — per-worker state must not duplicate
// the immutable window preprocessing (the O(windows) memory claim).
func TestPreparedTablesSharedAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 2300))
	db, qs := batchQueries(rng, 6)
	p := Params{Lambda: 8, Lambda0: 1}
	mt, err := NewMatcher(dist.LevenshteinMeasure[byte](), Config{Params: p, Index: IndexRefNet}, db)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				mt.FilterHitsBatch(qs, 1)
			}
		}()
	}
	wg.Wait()
	mt.preparedInit()
	if len(mt.prepared) != len(mt.windows) {
		t.Fatalf("prepared tables cover %d windows, want %d", len(mt.prepared), len(mt.windows))
	}
	for i, w := range mt.windows {
		pi := mt.preparedFor(w)
		if pi != mt.preparedAt(int32(i)) {
			t.Fatalf("window %d resolves to a different Prepared than the shared slot", i)
		}
		if pi.WindowLen() != len(w.Data) {
			t.Fatalf("window %d: Prepared length %d, window length %d", i, pi.WindowLen(), len(w.Data))
		}
	}
	// Slots are built once: resolving a window again returns the identical
	// Prepared, and a second init keeps the same slot array.
	slots := &mt.prepared[0]
	for i, w := range mt.windows {
		if mt.preparedFor(w) != mt.preparedAt(int32(i)) {
			t.Fatalf("window %d: second resolution built a new Prepared", i)
		}
	}
	mt.preparedInit()
	if &mt.prepared[0] != slots {
		t.Fatal("preparedInit rebuilt the slot array")
	}
}

// Pin the maxBatchProbes derivation: the tuned constant is the ceiling
// (small indexes), the floor engages on huge indexes, the formula holds in
// between, and the chunk size never grows with the index.
func TestMaxBatchProbesForBounds(t *testing.T) {
	if got := maxBatchProbesFor(0); got != maxBatchProbes {
		t.Errorf("maxBatchProbesFor(0) = %d, want ceiling %d", got, maxBatchProbes)
	}
	if got := maxBatchProbesFor(100); got != maxBatchProbes {
		t.Errorf("maxBatchProbesFor(100) = %d, want ceiling %d", got, maxBatchProbes)
	}
	if got := maxBatchProbesFor(1 << 22); got != minBatchProbes {
		t.Errorf("maxBatchProbesFor(4M) = %d, want floor %d", got, minBatchProbes)
	}
	// Mid-range: the cache-budget formula, inside the clamp.
	nodes := 2000
	want := batchCacheBudget / (batchProbeNodeBytes * nodes)
	if got := maxBatchProbesFor(nodes); got != want {
		t.Errorf("maxBatchProbesFor(%d) = %d, want %d", nodes, got, want)
	}
	if want <= minBatchProbes || want >= maxBatchProbes {
		t.Errorf("tuning-workload derivation %d escaped the clamp [%d, %d]", want, minBatchProbes, maxBatchProbes)
	}
	prev := maxBatchProbesFor(1)
	for _, nodes := range []int{10, 100, 1000, 10_000, 100_000, 1_000_000} {
		cur := maxBatchProbesFor(nodes)
		if cur > prev {
			t.Errorf("maxBatchProbesFor not monotone: %d nodes → %d, fewer nodes → %d", nodes, cur, prev)
		}
		if cur < minBatchProbes || cur > maxBatchProbes {
			t.Errorf("maxBatchProbesFor(%d) = %d outside [%d, %d]", nodes, cur, minBatchProbes, maxBatchProbes)
		}
		prev = cur
	}
}

// The kernel evaluator must price mixed groups correctly even when probes
// arrive interleaved and partially decided: compare a refnet kernel
// traversal against the brute linear filter on a measure with distinct
// per-length distances (ERP, whose prefix distances vary smoothly).
func TestKernelTraversalERPMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewPCG(29, 2900))
	mkSeq := func(n int) seq.Sequence[float64] {
		s := make(seq.Sequence[float64], n)
		for i := range s {
			s[i] = rng.Float64() * 4
		}
		return s
	}
	db := []seq.Sequence[float64]{mkSeq(60), mkSeq(60), mkSeq(60)}
	q := mkSeq(24)
	p := Params{Lambda: 8, Lambda0: 2}
	m := dist.ERPMeasure(dist.AbsDiff, 0)
	net, err := NewMatcher(m, Config{Params: p, Index: IndexRefNet}, db)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := NewMatcher(m, Config{Params: p, Index: IndexLinearScan}, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.5, 1.5, 3} {
		got := net.FilterHits(q, eps)
		want := lin.FilterHits(q, eps)
		gotSet := map[string]bool{}
		for _, h := range got {
			gotSet[h.Window.String()+h.Segment.String()] = true
		}
		if len(got) != len(want) {
			t.Fatalf("eps=%v: refnet kernel %d hits, linear %d", eps, len(got), len(want))
		}
		for _, h := range want {
			if !gotSet[h.Window.String()+h.Segment.String()] {
				t.Fatalf("eps=%v: linear hit %v/%v missing from refnet kernel results", eps, h.Window, h.Segment)
			}
		}
	}
}
