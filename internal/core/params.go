package core

import (
	"fmt"

	"repro/internal/dist"
)

// Params carries the two user-level parameters of the framework.
type Params struct {
	// Lambda (λ) is the minimum meaningful match length: both subsequences
	// of a reported pair must have at least λ elements. Database sequences
	// are partitioned into windows of length l = λ/2 (Lemma 2 requires
	// l ≤ λ/2 for the filter to be lossless).
	Lambda int
	// Lambda0 (λ0) bounds the temporal shift between matched subsequences:
	// their lengths may differ by at most λ0, and query segments of
	// lengths λ/2−λ0 … λ/2+λ0 are matched against database windows.
	Lambda0 int
}

// WindowLen returns the database window length l = λ/2.
func (p Params) WindowLen() int { return p.Lambda / 2 }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Lambda < 2 {
		return fmt.Errorf("core: lambda must be at least 2, got %d", p.Lambda)
	}
	if p.Lambda0 < 0 {
		return fmt.Errorf("core: lambda0 must be non-negative, got %d", p.Lambda0)
	}
	if p.Lambda0 >= p.WindowLen() {
		return fmt.Errorf("core: lambda0 (%d) must be smaller than the window length λ/2 (%d)",
			p.Lambda0, p.WindowLen())
	}
	return nil
}

// IndexKind selects the metric-index backend for the window filter.
type IndexKind int

const (
	// IndexRefNet uses the paper's reference net (the default).
	IndexRefNet IndexKind = iota
	// IndexCoverTree uses the cover-tree baseline.
	IndexCoverTree
	// IndexMV uses reference-based indexing with Maximum-Variance
	// reference selection.
	IndexMV
	// IndexLinearScan compares every segment against every window. It is
	// the only backend valid for consistent-but-non-metric distances
	// (DTW); it still enjoys the framework's O(|Q||X|) filtering bound.
	IndexLinearScan
)

// String names the backend.
func (k IndexKind) String() string {
	switch k {
	case IndexRefNet:
		return "refnet"
	case IndexCoverTree:
		return "covertree"
	case IndexMV:
		return "mv"
	case IndexLinearScan:
		return "linear"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// Config configures a Matcher.
type Config struct {
	Params Params
	// Index selects the window-filter backend (default IndexRefNet).
	Index IndexKind
	// Base is ǫ′ for the reference net / cover tree (default 1).
	Base float64
	// MaxParents is the reference net's nummax cap (0 = unlimited).
	MaxParents int
	// MVRefs is the reference count k for IndexMV (default 5, the
	// paper's MV-5).
	MVRefs int
	// Seed seeds MV reference selection.
	Seed uint64
}

func (c *Config) defaults() {
	if c.Base == 0 {
		c.Base = 1
	}
	if c.MVRefs == 0 {
		c.MVRefs = 5
	}
}

// validateMeasure checks measure/config compatibility: the framework's
// filtering is lossless only for consistent distances (Lemma 2), metric
// indexes are sound only for metric distances (Section 3.3), and lock-step
// distances admit no temporal shift.
func validateMeasure[E any](m dist.Measure[E], cfg Config) error {
	if !m.Props.Consistent {
		return fmt.Errorf("core: distance %q is not consistent; the framework's filter would miss matches (Definition 1)", m.Name)
	}
	if !m.Props.Metric && cfg.Index != IndexLinearScan {
		return fmt.Errorf("core: distance %q is not a metric; index %q would prune incorrectly — use IndexLinearScan", m.Name, cfg.Index)
	}
	if m.Props.LockStep && cfg.Params.Lambda0 != 0 {
		return fmt.Errorf("core: lock-step distance %q requires lambda0 = 0, got %d", m.Name, cfg.Params.Lambda0)
	}
	return nil
}
