package core

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dist"
)

// The streaming submit path must return results bit-identical to the
// sequential per-query path and the batch-barrier path, on every index
// backend, for all four query types — the serving daemon's answers are
// exactly the library's.
func TestStreamMatchesSequentialAllBackends(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(31, 3100))
	db, qs := batchQueries(rng, 7)
	const eps = 0.5
	nopts := NearestOptions{EpsMax: 4, EpsInc: 0.5}
	ctx := context.Background()
	for _, kind := range []IndexKind{IndexRefNet, IndexCoverTree, IndexMV, IndexLinearScan} {
		mt, err := NewMatcher(lev, Config{Params: p, Index: kind, MVRefs: 3}, db)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		wantHits := mt.FilterHitsBatch(qs, eps)
		wantAll := mt.FindAllBatch(qs, eps)
		wantLong, wantLongOK := mt.LongestBatch(qs, eps)
		wantNear := make([]Match, len(qs))
		wantNearOK := make([]bool, len(qs))
		for i, q := range qs {
			wantNear[i], wantNearOK[i] = mt.Nearest(q, nopts)
		}
		pool := NewQueryPool(mt, 3)
		fHits := make([]*Future[[]Hit[byte]], len(qs))
		fAll := make([]*Future[[]Match], len(qs))
		fLong := make([]*Future[QueryResult], len(qs))
		fNear := make([]*Future[QueryResult], len(qs))
		for i, q := range qs {
			fHits[i] = pool.SubmitFilter(ctx, q, eps)
			fAll[i] = pool.Submit(ctx, q, eps)
			fLong[i] = pool.SubmitLongest(ctx, q, eps)
			fNear[i] = pool.SubmitNearest(ctx, q, nopts)
		}
		for i := range qs {
			hits, err := fHits[i].Await(ctx)
			if err != nil {
				t.Fatalf("%v query %d: SubmitFilter: %v", kind, i, err)
			}
			if len(hits) != len(wantHits[i]) {
				t.Fatalf("%v query %d: stream %d hits, batch %d", kind, i, len(hits), len(wantHits[i]))
			}
			for j := range hits {
				if hits[j].Window.String() != wantHits[i][j].Window.String() ||
					hits[j].Segment.String() != wantHits[i][j].Segment.String() {
					t.Fatalf("%v query %d hit %d: stream %v/%v, batch %v/%v", kind, i, j,
						hits[j].Window, hits[j].Segment, wantHits[i][j].Window, wantHits[i][j].Segment)
				}
			}
			ms, err := fAll[i].Await(ctx)
			if err != nil {
				t.Fatalf("%v query %d: Submit: %v", kind, i, err)
			}
			if len(ms) != len(wantAll[i]) {
				t.Fatalf("%v query %d: stream %d matches, batch %d", kind, i, len(ms), len(wantAll[i]))
			}
			for j := range ms {
				if ms[j] != wantAll[i][j] {
					t.Fatalf("%v query %d match %d: stream %v, batch %v", kind, i, j, ms[j], wantAll[i][j])
				}
			}
			lr, err := fLong[i].Await(ctx)
			if err != nil {
				t.Fatalf("%v query %d: SubmitLongest: %v", kind, i, err)
			}
			if lr.Found != wantLongOK[i] || (lr.Found && lr.Match != wantLong[i]) {
				t.Fatalf("%v query %d: stream Longest (%v,%v), batch (%v,%v)", kind, i, lr.Match, lr.Found, wantLong[i], wantLongOK[i])
			}
			nr, err := fNear[i].Await(ctx)
			if err != nil {
				t.Fatalf("%v query %d: SubmitNearest: %v", kind, i, err)
			}
			if nr.Found != wantNearOK[i] || (nr.Found && nr.Match != wantNear[i]) {
				t.Fatalf("%v query %d: stream Nearest (%v,%v), sequential (%v,%v)", kind, i, nr.Match, nr.Found, wantNear[i], wantNearOK[i])
			}
		}
		pool.Close()
	}
}

// claimLocked is the coalescing scheduler's core: a claim must take the
// head job plus only key-compatible jobs, respect the self-balancing
// limit, and preserve the order of everything it leaves behind.
func TestStreamClaimGroupsByKey(t *testing.T) {
	mk := func(kind queryKind, eps float64) *streamJob[byte] {
		return &streamJob[byte]{kind: kind, eps: eps, ctx: context.Background()}
	}
	var s streamState[byte]
	a1, a2, a3 := mk(kindFindAll, 2), mk(kindFindAll, 2), mk(kindFindAll, 2)
	b1 := mk(kindFindAll, 3) // same kind, different radius: not coalescable
	c1 := mk(kindFilter, 2)  // different kind: not coalescable
	s.queue = []*streamJob[byte]{a1, b1, a2, c1, a3}
	claimed := s.claimLocked(1, 64, nil)
	if len(claimed) != 3 || claimed[0] != a1 || claimed[1] != a2 || claimed[2] != a3 {
		t.Fatalf("claim = %v, want [a1 a2 a3]", claimed)
	}
	if len(s.queue) != 2 || s.queue[0] != b1 || s.queue[1] != c1 {
		t.Fatalf("left behind %v, want [b1 c1] in order", s.queue)
	}
	// The limit splits a burst across workers: with 4 workers and 8 queued
	// jobs, one claim takes 2.
	s.queue = nil
	for i := 0; i < 8; i++ {
		s.queue = append(s.queue, mk(kindFindAll, 2))
	}
	claimed = s.claimLocked(4, 64, nil)
	if len(claimed) != 2 {
		t.Fatalf("claim of 8 over 4 workers took %d jobs, want 2", len(claimed))
	}
	// The coalescing cap bounds a claim regardless of queue depth.
	s.queue = nil
	for i := 0; i < 10; i++ {
		s.queue = append(s.queue, mk(kindLongest, 1))
	}
	claimed = s.claimLocked(1, 4, nil)
	if len(claimed) != 4 {
		t.Fatalf("capped claim took %d jobs, want 4", len(claimed))
	}
	// Nearest jobs group by identical options only.
	n1 := &streamJob[byte]{kind: kindNearest, opts: NearestOptions{EpsMax: 4, EpsInc: 1}, ctx: context.Background()}
	n2 := &streamJob[byte]{kind: kindNearest, opts: NearestOptions{EpsMax: 4, EpsInc: 1}, ctx: context.Background()}
	n3 := &streamJob[byte]{kind: kindNearest, opts: NearestOptions{EpsMax: 8, EpsInc: 1}, ctx: context.Background()}
	s.queue = []*streamJob[byte]{n1, n3, n2}
	claimed = s.claimLocked(1, 64, nil)
	if len(claimed) != 2 || claimed[0] != n1 || claimed[1] != n2 {
		t.Fatalf("nearest claim = %v, want [n1 n2]", claimed)
	}
}

// A burst of submissions must actually coalesce into shared batched calls:
// with one worker, claims taken while the worker is busy batch the backlog,
// so the engine runs far fewer batches than submissions.
func TestStreamCoalescesBurst(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(37, 3700))
	db, qs := batchQueries(rng, 8)
	mt, err := NewMatcher(lev, Config{Params: p}, db)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewQueryPool(mt, 1)
	defer pool.Close()
	ctx := context.Background()
	const rounds = 8
	futures := make([]*Future[[]Match], 0, rounds*len(qs))
	for r := 0; r < rounds; r++ {
		for _, q := range qs {
			futures = append(futures, pool.Submit(ctx, q, 0.5))
		}
	}
	for _, f := range futures {
		if _, err := f.Await(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := pool.StreamStats()
	if st.Completed != int64(len(futures)) {
		t.Fatalf("completed %d of %d submissions", st.Completed, len(futures))
	}
	if st.Batches >= st.Completed {
		t.Fatalf("no coalescing: %d batches for %d submissions", st.Batches, st.Completed)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("max batch %d, want >= 2", st.MaxBatch)
	}
}

// Future semantics: Await honours its own context but a completed future
// always reports its result, and Done unblocks selects.
func TestFutureAwait(t *testing.T) {
	f := newFuture[int]()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Await(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Await on pending future with cancelled ctx: err = %v, want Canceled", err)
	}
	f.complete(7, nil)
	select {
	case <-f.Done():
	default:
		t.Fatal("Done not closed after complete")
	}
	if v, err := f.Await(cancelled); err != nil || v != 7 {
		t.Fatalf("Await on completed future = (%v, %v), want (7, nil)", v, err)
	}
}

// A submission whose context is already cancelled resolves to the context
// error without index work; submissions cancelled later still resolve (to
// either their result or the cancellation), and the engine fully drains.
func TestStreamContextCancellation(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(41, 4100))
	db, qs := batchQueries(rng, 6)
	mt, err := NewMatcher(lev, Config{Params: p}, db)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewQueryPool(mt, 2)
	defer pool.Close()

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	f := pool.Submit(dead, qs[0], 0.5)
	if _, err := f.Await(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled submit resolved to %v, want Canceled", err)
	}

	ctx, cancelMid := context.WithCancel(context.Background())
	futures := make([]*Future[[]Match], 0, 64)
	for r := 0; r < 64; r++ {
		futures = append(futures, pool.Submit(ctx, qs[r%len(qs)], 0.5))
		if r == 20 {
			cancelMid()
		}
	}
	cancelMid()
	var ok, cancelledN int
	for _, f := range futures {
		if _, err := f.Await(context.Background()); err == nil {
			ok++
		} else if errors.Is(err, context.Canceled) {
			cancelledN++
		} else {
			t.Fatalf("unexpected error %v", err)
		}
	}
	if ok+cancelledN != len(futures) {
		t.Fatalf("resolved %d+%d of %d futures", ok, cancelledN, len(futures))
	}
	if cancelledN == 0 {
		t.Fatal("no submission observed the cancellation")
	}
	// The engine drains: in-flight returns to zero.
	deadline := time.Now().Add(5 * time.Second)
	for pool.StreamStats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("engine did not drain: %+v", pool.StreamStats())
		}
		time.Sleep(time.Millisecond)
	}
}

// Close drains accepted submissions before the workers exit, rejects
// later submissions with ErrPoolClosed, and is idempotent. The batch
// barrier methods keep working on a closed pool.
func TestStreamCloseDrainsAndRejects(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(43, 4300))
	db, qs := batchQueries(rng, 6)
	mt, err := NewMatcher(lev, Config{Params: p}, db)
	if err != nil {
		t.Fatal(err)
	}
	want := mt.FindAllBatch(qs, 0.5)
	pool := NewQueryPool(mt, 2)
	ctx := context.Background()
	futures := make([]*Future[[]Match], len(qs))
	for i, q := range qs {
		futures[i] = pool.Submit(ctx, q, 0.5)
	}
	pool.Close()
	for i, f := range futures {
		ms, err := f.Await(ctx)
		if err != nil {
			t.Fatalf("accepted submission %d failed after Close: %v", i, err)
		}
		if len(ms) != len(want[i]) {
			t.Fatalf("query %d: %d matches after Close, want %d", i, len(ms), len(want[i]))
		}
	}
	if _, err := pool.Submit(ctx, qs[0], 0.5).Await(ctx); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after Close resolved to %v, want ErrPoolClosed", err)
	}
	pool.Close() // idempotent
	got := pool.FindAll(qs, 0.5)
	for i := range qs {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("batch barrier after Close: query %d got %d matches, want %d", i, len(got[i]), len(want[i]))
		}
	}
}

// A pool used purely through the batch-barrier methods closes without
// ever starting the streaming workers, and still rejects submissions
// afterwards.
func TestStreamCloseWithoutUse(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	rng := rand.New(rand.NewPCG(59, 5900))
	db, qs := batchQueries(rng, 3)
	mt, err := NewMatcher(dist.LevenshteinMeasure[byte](), Config{Params: p}, db)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewQueryPool(mt, 2)
	pool.FindAll(qs, 0.5) // batch barrier only
	pool.Close()
	st := pool.StreamStats()
	if st.Submitted != 0 || st.Completed != 0 {
		t.Fatalf("batch-only pool shows stream activity: %+v", st)
	}
	ctx := context.Background()
	if _, err := pool.Submit(ctx, qs[0], 0.5).Await(ctx); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after batch-only Close resolved to %v, want ErrPoolClosed", err)
	}
}

// Stress the engine under the race detector: many goroutines submitting
// all four query types while the pool drains, with cancellations and a
// concurrent batch-barrier user mixed in.
func TestStreamStressRace(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(47, 4700))
	db, qs := batchQueries(rng, 8)
	const eps = 0.5
	mt, err := NewMatcher(lev, Config{Params: p}, db)
	if err != nil {
		t.Fatal(err)
	}
	want := mt.FindAllBatch(qs, eps)
	pool := NewQueryPool(mt, 3, WithQueueDepth(16))
	iters := 12
	if testing.Short() {
		iters = 4
	}
	var wg sync.WaitGroup
	var bad atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(qs)
				switch g % 4 {
				case 0:
					ms, err := pool.Submit(ctx, qs[i], eps).Await(ctx)
					if err != nil || len(ms) != len(want[i]) {
						bad.Add(1)
					}
				case 1:
					if _, err := pool.SubmitFilter(ctx, qs[i], eps).Await(ctx); err != nil {
						bad.Add(1)
					}
				case 2:
					cctx, cancel := context.WithCancel(ctx)
					f := pool.SubmitLongest(cctx, qs[i], eps)
					if it%2 == 0 {
						cancel()
					}
					if _, err := f.Await(ctx); err != nil && !errors.Is(err, context.Canceled) {
						bad.Add(1)
					}
					cancel()
				case 3:
					// Batch-barrier calls share the matcher with the stream.
					got := pool.FindAll(qs[:2], eps)
					if len(got[0]) != len(want[0]) {
						bad.Add(1)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d inconsistent results under stress", bad.Load())
	}
	pool.Close()
	st := pool.StreamStats()
	if st.InFlight != 0 || st.Pending != 0 {
		t.Fatalf("engine not drained after Close: %+v", st)
	}
	if st.Completed+st.Cancelled+st.Rejected+st.Shed+st.Expired+st.Crashed != st.Submitted {
		t.Fatalf("submission accounting leaks: %+v", st)
	}
}

// The lazily-built prepared tables must be identical to building every
// window's table up front, and a selective query on a hierarchical backend
// must *not* touch every window — the point of per-slot laziness.
func TestLazyPreparedIdentityAndSparseness(t *testing.T) {
	rng := rand.New(rand.NewPCG(53, 5300))
	db, qs := batchQueries(rng, 4)
	p := Params{Lambda: 6, Lambda0: 1}
	const eps = 0.5

	prepares := func(m *dist.Measure[byte]) *atomic.Int64 {
		var n atomic.Int64
		inner := m.Prepare
		m.Prepare = func(w []byte) dist.Prepared[byte] {
			n.Add(1)
			return inner(w)
		}
		return &n
	}

	lazyM := dist.LevenshteinMeasure[byte]()
	lazyCount := prepares(&lazyM)
	lazy, err := NewMatcher(lazyM, Config{Params: p, Index: IndexRefNet}, db)
	if err != nil {
		t.Fatal(err)
	}
	eagerM := dist.LevenshteinMeasure[byte]()
	eagerCount := prepares(&eagerM)
	eager, err := NewMatcher(eagerM, Config{Params: p, Index: IndexRefNet}, db)
	if err != nil {
		t.Fatal(err)
	}
	// Force the eager path: build every slot before the first query.
	eager.preparedInit()
	for i := range eager.windows {
		eager.preparedAt(int32(i))
	}
	if got := eagerCount.Load(); got != int64(len(eager.windows)) {
		t.Fatalf("eager build prepared %d windows, want %d", got, len(eager.windows))
	}

	for _, q := range qs {
		lazyHits := lazy.FilterHits(q, eps)
		eagerHits := eager.FilterHits(q, eps)
		if len(lazyHits) != len(eagerHits) {
			t.Fatalf("lazy %d hits, eager %d", len(lazyHits), len(eagerHits))
		}
		for j := range lazyHits {
			if lazyHits[j].Window.String() != eagerHits[j].Window.String() ||
				lazyHits[j].Segment.String() != eagerHits[j].Segment.String() {
				t.Fatalf("hit %d: lazy %v/%v, eager %v/%v", j,
					lazyHits[j].Window, lazyHits[j].Segment, eagerHits[j].Window, eagerHits[j].Segment)
			}
		}
	}
	built := lazyCount.Load()
	if built == 0 {
		t.Fatal("kernel traversal built no prepared tables (did the kernel path run?)")
	}
	if built >= int64(len(lazy.windows)) {
		t.Fatalf("lazy path built %d of %d windows — not lazy", built, len(lazy.windows))
	}
	// Each touched window is prepared exactly once, even after more queries.
	for _, q := range qs {
		lazy.FilterHits(q, eps)
	}
	if again := lazyCount.Load(); again != built {
		t.Fatalf("repeat queries rebuilt prepared tables: %d → %d", built, again)
	}
}
