package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/seq"
)

// Batched query engine. Two layers cooperate:
//
//   - Matcher.FilterHitsBatch / FindAllBatch / LongestBatch answer a slice
//     of queries in one sequential pass, concatenating every query's
//     segments into a single refnet.BatchRange traversal — each index node's
//     children are walked once for the whole query set instead of once per
//     segment per query (Section 7's "many queries ... in a single
//     traversal").
//   - QueryPool fans a query slice out over a fixed set of worker
//     goroutines, each of which answers its chunk with the batched
//     sequential path. A Matcher is safe for concurrent queries (the filter
//     scratch is pooled, the counters are atomic), so the pool needs no
//     locking beyond the chunk cursor.

// FilterHitsBatch runs the filtering steps for many queries at once,
// sharing one index traversal across all of their segments on backends
// that support it. Result i is exactly FilterHits(qs[i], eps).
func (mt *Matcher[E]) FilterHitsBatch(qs []seq.Sequence[E], eps float64) [][]Hit[E] {
	mt.batchCalls.Add(1)
	mt.batchQueries.Add(int64(len(qs)))
	out := make([][]Hit[E], len(qs))
	br, ok := mt.index.(batchRanger[E])
	if !ok || mt.linear != nil {
		// No shared traversal to exploit (or the linear backend, whose
		// incremental kernels already amortise across segments): answer
		// query by query on pooled scratch.
		for i, q := range qs {
			out[i] = mt.FilterHits(q, eps)
		}
		return out
	}
	// Chunk the query set so the per-probe traversal state (flags plus
	// computed distances per index node) stays cache-resident: one huge
	// BatchRange over thousands of probes touches tens of megabytes of
	// per-query state at random and runs slower than the same probes in
	// cache-sized groups.
	sc := mt.getScratch()
	defer mt.putScratch(sc)
	bre, kernel := mt.index.(batchRangerEval[E])
	kernel = kernel && mt.kernelTraversal()
	probeCap := maxBatchProbesFor(mt.index.Len())
	lambda, lambda0 := mt.cfg.Params.Lambda, mt.cfg.Params.Lambda0
	for lo := 0; lo < len(qs); {
		sc.segs = sc.segs[:0]
		starts := []int{0}
		hi := lo
		for hi < len(qs) && (hi == lo || len(sc.segs) < probeCap) {
			sc.segs = seq.AppendSegmentsFor(sc.segs, qs[hi], lambda, lambda0)
			starts = append(starts, len(sc.segs))
			hi++
		}
		sc.probes = sc.probes[:0]
		for _, s := range sc.segs {
			sc.probes = append(sc.probes, seq.Window[E]{SeqID: -1, Start: s.Start, Data: s.Data})
		}
		var results [][]seq.Window[E]
		if kernel {
			// Kernel-fed traversal: group probes by (query, start offset)
			// so one streamed kernel pass prices all 2λ0+1 lengths at an
			// offset. Group keys only need to be distinct, so queries
			// partition the key space by their segment-start ranges.
			sc.keval.bind(mt, sc.probes)
			gbase := int32(0)
			for i := lo; i < hi; i++ {
				for si := starts[i-lo]; si < starts[i-lo+1]; si++ {
					sc.keval.groupOf[si] = gbase + int32(sc.segs[si].Start)
				}
				gbase += int32(len(qs[i]))
			}
			results = bre.BatchRangeEval(sc.probes, eps, &sc.keval)
		} else {
			results = br.BatchRange(sc.probes, eps)
		}
		for i := lo; i < hi; i++ {
			var hits []Hit[E]
			for si := starts[i-lo]; si < starts[i-lo+1]; si++ {
				for _, w := range results[si] {
					hits = append(hits, Hit[E]{Window: w, Segment: sc.segs[si]})
				}
			}
			out[i] = hits
		}
		lo = hi
	}
	return out
}

// maxBatchProbes and minBatchProbes are the ceiling and floor of the
// shared-traversal chunk size. The ceiling is the value tuned on the
// protein workload (2000 windows: a 2000-probe traversal ran ~1.5× slower
// than the same probes in ~250-probe groups); the floor keeps enough
// probes per traversal for sharing to pay off on very large indexes.
const (
	maxBatchProbes = 256
	minBatchProbes = 32
	// batchCacheBudget estimates the cache the per-probe traversal state
	// may occupy — roughly an L2/L3 share per core on current hardware.
	batchCacheBudget = 4 << 20
	// batchProbeNodeBytes is the per-probe, per-index-node traversal state:
	// a flag byte plus a float64 computed distance (refnet.queryState).
	batchProbeNodeBytes = 9
)

// maxBatchProbesFor derives the shared-traversal chunk size from the index
// size: as many probes as keep their combined traversal state inside the
// cache budget, clamped to [minBatchProbes, maxBatchProbes]. On the tuning
// workload (2000 windows) the derivation lands where the measured constant
// did; much larger indexes shrink the chunk instead of thrashing.
func maxBatchProbesFor(nodes int) int {
	if nodes <= 0 {
		return maxBatchProbes
	}
	probes := batchCacheBudget / (batchProbeNodeBytes * nodes)
	if probes > maxBatchProbes {
		return maxBatchProbes
	}
	if probes < minBatchProbes {
		return minBatchProbes
	}
	return probes
}

// FindAllBatch answers query Type I for every query in qs; result i is
// exactly FindAll(qs[i], eps).
func (mt *Matcher[E]) FindAllBatch(qs []seq.Sequence[E], eps float64) [][]Match {
	hits := mt.FilterHitsBatch(qs, eps)
	out := make([][]Match, len(qs))
	for i, q := range qs {
		out[i] = mt.verifier.verifyAll(q, hits[i], eps)
	}
	return out
}

// LongestBatch answers query Type II for every query in qs; entry i is
// exactly Longest(qs[i], eps).
func (mt *Matcher[E]) LongestBatch(qs []seq.Sequence[E], eps float64) ([]Match, []bool) {
	hits := mt.FilterHitsBatch(qs, eps)
	matches := make([]Match, len(qs))
	found := make([]bool, len(qs))
	for i, q := range qs {
		matches[i], found[i] = mt.verifier.verifyLongest(q, hits[i], eps)
	}
	return matches, found
}

// QueryPool drives a Matcher from a fixed set of worker goroutines,
// answering large query batches with multi-core throughput. It has two
// faces over one worker budget:
//
//   - The batch-barrier methods (FilterHits, FindAll, Longest, Nearest)
//     take a complete query slice and block until every answer is back.
//     Workers claim contiguous query chunks off a shared cursor and answer
//     each chunk with the batched sequential path, so index-traversal
//     sharing and parallelism compose. These methods are stateless between
//     calls and safe for concurrent use.
//   - The streaming methods (Submit, SubmitFilter, SubmitLongest,
//     SubmitNearest — see stream.go) accept queries one at a time and
//     return per-query Futures, answering them from a long-lived worker
//     set that coalesces concurrent submissions into the same shared
//     traversals. This is the serving shape: bounded in-flight queue,
//     context cancellation, graceful Close.
//
// Construct once and reuse; both faces may be used concurrently.
//
// A pool built with NewQueryPool serves one fixed matcher. A pool built
// with NewQueryPoolView resolves its matcher through a MatcherView at
// every entry point instead, which is how the store's serving tier gets
// zero-downtime swaps: each barrier call or streaming claim pins the
// current matcher (and its read guard) for exactly its own duration, so a
// swap or mutation waits only for claims already in flight.
type QueryPool[E any] struct {
	mt          *Matcher[E]
	view        MatcherView[E]
	workers     int
	queueDepth  int
	maxCoalesce int
	shedPolicy  ShedPolicy

	// streaming is the lazily-started engine behind the Submit methods.
	streaming streamState[E]
}

// MatcherView resolves the matcher to answer one unit of query work with,
// plus a release function invoked when that unit completes. The store
// implements it as "RLock; return current matcher, RUnlock on release",
// making every query a guarded reader of a consistent index view.
type MatcherView[E any] func() (*Matcher[E], func())

// acquire pins a matcher for one unit of query work. The returned release
// must be called exactly once, after the last touch of the matcher.
func (p *QueryPool[E]) acquire() (*Matcher[E], func()) {
	if p.view != nil {
		return p.view()
	}
	return p.mt, func() {}
}

// poolConfig carries the streaming-engine knobs a PoolOption may set —
// the one place option fields live, so an option cannot silently set a
// field the pool constructor does not read.
type poolConfig struct {
	queueDepth  int
	maxCoalesce int
	shedPolicy  ShedPolicy
}

// PoolOption tunes a QueryPool beyond its worker count.
type PoolOption func(*poolConfig)

// WithQueueDepth bounds the streaming engine's in-flight submissions
// (submitted but not completed); Submit blocks once the bound is reached.
// The default is 1024. Values < 1 are ignored.
func WithQueueDepth(n int) PoolOption {
	return func(c *poolConfig) {
		if n >= 1 {
			c.queueDepth = n
		}
	}
}

// WithMaxCoalesce caps how many streaming submissions one worker claim may
// answer in a single batched call (default 64). Raising it trades the
// latency of a claim's first member for more traversal sharing under very
// large bursts; FilterHitsBatch re-chunks internally either way, so
// throughput is insensitive beyond a few dozen. Values < 1 are ignored.
func WithMaxCoalesce(n int) PoolOption {
	return func(c *poolConfig) {
		if n >= 1 {
			c.maxCoalesce = n
		}
	}
}

// NewQueryPool returns a pool of the given concurrency over mt; workers
// ≤ 0 selects GOMAXPROCS. Options tune the streaming engine; the batch
// methods ignore them.
func NewQueryPool[E any](mt *Matcher[E], workers int, opts ...PoolOption) *QueryPool[E] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := poolConfig{queueDepth: DefaultQueueDepth, maxCoalesce: defaultMaxCoalesce}
	for _, o := range opts {
		o(&cfg)
	}
	return &QueryPool[E]{
		mt: mt, workers: workers,
		queueDepth:  cfg.queueDepth,
		maxCoalesce: cfg.maxCoalesce,
		shedPolicy:  cfg.shedPolicy,
	}
}

// NewQueryPoolView is NewQueryPool over a MatcherView instead of a fixed
// matcher: every batch-barrier call and every streaming claim resolves the
// matcher afresh and holds its guard only for that unit of work. view must
// not return nil.
func NewQueryPoolView[E any](view MatcherView[E], workers int, opts ...PoolOption) *QueryPool[E] {
	p := NewQueryPool[E](nil, workers, opts...)
	p.view = view
	return p
}

// Workers reports the pool's concurrency.
func (p *QueryPool[E]) Workers() int { return p.workers }

// run partitions [0, n) into chunks and feeds them to the workers.
func (p *QueryPool[E]) run(n int, process func(lo, hi int)) {
	if n == 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	// Aim for several chunks per worker so stragglers re-balance, while
	// keeping chunks big enough for the batched path to share traversal —
	// a floor of min(n/workers, 4) stops small batches from degenerating
	// to one query per chunk (which would silently disable sharing)
	// without idling workers.
	chunk := n / (workers * 4)
	if floor := min(n/workers, 4); chunk < floor {
		chunk = floor
	}
	if chunk < 1 {
		chunk = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				process(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// FilterHits runs the filtering steps for every query; result i is exactly
// Matcher.FilterHits(qs[i], eps).
func (p *QueryPool[E]) FilterHits(qs []seq.Sequence[E], eps float64) [][]Hit[E] {
	mt, release := p.acquire()
	defer release()
	out := make([][]Hit[E], len(qs))
	p.run(len(qs), func(lo, hi int) {
		copy(out[lo:hi], mt.FilterHitsBatch(qs[lo:hi], eps))
	})
	return out
}

// FindAll answers query Type I for every query; result i is exactly
// Matcher.FindAll(qs[i], eps).
func (p *QueryPool[E]) FindAll(qs []seq.Sequence[E], eps float64) [][]Match {
	mt, release := p.acquire()
	defer release()
	out := make([][]Match, len(qs))
	p.run(len(qs), func(lo, hi int) {
		copy(out[lo:hi], mt.FindAllBatch(qs[lo:hi], eps))
	})
	return out
}

// Longest answers query Type II for every query; entry i is exactly
// Matcher.Longest(qs[i], eps).
func (p *QueryPool[E]) Longest(qs []seq.Sequence[E], eps float64) ([]Match, []bool) {
	mt, release := p.acquire()
	defer release()
	matches := make([]Match, len(qs))
	found := make([]bool, len(qs))
	p.run(len(qs), func(lo, hi int) {
		m, f := mt.LongestBatch(qs[lo:hi], eps)
		copy(matches[lo:hi], m)
		copy(found[lo:hi], f)
	})
	return matches, found
}

// Nearest answers query Type III for every query; entry i is exactly
// Matcher.Nearest(qs[i], opts). Type III shares no traversal across
// queries (each runs its own radius search), so the pool contributes
// parallelism only.
func (p *QueryPool[E]) Nearest(qs []seq.Sequence[E], opts NearestOptions) ([]Match, []bool) {
	mt, release := p.acquire()
	defer release()
	matches := make([]Match, len(qs))
	found := make([]bool, len(qs))
	p.run(len(qs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			matches[i], found[i] = mt.Nearest(qs[i], opts)
		}
	})
	return matches, found
}
