package core

import (
	"fmt"

	"repro/internal/covertree"
	"repro/internal/dist"
	"repro/internal/metric"
	"repro/internal/refindex"
	"repro/internal/refnet"
	"repro/internal/seq"
)

// Match is a reported pair of similar subsequences: the query subsequence
// Q[QStart:QEnd) matches the database subsequence db[SeqID][XStart:XEnd)
// at distance Dist.
type Match struct {
	SeqID        int
	QStart, QEnd int
	XStart, XEnd int
	Dist         float64
}

// QLen returns the query subsequence length.
func (m Match) QLen() int { return m.QEnd - m.QStart }

// XLen returns the database subsequence length.
func (m Match) XLen() int { return m.XEnd - m.XStart }

// String renders the match for diagnostics.
func (m Match) String() string {
	return fmt.Sprintf("match{q[%d,%d) ~ x%d[%d,%d) δ=%.4f}", m.QStart, m.QEnd, m.SeqID, m.XStart, m.XEnd, m.Dist)
}

// Hit is a filtered segment↔window pair produced by steps 3–4 of the
// framework: the query segment matched the database window within the
// query radius.
type Hit[E any] struct {
	Window  seq.Window[E]
	Segment seq.Segment[E]
}

// windowIndex is the operation the framework needs from its filter
// backend.
type windowIndex[E any] interface {
	Range(q seq.Window[E], eps float64) []seq.Window[E]
	Len() int
}

// batchRanger is the optional batched-query fast path (implemented by the
// reference net).
type batchRanger[E any] interface {
	BatchRange(qs []seq.Window[E], eps float64) [][]seq.Window[E]
}

// Matcher is the subsequence-retrieval engine. Construct with NewMatcher,
// which runs the two offline steps (dataset windowing, index construction);
// the query methods FindAll, Longest and Nearest run the online steps.
// A Matcher is safe for concurrent queries.
type Matcher[E any] struct {
	measure dist.Measure[E]
	cfg     Config
	db      []seq.Sequence[E]
	windows []seq.Window[E]
	index   windowIndex[E]

	// counter wraps the window distance used by the index, for the
	// paper's distance-computation accounting.
	counter *metric.Counter[seq.Window[E]]
	// buildCalls is the number of distance computations spent on index
	// construction.
	buildCalls int64
	// verifier handles candidate generation + verification (step 5).
	verifier *verifier[E]
}

// NewMatcher builds a matcher over db: it validates the configuration,
// partitions every database sequence into windows of length λ/2 (step 1)
// and builds the window index (step 2).
func NewMatcher[E any](m dist.Measure[E], cfg Config, db []seq.Sequence[E]) (*Matcher[E], error) {
	cfg.defaults()
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if err := validateMeasure(m, cfg); err != nil {
		return nil, err
	}
	mt := &Matcher[E]{
		measure: m,
		cfg:     cfg,
		db:      db,
		windows: seq.PartitionAll(db, cfg.Params.WindowLen()),
	}
	mt.counter = metric.NewCounter(func(a, b seq.Window[E]) float64 {
		return m.Fn(a.Data, b.Data)
	})
	windowDist := mt.counter.Distance
	switch cfg.Index {
	case IndexRefNet:
		net := refnet.New(windowDist, refnet.WithBase(cfg.Base), refnet.WithMaxParents(cfg.MaxParents))
		for _, w := range mt.windows {
			net.Insert(w)
		}
		mt.index = net
	case IndexCoverTree:
		ct := covertree.New(windowDist, cfg.Base)
		for _, w := range mt.windows {
			ct.Insert(w)
		}
		mt.index = ct
	case IndexMV:
		if len(mt.windows) == 0 {
			return nil, fmt.Errorf("core: MV index requires a non-empty database")
		}
		mv, err := refindex.Build(mt.windows, cfg.MVRefs, windowDist, refindex.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		mt.index = mv
	case IndexLinearScan:
		ls := metric.NewLinearScan(windowDist)
		for _, w := range mt.windows {
			ls.Insert(w)
		}
		mt.index = ls
	default:
		return nil, fmt.Errorf("core: unknown index kind %v", cfg.Index)
	}
	mt.buildCalls = mt.counter.Calls()
	mt.counter.Reset()
	mt.verifier = newVerifier(m.Fn, cfg.Params, db)
	return mt, nil
}

// Params returns the matcher's framework parameters.
func (mt *Matcher[E]) Params() Params { return mt.cfg.Params }

// NumWindows reports how many database windows are indexed.
func (mt *Matcher[E]) NumWindows() int { return len(mt.windows) }

// Windows exposes the indexed windows (shared slice; do not mutate).
func (mt *Matcher[E]) Windows() []seq.Window[E] { return mt.windows }

// BuildDistanceCalls reports the distance computations spent building the
// index (offline cost).
func (mt *Matcher[E]) BuildDistanceCalls() int64 { return mt.buildCalls }

// FilterDistanceCalls reports the distance computations spent by the index
// on queries since the last ResetFilterCalls — the quantity Figures 8–11 of
// the paper compare against a full scan.
func (mt *Matcher[E]) FilterDistanceCalls() int64 { return mt.counter.Calls() }

// ResetFilterCalls zeroes the query-side distance counter.
func (mt *Matcher[E]) ResetFilterCalls() { mt.counter.Reset() }

// VerifyDistanceCalls reports distance computations spent in verification
// (step 5) since the matcher was built.
func (mt *Matcher[E]) VerifyDistanceCalls() int64 { return mt.verifier.calls.Load() }

// FilterHits runs the online filtering steps (3–4): it extracts every
// query segment of length λ/2−λ0 … λ/2+λ0 and range-queries the window
// index with each, returning all segment↔window pairs within eps. By
// Lemma 3, windows absent from the hit list cannot participate in any
// similar pair, which is what caps the framework at O(|Q||X|) segment
// comparisons.
func (mt *Matcher[E]) FilterHits(q seq.Sequence[E], eps float64) []Hit[E] {
	segs := seq.SegmentsFor(q, mt.cfg.Params.Lambda, mt.cfg.Params.Lambda0)
	if len(segs) == 0 {
		return nil
	}
	var hits []Hit[E]
	if br, ok := mt.index.(batchRanger[E]); ok {
		qs := make([]seq.Window[E], len(segs))
		for i, s := range segs {
			qs[i] = seq.Window[E]{SeqID: -1, Start: s.Start, Data: s.Data}
		}
		for i, wins := range br.BatchRange(qs, eps) {
			for _, w := range wins {
				hits = append(hits, Hit[E]{Window: w, Segment: segs[i]})
			}
		}
		return hits
	}
	for _, s := range segs {
		probe := seq.Window[E]{SeqID: -1, Start: s.Start, Data: s.Data}
		for _, w := range mt.index.Range(probe, eps) {
			hits = append(hits, Hit[E]{Window: w, Segment: s})
		}
	}
	return hits
}

// FindAll answers query Type I: it returns every pair of similar
// subsequences reachable from the per-hit candidate regions of Section 7 —
// pairs (SQ, SX) with |SQ| ≥ λ, |SX| ≥ λ, ||SQ|−|SX|| ≤ λ0 and
// δ(SQ,SX) ≤ eps. As in the paper, each hit's candidate region bounds the
// enumerated supersequences (SX start within λ/2 before its window, end
// within λ/2+λ/2 after, and correspondingly for SQ), so arbitrarily long
// matches are the domain of Longest (Type II); completeness is exact for
// pair lengths up to λ.
func (mt *Matcher[E]) FindAll(q seq.Sequence[E], eps float64) []Match {
	hits := mt.FilterHits(q, eps)
	return mt.verifier.verifyAll(q, hits, eps)
}

// Longest answers query Type II: among all similar pairs at radius eps it
// returns one maximising the query subsequence length |SQ|. It concatenates
// hits on consecutive windows into chains, then verifies candidates from
// the longest chain downwards, as in Section 7. The boolean reports whether
// any similar pair exists.
func (mt *Matcher[E]) Longest(q seq.Sequence[E], eps float64) (Match, bool) {
	hits := mt.FilterHits(q, eps)
	return mt.verifier.verifyLongest(q, hits, eps)
}

// NearestOptions tunes Nearest (query Type III).
type NearestOptions struct {
	// EpsMax is the largest radius considered; if no pair exists within
	// it, Nearest reports not found.
	EpsMax float64
	// EpsInc is the paper's ǫ_inc: the radius increment between
	// verification rounds, and the binary-search resolution. Choose a
	// small fraction of typical pairwise distances.
	EpsInc float64
}

// Nearest answers query Type III: it returns a pair minimising δ(SQ,SX)
// subject to the length constraints. Following Section 7 it binary-searches
// the minimal radius at which the filter produces any segment hit, then
// verifies, enlarging the radius by EpsInc until a pair is confirmed.
func (mt *Matcher[E]) Nearest(q seq.Sequence[E], opts NearestOptions) (Match, bool) {
	if opts.EpsMax <= 0 || opts.EpsInc <= 0 {
		return Match{}, false
	}
	hasHits := func(eps float64) bool { return len(mt.FilterHits(q, eps)) > 0 }
	if !hasHits(opts.EpsMax) {
		return Match{}, false
	}
	lo, hi := 0.0, opts.EpsMax
	if hasHits(0) {
		hi = 0
	}
	for hi-lo > opts.EpsInc {
		mid := lo + (hi-lo)/2
		if hasHits(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	for eps := hi; eps <= opts.EpsMax+opts.EpsInc/2; eps += opts.EpsInc {
		hits := mt.FilterHits(q, eps)
		if best, ok := mt.verifier.verifyNearest(q, hits, eps); ok {
			return best, true
		}
	}
	return Match{}, false
}
