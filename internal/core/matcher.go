package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/covertree"
	"repro/internal/dist"
	"repro/internal/metric"
	"repro/internal/refindex"
	"repro/internal/refnet"
	"repro/internal/seq"
)

// Match is a reported pair of similar subsequences: the query subsequence
// Q[QStart:QEnd) matches the database subsequence db[SeqID][XStart:XEnd)
// at distance Dist.
type Match struct {
	SeqID        int
	QStart, QEnd int
	XStart, XEnd int
	Dist         float64
}

// QLen returns the query subsequence length.
func (m Match) QLen() int { return m.QEnd - m.QStart }

// XLen returns the database subsequence length.
func (m Match) XLen() int { return m.XEnd - m.XStart }

// String renders the match for diagnostics.
func (m Match) String() string {
	return fmt.Sprintf("match{q[%d,%d) ~ x%d[%d,%d) δ=%.4f}", m.QStart, m.QEnd, m.SeqID, m.XStart, m.XEnd, m.Dist)
}

// Hit is a filtered segment↔window pair produced by steps 3–4 of the
// framework: the query segment matched the database window within the
// query radius.
type Hit[E any] struct {
	Window  seq.Window[E]
	Segment seq.Segment[E]
}

// windowIndex is the operation the framework needs from its filter
// backend.
type windowIndex[E any] interface {
	Range(q seq.Window[E], eps float64) []seq.Window[E]
	Len() int
}

// batchRanger is the optional batched-query fast path (implemented by the
// reference net).
type batchRanger[E any] interface {
	BatchRange(qs []seq.Window[E], eps float64) [][]seq.Window[E]
}

// existenceIndex is the optional existence-only fast path (implemented by
// the reference net and the linear scan): it stops at the first in-range
// window instead of materialising the full result set.
type existenceIndex[E any] interface {
	Exists(q seq.Window[E], eps float64) bool
}

// Matcher is the subsequence-retrieval engine. Construct with NewMatcher,
// which runs the two offline steps (dataset windowing, index construction);
// the query methods FindAll, Longest and Nearest run the online steps.
// A Matcher is safe for concurrent queries.
type Matcher[E any] struct {
	measure dist.Measure[E]
	cfg     Config
	db      []seq.Sequence[E]
	windows []seq.Window[E]
	index   windowIndex[E]

	// counter wraps the window distance used by the index, for the
	// paper's distance-computation accounting.
	counter *metric.Counter[seq.Window[E]]
	// buildCalls is the number of distance computations spent on index
	// construction.
	buildCalls int64
	// verifier handles candidate generation + verification (step 5).
	verifier *verifier[E]
	// linear is set when the backend is IndexLinearScan; the incremental
	// filter kernels need direct access to the window slice.
	linear *metric.LinearScan[seq.Window[E]]
	// net/ct/mv are the typed backend handles behind mt.index — the index
	// lifecycle (lifecycle.go) needs backend-specific operations (tracked
	// deletes, row removal, serialisation) the windowIndex face does not
	// carry. Exactly one is non-nil, matching cfg.Index.
	net *refnet.Net[seq.Window[E]]
	ct  *covertree.Tree[seq.Window[E]]
	mv  *refindex.Index[seq.Window[E]]
	// tracked maps each indexed window to its refnet node handle so
	// RetireSequence can Delete without searching (refnet backend only).
	tracked map[winKey]*refnet.Node[seq.Window[E]]
	// scratch pools per-query filter state (segment, probe and hit slices)
	// so concurrent queries allocate nothing per segment.
	scratch sync.Pool
	// batchCalls/batchQueries count FilterHitsBatch invocations and the
	// queries they carried — the serving tier's proof that its batch
	// endpoint actually amortises (many queries per shared traversal),
	// surfaced on /stats.
	batchCalls   atomic.Int64
	batchQueries atomic.Int64

	// prepared holds, per indexed window, the shared immutable half of the
	// measure's incremental kernel (Myers peq tables, edit base rows),
	// shared by every concurrent worker — the O(windows) half of the
	// kernel memory split. Slots are built lazily on first touch (per-slot
	// sync.Once), so a selective serving workload pays preprocessing only
	// for the windows its traversals actually visit; preparedOnce guards
	// the cheap slot-array and window→slot map construction. winIndex maps
	// a window back to its slot. See preparedAt (kerneleval.go).
	// Slots are pointers so the lifecycle paths (lifecycle.go) can grow and
	// compact the array without copying the per-slot sync.Once.
	preparedOnce sync.Once
	prepared     []*preparedSlot[E]
	winIndex     map[winKey]int32
}

// filterScratch is the reusable per-query working set of the filter steps.
type filterScratch[E any] struct {
	segs   []seq.Segment[E]
	probes []seq.Window[E]
	hits   []Hit[E]
	// perSeg collects, on the incremental-kernel path, the windows hit by
	// each segment so results can be emitted in the same segment-major
	// order as the plain path.
	perSeg [][]seq.Window[E]
	// kstate is the per-worker mutable half of the incremental kernels:
	// a single state, rebound window to window against the matcher's
	// shared prepared tables. Kernel state is single-threaded, so it lives
	// in the scratch (one per concurrent query); the immutable window
	// preprocessing it points at is shared matcher-wide.
	kstate dist.Kernel[E]
	// keval is the grouped kernel evaluator driving kernel-aware index
	// traversals (refnet BatchRangeEval); it owns its own kernel state and
	// sort buffer.
	keval kernelEvaluator[E]
}

func (mt *Matcher[E]) getScratch() *filterScratch[E] {
	if sc, ok := mt.scratch.Get().(*filterScratch[E]); ok {
		return sc
	}
	return &filterScratch[E]{}
}

func (mt *Matcher[E]) putScratch(sc *filterScratch[E]) { mt.scratch.Put(sc) }

// NewMatcher builds a matcher over db: it validates the configuration,
// partitions every database sequence into windows of length λ/2 (step 1)
// and builds the window index (step 2).
func NewMatcher[E any](m dist.Measure[E], cfg Config, db []seq.Sequence[E]) (*Matcher[E], error) {
	cfg.defaults()
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if err := validateMeasure(m, cfg); err != nil {
		return nil, err
	}
	mt := &Matcher[E]{
		measure: m,
		cfg:     cfg,
		db:      db,
		windows: seq.PartitionAll(db, cfg.Params.WindowLen()),
	}
	mt.counter = metric.NewCounter(func(a, b seq.Window[E]) float64 {
		return m.Fn(a.Data, b.Data)
	})
	windowDist := mt.counter.Distance
	switch cfg.Index {
	case IndexRefNet:
		net := refnet.New(windowDist, refnet.WithBase(cfg.Base), refnet.WithMaxParents(cfg.MaxParents))
		if m.Bounded != nil {
			// Arm the eps+ρ early-abandoning traversal: probes prove
			// subtrees outside the query ball at a fraction of a full
			// evaluation (results are unchanged; see refnet.SetBounded).
			bounded := m.Bounded
			net.SetBounded(mt.counter.CountBounded(
				func(a, b seq.Window[E], eps float64) float64 {
					return bounded(a.Data, b.Data, eps)
				}))
		}
		mt.tracked = make(map[winKey]*refnet.Node[seq.Window[E]], len(mt.windows))
		for _, w := range mt.windows {
			mt.tracked[winKey{w.SeqID, w.Ord}] = net.InsertTracked(w)
		}
		mt.index = net
		mt.net = net
	case IndexCoverTree:
		ct := covertree.New(windowDist, cfg.Base)
		for _, w := range mt.windows {
			ct.Insert(w)
		}
		mt.index = ct
		mt.ct = ct
	case IndexMV:
		if len(mt.windows) == 0 {
			return nil, fmt.Errorf("core: MV index requires a non-empty database")
		}
		mv, err := refindex.Build(mt.windows, cfg.MVRefs, windowDist, refindex.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		mt.index = mv
		mt.mv = mv
	case IndexLinearScan:
		ls := metric.NewLinearScan(windowDist)
		if m.Bounded != nil {
			// Thread the query radius into the distance kernel: an
			// early-abandoned comparison still counts as one distance
			// computation, but costs a fraction of the cells.
			bounded := m.Bounded
			ls.SetBounded(mt.counter.CountBounded(
				func(a, b seq.Window[E], eps float64) float64 {
					return bounded(a.Data, b.Data, eps)
				}))
		}
		for _, w := range mt.windows {
			ls.Insert(w)
		}
		mt.index = ls
		mt.linear = ls
	default:
		return nil, fmt.Errorf("core: unknown index kind %v", cfg.Index)
	}
	mt.buildCalls = mt.counter.Calls()
	mt.counter.Reset()
	mt.verifier = newVerifier(m.Fn, cfg.Params, db)
	return mt, nil
}

// Params returns the matcher's framework parameters.
func (mt *Matcher[E]) Params() Params { return mt.cfg.Params }

// NumWindows reports how many database windows are indexed.
func (mt *Matcher[E]) NumWindows() int { return len(mt.windows) }

// Windows exposes the indexed windows (shared slice; do not mutate).
func (mt *Matcher[E]) Windows() []seq.Window[E] { return mt.windows }

// BuildDistanceCalls reports the distance computations spent building the
// index (offline cost).
func (mt *Matcher[E]) BuildDistanceCalls() int64 { return mt.buildCalls }

// FilterDistanceCalls reports the distance computations spent by the index
// on queries since the last ResetFilterCalls — the quantity Figures 8–11 of
// the paper compare against a full scan. An early-abandoned bounded
// evaluation counts as one computation; a streamed kernel pass pricing a
// whole group of same-offset probes also counts as one (it costs one
// longest-member evaluation), which is how the kernel-fed refnet traversal
// drops below one counted evaluation per probe.
func (mt *Matcher[E]) FilterDistanceCalls() int64 { return mt.counter.Calls() }

// ResetFilterCalls zeroes the query-side distance counter.
func (mt *Matcher[E]) ResetFilterCalls() { mt.counter.Reset() }

// BatchCalls reports how many times FilterHitsBatch ran (directly or via
// FindAllBatch/LongestBatch/the streaming pool's claimed runs).
func (mt *Matcher[E]) BatchCalls() int64 { return mt.batchCalls.Load() }

// BatchQueries reports the total queries those batch calls carried;
// BatchQueries/BatchCalls is the realised amortisation factor.
func (mt *Matcher[E]) BatchQueries() int64 { return mt.batchQueries.Load() }

// VerifyDistanceCalls reports distance computations spent in verification
// (step 5) since the matcher was built.
func (mt *Matcher[E]) VerifyDistanceCalls() int64 { return mt.verifier.calls.Load() }

// FilterHits runs the online filtering steps (3–4): it extracts every
// query segment of length λ/2−λ0 … λ/2+λ0 and range-queries the window
// index with each, returning all segment↔window pairs within eps. By
// Lemma 3, windows absent from the hit list cannot participate in any
// similar pair, which is what caps the framework at O(|Q||X|) segment
// comparisons.
func (mt *Matcher[E]) FilterHits(q seq.Sequence[E], eps float64) []Hit[E] {
	sc := mt.getScratch()
	defer mt.putScratch(sc)
	hits := mt.filterHits(q, eps, sc)
	if len(hits) == 0 {
		return nil
	}
	out := make([]Hit[E], len(hits))
	copy(out, hits)
	return out
}

// filterHits is FilterHits into pooled scratch: the returned slice aliases
// sc.hits and is valid until the scratch is reused. The internal query
// paths (FindAll, Longest, Nearest, the batch engine) consume the hits
// before returning the scratch, so steady-state queries allocate neither
// probe windows nor hit slices.
func (mt *Matcher[E]) filterHits(q seq.Sequence[E], eps float64, sc *filterScratch[E]) []Hit[E] {
	sc.segs = seq.AppendSegmentsFor(sc.segs[:0], q, mt.cfg.Params.Lambda, mt.cfg.Params.Lambda0)
	sc.hits = sc.hits[:0]
	segs := sc.segs
	if len(segs) == 0 {
		return nil
	}
	// The incremental kernel prices all segment lengths at one start for a
	// single pass over the window; it pays off exactly when there is more
	// than one length (λ0 > 0 — with a single length the bounded scan's
	// early abandoning is the better linear-backend kernel).
	if mt.linear != nil && mt.kernelTraversal() {
		return mt.filterHitsIncremental(q, eps, sc)
	}
	if br, ok := mt.index.(batchRanger[E]); ok {
		sc.probes = sc.probes[:0]
		for _, s := range segs {
			sc.probes = append(sc.probes, seq.Window[E]{SeqID: -1, Start: s.Start, Data: s.Data})
		}
		var results [][]seq.Window[E]
		if bre, ok := mt.index.(batchRangerEval[E]); ok && mt.kernelTraversal() {
			// Kernel-fed traversal: probes sharing a start offset are
			// priced by one streamed kernel pass per visited node.
			sc.keval.bind(mt, sc.probes)
			for i, s := range segs {
				sc.keval.groupOf[i] = int32(s.Start)
			}
			results = bre.BatchRangeEval(sc.probes, eps, &sc.keval)
		} else {
			results = br.BatchRange(sc.probes, eps)
		}
		for i, wins := range results {
			for _, w := range wins {
				sc.hits = append(sc.hits, Hit[E]{Window: w, Segment: segs[i]})
			}
		}
		return sc.hits
	}
	for _, s := range segs {
		probe := seq.Window[E]{SeqID: -1, Start: s.Start, Data: s.Data}
		for _, w := range mt.index.Range(probe, eps) {
			sc.hits = append(sc.hits, Hit[E]{Window: w, Segment: s})
		}
	}
	return sc.hits
}

// filterHitsIncremental is the linear-backend filter driven by the
// measure's incremental kernel (ROADMAP: per-measure window-distance
// evaluation across overlapping segments). For every database window it
// binds one kernel and, per query offset, streams the λ/2+λ0 elements once,
// reading off the distance of every segment length on the way — 2λ0+1
// segment evaluations for one pass instead of 2λ0+1 independent DPs.
//
// Results are bucketed per segment and flattened segment-major so the hit
// order matches the plain path exactly; distance accounting also matches
// (one counted evaluation per priced segment↔window pair).
func (mt *Matcher[E]) filterHitsIncremental(q seq.Sequence[E], eps float64, sc *filterScratch[E]) []Hit[E] {
	l := mt.cfg.Params.WindowLen()
	minLen, maxLen := l-mt.cfg.Params.Lambda0, l+mt.cfg.Params.Lambda0
	if minLen < 1 {
		minLen = 1
	}
	if maxLen > len(q) {
		maxLen = len(q)
	}
	segs := sc.segs
	// seg index of (length n, start a): offsets[n-minLen] + a, matching
	// AppendSegments' length-major order.
	offsets := make([]int, maxLen-minLen+1)
	for n, off := minLen+1, 0; n <= maxLen; n++ {
		off += len(q) - (n - 1) + 1
		offsets[n-minLen] = off
	}
	for len(sc.perSeg) < len(segs) {
		sc.perSeg = append(sc.perSeg, nil)
	}
	perSeg := sc.perSeg[:len(segs)]
	for i := range perSeg {
		perSeg[i] = perSeg[i][:0]
	}
	items := mt.linear.Items()
	// The immutable window preprocessing is shared matcher-wide; this
	// worker carries one kernel state and rebinds it window to window, so
	// steady-state kernel memory is O(windows), not O(windows × workers).
	// The linear scan touches every window per query, so the lazy slots
	// all fill on the first query and later queries read them for free.
	mt.preparedInit()
	var evals int64
	for wi, w := range items {
		sc.kstate = dist.BindKernel(sc.kstate, mt.preparedAt(int32(wi)))
		k := sc.kstate
		for a := 0; a+minLen <= len(q); a++ {
			k.Reset()
			top := maxLen
			if a+top > len(q) {
				top = len(q) - a
			}
			for n := 1; n <= top; n++ {
				d := k.Feed(q[a+n-1])
				if n >= minLen && d <= eps {
					perSeg[offsets[n-minLen]+a] = append(perSeg[offsets[n-minLen]+a], w)
				}
			}
			evals += int64(top - minLen + 1)
		}
	}
	mt.counter.Add(evals)
	for i, wins := range perSeg {
		for _, w := range wins {
			sc.hits = append(sc.hits, Hit[E]{Window: w, Segment: segs[i]})
		}
	}
	return sc.hits
}

// hasHits reports whether the filter produces any segment hit at radius
// eps, stopping at the first in-range window. Nearest's binary search
// probes many radii; materialising (and then discarding) the full hit list
// at every probe is what this path avoids.
func (mt *Matcher[E]) hasHits(q seq.Sequence[E], eps float64, sc *filterScratch[E]) bool {
	sc.segs = seq.AppendSegmentsFor(sc.segs[:0], q, mt.cfg.Params.Lambda, mt.cfg.Params.Lambda0)
	ex, hasEx := mt.index.(existenceIndex[E])
	for _, s := range sc.segs {
		probe := seq.Window[E]{SeqID: -1, Start: s.Start, Data: s.Data}
		if hasEx {
			if ex.Exists(probe, eps) {
				return true
			}
		} else if len(mt.index.Range(probe, eps)) > 0 {
			return true
		}
	}
	return false
}

// FindAll answers query Type I: it returns every pair of similar
// subsequences reachable from the per-hit candidate regions of Section 7 —
// pairs (SQ, SX) with |SQ| ≥ λ, |SX| ≥ λ, ||SQ|−|SX|| ≤ λ0 and
// δ(SQ,SX) ≤ eps. As in the paper, each hit's candidate region bounds the
// enumerated supersequences (SX start within λ/2 before its window, end
// within λ/2+λ/2 after, and correspondingly for SQ), so arbitrarily long
// matches are the domain of Longest (Type II); completeness is exact for
// pair lengths up to λ.
func (mt *Matcher[E]) FindAll(q seq.Sequence[E], eps float64) []Match {
	sc := mt.getScratch()
	defer mt.putScratch(sc)
	hits := mt.filterHits(q, eps, sc)
	return mt.verifier.verifyAll(q, hits, eps)
}

// Longest answers query Type II: among all similar pairs at radius eps it
// returns one maximising the query subsequence length |SQ|. It concatenates
// hits on consecutive windows into chains, then verifies candidates from
// the longest chain downwards, as in Section 7. The boolean reports whether
// any similar pair exists.
func (mt *Matcher[E]) Longest(q seq.Sequence[E], eps float64) (Match, bool) {
	sc := mt.getScratch()
	defer mt.putScratch(sc)
	hits := mt.filterHits(q, eps, sc)
	return mt.verifier.verifyLongest(q, hits, eps)
}

// NearestOptions tunes Nearest (query Type III).
type NearestOptions struct {
	// EpsMax is the largest radius considered; if no pair exists within
	// it, Nearest reports not found.
	EpsMax float64
	// EpsInc is the paper's ǫ_inc: the radius increment between
	// verification rounds, and the binary-search resolution. Choose a
	// small fraction of typical pairwise distances.
	EpsInc float64
}

// Nearest answers query Type III: it returns a pair minimising δ(SQ,SX)
// subject to the length constraints. Following Section 7 it binary-searches
// the minimal radius at which the filter produces any segment hit, then
// verifies, enlarging the radius by EpsInc until a pair is confirmed. The
// binary-search probes are existence-only (hasHits): they stop at the first
// in-range window instead of materialising every hit at every probe radius;
// only the final verification rounds run the full filter.
func (mt *Matcher[E]) Nearest(q seq.Sequence[E], opts NearestOptions) (Match, bool) {
	if opts.EpsMax <= 0 || opts.EpsInc <= 0 {
		return Match{}, false
	}
	sc := mt.getScratch()
	defer mt.putScratch(sc)
	if !mt.hasHits(q, opts.EpsMax, sc) {
		return Match{}, false
	}
	lo, hi := 0.0, opts.EpsMax
	if mt.hasHits(q, 0, sc) {
		hi = 0
	}
	for hi-lo > opts.EpsInc {
		mid := lo + (hi-lo)/2
		if mt.hasHits(q, mid, sc) {
			hi = mid
		} else {
			lo = mid
		}
	}
	for eps := hi; eps <= opts.EpsMax+opts.EpsInc/2; eps += opts.EpsInc {
		hits := mt.filterHits(q, eps, sc)
		if best, ok := mt.verifier.verifyNearest(q, hits, eps); ok {
			return best, true
		}
	}
	return Match{}, false
}
