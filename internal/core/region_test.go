package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/dist"
	"repro/internal/seq"
)

// forEachPair is load-bearing for all three query types; this property
// test pins it against an independent brute-force enumeration of the same
// region specification.
func TestForEachPairMatchesBruteEnumeration(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	for trial := 0; trial < 200; trial++ {
		p := Params{Lambda: 2 + rng.IntN(6), Lambda0: 0}
		if l := p.WindowLen(); l > 1 {
			p.Lambda0 = rng.IntN(l)
		}
		v := &verifier[byte]{p: p}
		r := region{
			seqID: 0,
			qsMin: rng.IntN(5), qeMin: 5 + rng.IntN(5),
			xsMin: rng.IntN(5), xeMin: 5 + rng.IntN(5),
		}
		r.qsMax = r.qsMin + rng.IntN(4)
		r.qeMax = r.qeMin + rng.IntN(4)
		r.xsMax = r.xsMin + rng.IntN(4)
		r.xeMax = r.xeMin + rng.IntN(4)

		type pk struct{ qs, qe, xs, xe int }
		got := map[pk]bool{}
		v.forEachPair(r, func(qs, qe, xs, xe int) bool {
			if got[pk{qs, qe, xs, xe}] {
				t.Fatalf("trial %d: pair emitted twice", trial)
			}
			got[pk{qs, qe, xs, xe}] = true
			return true
		})

		want := map[pk]bool{}
		for qs := r.qsMin; qs <= r.qsMax; qs++ {
			for qe := r.qeMin; qe <= r.qeMax; qe++ {
				for xs := r.xsMin; xs <= r.xsMax; xs++ {
					for xe := r.xeMin; xe <= r.xeMax; xe++ {
						ql, xl := qe-qs, xe-xs
						if ql < p.Lambda || xl < p.Lambda {
							continue
						}
						if d := ql - xl; d > p.Lambda0 || -d > p.Lambda0 {
							continue
						}
						want[pk{qs, qe, xs, xe}] = true
					}
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (λ=%d λ0=%d region %+v): %d pairs, want %d",
				trial, p.Lambda, p.Lambda0, r, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: pair %+v missing", trial, k)
			}
		}
	}
}

// forEachPair must honour an early stop.
func TestForEachPairEarlyStop(t *testing.T) {
	v := &verifier[byte]{p: Params{Lambda: 2, Lambda0: 0}}
	r := region{qsMin: 0, qsMax: 5, qeMin: 2, qeMax: 8, xsMin: 0, xsMax: 5, xeMin: 2, xeMax: 8}
	calls := 0
	v.forEachPair(r, func(qs, qe, xs, xe int) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("enumeration continued after stop: %d calls", calls)
	}
}

// Matcher queries are documented as safe for concurrent use; exercise
// that with parallel queries over a shared matcher (run with -race in CI
// to make this decisive).
func TestMatcherConcurrentQueries(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(7, 2100))
	db, _ := randStrings(rng, 3, 40, 20, 8, true)
	mt, err := NewMatcher(lev, Config{Params: p}, db)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]seq.Sequence[byte], 8)
	for i := range queries {
		_, queries[i] = randStrings(rng, 1, 30, 20, 7, true)
	}
	ref := make([][]Match, len(queries))
	for i, q := range queries {
		ref[i] = mt.FindAll(q, 1.5)
	}
	done := make(chan error, len(queries))
	for i, q := range queries {
		go func(i int, q seq.Sequence[byte]) {
			got := mt.FindAll(q, 1.5)
			if len(got) != len(ref[i]) {
				done <- errMismatch
				return
			}
			for j := range got {
				if got[j] != ref[i][j] {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}(i, q)
	}
	for range queries {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent query result differs from sequential" }
