package core

import (
	"sort"

	"repro/internal/dist"
	"repro/internal/seq"
)

// BruteForce answers the three query types by exhaustively evaluating all
// O(|Q|²|X|²) subsequence pairs — the baseline the framework's filtering
// replaces, and the correctness oracle for its tests. Only feasible for
// small inputs.
type BruteForce[E any] struct {
	fn dist.Func[E]
	p  Params
	db []seq.Sequence[E]
}

// NewBruteForce builds an exhaustive matcher with the same semantics as
// Matcher over the same parameters.
func NewBruteForce[E any](m dist.Measure[E], p Params, db []seq.Sequence[E]) (*BruteForce[E], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &BruteForce[E]{fn: m.Fn, p: p, db: db}, nil
}

// forEachPair enumerates every subsequence pair satisfying the length
// constraints, with both lengths capped at maxLen (0 = uncapped).
func (b *BruteForce[E]) forEachPair(q seq.Sequence[E], maxLen int, fn func(seqID, qs, qe, xs, xe int)) {
	lam, lam0 := b.p.Lambda, b.p.Lambda0
	for seqID, x := range b.db {
		for xs := 0; xs <= len(x)-lam; xs++ {
			xeMax := len(x)
			if maxLen > 0 && xs+maxLen < xeMax {
				xeMax = xs + maxLen
			}
			for xe := xs + lam; xe <= xeMax; xe++ {
				xlen := xe - xs
				for qs := 0; qs <= len(q)-lam; qs++ {
					qeLo := qs + xlen - lam0
					if qeLo < qs+lam {
						qeLo = qs + lam
					}
					qeHi := qs + xlen + lam0
					if qeHi > len(q) {
						qeHi = len(q)
					}
					if maxLen > 0 && qs+maxLen < qeHi {
						qeHi = qs + maxLen
					}
					for qe := qeLo; qe <= qeHi; qe++ {
						fn(seqID, qs, qe, xs, xe)
					}
				}
			}
		}
	}
}

// FindAll returns every similar pair with both subsequence lengths at most
// maxLen (0 = uncapped), sorted like Matcher.FindAll.
func (b *BruteForce[E]) FindAll(q seq.Sequence[E], eps float64, maxLen int) []Match {
	var out []Match
	b.forEachPair(q, maxLen, func(seqID, qs, qe, xs, xe int) {
		if d := b.fn(q[qs:qe], b.db[seqID][xs:xe]); d <= eps {
			out = append(out, Match{SeqID: seqID, QStart: qs, QEnd: qe, XStart: xs, XEnd: xe, Dist: d})
		}
	})
	sort.Slice(out, func(i, j int) bool {
		a, c := out[i], out[j]
		if a.SeqID != c.SeqID {
			return a.SeqID < c.SeqID
		}
		if a.XStart != c.XStart {
			return a.XStart < c.XStart
		}
		if a.XEnd != c.XEnd {
			return a.XEnd < c.XEnd
		}
		if a.QStart != c.QStart {
			return a.QStart < c.QStart
		}
		return a.QEnd < c.QEnd
	})
	return out
}

// Longest returns a similar pair maximising |SQ|, exhaustively.
func (b *BruteForce[E]) Longest(q seq.Sequence[E], eps float64) (Match, bool) {
	var best Match
	found := false
	b.forEachPair(q, 0, func(seqID, qs, qe, xs, xe int) {
		if found && qe-qs <= best.QLen() {
			return
		}
		if d := b.fn(q[qs:qe], b.db[seqID][xs:xe]); d <= eps {
			best = Match{SeqID: seqID, QStart: qs, QEnd: qe, XStart: xs, XEnd: xe, Dist: d}
			found = true
		}
	})
	return best, found
}

// Nearest returns a pair minimising the distance subject to the length
// constraints, exhaustively. Both lengths are capped at maxLen (0 =
// uncapped) to keep the search space bounded.
func (b *BruteForce[E]) Nearest(q seq.Sequence[E], maxLen int) (Match, bool) {
	var best Match
	found := false
	b.forEachPair(q, maxLen, func(seqID, qs, qe, xs, xe int) {
		d := b.fn(q[qs:qe], b.db[seqID][xs:xe])
		if !found || d < best.Dist {
			best = Match{SeqID: seqID, QStart: qs, QEnd: qe, XStart: xs, XEnd: xe, Dist: d}
			found = true
		}
	})
	return best, found
}
