package core

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Admission control for the streaming engine (stream.go). The original
// backpressure story was a single hard rule — block at queueDepth — which
// protects memory but gives an overloaded deployment no way to say "no"
// usefully: every client waits, tail latency explodes uniformly, and one
// flooding tenant starves everyone. This file adds the policy layer in
// front of the queue:
//
//   - typed saturation errors (ErrQueueFull, ErrDeadlineExceeded) a server
//     can map onto HTTP 429/503/504 instead of opaque failures;
//   - per-submission deadlines, priorities and tenant labels (SubmitOption);
//   - a pluggable shed policy (WithShedPolicy): keep blocking, reject the
//     newest arrival, or evict the hoggiest tenant's newest queued work so
//     light tenants keep flowing through a flood.
//
// Expired submissions are additionally dropped *before* a worker prices
// them (stream.go), under every policy: work nobody is waiting for any
// more never reaches the index.

// ErrQueueFull is returned by futures whose submission was shed because
// the engine's in-flight budget (WithQueueDepth) was exhausted under a
// rejecting shed policy. It maps to HTTP 429 in subseqctl serve; clients
// should retry with backoff (see docs/SERVING.md).
var ErrQueueFull = errors.New("core: query queue full")

// ErrDeadlineExceeded is returned by futures whose submission's deadline
// (WithSubmitDeadline/WithSubmitTimeout) passed before a worker ran the
// query — at submission, while queued, or while blocked for a slot. It
// maps to HTTP 504 in subseqctl serve.
var ErrDeadlineExceeded = errors.New("core: query deadline exceeded")

// ErrWorkerCrashed is wrapped by futures whose claim panicked mid-answer
// (for example a distance evaluator fault). The worker recovers, fails
// the claim's futures with this error and keeps serving — one poisoned
// query cannot take the pool down. It maps to HTTP 500.
var ErrWorkerCrashed = errors.New("core: worker crashed answering this query")

// ShedPolicy selects what Submit does when the engine is at queueDepth.
type ShedPolicy int

const (
	// ShedBlock (the default) blocks the submitting goroutine until a
	// slot frees, honouring the submission's context and deadline — the
	// classic backpressure shape, right when callers are few and patient.
	ShedBlock ShedPolicy = iota
	// ShedRejectNewest fails the arriving submission immediately with
	// ErrQueueFull — the serving shape: the caller gets a fast, typed
	// "try again later" instead of an unbounded wait.
	ShedRejectNewest
	// ShedFairShare is ShedRejectNewest with per-tenant fairness: when
	// the queue is full, an arrival from a lightly loaded tenant evicts
	// the newest *queued* submission of the most loaded tenant (which
	// fails with ErrQueueFull) instead of being rejected itself. A tenant
	// flooding the queue sheds its own tail; tenants within their fair
	// share keep flowing. Submissions carry tenants via WithTenant;
	// untagged submissions share the "" tenant.
	ShedFairShare
)

// String names the policy ("block", "reject", "fair").
func (p ShedPolicy) String() string {
	switch p {
	case ShedBlock:
		return "block"
	case ShedRejectNewest:
		return "reject"
	case ShedFairShare:
		return "fair"
	default:
		return fmt.Sprintf("ShedPolicy(%d)", int(p))
	}
}

// ParseShedPolicy resolves a policy name; it accepts the String names
// plus common synonyms ("reject-newest", "fair-share"). The empty string
// selects ShedBlock.
func ParseShedPolicy(name string) (ShedPolicy, error) {
	switch strings.ToLower(name) {
	case "", "block":
		return ShedBlock, nil
	case "reject", "reject-newest":
		return ShedRejectNewest, nil
	case "fair", "fair-share", "fairshare":
		return ShedFairShare, nil
	default:
		return 0, fmt.Errorf("core: unknown shed policy %q (want block, reject or fair)", name)
	}
}

// WithShedPolicy selects the streaming engine's behaviour at queue
// saturation (default ShedBlock).
func WithShedPolicy(p ShedPolicy) PoolOption {
	return func(c *poolConfig) { c.shedPolicy = p }
}

// SubmitOption attaches per-submission serving metadata — deadline,
// priority, tenant — to one Submit* call.
type SubmitOption func(*submitConfig)

type submitConfig struct {
	deadline time.Time
	priority int
	tenant   string
}

// WithSubmitDeadline gives the submission an absolute deadline: if no
// worker has started it by then, its future fails with
// ErrDeadlineExceeded and the query is never priced — expired work is
// dropped at the queue, not computed and discarded. (A started query runs
// to completion; index traversals are not preemptible.)
func WithSubmitDeadline(t time.Time) SubmitOption {
	return func(c *submitConfig) { c.deadline = t }
}

// WithSubmitTimeout is WithSubmitDeadline relative to now.
func WithSubmitTimeout(d time.Duration) SubmitOption {
	return func(c *submitConfig) { c.deadline = time.Now().Add(d) }
}

// WithPriority biases claiming: among pending submissions, workers seed
// their claims from the highest-priority one (ties resolve in arrival
// order; the default priority is 0, negative deprioritises). Priority
// affects scheduling only — never admission or eviction.
func WithPriority(p int) SubmitOption {
	return func(c *submitConfig) { c.priority = p }
}

// WithTenant labels the submission for per-tenant accounting and the
// ShedFairShare policy.
func WithTenant(id string) SubmitOption {
	return func(c *submitConfig) { c.tenant = id }
}

// admit acquires an in-flight slot for j according to the pool's shed
// policy, maintaining per-tenant load accounting. On success the job
// holds one slot token (and one tenant count if labelled), released by
// finish. The error is the typed admission outcome; the caller maps it
// onto the stats counters.
func (p *QueryPool[E]) admit(j *streamJob[E]) error {
	s := &p.streaming
	switch p.shedPolicy {
	case ShedRejectNewest:
		select {
		case s.slots <- struct{}{}:
			s.addTenant(j)
			return nil
		default:
			return ErrQueueFull
		}
	case ShedFairShare:
		select {
		case s.slots <- struct{}{}:
			s.addTenant(j)
			return nil
		default:
			return s.evictForFairShare(j)
		}
	default: // ShedBlock
		var deadlineCh <-chan time.Time
		if !j.deadline.IsZero() {
			t := time.NewTimer(time.Until(j.deadline))
			defer t.Stop()
			deadlineCh = t.C
		}
		select {
		case s.slots <- struct{}{}:
			s.addTenant(j)
			return nil
		case <-j.ctx.Done():
			return j.ctx.Err()
		case <-deadlineCh:
			return ErrDeadlineExceeded
		}
	}
}

// addTenant counts one in-flight submission against j's tenant.
func (s *streamState[E]) addTenant(j *streamJob[E]) {
	if j.tenant == "" {
		return
	}
	s.mu.Lock()
	if s.tenantLoad == nil {
		s.tenantLoad = make(map[string]int)
	}
	s.tenantLoad[j.tenant]++
	s.mu.Unlock()
}

// dropTenant releases j's tenant count.
func (s *streamState[E]) dropTenant(j *streamJob[E]) {
	if j.tenant == "" {
		return
	}
	s.mu.Lock()
	if n := s.tenantLoad[j.tenant] - 1; n > 0 {
		s.tenantLoad[j.tenant] = n
	} else {
		delete(s.tenantLoad, j.tenant)
	}
	s.mu.Unlock()
}

// evictForFairShare implements ShedFairShare at saturation: scan the
// *queued* (not yet claimed) submissions for the one whose tenant carries
// the highest in-flight load; if that tenant is strictly more loaded than
// j's, evict it (its future fails with ErrQueueFull) and hand its slot to
// j. Otherwise j's tenant is itself the heaviest — j is shed, which is
// exactly reject-newest within a tenant. Running claims are never
// preempted; only queued work is evictable.
func (s *streamState[E]) evictForFairShare(j *streamJob[E]) error {
	s.mu.Lock()
	victimIdx := -1
	victimLoad := s.tenantLoad[j.tenant] // beat this to justify eviction
	for i, q := range s.queue {
		if q.tenant == j.tenant {
			continue
		}
		// >= so later (newer) submissions win ties within the same
		// tenant: the newest job of the heaviest tenant is the victim.
		if l := s.tenantLoad[q.tenant]; l > victimLoad || (victimIdx >= 0 && l >= victimLoad) {
			victimIdx, victimLoad = i, l
		}
	}
	if victimIdx < 0 {
		s.mu.Unlock()
		return ErrQueueFull
	}
	victim := s.queue[victimIdx]
	s.queue = append(s.queue[:victimIdx], s.queue[victimIdx+1:]...)
	// Transfer the victim's slot to j: the token stays in the channel,
	// only the accounting moves.
	if s.tenantLoad == nil {
		s.tenantLoad = make(map[string]int)
	}
	if n := s.tenantLoad[victim.tenant] - 1; n > 0 {
		s.tenantLoad[victim.tenant] = n
	} else {
		delete(s.tenantLoad, victim.tenant)
	}
	if j.tenant != "" {
		s.tenantLoad[j.tenant]++
	}
	s.mu.Unlock()
	s.shed.Add(1)
	victim.fail(ErrQueueFull)
	return nil
}

// finish releases j's admission state: the in-flight slot and the tenant
// count. Called exactly once per admitted job, after its future resolves.
func (s *streamState[E]) finish(j *streamJob[E]) {
	<-s.slots
	s.dropTenant(j)
}
