package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/dist"
	"repro/internal/seq"
)

// DTW is consistent but not a metric, so the framework supports it only
// through the linear-scan filter (Section 5: the pruning of Lemma 2 needs
// consistency alone; index pruning needs metricity). These tests cover
// that whole pipeline end to end.

func TestDTWLinearPipelineAgainstOracle(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	dtw := dist.DTWMeasure(dist.AbsDiff)
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 1500))
		db := []seq.Sequence[float64]{walk(rng, 24), walk(rng, 24)}
		q := append(seq.Sequence[float64]{}, db[0][2:20]...)
		mt, err := NewMatcher(dtw, Config{Params: p, Index: IndexLinearScan}, db)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := NewBruteForce(dtw, p, db)
		if err != nil {
			t.Fatal(err)
		}
		const eps = 1.0
		// The query replays db[0][2:20], so an exact region exists and
		// both sides must find a zero-distance longest match of length
		// ≥ λ.
		om, ook := oracle.Longest(q, eps)
		fm, fok := mt.Longest(q, eps)
		if !ook || !fok {
			t.Fatalf("trial %d: oracle found=%v framework found=%v", trial, ook, fok)
		}
		if fm.Dist > eps {
			t.Errorf("trial %d: framework match beyond eps: %v", trial, fm)
		}
		// DTW warps freely, so equality with the oracle's length is not
		// guaranteed; but the planted identical region must be matched at
		// full query length by both.
		if om.QLen() == len(q) && fm.QLen() < len(q)-2*p.Lambda0 {
			t.Errorf("trial %d: framework longest %v much shorter than oracle %v", trial, fm, om)
		}
	}
}

func TestDTWFilterCostIsLinear(t *testing.T) {
	// The linear filter evaluates every (segment, window) pair once:
	// that is the paper's O(|Q||X|) bound realised without an index.
	p := Params{Lambda: 6, Lambda0: 1}
	dtw := dist.DTWMeasure(dist.AbsDiff)
	rng := rand.New(rand.NewPCG(3, 1600))
	db := []seq.Sequence[float64]{walk(rng, 60), walk(rng, 60)}
	mt, err := NewMatcher(dtw, Config{Params: p, Index: IndexLinearScan}, db)
	if err != nil {
		t.Fatal(err)
	}
	q := walk(rng, 30)
	mt.FilterHits(q, 0.5)
	segs := len(seq.SegmentsFor(q, p.Lambda, p.Lambda0))
	want := int64(segs * mt.NumWindows())
	if got := mt.FilterDistanceCalls(); got != want {
		t.Errorf("filter calls = %d, want exactly segments×windows = %d", got, want)
	}
}
