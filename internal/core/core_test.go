package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/dist"
	"repro/internal/seq"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p    Params
		ok   bool
		name string
	}{
		{Params{Lambda: 8, Lambda0: 1}, true, "typical"},
		{Params{Lambda: 2, Lambda0: 0}, true, "minimal"},
		{Params{Lambda: 1, Lambda0: 0}, false, "lambda too small"},
		{Params{Lambda: 8, Lambda0: -1}, false, "negative lambda0"},
		{Params{Lambda: 8, Lambda0: 4}, false, "lambda0 not below window length"},
		{Params{Lambda: 8, Lambda0: 3}, true, "lambda0 at limit"},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestWindowLen(t *testing.T) {
	if got := (Params{Lambda: 40}).WindowLen(); got != 20 {
		t.Errorf("WindowLen = %d, want 20", got)
	}
	// Odd λ floors, which keeps l ≤ λ/2 (Lemma 2's requirement).
	if got := (Params{Lambda: 9}).WindowLen(); got != 4 {
		t.Errorf("WindowLen(9) = %d, want 4", got)
	}
}

func TestMeasureConfigRejections(t *testing.T) {
	db := []seq.Sequence[float64]{{1, 2, 3, 4, 5, 6, 7, 8}}
	p := Params{Lambda: 4, Lambda0: 1}

	// DTW is consistent but not metric: metric indexes must be rejected...
	dtw := dist.DTWMeasure(dist.AbsDiff)
	for _, kind := range []IndexKind{IndexRefNet, IndexCoverTree, IndexMV} {
		if _, err := NewMatcher(dtw, Config{Params: p, Index: kind}, db); err == nil {
			t.Errorf("DTW with %v index accepted; want rejection", kind)
		}
	}
	// ...but the linear-scan filter is fine.
	if _, err := NewMatcher(dtw, Config{Params: p, Index: IndexLinearScan}, db); err != nil {
		t.Errorf("DTW with linear scan rejected: %v", err)
	}

	// A non-consistent measure must be rejected outright.
	broken := dist.Measure[float64]{
		Name:  "broken",
		Fn:    dist.DTW(dist.AbsDiff),
		Props: dist.Properties{Metric: true, Consistent: false},
	}
	if _, err := NewMatcher(broken, Config{Params: p}, db); err == nil {
		t.Error("inconsistent measure accepted")
	}

	// Lock-step measures require λ0 = 0.
	eu := dist.EuclideanMeasure(dist.AbsDiff)
	if _, err := NewMatcher(eu, Config{Params: p}, db); err == nil {
		t.Error("Euclidean with λ0=1 accepted")
	}
	if _, err := NewMatcher(eu, Config{Params: Params{Lambda: 4}}, db); err != nil {
		t.Errorf("Euclidean with λ0=0 rejected: %v", err)
	}

	// Bad params propagate.
	if _, err := NewMatcher(eu, Config{Params: Params{Lambda: 1}}, db); err == nil {
		t.Error("invalid params accepted")
	}
}

// randStrings builds a db of random byte sequences plus a query that shares
// a planted motif with one of them (possibly mutated).
func randStrings(rng *rand.Rand, numSeqs, seqLen, qLen, motifLen int, mutate bool) ([]seq.Sequence[byte], seq.Sequence[byte]) {
	const alpha = "ABCD"
	randSeq := func(n int) seq.Sequence[byte] {
		s := make(seq.Sequence[byte], n)
		for i := range s {
			s[i] = alpha[rng.IntN(len(alpha))]
		}
		return s
	}
	db := make([]seq.Sequence[byte], numSeqs)
	for i := range db {
		db[i] = randSeq(seqLen)
	}
	q := randSeq(qLen)
	if motifLen > 0 && motifLen <= qLen && motifLen <= seqLen {
		motif := randSeq(motifLen)
		qPos := rng.IntN(qLen - motifLen + 1)
		copy(q[qPos:], motif)
		target := rng.IntN(numSeqs)
		xPos := rng.IntN(seqLen - motifLen + 1)
		copy(db[target][xPos:], motif)
		if mutate {
			db[target][xPos+rng.IntN(motifLen)] = alpha[rng.IntN(len(alpha))]
		}
	}
	return db, q
}

func matchSet(ms []Match) map[Match]bool {
	set := make(map[Match]bool, len(ms))
	for _, m := range ms {
		set[m] = true
	}
	return set
}

func TestFindAllContainsOracleLevenshtein(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 100))
		db, q := randStrings(rng, 2, 30, 20, 8, true)
		mt, err := NewMatcher(lev, Config{Params: p}, db)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := NewBruteForce(lev, p, db)
		if err != nil {
			t.Fatal(err)
		}
		const eps = 1.0
		got := matchSet(mt.FindAll(q, eps))
		for _, want := range oracle.FindAll(q, eps, p.Lambda) {
			if !got[want] {
				t.Errorf("trial %d: oracle pair %v missed by framework", trial, want)
			}
		}
	}
}

func TestFindAllContainsOracleHammingLockStep(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 0}
	ham := dist.HammingMeasure[byte]()
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 200))
		db, q := randStrings(rng, 2, 24, 18, 7, true)
		mt, err := NewMatcher(ham, Config{Params: p}, db)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := NewBruteForce(ham, p, db)
		if err != nil {
			t.Fatal(err)
		}
		const eps = 1.0
		got := matchSet(mt.FindAll(q, eps))
		for _, want := range oracle.FindAll(q, eps, p.Lambda) {
			if !got[want] {
				t.Errorf("trial %d: oracle pair %v missed (lock-step must be exact)", trial, want)
			}
		}
	}
}

// hitCovers re-derives the Section 7 candidate region for a hit,
// independently of the verifier's implementation, and reports whether it
// contains the match. Matches are already in-bounds, so the region's
// clamping to sequence bounds cannot change the answer.
func hitCovers[E any](p Params, h Hit[E], m Match) bool {
	l := p.WindowLen()
	return m.SeqID == h.Window.SeqID &&
		m.QStart >= h.Segment.Start-l-p.Lambda0 && m.QStart <= h.Segment.Start &&
		m.QEnd >= h.Segment.End() && m.QEnd <= h.Segment.End()+l+p.Lambda0 &&
		m.XStart >= h.Window.Start-l && m.XStart <= h.Window.Start &&
		m.XEnd >= h.Window.End() && m.XEnd <= h.Window.End()+l
}

// checkWarpedFindAll is the oracle comparison for warping distances. The
// paper's λ0 bounds the temporal shift a match may exhibit; matches whose
// optimal alignments warp a window's counterpart beyond the λ/2±λ0 segment
// lengths are out of the framework's declared scope (they produce no
// filter hit). So the strict assertion is completeness GIVEN coverage:
// every oracle pair covered by some hit's candidate region must be
// returned. Aggregate coverage is additionally required to be high, which
// guards against the filter silently degrading.
func checkWarpedFindAll[E any](t *testing.T, m dist.Measure[E], p Params, eps float64,
	mkDB func(rng *rand.Rand) ([]seq.Sequence[E], seq.Sequence[E]), trials int, seedStream uint64) {
	t.Helper()
	totalOracle, covered := 0, 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), seedStream))
		db, q := mkDB(rng)
		mt, err := NewMatcher(m, Config{Params: p}, db)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := NewBruteForce(m, p, db)
		if err != nil {
			t.Fatal(err)
		}
		hits := mt.FilterHits(q, eps)
		got := matchSet(mt.FindAll(q, eps))
		for _, want := range oracle.FindAll(q, eps, p.Lambda) {
			totalOracle++
			isCovered := false
			for _, h := range hits {
				if hitCovers(p, h, want) {
					isCovered = true
					break
				}
			}
			if isCovered {
				covered++
				if !got[want] {
					t.Errorf("trial %d: hit-covered oracle pair %v missed", trial, want)
				}
			}
		}
	}
	if totalOracle > 0 && float64(covered) < 0.5*float64(totalOracle) {
		t.Errorf("filter covered only %d of %d oracle pairs; scope degradation", covered, totalOracle)
	}
	t.Logf("coverage: %d of %d oracle pairs within hit regions", covered, totalOracle)
}

func TestFindAllContainsOracleERP(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	checkWarpedFindAll(t, dist.ERPMeasure(dist.AbsDiff, 0), p, 0.75,
		func(rng *rand.Rand) ([]seq.Sequence[float64], seq.Sequence[float64]) {
			db := []seq.Sequence[float64]{walk(rng, 26), walk(rng, 26)}
			q := append(seq.Sequence[float64]{}, db[0][3:21]...)
			return db, q
		}, 15, 300)
}

func TestFindAllContainsOracleDFD(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	checkWarpedFindAll(t, dist.DiscreteFrechetMeasure(dist.AbsDiff), p, 0.5,
		func(rng *rand.Rand) ([]seq.Sequence[float64], seq.Sequence[float64]) {
			db := []seq.Sequence[float64]{walk(rng, 26), walk(rng, 26)}
			q := append(seq.Sequence[float64]{}, db[1][5:23]...)
			return db, q
		}, 15, 400)
}

// walk produces a bounded random walk, giving realistic overlap structure.
func walk(rng *rand.Rand, n int) seq.Sequence[float64] {
	s := make(seq.Sequence[float64], n)
	v := rng.Float64() * 4
	for i := range s {
		v += rng.Float64()*2 - 1
		if v < 0 {
			v = 0
		}
		if v > 8 {
			v = 8
		}
		s[i] = v
	}
	return s
}

func TestFindAllResultsAreValid(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(1, 500))
	db, q := randStrings(rng, 3, 30, 22, 9, false)
	mt, err := NewMatcher(lev, Config{Params: p}, db)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 2.0
	for _, m := range mt.FindAll(q, eps) {
		if m.SeqID < 0 || m.SeqID >= len(db) {
			t.Fatalf("bad SeqID in %v", m)
		}
		x := db[m.SeqID]
		if m.QStart < 0 || m.QEnd > len(q) || m.XStart < 0 || m.XEnd > len(x) {
			t.Fatalf("out-of-bounds match %v", m)
		}
		if m.QLen() < p.Lambda || m.XLen() < p.Lambda {
			t.Fatalf("match below λ: %v", m)
		}
		if d := m.QLen() - m.XLen(); d > p.Lambda0 || -d > p.Lambda0 {
			t.Fatalf("length difference beyond λ0: %v", m)
		}
		if m.Dist > eps {
			t.Fatalf("match beyond eps: %v", m)
		}
		if re := lev.Fn(q[m.QStart:m.QEnd], x[m.XStart:m.XEnd]); re != m.Dist {
			t.Fatalf("reported distance %v, recomputed %v", m.Dist, re)
		}
	}
}

func TestAllBackendsAgreeOnFindAll(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(2, 600))
	db, q := randStrings(rng, 2, 36, 20, 8, true)
	const eps = 1.5
	var ref []Match
	for i, kind := range []IndexKind{IndexRefNet, IndexCoverTree, IndexMV, IndexLinearScan} {
		mt, err := NewMatcher(lev, Config{Params: p, Index: kind, MVRefs: 3}, db)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		got := mt.FindAll(q, eps)
		if i == 0 {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("%v returned %d matches, refnet returned %d", kind, len(got), len(ref))
		}
		for j := range got {
			if got[j] != ref[j] {
				t.Fatalf("%v result %d = %v, refnet = %v", kind, j, got[j], ref[j])
			}
		}
	}
}

func TestLongestFindsPlantedLongMatch(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(3, 700))
	// Plant a long exact shared run: 18 elements ≫ λ.
	db, q := randStrings(rng, 2, 40, 30, 0, false)
	motif := seq.Sequence[byte]("ABCDABCDDCBAABABCD")
	copy(q[5:], motif)
	copy(db[1][9:], motif)
	mt, err := NewMatcher(lev, Config{Params: p}, db)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := mt.Longest(q, 0)
	if !ok {
		t.Fatal("no match found for planted run")
	}
	if m.QLen() < len(motif) {
		t.Errorf("longest match %v shorter than planted run %d", m, len(motif))
	}
	if m.Dist != 0 {
		t.Errorf("planted exact run matched at distance %v", m.Dist)
	}
}

func TestLongestAgainstOracle(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 800))
		db, q := randStrings(rng, 2, 28, 20, 10, true)
		mt, err := NewMatcher(lev, Config{Params: p}, db)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := NewBruteForce(lev, p, db)
		if err != nil {
			t.Fatal(err)
		}
		const eps = 1.0
		om, ook := oracle.Longest(q, eps)
		fm, fok := mt.Longest(q, eps)
		if ook != fok {
			t.Errorf("trial %d: oracle found=%v framework found=%v", trial, ook, fok)
			continue
		}
		if !ook {
			continue
		}
		if fm.QLen() < om.QLen() {
			t.Errorf("trial %d: framework longest %d < oracle longest %d (fm=%v om=%v)",
				trial, fm.QLen(), om.QLen(), fm, om)
		}
		if fm.Dist > eps {
			t.Errorf("trial %d: framework match beyond eps: %v", trial, fm)
		}
	}
}

func TestNearestBracketsOracle(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 900))
		db, q := randStrings(rng, 2, 26, 18, 8, true)
		mt, err := NewMatcher(lev, Config{Params: p}, db)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := NewBruteForce(lev, p, db)
		if err != nil {
			t.Fatal(err)
		}
		fm, fok := mt.Nearest(q, NearestOptions{EpsMax: 10, EpsInc: 0.5})
		if !fok {
			t.Fatalf("trial %d: framework found nothing within eps=10", trial)
		}
		// The framework's result can never beat the unrestricted optimum...
		og, ok := oracle.Nearest(q, 0)
		if !ok {
			t.Fatalf("trial %d: oracle found nothing", trial)
		}
		if fm.Dist < og.Dist-1e-9 {
			t.Errorf("trial %d: framework %v beats exhaustive optimum %v", trial, fm, og)
		}
		// ...and must match the optimum over λ-length pairs.
		oc, ok := oracle.Nearest(q, p.Lambda)
		if !ok {
			t.Fatalf("trial %d: capped oracle found nothing", trial)
		}
		if fm.Dist > oc.Dist+1e-9 {
			t.Errorf("trial %d: framework nearest %v worse than λ-capped optimum %v", trial, fm.Dist, oc.Dist)
		}
	}
}

func TestFilterHitsLemma3(t *testing.T) {
	// Lemma 2/3: for every similar pair found by brute force, at least
	// one window fully inside SX must appear among the filter hits.
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 1000))
		db, q := randStrings(rng, 2, 30, 20, 8, true)
		mt, err := NewMatcher(lev, Config{Params: p}, db)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := NewBruteForce(lev, p, db)
		if err != nil {
			t.Fatal(err)
		}
		const eps = 1.0
		hits := mt.FilterHits(q, eps)
		hitWindows := map[[2]int]bool{}
		for _, h := range hits {
			hitWindows[[2]int{h.Window.SeqID, h.Window.Ord}] = true
		}
		l := p.WindowLen()
		for _, m := range oracle.FindAll(q, eps, 0) {
			covered := false
			for ord := 0; ord*l < len(db[m.SeqID]); ord++ {
				if ord*l >= m.XStart && (ord+1)*l <= m.XEnd && hitWindows[[2]int{m.SeqID, ord}] {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("trial %d: similar pair %v has no window among filter hits", trial, m)
			}
		}
	}
}

func TestMatcherAccounting(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(4, 1100))
	db, q := randStrings(rng, 3, 60, 20, 8, false)
	mt, err := NewMatcher(lev, Config{Params: p}, db)
	if err != nil {
		t.Fatal(err)
	}
	if mt.NumWindows() != 3*(60/3) {
		t.Errorf("NumWindows = %d, want %d", mt.NumWindows(), 3*(60/3))
	}
	if mt.BuildDistanceCalls() <= 0 {
		t.Error("no build distance calls recorded")
	}
	if mt.FilterDistanceCalls() != 0 {
		t.Error("filter calls not reset after build")
	}
	mt.FilterHits(q, 1)
	if mt.FilterDistanceCalls() <= 0 {
		t.Error("no filter calls recorded")
	}
	mt.ResetFilterCalls()
	if mt.FilterDistanceCalls() != 0 {
		t.Error("reset did not zero the counter")
	}
	mt.FindAll(q, 1)
	if mt.VerifyDistanceCalls() <= 0 {
		t.Error("no verification calls recorded")
	}
}

func TestEmptyAndShortInputs(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	db := []seq.Sequence[byte]{seq.Sequence[byte]("AB")} // shorter than one window
	mt, err := NewMatcher(lev, Config{Params: p}, db)
	if err != nil {
		t.Fatal(err)
	}
	if mt.NumWindows() != 0 {
		t.Errorf("NumWindows = %d", mt.NumWindows())
	}
	if hits := mt.FilterHits(seq.Sequence[byte]("ABCDEFG"), 5); hits != nil {
		t.Errorf("hits on empty index: %v", hits)
	}
	if ms := mt.FindAll(seq.Sequence[byte]("ABCDEFG"), 5); len(ms) != 0 {
		t.Errorf("matches on empty index: %v", ms)
	}
	if _, ok := mt.Longest(seq.Sequence[byte]("AB"), 5); ok {
		t.Error("match on query shorter than any segment")
	}
	if _, ok := mt.Nearest(nil, NearestOptions{EpsMax: 5, EpsInc: 1}); ok {
		t.Error("match on nil query")
	}
	if _, ok := mt.Nearest(seq.Sequence[byte]("ABCDEFG"), NearestOptions{}); ok {
		t.Error("zero options must report not found")
	}
}
