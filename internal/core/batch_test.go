package core

import (
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/seq"
)

// batchQueries builds a db plus several queries sharing mutated motifs.
func batchQueries(rng *rand.Rand, numQ int) ([]seq.Sequence[byte], []seq.Sequence[byte]) {
	db, _ := randStrings(rng, 3, 48, 0, 0, false)
	qs := make([]seq.Sequence[byte], numQ)
	for i := range qs {
		_, q := randStrings(rng, 1, 10, 26, 9, i%2 == 0)
		// Plant each query's motif into the shared db too.
		target := db[rng.IntN(len(db))]
		copy(target[rng.IntN(len(target)-9):], q[3:12])
		qs[i] = q
	}
	return db, qs
}

// The batched paths must return exactly the sequential results, for every
// index backend (the refnet takes the shared-traversal path; the others
// exercise the fallbacks, including the linear backend's incremental
// kernels).
func TestBatchMatchesSequentialAllBackends(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(8, 800))
	db, qs := batchQueries(rng, 5)
	const eps = 0.5
	for _, kind := range []IndexKind{IndexRefNet, IndexCoverTree, IndexMV, IndexLinearScan} {
		mt, err := NewMatcher(lev, Config{Params: p, Index: kind, MVRefs: 3}, db)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		// FilterHitsBatch vs FilterHits.
		hitsBatch := mt.FilterHitsBatch(qs, eps)
		for i, q := range qs {
			want := mt.FilterHits(q, eps)
			if len(hitsBatch[i]) != len(want) {
				t.Fatalf("%v query %d: batch %d hits, sequential %d", kind, i, len(hitsBatch[i]), len(want))
			}
			for j := range want {
				if hitsBatch[i][j].Window.String() != want[j].Window.String() ||
					hitsBatch[i][j].Segment.String() != want[j].Segment.String() {
					t.Fatalf("%v query %d hit %d: batch %v/%v, sequential %v/%v", kind, i, j,
						hitsBatch[i][j].Window, hitsBatch[i][j].Segment, want[j].Window, want[j].Segment)
				}
			}
		}
		// FindAllBatch vs FindAll.
		allBatch := mt.FindAllBatch(qs, eps)
		for i, q := range qs {
			want := mt.FindAll(q, eps)
			if len(allBatch[i]) != len(want) {
				t.Fatalf("%v query %d: FindAllBatch %d matches, FindAll %d", kind, i, len(allBatch[i]), len(want))
			}
			for j := range want {
				if allBatch[i][j] != want[j] {
					t.Fatalf("%v query %d match %d: batch %v, sequential %v", kind, i, j, allBatch[i][j], want[j])
				}
			}
		}
		// LongestBatch vs Longest.
		longBatch, foundBatch := mt.LongestBatch(qs, eps)
		for i, q := range qs {
			want, ok := mt.Longest(q, eps)
			if foundBatch[i] != ok || (ok && longBatch[i] != want) {
				t.Fatalf("%v query %d: LongestBatch (%v,%v), Longest (%v,%v)", kind, i, longBatch[i], foundBatch[i], want, ok)
			}
		}
	}
}

// The pool must return the same results as the sequential batch for every
// query type, at several worker counts (1 worker exercises the chunking
// alone, many workers the concurrency).
func TestQueryPoolMatchesSequential(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(9, 900))
	db, qs := batchQueries(rng, 9)
	const eps = 0.5
	mt, err := NewMatcher(lev, Config{Params: p}, db)
	if err != nil {
		t.Fatal(err)
	}
	wantAll := mt.FindAllBatch(qs, eps)
	wantLong, wantFound := mt.LongestBatch(qs, eps)
	wantHits := make([][]Hit[byte], len(qs))
	for i, q := range qs {
		wantHits[i] = mt.FilterHits(q, eps)
	}
	nopts := NearestOptions{EpsMax: 4, EpsInc: 0.5}
	wantNear := make([]Match, len(qs))
	wantNearOK := make([]bool, len(qs))
	for i, q := range qs {
		wantNear[i], wantNearOK[i] = mt.Nearest(q, nopts)
	}
	for _, workers := range []int{1, 2, 5} {
		pool := NewQueryPool(mt, workers)
		gotAll := pool.FindAll(qs, eps)
		gotLong, gotFound := pool.Longest(qs, eps)
		gotNear, gotNearOK := pool.Nearest(qs, nopts)
		gotHits := pool.FilterHits(qs, eps)
		for i := range qs {
			if len(gotHits[i]) != len(wantHits[i]) {
				t.Fatalf("workers=%d query %d: pool FilterHits %d hits, want %d", workers, i, len(gotHits[i]), len(wantHits[i]))
			}
			for j := range wantHits[i] {
				if gotHits[i][j].Window.SeqID != wantHits[i][j].Window.SeqID ||
					gotHits[i][j].Window.Start != wantHits[i][j].Window.Start ||
					gotHits[i][j].Segment.Start != wantHits[i][j].Segment.Start ||
					gotHits[i][j].Segment.End() != wantHits[i][j].Segment.End() {
					t.Fatalf("workers=%d query %d hit %d: pool %v, want %v", workers, i, j, gotHits[i][j], wantHits[i][j])
				}
			}
			if len(gotAll[i]) != len(wantAll[i]) {
				t.Fatalf("workers=%d query %d: pool FindAll %d matches, want %d", workers, i, len(gotAll[i]), len(wantAll[i]))
			}
			for j := range wantAll[i] {
				if gotAll[i][j] != wantAll[i][j] {
					t.Fatalf("workers=%d query %d match %d: pool %v, want %v", workers, i, j, gotAll[i][j], wantAll[i][j])
				}
			}
			if gotFound[i] != wantFound[i] || (wantFound[i] && gotLong[i] != wantLong[i]) {
				t.Fatalf("workers=%d query %d: pool Longest (%v,%v), want (%v,%v)", workers, i, gotLong[i], gotFound[i], wantLong[i], wantFound[i])
			}
			if gotNearOK[i] != wantNearOK[i] || (wantNearOK[i] && gotNear[i] != wantNear[i]) {
				t.Fatalf("workers=%d query %d: pool Nearest (%v,%v), want (%v,%v)", workers, i, gotNear[i], gotNearOK[i], wantNear[i], wantNearOK[i])
			}
		}
	}
}

// Drive one matcher from many goroutines (direct queries and pools mixed)
// so `go test -race ./internal/core/` exercises the pooled scratch, the
// pooled refnet query state and the atomic counters under contention.
func TestQueryPoolRace(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(10, 1000))
	db, qs := batchQueries(rng, 8)
	const eps = 0.5
	mt, err := NewMatcher(lev, Config{Params: p}, db)
	if err != nil {
		t.Fatal(err)
	}
	want := mt.FindAllBatch(qs, eps)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				pool := NewQueryPool(mt, 3)
				for iter := 0; iter < 5; iter++ {
					pool.FilterHits(qs, eps)
					got := pool.FindAll(qs, eps)
					for i := range qs {
						if len(got[i]) != len(want[i]) {
							t.Errorf("goroutine %d: query %d got %d matches, want %d", g, i, len(got[i]), len(want[i]))
							return
						}
					}
				}
			} else {
				for iter := 0; iter < 5; iter++ {
					for i, q := range qs {
						if got := mt.FindAll(q, eps); len(got) != len(want[i]) {
							t.Errorf("goroutine %d: query %d got %d matches, want %d", g, i, len(got), len(want[i]))
							return
						}
						mt.Nearest(q, NearestOptions{EpsMax: 4, EpsInc: 1})
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// The incremental linear-backend filter must agree with the plain path on
// measures that carry kernels, across λ0 values including zero (which
// routes to the bounded scan instead).
func TestIncrementalFilterMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 1100))
	db, q := randStrings(rng, 3, 40, 30, 10, true)
	for _, lam0 := range []int{0, 1, 2} {
		p := Params{Lambda: 8, Lambda0: lam0}
		withKernel, err := NewMatcher(dist.LevenshteinMeasure[byte](), Config{Params: p, Index: IndexLinearScan}, db)
		if err != nil {
			t.Fatal(err)
		}
		// Strip the capabilities to force the plain path on a second
		// matcher with identical semantics.
		plainMeasure := dist.LevenshteinMeasure[byte]()
		plainMeasure.Prepare = nil
		plainMeasure.Bounded = nil
		plain, err := NewMatcher(plainMeasure, Config{Params: p, Index: IndexLinearScan}, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0, 1, 2.5} {
			got := withKernel.FilterHits(q, eps)
			want := plain.FilterHits(q, eps)
			if len(got) != len(want) {
				t.Fatalf("λ0=%d eps=%v: incremental %d hits, plain %d", lam0, eps, len(got), len(want))
			}
			for j := range want {
				if got[j].Window.String() != want[j].Window.String() ||
					got[j].Segment.String() != want[j].Segment.String() {
					t.Fatalf("λ0=%d eps=%v hit %d: incremental %v/%v, plain %v/%v", lam0, eps, j,
						got[j].Window, got[j].Segment, want[j].Window, want[j].Segment)
				}
			}
			// Distance accounting must match the plain path (one counted
			// evaluation per priced segment↔window pair).
			withKernel.ResetFilterCalls()
			plain.ResetFilterCalls()
			withKernel.FilterHits(q, eps)
			plain.FilterHits(q, eps)
			if a, b := withKernel.FilterDistanceCalls(), plain.FilterDistanceCalls(); a != b {
				t.Fatalf("λ0=%d eps=%v: incremental counted %d calls, plain %d", lam0, eps, a, b)
			}
		}
	}
}

// The batch tallies are the serving tier's proof of amortisation: every
// FilterHitsBatch call (direct or via FindAllBatch/LongestBatch) counts
// once, with the number of queries it carried.
func TestBatchTallies(t *testing.T) {
	p := Params{Lambda: 6, Lambda0: 1}
	lev := dist.LevenshteinMeasure[byte]()
	rng := rand.New(rand.NewPCG(9, 900))
	db, qs := batchQueries(rng, 4)
	mt, err := NewMatcher(lev, Config{Params: p, Index: IndexRefNet}, db)
	if err != nil {
		t.Fatal(err)
	}
	if mt.BatchCalls() != 0 || mt.BatchQueries() != 0 {
		t.Fatalf("fresh matcher has tallies: %d/%d", mt.BatchCalls(), mt.BatchQueries())
	}
	mt.FilterHitsBatch(qs, 0.5)
	if mt.BatchCalls() != 1 || mt.BatchQueries() != 4 {
		t.Fatalf("after FilterHitsBatch: calls=%d queries=%d, want 1/4", mt.BatchCalls(), mt.BatchQueries())
	}
	mt.FindAllBatch(qs[:2], 0.5)
	mt.LongestBatch(qs[:3], 0.5)
	if mt.BatchCalls() != 3 || mt.BatchQueries() != 9 {
		t.Fatalf("after FindAllBatch+LongestBatch: calls=%d queries=%d, want 3/9", mt.BatchCalls(), mt.BatchQueries())
	}
}
