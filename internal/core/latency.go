package core

import (
	"sync/atomic"
	"time"
)

// Latency accounting for the streaming engine. The serving tier needs two
// distributions, not averages: how long submissions wait for a worker
// (queue wait — the overload signal) and how long a caller waits end to
// end (submit → future completed — what a client experiences). Both are
// recorded into HDR-style histograms: a fixed, exponentially spaced bucket
// ladder shared by every pool, so snapshots from different processes are
// directly comparable and recording is one atomic increment — no locks,
// no allocation, safe from every worker at once.

// latencyBuckets is the fixed bucket ladder, as upper bounds. A 1-2-5
// decade ladder from 100µs to 30s keeps relative error under ~2.5× across
// the whole serving range (sub-millisecond cache hits to multi-second
// saturated queues) in 18 buckets; the implicit final bucket is +Inf.
var latencyBuckets = [...]time.Duration{
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second,
	10 * time.Second, 20 * time.Second, 30 * time.Second,
}

// latencyHist is a lock-free fixed-bucket histogram. The zero value is
// ready to use.
type latencyHist struct {
	counts [len(latencyBuckets) + 1]atomic.Int64 // +1: the +Inf bucket
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// observe records one duration.
func (h *latencyHist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(latencyBuckets) && d > latencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		m := h.max.Load()
		if int64(d) <= m || h.max.CompareAndSwap(m, int64(d)) {
			return
		}
	}
}

// LatencyBucket is one rung of a latency histogram: Count observations at
// or below LEMillis milliseconds (and above the previous rung). The final
// rung has LEMillis = 0 and means "over the ladder's top" (+Inf).
type LatencyBucket struct {
	LEMillis float64 `json:"le_ms"`
	Count    int64   `json:"count"`
}

// LatencyStats is a point-in-time snapshot of one latency distribution,
// surfaced inside StreamStats (and by /stats in subseqctl serve). Buckets
// with zero observations are elided from the JSON-facing slice, so an
// idle daemon's stats stay small.
type LatencyStats struct {
	Count int64 `json:"count"`
	// MeanMillis/MaxMillis summarise the distribution; P50/P95/P99 are
	// interpolated within the histogram buckets, so their resolution is
	// the bucket width at that rank (HDR-style bounded relative error).
	MeanMillis float64         `json:"mean_ms"`
	MaxMillis  float64         `json:"max_ms"`
	P50Millis  float64         `json:"p50_ms"`
	P95Millis  float64         `json:"p95_ms"`
	P99Millis  float64         `json:"p99_ms"`
	Buckets    []LatencyBucket `json:"buckets,omitempty"`
}

const millisPerNano = 1e-6

// snapshot captures the histogram. Concurrent observes may land between
// counter reads — snapshots are monitoring data, not a barrier.
func (h *latencyHist) snapshot() LatencyStats {
	var counts [len(latencyBuckets) + 1]int64
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	st := LatencyStats{Count: total, MaxMillis: float64(h.max.Load()) * millisPerNano}
	if total == 0 {
		return st
	}
	st.MeanMillis = float64(h.sum.Load()) * millisPerNano / float64(total)
	st.P50Millis = quantile(&counts, total, 0.50)
	st.P95Millis = quantile(&counts, total, 0.95)
	st.P99Millis = quantile(&counts, total, 0.99)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		b := LatencyBucket{Count: c}
		if i < len(latencyBuckets) {
			b.LEMillis = float64(latencyBuckets[i]) * millisPerNano
		}
		st.Buckets = append(st.Buckets, b)
	}
	return st
}

// quantile interpolates the q-th quantile (0..1) linearly within the
// bucket holding that rank; the +Inf bucket reports the ladder's top.
func quantile(counts *[len(latencyBuckets) + 1]int64, total int64, q float64) float64 {
	rank := q * float64(total)
	var seen int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(seen+c) >= rank {
			hi := latencyBuckets[len(latencyBuckets)-1]
			if i < len(latencyBuckets) {
				hi = latencyBuckets[i]
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = latencyBuckets[i-1]
			}
			frac := (rank - float64(seen)) / float64(c)
			return (float64(lo) + frac*float64(hi-lo)) * millisPerNano
		}
		seen += c
	}
	return float64(latencyBuckets[len(latencyBuckets)-1]) * millisPerNano
}
