package core

import (
	"sort"
	"sync"

	"repro/internal/dist"
	"repro/internal/metric"
	"repro/internal/seq"
)

// verifier implements step 5 of the framework: candidate generation from
// filtered hits and verification with true distance computations.
//
// For a hit pairing query segment [a,b) with database window [c,c+l), the
// candidate supersequences follow Section 7 exactly:
//
//	SX start ∈ [c−λ/2, c],       SX end ∈ [c+λ/2, c+λ]
//	SQ start ∈ [a−λ/2−λ0, a],    SQ end ∈ [b, b+λ/2+λ0]
//
// clamped to the sequence bounds, and subject to |SQ|,|SX| ≥ λ and
// ||SQ|−|SX|| ≤ λ0.
//
// For matches longer than λ the paper concatenates hits on consecutive
// windows (Section 7, query Type II). A true match covering windows
// oA..oB produces a hit on every one of those windows (Lemma 2 applied to
// each window), so we generalise concatenation to RUN REGIONS: every pair
// of hits (hA, hB) whose windows bound a run of consecutively-hit windows
// spans a candidate region whose SX extends one window past the run ends
// (the paper's (k+2)·λ/2 bound) and whose SQ extends past the two hit
// segments. Keeping only the single longest chain per ending hit — a
// literal reading of the paper — is insufficient: a long chain pins SX to
// cover all its windows, hiding matches that cover an inner sub-run.
//
// Candidate pairs are deduplicated across regions so each distinct pair is
// verified at most once per query.
type verifier[E any] struct {
	fn    dist.Func[E]
	p     Params
	db    []seq.Sequence[E]
	calls metric.Tally
	// scratch pools the per-query dedup maps: candidate regions overlap
	// heavily, so the pair-seen map reaches tens of thousands of entries
	// per query — reallocating it per call dominated the query path's
	// allocation profile and throttled the worker pool via GC.
	scratch sync.Pool
}

// verifyScratch is the pooled per-query working set of the verifier.
type verifyScratch struct {
	seen    map[pairKey]bool
	regions map[region]bool
	byWin   map[winKey][]int
	regs    []region
}

func newVerifier[E any](fn dist.Func[E], p Params, db []seq.Sequence[E]) *verifier[E] {
	return &verifier[E]{fn: fn, p: p, db: db}
}

func (v *verifier[E]) getScratch() *verifyScratch {
	if sc, ok := v.scratch.Get().(*verifyScratch); ok {
		clear(sc.seen)
		clear(sc.regions)
		clear(sc.byWin)
		sc.regs = sc.regs[:0]
		return sc
	}
	return &verifyScratch{
		seen:    make(map[pairKey]bool),
		regions: make(map[region]bool),
		byWin:   make(map[winKey][]int),
	}
}

func (v *verifier[E]) putScratch(sc *verifyScratch) { v.scratch.Put(sc) }

func (v *verifier[E]) dist(a, b []E) float64 {
	v.calls.Add(1)
	return v.fn(a, b)
}

// pairKey identifies a candidate pair for deduplication.
type pairKey struct {
	seqID, qs, qe, xs, xe int
}

// winKey identifies a database window by sequence and ordinal.
type winKey struct{ seqID, ord int }

// region is the candidate search box derived from a hit or a hit pair.
type region struct {
	seqID        int
	qsMin, qsMax int
	qeMin, qeMax int
	xsMin, xsMax int
	xeMin, xeMax int
}

// qlenUpper is the largest query subsequence length the region can yield.
func (r region) qlenUpper() int { return r.qeMax - r.qsMin }

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// spanRegion builds the candidate region for the window/segment span
// bounded by a start hit (window [cA,·), segment [aA,·)) and an end hit
// (window [·,cEndB), segment [·,bB)); for a single hit the two coincide
// and the region reduces to the paper's Section 7 box.
func (v *verifier[E]) spanRegion(q seq.Sequence[E], seqID, cA, cEndB, aA, bB int) region {
	l := v.p.WindowLen()
	lam0 := v.p.Lambda0
	x := v.db[seqID]
	return region{
		seqID: seqID,
		qsMin: clamp(aA-l-lam0, 0, len(q)), qsMax: clamp(aA, 0, len(q)),
		qeMin: clamp(bB, 0, len(q)), qeMax: clamp(bB+l+lam0, 0, len(q)),
		xsMin: clamp(cA-l, 0, len(x)), xsMax: clamp(cA, 0, len(x)),
		xeMin: clamp(cEndB, 0, len(x)), xeMax: clamp(cEndB+l, 0, len(x)),
	}
}

// hitRegion is the single-hit candidate region (query Type I).
func (v *verifier[E]) hitRegion(q seq.Sequence[E], h Hit[E]) region {
	return v.spanRegion(q, h.Window.SeqID, h.Window.Start, h.Window.End(),
		h.Segment.Start, h.Segment.End())
}

// runRegions builds the candidate regions for all hit pairs spanning runs
// of consecutively-hit windows, including the degenerate single-hit
// regions. The query-span compatibility filter discards pairs whose
// segments are further apart than the spanned windows allow under the
// per-window shift budget λ0.
func (v *verifier[E]) runRegions(q seq.Sequence[E], hits []Hit[E], sc *verifyScratch) []region {
	lam0 := v.p.Lambda0
	byWin := sc.byWin
	for i, h := range hits {
		k := winKey{h.Window.SeqID, h.Window.Ord}
		byWin[k] = append(byWin[k], i)
	}
	seen := sc.regions
	out := sc.regs
	add := func(r region) {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for _, h := range hits {
		add(v.hitRegion(q, h))
		// Extend forward while every window in between has hits.
		seqID := h.Window.SeqID
		for ord := h.Window.Ord + 1; ; ord++ {
			ends, ok := byWin[winKey{seqID, ord}]
			if !ok {
				break
			}
			m := ord - h.Window.Ord + 1
			budget := m * lam0
			for _, j := range ends {
				hb := hits[j]
				spanX := hb.Window.End() - h.Window.Start // == m·l
				spanQ := hb.Segment.End() - h.Segment.Start
				if spanQ <= 0 {
					continue
				}
				if d := spanQ - spanX; d > budget+lam0 || -d > budget+lam0 {
					continue
				}
				add(v.spanRegion(q, seqID, h.Window.Start, hb.Window.End(),
					h.Segment.Start, hb.Segment.End()))
			}
		}
	}
	sc.regs = out
	return out
}

// forEachPair enumerates the candidate pairs of a region that satisfy the
// length constraints, invoking fn for each; fn returning false stops the
// enumeration early.
func (v *verifier[E]) forEachPair(r region, fn func(qs, qe, xs, xe int) bool) {
	lam, lam0 := v.p.Lambda, v.p.Lambda0
	for xs := r.xsMin; xs <= r.xsMax; xs++ {
		for xe := r.xeMin; xe <= r.xeMax; xe++ {
			xlen := xe - xs
			if xlen < lam {
				continue
			}
			for qs := r.qsMin; qs <= r.qsMax; qs++ {
				// |qlen − xlen| ≤ λ0 restricts qe to a narrow band.
				qeLo := qs + xlen - lam0
				if qeLo < r.qeMin {
					qeLo = r.qeMin
				}
				if qeLo < qs+lam {
					qeLo = qs + lam
				}
				qeHi := qs + xlen + lam0
				if qeHi > r.qeMax {
					qeHi = r.qeMax
				}
				for qe := qeLo; qe <= qeHi; qe++ {
					if !fn(qs, qe, xs, xe) {
						return
					}
				}
			}
		}
	}
}

// verifyAll implements query Type I verification over the per-hit regions.
func (v *verifier[E]) verifyAll(q seq.Sequence[E], hits []Hit[E], eps float64) []Match {
	sc := v.getScratch()
	defer v.putScratch(sc)
	seen := sc.seen
	var out []Match
	for _, h := range hits {
		r := v.hitRegion(q, h)
		x := v.db[r.seqID]
		v.forEachPair(r, func(qs, qe, xs, xe int) bool {
			k := pairKey{r.seqID, qs, qe, xs, xe}
			if seen[k] {
				return true
			}
			seen[k] = true
			if d := v.dist(q[qs:qe], x[xs:xe]); d <= eps {
				out = append(out, Match{SeqID: r.seqID, QStart: qs, QEnd: qe, XStart: xs, XEnd: xe, Dist: d})
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.SeqID != b.SeqID {
			return a.SeqID < b.SeqID
		}
		if a.XStart != b.XStart {
			return a.XStart < b.XStart
		}
		if a.XEnd != b.XEnd {
			return a.XEnd < b.XEnd
		}
		if a.QStart != b.QStart {
			return a.QStart < b.QStart
		}
		return a.QEnd < b.QEnd
	})
	return out
}

// canonicalBefore is the canonical total order on matches — ascending
// coordinates, the order verifyAll sorts by. Distinct pairs never share
// all five coordinates, so the order is strict; it is the final
// tie-break that makes every query answer a pure function of the
// candidate set rather than of traversal order, which is what lets a
// sharded fleet (internal/shard) reproduce a single node's answer
// bit for bit.
func canonicalBefore(a, b Match) bool {
	if a.SeqID != b.SeqID {
		return a.SeqID < b.SeqID
	}
	if a.XStart != b.XStart {
		return a.XStart < b.XStart
	}
	if a.XEnd != b.XEnd {
		return a.XEnd < b.XEnd
	}
	if a.QStart != b.QStart {
		return a.QStart < b.QStart
	}
	return a.QEnd < b.QEnd
}

// nearestBefore orders Type III answers: smaller distance wins, equal
// distances resolve canonically.
func nearestBefore(a, b Match) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return canonicalBefore(a, b)
}

// longestBefore orders Type II answers: longer query span wins, then
// smaller distance, then the canonical order.
func longestBefore(a, b Match) bool {
	if a.QLen() != b.QLen() {
		return a.QLen() > b.QLen()
	}
	return nearestBefore(a, b)
}

// verifyNearest implements query Type III verification: the minimum
// distance pair within the run regions, if any pair is within eps.
// Distance ties resolve canonically (nearestBefore), never by traversal
// order.
func (v *verifier[E]) verifyNearest(q seq.Sequence[E], hits []Hit[E], eps float64) (Match, bool) {
	sc := v.getScratch()
	defer v.putScratch(sc)
	seen := sc.seen
	var best Match
	found := false
	for _, r := range v.runRegions(q, hits, sc) {
		x := v.db[r.seqID]
		v.forEachPair(r, func(qs, qe, xs, xe int) bool {
			k := pairKey{r.seqID, qs, qe, xs, xe}
			if seen[k] {
				return true
			}
			seen[k] = true
			d := v.dist(q[qs:qe], x[xs:xe])
			if d <= eps {
				m := Match{SeqID: r.seqID, QStart: qs, QEnd: qe, XStart: xs, XEnd: xe, Dist: d}
				if !found || nearestBefore(m, best) {
					best, found = m, true
				}
			}
			return true
		})
	}
	return best, found
}

// verifyLongest implements query Type II verification: process run regions
// from the largest query-length bound down, verify candidates in
// decreasing |SQ| order, and stop once no remaining region can beat the
// best match found.
func (v *verifier[E]) verifyLongest(q seq.Sequence[E], hits []Hit[E], eps float64) (Match, bool) {
	if len(hits) == 0 {
		return Match{}, false
	}
	sc := v.getScratch()
	defer v.putScratch(sc)
	regions := v.runRegions(q, hits, sc)
	sort.Slice(regions, func(i, j int) bool { return regions[i].qlenUpper() > regions[j].qlenUpper() })

	seen := sc.seen
	var best Match
	found := false
	for _, r := range regions {
		ub := r.qlenUpper()
		if found && ub < best.QLen() {
			break // regions are sorted by upper bound
		}
		x := v.db[r.seqID]
		// Enumerate candidate |SQ| from largest to smallest. The first
		// verified length is the answer's, but that whole length level is
		// still finished — here and in every region whose bound can tie —
		// so equal-length ties resolve canonically (longestBefore: smaller
		// distance, then lower coordinates) instead of by traversal order.
		// A topology-independent answer is what lets the sharded tier
		// (internal/shard) merge per-shard longest matches bit-identically
		// to a single node.
		for qlen := ub; qlen >= v.p.Lambda; qlen-- {
			if found && qlen < best.QLen() {
				break
			}
			for qs := r.qsMin; qs <= r.qsMax; qs++ {
				qe := qs + qlen
				if qe < r.qeMin || qe > r.qeMax {
					continue
				}
				for xs := r.xsMin; xs <= r.xsMax; xs++ {
					xeLo := clamp(qlen-v.p.Lambda0+xs, r.xeMin, r.xeMax+1)
					xeHi := clamp(qlen+v.p.Lambda0+xs, r.xeMin-1, r.xeMax)
					for xe := xeLo; xe <= xeHi; xe++ {
						if xe-xs < v.p.Lambda {
							continue
						}
						k := pairKey{r.seqID, qs, qe, xs, xe}
						if seen[k] {
							continue
						}
						seen[k] = true
						if d := v.dist(q[qs:qe], x[xs:xe]); d <= eps {
							m := Match{SeqID: r.seqID, QStart: qs, QEnd: qe, XStart: xs, XEnd: xe, Dist: d}
							if !found || longestBefore(m, best) {
								best, found = m, true
							}
						}
					}
				}
			}
			if found && qlen == best.QLen() {
				break // the winning length level is fully enumerated
			}
		}
	}
	return best, found
}
