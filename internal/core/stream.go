package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/seq"
)

// Streaming query engine (ROADMAP: the step from a batch-barrier QueryPool
// to a serving daemon).
//
// The batch entry points (QueryPool.FindAll and friends) are barriers: the
// caller owns a complete query slice, hands it over, and blocks until every
// answer is back. A server cannot work that way — queries arrive one at a
// time from independent connections, and each caller wants only its own
// answer, as soon as it is ready. Submit and its siblings provide that
// shape: each submission returns a Future immediately, and a long-lived
// worker set answers submissions as they arrive.
//
// The throughput trick of the batch path — one shared index traversal
// across a query set (FilterHitsBatch) — still applies, because concurrent
// submissions are exactly a query set that happens to arrive through many
// goroutines. Workers therefore claim *runs* of compatible pending
// submissions (same query type, same radius) and answer each run with one
// batched call, so streaming throughput tracks batch throughput instead of
// degrading to one-traversal-per-query. The claim size self-balances:
// a worker takes ~pending/workers jobs (at least 1, at most the coalescing
// cap), so a burst spreads over the worker set while a trickle is answered
// immediately.
//
// Backpressure is a bounded in-flight budget: at most queueDepth
// submissions may be submitted-but-not-completed at once. What happens at
// the bound is a policy (admission.go): block the submitter (the default),
// reject it with ErrQueueFull, or evict the heaviest tenant's newest queued
// work in its favour. Submissions may also carry deadlines, priorities and
// tenant labels (SubmitOption); expired submissions are dropped before a
// worker prices them, and queue-wait plus end-to-end latency distributions
// are recorded into HDR-style histograms (latency.go) surfaced by
// StreamStats. This is what keeps a serving deployment's memory *and tail
// latency* bounded when clients outpace the hardware.

// ErrPoolClosed is returned by futures whose submission was rejected
// because Close had already been called.
var ErrPoolClosed = errors.New("core: query pool closed")

// Future is the pending result of a streaming submission. A Future is
// completed exactly once by the pool; any number of goroutines may Await
// it.
type Future[T any] struct {
	done    chan struct{}
	settled atomic.Bool
	val     T
	err     error
}

func newFuture[T any]() *Future[T] { return &Future[T]{done: make(chan struct{})} }

// complete resolves the future, reporting whether this call was the one
// that settled it. The guard makes completion idempotent, which is what
// lets a worker's panic recovery fail "whatever runBatch had not answered
// yet" without tracking which futures a half-finished claim already
// completed.
func (f *Future[T]) complete(v T, err error) bool {
	if !f.settled.CompareAndSwap(false, true) {
		return false
	}
	f.val, f.err = v, err
	close(f.done)
	return true
}

// Await blocks until the result is ready or ctx is done, whichever comes
// first. A completed future always reports its result, even when ctx is
// already cancelled.
func (f *Future[T]) Await(ctx context.Context) (T, error) {
	select {
	case <-f.done:
		return f.val, f.err
	default:
	}
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// Done returns a channel that is closed when the result is ready, for
// select-based consumers; after Done, Await returns without blocking.
func (f *Future[T]) Done() <-chan struct{} { return f.done }

// QueryResult is the outcome of a Longest or Nearest submission: the best
// match and whether any similar pair exists.
type QueryResult struct {
	Match Match
	Found bool
}

// queryKind tags a streaming submission with its query type.
type queryKind uint8

const (
	kindFilter queryKind = iota
	kindFindAll
	kindLongest
	kindNearest
)

// streamJob is one pending submission. Exactly one of the future fields is
// set, matching kind.
type streamJob[E any] struct {
	kind queryKind
	q    seq.Sequence[E]
	eps  float64
	opts NearestOptions
	ctx  context.Context

	// Serving metadata (SubmitOption): zero deadline means none, priority
	// defaults to 0, empty tenant is the shared anonymous tenant. t0 is
	// when the submission entered the engine (end-to-end latency origin);
	// enq is when it was enqueued (queue-wait origin).
	deadline time.Time
	priority int
	tenant   string
	t0       time.Time
	enq      time.Time

	fHits *Future[[]Hit[E]]
	fAll  *Future[[]Match]
	fOne  *Future[QueryResult]
}

// fail completes the job's future with err, reporting whether this call
// settled it (false when the future had already resolved).
func (j *streamJob[E]) fail(err error) bool {
	switch j.kind {
	case kindFilter:
		return j.fHits.complete(nil, err)
	case kindFindAll:
		return j.fAll.complete(nil, err)
	default:
		return j.fOne.complete(QueryResult{}, err)
	}
}

// coalesceKey reports whether two jobs may be answered by one batched call:
// same query type and same radius (the batch entry points take a single eps
// for the whole set). Nearest jobs are never batched — Type III shares no
// traversal — but grouping them lets one claim amortise scheduler trips.
func (j *streamJob[E]) coalesceKey(o *streamJob[E]) bool {
	if j.kind != o.kind {
		return false
	}
	if j.kind == kindNearest {
		return j.opts == o.opts
	}
	return j.eps == o.eps
}

// streamState is the engine behind the streaming submissions: a bounded
// queue, a condition-variable-guarded dispatch list and a long-lived worker
// set, started lazily on first submission.
type streamState[E any] struct {
	start   sync.Once
	started atomic.Bool
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*streamJob[E]
	// slots is the in-flight budget: one token per submission from enqueue
	// to completion. Its capacity is the pool's queueDepth.
	slots  chan struct{}
	closed bool
	wg     sync.WaitGroup
	// tenantLoad counts admitted-but-not-finished submissions per tenant
	// (guarded by mu), feeding the ShedFairShare eviction decision.
	tenantLoad map[string]int

	submitted atomic.Int64
	completed atomic.Int64
	cancelled atomic.Int64
	rejected  atomic.Int64
	shed      atomic.Int64
	expired   atomic.Int64
	crashed   atomic.Int64
	batches   atomic.Int64
	coalesced atomic.Int64
	maxBatch  atomic.Int64

	queueWait latencyHist
	latency   latencyHist
}

// StreamStats is a point-in-time snapshot of the streaming engine's
// activity, surfaced by subseqctl serve's /stats endpoint.
type StreamStats struct {
	// Workers, QueueDepth and ShedPolicy echo the pool's configuration.
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	ShedPolicy string `json:"shed_policy"`
	// Pending counts submissions waiting for a worker; InFlight counts
	// submissions submitted but not yet completed (pending + running).
	Pending  int `json:"pending"`
	InFlight int `json:"in_flight"`
	// Lifetime submission counts. Every submission lands in exactly one:
	// Completed (a worker answered it, successfully or not), Cancelled
	// (its context was abandoned first), Rejected (it arrived after
	// Close), Shed (turned away or evicted at queue saturation —
	// ErrQueueFull), Expired (its deadline passed first —
	// ErrDeadlineExceeded) or Crashed (a worker panicked answering it —
	// ErrWorkerCrashed). Submitted is their sum.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Cancelled int64 `json:"cancelled"`
	Rejected  int64 `json:"rejected"`
	Shed      int64 `json:"shed"`
	Expired   int64 `json:"expired"`
	Crashed   int64 `json:"crashed"`
	// Batches counts worker claims (one batched call each); Coalesced
	// counts submissions that shared their claim with at least one other,
	// and MaxBatch is the largest claim so far. Coalesced/Submitted near 1
	// means the engine is successfully turning concurrent submissions into
	// shared traversals.
	Batches   int64 `json:"batches"`
	Coalesced int64 `json:"coalesced"`
	MaxBatch  int64 `json:"max_batch"`
	// QueueWait is the enqueue→claim distribution (the overload signal);
	// Latency is submit→resolution end to end (what a caller experiences).
	// Only submissions that reached a worker are recorded.
	QueueWait LatencyStats `json:"queue_wait"`
	Latency   LatencyStats `json:"latency"`
}

// DefaultQueueDepth bounds in-flight submissions when the pool was built
// without WithQueueDepth: deep enough that workers never starve between
// claims, shallow enough that a stalled consumer cannot queue unbounded
// work.
const DefaultQueueDepth = 1024

// defaultMaxCoalesce caps how many submissions one worker claim may answer
// in a single batched call. FilterHitsBatch re-chunks internally to keep
// traversal state cache-resident, so the cap only bounds latency (a huge
// claim makes its first member wait for its last), not correctness.
const defaultMaxCoalesce = 64

// stream returns the engine, starting the worker set on first use.
func (p *QueryPool[E]) stream() *streamState[E] {
	s := &p.streaming
	s.start.Do(func() {
		s.cond = sync.NewCond(&s.mu)
		s.slots = make(chan struct{}, p.queueDepth)
		s.wg.Add(p.workers)
		s.started.Store(true)
		for w := 0; w < p.workers; w++ {
			go p.streamWorker()
		}
	})
	return s
}

// submit enqueues j under the pool's shed policy. The job's future is
// completed with ctx.Err() if ctx is done first, ErrDeadlineExceeded if
// its deadline passes first, ErrQueueFull if a rejecting policy sheds it,
// or ErrPoolClosed if the pool closed first.
func (p *QueryPool[E]) submit(ctx context.Context, j *streamJob[E], opts []SubmitOption) {
	if ctx == nil {
		ctx = context.Background()
	}
	j.ctx = ctx
	if len(opts) > 0 {
		var sc submitConfig
		for _, o := range opts {
			o(&sc)
		}
		j.deadline, j.priority, j.tenant = sc.deadline, sc.priority, sc.tenant
	}
	s := p.stream()
	s.submitted.Add(1)
	j.t0 = time.Now()
	if err := ctx.Err(); err != nil {
		s.cancelled.Add(1)
		j.fail(err)
		return
	}
	if !j.deadline.IsZero() && !j.t0.Before(j.deadline) {
		s.expired.Add(1)
		j.fail(ErrDeadlineExceeded)
		return
	}
	if err := p.admit(j); err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.shed.Add(1)
		case errors.Is(err, ErrDeadlineExceeded):
			s.expired.Add(1)
		default:
			s.cancelled.Add(1)
		}
		j.fail(err)
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.finish(j)
		s.rejected.Add(1)
		j.fail(ErrPoolClosed)
		return
	}
	j.enq = time.Now()
	s.queue = append(s.queue, j)
	s.mu.Unlock()
	s.cond.Signal()
}

// Submit streams one FindAll (query Type I) through the pool: the returned
// future resolves to exactly Matcher.FindAll(q, eps). Concurrent
// submissions at the same radius are answered together through one shared
// index traversal. Options attach a deadline, priority or tenant label.
func (p *QueryPool[E]) Submit(ctx context.Context, q seq.Sequence[E], eps float64, opts ...SubmitOption) *Future[[]Match] {
	j := &streamJob[E]{kind: kindFindAll, q: q, eps: eps, fAll: newFuture[[]Match]()}
	p.submit(ctx, j, opts)
	return j.fAll
}

// SubmitFilter streams the filtering steps (3–4) for one query: the future
// resolves to exactly Matcher.FilterHits(q, eps).
func (p *QueryPool[E]) SubmitFilter(ctx context.Context, q seq.Sequence[E], eps float64, opts ...SubmitOption) *Future[[]Hit[E]] {
	j := &streamJob[E]{kind: kindFilter, q: q, eps: eps, fHits: newFuture[[]Hit[E]]()}
	p.submit(ctx, j, opts)
	return j.fHits
}

// SubmitLongest streams one Longest (query Type II): the future resolves to
// exactly Matcher.Longest(q, eps).
func (p *QueryPool[E]) SubmitLongest(ctx context.Context, q seq.Sequence[E], eps float64, opts ...SubmitOption) *Future[QueryResult] {
	j := &streamJob[E]{kind: kindLongest, q: q, eps: eps, fOne: newFuture[QueryResult]()}
	p.submit(ctx, j, opts)
	return j.fOne
}

// SubmitNearest streams one Nearest (query Type III): the future resolves
// to exactly Matcher.Nearest(q, opts). Type III shares no traversal across
// queries, so the workers contribute parallelism only.
func (p *QueryPool[E]) SubmitNearest(ctx context.Context, q seq.Sequence[E], opts NearestOptions, subOpts ...SubmitOption) *Future[QueryResult] {
	j := &streamJob[E]{kind: kindNearest, q: q, opts: opts, fOne: newFuture[QueryResult]()}
	p.submit(ctx, j, subOpts)
	return j.fOne
}

// Close stops the streaming engine gracefully: submissions already accepted
// are drained and their futures completed, later submissions fail with
// ErrPoolClosed, and Close returns once every worker has exited. The
// batch-barrier methods (FindAll, Longest, …) remain usable after Close —
// they run on ephemeral goroutines, not the streaming worker set. Close is
// idempotent.
func (p *QueryPool[E]) Close() {
	s := &p.streaming
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	// Workers only exist if something was ever submitted; a pool used
	// purely through the batch-barrier methods closes without starting
	// them. (A submission racing this Close either fails with
	// ErrPoolClosed or is drained by the workers it started, which see
	// closed and exit on their own.)
	if s.started.Load() {
		s.cond.Broadcast()
		s.wg.Wait()
	}
}

// StreamStats snapshots the streaming engine's activity counters. On a
// pool that has never streamed it reports the configuration with zero
// counters, without starting the worker set.
func (p *QueryPool[E]) StreamStats() StreamStats {
	s := &p.streaming
	s.mu.Lock()
	pending := len(s.queue)
	s.mu.Unlock()
	return StreamStats{
		Workers:    p.workers,
		QueueDepth: p.queueDepth,
		ShedPolicy: p.shedPolicy.String(),
		Pending:    pending,
		InFlight:   len(s.slots),
		Submitted:  s.submitted.Load(),
		Completed:  s.completed.Load(),
		Cancelled:  s.cancelled.Load(),
		Rejected:   s.rejected.Load(),
		Shed:       s.shed.Load(),
		Expired:    s.expired.Load(),
		Crashed:    s.crashed.Load(),
		Batches:    s.batches.Load(),
		Coalesced:  s.coalesced.Load(),
		MaxBatch:   s.maxBatch.Load(),
		QueueWait:  s.queueWait.snapshot(),
		Latency:    s.latency.snapshot(),
	}
}

// claimLocked removes and returns a run of coalescable jobs from the
// queue: a seed job plus every later job sharing its coalesce key, up to
// limit. The seed is the highest-priority pending job (oldest wins ties,
// so default-priority traffic claims strictly in arrival order).
// Non-matching jobs keep their order. Callers hold s.mu.
func (s *streamState[E]) claimLocked(workers int, maxCoalesce int, claimed []*streamJob[E]) []*streamJob[E] {
	// Self-balancing claim size: a lone submission is answered immediately,
	// a burst of n spreads ~n/workers to each worker so the whole set runs
	// concurrently, and the cap bounds the latency of the claim's first
	// member. Mirrors the chunking of the batch-barrier run().
	limit := len(s.queue) / workers
	if limit < 1 {
		limit = 1
	}
	if limit > maxCoalesce {
		limit = maxCoalesce
	}
	seedIdx := 0
	for i := 1; i < len(s.queue); i++ {
		if s.queue[i].priority > s.queue[seedIdx].priority {
			seedIdx = i
		}
	}
	seed := s.queue[seedIdx]
	claimed = append(claimed, seed)
	w := 0
	for i := 0; i < len(s.queue); i++ {
		if i == seedIdx {
			continue
		}
		j := s.queue[i]
		if len(claimed) < limit && seed.coalesceKey(j) {
			claimed = append(claimed, j)
		} else {
			s.queue[w] = j
			w++
		}
	}
	// Clear the tail so dropped jobs do not pin their queries alive.
	for i := w; i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = s.queue[:w]
	return claimed
}

// streamWorker is the long-lived worker loop: wait for work, claim a
// coalescable run, answer it with one batched call, complete the futures.
func (p *QueryPool[E]) streamWorker() {
	s := &p.streaming
	defer s.wg.Done()
	var claimed []*streamJob[E]
	var live []*streamJob[E]
	var qs []seq.Sequence[E]
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		claimed = s.claimLocked(p.workers, p.maxCoalesce, claimed[:0])
		s.mu.Unlock()

		// Complete submissions whose context was cancelled or whose
		// deadline passed while queued, without spending index work on
		// them — this is the drop-expired-before-claim guarantee: a
		// worker never prices work nobody is waiting for.
		now := time.Now()
		live, qs = live[:0], qs[:0]
		for _, j := range claimed {
			if err := j.ctx.Err(); err != nil {
				j.fail(err)
				s.cancelled.Add(1)
				s.finish(j)
				continue
			}
			if !j.deadline.IsZero() && !now.Before(j.deadline) {
				j.fail(ErrDeadlineExceeded)
				s.expired.Add(1)
				s.finish(j)
				continue
			}
			s.queueWait.observe(now.Sub(j.enq))
			live = append(live, j)
			qs = append(qs, j.q)
		}
		if len(live) > 0 {
			// Counters move before the futures complete, so a caller that
			// awaits its last future and immediately snapshots StreamStats
			// never observes Completed lagging its own resolved work.
			s.batches.Add(1)
			if n := int64(len(live)); n > 1 {
				s.coalesced.Add(n)
			}
			for {
				max := s.maxBatch.Load()
				if int64(len(live)) <= max || s.maxBatch.CompareAndSwap(max, int64(len(live))) {
					break
				}
			}
			s.completed.Add(int64(len(live)))
			p.runClaim(live, qs)
			done := time.Now()
			for _, j := range live {
				s.latency.observe(done.Sub(j.t0))
				s.finish(j)
			}
		}
	}
}

// runClaim answers one claim, converting a panic anywhere under runBatch
// (a faulty distance evaluator, an index bug) into per-future
// ErrWorkerCrashed failures instead of a dead worker: the claim's
// unresolved futures fail, the accounting moves from Completed to Crashed
// for exactly those, and the worker loop continues — the pool self-heals
// around poisoned queries. Futures runBatch already completed (Nearest
// resolves incrementally) keep their answers; the settled guard on
// Future.complete makes the sweep safe.
func (p *QueryPool[E]) runClaim(live []*streamJob[E], qs []seq.Sequence[E]) {
	s := &p.streaming
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("%w: %v", ErrWorkerCrashed, r)
			var failed int64
			for _, j := range live {
				if j.fail(err) {
					failed++
				}
			}
			s.completed.Add(-failed)
			s.crashed.Add(failed)
		}
	}()
	p.runBatch(live, qs)
}

// runBatch answers one claimed run — all jobs share a coalesce key — with a
// single batched call and completes each job's future with its own slice of
// the result. The matcher is pinned per claim, so a view-backed pool holds
// its read guard only while a claim is actually computing — between claims
// the store is free to mutate or swap.
func (p *QueryPool[E]) runBatch(jobs []*streamJob[E], qs []seq.Sequence[E]) {
	mt, release := p.acquire()
	defer release()
	switch jobs[0].kind {
	case kindFilter:
		hits := mt.FilterHitsBatch(qs, jobs[0].eps)
		for i, j := range jobs {
			j.fHits.complete(hits[i], nil)
		}
	case kindFindAll:
		ms := mt.FindAllBatch(qs, jobs[0].eps)
		for i, j := range jobs {
			j.fAll.complete(ms[i], nil)
		}
	case kindLongest:
		ms, found := mt.LongestBatch(qs, jobs[0].eps)
		for i, j := range jobs {
			j.fOne.complete(QueryResult{Match: ms[i], Found: found[i]}, nil)
		}
	case kindNearest:
		for i, j := range jobs {
			m, ok := mt.Nearest(qs[i], j.opts)
			j.fOne.complete(QueryResult{Match: m, Found: ok}, nil)
		}
	}
}
