package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/seq"
)

// Streaming query engine (ROADMAP: the step from a batch-barrier QueryPool
// to a serving daemon).
//
// The batch entry points (QueryPool.FindAll and friends) are barriers: the
// caller owns a complete query slice, hands it over, and blocks until every
// answer is back. A server cannot work that way — queries arrive one at a
// time from independent connections, and each caller wants only its own
// answer, as soon as it is ready. Submit and its siblings provide that
// shape: each submission returns a Future immediately, and a long-lived
// worker set answers submissions as they arrive.
//
// The throughput trick of the batch path — one shared index traversal
// across a query set (FilterHitsBatch) — still applies, because concurrent
// submissions are exactly a query set that happens to arrive through many
// goroutines. Workers therefore claim *runs* of compatible pending
// submissions (same query type, same radius) and answer each run with one
// batched call, so streaming throughput tracks batch throughput instead of
// degrading to one-traversal-per-query. The claim size self-balances:
// a worker takes ~pending/workers jobs (at least 1, at most the coalescing
// cap), so a burst spreads over the worker set while a trickle is answered
// immediately.
//
// Backpressure is a bounded in-flight budget: at most queueDepth
// submissions may be submitted-but-not-completed at once, and Submit blocks
// (respecting its context) until the engine drains. This is what keeps a
// serving deployment's memory bounded when clients outpace the hardware.

// ErrPoolClosed is returned by futures whose submission was rejected
// because Close had already been called.
var ErrPoolClosed = errors.New("core: query pool closed")

// Future is the pending result of a streaming submission. A Future is
// completed exactly once by the pool; any number of goroutines may Await
// it.
type Future[T any] struct {
	done chan struct{}
	val  T
	err  error
}

func newFuture[T any]() *Future[T] { return &Future[T]{done: make(chan struct{})} }

func (f *Future[T]) complete(v T, err error) {
	f.val, f.err = v, err
	close(f.done)
}

// Await blocks until the result is ready or ctx is done, whichever comes
// first. A completed future always reports its result, even when ctx is
// already cancelled.
func (f *Future[T]) Await(ctx context.Context) (T, error) {
	select {
	case <-f.done:
		return f.val, f.err
	default:
	}
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// Done returns a channel that is closed when the result is ready, for
// select-based consumers; after Done, Await returns without blocking.
func (f *Future[T]) Done() <-chan struct{} { return f.done }

// QueryResult is the outcome of a Longest or Nearest submission: the best
// match and whether any similar pair exists.
type QueryResult struct {
	Match Match
	Found bool
}

// queryKind tags a streaming submission with its query type.
type queryKind uint8

const (
	kindFilter queryKind = iota
	kindFindAll
	kindLongest
	kindNearest
)

// streamJob is one pending submission. Exactly one of the future fields is
// set, matching kind.
type streamJob[E any] struct {
	kind queryKind
	q    seq.Sequence[E]
	eps  float64
	opts NearestOptions
	ctx  context.Context

	fHits *Future[[]Hit[E]]
	fAll  *Future[[]Match]
	fOne  *Future[QueryResult]
}

// fail completes the job's future with err.
func (j *streamJob[E]) fail(err error) {
	switch j.kind {
	case kindFilter:
		j.fHits.complete(nil, err)
	case kindFindAll:
		j.fAll.complete(nil, err)
	default:
		j.fOne.complete(QueryResult{}, err)
	}
}

// coalesceKey reports whether two jobs may be answered by one batched call:
// same query type and same radius (the batch entry points take a single eps
// for the whole set). Nearest jobs are never batched — Type III shares no
// traversal — but grouping them lets one claim amortise scheduler trips.
func (j *streamJob[E]) coalesceKey(o *streamJob[E]) bool {
	if j.kind != o.kind {
		return false
	}
	if j.kind == kindNearest {
		return j.opts == o.opts
	}
	return j.eps == o.eps
}

// streamState is the engine behind the streaming submissions: a bounded
// queue, a condition-variable-guarded dispatch list and a long-lived worker
// set, started lazily on first submission.
type streamState[E any] struct {
	start   sync.Once
	started atomic.Bool
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*streamJob[E]
	// slots is the in-flight budget: one token per submission from enqueue
	// to completion. Its capacity is the pool's queueDepth.
	slots  chan struct{}
	closed bool
	wg     sync.WaitGroup

	submitted atomic.Int64
	completed atomic.Int64
	cancelled atomic.Int64
	rejected  atomic.Int64
	batches   atomic.Int64
	coalesced atomic.Int64
	maxBatch  atomic.Int64
}

// StreamStats is a point-in-time snapshot of the streaming engine's
// activity, surfaced by subseqctl serve's /stats endpoint.
type StreamStats struct {
	// Workers and QueueDepth echo the pool's configuration.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Pending counts submissions waiting for a worker; InFlight counts
	// submissions submitted but not yet completed (pending + running).
	Pending  int `json:"pending"`
	InFlight int `json:"in_flight"`
	// Submitted/Completed/Cancelled/Rejected are lifetime submission
	// counts; Cancelled submissions were abandoned by their context before
	// a worker ran them, Rejected ones arrived after Close.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Cancelled int64 `json:"cancelled"`
	Rejected  int64 `json:"rejected"`
	// Batches counts worker claims (one batched call each); Coalesced
	// counts submissions that shared their claim with at least one other,
	// and MaxBatch is the largest claim so far. Coalesced/Submitted near 1
	// means the engine is successfully turning concurrent submissions into
	// shared traversals.
	Batches   int64 `json:"batches"`
	Coalesced int64 `json:"coalesced"`
	MaxBatch  int64 `json:"max_batch"`
}

// DefaultQueueDepth bounds in-flight submissions when the pool was built
// without WithQueueDepth: deep enough that workers never starve between
// claims, shallow enough that a stalled consumer cannot queue unbounded
// work.
const DefaultQueueDepth = 1024

// defaultMaxCoalesce caps how many submissions one worker claim may answer
// in a single batched call. FilterHitsBatch re-chunks internally to keep
// traversal state cache-resident, so the cap only bounds latency (a huge
// claim makes its first member wait for its last), not correctness.
const defaultMaxCoalesce = 64

// stream returns the engine, starting the worker set on first use.
func (p *QueryPool[E]) stream() *streamState[E] {
	s := &p.streaming
	s.start.Do(func() {
		s.cond = sync.NewCond(&s.mu)
		s.slots = make(chan struct{}, p.queueDepth)
		s.wg.Add(p.workers)
		s.started.Store(true)
		for w := 0; w < p.workers; w++ {
			go p.streamWorker()
		}
	})
	return s
}

// submit enqueues j, blocking for an in-flight slot when the engine is at
// queueDepth. The job's future is completed with ctx.Err() if ctx is done
// first, or ErrPoolClosed if the pool closed first.
func (p *QueryPool[E]) submit(ctx context.Context, j *streamJob[E]) {
	if ctx == nil {
		ctx = context.Background()
	}
	j.ctx = ctx
	s := p.stream()
	s.submitted.Add(1)
	if err := ctx.Err(); err != nil {
		s.cancelled.Add(1)
		j.fail(err)
		return
	}
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		s.cancelled.Add(1)
		j.fail(ctx.Err())
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.slots
		s.rejected.Add(1)
		j.fail(ErrPoolClosed)
		return
	}
	s.queue = append(s.queue, j)
	s.mu.Unlock()
	s.cond.Signal()
}

// Submit streams one FindAll (query Type I) through the pool: the returned
// future resolves to exactly Matcher.FindAll(q, eps). Concurrent
// submissions at the same radius are answered together through one shared
// index traversal.
func (p *QueryPool[E]) Submit(ctx context.Context, q seq.Sequence[E], eps float64) *Future[[]Match] {
	j := &streamJob[E]{kind: kindFindAll, q: q, eps: eps, fAll: newFuture[[]Match]()}
	p.submit(ctx, j)
	return j.fAll
}

// SubmitFilter streams the filtering steps (3–4) for one query: the future
// resolves to exactly Matcher.FilterHits(q, eps).
func (p *QueryPool[E]) SubmitFilter(ctx context.Context, q seq.Sequence[E], eps float64) *Future[[]Hit[E]] {
	j := &streamJob[E]{kind: kindFilter, q: q, eps: eps, fHits: newFuture[[]Hit[E]]()}
	p.submit(ctx, j)
	return j.fHits
}

// SubmitLongest streams one Longest (query Type II): the future resolves to
// exactly Matcher.Longest(q, eps).
func (p *QueryPool[E]) SubmitLongest(ctx context.Context, q seq.Sequence[E], eps float64) *Future[QueryResult] {
	j := &streamJob[E]{kind: kindLongest, q: q, eps: eps, fOne: newFuture[QueryResult]()}
	p.submit(ctx, j)
	return j.fOne
}

// SubmitNearest streams one Nearest (query Type III): the future resolves
// to exactly Matcher.Nearest(q, opts). Type III shares no traversal across
// queries, so the workers contribute parallelism only.
func (p *QueryPool[E]) SubmitNearest(ctx context.Context, q seq.Sequence[E], opts NearestOptions) *Future[QueryResult] {
	j := &streamJob[E]{kind: kindNearest, q: q, opts: opts, fOne: newFuture[QueryResult]()}
	p.submit(ctx, j)
	return j.fOne
}

// Close stops the streaming engine gracefully: submissions already accepted
// are drained and their futures completed, later submissions fail with
// ErrPoolClosed, and Close returns once every worker has exited. The
// batch-barrier methods (FindAll, Longest, …) remain usable after Close —
// they run on ephemeral goroutines, not the streaming worker set. Close is
// idempotent.
func (p *QueryPool[E]) Close() {
	s := &p.streaming
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	// Workers only exist if something was ever submitted; a pool used
	// purely through the batch-barrier methods closes without starting
	// them. (A submission racing this Close either fails with
	// ErrPoolClosed or is drained by the workers it started, which see
	// closed and exit on their own.)
	if s.started.Load() {
		s.cond.Broadcast()
		s.wg.Wait()
	}
}

// StreamStats snapshots the streaming engine's activity counters. On a
// pool that has never streamed it reports the configuration with zero
// counters, without starting the worker set.
func (p *QueryPool[E]) StreamStats() StreamStats {
	s := &p.streaming
	s.mu.Lock()
	pending := len(s.queue)
	s.mu.Unlock()
	return StreamStats{
		Workers:    p.workers,
		QueueDepth: p.queueDepth,
		Pending:    pending,
		InFlight:   len(s.slots),
		Submitted:  s.submitted.Load(),
		Completed:  s.completed.Load(),
		Cancelled:  s.cancelled.Load(),
		Rejected:   s.rejected.Load(),
		Batches:    s.batches.Load(),
		Coalesced:  s.coalesced.Load(),
		MaxBatch:   s.maxBatch.Load(),
	}
}

// claimLocked removes and returns a run of coalescable jobs from the
// queue: the head job plus every later job sharing its coalesce key, up to
// limit. Non-matching jobs keep their order. Callers hold s.mu.
func (s *streamState[E]) claimLocked(workers int, maxCoalesce int, claimed []*streamJob[E]) []*streamJob[E] {
	// Self-balancing claim size: a lone submission is answered immediately,
	// a burst of n spreads ~n/workers to each worker so the whole set runs
	// concurrently, and the cap bounds the latency of the claim's first
	// member. Mirrors the chunking of the batch-barrier run().
	limit := len(s.queue) / workers
	if limit < 1 {
		limit = 1
	}
	if limit > maxCoalesce {
		limit = maxCoalesce
	}
	head := s.queue[0]
	claimed = append(claimed, head)
	w := 0
	for i := 1; i < len(s.queue); i++ {
		j := s.queue[i]
		if len(claimed) < limit && head.coalesceKey(j) {
			claimed = append(claimed, j)
		} else {
			s.queue[w] = j
			w++
		}
	}
	// Clear the tail so dropped jobs do not pin their queries alive.
	for i := w; i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = s.queue[:w]
	return claimed
}

// streamWorker is the long-lived worker loop: wait for work, claim a
// coalescable run, answer it with one batched call, complete the futures.
func (p *QueryPool[E]) streamWorker() {
	s := &p.streaming
	defer s.wg.Done()
	var claimed []*streamJob[E]
	var live []*streamJob[E]
	var qs []seq.Sequence[E]
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		claimed = s.claimLocked(p.workers, p.maxCoalesce, claimed[:0])
		s.mu.Unlock()

		// Complete submissions whose context was cancelled while queued
		// without spending index work on them.
		live, qs = live[:0], qs[:0]
		for _, j := range claimed {
			if err := j.ctx.Err(); err != nil {
				j.fail(err)
				s.cancelled.Add(1)
				<-s.slots
				continue
			}
			live = append(live, j)
			qs = append(qs, j.q)
		}
		if len(live) > 0 {
			// Counters move before the futures complete, so a caller that
			// awaits its last future and immediately snapshots StreamStats
			// never observes Completed lagging its own resolved work.
			s.batches.Add(1)
			if n := int64(len(live)); n > 1 {
				s.coalesced.Add(n)
			}
			for {
				max := s.maxBatch.Load()
				if int64(len(live)) <= max || s.maxBatch.CompareAndSwap(max, int64(len(live))) {
					break
				}
			}
			s.completed.Add(int64(len(live)))
			p.runBatch(live, qs)
			for range live {
				<-s.slots
			}
		}
	}
}

// runBatch answers one claimed run — all jobs share a coalesce key — with a
// single batched call and completes each job's future with its own slice of
// the result. The matcher is pinned per claim, so a view-backed pool holds
// its read guard only while a claim is actually computing — between claims
// the store is free to mutate or swap.
func (p *QueryPool[E]) runBatch(jobs []*streamJob[E], qs []seq.Sequence[E]) {
	mt, release := p.acquire()
	defer release()
	switch jobs[0].kind {
	case kindFilter:
		hits := mt.FilterHitsBatch(qs, jobs[0].eps)
		for i, j := range jobs {
			j.fHits.complete(hits[i], nil)
		}
	case kindFindAll:
		ms := mt.FindAllBatch(qs, jobs[0].eps)
		for i, j := range jobs {
			j.fAll.complete(ms[i], nil)
		}
	case kindLongest:
		ms, found := mt.LongestBatch(qs, jobs[0].eps)
		for i, j := range jobs {
			j.fOne.complete(QueryResult{Match: ms[i], Found: found[i]}, nil)
		}
	case kindNearest:
		for i, j := range jobs {
			m, ok := mt.Nearest(qs[i], j.opts)
			j.fOne.complete(QueryResult{Match: m, Found: ok}, nil)
		}
	}
}
