// Package core implements the paper's subsequence-retrieval framework
// (Sections 5 and 7): given a database of sequences, a consistent distance
// measure and the two user parameters λ (minimum match length) and λ0
// (maximum temporal shift), it answers the three query types — range
// (Type I, FindAll), longest similar subsequence (Type II, Longest) and
// nearest neighbour (Type III, Nearest).
//
// # Pipeline
//
// A Matcher executes the paper's five steps:
//
//  1. the database is partitioned into fixed windows of length l = λ/2
//     (Lemma 2 requires l ≤ λ/2 for the filter to be lossless);
//  2. the windows are inserted into a metric index (Config.Index selects
//     the reference net, the cover tree, the MV reference index, or a
//     linear scan for non-metric measures);
//  3. every query segment of length λ/2−λ0 … λ/2+λ0 probes the index for
//     windows within the query radius;
//  4. surviving segment↔window pairs (Hits) seed candidate regions;
//  5. candidates are verified by direct distance evaluation (verify.go),
//     which also de-duplicates and maximises the reported Matches.
//
// Construction-time validation (validateMeasure) rejects unsound
// configurations instead of returning silently wrong answers: the filter
// is lossless only for consistent measures, metric indexes prune correctly
// only for metric measures, and lock-step measures require λ0 = 0.
//
// # Throughput
//
// The filter takes the measure's optional fast paths when present: the
// incremental kernel path (Measure.Prepare) prices all 2λ0+1 segment
// lengths at one query offset in a single streamed pass — on the linear
// backend per window, and on the reference net inside the index traversal
// itself (kerneleval.go), where grouped probes cut counted filter
// evaluations below one per probe. Bounded early-abandoning evaluation
// stops a distance computation as soon as it provably exceeds the radius,
// on the linear scan and on the net's traversal probes alike. The
// immutable kernel preprocessing is built lazily, once per window on
// first touch, and shared by all workers (preparedAt), capping kernel
// memory at O(windows) without an O(windows) startup cost. For query
// sets, FilterHitsBatch / FindAllBatch / LongestBatch share one
// cache-chunked index traversal across all queries of a batch (chunk size
// derived from the index size and a cache budget, maxBatchProbesFor), and
// QueryPool fans batch chunks over a fixed set of worker goroutines; a
// Matcher is safe for concurrent queries.
//
// # Serving
//
// QueryPool's streaming face (stream.go) is the serving shape over the
// same machinery: Submit / SubmitFilter / SubmitLongest / SubmitNearest
// accept queries one at a time and return per-query Futures, answered by
// a long-lived worker set that coalesces concurrently pending
// submissions of the same query type and radius back into the shared
// batch traversals — so streaming throughput tracks batch throughput.
// Submissions honour contexts, the in-flight queue is bounded
// (backpressure), and Close drains gracefully. subseqctl serve and
// docs/SERVING.md build the HTTP surface on exactly this API.
//
// BruteForce answers the same three query types exhaustively; it is the
// correctness oracle the tests compare every backend against.
package core
