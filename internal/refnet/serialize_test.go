package refnet

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	n := New(absDist, WithBase(0.5), WithMaxParents(3))
	var items []float64
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 200
		items = append(items, v)
		n.Insert(v)
	}

	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf, absDist)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != n.Len() {
		t.Fatalf("Len = %d, want %d", loaded.Len(), n.Len())
	}
	if loaded.Base() != 0.5 || loaded.MaxParents() != 3 {
		t.Errorf("options not preserved: base=%v max=%d", loaded.Base(), loaded.MaxParents())
	}
	if err := loaded.Validate(); err != nil {
		t.Fatalf("loaded net invalid: %v", err)
	}
	// Queries must agree exactly with the original.
	for trial := 0; trial < 25; trial++ {
		q := rng.Float64() * 200
		eps := rng.Float64() * 30
		a := sortedRange(n, q, eps)
		b := sortedRange(loaded, q, eps)
		if !equalFloats(a, b) {
			t.Fatalf("query mismatch after reload (q=%v eps=%v): %d vs %d items", q, eps, len(a), len(b))
		}
	}
	// The loaded net must accept further inserts and deletes.
	h := loaded.InsertTracked(999)
	if got := loaded.Range(999, 0); len(got) != 1 {
		t.Errorf("insert after load: %v", got)
	}
	if err := loaded.Delete(h); err != nil {
		t.Errorf("delete after load: %v", err)
	}
	if err := loaded.Validate(); err != nil {
		t.Errorf("invalid after post-load mutation: %v", err)
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	n := New(absDist)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, absDist)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Errorf("Len = %d", loaded.Len())
	}
	loaded.Insert(1)
	if got := loaded.Range(1, 0); len(got) != 1 {
		t.Errorf("reuse failed: %v", got)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a gob stream"), absDist); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveLoadStructPayload(t *testing.T) {
	type item struct{ X, Y float64 }
	d := func(a, b item) float64 {
		dx, dy := a.X-b.X, a.Y-b.Y
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	}
	n := New(d)
	rng := rand.New(rand.NewPCG(73, 74))
	for i := 0; i < 200; i++ {
		n.Insert(item{rng.Float64() * 50, rng.Float64() * 50})
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
	q := item{25, 25}
	if a, b := len(n.Range(q, 5)), len(loaded.Range(q, 5)); a != b {
		t.Errorf("range mismatch: %d vs %d", a, b)
	}
}
