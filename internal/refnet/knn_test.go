package refnet

import (
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/metric"
)

// bruteKNN is the oracle: sort all items by distance and take k.
func bruteKNN(items []float64, q float64, k int) []float64 {
	ds := make([]float64, len(items))
	for i, v := range items {
		ds[i] = absDist(q, v)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	n := New(absDist)
	var items []float64
	for i := 0; i < 400; i++ {
		v := rng.Float64() * 500
		items = append(items, v)
		n.Insert(v)
	}
	for _, k := range []int{1, 3, 10, 50} {
		for trial := 0; trial < 15; trial++ {
			q := rng.Float64() * 500
			got := n.KNN(q, k)
			if len(got) != k {
				t.Fatalf("k=%d: got %d results", k, len(got))
			}
			want := bruteKNN(items, q, k)
			for i := range got {
				// Compare distance multisets (ties may reorder items).
				if got[i].Dist != want[i] {
					t.Fatalf("k=%d q=%v: rank %d distance %v, want %v", k, q, i, got[i].Dist, want[i])
				}
				if absDist(q, got[i].Item) != got[i].Dist {
					t.Fatalf("reported distance inconsistent with item")
				}
			}
			// Results must be sorted ascending.
			for i := 1; i < len(got); i++ {
				if got[i].Dist < got[i-1].Dist {
					t.Fatalf("results not sorted: %v", got)
				}
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	n := New(absDist)
	if got := n.KNN(1, 3); got != nil {
		t.Errorf("empty net KNN = %v", got)
	}
	n.Insert(5)
	n.Insert(9)
	if got := n.KNN(6, 0); got != nil {
		t.Errorf("k=0 → %v", got)
	}
	got := n.KNN(6, 10) // k larger than the net
	if len(got) != 2 {
		t.Fatalf("k>n returned %d items", len(got))
	}
	if got[0].Item != 5 || got[1].Item != 9 {
		t.Errorf("wrong order: %v", got)
	}
	nn, ok := n.NearestNeighbor(8.5)
	if !ok || nn.Item != 9 {
		t.Errorf("NearestNeighbor = %v ok=%v", nn, ok)
	}
	if _, ok := New(absDist).NearestNeighbor(1); ok {
		t.Error("NN on empty net reported ok")
	}
}

func TestKNNClusteredPrunes(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 64))
	counter := metric.NewCounter(absDist)
	n := New(counter.Distance)
	const N = 2000
	var items []float64
	for i := 0; i < N; i++ {
		v := float64(i%20)*1000 + rng.Float64()
		items = append(items, v)
		n.Insert(v)
	}
	counter.Reset()
	got := n.KNN(5000.5, 5)
	calls := counter.Calls()
	want := bruteKNN(items, 5000.5, 5)
	for i := range got {
		if got[i].Dist != want[i] {
			t.Fatalf("rank %d: %v vs %v", i, got[i].Dist, want[i])
		}
	}
	if calls >= N/2 {
		t.Errorf("KNN computed %d distances of %d; branch-and-bound ineffective", calls, N)
	}
}

func TestKNNAfterDeletions(t *testing.T) {
	rng := rand.New(rand.NewPCG(65, 66))
	n := New(absDist)
	type entry struct {
		v float64
		h *Node[float64]
	}
	var live []entry
	for i := 0; i < 300; i++ {
		v := rng.Float64() * 100
		live = append(live, entry{v, n.InsertTracked(v)})
	}
	for i := 0; i < 150; i++ {
		j := rng.IntN(len(live))
		if err := n.Delete(live[j].h); err != nil {
			t.Fatal(err)
		}
		live[j] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	vals := make([]float64, len(live))
	for i, e := range live {
		vals[i] = e.v
	}
	got := n.KNN(42, 7)
	want := bruteKNN(vals, 42, 7)
	for i := range got {
		if got[i].Dist != want[i] {
			t.Fatalf("rank %d: %v vs %v", i, got[i].Dist, want[i])
		}
	}
}

// TestKNNBoundedMatchesExact: with a bounded evaluation armed, KNN must
// return bit-identical results to the unbounded traversal — the shrinking
// radius kth+ρ only ever abandons candidates that could neither enter the
// heap nor expand the frontier. Also checks that abandoning actually
// happens (fewer full-cost evaluations), so the optimisation is live.
func TestKNNBoundedMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 64))
	var full, abandoned int
	bounded := func(a, b, eps float64) float64 {
		d := absDist(a, b)
		if d > eps {
			abandoned++
			return eps + 1 // inexact, just provably > eps
		}
		full++
		return d
	}
	exact := New(absDist, WithMaxParents(5))
	armed := New(absDist, WithMaxParents(5))
	var items []float64
	for i := 0; i < 600; i++ {
		v := rng.Float64() * 500
		items = append(items, v)
		exact.Insert(v)
		armed.Insert(v)
	}
	armed.SetBounded(bounded)
	for _, k := range []int{1, 5, 25} {
		for trial := 0; trial < 20; trial++ {
			q := rng.Float64() * 500
			a, b := exact.KNN(q, k), armed.KNN(q, k)
			if len(a) != len(b) {
				t.Fatalf("k=%d: %d vs %d results", k, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("k=%d q=%v rank %d: exact %v, bounded %v", k, q, i, a[i], b[i])
				}
			}
		}
	}
	if abandoned == 0 {
		t.Error("bounded evaluation never abandoned: shrinking radius not exercised")
	}
	// The bounded net must also satisfy the metric.Index contract still.
	var _ metric.Index[float64] = armed
}
