package refnet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// Persistence. A net is serialised as a flat adjacency list: nodes in a
// stable walk order with their levels and items, plus parent→child edges
// carrying the stored distances. Loading therefore needs NO distance
// computations — important when the metric is expensive (edit distances
// over long windows), since rebuilding a 100K-window net costs millions
// of distance evaluations while decoding costs none.
//
// # Format (version 2)
//
// All integers little-endian. The stream is framed so that a decoder can
// validate every length before allocating, and the whole payload is
// covered by a trailing CRC so corruption yields a typed CorruptError
// with a byte-offset witness, never a panic or a silently wrong net.
//
//	magic   "RNETv2\x00\x00"  8 bytes
//	base    float64           level-0 radius ǫ′ (> 0, finite)
//	numMax  uint32            parent cap (0 = unlimited)
//	nodes   uint32            node count (≤ maxWireNodes)
//	edges   uint64            parent→child edge count (≤ maxWireEdges)
//	levels  nodes × uint32    storage level of node i (node 0 is the root)
//	ilen    uint64            byte length of the items block (≤ maxWireBlock)
//	items   ilen bytes        gob-encoded []T, one payload per node
//	edge i  uint32 uint32 float64   parent index, child index, stored distance
//	crc     uint32            IEEE CRC-32 of every preceding byte
//
// The item type T must be encodable by encoding/gob (exported fields,
// no functions). The distance function is not serialised; the loader
// supplies it and remains responsible for it matching the builder's
// (Validate can verify, at the cost of recomputing every edge).

var wireMagic = [8]byte{'R', 'N', 'E', 'T', 'v', '2', 0, 0}

// Sanity caps. A length prefix beyond these is rejected before any
// allocation, so a corrupt or adversarial stream cannot OOM the loader.
const (
	maxWireNodes = 1 << 28 // 268M nodes
	maxWireEdges = 1 << 32 // parent links (multi-parent: can exceed nodes)
	maxWireBlock = 1 << 32 // gob items block bytes
)

// CorruptError reports a malformed snapshot stream. Offset is the number
// of bytes consumed from the reader when the problem was detected — the
// witness for "where did it go wrong" in operational debugging.
type CorruptError struct {
	Offset int64
	Reason string
	Err    error // underlying decode/IO error, when one exists
}

func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("refnet: corrupt stream at offset %d: %s: %v", e.Offset, e.Reason, e.Err)
	}
	return fmt.Sprintf("refnet: corrupt stream at offset %d: %s", e.Offset, e.Reason)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// crcWriter tees writes into a running CRC and tracks the byte offset.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
	off int64
}

func newCRCWriter(w io.Writer) *crcWriter {
	return &crcWriter{w: w, crc: crc32.NewIEEE()}
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc.Write(p[:n])
	cw.off += int64(n)
	return n, err
}

// crcReader mirrors crcWriter on the decode side.
type crcReader struct {
	r   io.Reader
	crc hash.Hash32
	off int64
}

func newCRCReader(r io.Reader) *crcReader {
	return &crcReader{r: r, crc: crc32.NewIEEE()}
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc.Write(p[:n])
	cr.off += int64(n)
	return n, err
}

// corrupt builds the typed error at the reader's current offset.
func (cr *crcReader) corrupt(reason string, err error) *CorruptError {
	return &CorruptError{Offset: cr.off, Reason: reason, Err: err}
}

// readFull wraps io.ReadFull with the typed error; what names the field
// being read so truncation errors say which part of the frame was cut.
func (cr *crcReader) readFull(buf []byte, what string) error {
	if _, err := io.ReadFull(cr, buf); err != nil {
		return cr.corrupt("truncated "+what, err)
	}
	return nil
}

// readBlock reads exactly n bytes, growing the result as the stream
// delivers them rather than trusting the claimed length up front — a
// corrupt header announcing a multi-gigabyte block therefore fails at the
// stream's real end instead of pre-allocating the lie.
func (cr *crcReader) readBlock(n int64, what string) ([]byte, error) {
	var buf bytes.Buffer
	m, err := io.Copy(&buf, io.LimitReader(cr, n))
	if err != nil {
		return nil, cr.corrupt("truncated "+what, err)
	}
	if m != n {
		return nil, cr.corrupt(fmt.Sprintf("truncated %s: %d of %d bytes", what, m, n), io.ErrUnexpectedEOF)
	}
	return buf.Bytes(), nil
}

// Save writes the net to w in the versioned binary format above.
func (t *Net[T]) Save(w io.Writer) error {
	// Gob-encode the item payloads first so the block can be length-framed
	// (the decoder must not read past it: gob buffers ahead otherwise).
	var items bytes.Buffer
	index := make(map[*Node[T]]uint32, t.size)
	payload := make([]T, 0, t.size)
	levels := make([]uint32, 0, t.size)
	edges := 0
	t.walk(func(n *Node[T]) {
		index[n] = uint32(len(payload))
		payload = append(payload, n.item)
		levels = append(levels, uint32(n.level))
		edges += len(n.children)
	})
	if err := gob.NewEncoder(&items).Encode(payload); err != nil {
		return fmt.Errorf("refnet: encode items: %w", err)
	}

	cw := newCRCWriter(w)
	if _, err := cw.Write(wireMagic[:]); err != nil {
		return fmt.Errorf("refnet: write header: %w", err)
	}
	var head [24]byte
	binary.LittleEndian.PutUint64(head[0:], math.Float64bits(t.base))
	binary.LittleEndian.PutUint32(head[8:], uint32(t.numMax))
	binary.LittleEndian.PutUint32(head[12:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(head[16:], uint64(edges))
	if _, err := cw.Write(head[:]); err != nil {
		return fmt.Errorf("refnet: write header: %w", err)
	}
	if err := binary.Write(cw, binary.LittleEndian, levels); err != nil {
		return fmt.Errorf("refnet: write levels: %w", err)
	}
	if err := binary.Write(cw, binary.LittleEndian, uint64(items.Len())); err != nil {
		return fmt.Errorf("refnet: write items: %w", err)
	}
	if _, err := cw.Write(items.Bytes()); err != nil {
		return fmt.Errorf("refnet: write items: %w", err)
	}
	var erec [16]byte
	var werr error
	t.walk(func(n *Node[T]) {
		pi := index[n]
		for _, e := range n.children {
			binary.LittleEndian.PutUint32(erec[0:], pi)
			binary.LittleEndian.PutUint32(erec[4:], index[e.n])
			binary.LittleEndian.PutUint64(erec[8:], math.Float64bits(e.d))
			if _, err := cw.Write(erec[:]); err != nil && werr == nil {
				werr = err
			}
		}
	})
	if werr != nil {
		return fmt.Errorf("refnet: write edges: %w", werr)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.crc.Sum32())
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("refnet: write checksum: %w", err)
	}
	return nil
}

// Load reads a net written by Save, attaching the given distance function
// (which must be the same metric the net was built with). Malformed input
// — wrong magic, truncation, out-of-range lengths, dangling edges, or a
// checksum mismatch — returns a *CorruptError carrying the byte offset at
// which the problem surfaced; Load never panics and never returns a
// structurally inconsistent net.
func Load[T any](r io.Reader, dist func(a, b T) float64) (*Net[T], error) {
	cr := newCRCReader(r)
	var magic [8]byte
	if err := cr.readFull(magic[:], "magic"); err != nil {
		return nil, err
	}
	if magic != wireMagic {
		return nil, cr.corrupt(fmt.Sprintf("bad magic %q (not a refnet v2 stream)", magic[:]), nil)
	}
	var head [24]byte
	if err := cr.readFull(head[:], "header"); err != nil {
		return nil, err
	}
	base := math.Float64frombits(binary.LittleEndian.Uint64(head[0:]))
	numMax := binary.LittleEndian.Uint32(head[8:])
	nodes := binary.LittleEndian.Uint32(head[12:])
	edges := binary.LittleEndian.Uint64(head[16:])
	if !(base > 0) || math.IsInf(base, 1) { // NaN fails the > comparison too
		return nil, cr.corrupt(fmt.Sprintf("base radius %v not positive finite", base), nil)
	}
	if nodes > maxWireNodes {
		return nil, cr.corrupt(fmt.Sprintf("node count %d exceeds cap %d", nodes, maxWireNodes), nil)
	}
	if edges > maxWireEdges {
		return nil, cr.corrupt(fmt.Sprintf("edge count %d exceeds cap %d", edges, maxWireEdges), nil)
	}
	if nodes > 0 && edges > uint64(nodes)*uint64(nodes) {
		return nil, cr.corrupt(fmt.Sprintf("edge count %d impossible for %d nodes", edges, nodes), nil)
	}

	lraw, err := cr.readBlock(int64(nodes)*4, "levels")
	if err != nil {
		return nil, err
	}
	levels := make([]uint32, nodes)
	for i := range levels {
		levels[i] = binary.LittleEndian.Uint32(lraw[4*i:])
	}
	var lenb [8]byte
	if err := cr.readFull(lenb[:], "items length"); err != nil {
		return nil, err
	}
	ilen := binary.LittleEndian.Uint64(lenb[:])
	if ilen > maxWireBlock {
		return nil, cr.corrupt(fmt.Sprintf("items block %d bytes exceeds cap %d", ilen, maxWireBlock), nil)
	}
	itemsRaw, err := cr.readBlock(int64(ilen), "items block")
	if err != nil {
		return nil, err
	}
	var payload []T
	if err := gob.NewDecoder(bytes.NewReader(itemsRaw)).Decode(&payload); err != nil {
		return nil, cr.corrupt("items gob decode", err)
	}
	if uint32(len(payload)) != nodes {
		return nil, cr.corrupt(fmt.Sprintf("items block holds %d payloads, header says %d nodes", len(payload), nodes), nil)
	}

	t := &Net[T]{dist: dist, base: base, numMax: int(numMax), size: int(nodes)}
	ns := make([]*Node[T], nodes)
	for i := range ns {
		ns[i] = &Node[T]{item: payload[i], level: int(levels[i]), id: int32(i)}
	}
	t.nextID = int32(nodes)

	var erec [16]byte
	for i := uint64(0); i < edges; i++ {
		if err := cr.readFull(erec[:], "edges"); err != nil {
			return nil, err
		}
		pi := binary.LittleEndian.Uint32(erec[0:])
		ci := binary.LittleEndian.Uint32(erec[4:])
		d := math.Float64frombits(binary.LittleEndian.Uint64(erec[8:]))
		if pi >= nodes || ci >= nodes {
			return nil, cr.corrupt(fmt.Sprintf("edge %d references node %d/%d of %d", i, pi, ci, nodes), nil)
		}
		if ci == 0 {
			return nil, cr.corrupt(fmt.Sprintf("edge %d makes the root a child", i), nil)
		}
		if math.IsNaN(d) || d < 0 {
			return nil, cr.corrupt(fmt.Sprintf("edge %d has invalid distance %v", i, d), nil)
		}
		p, c := ns[pi], ns[ci]
		p.children = append(p.children, edge[T]{n: c, d: d})
		c.parents = append(c.parents, edge[T]{n: p, d: d})
	}

	// The trailing CRC covers everything decoded above. Check it before
	// wiring the net up for use: a mismatch means some field already parsed
	// may be silently wrong even though it passed the structural checks.
	wantOff := cr.off
	sum := cr.crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(cr.r, tail[:]); err != nil {
		return nil, &CorruptError{Offset: wantOff, Reason: "truncated checksum", Err: err}
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != sum {
		return nil, &CorruptError{Offset: wantOff, Reason: fmt.Sprintf("checksum mismatch: stream says %08x, payload hashes to %08x", got, sum)}
	}

	if nodes == 0 {
		return t, nil
	}
	t.root = ns[0]
	for i, n := range ns {
		if i != 0 && len(n.parents) == 0 {
			return nil, &CorruptError{Offset: wantOff, Reason: fmt.Sprintf("node %d unreachable (no parents)", i)}
		}
	}
	return t, nil
}
