package refnet

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Persistence. A net is serialised as a flat adjacency list: nodes in a
// stable walk order with their levels and items, plus parent→child edges
// carrying the stored distances. Loading therefore needs NO distance
// computations — important when the metric is expensive (edit distances
// over long windows), since rebuilding a 100K-window net costs millions
// of distance evaluations while decoding costs none.
//
// The item type T must be encodable by encoding/gob (exported fields,
// no functions). The distance function is not serialised; the loader
// supplies it and remains responsible for it matching the builder's.

// netWire is the on-the-wire representation.
type netWire[T any] struct {
	Base   float64
	NumMax int
	Size   int
	// Levels[i] is the level of node i; Items[i] its payload. Node 0 is
	// the root.
	Levels []int
	Items  []T
	// Edges are parent→child links with stored distances.
	EdgeParent []int32
	EdgeChild  []int32
	EdgeDist   []float64
}

// Save writes the net to w in gob format.
func (t *Net[T]) Save(w io.Writer) error {
	wire := netWire[T]{Base: t.base, NumMax: t.numMax, Size: t.size}
	index := make(map[*Node[T]]int32, t.size)
	t.walk(func(n *Node[T]) {
		index[n] = int32(len(wire.Items))
		wire.Items = append(wire.Items, n.item)
		wire.Levels = append(wire.Levels, n.level)
	})
	t.walk(func(n *Node[T]) {
		pi := index[n]
		for _, e := range n.children {
			wire.EdgeParent = append(wire.EdgeParent, pi)
			wire.EdgeChild = append(wire.EdgeChild, index[e.n])
			wire.EdgeDist = append(wire.EdgeDist, e.d)
		}
	})
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("refnet: encode: %w", err)
	}
	return nil
}

// Load reads a net written by Save, attaching the given distance function
// (which must be the same metric the net was built with; Validate can
// verify that, at the cost of recomputing every edge).
func Load[T any](r io.Reader, dist func(a, b T) float64) (*Net[T], error) {
	var wire netWire[T]
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("refnet: decode: %w", err)
	}
	if len(wire.Items) != len(wire.Levels) {
		return nil, fmt.Errorf("refnet: corrupt stream: %d items, %d levels", len(wire.Items), len(wire.Levels))
	}
	if len(wire.EdgeParent) != len(wire.EdgeChild) || len(wire.EdgeParent) != len(wire.EdgeDist) {
		return nil, fmt.Errorf("refnet: corrupt stream: ragged edge arrays")
	}
	t := &Net[T]{dist: dist, base: wire.Base, numMax: wire.NumMax, size: wire.Size}
	if wire.Base <= 0 {
		return nil, fmt.Errorf("refnet: corrupt stream: base %v", wire.Base)
	}
	if len(wire.Items) == 0 {
		if wire.Size != 0 {
			return nil, fmt.Errorf("refnet: corrupt stream: empty net with size %d", wire.Size)
		}
		return t, nil
	}
	nodes := make([]*Node[T], len(wire.Items))
	for i := range nodes {
		nodes[i] = &Node[T]{item: wire.Items[i], level: wire.Levels[i], id: int32(i)}
	}
	t.nextID = int32(len(nodes))
	for i := range wire.EdgeParent {
		pi, ci := wire.EdgeParent[i], wire.EdgeChild[i]
		if pi < 0 || int(pi) >= len(nodes) || ci < 0 || int(ci) >= len(nodes) {
			return nil, fmt.Errorf("refnet: corrupt stream: edge %d out of range", i)
		}
		p, c := nodes[pi], nodes[ci]
		p.children = append(p.children, edge[T]{n: c, d: wire.EdgeDist[i]})
		c.parents = append(c.parents, edge[T]{n: p, d: wire.EdgeDist[i]})
	}
	t.root = nodes[0]
	if len(t.root.parents) != 0 {
		return nil, fmt.Errorf("refnet: corrupt stream: root has parents")
	}
	if wire.Size != len(nodes) {
		return nil, fmt.Errorf("refnet: corrupt stream: size %d but %d nodes", wire.Size, len(nodes))
	}
	return t, nil
}
