package refnet

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/metric"
)

func absDist(a, b float64) float64 { return math.Abs(a - b) }

func pointDist(a, b [2]float64) float64 {
	return math.Hypot(a[0]-b[0], a[1]-b[1])
}

// sortedRange runs a range query and returns sorted results for
// set comparison.
func sortedRange(t *Net[float64], q, eps float64) []float64 {
	out := t.Range(q, eps)
	sort.Float64s(out)
	return out
}

func sortedScan(items []float64, q, eps float64) []float64 {
	var out []float64
	for _, v := range items {
		if absDist(q, v) <= eps {
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyNet(t *testing.T) {
	n := New(absDist)
	if n.Len() != 0 {
		t.Errorf("empty net Len = %d", n.Len())
	}
	if got := n.Range(0, 100); got != nil {
		t.Errorf("empty net Range = %v", got)
	}
	if err := n.Validate(); err != nil {
		t.Errorf("empty net invalid: %v", err)
	}
}

func TestSingleItem(t *testing.T) {
	n := New(absDist)
	n.Insert(5)
	if n.Len() != 1 {
		t.Fatalf("Len = %d", n.Len())
	}
	if got := n.Range(5, 0); len(got) != 1 || got[0] != 5 {
		t.Errorf("Range(5,0) = %v", got)
	}
	if got := n.Range(7, 1); len(got) != 0 {
		t.Errorf("Range(7,1) = %v, want empty", got)
	}
	if err := n.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDuplicateItems(t *testing.T) {
	n := New(absDist)
	for i := 0; i < 10; i++ {
		n.Insert(3)
	}
	if n.Len() != 10 {
		t.Fatalf("Len = %d, want 10", n.Len())
	}
	if got := n.Range(3, 0); len(got) != 10 {
		t.Errorf("Range found %d duplicates, want 10", len(got))
	}
	if err := n.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEpsAndCoverRadius(t *testing.T) {
	n := New(absDist, WithBase(0.5))
	if got := n.Eps(0); got != 0.5 {
		t.Errorf("Eps(0) = %v", got)
	}
	if got := n.Eps(3); got != 4 {
		t.Errorf("Eps(3) = %v, want 4", got)
	}
	if got := n.CoverRadius(0); got != 0 {
		t.Errorf("CoverRadius(0) = %v", got)
	}
	// ρ(l) = Σ_{k=1..l} ǫ'·2^k = 0.5·(2+4+8) = 7 for l = 3.
	if got := n.CoverRadius(3); got != 7 {
		t.Errorf("CoverRadius(3) = %v, want 7", got)
	}
}

func TestRangeMatchesLinearScanUniform(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	n := New(absDist)
	var items []float64
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 1000
		items = append(items, v)
		n.Insert(v)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("invalid net after inserts: %v", err)
	}
	for _, eps := range []float64{0, 0.5, 3, 10, 50, 500, 2000} {
		for trial := 0; trial < 20; trial++ {
			q := rng.Float64()*1200 - 100
			got := sortedRange(n, q, eps)
			want := sortedScan(items, q, eps)
			if !equalFloats(got, want) {
				t.Fatalf("eps=%v q=%v: got %d items, want %d", eps, q, len(got), len(want))
			}
		}
	}
}

func TestRangeMatchesLinearScanClustered(t *testing.T) {
	// Clustered data stresses multi-parent membership: points sit within
	// several references' radii simultaneously.
	rng := rand.New(rand.NewPCG(3, 4))
	n := New(absDist)
	var items []float64
	for c := 0; c < 10; c++ {
		center := float64(c * 37)
		for i := 0; i < 40; i++ {
			v := center + rng.NormFloat64()
			items = append(items, v)
			n.Insert(v)
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("invalid net: %v", err)
	}
	for _, eps := range []float64{0.1, 1, 5, 40, 400} {
		for trial := 0; trial < 20; trial++ {
			q := rng.Float64() * 400
			if !equalFloats(sortedRange(n, q, eps), sortedScan(items, q, eps)) {
				t.Fatalf("mismatch at eps=%v q=%v", eps, q)
			}
		}
	}
}

func TestRangeMatchesLinearScan2D(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	n := New(pointDist)
	var items [][2]float64
	for i := 0; i < 400; i++ {
		p := [2]float64{rng.Float64() * 100, rng.Float64() * 100}
		items = append(items, p)
		n.Insert(p)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("invalid net: %v", err)
	}
	for _, eps := range []float64{0, 1, 7, 30, 200} {
		for trial := 0; trial < 10; trial++ {
			q := [2]float64{rng.Float64() * 100, rng.Float64() * 100}
			got := n.Range(q, eps)
			var want int
			for _, p := range items {
				if pointDist(q, p) <= eps {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("eps=%v: got %d items, want %d", eps, len(got), want)
			}
			for _, p := range got {
				if pointDist(q, p) > eps {
					t.Fatalf("result %v outside radius %v of %v", p, eps, q)
				}
			}
		}
	}
}

func TestMaxParentsCap(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for _, cap := range []int{1, 2, 5} {
		n := New(absDist, WithMaxParents(cap))
		var items []float64
		for i := 0; i < 300; i++ {
			v := rng.NormFloat64() * 5 // dense: many parent candidates
			items = append(items, v)
			n.Insert(v)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("cap=%d: invalid net: %v", cap, err)
		}
		st := n.Stats()
		if st.AvgParents > float64(cap)+1e-9 {
			t.Errorf("cap=%d: avg parents %v exceeds cap", cap, st.AvgParents)
		}
		// Queries must stay exact under the cap.
		for trial := 0; trial < 10; trial++ {
			q := rng.NormFloat64() * 5
			if !equalFloats(sortedRange(n, q, 3), sortedScan(items, q, 3)) {
				t.Fatalf("cap=%d: range mismatch", cap)
			}
		}
	}
}

func TestWithBaseAffectsScale(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	var items []float64
	for i := 0; i < 200; i++ {
		items = append(items, rng.Float64()*100)
	}
	for _, base := range []float64{0.25, 1, 4} {
		n := New(absDist, WithBase(base))
		for _, v := range items {
			n.Insert(v)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("base=%v: %v", base, err)
		}
		if !equalFloats(sortedRange(n, 50, 10), sortedScan(items, 50, 10)) {
			t.Fatalf("base=%v: range mismatch", base)
		}
	}
}

func TestInvalidOptionsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero base":        func() { New(absDist, WithBase(0)) },
		"negative base":    func() { New(absDist, WithBase(-1)) },
		"negative parents": func() { New(absDist, WithMaxParents(-2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestInfiniteDistancePanics(t *testing.T) {
	d := func(a, b float64) float64 {
		if a != b {
			return math.Inf(1)
		}
		return 0
	}
	n := New(d)
	n.Insert(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-finite distance")
		}
	}()
	n.Insert(2)
}

func TestBatchRangeMatchesIndividualQueries(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	n := New(absDist)
	var items []float64
	for i := 0; i < 300; i++ {
		v := rng.Float64() * 100
		items = append(items, v)
		n.Insert(v)
	}
	qs := make([]float64, 25)
	for i := range qs {
		qs[i] = rng.Float64() * 100
	}
	const eps = 4.0
	batch := n.BatchRange(qs, eps)
	if len(batch) != len(qs) {
		t.Fatalf("batch returned %d result sets, want %d", len(batch), len(qs))
	}
	for i, q := range qs {
		got := append([]float64(nil), batch[i]...)
		sort.Float64s(got)
		want := sortedScan(items, q, eps)
		if !equalFloats(got, want) {
			t.Errorf("query %d (q=%v): batch %d items, scan %d", i, q, len(got), len(want))
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	n := New(absDist)
	for i := 0; i < 100; i++ {
		n.Insert(float64(i))
	}
	st := n.Stats()
	if st.Nodes != 100 {
		t.Errorf("Stats.Nodes = %d", st.Nodes)
	}
	if st.ParentLinks < 99 {
		t.Errorf("ParentLinks = %d, want ≥ 99 (every non-root node has ≥ 1 parent)", st.ParentLinks)
	}
	if st.AvgParents < 1 {
		t.Errorf("AvgParents = %v, want ≥ 1", st.AvgParents)
	}
	if st.StructBytes <= 0 {
		t.Errorf("StructBytes = %d", st.StructBytes)
	}
	withPayload := n.StatsWithPayload(func(float64) int { return 8 })
	if withPayload.PayloadBytes != 800 {
		t.Errorf("PayloadBytes = %d, want 800", withPayload.PayloadBytes)
	}
	if withPayload.TotalBytes() != withPayload.StructBytes+800 {
		t.Errorf("TotalBytes inconsistent")
	}
	if len(n.Items()) != 100 {
		t.Errorf("Items() returned %d", len(n.Items()))
	}
}

func TestPruningBeatsLinearScanOnClusteredData(t *testing.T) {
	// The net must actually prune: on well-separated clusters, a small
	// range query should compute far fewer distances than a full scan.
	rng := rand.New(rand.NewPCG(13, 14))
	counter := metric.NewCounter(absDist)
	n := New(counter.Distance)
	const N = 2000
	for i := 0; i < N; i++ {
		cluster := float64(i%20) * 1000
		n.Insert(cluster + rng.Float64())
	}
	counter.Reset()
	n.Range(5000.5, 2)
	calls := counter.Calls()
	if calls >= N/2 {
		t.Errorf("range query computed %d distances out of %d; pruning ineffective", calls, N)
	}
}

func TestLevelHistogram(t *testing.T) {
	n := New(absDist)
	for i := 0; i < 64; i++ {
		n.Insert(float64(i))
	}
	hist := n.LevelHistogram()
	if len(hist) == 0 {
		t.Fatal("empty level histogram")
	}
	total := 0
	prev := -1 << 30
	for _, h := range hist {
		if h.Level <= prev {
			t.Error("histogram not sorted by level")
		}
		prev = h.Level
		total += h.Count
	}
	if total != 64 {
		t.Errorf("histogram total %d, want 64", total)
	}
}

// Exists must agree with Range emptiness on every radius, and must keep
// agreeing after pooled query state is recycled across interleaved calls.
func TestExistsMatchesRange(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	n := New(absDist)
	var items []float64
	for i := 0; i < 400; i++ {
		v := rng.Float64() * 1000
		items = append(items, v)
		n.Insert(v)
	}
	for _, eps := range []float64{0, 0.4, 2, 9, 40, 300, 2000} {
		for trial := 0; trial < 25; trial++ {
			q := rng.Float64()*1400 - 200
			want := len(sortedScan(items, q, eps)) > 0
			if got := n.Exists(q, eps); got != want {
				t.Fatalf("eps=%v q=%v: Exists=%v, scan says %v", eps, q, got, want)
			}
			// Interleave a Range so Exists and Range share pooled state.
			if got := len(n.Range(q, eps)) > 0; got != want {
				t.Fatalf("eps=%v q=%v: Range nonempty=%v, scan says %v", eps, q, got, want)
			}
		}
	}
	empty := New(absDist)
	if empty.Exists(1, 100) {
		t.Fatal("Exists on empty net")
	}
}
