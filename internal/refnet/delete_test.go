package refnet

import (
	"math/rand/v2"
	"testing"
)

func TestDeleteLeaf(t *testing.T) {
	n := New(absDist)
	n.Insert(0)
	h := n.InsertTracked(0.1) // lands at level 0 under the root
	n.Insert(5)
	if err := n.Delete(h); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if n.Len() != 2 {
		t.Errorf("Len = %d, want 2", n.Len())
	}
	if err := n.Validate(); err != nil {
		t.Errorf("invalid after delete: %v", err)
	}
	if got := n.Range(0.1, 0); len(got) != 0 {
		t.Errorf("deleted item still found: %v", got)
	}
}

func TestDeleteRootSingleton(t *testing.T) {
	n := New(absDist)
	h := n.InsertTracked(42)
	if err := n.Delete(h); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if n.Len() != 0 {
		t.Errorf("Len = %d, want 0", n.Len())
	}
	if err := n.Validate(); err != nil {
		t.Error(err)
	}
	// The net must remain usable.
	n.Insert(7)
	if got := n.Range(7, 0); len(got) != 1 {
		t.Errorf("reuse after root delete failed: %v", got)
	}
}

func TestDeleteRootWithChildren(t *testing.T) {
	n := New(absDist)
	handles := map[float64]*Node[float64]{}
	values := []float64{50, 10, 90, 48, 52, 11, 89}
	for _, v := range values {
		handles[v] = n.InsertTracked(v)
	}
	if err := n.Delete(handles[values[0]]); err != nil { // first insert is the root
		t.Fatalf("Delete root: %v", err)
	}
	if n.Len() != len(values)-1 {
		t.Errorf("Len = %d, want %d", n.Len(), len(values)-1)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("invalid after root delete: %v", err)
	}
	remaining := values[1:]
	got := sortedRange(n, 50, 1000)
	want := sortedScan(remaining, 50, 1000)
	if !equalFloats(got, want) {
		t.Errorf("after root delete: got %v, want %v", got, want)
	}
}

func TestDeleteDetectsDoubleDelete(t *testing.T) {
	n := New(absDist)
	n.Insert(0)
	h := n.InsertTracked(1)
	if err := n.Delete(h); err != nil {
		t.Fatalf("first delete: %v", err)
	}
	if err := n.Delete(h); err != ErrNotMember {
		t.Errorf("double delete error = %v, want ErrNotMember", err)
	}
	if err := n.Delete(nil); err != ErrNotMember {
		t.Errorf("nil delete error = %v, want ErrNotMember", err)
	}
}

func TestRandomInsertDeleteWorkload(t *testing.T) {
	// Interleave inserts and deletes; after every batch the net must stay
	// valid and agree with a shadow slice on range queries.
	rng := rand.New(rand.NewPCG(21, 22))
	n := New(absDist)
	type entry struct {
		v float64
		h *Node[float64]
	}
	var live []entry
	for round := 0; round < 30; round++ {
		for i := 0; i < 40; i++ {
			v := rng.Float64() * 200
			live = append(live, entry{v, n.InsertTracked(v)})
		}
		dels := rng.IntN(30)
		for i := 0; i < dels && len(live) > 0; i++ {
			j := rng.IntN(len(live))
			if err := n.Delete(live[j].h); err != nil {
				t.Fatalf("round %d: delete: %v", round, err)
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if n.Len() != len(live) {
			t.Fatalf("round %d: Len = %d, want %d", round, n.Len(), len(live))
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		vals := make([]float64, len(live))
		for i, e := range live {
			vals[i] = e.v
		}
		for trial := 0; trial < 5; trial++ {
			q := rng.Float64() * 200
			eps := rng.Float64() * 20
			if !equalFloats(sortedRange(n, q, eps), sortedScan(vals, q, eps)) {
				t.Fatalf("round %d: range mismatch after deletes (q=%v eps=%v)", round, q, eps)
			}
		}
	}
}

func TestDeleteEverything(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	n := New(absDist)
	var hs []*Node[float64]
	for i := 0; i < 200; i++ {
		hs = append(hs, n.InsertTracked(rng.Float64()*100))
	}
	rng.Shuffle(len(hs), func(i, j int) { hs[i], hs[j] = hs[j], hs[i] })
	for i, h := range hs {
		if err := n.Delete(h); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if i%37 == 0 {
			if err := n.Validate(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if n.Len() != 0 {
		t.Errorf("Len = %d after deleting everything", n.Len())
	}
	if err := n.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDeleteWithMaxParentsCap(t *testing.T) {
	rng := rand.New(rand.NewPCG(25, 26))
	n := New(absDist, WithMaxParents(2))
	type entry struct {
		v float64
		h *Node[float64]
	}
	var live []entry
	for i := 0; i < 300; i++ {
		v := rng.NormFloat64() * 10
		live = append(live, entry{v, n.InsertTracked(v)})
	}
	for i := 0; i < 150; i++ {
		j := rng.IntN(len(live))
		if err := n.Delete(live[j].h); err != nil {
			t.Fatalf("delete: %v", err)
		}
		live[j] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	vals := make([]float64, len(live))
	for i, e := range live {
		vals[i] = e.v
	}
	if !equalFloats(sortedRange(n, 0, 15), sortedScan(vals, 0, 15)) {
		t.Error("range mismatch after capped deletes")
	}
}
