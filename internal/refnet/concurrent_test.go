package refnet

import (
	"math/rand/v2"
	"sync"
	"testing"
)

// Read-only queries on a built net are documented as safe for concurrent
// use (no mutation happens during Range/KNN). Exercise that contract;
// run with -race for a decisive check.
func TestConcurrentReadQueries(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	n := New(absDist)
	var items []float64
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 100
		items = append(items, v)
		n.Insert(v)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rand.New(rand.NewPCG(seed, 1))
			for i := 0; i < 50; i++ {
				q := r.Float64() * 100
				eps := r.Float64() * 10
				got := sortedRange(n, q, eps)
				want := sortedScan(items, q, eps)
				if !equalFloats(got, want) {
					errs <- "range mismatch under concurrency"
					return
				}
				nn := n.KNN(q, 3)
				if len(nn) != 3 {
					errs <- "knn size mismatch under concurrency"
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
