package refnet

import (
	"bytes"
	"errors"
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/seq"
)

// Round-trip property tests: for every element type the framework serves
// (byte / float64 / point2) and both refnet-family configurations (plain
// and parent-capped, the paper's RN and RN-5), a saved-and-reloaded net
// must answer Range and KNN bit-identically to the original — same items,
// same order, same distances.

func hammingBytes(a, b seq.Sequence[byte]) float64 {
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return float64(n)
}

func euclidPoint2(a, b seq.Point2) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// roundTripCheck saves n, reloads it, and verifies structural equality of
// answers on the given query set.
func roundTripCheck[T any](t *testing.T, n *Net[T], dist func(a, b T) float64, queries []T, eps float64, k int) {
	t.Helper()
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf, dist)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != n.Len() || loaded.Base() != n.Base() || loaded.MaxParents() != n.MaxParents() {
		t.Fatalf("shape not preserved: len %d/%d base %v/%v max %d/%d",
			loaded.Len(), n.Len(), loaded.Base(), n.Base(), loaded.MaxParents(), n.MaxParents())
	}
	if err := loaded.Validate(); err != nil {
		t.Fatalf("loaded net invalid: %v", err)
	}
	for qi, q := range queries {
		a, b := n.Range(q, eps), loaded.Range(q, eps)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("query %d: Range differs after reload: %d vs %d items", qi, len(a), len(b))
		}
		na, nb := n.KNN(q, k), loaded.KNN(q, k)
		if !reflect.DeepEqual(na, nb) {
			t.Fatalf("query %d: KNN differs after reload: %v vs %v", qi, na, nb)
		}
	}
}

func refnetVariants[T any](dist func(a, b T) float64, base float64) map[string]*Net[T] {
	return map[string]*Net[T]{
		"plain":  New(dist, WithBase(base)),
		"capped": New(dist, WithBase(base), WithMaxParents(5)),
	}
}

func TestRoundTripBytes(t *testing.T) {
	rng := rand.New(rand.NewPCG(81, 82))
	randWin := func() seq.Sequence[byte] {
		w := make(seq.Sequence[byte], 12)
		for i := range w {
			w[i] = byte('A' + rng.IntN(6))
		}
		return w
	}
	for name, n := range refnetVariants(hammingBytes, 1) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 400; i++ {
				n.Insert(randWin())
			}
			queries := make([]seq.Sequence[byte], 20)
			for i := range queries {
				queries[i] = randWin()
			}
			roundTripCheck(t, n, hammingBytes, queries, 6, 5)
		})
	}
}

func TestRoundTripFloat64(t *testing.T) {
	rng := rand.New(rand.NewPCG(83, 84))
	for name, n := range refnetVariants(absDist, 0.5) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 500; i++ {
				n.Insert(rng.Float64() * 100)
			}
			queries := make([]float64, 25)
			for i := range queries {
				queries[i] = rng.Float64() * 100
			}
			roundTripCheck(t, n, absDist, queries, 4, 7)
		})
	}
}

func TestRoundTripPoint2(t *testing.T) {
	rng := rand.New(rand.NewPCG(85, 86))
	randPt := func() seq.Point2 {
		return seq.Point2{X: rng.Float64() * 40, Y: rng.Float64() * 40}
	}
	for name, n := range refnetVariants(euclidPoint2, 1) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 400; i++ {
				n.Insert(randPt())
			}
			queries := make([]seq.Point2, 20)
			for i := range queries {
				queries[i] = randPt()
			}
			roundTripCheck(t, n, euclidPoint2, queries, 5, 5)
		})
	}
}

// TestLoadTruncated checks that every strict prefix of a valid stream is
// rejected with a typed CorruptError, never a panic or a silent success.
func TestLoadTruncated(t *testing.T) {
	rng := rand.New(rand.NewPCG(87, 88))
	n := New(absDist, WithBase(0.5))
	for i := 0; i < 60; i++ {
		n.Insert(rng.Float64() * 50)
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		_, err := Load(bytes.NewReader(raw[:cut]), absDist)
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", cut, len(raw))
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("prefix of %d bytes: error %v is not a CorruptError", cut, err)
		}
		if ce.Offset < 0 || ce.Offset > int64(cut) {
			t.Fatalf("prefix of %d bytes: offset witness %d out of range", cut, ce.Offset)
		}
	}
}

// TestLoadMangled flips bytes across the stream: the CRC must catch every
// single-byte corruption (or a structural check fires first), and the
// error must carry an offset witness.
func TestLoadMangled(t *testing.T) {
	rng := rand.New(rand.NewPCG(89, 90))
	n := New(absDist, WithBase(0.5))
	for i := 0; i < 80; i++ {
		n.Insert(rng.Float64() * 50)
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for pos := 0; pos < len(raw); pos++ {
		mangled := bytes.Clone(raw)
		mangled[pos] ^= 0xA5
		_, err := Load(bytes.NewReader(mangled), absDist)
		if err == nil {
			t.Fatalf("byte %d/%d flipped but Load succeeded", pos, len(raw))
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("byte %d flipped: error %v is not a CorruptError", pos, err)
		}
	}
}

// TestLoadOversizedCounts rejects absurd length prefixes before allocating.
func TestLoadOversizedCounts(t *testing.T) {
	n := New(absDist)
	for i := 0; i < 10; i++ {
		n.Insert(float64(i))
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Node count lives at offset 8(magic)+8(base)+4(numMax) = 20.
	for _, tc := range []struct {
		name string
		off  int
		val  byte
	}{
		{"huge node count", 20, 0xFF},
		{"huge edge count", 24, 0xFF},
	} {
		mangled := bytes.Clone(raw)
		for i := 0; i < 4; i++ {
			mangled[tc.off+i] = tc.val
		}
		_, err := Load(bytes.NewReader(mangled), absDist)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("%s: want CorruptError, got %v", tc.name, err)
		}
	}
}

// FuzzLoad throws arbitrary and mangled bytes at Load: it must never
// panic, and any net it does accept must be structurally consistent.
func FuzzLoad(f *testing.F) {
	n := New(absDist, WithBase(0.5), WithMaxParents(3))
	rng := rand.New(rand.NewPCG(91, 92))
	for i := 0; i < 50; i++ {
		n.Insert(rng.Float64() * 30)
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("RNETv2\x00\x00"))
	for _, pos := range []int{0, 8, 20, 24, len(valid) / 2, len(valid) - 2} {
		m := bytes.Clone(valid)
		m[pos] ^= 0x55
		f.Add(m)
	}
	f.Add(valid[:len(valid)/3])
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data), absDist)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Load error %v is not a CorruptError", err)
			}
			return
		}
		// Accepted: the net must at least be internally consistent enough
		// to traverse without panicking.
		if loaded.Len() > 0 {
			loaded.Range(0, 1)
			loaded.KNN(0, 3)
		}
	})
}
