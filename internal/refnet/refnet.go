// Package refnet implements the Reference Net of Section 6 and Appendix A
// of the paper: a linear-space hierarchical index for metric spaces,
// optimised for range queries.
//
// # Structure
//
// The net has levels 0..r-1. Level radii grow geometrically: ǫᵢ = ǫ′·2ⁱ
// where ǫ′ is the base radius. Every item is a node stored once, at the
// highest level where it acts as a reference (level 0 for plain data
// points); conceptually a node at level i is also present at every level
// below i. A node R at level i keeps, for every level k ≤ i, a list L(k,R)
// of the level k−1 nodes z with δ(R,z) ≤ ǫₖ that chose R as a parent.
//
// Two invariants from the paper govern the structure:
//
//   - inclusive: every non-root node has at least one parent in the level
//     above, within that level's radius. This package maintains it exactly;
//     range-query correctness depends on it (plus the triangle inequality).
//   - exclusive: references on the same level are at least the level radius
//     apart. Like the paper's Algorithm 1, insertion enforces this against
//     the candidate frontier it examines, which makes it exact for
//     single-parent chains and best-effort in general; it affects pruning
//     efficiency only, never correctness.
//
// Unlike a cover tree, a node may have multiple parents (every qualifying
// reference up to an optional cap nummax, nearest first). Multi-parenthood
// is what lets a single reference certify more of the database during range
// queries (Figure 2 of the paper).
//
// # Complexity
//
// Space is O(n·p) where p is the average parent count (bounded by nummax
// when set; observed below 4 on the paper's datasets). Insertion and range
// queries compute distances only against the candidate frontier, which for
// well-spread data is logarithmic in practice.
//
// # Query surface
//
// Beyond single-probe Range, the net answers Exists (existence-only, stops
// at the first in-range item — the probe Nearest's radius search issues),
// KNN (knn.go), and BatchRange (range.go), which walks the hierarchy once
// for a whole probe set so that concurrent batch queries share traversal
// work. Two capabilities cut the evaluation cost of traversal probes:
// SetBounded arms an early-abandoning distance (probes evaluate at the
// query radius plus the node's cover radius, proving subtrees outside at
// a fraction of a full evaluation), and BatchRangeEval accepts a
// metric.BatchEvaluator that prices all probes inconclusive at a node in
// one call — the subsequence framework streams probes sharing a query
// offset through a single incremental kernel pass there. Nets serialise
// with Save/Load (serialize.go) without recomputing any distances, and
// support Delete with invariant repair (delete.go).
package refnet

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/metric"
)

// Compile-time check: Net satisfies the shared index interface.
var _ metric.Index[int] = (*Net[int])(nil)

// Net is a reference net over items of type T. It must be created with New;
// the zero value is not usable. A Net is not safe for concurrent mutation;
// concurrent read-only queries are safe.
type Net[T any] struct {
	dist   metric.DistFunc[T]
	base   float64 // ǫ′, the level-0 radius scale
	numMax int     // max parents per node; 0 = unlimited
	// noEdgeBounds disables the stored-distance child bounds during range
	// queries (ablation; see WithEdgeBounds).
	noEdgeBounds bool
	root         *Node[T]
	size         int
	// nextID is the next per-node query-state index to hand out. Node ids
	// are dense on a freshly built or loaded net; deletions leave holes,
	// which only cost a few unused scratch slots.
	nextID int32
	// bounded, when set, is the early-abandoning evaluation of dist used by
	// range traversals (see SetBounded).
	bounded metric.BoundedDistFunc[T]
	// qpool recycles per-query traversal state (flat slices indexed by node
	// id) so range queries allocate nothing per visited node. sync.Pool
	// keeps concurrent read-only queries safe.
	qpool sync.Pool
	// bpool recycles the batched-traversal scratch (per-probe active lists,
	// pending evaluation buffers) — see BatchRangeEval.
	bpool sync.Pool
}

// SetBounded arms an early-abandoning distance evaluation for range
// traversals (Range, Exists, BatchRange). fn must agree with the net's
// DistFunc under the BoundedDistFunc contract. When armed, every child
// probe is evaluated with threshold eps+ρ (the query radius plus the
// child's cover radius): an abandoned evaluation proves the whole subtree
// lies outside the ball, so it is pruned exactly as rule 3 would with the
// exact distance, at a fraction of the evaluation cost. Abandoned values
// are inexact, so they are not recorded for the stored-distance triangle
// bounds — which can shift which later nodes get zero-computation bounds,
// but never which items a query returns. nil disarms. Not safe to call
// concurrently with queries.
func (t *Net[T]) SetBounded(fn metric.BoundedDistFunc[T]) { t.bounded = fn }

// Node is a handle to an item stored in the net, returned by InsertTracked
// and accepted by Delete. Handles become invalid after the item is deleted.
type Node[T any] struct {
	item     T
	level    int
	id       int32 // dense index into per-query scratch, assigned at creation
	children []edge[T]
	parents  []edge[T] // back-links with the same stored distances
}

// Item returns the stored item.
func (n *Node[T]) Item() T { return n.item }

// Level returns the node's reference level (0 for plain data points).
func (n *Node[T]) Level() int { return n.level }

// edge is a parent→child link annotated with the parent-child distance,
// precomputed at attach time so range queries can include or exclude
// children without fresh distance computations.
type edge[T any] struct {
	n *Node[T]
	d float64
}

// Option configures a Net.
type Option func(*config)

type config struct {
	base         float64
	numMax       int
	noEdgeBounds bool
}

// WithBase sets the base radius ǫ′ (default 1, the paper's default in all
// experiments). Level i has radius ǫ′·2ⁱ.
func WithBase(base float64) Option { return func(c *config) { c.base = base } }

// WithMaxParents caps the number of lists a node may appear in (the paper's
// nummax; e.g. 5 for the DFD-5 and RN-5 configurations). Zero means
// unlimited.
func WithMaxParents(n int) Option { return func(c *config) { c.numMax = n } }

// WithEdgeBounds toggles the zero-computation child bounds derived from
// stored parent-child distances during range queries (default on). It
// exists for the ablation benchmarks: turning it off degrades queries to
// the paper's bare list-radius rules, quantifying what the stored
// distances buy.
func WithEdgeBounds(on bool) Option { return func(c *config) { c.noEdgeBounds = !on } }

// New returns an empty reference net using the given metric distance.
// The distance must satisfy the metric axioms; the net's pruning is unsound
// otherwise (use the framework's linear-scan path for non-metric measures
// such as DTW).
func New[T any](dist metric.DistFunc[T], opts ...Option) *Net[T] {
	cfg := config{base: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.base <= 0 {
		panic(fmt.Sprintf("refnet: base radius must be positive, got %v", cfg.base))
	}
	if cfg.numMax < 0 {
		panic(fmt.Sprintf("refnet: max parents must be non-negative, got %d", cfg.numMax))
	}
	return &Net[T]{dist: dist, base: cfg.base, numMax: cfg.numMax, noEdgeBounds: cfg.noEdgeBounds}
}

// Eps returns the radius ǫ′·2ⁱ of level i.
func (t *Net[T]) Eps(i int) float64 { return math.Ldexp(t.base, i) }

// CoverRadius returns an upper bound on the distance from a level-l node to
// any node in its subtree: Σ_{k=1..l} ǫₖ = ǫ′·(2^{l+1} − 2). This is the
// "derived from R(i,j)" bound of Lemma 4 and the Appendix's range query.
func (t *Net[T]) CoverRadius(level int) float64 {
	if level <= 0 {
		return 0
	}
	return math.Ldexp(t.base, level+1) - 2*t.base
}

// Len reports the number of items in the net.
func (t *Net[T]) Len() int { return t.size }

// Base returns the base radius ǫ′.
func (t *Net[T]) Base() float64 { return t.base }

// MaxParents returns the parent cap (0 = unlimited).
func (t *Net[T]) MaxParents() int { return t.numMax }

// Insert adds an item to the net (Appendix A.1).
func (t *Net[T]) Insert(item T) { t.InsertTracked(item) }

// InsertTracked adds an item and returns its node handle, which can later
// be passed to Delete.
func (t *Net[T]) InsertTracked(item T) *Node[T] {
	t.size++
	if t.root == nil {
		t.root = &Node[T]{item: item, level: 1, id: t.newID()}
		return t.root
	}
	level, parents := t.descend(item)
	n := &Node[T]{item: item, level: level, id: t.newID()}
	t.attach(n, parents)
	return n
}

// newID hands out the next query-state index.
func (t *Net[T]) newID() int32 {
	id := t.nextID
	t.nextID++
	return id
}

// cand is a frontier entry during descent: a node plus its (already
// computed) distance to the item being located.
type cand[T any] struct {
	n *Node[T]
	d float64
}

// descend runs the top-down location pass shared by insertion and orphan
// re-homing. It returns the level the item belongs at, and the qualifying
// parents (conceptual nodes of the level above within that level's radius,
// with distances).
//
// The frontier P at conceptual level i provably contains every node of
// level ≥ i within 2ǫᵢ of the item: a level-(i−1) node z within 2ǫ_{i−1}
// has each of its parents p within δ(z,p) ≤ ǫᵢ, so δ(item,p) ≤ 2ǫ_{i−1} +
// ǫᵢ = 2ǫᵢ, hence p was on the previous frontier and z is enumerated among
// its children. The item's level is then i*−1 for the lowest level i* at
// which some conceptual node lies within ǫ_{i*}; the frontier's 2ǫ bound
// makes that test exact.
func (t *Net[T]) descend(item T) (level int, parents []cand[T]) {
	d := t.dist(item, t.root.item)
	if math.IsInf(d, 1) || math.IsNaN(d) {
		panic("refnet: non-finite distance to root; the item cannot be indexed")
	}
	for d > t.Eps(t.root.level) {
		t.root.level++
	}
	cur := []cand[T]{{t.root, d}}
	visited := map[*Node[T]]bool{t.root: true}
	bestLevel := -1
	var bestParents []cand[T]
	for i := t.root.level; i >= 1; i-- {
		epsI := t.Eps(i)
		var within []cand[T]
		for _, c := range cur {
			if c.d <= epsI {
				within = append(within, c)
			}
		}
		if len(within) > 0 {
			bestLevel = i
			bestParents = within
		}
		if i == 1 {
			break
		}
		// Frontier for conceptual level i−1: keep everything within
		// 2ǫ_{i−1} = ǫᵢ, adding the level-(i−1) children of the current
		// frontier. The stored parent-child distance gives a free lower
		// bound |δ(item,p) − δ(p,c)| ≤ δ(item,c) that skips most children
		// without a distance computation.
		bound := epsI
		next := cur[:0:0]
		for _, c := range cur {
			if c.d <= bound {
				next = append(next, c)
			}
		}
		for _, c := range cur {
			for _, e := range c.n.children {
				if e.n.level != i-1 || visited[e.n] {
					continue
				}
				if lb := c.d - e.d; lb > bound || -lb > bound {
					visited[e.n] = true
					continue
				}
				visited[e.n] = true
				dd := t.dist(item, e.n.item)
				if dd <= bound {
					next = append(next, cand[T]{e.n, dd})
				}
			}
		}
		if len(next) == 0 {
			break
		}
		cur = next
	}
	// bestLevel ≥ 1 always: the root qualifies at its own level after the
	// raise loop above.
	return bestLevel - 1, bestParents
}

// attach links n under the given candidate parents, nearest first, capped
// at numMax when set.
func (t *Net[T]) attach(n *Node[T], parents []cand[T]) {
	sort.Slice(parents, func(i, j int) bool { return parents[i].d < parents[j].d })
	if t.numMax > 0 && len(parents) > t.numMax {
		parents = parents[:t.numMax]
	}
	for _, p := range parents {
		p.n.children = append(p.n.children, edge[T]{n: n, d: p.d})
		n.parents = append(n.parents, edge[T]{n: p.n, d: p.d})
	}
}
