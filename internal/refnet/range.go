package refnet

// Range query (Appendix A.3). The traversal maintains, per query, the two
// certainty sets of the paper — items proven inside the ball and items
// proven outside — realised here as a decided map plus the result slice,
// and additionally a map of computed query-to-node distances.
//
// For a child c of a node whose distance is known, the triangle inequality
// through EVERY parent of c with a computed distance gives bounds
//
//	lo = max over known parents p of |δ(q,p) − δ(p,c)|
//	hi = min over known parents p of  δ(q,p) + δ(p,c)
//
// (δ(p,c) is stored on the edge at insertion time, so these cost no
// distance computations). This is exactly the multi-parent advantage the
// paper illustrates in Figure 2: a node sitting in several reference
// lists can be certified through whichever reference yields the tightest
// bound — a single-parent tree has no such choice. Writing ρ for the
// subtree cover radius of c, the rules are then:
//
//  1. lo − ρ > ε  ⇒ the whole subtree of c is outside; prune with no
//     distance computation (Lemma 4 generalised with stored distances).
//  2. hi + ρ ≤ ε  ⇒ the whole subtree of c is inside; collect with no
//     distance computation.
//  3. otherwise compute dc = δ(q,c); then dc − ρ > ε prunes and
//     dc + ρ ≤ ε collects the subtree, as in the Appendix.
//  4. inconclusive ⇒ report c if dc ≤ ε and recurse into its children.
//
// Multi-parent sharing means a node can be reached along several paths;
// the decided map guarantees each node's membership is settled exactly
// once.

// Range returns every item within eps of q (inclusive).
func (t *Net[T]) Range(q T, eps float64) []T {
	var out []T
	t.RangeFunc(q, eps, func(item T) { out = append(out, item) })
	return out
}

// RangeFunc streams every item within eps of q to yield, avoiding result
// slice allocation. The order of results is unspecified.
func (t *Net[T]) RangeFunc(q T, eps float64, yield func(T)) {
	if t.root == nil {
		return
	}
	d := t.dist(q, t.root.item)
	decided := make(map[*Node[T]]bool, 64)
	computed := make(map[*Node[T]]float64, 64)
	decided[t.root] = true
	computed[t.root] = d
	if d <= eps {
		yield(t.root.item)
	}
	type entry struct {
		n *Node[T]
		d float64
	}
	stack := []entry{{t.root, d}}
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, d := e.n, e.d
		for _, ce := range n.children {
			c := ce.n
			if decided[c] {
				continue
			}
			rho := t.CoverRadius(c.level)
			if !t.noEdgeBounds {
				lo := d - ce.d
				if lo < 0 {
					lo = -lo
				}
				hi := d + ce.d
				// Tighten through every other parent already computed.
				for _, pe := range c.parents {
					if pe.n == n {
						continue
					}
					dp, ok := computed[pe.n]
					if !ok {
						continue
					}
					if l := dp - pe.d; l > lo {
						lo = l
					} else if -l > lo {
						lo = -l
					}
					if h := dp + pe.d; h < hi {
						hi = h
					}
				}
				if lo-rho > eps {
					t.markSubtree(c, decided)
					continue
				}
				if hi+rho <= eps {
					t.collectSubtree(c, decided, yield)
					continue
				}
			}
			dc := t.dist(q, c.item)
			computed[c] = dc
			if dc-rho > eps {
				t.markSubtree(c, decided)
				continue
			}
			if dc+rho <= eps {
				t.collectSubtree(c, decided, yield)
				continue
			}
			decided[c] = true
			if dc <= eps {
				yield(c.item)
			}
			if len(c.children) > 0 {
				stack = append(stack, entry{c, dc})
			}
		}
	}
}

// markSubtree marks c and its multi-parent descendants as decided
// (outside the ball). Mirroring the Appendix, this prevents re-examining,
// via another parent, nodes already excluded by a subtree bound. Nodes
// with a single parent are reachable only through this walk, so skipping
// their map entries is safe and keeps per-query bookkeeping proportional
// to the multi-parent population rather than the subtree size.
func (t *Net[T]) markSubtree(c *Node[T], decided map[*Node[T]]bool) {
	if len(c.parents) > 1 {
		if decided[c] {
			return
		}
		decided[c] = true
	}
	for _, e := range c.children {
		t.markSubtree(e.n, decided)
	}
}

// collectSubtree reports c and all its not-yet-decided descendants as
// results, with the same single-parent marking optimisation as
// markSubtree (a single-parent node can be collected only through its one
// parent, so it cannot be yielded twice).
func (t *Net[T]) collectSubtree(c *Node[T], decided map[*Node[T]]bool, yield func(T)) {
	if len(c.parents) > 1 {
		if decided[c] {
			return
		}
		decided[c] = true
	}
	yield(c.item)
	for _, e := range c.children {
		t.collectSubtree(e.n, decided, yield)
	}
}

// BatchRange answers many range queries with the same radius in a single
// traversal of the net (Section 7: "it is possible that many queries are
// executed at the same time on the index structure in a single traversal").
// Result i holds the items within eps of qs[i]. The total number of
// distance computations matches per-query Range calls; the saving is in
// traversal overhead and locality when the query set is large.
func (t *Net[T]) BatchRange(qs []T, eps float64) [][]T {
	out := make([][]T, len(qs))
	if t.root == nil || len(qs) == 0 {
		return out
	}
	decided := make([]map[*Node[T]]bool, len(qs))
	computed := make([]map[*Node[T]]float64, len(qs))
	type qd struct {
		qi int
		d  float64
	}
	rootActive := make([]qd, 0, len(qs))
	for i, q := range qs {
		d := t.dist(q, t.root.item)
		decided[i] = map[*Node[T]]bool{t.root: true}
		computed[i] = map[*Node[T]]float64{t.root: d}
		if d <= eps {
			out[i] = append(out[i], t.root.item)
		}
		rootActive = append(rootActive, qd{i, d})
	}
	type entry struct {
		n      *Node[T]
		active []qd
	}
	stack := []entry{{t.root, rootActive}}
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ce := range e.n.children {
			c := ce.n
			rho := t.CoverRadius(c.level)
			var next []qd
			for _, a := range e.active {
				if decided[a.qi][c] {
					continue
				}
				lo := a.d - ce.d
				if lo < 0 {
					lo = -lo
				}
				hi := a.d + ce.d
				for _, pe := range c.parents {
					if pe.n == e.n {
						continue
					}
					dp, ok := computed[a.qi][pe.n]
					if !ok {
						continue
					}
					if l := dp - pe.d; l > lo {
						lo = l
					} else if -l > lo {
						lo = -l
					}
					if h := dp + pe.d; h < hi {
						hi = h
					}
				}
				if lo-rho > eps {
					t.markSubtree(c, decided[a.qi])
					continue
				}
				if hi+rho <= eps {
					t.collectSubtree(c, decided[a.qi], func(item T) {
						out[a.qi] = append(out[a.qi], item)
					})
					continue
				}
				dc := t.dist(qs[a.qi], c.item)
				computed[a.qi][c] = dc
				if dc-rho > eps {
					t.markSubtree(c, decided[a.qi])
					continue
				}
				if dc+rho <= eps {
					t.collectSubtree(c, decided[a.qi], func(item T) {
						out[a.qi] = append(out[a.qi], item)
					})
					continue
				}
				decided[a.qi][c] = true
				if dc <= eps {
					out[a.qi] = append(out[a.qi], c.item)
				}
				next = append(next, qd{a.qi, dc})
			}
			if len(next) > 0 && len(c.children) > 0 {
				stack = append(stack, entry{c, next})
			}
		}
	}
	return out
}
