package refnet

import "repro/internal/metric"

// Range query (Appendix A.3). The traversal maintains, per query, the two
// certainty sets of the paper — items proven inside the ball and items
// proven outside — realised here as a per-node decided flag plus the result
// stream, and additionally the computed query-to-node distances.
//
// For a child c of a node whose distance is known, the triangle inequality
// through EVERY parent of c with a computed distance gives bounds
//
//	lo = max over known parents p of |δ(q,p) − δ(p,c)|
//	hi = min over known parents p of  δ(q,p) + δ(p,c)
//
// (δ(p,c) is stored on the edge at insertion time, so these cost no
// distance computations). This is exactly the multi-parent advantage the
// paper illustrates in Figure 2: a node sitting in several reference
// lists can be certified through whichever reference yields the tightest
// bound — a single-parent tree has no such choice. Writing ρ for the
// subtree cover radius of c, the rules are then:
//
//  1. lo − ρ > ε  ⇒ the whole subtree of c is outside; prune with no
//     distance computation (Lemma 4 generalised with stored distances).
//  2. hi + ρ ≤ ε  ⇒ the whole subtree of c is inside; collect with no
//     distance computation.
//  3. otherwise compute dc = δ(q,c); then dc − ρ > ε prunes and
//     dc + ρ ≤ ε collects the subtree, as in the Appendix.
//  4. inconclusive ⇒ report c if dc ≤ ε and recurse into its children.
//
// Multi-parent sharing means a node can be reached along several paths;
// the decided flag guarantees each node's membership is settled exactly
// once.
//
// Step 3 is where all the distance cost lives, and two capabilities cut it.
// When the net's distance has a bounded evaluation (SetBounded), probes are
// evaluated with threshold ε+ρ: the evaluation may abandon as soon as the
// subtree is provably outside, and the abandoned (inexact) value is simply
// not recorded for the parent bounds. When the caller supplies a
// BatchEvaluator (BatchRangeEval), all probes that reach step 3 at a node
// are evaluated in ONE call, letting the evaluator share work across them —
// the framework streams probes sharing a query offset through a single
// incremental kernel pass over the node's window.
//
// Per-query bookkeeping lives in flat slices indexed by the dense node ids
// assigned at insertion — a query touches each slot with two or three
// unhashed array accesses where a map would hash a pointer per probe. The
// slices are pooled on the net, so steady-state queries allocate only their
// result slice; the same pooled state backs the batched traversal, whose
// profile was dominated by map operations before the switch.

// decidedBit marks a node whose ball membership is settled for this query;
// computedBit marks a node whose distance to the query has been computed
// (and stored in queryState.d).
const (
	decidedBit  = 1
	computedBit = 2
)

// queryState is the per-query traversal scratch: node flags, computed
// distances, and the explicit DFS stack, all recycled via Net.qpool.
type queryState[T any] struct {
	flags []uint8
	d     []float64
	stack []stackEntry[T]
}

type stackEntry[T any] struct {
	n *Node[T]
	d float64
}

// getState returns a query state sized for the current node-id space with
// all flags cleared.
func (t *Net[T]) getState() *queryState[T] {
	s, _ := t.qpool.Get().(*queryState[T])
	if s == nil {
		s = &queryState[T]{}
	}
	n := int(t.nextID)
	if cap(s.flags) < n {
		s.flags = make([]uint8, n)
		s.d = make([]float64, n)
	} else {
		s.flags = s.flags[:n]
		s.d = s.d[:n]
		clear(s.flags)
	}
	s.stack = s.stack[:0]
	return s
}

func (t *Net[T]) putState(s *queryState[T]) { t.qpool.Put(s) }

// probeDist evaluates δ(q, item) under the net's bounded evaluation when
// armed: exact reports whether the returned value is the true distance
// (false only for an abandoned bounded evaluation, which proves the true
// distance exceeds bound).
func (t *Net[T]) probeDist(q, item T, bound float64) (d float64, exact bool) {
	if t.bounded != nil {
		v := t.bounded(q, item, bound)
		return v, v <= bound
	}
	return t.dist(q, item), true
}

// Range returns every item within eps of q (inclusive).
func (t *Net[T]) Range(q T, eps float64) []T {
	var out []T
	t.RangeFunc(q, eps, func(item T) { out = append(out, item) })
	return out
}

// RangeFunc streams every item within eps of q to yield, avoiding result
// slice allocation. The order of results is unspecified.
func (t *Net[T]) RangeFunc(q T, eps float64, yield func(T)) {
	if t.root == nil {
		return
	}
	st := t.getState()
	t.rangeWith(st, q, eps, func(item T) bool { yield(item); return true })
	t.putState(st)
}

// Exists reports whether any item lies within eps of q. It runs the same
// traversal as Range but stops at the first item proven inside the ball —
// including a whole subtree certified by rule 2, whose first member
// terminates the walk without visiting the rest.
func (t *Net[T]) Exists(q T, eps float64) bool {
	if t.root == nil {
		return false
	}
	st := t.getState()
	found := !t.rangeWith(st, q, eps, func(T) bool { return false })
	t.putState(st)
	return found
}

// rangeWith runs the traversal with the given scratch, streaming results to
// yield; yield returning false stops the walk immediately and makes
// rangeWith return false.
func (t *Net[T]) rangeWith(st *queryState[T], q T, eps float64, yield func(T) bool) bool {
	rootRho := t.CoverRadius(t.root.level)
	d, _ := t.probeDist(q, t.root.item, eps+rootRho)
	if d > eps+rootRho {
		// δ(q, root) > ε + ρ(root): every item is outside the ball (rule 3
		// at the root; when the evaluation abandoned, a proof rather than a
		// distance). Values at or under the bound are exact.
		return true
	}
	st.flags[t.root.id] = decidedBit | computedBit
	st.d[t.root.id] = d
	if d <= eps && !yield(t.root.item) {
		return false
	}
	stack := append(st.stack[:0], stackEntry[T]{t.root, d})
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, d := e.n, e.d
		for _, ce := range n.children {
			c := ce.n
			if st.flags[c.id]&decidedBit != 0 {
				continue
			}
			rho := t.CoverRadius(c.level)
			if !t.noEdgeBounds {
				lo := d - ce.d
				if lo < 0 {
					lo = -lo
				}
				hi := d + ce.d
				// Tighten through every other parent already computed.
				for _, pe := range c.parents {
					if pe.n == n || st.flags[pe.n.id]&computedBit == 0 {
						continue
					}
					dp := st.d[pe.n.id]
					if l := dp - pe.d; l > lo {
						lo = l
					} else if -l > lo {
						lo = -l
					}
					if h := dp + pe.d; h < hi {
						hi = h
					}
				}
				if lo-rho > eps {
					t.markSubtree(c, st)
					continue
				}
				if hi+rho <= eps {
					if !t.collectSubtree(c, st, yield) {
						st.stack = stack
						return false
					}
					continue
				}
			}
			dc, exact := t.probeDist(q, c.item, eps+rho)
			if !exact {
				// Abandoned: δ(q,c) > ε + ρ proves the subtree outside; the
				// inexact value is not recorded for parent bounds.
				t.markSubtree(c, st)
				continue
			}
			st.flags[c.id] |= computedBit
			st.d[c.id] = dc
			if dc-rho > eps {
				t.markSubtree(c, st)
				continue
			}
			if dc+rho <= eps {
				if !t.collectSubtree(c, st, yield) {
					st.stack = stack
					return false
				}
				continue
			}
			st.flags[c.id] |= decidedBit
			if dc <= eps && !yield(c.item) {
				st.stack = stack
				return false
			}
			if len(c.children) > 0 {
				stack = append(stack, stackEntry[T]{c, dc})
			}
		}
	}
	st.stack = stack
	return true
}

// markSubtree marks c and its multi-parent descendants as decided
// (outside the ball). Mirroring the Appendix, this prevents re-examining,
// via another parent, nodes already excluded by a subtree bound. Nodes
// with a single parent are reachable only through this walk, so skipping
// their flags is safe and keeps per-query bookkeeping proportional to the
// multi-parent population rather than the subtree size.
func (t *Net[T]) markSubtree(c *Node[T], st *queryState[T]) {
	if len(c.parents) > 1 {
		if st.flags[c.id]&decidedBit != 0 {
			return
		}
		st.flags[c.id] |= decidedBit
	}
	for _, e := range c.children {
		t.markSubtree(e.n, st)
	}
}

// collectSubtree reports c and all its not-yet-decided descendants as
// results, with the same single-parent marking optimisation as markSubtree
// (a single-parent node can be collected only through its one parent, so it
// cannot be yielded twice). A false return from yield aborts the collection
// and propagates.
func (t *Net[T]) collectSubtree(c *Node[T], st *queryState[T], yield func(T) bool) bool {
	if len(c.parents) > 1 {
		if st.flags[c.id]&decidedBit != 0 {
			return true
		}
		st.flags[c.id] |= decidedBit
	}
	if !yield(c.item) {
		return false
	}
	for _, e := range c.children {
		if !t.collectSubtree(e.n, st, yield) {
			return false
		}
	}
	return true
}

// collectSubtreeInto is collectSubtree appending straight into dst — the
// batched traversal's form, which avoids minting a yield closure per
// collected subtree.
func (t *Net[T]) collectSubtreeInto(c *Node[T], st *queryState[T], dst *[]T) {
	if len(c.parents) > 1 {
		if st.flags[c.id]&decidedBit != 0 {
			return
		}
		st.flags[c.id] |= decidedBit
	}
	*dst = append(*dst, c.item)
	for _, e := range c.children {
		t.collectSubtreeInto(e.n, st, dst)
	}
}

// qd is one surviving probe on a node's active list: the probe index and
// its (exact) computed distance to the node.
type qd struct {
	qi int32
	d  float64
}

// batchEntry is one frame of the batched traversal: a node plus the probes
// still undecided for it. The active list is owned by the frame and
// recycled through the scratch freelist when the frame is consumed.
type batchEntry[T any] struct {
	n      *Node[T]
	active []qd
}

// batchScratch is the per-BatchRange working set, pooled on the net: probe
// states, the frame stack, a freelist of active-list backing arrays (a
// traversal previously allocated a fresh list per inconclusive node), and
// the pending/dists buffers of the per-node batched evaluation.
type batchScratch[T any] struct {
	states  []*queryState[T]
	stack   []batchEntry[T]
	free    [][]qd
	pending []int32
	dists   []float64
	defEval distEvaluator[T]
}

func (t *Net[T]) getBatchScratch() *batchScratch[T] {
	bs, _ := t.bpool.Get().(*batchScratch[T])
	if bs == nil {
		bs = &batchScratch[T]{}
	}
	return bs
}

func (t *Net[T]) putBatchScratch(bs *batchScratch[T]) {
	bs.states = bs.states[:0]
	bs.stack = bs.stack[:0]
	t.bpool.Put(bs)
}

// getList hands out an empty active list, reusing a retired one when
// available.
func (bs *batchScratch[T]) getList() []qd {
	if n := len(bs.free); n > 0 {
		l := bs.free[n-1]
		bs.free = bs.free[:n-1]
		return l
	}
	return nil
}

// putList retires an active list's backing array to the freelist.
func (bs *batchScratch[T]) putList(l []qd) {
	if cap(l) > 0 {
		bs.free = append(bs.free, l[:0])
	}
}

// distEvaluator is the default batch evaluator: probe-by-probe evaluation
// through the net's distance (bounded when armed).
type distEvaluator[T any] struct {
	t  *Net[T]
	qs []T
}

func (e *distEvaluator[T]) Exact() bool { return e.t.bounded == nil }

func (e *distEvaluator[T]) EvalBatch(item T, idxs []int32, bound float64, out []float64) {
	if b := e.t.bounded; b != nil {
		for k, qi := range idxs {
			out[k] = b(e.qs[qi], item, bound)
		}
		return
	}
	for k, qi := range idxs {
		out[k] = e.t.dist(e.qs[qi], item)
	}
}

// BatchRange answers many range queries with the same radius in a single
// traversal of the net (Section 7: "it is possible that many queries are
// executed at the same time on the index structure in a single traversal").
// Result i holds the items within eps of qs[i]. The per-probe distance
// evaluations match per-query Range calls; the saving is in traversal
// overhead — each node's children are walked once for the whole surviving
// query set rather than once per query — and in locality when the query
// set is large.
func (t *Net[T]) BatchRange(qs []T, eps float64) [][]T {
	return t.BatchRangeEval(qs, eps, nil)
}

// BatchRangeEval is BatchRange with a caller-supplied batch evaluator: at
// every node, all probes that reach the evaluation rule (step 3) are handed
// to ev in one EvalBatch call, so the evaluator can share work across them
// — e.g. advance a node window's incremental kernel once for a group of
// probes that share a query offset and read the distance off at every probe
// length. ev == nil selects the default probe-by-probe evaluator (the
// net's distance, bounded when armed). Results are identical for any
// correct evaluator.
func (t *Net[T]) BatchRangeEval(qs []T, eps float64, ev metric.BatchEvaluator[T]) [][]T {
	out := make([][]T, len(qs))
	if t.root == nil || len(qs) == 0 {
		return out
	}
	bs := t.getBatchScratch()
	if ev == nil {
		bs.defEval = distEvaluator[T]{t: t, qs: qs}
		ev = &bs.defEval
	}
	exact := ev.Exact()
	for range qs {
		bs.states = append(bs.states, t.getState())
	}
	states := bs.states

	// Root: one batched evaluation prices every probe.
	rootRho := t.CoverRadius(t.root.level)
	pending := bs.pending[:0]
	for i := range qs {
		pending = append(pending, int32(i))
	}
	if cap(bs.dists) < len(qs) {
		bs.dists = make([]float64, len(qs))
	}
	dists := bs.dists[:len(qs)]
	ev.EvalBatch(t.root.item, pending, eps+rootRho, dists)
	rootActive := bs.getList()
	for i := range qs {
		d := dists[i]
		if d > eps+rootRho {
			// The whole net is outside this probe's ball; drop the probe.
			// (With an exact evaluator this is rule 3 at the root; with a
			// bounded one the value is a proof, not a distance.)
			continue
		}
		st := states[i]
		st.flags[t.root.id] = decidedBit | computedBit
		st.d[t.root.id] = d
		if d <= eps {
			out[i] = append(out[i], t.root.item)
		}
		rootActive = append(rootActive, qd{int32(i), d})
	}
	stack := append(bs.stack[:0], batchEntry[T]{t.root, rootActive})
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ce := range e.n.children {
			c := ce.n
			rho := t.CoverRadius(c.level)
			bound := eps + rho
			// Phase 1: settle what the zero-computation bounds can; queue
			// the rest for one batched evaluation.
			pending = pending[:0]
			for _, a := range e.active {
				st := states[a.qi]
				if st.flags[c.id]&decidedBit != 0 {
					continue
				}
				if !t.noEdgeBounds {
					lo := a.d - ce.d
					if lo < 0 {
						lo = -lo
					}
					hi := a.d + ce.d
					for _, pe := range c.parents {
						if pe.n == e.n || st.flags[pe.n.id]&computedBit == 0 {
							continue
						}
						dp := st.d[pe.n.id]
						if l := dp - pe.d; l > lo {
							lo = l
						} else if -l > lo {
							lo = -l
						}
						if h := dp + pe.d; h < hi {
							hi = h
						}
					}
					if lo-rho > eps {
						t.markSubtree(c, st)
						continue
					}
					if hi+rho <= eps {
						t.collectSubtreeInto(c, st, &out[a.qi])
						continue
					}
				}
				pending = append(pending, a.qi)
			}
			if len(pending) == 0 {
				continue
			}
			// Phase 2: evaluate every queued probe against c at once.
			if cap(dists) < len(pending) {
				bs.dists = make([]float64, len(pending))
				dists = bs.dists
			}
			dists = dists[:len(pending)]
			ev.EvalBatch(c.item, pending, bound, dists)
			// Phase 3: apply rules 3–4 per probe.
			next := bs.getList()
			for k, qi := range pending {
				st := states[qi]
				dc := dists[k]
				if dc > bound {
					// δ(q,c) > ε + ρ: prune the subtree. Exact values still
					// seed the triangle bounds of later visits.
					if exact {
						st.flags[c.id] |= computedBit
						st.d[c.id] = dc
					}
					t.markSubtree(c, st)
					continue
				}
				st.flags[c.id] |= computedBit
				st.d[c.id] = dc
				if dc+rho <= eps {
					t.collectSubtreeInto(c, st, &out[qi])
					continue
				}
				st.flags[c.id] |= decidedBit
				if dc <= eps {
					out[qi] = append(out[qi], c.item)
				}
				next = append(next, qd{qi, dc})
			}
			if len(next) > 0 && len(c.children) > 0 {
				stack = append(stack, batchEntry[T]{c, next})
			} else {
				bs.putList(next)
			}
		}
		bs.putList(e.active)
	}
	bs.pending, bs.dists, bs.stack = pending, dists, stack
	for _, st := range states {
		t.putState(st)
	}
	t.putBatchScratch(bs)
	return out
}
