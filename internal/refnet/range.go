package refnet

// Range query (Appendix A.3). The traversal maintains, per query, the two
// certainty sets of the paper — items proven inside the ball and items
// proven outside — realised here as a per-node decided flag plus the result
// stream, and additionally the computed query-to-node distances.
//
// For a child c of a node whose distance is known, the triangle inequality
// through EVERY parent of c with a computed distance gives bounds
//
//	lo = max over known parents p of |δ(q,p) − δ(p,c)|
//	hi = min over known parents p of  δ(q,p) + δ(p,c)
//
// (δ(p,c) is stored on the edge at insertion time, so these cost no
// distance computations). This is exactly the multi-parent advantage the
// paper illustrates in Figure 2: a node sitting in several reference
// lists can be certified through whichever reference yields the tightest
// bound — a single-parent tree has no such choice. Writing ρ for the
// subtree cover radius of c, the rules are then:
//
//  1. lo − ρ > ε  ⇒ the whole subtree of c is outside; prune with no
//     distance computation (Lemma 4 generalised with stored distances).
//  2. hi + ρ ≤ ε  ⇒ the whole subtree of c is inside; collect with no
//     distance computation.
//  3. otherwise compute dc = δ(q,c); then dc − ρ > ε prunes and
//     dc + ρ ≤ ε collects the subtree, as in the Appendix.
//  4. inconclusive ⇒ report c if dc ≤ ε and recurse into its children.
//
// Multi-parent sharing means a node can be reached along several paths;
// the decided flag guarantees each node's membership is settled exactly
// once.
//
// Per-query bookkeeping lives in flat slices indexed by the dense node ids
// assigned at insertion — a query touches each slot with two or three
// unhashed array accesses where a map would hash a pointer per probe. The
// slices are pooled on the net, so steady-state queries allocate only their
// result slice; the same pooled state backs the batched traversal, whose
// profile was dominated by map operations before the switch.

// decidedBit marks a node whose ball membership is settled for this query;
// computedBit marks a node whose distance to the query has been computed
// (and stored in queryState.d).
const (
	decidedBit  = 1
	computedBit = 2
)

// queryState is the per-query traversal scratch: node flags, computed
// distances, and the explicit DFS stack, all recycled via Net.qpool.
type queryState[T any] struct {
	flags []uint8
	d     []float64
	stack []stackEntry[T]
}

type stackEntry[T any] struct {
	n *Node[T]
	d float64
}

// getState returns a query state sized for the current node-id space with
// all flags cleared.
func (t *Net[T]) getState() *queryState[T] {
	s, _ := t.qpool.Get().(*queryState[T])
	if s == nil {
		s = &queryState[T]{}
	}
	n := int(t.nextID)
	if cap(s.flags) < n {
		s.flags = make([]uint8, n)
		s.d = make([]float64, n)
	} else {
		s.flags = s.flags[:n]
		s.d = s.d[:n]
		clear(s.flags)
	}
	s.stack = s.stack[:0]
	return s
}

func (t *Net[T]) putState(s *queryState[T]) { t.qpool.Put(s) }

// Range returns every item within eps of q (inclusive).
func (t *Net[T]) Range(q T, eps float64) []T {
	var out []T
	t.RangeFunc(q, eps, func(item T) { out = append(out, item) })
	return out
}

// RangeFunc streams every item within eps of q to yield, avoiding result
// slice allocation. The order of results is unspecified.
func (t *Net[T]) RangeFunc(q T, eps float64, yield func(T)) {
	if t.root == nil {
		return
	}
	st := t.getState()
	t.rangeWith(st, q, eps, func(item T) bool { yield(item); return true })
	t.putState(st)
}

// Exists reports whether any item lies within eps of q. It runs the same
// traversal as Range but stops at the first item proven inside the ball —
// including a whole subtree certified by rule 2, whose first member
// terminates the walk without visiting the rest.
func (t *Net[T]) Exists(q T, eps float64) bool {
	if t.root == nil {
		return false
	}
	st := t.getState()
	found := !t.rangeWith(st, q, eps, func(T) bool { return false })
	t.putState(st)
	return found
}

// rangeWith runs the traversal with the given scratch, streaming results to
// yield; yield returning false stops the walk immediately and makes
// rangeWith return false.
func (t *Net[T]) rangeWith(st *queryState[T], q T, eps float64, yield func(T) bool) bool {
	d := t.dist(q, t.root.item)
	st.flags[t.root.id] = decidedBit | computedBit
	st.d[t.root.id] = d
	if d <= eps && !yield(t.root.item) {
		return false
	}
	stack := append(st.stack[:0], stackEntry[T]{t.root, d})
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, d := e.n, e.d
		for _, ce := range n.children {
			c := ce.n
			if st.flags[c.id]&decidedBit != 0 {
				continue
			}
			rho := t.CoverRadius(c.level)
			if !t.noEdgeBounds {
				lo := d - ce.d
				if lo < 0 {
					lo = -lo
				}
				hi := d + ce.d
				// Tighten through every other parent already computed.
				for _, pe := range c.parents {
					if pe.n == n || st.flags[pe.n.id]&computedBit == 0 {
						continue
					}
					dp := st.d[pe.n.id]
					if l := dp - pe.d; l > lo {
						lo = l
					} else if -l > lo {
						lo = -l
					}
					if h := dp + pe.d; h < hi {
						hi = h
					}
				}
				if lo-rho > eps {
					t.markSubtree(c, st)
					continue
				}
				if hi+rho <= eps {
					if !t.collectSubtree(c, st, yield) {
						st.stack = stack
						return false
					}
					continue
				}
			}
			dc := t.dist(q, c.item)
			st.flags[c.id] |= computedBit
			st.d[c.id] = dc
			if dc-rho > eps {
				t.markSubtree(c, st)
				continue
			}
			if dc+rho <= eps {
				if !t.collectSubtree(c, st, yield) {
					st.stack = stack
					return false
				}
				continue
			}
			st.flags[c.id] |= decidedBit
			if dc <= eps && !yield(c.item) {
				st.stack = stack
				return false
			}
			if len(c.children) > 0 {
				stack = append(stack, stackEntry[T]{c, dc})
			}
		}
	}
	st.stack = stack
	return true
}

// markSubtree marks c and its multi-parent descendants as decided
// (outside the ball). Mirroring the Appendix, this prevents re-examining,
// via another parent, nodes already excluded by a subtree bound. Nodes
// with a single parent are reachable only through this walk, so skipping
// their flags is safe and keeps per-query bookkeeping proportional to the
// multi-parent population rather than the subtree size.
func (t *Net[T]) markSubtree(c *Node[T], st *queryState[T]) {
	if len(c.parents) > 1 {
		if st.flags[c.id]&decidedBit != 0 {
			return
		}
		st.flags[c.id] |= decidedBit
	}
	for _, e := range c.children {
		t.markSubtree(e.n, st)
	}
}

// collectSubtree reports c and all its not-yet-decided descendants as
// results, with the same single-parent marking optimisation as markSubtree
// (a single-parent node can be collected only through its one parent, so it
// cannot be yielded twice). A false return from yield aborts the collection
// and propagates.
func (t *Net[T]) collectSubtree(c *Node[T], st *queryState[T], yield func(T) bool) bool {
	if len(c.parents) > 1 {
		if st.flags[c.id]&decidedBit != 0 {
			return true
		}
		st.flags[c.id] |= decidedBit
	}
	if !yield(c.item) {
		return false
	}
	for _, e := range c.children {
		if !t.collectSubtree(e.n, st, yield) {
			return false
		}
	}
	return true
}

// BatchRange answers many range queries with the same radius in a single
// traversal of the net (Section 7: "it is possible that many queries are
// executed at the same time on the index structure in a single traversal").
// Result i holds the items within eps of qs[i]. The total number of
// distance computations matches per-query Range calls; the saving is in
// traversal overhead — each node's children are walked once for the whole
// surviving query set rather than once per query — and in locality when the
// query set is large.
func (t *Net[T]) BatchRange(qs []T, eps float64) [][]T {
	out := make([][]T, len(qs))
	if t.root == nil || len(qs) == 0 {
		return out
	}
	states := make([]*queryState[T], len(qs))
	for i := range qs {
		states[i] = t.getState()
	}
	type qd struct {
		qi int32
		d  float64
	}
	rootActive := make([]qd, 0, len(qs))
	for i, q := range qs {
		d := t.dist(q, t.root.item)
		states[i].flags[t.root.id] = decidedBit | computedBit
		states[i].d[t.root.id] = d
		if d <= eps {
			out[i] = append(out[i], t.root.item)
		}
		rootActive = append(rootActive, qd{int32(i), d})
	}
	type entry struct {
		n      *Node[T]
		active []qd
	}
	stack := []entry{{t.root, rootActive}}
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ce := range e.n.children {
			c := ce.n
			rho := t.CoverRadius(c.level)
			var next []qd
			for _, a := range e.active {
				st := states[a.qi]
				if st.flags[c.id]&decidedBit != 0 {
					continue
				}
				lo := a.d - ce.d
				if lo < 0 {
					lo = -lo
				}
				hi := a.d + ce.d
				for _, pe := range c.parents {
					if pe.n == e.n || st.flags[pe.n.id]&computedBit == 0 {
						continue
					}
					dp := st.d[pe.n.id]
					if l := dp - pe.d; l > lo {
						lo = l
					} else if -l > lo {
						lo = -l
					}
					if h := dp + pe.d; h < hi {
						hi = h
					}
				}
				if lo-rho > eps {
					t.markSubtree(c, st)
					continue
				}
				if hi+rho <= eps {
					t.collectSubtree(c, st, func(item T) bool {
						out[a.qi] = append(out[a.qi], item)
						return true
					})
					continue
				}
				dc := t.dist(qs[a.qi], c.item)
				st.flags[c.id] |= computedBit
				st.d[c.id] = dc
				if dc-rho > eps {
					t.markSubtree(c, st)
					continue
				}
				if dc+rho <= eps {
					t.collectSubtree(c, st, func(item T) bool {
						out[a.qi] = append(out[a.qi], item)
						return true
					})
					continue
				}
				st.flags[c.id] |= decidedBit
				if dc <= eps {
					out[a.qi] = append(out[a.qi], c.item)
				}
				next = append(next, qd{a.qi, dc})
			}
			if len(next) > 0 && len(c.children) > 0 {
				stack = append(stack, entry{c, next})
			}
		}
	}
	for _, st := range states {
		t.putState(st)
	}
	return out
}
