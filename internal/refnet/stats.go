package refnet

import (
	"fmt"
	"sort"
	"unsafe"
)

// Stats summarises the structure and space consumption of a net — the
// quantities the paper plots in Figures 5–7 (node counts, list counts,
// average list size / parents per window, index megabytes).
type Stats struct {
	// Nodes is the number of stored items.
	Nodes int
	// MaxLevel is the root's level (the net has MaxLevel+1 conceptual
	// levels).
	MaxLevel int
	// NodesPerLevel counts nodes by their storage level.
	NodesPerLevel map[int]int
	// ParentLinks is the total number of parent→child edges. Divided by
	// Nodes it is the paper's "average number of parents per window".
	ParentLinks int
	// Lists is the number of non-empty reference lists, one per (reference,
	// child level) pair with at least one entry.
	Lists int
	// AvgParents is ParentLinks / (Nodes−1) (the root has no parent).
	AvgParents float64
	// AvgListSize is ParentLinks / Lists.
	AvgListSize float64
	// StructBytes estimates the memory of the net's own structures (nodes,
	// edges, parent backlinks), excluding item payloads.
	StructBytes int64
	// PayloadBytes estimates item payload memory when a payload sizer was
	// supplied to StatsWithPayload; 0 otherwise.
	PayloadBytes int64
}

// TotalBytes is the estimated total index size in bytes.
func (s Stats) TotalBytes() int64 { return s.StructBytes + s.PayloadBytes }

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d maxLevel=%d lists=%d links=%d avgParents=%.2f avgList=%.2f bytes=%d",
		s.Nodes, s.MaxLevel, s.Lists, s.ParentLinks, s.AvgParents, s.AvgListSize, s.TotalBytes())
}

// Stats walks the net and returns structural statistics, excluding item
// payload sizes.
func (t *Net[T]) Stats() Stats { return t.StatsWithPayload(nil) }

// StatsWithPayload is Stats with a caller-supplied payload sizer, used to
// report total index size for variable-size items (e.g. sequence windows).
func (t *Net[T]) StatsWithPayload(payloadBytes func(T) int) Stats {
	s := Stats{NodesPerLevel: map[int]int{}}
	if t.root == nil {
		return s
	}
	s.MaxLevel = t.root.level
	var edgeSize = int64(unsafe.Sizeof(edge[T]{}))
	var nodeSize = int64(unsafe.Sizeof(Node[T]{}))
	t.walk(func(n *Node[T]) {
		s.Nodes++
		s.NodesPerLevel[n.level]++
		s.ParentLinks += len(n.children)
		levels := map[int]bool{}
		for _, e := range n.children {
			levels[e.n.level+1] = true
		}
		s.Lists += len(levels)
		s.StructBytes += nodeSize + edgeSize*int64(len(n.children)+len(n.parents))
		if payloadBytes != nil {
			s.PayloadBytes += int64(payloadBytes(n.item))
		}
	})
	if s.Nodes > 1 {
		s.AvgParents = float64(s.ParentLinks) / float64(s.Nodes-1)
	}
	if s.Lists > 0 {
		s.AvgListSize = float64(s.ParentLinks) / float64(s.Lists)
	}
	return s
}

// walk visits every node exactly once.
func (t *Net[T]) walk(visit func(*Node[T])) {
	if t.root == nil {
		return
	}
	seen := map[*Node[T]]bool{t.root: true}
	stack := []*Node[T]{t.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit(n)
		for _, e := range n.children {
			if !seen[e.n] {
				seen[e.n] = true
				stack = append(stack, e.n)
			}
		}
	}
}

// Walk visits every node handle exactly once, in the net's stable walk
// order (the order Save serialises nodes in). Callers use it to rebuild
// side tables keyed by item identity after Load — e.g. the matcher's
// window→handle map that feeds Delete. The handles remain valid until the
// node is deleted. visit must not mutate the net.
func (t *Net[T]) Walk(visit func(*Node[T])) { t.walk(visit) }

// RewriteItems replaces every stored item with fn(item). It exists for
// one purpose: after Load, item payloads own freshly decoded storage, and
// a caller holding the canonical backing data (e.g. restored database
// sequences) can re-alias payload views onto it instead of keeping two
// copies alive. fn MUST be distance-preserving — the rewritten item must
// be metrically identical to the original, or every stored edge distance
// becomes a lie and queries are silently wrong.
func (t *Net[T]) RewriteItems(fn func(T) T) {
	t.walk(func(n *Node[T]) { n.item = fn(n.item) })
}

// Items returns all stored items in unspecified order.
func (t *Net[T]) Items() []T {
	out := make([]T, 0, t.size)
	t.walk(func(n *Node[T]) { out = append(out, n.item) })
	return out
}

// Validate checks the net's structural invariants and returns a descriptive
// error on the first violation. It recomputes distances, so it is O(edges)
// distance evaluations — intended for tests and debugging.
//
// Checked invariants:
//   - reachability: every one of Len() items is reachable from the root;
//   - level order: parents are at strictly higher levels than children;
//   - inclusive property: every parent-child link respects the child
//     level's parent radius δ(p,c) ≤ ǫ_{level(c)+1}, and stored edge
//     distances match the metric;
//   - parent backlinks are consistent with child lists;
//   - the parent cap nummax.
func (t *Net[T]) Validate() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("refnet: nil root but size %d", t.size)
		}
		return nil
	}
	if len(t.root.parents) != 0 {
		return fmt.Errorf("refnet: root has %d parents", len(t.root.parents))
	}
	count := 0
	var err error
	t.walk(func(p *Node[T]) {
		count++
		if err != nil {
			return
		}
		if p != t.root && len(p.parents) == 0 {
			err = fmt.Errorf("refnet: non-root node at level %d has no parents", p.level)
			return
		}
		if t.numMax > 0 && len(p.parents) > t.numMax {
			err = fmt.Errorf("refnet: node has %d parents, cap is %d", len(p.parents), t.numMax)
			return
		}
		for _, par := range p.parents {
			if !containsChild(par.n.children, p) {
				err = fmt.Errorf("refnet: parent backlink without child entry")
				return
			}
			if d := t.dist(par.n.item, p.item); d-par.d > 1e-9 || par.d-d > 1e-9 {
				err = fmt.Errorf("refnet: stored parent-link distance %g differs from metric %g", par.d, d)
				return
			}
		}
		for _, e := range p.children {
			if e.n.level >= p.level {
				err = fmt.Errorf("refnet: child level %d not below parent level %d", e.n.level, p.level)
				return
			}
			d := t.dist(p.item, e.n.item)
			if diff := d - e.d; diff > 1e-9 || diff < -1e-9 {
				err = fmt.Errorf("refnet: stored edge distance %g differs from metric %g", e.d, d)
				return
			}
			if limit := t.Eps(e.n.level + 1); d > limit+1e-9 {
				err = fmt.Errorf("refnet: edge distance %g exceeds parent radius %g for child level %d",
					d, limit, e.n.level)
				return
			}
			if !containsChild(e.n.parents, p) {
				err = fmt.Errorf("refnet: child entry without parent backlink")
				return
			}
		}
	})
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("refnet: %d reachable nodes but size %d", count, t.size)
	}
	return nil
}

// LevelHistogram returns the storage levels present in the net in
// ascending order with their node counts, for diagnostics.
func (t *Net[T]) LevelHistogram() []struct{ Level, Count int } {
	s := t.Stats()
	levels := make([]int, 0, len(s.NodesPerLevel))
	for l := range s.NodesPerLevel {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	out := make([]struct{ Level, Count int }, len(levels))
	for i, l := range levels {
		out[i] = struct{ Level, Count int }{l, s.NodesPerLevel[l]}
	}
	return out
}

func containsChild[T any](edges []edge[T], n *Node[T]) bool {
	for _, e := range edges {
		if e.n == n {
			return true
		}
	}
	return false
}
