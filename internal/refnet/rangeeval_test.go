package refnet

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// batchCountingEval is an exact BatchEvaluator that records how many
// EvalBatch calls and how many probe evaluations it served.
type batchCountingEval struct {
	qs     []float64
	calls  int
	probes int
}

func (e *batchCountingEval) Exact() bool { return true }

func (e *batchCountingEval) EvalBatch(item float64, idxs []int32, _ float64, out []float64) {
	e.calls++
	e.probes += len(idxs)
	for k, qi := range idxs {
		out[k] = math.Abs(e.qs[qi] - item)
	}
}

// BatchRangeEval with an exact custom evaluator must return exactly the
// default BatchRange results, and must have batched the probes: strictly
// fewer EvalBatch calls than probe evaluations once several probes survive
// to the same nodes.
func TestBatchRangeEvalMatchesBatchRange(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 43))
	n := New(absDist)
	for i := 0; i < 400; i++ {
		n.Insert(rng.Float64() * 100)
	}
	qs := make([]float64, 24)
	for i := range qs {
		qs[i] = rng.Float64() * 100
	}
	const eps = 3.0
	want := n.BatchRange(qs, eps)
	ev := &batchCountingEval{qs: qs}
	got := n.BatchRangeEval(qs, eps, ev)
	for i := range qs {
		g := append([]float64(nil), got[i]...)
		w := append([]float64(nil), want[i]...)
		sort.Float64s(g)
		sort.Float64s(w)
		if !equalFloats(g, w) {
			t.Fatalf("query %d: eval path %v, default %v", i, g, w)
		}
	}
	if ev.calls == 0 || ev.probes == 0 {
		t.Fatal("evaluator never invoked")
	}
	if ev.calls >= ev.probes {
		t.Fatalf("no batching: %d EvalBatch calls for %d probe evaluations", ev.calls, ev.probes)
	}
}

// A bounded evaluation armed via SetBounded must leave every Range, Exists
// and BatchRange result unchanged — abandoned probes only ever prune
// subtrees the exact traversal would also have pruned.
func TestBoundedTraversalMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 53))
	exactNet := New(absDist)
	boundedNet := New(absDist)
	boundedNet.SetBounded(func(a, b float64, eps float64) float64 {
		d := math.Abs(a - b)
		if d > eps {
			return math.Inf(1) // abandoned: any value > eps
		}
		return d
	})
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 200
		exactNet.Insert(v)
		boundedNet.Insert(v)
	}
	qs := make([]float64, 16)
	for i := range qs {
		qs[i] = rng.Float64() * 200
	}
	for _, eps := range []float64{0, 1.5, 10, 60} {
		for _, q := range qs {
			want := append([]float64(nil), exactNet.Range(q, eps)...)
			got := append([]float64(nil), boundedNet.Range(q, eps)...)
			sort.Float64s(want)
			sort.Float64s(got)
			if !equalFloats(got, want) {
				t.Fatalf("eps=%v q=%v: bounded Range %v, exact %v", eps, q, got, want)
			}
			if be, ee := boundedNet.Exists(q, eps), exactNet.Exists(q, eps); be != ee {
				t.Fatalf("eps=%v q=%v: bounded Exists %v, exact %v", eps, q, be, ee)
			}
		}
		wantB := exactNet.BatchRange(qs, eps)
		gotB := boundedNet.BatchRange(qs, eps)
		for i := range qs {
			g := append([]float64(nil), gotB[i]...)
			w := append([]float64(nil), wantB[i]...)
			sort.Float64s(g)
			sort.Float64s(w)
			if !equalFloats(g, w) {
				t.Fatalf("eps=%v query %d: bounded BatchRange %v, exact %v", eps, i, g, w)
			}
		}
	}
}

// The bounded traversal must actually abandon: with a counting bounded
// function, small-radius queries on clustered data see most evaluations
// stop early.
func TestBoundedTraversalAbandons(t *testing.T) {
	rng := rand.New(rand.NewPCG(59, 61))
	n := New(absDist)
	abandoned := 0
	n.SetBounded(func(a, b float64, eps float64) float64 {
		d := math.Abs(a - b)
		if d > eps {
			abandoned++
			return math.Inf(1)
		}
		return d
	})
	for i := 0; i < 1000; i++ {
		cluster := float64(i%10) * 1000
		n.Insert(cluster + rng.Float64())
	}
	n.Range(5000.5, 2)
	if abandoned == 0 {
		t.Fatal("bounded evaluation never abandoned on clustered data")
	}
}

// BatchRange must recycle its active lists: after a warm-up call, repeat
// calls allocate only the result slices, not a fresh list per inconclusive
// node.
func TestBatchRangeActiveListReuse(t *testing.T) {
	rng := rand.New(rand.NewPCG(67, 71))
	n := New(absDist)
	for i := 0; i < 600; i++ {
		n.Insert(rng.Float64() * 50)
	}
	qs := make([]float64, 12)
	for i := range qs {
		qs[i] = rng.Float64() * 50
	}
	// A small radius keeps result sets tiny (their growth is inherent
	// allocation) while the traversal still walks many inconclusive nodes —
	// the shape where the old fresh-list-per-node path allocated hundreds.
	const eps = 0.05
	// Warm the pools, then measure.
	n.BatchRange(qs, eps)
	results := 0
	for _, r := range n.BatchRange(qs, eps) {
		results += len(r)
	}
	if results == 0 {
		t.Fatal("queries found nothing; test is vacuous")
	}
	if raceEnabled {
		// The race detector makes sync.Pool drop Put items at random, so
		// reuse-dependent allocation counts are nondeterministic there.
		t.Skip("allocation pinning is meaningless under the race detector")
	}
	allocs := testing.AllocsPerRun(20, func() {
		n.BatchRange(qs, eps)
	})
	// out, a slice per non-empty result set, plus small pool slack; a fresh
	// active list per inconclusive node would add tens to hundreds.
	if limit := float64(2*len(qs) + 8); allocs > limit {
		t.Fatalf("BatchRange allocates %v objects per call, want ≤ %v", allocs, limit)
	}
}
