package refnet

import (
	"errors"
	"fmt"
)

// ErrNotMember is returned by Delete when the handle does not belong to
// this net (already deleted, or inserted elsewhere).
var ErrNotMember = errors.New("refnet: node is not a member of this net")

// Delete removes the item behind handle h from the net (Appendix A.2).
//
// As in the paper, children of the deleted node that still appear in some
// other reference's list are left alone; orphaned children are re-homed —
// first by searching for replacement parents at their own level, and if
// none exist by re-locating them with the insertion descent (which may
// change their level and recursively re-home their own children).
func (t *Net[T]) Delete(h *Node[T]) error {
	if h == nil || t.root == nil {
		return ErrNotMember
	}
	if h != t.root && len(h.parents) == 0 {
		return ErrNotMember
	}
	if h == t.root {
		return t.deleteRoot()
	}
	for _, p := range h.parents {
		p.n.children = removeChild(p.n.children, h)
	}
	h.parents = nil
	t.size--
	orphans := detachChildren(h)
	for _, c := range orphans {
		t.rehome(c)
	}
	return nil
}

// deleteRoot removes the root node. The highest-level child becomes the new
// root and every other orphan is re-homed beneath it.
func (t *Net[T]) deleteRoot() error {
	old := t.root
	t.size--
	orphans := detachChildren(old)
	// Children of the root may have other parents; those need no help, but
	// detachChildren already filtered them out.
	if len(orphans) == 0 && t.size > 0 {
		// All of the old root's children survive under other parents — but
		// then those parents were reachable only through the root, which is
		// impossible unless the net is now disconnected. The only legal
		// state with no orphans is an empty net.
		return fmt.Errorf("refnet: internal error: root with %d items had no orphans", t.size)
	}
	if len(orphans) == 0 {
		t.root = nil
		return nil
	}
	// Promote the highest-level orphan.
	best := 0
	for i, c := range orphans {
		if c.level > orphans[best].level {
			best = i
		}
	}
	newRoot := orphans[best]
	if newRoot.level < 1 {
		newRoot.level = 1
	}
	t.root = newRoot
	for i, c := range orphans {
		if i == best {
			continue
		}
		t.rehome(c)
	}
	return nil
}

// detachChildren removes n from the parent lists of all its children and
// returns the children that became parentless.
func detachChildren[T any](n *Node[T]) []*Node[T] {
	var orphans []*Node[T]
	for _, e := range n.children {
		e.n.parents = removeChild(e.n.parents, n)
		if len(e.n.parents) == 0 {
			orphans = append(orphans, e.n)
		}
	}
	n.children = nil
	return orphans
}

// rehome finds a new position for an orphaned node (a node with no
// parents). It first tries to keep the node at its current level by
// searching for qualifying parents; failing that it re-runs the insertion
// descent, which may assign a different level, in which case children whose
// levels no longer fit beneath the node are recursively re-homed.
func (t *Net[T]) rehome(c *Node[T]) {
	if c == t.root {
		return
	}
	// Fast path: find replacement parents at the node's own level.
	if parents := t.findParents(c.item, c.level); len(parents) > 0 {
		t.attach(c, parents)
		return
	}
	// Slow path: relocate via the insertion descent. Detach all children
	// first so the descent cannot route through (and cycle into) the
	// node's own subtree; children are re-homed afterwards.
	orphans := detachChildren(c)
	level, parents := t.descend(c.item)
	// The descent may hand back the node itself... it cannot: c has no
	// parents and is not the root, so it is unreachable from the root.
	c.level = level
	t.attach(c, parents)
	for _, o := range orphans {
		t.rehome(o)
	}
}

// findParents searches for nodes of level ≥ level+1 within ǫ_{level+1} of
// item — the legal parents for a node at the given level. It reuses the
// insertion descent frontier, stopping at conceptual level level+1.
func (t *Net[T]) findParents(item T, level int) []cand[T] {
	target := level + 1
	if t.root == nil || t.root.level < target {
		return nil
	}
	d := t.dist(item, t.root.item)
	cur := []cand[T]{{t.root, d}}
	visited := map[*Node[T]]bool{t.root: true}
	for i := t.root.level; i > target; i-- {
		bound := t.Eps(i) // 2ǫ_{i−1}
		next := cur[:0:0]
		for _, c := range cur {
			if c.d <= bound {
				next = append(next, c)
			}
		}
		for _, c := range cur {
			for _, e := range c.n.children {
				if e.n.level != i-1 || visited[e.n] {
					continue
				}
				if lb := c.d - e.d; lb > bound || -lb > bound {
					visited[e.n] = true
					continue
				}
				visited[e.n] = true
				dd := t.dist(item, e.n.item)
				if dd <= bound {
					next = append(next, cand[T]{e.n, dd})
				}
			}
		}
		if len(next) == 0 {
			return nil
		}
		cur = next
	}
	var parents []cand[T]
	epsT := t.Eps(target)
	for _, c := range cur {
		if c.d <= epsT {
			parents = append(parents, c)
		}
	}
	return parents
}

func removeChild[T any](edges []edge[T], n *Node[T]) []edge[T] {
	out := edges[:0]
	for _, e := range edges {
		if e.n != n {
			out = append(out, e)
		}
	}
	// Zero the tail so deleted nodes can be collected.
	for i := len(out); i < len(edges); i++ {
		edges[i] = edge[T]{}
	}
	return out
}
