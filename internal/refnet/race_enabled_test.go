//go:build race

package refnet

// raceEnabled reports that this test binary runs under the race detector,
// where sync.Pool intentionally drops items at random — allocation-count
// assertions that depend on pool reuse are meaningless there.
const raceEnabled = true
