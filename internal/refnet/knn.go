package refnet

import (
	"container/heap"
	"math"
)

// k-nearest-neighbour search. The paper optimises the reference net for
// range queries and answers its Type III queries by binary-searching a
// radius; a direct best-first k-NN over the same structure is the natural
// extension (cover trees answer NN this way) and is used by the ablation
// benchmarks to position the net against its baselines beyond range
// queries.

// Neighbor is one k-NN result.
type Neighbor[T any] struct {
	Item T
	Dist float64
}

// KNN returns the k items nearest to q, sorted by ascending distance.
// It performs a best-first branch-and-bound traversal: a subtree rooted at
// a node with computed distance d cannot contain anything nearer than
// d − ρ(level), so subtrees are expanded in order of that optimistic bound
// and search stops when the bound of the best unexpanded subtree is no
// smaller than the current k-th nearest distance. Stored parent-child
// distances prune children without distance computations, exactly as in
// range queries.
//
// When the net's distance has a bounded evaluation (SetBounded), candidate
// pricing runs through it with a radius that shrinks as the result heap
// fills: once k results are held, a child at cover radius ρ only matters if
// δ(q,c) < kth + ρ (below kth it enters the heap; below kth+ρ its subtree
// could still hold an entrant), so the evaluation early-abandons at that
// threshold. An abandoned value exceeds the threshold, which proves the
// candidate neither enters the heap nor expands the frontier — results are
// bit-identical to the unbounded traversal, at a fraction of the cost.
func (t *Net[T]) KNN(q T, k int) []Neighbor[T] {
	if t.root == nil || k <= 0 {
		return nil
	}
	if k > t.size {
		k = t.size
	}
	d := t.dist(q, t.root.item)
	visited := map[*Node[T]]bool{t.root: true}

	best := &maxHeap[T]{}
	offer := func(item T, dist float64) {
		if best.Len() < k {
			heap.Push(best, Neighbor[T]{item, dist})
		} else if dist < (*best)[0].Dist {
			(*best)[0] = Neighbor[T]{item, dist}
			heap.Fix(best, 0)
		}
	}
	kth := func() float64 {
		if best.Len() < k {
			return inf()
		}
		return (*best)[0].Dist
	}

	frontier := &minHeap[T]{}
	offer(t.root.item, d)
	if len(t.root.children) > 0 {
		heap.Push(frontier, frontierEntry[T]{t.root, d, d - t.CoverRadius(t.root.level)})
	}
	for frontier.Len() > 0 {
		e := heap.Pop(frontier).(frontierEntry[T])
		if e.bound >= kth() {
			break // no unexpanded subtree can improve the result
		}
		for _, ce := range e.n.children {
			c := ce.n
			if visited[c] {
				continue
			}
			visited[c] = true
			rho := t.CoverRadius(c.level)
			lo := e.d - ce.d
			if lo < 0 {
				lo = -lo
			}
			if lo-rho >= kth() {
				continue // whole subtree provably too far, zero computations
			}
			var dc float64
			if limit := kth() + rho; t.bounded != nil && !math.IsInf(limit, 1) {
				// Shrinking-radius pricing: a value > kth+ρ — exact or
				// abandoned — proves the candidate cannot enter the heap
				// (needs < kth) nor host an entrant in its subtree (needs
				// < kth+ρ). Values ≤ kth+ρ are exact by the
				// BoundedDistFunc contract, so heap contents never hold an
				// approximation.
				dc = t.bounded(q, c.item, limit)
				if dc > limit {
					continue
				}
			} else {
				dc = t.dist(q, c.item)
			}
			offer(c.item, dc)
			if len(c.children) > 0 && dc-rho < kth() {
				heap.Push(frontier, frontierEntry[T]{c, dc, dc - rho})
			}
		}
	}
	// Drain the max-heap into ascending order.
	out := make([]Neighbor[T], best.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(best).(Neighbor[T])
	}
	return out
}

// NearestNeighbor returns the single closest item to q.
func (t *Net[T]) NearestNeighbor(q T) (Neighbor[T], bool) {
	nn := t.KNN(q, 1)
	if len(nn) == 0 {
		return Neighbor[T]{}, false
	}
	return nn[0], true
}

func inf() float64 { return math.Inf(1) }

type frontierEntry[T any] struct {
	n     *Node[T]
	d     float64
	bound float64
}

// minHeap orders unexpanded subtrees by optimistic bound.
type minHeap[T any] []frontierEntry[T]

func (h minHeap[T]) Len() int           { return len(h) }
func (h minHeap[T]) Less(i, j int) bool { return h[i].bound < h[j].bound }
func (h minHeap[T]) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *minHeap[T]) Push(x any)        { *h = append(*h, x.(frontierEntry[T])) }
func (h *minHeap[T]) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// maxHeap keeps the current k best results with the worst on top.
type maxHeap[T any] []Neighbor[T]

func (h maxHeap[T]) Len() int           { return len(h) }
func (h maxHeap[T]) Less(i, j int) bool { return h[i].Dist > h[j].Dist }
func (h maxHeap[T]) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *maxHeap[T]) Push(x any)        { *h = append(*h, x.(Neighbor[T])) }
func (h *maxHeap[T]) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
