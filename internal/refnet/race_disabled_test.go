//go:build !race

package refnet

// raceEnabled reports that this test binary runs under the race detector.
const raceEnabled = false
