// Package metric defines the metric-space abstractions shared by the index
// structures (reference net, cover tree, reference-based index) and the
// naive linear-scan baseline, plus the distance-computation accounting that
// the paper uses as its primary query-cost metric (Figures 8–11 report the
// percentage of distance computations relative to a full scan).
package metric

import "sync/atomic"

// DistFunc measures the dissimilarity of two items. Index structures
// require it to be a metric: non-negative, zero on identical items,
// symmetric, and obeying the triangle inequality (Section 3.3 of the
// paper); correctness of index pruning depends on it.
type DistFunc[T any] func(a, b T) float64

// Index is the operation set the subsequence-retrieval framework needs
// from a metric index: incremental construction and range queries.
type Index[T any] interface {
	// Insert adds an item to the index.
	Insert(item T)
	// Range returns every indexed item within eps of q (inclusive).
	Range(q T, eps float64) []T
	// Len reports the number of indexed items.
	Len() int
}

// Counter wraps a DistFunc and counts invocations. It is safe for
// concurrent use; the count is the paper's hardware-independent cost
// measure for query evaluation.
type Counter[T any] struct {
	fn    DistFunc[T]
	calls atomic.Int64
}

// NewCounter returns a Counter wrapping fn.
func NewCounter[T any](fn DistFunc[T]) *Counter[T] {
	return &Counter[T]{fn: fn}
}

// Distance evaluates the wrapped function, incrementing the call count.
func (c *Counter[T]) Distance(a, b T) float64 {
	c.calls.Add(1)
	return c.fn(a, b)
}

// Calls returns the number of Distance invocations since the last Reset.
func (c *Counter[T]) Calls() int64 { return c.calls.Load() }

// Reset zeroes the call count.
func (c *Counter[T]) Reset() { c.calls.Store(0) }

// LinearScan is the naive baseline index: it stores items in a slice and
// answers range queries by computing the distance to every item. The
// percentage figures in the paper's Figures 8–11 are relative to exactly
// this strategy.
type LinearScan[T any] struct {
	dist  DistFunc[T]
	items []T
}

// NewLinearScan returns an empty linear-scan "index" using dist.
func NewLinearScan[T any](dist DistFunc[T]) *LinearScan[T] {
	return &LinearScan[T]{dist: dist}
}

// Insert appends the item.
func (s *LinearScan[T]) Insert(item T) { s.items = append(s.items, item) }

// Len reports the number of stored items.
func (s *LinearScan[T]) Len() int { return len(s.items) }

// Range returns all items within eps of q, computing len(items) distances.
func (s *LinearScan[T]) Range(q T, eps float64) []T {
	var out []T
	for _, it := range s.items {
		if s.dist(q, it) <= eps {
			out = append(out, it)
		}
	}
	return out
}

// Items exposes the stored items (shared slice; callers must not mutate).
func (s *LinearScan[T]) Items() []T { return s.items }

var _ Index[int] = (*LinearScan[int])(nil)
