// Package metric defines the metric-space abstractions shared by the index
// structures (reference net, cover tree, reference-based index) and the
// naive linear-scan baseline, plus the distance-computation accounting that
// the paper uses as its primary query-cost metric (Figures 8–11 report the
// percentage of distance computations relative to a full scan).
//
// The central types are DistFunc (a metric distance over items, wrapped by
// Counter into a distance that tallies its evaluations) and LinearScan,
// the no-index baseline every backend is measured against; LinearScan also
// accepts a BoundedDistFunc so that early-abandoning measures stop distance
// evaluations at the query radius. Tally is the concurrency-friendly
// counter behind all per-query accounting: increments scatter over padded
// cells so parallel workers do not serialise on one cache line.
package metric

import (
	"math/rand/v2"
	"sync/atomic"
)

// Tally is a cache-friendly concurrent event counter: increments scatter
// across padded cells (picked by the runtime's per-core cheap RNG) so the
// hot query paths of concurrent workers do not ping-pong a single cache
// line, and Load folds the cells. Counts are exact; only their cell
// placement is randomised.
type Tally struct {
	cells [tallyCells]paddedInt64
}

const tallyCells = 8

type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// Add adds n to the tally.
func (t *Tally) Add(n int64) { t.cells[rand.Uint64()%tallyCells].v.Add(n) }

// Load returns the current total.
func (t *Tally) Load() int64 {
	var sum int64
	for i := range t.cells {
		sum += t.cells[i].v.Load()
	}
	return sum
}

// Reset zeroes the tally.
func (t *Tally) Reset() {
	for i := range t.cells {
		t.cells[i].v.Store(0)
	}
}

// DistFunc measures the dissimilarity of two items. Index structures
// require it to be a metric: non-negative, zero on identical items,
// symmetric, and obeying the triangle inequality (Section 3.3 of the
// paper); correctness of index pruning depends on it.
type DistFunc[T any] func(a, b T) float64

// BoundedDistFunc is an early-abandoning distance evaluation: exact
// whenever the true distance is ≤ eps, and otherwise any value strictly
// greater than eps, returned as soon as the bound is provably exceeded
// (mirroring dist.BoundedFunc at the item level). Range filtering only
// compares the result against eps, so the relaxation never changes which
// items a query returns.
type BoundedDistFunc[T any] func(a, b T, eps float64) float64

// BatchEvaluator computes the distances from several probes to one item in
// a single call — the hook the reference net's batched traversal offers so
// callers can share evaluation work across probes (the framework feeds
// probes that share a query offset through one incremental kernel pass;
// see refnet.BatchRangeEval). idxs are indices into the probe slice the
// evaluator was constructed over; EvalBatch stores the distance for probe
// idxs[k] into out[k].
//
// bound is the largest distance the traversal acts on exactly (the query
// radius plus the visited node's cover radius). Values ≤ bound must be
// exact; values > bound may be anything > bound, mirroring BoundedDistFunc,
// which lets bounded evaluators abandon mid-computation.
type BatchEvaluator[T any] interface {
	EvalBatch(item T, idxs []int32, bound float64, out []float64)
	// Exact reports whether EvalBatch always returns exact distances, even
	// above bound. The traversal then keeps over-bound values for triangle
	// bounds instead of discarding them as approximations.
	Exact() bool
}

// Index is the operation set the subsequence-retrieval framework needs
// from a metric index: incremental construction and range queries.
type Index[T any] interface {
	// Insert adds an item to the index.
	Insert(item T)
	// Range returns every indexed item within eps of q (inclusive).
	Range(q T, eps float64) []T
	// Len reports the number of indexed items.
	Len() int
}

// Counter wraps a DistFunc and counts invocations. It is safe for
// concurrent use (counts stripe across a Tally, so concurrent queries do
// not contend); the count is the paper's hardware-independent cost measure
// for query evaluation.
type Counter[T any] struct {
	fn    DistFunc[T]
	calls Tally
}

// NewCounter returns a Counter wrapping fn.
func NewCounter[T any](fn DistFunc[T]) *Counter[T] {
	return &Counter[T]{fn: fn}
}

// Distance evaluates the wrapped function, incrementing the call count.
func (c *Counter[T]) Distance(a, b T) float64 {
	c.calls.Add(1)
	return c.fn(a, b)
}

// Calls returns the number of Distance invocations since the last Reset.
func (c *Counter[T]) Calls() int64 { return c.calls.Load() }

// Reset zeroes the call count.
func (c *Counter[T]) Reset() { c.calls.Reset() }

// Add bumps the count by n directly. The incremental filter kernels use it
// to account for evaluations that bypass the wrapped function (one kernel
// pass subsumes several plain distance calls; the caller decides the
// equivalence).
func (c *Counter[T]) Add(n int64) { c.calls.Add(n) }

// CountBounded wraps a bounded distance so each call increments the same
// counter as Distance — an early-abandoned evaluation still counts as one
// distance computation in the paper's accounting.
func (c *Counter[T]) CountBounded(fn BoundedDistFunc[T]) BoundedDistFunc[T] {
	return func(a, b T, eps float64) float64 {
		c.calls.Add(1)
		return fn(a, b, eps)
	}
}

// LinearScan is the naive baseline index: it stores items in a slice and
// answers range queries by computing the distance to every item. The
// percentage figures in the paper's Figures 8–11 are relative to exactly
// this strategy. SetBounded arms an early-abandoning evaluation that
// threads the query radius into each comparison, cutting the constant
// behind the same number of "distance computations".
type LinearScan[T any] struct {
	dist    DistFunc[T]
	bounded BoundedDistFunc[T]
	items   []T
}

// NewLinearScan returns an empty linear-scan "index" using dist.
func NewLinearScan[T any](dist DistFunc[T]) *LinearScan[T] {
	return &LinearScan[T]{dist: dist}
}

// SetBounded arms the early-abandoning evaluation used by Range and Exists.
// fn must agree with the scan's DistFunc under the BoundedDistFunc
// contract; nil disarms it.
func (s *LinearScan[T]) SetBounded(fn BoundedDistFunc[T]) { s.bounded = fn }

// Insert appends the item.
func (s *LinearScan[T]) Insert(item T) { s.items = append(s.items, item) }

// Len reports the number of stored items.
func (s *LinearScan[T]) Len() int { return len(s.items) }

// Range returns all items within eps of q, computing len(items) distances
// (early-abandoned ones when a bounded evaluation is armed).
func (s *LinearScan[T]) Range(q T, eps float64) []T {
	var out []T
	if s.bounded != nil {
		for _, it := range s.items {
			if s.bounded(q, it, eps) <= eps {
				out = append(out, it)
			}
		}
		return out
	}
	for _, it := range s.items {
		if s.dist(q, it) <= eps {
			out = append(out, it)
		}
	}
	return out
}

// Exists reports whether any item lies within eps of q, stopping at the
// first hit instead of scanning the rest.
func (s *LinearScan[T]) Exists(q T, eps float64) bool {
	for _, it := range s.items {
		if s.bounded != nil {
			if s.bounded(q, it, eps) <= eps {
				return true
			}
		} else if s.dist(q, it) <= eps {
			return true
		}
	}
	return false
}

// Items exposes the stored items (shared slice; callers must not mutate).
func (s *LinearScan[T]) Items() []T { return s.items }

// RemoveFunc deletes every item for which pred returns true, preserving
// the order of the remaining items (the scan's result order is its
// insertion order, and callers depend on that staying stable across
// removals). It returns the number of items removed. Not safe to call
// concurrently with queries.
func (s *LinearScan[T]) RemoveFunc(pred func(T) bool) int {
	kept := s.items[:0]
	for _, it := range s.items {
		if !pred(it) {
			kept = append(kept, it)
		}
	}
	removed := len(s.items) - len(kept)
	// Zero the tail so removed payloads don't pin their backing arrays.
	var zero T
	for i := len(kept); i < len(s.items); i++ {
		s.items[i] = zero
	}
	s.items = kept
	return removed
}

var _ Index[int] = (*LinearScan[int])(nil)
