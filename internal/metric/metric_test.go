package metric

import (
	"math"
	"sync"
	"testing"
)

func absDist(a, b float64) float64 { return math.Abs(a - b) }

func TestLinearScanRange(t *testing.T) {
	s := NewLinearScan(absDist)
	for _, v := range []float64{0, 1, 2, 3, 10, 20} {
		s.Insert(v)
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	got := s.Range(1.5, 1.5)
	want := map[float64]bool{0: true, 1: true, 2: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("Range returned %v, want the set %v", got, want)
	}
	for _, v := range got {
		if !want[v] {
			t.Errorf("unexpected item %v", v)
		}
	}
}

func TestLinearScanRangeInclusiveBoundary(t *testing.T) {
	s := NewLinearScan(absDist)
	s.Insert(5.0)
	if got := s.Range(3.0, 2.0); len(got) != 1 {
		t.Errorf("boundary item not included: %v", got)
	}
	if got := s.Range(3.0, 1.999999); len(got) != 0 {
		t.Errorf("item beyond radius included: %v", got)
	}
}

func TestCounterCounts(t *testing.T) {
	c := NewCounter(absDist)
	if c.Calls() != 0 {
		t.Fatal("fresh counter not zero")
	}
	c.Distance(1, 2)
	c.Distance(3, 4)
	if c.Calls() != 2 {
		t.Errorf("Calls = %d, want 2", c.Calls())
	}
	c.Reset()
	if c.Calls() != 0 {
		t.Errorf("Calls after Reset = %d, want 0", c.Calls())
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter(absDist)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Distance(float64(i), 0)
			}
		}()
	}
	wg.Wait()
	if c.Calls() != workers*per {
		t.Errorf("Calls = %d, want %d", c.Calls(), workers*per)
	}
}

func TestLinearScanComputesExactlyNDistances(t *testing.T) {
	c := NewCounter(absDist)
	s := NewLinearScan(c.Distance)
	for i := 0; i < 50; i++ {
		s.Insert(float64(i))
	}
	c.Reset()
	s.Range(25, 3)
	if c.Calls() != 50 {
		t.Errorf("linear scan made %d distance calls, want 50", c.Calls())
	}
}
