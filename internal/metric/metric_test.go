package metric

import (
	"math"
	"sync"
	"testing"
)

func absDist(a, b float64) float64 { return math.Abs(a - b) }

func TestLinearScanRange(t *testing.T) {
	s := NewLinearScan(absDist)
	for _, v := range []float64{0, 1, 2, 3, 10, 20} {
		s.Insert(v)
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	got := s.Range(1.5, 1.5)
	want := map[float64]bool{0: true, 1: true, 2: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("Range returned %v, want the set %v", got, want)
	}
	for _, v := range got {
		if !want[v] {
			t.Errorf("unexpected item %v", v)
		}
	}
}

func TestLinearScanRangeInclusiveBoundary(t *testing.T) {
	s := NewLinearScan(absDist)
	s.Insert(5.0)
	if got := s.Range(3.0, 2.0); len(got) != 1 {
		t.Errorf("boundary item not included: %v", got)
	}
	if got := s.Range(3.0, 1.999999); len(got) != 0 {
		t.Errorf("item beyond radius included: %v", got)
	}
}

func TestCounterCounts(t *testing.T) {
	c := NewCounter(absDist)
	if c.Calls() != 0 {
		t.Fatal("fresh counter not zero")
	}
	c.Distance(1, 2)
	c.Distance(3, 4)
	if c.Calls() != 2 {
		t.Errorf("Calls = %d, want 2", c.Calls())
	}
	c.Reset()
	if c.Calls() != 0 {
		t.Errorf("Calls after Reset = %d, want 0", c.Calls())
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter(absDist)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Distance(float64(i), 0)
			}
		}()
	}
	wg.Wait()
	if c.Calls() != workers*per {
		t.Errorf("Calls = %d, want %d", c.Calls(), workers*per)
	}
}

func TestLinearScanComputesExactlyNDistances(t *testing.T) {
	c := NewCounter(absDist)
	s := NewLinearScan(c.Distance)
	for i := 0; i < 50; i++ {
		s.Insert(float64(i))
	}
	c.Reset()
	s.Range(25, 3)
	if c.Calls() != 50 {
		t.Errorf("linear scan made %d distance calls, want 50", c.Calls())
	}
}

// A bounded evaluation must not change which items Range returns, must be
// consulted with the query radius, and Exists must stop at the first hit.
func TestLinearScanBoundedAndExists(t *testing.T) {
	plain := NewLinearScan(DistFunc[float64](func(a, b float64) float64 { return math.Abs(a - b) }))
	armed := NewLinearScan(DistFunc[float64](func(a, b float64) float64 { return math.Abs(a - b) }))
	evals := 0
	armed.SetBounded(func(a, b, eps float64) float64 {
		evals++
		if d := math.Abs(a - b); d <= eps {
			return d
		}
		return eps + 1 // early-abandon stand-in
	})
	for i := 0; i < 50; i++ {
		plain.Insert(float64(i))
		armed.Insert(float64(i))
	}
	for _, eps := range []float64{0, 1.5, 7, 100} {
		got, want := armed.Range(25.2, eps), plain.Range(25.2, eps)
		if len(got) != len(want) {
			t.Fatalf("eps=%v: bounded Range %d items, plain %d", eps, len(got), len(want))
		}
		if armed.Exists(25.2, eps) != (len(want) > 0) {
			t.Fatalf("eps=%v: Exists disagrees with Range", eps)
		}
	}
	if evals == 0 {
		t.Fatal("bounded evaluation never consulted")
	}
	evals = 0
	if !armed.Exists(0, 1000) {
		t.Fatal("Exists missed")
	}
	if evals != 1 {
		t.Fatalf("Exists computed %d distances, want 1 (first item is in range)", evals)
	}
}

// CountBounded and Add must feed the same counter as Distance.
func TestCounterBoundedAndAdd(t *testing.T) {
	c := NewCounter(DistFunc[int](func(a, b int) float64 { return float64(a - b) }))
	bounded := c.CountBounded(func(a, b int, eps float64) float64 { return float64(a - b) })
	c.Distance(3, 1)
	bounded(5, 2, 10)
	c.Add(7)
	if got := c.Calls(); got != 9 {
		t.Fatalf("Calls = %d, want 9", got)
	}
	c.Reset()
	if got := c.Calls(); got != 0 {
		t.Fatalf("Calls after Reset = %d", got)
	}
}
