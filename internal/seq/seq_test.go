package seq

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPartitionBasic(t *testing.T) {
	x := Sequence[int]{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	wins := Partition(7, x, 3)
	if len(wins) != 3 {
		t.Fatalf("got %d windows, want 3 (trailing partial discarded)", len(wins))
	}
	for i, w := range wins {
		if w.SeqID != 7 {
			t.Errorf("window %d SeqID = %d, want 7", i, w.SeqID)
		}
		if w.Ord != i {
			t.Errorf("window %d Ord = %d", i, w.Ord)
		}
		if w.Start != i*3 || w.End() != i*3+3 {
			t.Errorf("window %d covers [%d,%d), want [%d,%d)", i, w.Start, w.End(), i*3, i*3+3)
		}
		for j, v := range w.Data {
			if v != i*3+j {
				t.Errorf("window %d element %d = %d, want %d", i, j, v, i*3+j)
			}
		}
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	if wins := Partition(0, Sequence[int]{1, 2}, 3); len(wins) != 0 {
		t.Errorf("sequence shorter than window: got %d windows, want 0", len(wins))
	}
	if wins := Partition(0, Sequence[int]{}, 1); len(wins) != 0 {
		t.Errorf("empty sequence: got %d windows, want 0", len(wins))
	}
	if wins := Partition(0, Sequence[int]{1, 2, 3}, 3); len(wins) != 1 {
		t.Errorf("exact fit: got %d windows, want 1", len(wins))
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive window length")
		}
	}()
	Partition(0, Sequence[int]{1}, 0)
}

func TestPartitionAllAssignsSequenceIDs(t *testing.T) {
	db := []Sequence[int]{{1, 2, 3, 4}, {5, 6}, {7, 8, 9}}
	wins := PartitionAll(db, 2)
	wantIDs := []int{0, 0, 1, 2}
	if len(wins) != len(wantIDs) {
		t.Fatalf("got %d windows, want %d", len(wins), len(wantIDs))
	}
	for i, w := range wins {
		if w.SeqID != wantIDs[i] {
			t.Errorf("window %d SeqID = %d, want %d", i, w.SeqID, wantIDs[i])
		}
	}
}

func TestSegmentsEnumeration(t *testing.T) {
	q := Sequence[int]{10, 20, 30, 40}
	segs := Segments(q, 2, 3)
	// Lengths 2: starts 0,1,2; length 3: starts 0,1 → 5 segments.
	if len(segs) != 5 {
		t.Fatalf("got %d segments, want 5", len(segs))
	}
	seen := map[[2]int]bool{}
	for _, s := range segs {
		seen[[2]int{s.Start, len(s.Data)}] = true
		for j, v := range s.Data {
			if v != q[s.Start+j] {
				t.Errorf("segment %v data mismatch at %d", s, j)
			}
		}
	}
	for _, want := range [][2]int{{0, 2}, {1, 2}, {2, 2}, {0, 3}, {1, 3}} {
		if !seen[want] {
			t.Errorf("missing segment start=%d len=%d", want[0], want[1])
		}
	}
}

func TestSegmentsClamping(t *testing.T) {
	q := Sequence[int]{1, 2, 3}
	if segs := Segments(q, -5, 99); len(segs) != 6 {
		// lengths 1,2,3 → 3+2+1 = 6
		t.Errorf("clamped enumeration: got %d segments, want 6", len(segs))
	}
	if segs := Segments(q, 5, 7); segs != nil {
		t.Errorf("impossible range: got %v, want nil", segs)
	}
}

func TestSegmentsForMatchesPaperCount(t *testing.T) {
	// The paper bounds the segment count by (2λ0+1)·|Q|.
	lambda, lambda0 := 8, 1
	q := make(Sequence[int], 30)
	segs := SegmentsFor(q, lambda, lambda0)
	bound := (2*lambda0 + 1) * len(q)
	if len(segs) > bound {
		t.Errorf("segment count %d exceeds paper bound %d", len(segs), bound)
	}
	// All lengths must lie in [λ/2−λ0, λ/2+λ0].
	for _, s := range segs {
		if l := len(s.Data); l < lambda/2-lambda0 || l > lambda/2+lambda0 {
			t.Errorf("segment length %d outside [%d,%d]", l, lambda/2-lambda0, lambda/2+lambda0)
		}
	}
}

// Property: every window returned by Partition reads back the original
// elements, windows tile without overlap, and every position not in the
// discarded tail is covered exactly once.
func TestPartitionTilingProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	err := quick.Check(func(n uint8, l uint8) bool {
		length := int(n % 64)
		wl := 1 + int(l%8)
		x := make(Sequence[int], length)
		for i := range x {
			x[i] = i * 31
		}
		wins := Partition(3, x, wl)
		covered := make([]int, length)
		for _, w := range wins {
			if len(w.Data) != wl {
				return false
			}
			for j := range w.Data {
				if !reflect.DeepEqual(w.Data[j], x[w.Start+j]) {
					return false
				}
				covered[w.Start+j]++
			}
		}
		full := (length / wl) * wl
		for i := 0; i < full; i++ {
			if covered[i] != 1 {
				return false
			}
		}
		for i := full; i < length; i++ {
			if covered[i] != 0 {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestWindowAndSegmentStrings(t *testing.T) {
	w := Window[int]{SeqID: 1, Ord: 2, Start: 6, Data: Sequence[int]{1, 2, 3}}
	if got := w.String(); got != "win{seq=1 ord=2 [6,9)}" {
		t.Errorf("Window.String() = %q", got)
	}
	s := Segment[int]{Start: 4, Data: Sequence[int]{9, 9}}
	if got := s.String(); got != "seg{[4,6)}" {
		t.Errorf("Segment.String() = %q", got)
	}
}

func TestSubView(t *testing.T) {
	x := Sequence[int]{1, 2, 3, 4}
	sub := x.Sub(1, 3)
	if sub.Len() != 2 || sub[0] != 2 || sub[1] != 3 {
		t.Errorf("Sub(1,3) = %v", sub)
	}
	// Views share backing storage.
	x[1] = 99
	if sub[0] != 99 {
		t.Error("Sub is not a view over the original sequence")
	}
}
