// Package seq defines the sequence model used throughout the framework:
// generic sequences over an arbitrary element alphabet, the fixed-length
// database windows of Section 5 of the paper, and the variable-length query
// segments of Section 7.
//
// In the paper's notation a sequence X = (x1, ..., x|X|) has elements drawn
// from an alphabet Σ. Σ may be a finite character set (strings), the reals
// (time series) or a multi-dimensional space (trajectories). Here Σ is the
// Go type parameter E.
package seq

import "fmt"

// Sequence is an ordered series of elements of type E. The zero value is an
// empty sequence. Subsequences are contiguous runs of elements, in line with
// the paper ("Subsequence SX and SQ should be continuous").
type Sequence[E any] []E

// Sub returns the subsequence with elements [start, end) as a view over the
// same backing array. It panics if the bounds are invalid, mirroring slice
// semantics.
func (s Sequence[E]) Sub(start, end int) Sequence[E] {
	return Sequence[E](s[start:end])
}

// Len returns the number of elements.
func (s Sequence[E]) Len() int { return len(s) }

// Window is a fixed-length window of a database sequence, produced by
// Partition. Windows are the unit stored in the metric index: the paper
// partitions each database sequence into non-overlapping windows of length
// l = λ/2 (Lemma 2 requires l ≤ λ/2 for completeness).
type Window[E any] struct {
	// SeqID identifies the database sequence the window came from.
	SeqID int
	// Ord is the ordinal of the window within its sequence (0-based), so
	// the window covers elements [Ord*len(Data), Ord*len(Data)+len(Data)).
	Ord int
	// Start is the element offset of the window within its sequence.
	Start int
	// Data is a view of the window's elements.
	Data Sequence[E]
}

// End returns the element offset one past the window's last element.
func (w Window[E]) End() int { return w.Start + len(w.Data) }

// String implements fmt.Stringer for diagnostics.
func (w Window[E]) String() string {
	return fmt.Sprintf("win{seq=%d ord=%d [%d,%d)}", w.SeqID, w.Ord, w.Start, w.End())
}

// Partition splits x into consecutive non-overlapping windows of length l,
// labelled with seqID. A trailing run shorter than l is discarded, matching
// the paper's fixed-length window construction. Partition panics if l <= 0.
func Partition[E any](seqID int, x Sequence[E], l int) []Window[E] {
	if l <= 0 {
		panic(fmt.Sprintf("seq: Partition window length must be positive, got %d", l))
	}
	n := len(x) / l
	wins := make([]Window[E], 0, n)
	for i := 0; i < n; i++ {
		wins = append(wins, Window[E]{
			SeqID: seqID,
			Ord:   i,
			Start: i * l,
			Data:  x.Sub(i*l, (i+1)*l),
		})
	}
	return wins
}

// PartitionAll partitions every sequence in db into windows of length l,
// concatenating the results. Sequence IDs are the indices into db.
func PartitionAll[E any](db []Sequence[E], l int) []Window[E] {
	var wins []Window[E]
	for id, x := range db {
		wins = append(wins, Partition(id, x, l)...)
	}
	return wins
}

// Segment is a variable-length query segment extracted by Segments. Step 3
// of the framework extracts from the query Q all segments with lengths
// between λ/2−λ0 and λ/2+λ0.
type Segment[E any] struct {
	// Start is the element offset of the segment within the query.
	Start int
	// Data is a view of the segment's elements.
	Data Sequence[E]
}

// End returns the element offset one past the segment's last element.
func (s Segment[E]) End() int { return s.Start + len(s.Data) }

// String implements fmt.Stringer for diagnostics.
func (s Segment[E]) String() string {
	return fmt.Sprintf("seg{[%d,%d)}", s.Start, s.End())
}

// Segments extracts every segment of q whose length is in [minLen, maxLen],
// at every start offset. This produces at most (maxLen-minLen+1)*|Q|
// segments — the paper's (2λ0+1)|Q| bound with minLen = λ/2−λ0 and
// maxLen = λ/2+λ0. Lengths are clamped to [1, len(q)]; if the clamped range
// is empty, Segments returns nil.
func Segments[E any](q Sequence[E], minLen, maxLen int) []Segment[E] {
	return AppendSegments(nil, q, minLen, maxLen)
}

// AppendSegments is Segments appending into dst, so hot paths can reuse a
// scratch slice across queries instead of allocating per call. It returns
// the extended slice (which may have been reallocated, as with append).
func AppendSegments[E any](dst []Segment[E], q Sequence[E], minLen, maxLen int) []Segment[E] {
	if minLen < 1 {
		minLen = 1
	}
	if maxLen > len(q) {
		maxLen = len(q)
	}
	for length := minLen; length <= maxLen; length++ {
		for start := 0; start+length <= len(q); start++ {
			dst = append(dst, Segment[E]{Start: start, Data: q.Sub(start, start+length)})
		}
	}
	return dst
}

// SegmentsFor returns the query segments mandated by the framework for
// minimal match length lambda and maximal shift lambda0: all segments of
// lengths λ/2−λ0 … λ/2+λ0.
func SegmentsFor[E any](q Sequence[E], lambda, lambda0 int) []Segment[E] {
	l := lambda / 2
	return Segments(q, l-lambda0, l+lambda0)
}

// AppendSegmentsFor is SegmentsFor appending into dst; see AppendSegments.
func AppendSegmentsFor[E any](dst []Segment[E], q Sequence[E], lambda, lambda0 int) []Segment[E] {
	l := lambda / 2
	return AppendSegments(dst, q, l-lambda0, l+lambda0)
}
