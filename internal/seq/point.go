package seq

import "fmt"

// Point2 is a point in the plane, the element type for trajectory
// sequences (the paper's TRAJ dataset: Σ = {(x, y)} ⊆ R²).
type Point2 struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point2) String() string { return fmt.Sprintf("(%.3f,%.3f)", p.X, p.Y) }
