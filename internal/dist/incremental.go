package dist

import "math"

// Incremental kernels.
//
// Step 3 of the framework extracts, at every query offset a, the segments
// q[a:a+L] for L = λ/2−λ0 … λ/2+λ0. Consecutive lengths at the same offset
// differ by exactly one trailing element, so computing their distances to a
// fixed database window independently repeats almost all of the work — a
// full edit DP per length costs O(L·l) cells, while extending an existing DP
// by the one new element costs a single O(l) row. A Kernel captures that
// structure: it binds the window once and is then fed the query elements
// left to right, reporting after every element the distance between the fed
// prefix and the window. One pass of λ/2+λ0 feeds prices all 2λ0+1 segment
// lengths, replacing 2λ0+1 independent evaluations.
//
// Kernels also exist for the lock-step measures (Euclidean, Hamming). There
// λ0 = 0 leaves a single segment length, so prefix sharing saves nothing —
// but the rolling accumulator form is what the bounded kernels in bounded.go
// abandon early, and keeping the two shapes identical lets the filter treat
// every measure uniformly.

// Kernel is a stateful incremental distance evaluator bound to a fixed
// right-hand sequence w. The n-th call to Feed appends the n-th element of
// the left-hand sequence and returns d(x[0:n], w) — the same value the
// measure's Fn would return on those slices (+Inf where Fn is undefined,
// e.g. a lock-step measure on mismatched lengths). Reset rewinds the kernel
// to the empty prefix so it can be reused for a new left-hand sequence; the
// bound w (and any preprocessing of it) is retained across Resets.
//
// A Kernel is single-threaded state: use one kernel per goroutine.
type Kernel[E any] interface {
	Feed(x E) float64
	Reset()
}

// euclideanKernel is the rolling lock-step kernel for Euclidean: it
// accumulates the sum of squared ground distances elementwise and reports
// sqrt at the exact window length, +Inf elsewhere.
type euclideanKernel[E any] struct {
	g   Ground[E]
	w   []E
	n   int
	sum float64
}

func (k *euclideanKernel[E]) Feed(x E) float64 {
	if k.n >= len(k.w) {
		k.n++
		return math.Inf(1)
	}
	d := k.g(x, k.w[k.n])
	k.sum += d * d
	k.n++
	if k.n == len(k.w) {
		return math.Sqrt(k.sum)
	}
	return math.Inf(1)
}

func (k *euclideanKernel[E]) Reset() { k.n, k.sum = 0, 0 }

// hammingKernel is the rolling lock-step kernel for Hamming: a running
// mismatch count, defined at the exact window length only.
type hammingKernel[E comparable] struct {
	w      []E
	n      int
	misses int
}

func (k *hammingKernel[E]) Feed(x E) float64 {
	if k.n >= len(k.w) {
		k.n++
		return math.Inf(1)
	}
	if x != k.w[k.n] {
		k.misses++
	}
	k.n++
	if k.n == len(k.w) {
		return float64(k.misses)
	}
	return math.Inf(1)
}

func (k *hammingKernel[E]) Reset() { k.n, k.misses = 0, 0 }

// editRowKernel is the shared incremental form of the edit-family DPs
// (Levenshtein, weighted edit, protein edit, ERP): it maintains the DP row
// row[j] = d(fed prefix, w[:j]) and advances it by one row per fed element —
// the row-reuse evaluation of the DP that editDP computes from scratch.
//
// The cost model mirrors editDP: sub(x, j) prices substituting x with w[j],
// delX(x) prices dropping a fed element, delW(j) prices dropping w[j].
type editRowKernel[E any] struct {
	w    []E
	sub  func(x E, j int) float64
	delX func(x E) float64
	delW func(j int) float64
	// base is the empty-prefix row (cumulative delW costs), precomputed at
	// construction so Reset is a copy.
	base []float64
	row  []float64
}

func newEditRowKernel[E any](w []E, sub func(x E, j int) float64, delX func(x E) float64, delW func(j int) float64) *editRowKernel[E] {
	k := &editRowKernel[E]{
		w: w, sub: sub, delX: delX, delW: delW,
		base: make([]float64, len(w)+1),
		row:  make([]float64, len(w)+1),
	}
	for j := 1; j <= len(w); j++ {
		k.base[j] = k.base[j-1] + delW(j-1)
	}
	copy(k.row, k.base)
	return k
}

func (k *editRowKernel[E]) Feed(x E) float64 {
	dx := k.delX(x)
	diag := k.row[0]
	k.row[0] += dx
	for j := 1; j < len(k.row); j++ {
		best := diag + k.sub(x, j-1)
		if v := k.row[j] + dx; v < best {
			best = v
		}
		if v := k.row[j-1] + k.delW(j-1); v < best {
			best = v
		}
		diag = k.row[j]
		k.row[j] = best
	}
	return k.row[len(k.row)-1]
}

func (k *editRowKernel[E]) Reset() { copy(k.row, k.base) }

// levenshteinKernel returns the unit-cost incremental kernel over any
// comparable alphabet.
func levenshteinKernel[E comparable](w []E) Kernel[E] {
	return newEditRowKernel(w,
		func(x E, j int) float64 {
			if x == w[j] {
				return 0
			}
			return 1
		},
		func(E) float64 { return 1 },
		func(int) float64 { return 1 })
}

// erpKernel returns the incremental ERP kernel: substitution priced by the
// ground distance, indels by the ground distance to the gap element.
func erpKernel[E any](g Ground[E], gap E) func(w []E) Kernel[E] {
	return func(w []E) Kernel[E] {
		return newEditRowKernel(w,
			func(x E, j int) float64 { return g(x, w[j]) },
			func(x E) float64 { return g(x, gap) },
			func(j int) float64 { return g(w[j], gap) })
	}
}

// proteinKernel returns the incremental protein-edit kernel.
func proteinKernel(w []byte) Kernel[byte] {
	return newEditRowKernel(w,
		func(x byte, j int) float64 { return proteinSubCost(x, w[j]) },
		func(byte) float64 { return proteinIndel },
		func(int) float64 { return proteinIndel })
}
