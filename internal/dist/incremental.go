package dist

import "math"

// Incremental kernels.
//
// Step 3 of the framework extracts, at every query offset a, the segments
// q[a:a+L] for L = λ/2−λ0 … λ/2+λ0. Consecutive lengths at the same offset
// differ by exactly one trailing element, so computing their distances to a
// fixed database window independently repeats almost all of the work — a
// full edit DP per length costs O(L·l) cells, while extending an existing DP
// by the one new element costs a single O(l) row. A Kernel captures that
// structure: it binds the window once and is then fed the query elements
// left to right, reporting after every element the distance between the fed
// prefix and the window. One pass of λ/2+λ0 feeds prices all 2λ0+1 segment
// lengths, replacing 2λ0+1 independent evaluations.
//
// Kernels also exist for the lock-step measures (Euclidean, Hamming). There
// λ0 = 0 leaves a single segment length, so prefix sharing saves nothing —
// but the rolling accumulator form is what the bounded kernels in bounded.go
// abandon early, and keeping the two shapes identical lets the filter treat
// every measure uniformly.
//
// # The Prepared/state split
//
// A kernel has two halves with very different lifetimes. The window binding
// and its preprocessing — Myers peq bit tables (~2KB for a 64-byte window),
// the cumulative gap column of ERP, the empty-prefix base row of the edit
// DPs — are immutable once built and depend only on the window. The
// evaluation state — the current DP row, the vertical delta words, a rolling
// accumulator — is tiny and mutated on every Feed. Prepared is the first
// half: built once per database window and stored alongside the index, it is
// safe for concurrent use and mints per-worker mutable Kernels via NewState.
// That caps steady-state kernel memory at O(windows) — shared preprocessing
// plus one small state per worker — instead of the O(windows × workers)
// that per-worker kernel construction costs.

// Kernel is a stateful incremental distance evaluator bound to a fixed
// right-hand sequence w. The n-th call to Feed appends the n-th element of
// the left-hand sequence and returns d(x[0:n], w) — the same value the
// measure's Fn would return on those slices (+Inf where Fn is undefined,
// e.g. a lock-step measure on mismatched lengths). Reset rewinds the kernel
// to the empty prefix so it can be reused for a new left-hand sequence; the
// bound w (and any preprocessing of it) is retained across Resets.
//
// A Kernel is single-threaded state: use one kernel per goroutine.
type Kernel[E any] interface {
	Feed(x E) float64
	Reset()
}

// Prepared is the shared immutable half of an incremental kernel: the bound
// window plus whatever preprocessing the measure's kernel needs. A Prepared
// is safe for concurrent use; the mutable evaluation state lives in the
// Kernels it mints. Build one Prepared per database window (NewState is
// cheap; Prepare is not) and rebind a single per-worker state across windows
// with BindKernel.
type Prepared[E any] interface {
	// WindowLen reports the length of the bound window.
	WindowLen() int
	// NewState mints a fresh mutable kernel over this window, rewound to
	// the empty prefix.
	NewState() Kernel[E]
}

// Rebindable is optionally implemented by kernel states minted from a
// Prepared: Rebind re-points the state at another window's prepared tables,
// reusing the state's buffers, and rewinds to the empty prefix. It reports
// false when p belongs to a different kernel family, in which case the
// state is unchanged.
type Rebindable[E any] interface {
	Rebind(p Prepared[E]) bool
}

// BindKernel returns a kernel over p's window, rewound to the empty prefix:
// state itself when it can be rebound in place (the steady-state path — no
// allocation), a fresh p.NewState() otherwise (first use, or a state from a
// different kernel family).
func BindKernel[E any](state Kernel[E], p Prepared[E]) Kernel[E] {
	if rb, ok := state.(Rebindable[E]); ok && rb.Rebind(p) {
		return state
	}
	return p.NewState()
}

// euclideanPrepared is the (preprocessing-free) shared half of the rolling
// lock-step Euclidean kernel: the window and the ground distance.
type euclideanPrepared[E any] struct {
	g Ground[E]
	w []E
}

func (p *euclideanPrepared[E]) WindowLen() int { return len(p.w) }

func (p *euclideanPrepared[E]) NewState() Kernel[E] { return &euclideanState[E]{p: p} }

// euclideanState accumulates the sum of squared ground distances
// elementwise and reports sqrt at the exact window length, +Inf elsewhere.
type euclideanState[E any] struct {
	p   *euclideanPrepared[E]
	n   int
	sum float64
}

func (k *euclideanState[E]) Feed(x E) float64 {
	w := k.p.w
	if k.n >= len(w) {
		k.n++
		return math.Inf(1)
	}
	d := k.p.g(x, w[k.n])
	k.sum += d * d
	k.n++
	if k.n == len(w) {
		return math.Sqrt(k.sum)
	}
	return math.Inf(1)
}

func (k *euclideanState[E]) Reset() { k.n, k.sum = 0, 0 }

func (k *euclideanState[E]) Rebind(p Prepared[E]) bool {
	ep, ok := p.(*euclideanPrepared[E])
	if !ok {
		return false
	}
	k.p = ep
	k.Reset()
	return true
}

// hammingPrepared is the shared half of the rolling Hamming kernel.
type hammingPrepared[E comparable] struct {
	w []E
}

func (p *hammingPrepared[E]) WindowLen() int { return len(p.w) }

func (p *hammingPrepared[E]) NewState() Kernel[E] { return &hammingState[E]{p: p} }

// hammingState is a running mismatch count, defined at the exact window
// length only.
type hammingState[E comparable] struct {
	p      *hammingPrepared[E]
	n      int
	misses int
}

func (k *hammingState[E]) Feed(x E) float64 {
	w := k.p.w
	if k.n >= len(w) {
		k.n++
		return math.Inf(1)
	}
	if x != w[k.n] {
		k.misses++
	}
	k.n++
	if k.n == len(w) {
		return float64(k.misses)
	}
	return math.Inf(1)
}

func (k *hammingState[E]) Reset() { k.n, k.misses = 0, 0 }

func (k *hammingState[E]) Rebind(p Prepared[E]) bool {
	hp, ok := p.(*hammingPrepared[E])
	if !ok {
		return false
	}
	k.p = hp
	k.Reset()
	return true
}

// editRowPrepared is the shared half of the edit-family kernels
// (Levenshtein, weighted edit, protein edit, ERP): the window, the cost
// model, and the empty-prefix base row (cumulative delW costs — for ERP,
// the gap column), precomputed once so every state Reset is a copy.
//
// The cost model mirrors editDP: sub(x, j) prices substituting x with w[j],
// delX(x) prices dropping a fed element, delW(j) prices dropping w[j].
type editRowPrepared[E any] struct {
	w    []E
	sub  func(x E, j int) float64
	delX func(x E) float64
	delW func(j int) float64
	base []float64
}

func newEditRowPrepared[E any](w []E, sub func(x E, j int) float64, delX func(x E) float64, delW func(j int) float64) *editRowPrepared[E] {
	p := &editRowPrepared[E]{
		w: w, sub: sub, delX: delX, delW: delW,
		base: make([]float64, len(w)+1),
	}
	for j := 1; j <= len(w); j++ {
		p.base[j] = p.base[j-1] + delW(j-1)
	}
	return p
}

func (p *editRowPrepared[E]) WindowLen() int { return len(p.w) }

func (p *editRowPrepared[E]) NewState() Kernel[E] {
	s := &editRowState[E]{p: p, row: make([]float64, len(p.base))}
	copy(s.row, p.base)
	return s
}

// editRowState maintains the DP row row[j] = d(fed prefix, w[:j]) and
// advances it by one row per fed element — the row-reuse evaluation of the
// DP that editDP computes from scratch.
type editRowState[E any] struct {
	p   *editRowPrepared[E]
	row []float64
}

func (k *editRowState[E]) Feed(x E) float64 {
	p := k.p
	dx := p.delX(x)
	diag := k.row[0]
	k.row[0] += dx
	for j := 1; j < len(k.row); j++ {
		best := diag + p.sub(x, j-1)
		if v := k.row[j] + dx; v < best {
			best = v
		}
		if v := k.row[j-1] + p.delW(j-1); v < best {
			best = v
		}
		diag = k.row[j]
		k.row[j] = best
	}
	return k.row[len(k.row)-1]
}

func (k *editRowState[E]) Reset() { copy(k.row, k.p.base) }

func (k *editRowState[E]) Rebind(p Prepared[E]) bool {
	ep, ok := p.(*editRowPrepared[E])
	if !ok {
		return false
	}
	k.p = ep
	if cap(k.row) < len(ep.base) {
		k.row = make([]float64, len(ep.base))
	} else {
		k.row = k.row[:len(ep.base)]
	}
	copy(k.row, ep.base)
	return true
}

// levenshteinPrepare builds the unit-cost incremental kernel preprocessing
// over any comparable alphabet.
func levenshteinPrepare[E comparable](w []E) Prepared[E] {
	return newEditRowPrepared(w,
		func(x E, j int) float64 {
			if x == w[j] {
				return 0
			}
			return 1
		},
		func(E) float64 { return 1 },
		func(int) float64 { return 1 })
}

// erpPrepare builds the incremental ERP kernel preprocessing: substitution
// priced by the ground distance, indels by the ground distance to the gap
// element (the base row is exactly ERP's cumulative gap column).
func erpPrepare[E any](g Ground[E], gap E) func(w []E) Prepared[E] {
	return func(w []E) Prepared[E] {
		return newEditRowPrepared(w,
			func(x E, j int) float64 { return g(x, w[j]) },
			func(x E) float64 { return g(x, gap) },
			func(j int) float64 { return g(w[j], gap) })
	}
}

// proteinPrepare builds the incremental protein-edit kernel preprocessing.
func proteinPrepare(w []byte) Prepared[byte] {
	return newEditRowPrepared(w,
		func(x byte, j int) float64 { return proteinSubCost(x, w[j]) },
		func(byte) float64 { return proteinIndel },
		func(int) float64 { return proteinIndel })
}
