package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

// almostEqual tolerates float accumulation differences between the direct
// and incremental/bounded evaluation orders.
func almostEqual(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) == math.IsInf(b, 1)
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := math.Abs(a) + math.Abs(b)
	return diff <= 1e-9*(1+scale)
}

// checkKernelAgainstFn drives the measure's incremental kernel over random
// byte prefixes and windows, asserting that every Feed result equals
// Fn(prefix, w), including across Resets (which must preserve the bound
// window and its preprocessing).
func checkKernelAgainstFn(t *testing.T, m Measure[byte], alphabet string, maxW, maxQ int) {
	t.Helper()
	if m.Incremental == nil {
		t.Fatalf("%s: no incremental kernel", m.Name)
	}
	rng := rand.New(rand.NewPCG(7, uint64(maxW)))
	for trial := 0; trial < 60; trial++ {
		w := randBytes(rng, rng.IntN(maxW+1), alphabet)
		k := m.Incremental(w)
		for pass := 0; pass < 3; pass++ {
			q := randBytes(rng, 1+rng.IntN(maxQ), alphabet)
			for n := 1; n <= len(q); n++ {
				got := k.Feed(q[n-1])
				want := m.Fn(q[:n], w)
				if !almostEqual(got, want) {
					t.Fatalf("%s trial %d pass %d: kernel(%q[:%d], %q) = %v, Fn = %v",
						m.Name, trial, pass, q, n, w, got, want)
				}
			}
			k.Reset()
		}
	}
}

func TestIncrementalKernelsMatchFn(t *testing.T) {
	aa := "ACDEFGHIKLMNPQRSTVWY"
	byteGround := func(a, b byte) float64 { return math.Abs(float64(a) - float64(b)) }
	cases := []struct {
		m          Measure[byte]
		maxW, maxQ int
	}{
		{LevenshteinMeasure[byte](), 24, 30},
		{LevenshteinFastMeasure(), 24, 30},
		{LevenshteinFastMeasure(), 90, 110},  // block-kernel path
		{LevenshteinFastMeasure(), 150, 170}, // deep multi-word kernel
		{ProteinEditMeasure(), 24, 30},
		{WeightedEditMeasure(), 24, 30},
		{ERPMeasure(byteGround, 'G'), 18, 24},
		{EuclideanMeasure(byteGround), 20, 26},
		{HammingMeasure[byte](), 20, 26},
	}
	for _, c := range cases {
		checkKernelAgainstFn(t, c.m, aa, c.maxW, c.maxQ)
	}
}

// The bounded evaluation must return the exact distance at or under eps and
// anything strictly greater than eps otherwise, for every measure that
// claims the capability.
func TestBoundedMatchesFn(t *testing.T) {
	aa := "ACDEFGHIKLMNPQRSTVWY"
	byteGround := func(a, b byte) float64 { return math.Abs(float64(a) - float64(b)) }
	measures := []Measure[byte]{
		LevenshteinMeasure[byte](),
		LevenshteinFastMeasure(),
		ProteinEditMeasure(),
		WeightedEditMeasure(),
		ERPMeasure(byteGround, 'G'),
		EuclideanMeasure(byteGround),
		HammingMeasure[byte](),
		DiscreteFrechetMeasure(byteGround),
		DTWMeasure(byteGround),
	}
	rng := rand.New(rand.NewPCG(11, 13))
	for _, m := range measures {
		if m.Bounded == nil {
			t.Fatalf("%s: no bounded evaluation", m.Name)
		}
		for trial := 0; trial < 400; trial++ {
			na := rng.IntN(40)
			nb := na
			if !m.Props.LockStep {
				nb = rng.IntN(40)
			}
			a := randBytes(rng, na, aa)
			b := randBytes(rng, nb, aa)
			want := m.Fn(a, b)
			var eps float64
			switch rng.IntN(3) {
			case 0:
				eps = want * (0.5 + rng.Float64()) // straddles the true value
			case 1:
				eps = rng.Float64() * 10
			default:
				eps = want
			}
			if math.IsInf(want, 1) {
				eps = rng.Float64() * 100
			}
			got := m.Bounded(a, b, eps)
			if want <= eps {
				if !almostEqual(got, want) {
					t.Fatalf("%s trial %d: Bounded(%q,%q,eps=%v) = %v, want exact %v",
						m.Name, trial, a, b, eps, got, want)
				}
			} else if got <= eps {
				t.Fatalf("%s trial %d: Bounded(%q,%q,eps=%v) = %v ≤ eps but true distance %v > eps",
					m.Name, trial, a, b, eps, got, want)
			}
		}
	}
}

// Bounded with an infinite radius must degenerate to the exact distance —
// the configuration the linear-scan filter uses when callers pass huge
// radii.
func TestBoundedUnboundedRadiusIsExact(t *testing.T) {
	aa := "ACDEFGHIKLMNPQRSTVWY"
	rng := rand.New(rand.NewPCG(17, 19))
	m := LevenshteinMeasure[byte]()
	for trial := 0; trial < 100; trial++ {
		a := randBytes(rng, rng.IntN(50), aa)
		b := randBytes(rng, rng.IntN(50), aa)
		if got, want := m.Bounded(a, b, math.Inf(1)), m.Fn(a, b); got != want {
			t.Fatalf("trial %d: Bounded(inf) = %v, Fn = %v", trial, got, want)
		}
	}
}
