package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

// almostEqual tolerates float accumulation differences between the direct
// and incremental/bounded evaluation orders.
func almostEqual(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) == math.IsInf(b, 1)
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := math.Abs(a) + math.Abs(b)
	return diff <= 1e-9*(1+scale)
}

// checkKernelAgainstFn drives the measure's incremental kernel over random
// byte prefixes and windows, asserting that every Feed result equals
// Fn(prefix, w), including across Resets (which must preserve the bound
// window and its preprocessing). Odd trials exercise the rebind path (one
// state carried from window to window via BindKernel), even trials mint a
// fresh state per window.
func checkKernelAgainstFn(t *testing.T, m Measure[byte], alphabet string, maxW, maxQ int) {
	t.Helper()
	if m.Prepare == nil {
		t.Fatalf("%s: no incremental kernel", m.Name)
	}
	rng := rand.New(rand.NewPCG(7, uint64(maxW)))
	var rebound Kernel[byte]
	for trial := 0; trial < 60; trial++ {
		w := randBytes(rng, rng.IntN(maxW+1), alphabet)
		var k Kernel[byte]
		if trial%2 == 0 {
			k = m.NewKernel(w)
		} else {
			rebound = BindKernel(rebound, m.Prepare(w))
			k = rebound
		}
		for pass := 0; pass < 3; pass++ {
			q := randBytes(rng, 1+rng.IntN(maxQ), alphabet)
			for n := 1; n <= len(q); n++ {
				got := k.Feed(q[n-1])
				want := m.Fn(q[:n], w)
				if !almostEqual(got, want) {
					t.Fatalf("%s trial %d pass %d: kernel(%q[:%d], %q) = %v, Fn = %v",
						m.Name, trial, pass, q, n, w, got, want)
				}
			}
			k.Reset()
		}
	}
}

func TestIncrementalKernelsMatchFn(t *testing.T) {
	aa := "ACDEFGHIKLMNPQRSTVWY"
	byteGround := func(a, b byte) float64 { return math.Abs(float64(a) - float64(b)) }
	cases := []struct {
		m          Measure[byte]
		maxW, maxQ int
	}{
		{LevenshteinMeasure[byte](), 24, 30},
		{LevenshteinFastMeasure(), 24, 30},
		{LevenshteinFastMeasure(), 90, 110},  // block-kernel path
		{LevenshteinFastMeasure(), 150, 170}, // deep multi-word kernel
		{ProteinEditMeasure(), 24, 30},
		{WeightedEditMeasure(), 24, 30},
		{ERPMeasure(byteGround, 'G'), 18, 24},
		{EuclideanMeasure(byteGround), 20, 26},
		{HammingMeasure[byte](), 20, 26},
	}
	for _, c := range cases {
		checkKernelAgainstFn(t, c.m, aa, c.maxW, c.maxQ)
	}
}

// The bounded evaluation must return the exact distance at or under eps and
// anything strictly greater than eps otherwise, for every measure that
// claims the capability.
func TestBoundedMatchesFn(t *testing.T) {
	aa := "ACDEFGHIKLMNPQRSTVWY"
	byteGround := func(a, b byte) float64 { return math.Abs(float64(a) - float64(b)) }
	measures := []Measure[byte]{
		LevenshteinMeasure[byte](),
		LevenshteinFastMeasure(),
		ProteinEditMeasure(),
		WeightedEditMeasure(),
		ERPMeasure(byteGround, 'G'),
		EuclideanMeasure(byteGround),
		HammingMeasure[byte](),
		DiscreteFrechetMeasure(byteGround),
		DTWMeasure(byteGround),
	}
	rng := rand.New(rand.NewPCG(11, 13))
	for _, m := range measures {
		if m.Bounded == nil {
			t.Fatalf("%s: no bounded evaluation", m.Name)
		}
		for trial := 0; trial < 400; trial++ {
			na := rng.IntN(40)
			nb := na
			if !m.Props.LockStep {
				nb = rng.IntN(40)
			}
			a := randBytes(rng, na, aa)
			b := randBytes(rng, nb, aa)
			want := m.Fn(a, b)
			var eps float64
			switch rng.IntN(3) {
			case 0:
				eps = want * (0.5 + rng.Float64()) // straddles the true value
			case 1:
				eps = rng.Float64() * 10
			default:
				eps = want
			}
			if math.IsInf(want, 1) {
				eps = rng.Float64() * 100
			}
			got := m.Bounded(a, b, eps)
			if want <= eps {
				if !almostEqual(got, want) {
					t.Fatalf("%s trial %d: Bounded(%q,%q,eps=%v) = %v, want exact %v",
						m.Name, trial, a, b, eps, got, want)
				}
			} else if got <= eps {
				t.Fatalf("%s trial %d: Bounded(%q,%q,eps=%v) = %v ≤ eps but true distance %v > eps",
					m.Name, trial, a, b, eps, got, want)
			}
		}
	}
}

// The banded block path: past 64 bytes levenshteinFastBounded switches to
// the banded multi-word recurrence, which must satisfy the BoundedFunc
// contract against the byte DP across word boundaries and eps regimes
// (straddling the true value, tiny, exact-on-the-boundary, and huge —
// the last degenerating to the unbanded block path).
func TestLevenshteinFastBoundedLongPatterns(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	alphabets := []string{"AB", "ACDEFGHIKLMNPQRSTVWY"}
	for trial := 0; trial < 600; trial++ {
		alpha := alphabets[trial%len(alphabets)]
		var na, nb int
		switch trial % 4 {
		case 0: // first word boundary
			na, nb = 62+rng.IntN(8), 62+rng.IntN(8)
		case 1: // second word boundary
			na, nb = 124+rng.IntN(10), 124+rng.IntN(10)
		case 2: // deep multi-word, similar lengths
			na = 150 + rng.IntN(80)
			nb = na + rng.IntN(21) - 10
		default: // very different lengths (length-difference cutoff)
			na, nb = 70+rng.IntN(60), 70+rng.IntN(160)
		}
		a := randBytes(rng, na, alpha)
		b := randBytes(rng, max(nb, 0), alpha)
		want := LevenshteinBytes(a, b)
		var eps float64
		switch rng.IntN(4) {
		case 0:
			eps = want + float64(rng.IntN(7)) - 3
		case 1:
			eps = float64(rng.IntN(10))
		case 2:
			eps = want
		default:
			eps = 1e9
		}
		got := levenshteinFastBounded(a, b, eps)
		if want <= eps {
			if got != want {
				t.Fatalf("trial %d (len %d vs %d, eps=%v): bounded = %v, want exact %v",
					trial, len(a), len(b), eps, got, want)
			}
		} else if got <= eps {
			t.Fatalf("trial %d (len %d vs %d, eps=%v): bounded = %v ≤ eps but true distance %v > eps",
				trial, len(a), len(b), eps, got, want)
		}
	}
}

// A Prepared's tables must be shared by every state it mints: the states
// carry only the cheap mutable half. This is the O(windows) memory claim —
// per-worker state does not duplicate the immutable window preprocessing.
func TestPreparedSharesTablesAcrossStates(t *testing.T) {
	aa := "ACDEFGHIKLMNPQRSTVWY"
	rng := rand.New(rand.NewPCG(31, 37))
	w := randBytes(rng, 150, aa)

	// Block Myers: the 256·⌈m/64⌉-word peq table lives on the Prepared.
	bp, ok := myersPrepare(w).(*myersBlockPrepared)
	if !ok {
		t.Fatalf("myersPrepare(150B) = %T, want *myersBlockPrepared", myersPrepare(w))
	}
	s1 := bp.NewState().(*myersBlockState)
	s2 := bp.NewState().(*myersBlockState)
	if s1.p != s2.p || &s1.p.peq[0] != &s2.p.peq[0] {
		t.Fatal("block states do not share the prepared peq table")
	}
	if &s1.pv[0] == &s2.pv[0] {
		t.Fatal("block states share mutable delta words")
	}
	if stateWords, tableWords := 2*len(s1.pv), len(bp.peq); stateWords*8 >= tableWords {
		t.Fatalf("state (%d words) not small next to the shared table (%d words)", stateWords, tableWords)
	}

	// Edit-row family: the base row lives on the Prepared.
	ep := levenshteinPrepare[byte](w).(*editRowPrepared[byte])
	e1 := ep.NewState().(*editRowState[byte])
	e2 := ep.NewState().(*editRowState[byte])
	if e1.p != e2.p || &e1.p.base[0] != &e2.p.base[0] {
		t.Fatal("edit-row states do not share the prepared base row")
	}
	if &e1.row[0] == &e2.row[0] {
		t.Fatal("edit-row states share the mutable row")
	}

	// Minting a state must not rebuild the preprocessing: a block state is
	// the struct plus its two delta slices.
	allocs := testing.AllocsPerRun(100, func() { kernelSink = bp.NewState() })
	if allocs > 3 {
		t.Fatalf("block NewState allocates %v objects per run, want ≤ 3", allocs)
	}
	// Rebinding an existing state allocates nothing at all.
	st := bp.NewState()
	bp2 := myersPrepare(randBytes(rng, 140, aa))
	allocs = testing.AllocsPerRun(100, func() {
		st = BindKernel(st, bp)
		st = BindKernel(st, bp2)
	})
	if allocs != 0 {
		t.Fatalf("BindKernel rebind allocates %v objects per run, want 0", allocs)
	}

	// Cross-family rebinds must refuse and fall back to a fresh state.
	if (&myersState64{p: &myersPrepared64{m: 1, last: 1}}).Rebind(bp) {
		t.Fatal("single-word state rebound to a block Prepared")
	}
}

var kernelSink Kernel[byte]

// Bounded with an infinite radius must degenerate to the exact distance —
// the configuration the linear-scan filter uses when callers pass huge
// radii.
func TestBoundedUnboundedRadiusIsExact(t *testing.T) {
	aa := "ACDEFGHIKLMNPQRSTVWY"
	rng := rand.New(rand.NewPCG(17, 19))
	m := LevenshteinMeasure[byte]()
	for trial := 0; trial < 100; trial++ {
		a := randBytes(rng, rng.IntN(50), aa)
		b := randBytes(rng, rng.IntN(50), aa)
		if got, want := m.Bounded(a, b, math.Inf(1)), m.Fn(a, b); got != want {
			t.Fatalf("trial %d: Bounded(inf) = %v, Fn = %v", trial, got, want)
		}
	}
}
