package dist

import (
	"math/rand/v2"
	"testing"
)

// The block-based (multi-word) Myers path must agree exactly with the byte
// DP on 1000 random pairs whose lengths straddle the 64- and 128-byte word
// boundaries — the carry hand-offs between words are exercised only there.
func TestMyersBlockMatchesByteDPOn1000Pairs(t *testing.T) {
	rng := rand.New(rand.NewPCG(128, 128))
	randLen := func() int {
		switch rng.IntN(5) {
		case 0: // first word boundary
			return 62 + rng.IntN(6) // 62..67
		case 1: // second word boundary
			return 126 + rng.IntN(6) // 126..131
		case 2: // deep multi-word
			return 150 + rng.IntN(120)
		default:
			return 65 + rng.IntN(80)
		}
	}
	alphabets := []string{"AB", "ACDEFGHIKLMNPQRSTVWY", "abcdefghijklmnopqrstuvwxyz0123456789"}
	for trial := 0; trial < 1000; trial++ {
		alpha := alphabets[trial%len(alphabets)]
		a := randBytes(rng, randLen(), alpha)
		b := randBytes(rng, randLen(), alpha)
		want := LevenshteinBytes(a, b)
		if got := LevenshteinFast(a, b); got != want {
			t.Fatalf("trial %d (len %d vs %d): LevenshteinFast = %v, byte DP = %v",
				trial, len(a), len(b), got, want)
		}
	}
}

// myersBlock must agree with the single-word path where both apply, and
// handle the exact boundary widths (64, 65, 127, 128, 129) with pinned
// cases: identical strings, one edit, disjoint alphabets.
func TestMyersBlockWordBoundaries(t *testing.T) {
	for _, m := range []int{64, 65, 127, 128, 129, 200} {
		a := make([]byte, m)
		for i := range a {
			a[i] = 'A' + byte(i%7)
		}
		if d := myersBlock(a, a); d != 0 {
			t.Errorf("m=%d: identical = %d", m, d)
		}
		b := append([]byte(nil), a...)
		b[m-1] = '!'
		if d := myersBlock(a, b); d != 1 {
			t.Errorf("m=%d: last-byte substitution = %d", m, d)
		}
		b[0] = '?'
		if d := myersBlock(a, b); d != 2 {
			t.Errorf("m=%d: first+last substitution = %d", m, d)
		}
		z := make([]byte, m)
		for i := range z {
			z[i] = 'z'
		}
		if d := myersBlock(a, z); d != m {
			t.Errorf("m=%d: disjoint = %d, want %d", m, d, m)
		}
		if d := myersBlock(a, a[:m/2]); d != m-m/2 {
			t.Errorf("m=%d: prefix text = %d, want %d", m, d, m-m/2)
		}
	}
	// 65..130 pattern against 64-word text: both orders through the public
	// entry point, which picks the shorter side as the pattern.
	rng := rand.New(rand.NewPCG(129, 129))
	for m := 65; m <= 130; m++ {
		a := randBytes(rng, m, "ACGT")
		b := randBytes(rng, 64, "ACGT")
		want := LevenshteinBytes(a, b)
		if got := LevenshteinFast(a, b); got != want {
			t.Fatalf("m=%d: fast=%v dp=%v", m, got, want)
		}
		if got := LevenshteinFast(b, a); got != want {
			t.Fatalf("m=%d swapped: fast=%v dp=%v", m, got, want)
		}
	}
}

// The pooled scratch must come back clean: interleave patterns with
// overlapping alphabets so a stale peq entry from one call would corrupt
// the next.
func TestMyersBlockScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewPCG(130, 130))
	for trial := 0; trial < 200; trial++ {
		a := randBytes(rng, 65+rng.IntN(130), "ABCab")
		b := randBytes(rng, rng.IntN(200), "ABCab")
		if got, want := float64(myersBlock(a, b)), LevenshteinBytes(a, b); got != want {
			t.Fatalf("trial %d: block=%v dp=%v", trial, got, want)
		}
	}
}
