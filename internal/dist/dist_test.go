package dist

import (
	"math"
	"testing"

	"repro/internal/seq"
)

func TestGroundDistances(t *testing.T) {
	if d := AbsDiff(3, 7.5); d != 4.5 {
		t.Errorf("AbsDiff(3,7.5) = %v", d)
	}
	if d := AbsDiff(7.5, 3); d != 4.5 {
		t.Errorf("AbsDiff not symmetric: %v", d)
	}
	if d := Point2Dist(seq.Point2{X: 0, Y: 0}, seq.Point2{X: 3, Y: 4}); d != 5 {
		t.Errorf("Point2Dist = %v, want 5", d)
	}
	if d := Point2Dist(seq.Point2{X: 1, Y: 1}, seq.Point2{X: 1, Y: 1}); d != 0 {
		t.Errorf("Point2Dist identity = %v", d)
	}
}

// Every constructor must stamp the documented capability bits; the framework
// trusts Props to reject unsound configurations, so these are contract, not
// implementation detail.
func TestMeasureProperties(t *testing.T) {
	cases := []struct {
		name  string
		props Properties
		want  Properties
	}{
		{"euclidean", EuclideanMeasure(AbsDiff).Props, Properties{Consistent: true, Metric: true, LockStep: true}},
		{"hamming", HammingMeasure[byte]().Props, Properties{Consistent: true, Metric: true, LockStep: true}},
		{"dtw", DTWMeasure(AbsDiff).Props, Properties{Consistent: true, Metric: false, LockStep: false}},
		{"erp", ERPMeasure(AbsDiff, 0).Props, Properties{Consistent: true, Metric: true, LockStep: false}},
		{"dfd", DiscreteFrechetMeasure(AbsDiff).Props, Properties{Consistent: true, Metric: true, LockStep: false}},
		{"levenshtein", LevenshteinMeasure[byte]().Props, Properties{Consistent: true, Metric: true, LockStep: false}},
		{"levenshtein-fast", LevenshteinFastMeasure().Props, Properties{Consistent: true, Metric: true, LockStep: false}},
		{"protein-edit", ProteinEditMeasure().Props, Properties{Consistent: true, Metric: true, LockStep: false}},
	}
	for _, c := range cases {
		if c.props != c.want {
			t.Errorf("%s: Props = %+v, want %+v", c.name, c.props, c.want)
		}
	}
}

func TestMeasureNames(t *testing.T) {
	for _, m := range []Measure[byte]{
		HammingMeasure[byte](), LevenshteinMeasure[byte](), LevenshteinFastMeasure(), ProteinEditMeasure(),
	} {
		if m.Name == "" {
			t.Error("measure with empty name")
		}
		if m.Fn == nil {
			t.Errorf("%s: nil Fn", m.Name)
		}
	}
}

func TestLockStepDistances(t *testing.T) {
	eu := Euclidean(AbsDiff)
	if d := eu([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Errorf("Euclidean = %v, want 5", d)
	}
	if d := eu([]float64{1, 2}, []float64{1, 2, 3}); !math.IsInf(d, 1) {
		t.Errorf("Euclidean on mismatched lengths = %v, want +Inf", d)
	}
	if d := eu(nil, nil); d != 0 {
		t.Errorf("Euclidean on empty = %v", d)
	}

	if d := Hamming([]byte("karolin"), []byte("kathrin")); d != 3 {
		t.Errorf("Hamming = %v, want 3", d)
	}
	if d := Hamming([]byte("ab"), []byte("abc")); !math.IsInf(d, 1) {
		t.Errorf("Hamming on mismatched lengths = %v, want +Inf", d)
	}
}
