package dist

// Levenshtein returns the unit-cost edit distance over any comparable
// alphabet: the minimum number of insertions, deletions and substitutions
// turning one sequence into the other. It is the textbook metric on strings
// and is consistent (an optimal edit script restricted to a subsequence's
// positions is a valid cheaper script).
//
// For byte strings prefer LevenshteinFast, which computes the same function
// with Myers' bit-parallel algorithm.
func Levenshtein[E comparable]() Func[E] {
	return func(a, b []E) float64 {
		return editDP(len(a), len(b), func(i, j int) float64 {
			if a[i] == b[j] {
				return 0
			}
			return 1
		}, unitCost[E](a), unitCost[E](b))
	}
}

// unitCost prices every indel of s at 1.
func unitCost[E any](s []E) func(int) float64 {
	return func(int) float64 { return 1 }
}

// editDP is the shared two-row edit-distance DP: sub(i,j) prices
// substituting a[i] with b[j], delA(i)/delB(j) price removing the respective
// element. It underlies Levenshtein, WeightedEdit and ProteinEdit.
func editDP(n, m int, sub func(i, j int) float64, delA, delB func(int) float64) float64 {
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + delB(j-1)
	}
	for i := 1; i <= n; i++ {
		cur[0] = prev[0] + delA(i-1)
		for j := 1; j <= m; j++ {
			best := prev[j-1] + sub(i-1, j-1)
			if v := prev[j] + delA(i-1); v < best {
				best = v
			}
			if v := cur[j-1] + delB(j-1); v < best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// LevenshteinMeasure is Levenshtein bundled with its properties: a
// consistent metric, accepted by every index backend, with the row-reuse
// incremental kernel and the Ukkonen-banded bounded evaluation.
func LevenshteinMeasure[E comparable]() Measure[E] {
	return Measure[E]{
		Name:    "levenshtein",
		Fn:      Levenshtein[E](),
		Props:   Properties{Consistent: true, Metric: true, LockStep: false},
		Prepare: levenshteinPrepare[E],
		Bounded: levenshteinBounded[E](),
	}
}

// LevenshteinBytes is the byte-specialised edit-distance DP: identical
// semantics to Levenshtein[byte](), with the comparison and indexing
// monomorphised. It is the fallback LevenshteinFast uses beyond the 64-char
// bit-parallel limit, and the middle rung of the ablation ladder in the
// benchmarks (generic DP → byte DP → Myers).
func LevenshteinBytes(a, b []byte) float64 {
	n, m := len(a), len(b)
	if n == 0 {
		return float64(m)
	}
	if m == 0 {
		return float64(n)
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		ai := a[i-1]
		for j := 1; j <= m; j++ {
			c := prev[j-1]
			if ai != b[j-1] {
				c++
			}
			if v := prev[j] + 1; v < c {
				c = v
			}
			if v := cur[j-1] + 1; v < c {
				c = v
			}
			cur[j] = c
		}
		prev, cur = cur, prev
	}
	return float64(prev[m])
}

// WeightedEdit is a generalised edit distance with caller-supplied
// substitution and indel costs. The result is a metric whenever sub is a
// metric on the alphabet and indel is a constant c with sub(a,b) ≤ 2c for
// all a, b; it is consistent whenever the costs are non-negative (the
// restriction argument needs nothing more). The caller is responsible for
// those properties — WeightedEdit returns a bare Func, not a Measure. For a
// vetted instance see WeightedEditMeasure.
func WeightedEdit[E any](sub func(a, b E) float64, indel func(E) float64) Func[E] {
	return func(a, b []E) float64 {
		return editDP(len(a), len(b),
			func(i, j int) float64 { return sub(a[i], b[j]) },
			func(i int) float64 { return indel(a[i]) },
			func(j int) float64 { return indel(b[j]) })
	}
}

const (
	// weightedEditSub / weightedEditIndel are the costs of the vetted
	// WeightedEditMeasure instance. sub ≤ 2·indel keeps the distance a
	// metric (Sellers 1974); sub > indel makes alignments prefer indels
	// over substitutions, the opposite bias to unit costs.
	weightedEditSub   = 1.5
	weightedEditIndel = 1
)

// weightedSub prices one byte substitution for WeightedEditMeasure.
func weightedSub(a, b byte) float64 {
	if a == b {
		return 0
	}
	return weightedEditSub
}

// WeightedEditMeasure is a vetted WeightedEdit instance over byte strings:
// mismatches cost 1.5, indels cost 1. The constant indel cost keeps the
// Ukkonen band applicable, so the measure carries both the row-reuse
// incremental kernel and the banded bounded evaluation; it is a consistent
// metric, accepted by every index backend.
func WeightedEditMeasure() Measure[byte] {
	return Measure[byte]{
		Name:  "weighted-edit",
		Fn:    WeightedEdit[byte](weightedSub, func(byte) float64 { return weightedEditIndel }),
		Props: Properties{Consistent: true, Metric: true, LockStep: false},
		Prepare: func(w []byte) Prepared[byte] {
			return newEditRowPrepared(w,
				func(x byte, j int) float64 { return weightedSub(x, w[j]) },
				func(byte) float64 { return weightedEditIndel },
				func(int) float64 { return weightedEditIndel })
		},
		Bounded: func(a, b []byte, eps float64) float64 {
			return boundedEditBand(len(a), len(b),
				func(i, j int) float64 { return weightedSub(a[i], b[j]) },
				func(int) float64 { return weightedEditIndel },
				func(int) float64 { return weightedEditIndel },
				weightedEditIndel, eps)
		},
	}
}

func init() {
	const levDesc = "unit-cost edit distance (insert/delete/substitute at 1)"
	RegisterBuiltin(LevenshteinMeasure[byte](), levDesc)
	RegisterBuiltin(LevenshteinMeasure[float64](), levDesc)
	RegisterBuiltin(WeightedEditMeasure(), "weighted edit distance (mismatch 1.5, indel 1)")
}
