package dist

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/seq"
)

// This file vets every constructor's Props claims with property-based tests:
// metric axioms (non-negativity, identity, symmetry, triangle inequality) on
// random inputs for every measure whose Props.Metric is true, and
// Definition-1 consistency via FindInconsistency for every measure whose
// Props.Consistent is true. A measure constructor may not ship a capability
// its function does not have — these tests are the enforcement.

// gen produces a random sequence of length n over the measure's alphabet.
type suite[E any] struct {
	m   Measure[E]
	gen func(rng *rand.Rand, n int) []E
}

func byteGen(alphabet string) func(rng *rand.Rand, n int) []byte {
	return func(rng *rand.Rand, n int) []byte { return randBytes(rng, n, alphabet) }
}

func floatGen(rng *rand.Rand, n int) []float64 { return randWalk(rng, n) }

func pointGen(rng *rand.Rand, n int) []seq.Point2 {
	s := make([]seq.Point2, n)
	for i := range s {
		s[i] = seq.Point2{X: rng.Float64() * 10, Y: rng.Float64() * 10}
	}
	return s
}

func byteSuites() []suite[byte] {
	return []suite[byte]{
		{HammingMeasure[byte](), byteGen("AB")},
		{LevenshteinMeasure[byte](), byteGen("ABC")},
		{LevenshteinFastMeasure(), byteGen("ABC")},
		{ProteinEditMeasure(), byteGen("ACDEFGHIKLMNPQRSTVWY")},
		{WeightedEditMeasure(), byteGen("ABC")},
	}
}

func floatSuites() []suite[float64] {
	return []suite[float64]{
		{EuclideanMeasure(AbsDiff), floatGen},
		{DTWMeasure(AbsDiff), floatGen},
		{ERPMeasure(AbsDiff, 0), floatGen},
		{DiscreteFrechetMeasure(AbsDiff), floatGen},
		{HammingMeasure[float64](), floatGen},
		{LevenshteinMeasure[float64](), floatGen},
	}
}

func pointSuites() []suite[seq.Point2] {
	return []suite[seq.Point2]{
		{ERPMeasure(Point2Dist, seq.Point2{}), pointGen},
		{DiscreteFrechetMeasure(Point2Dist), pointGen},
		{EuclideanMeasure(Point2Dist), pointGen},
		{DTWMeasure(Point2Dist), pointGen},
	}
}

// checkMetricAxioms draws random triples and verifies the axioms. Lock-step
// measures are exercised on equal lengths (their domain); warping measures
// on mixed lengths including the empty sequence.
func checkMetricAxioms[E any](t *testing.T, s suite[E], seed uint64) {
	t.Helper()
	if !s.m.Props.Metric {
		t.Fatalf("%s: checkMetricAxioms on a non-metric measure", s.m.Name)
	}
	rng := rand.New(rand.NewPCG(seed, 11))
	const tol = 1e-9
	for trial := 0; trial < 150; trial++ {
		var na, nb, nc int
		if s.m.Props.LockStep {
			na = 1 + rng.IntN(8)
			nb, nc = na, na
		} else {
			na, nb, nc = rng.IntN(9), rng.IntN(9), rng.IntN(9)
		}
		a, b, c := s.gen(rng, na), s.gen(rng, nb), s.gen(rng, nc)
		dab, dba := s.m.Fn(a, b), s.m.Fn(b, a)
		if dab < 0 {
			t.Fatalf("%s: negative distance %v", s.m.Name, dab)
		}
		if dab != dba && !(math.Abs(dab-dba) <= tol) {
			t.Fatalf("%s: asymmetric: d(a,b)=%v d(b,a)=%v", s.m.Name, dab, dba)
		}
		if daa := s.m.Fn(a, a); !(daa <= tol) {
			t.Fatalf("%s: d(a,a) = %v", s.m.Name, daa)
		}
		dac, dbc := s.m.Fn(a, c), s.m.Fn(b, c)
		// Inf-safe triangle check: an infinite right-hand side bounds
		// everything.
		if dac > dab+dbc+tol {
			t.Fatalf("%s: triangle violated: d(a,c)=%v > d(a,b)+d(b,c)=%v+%v\na=%v\nb=%v\nc=%v",
				s.m.Name, dac, dab, dbc, a, b, c)
		}
	}
}

// checkConsistency verifies Definition 1 via FindInconsistency on random
// pairs, plus structured pairs (x a corrupted copy of q) where the base
// distance is small and the property has real bite.
func checkConsistency[E any](t *testing.T, s suite[E], seed uint64) {
	t.Helper()
	if !s.m.Props.Consistent {
		t.Fatalf("%s: checkConsistency on a non-consistent measure", s.m.Name)
	}
	rng := rand.New(rand.NewPCG(seed, 13))
	const tol = 1e-9
	for trial := 0; trial < 40; trial++ {
		var nq, nx int
		if s.m.Props.LockStep {
			nq = 2 + rng.IntN(5)
			nx = nq
		} else {
			nq, nx = 1+rng.IntN(6), 1+rng.IntN(6)
		}
		q := s.gen(rng, nq)
		var x []E
		if trial%2 == 0 {
			x = s.gen(rng, nx)
		} else {
			// A corrupted copy: small base distance stresses the bound.
			x = append([]E(nil), q...)
			x[rng.IntN(len(x))] = s.gen(rng, 1)[0]
		}
		if w, bad := FindInconsistency(s.m.Fn, q, x, tol); bad {
			t.Fatalf("%s: inconsistent on trial %d: SX = x[%d:%d), best %v > base %v\nq=%v\nx=%v",
				s.m.Name, trial, w.XStart, w.XEnd, w.Best, w.Base, q, x)
		}
	}
}

func TestMetricAxiomsAllMetricMeasures(t *testing.T) {
	for i, s := range byteSuites() {
		t.Run(s.m.Name+"/byte", func(t *testing.T) { checkMetricAxioms(t, s, uint64(100+i)) })
	}
	for i, s := range floatSuites() {
		if !s.m.Props.Metric {
			continue // DTW: vetted as non-metric elsewhere
		}
		t.Run(s.m.Name+"/float64", func(t *testing.T) { checkMetricAxioms(t, s, uint64(200+i)) })
	}
	for i, s := range pointSuites() {
		if !s.m.Props.Metric {
			continue
		}
		t.Run(s.m.Name+"/point2", func(t *testing.T) { checkMetricAxioms(t, s, uint64(300+i)) })
	}
}

func TestConsistencyAllConsistentMeasures(t *testing.T) {
	for i, s := range byteSuites() {
		t.Run(s.m.Name+"/byte", func(t *testing.T) { checkConsistency(t, s, uint64(400+i)) })
	}
	for i, s := range floatSuites() {
		t.Run(s.m.Name+"/float64", func(t *testing.T) { checkConsistency(t, s, uint64(500+i)) })
	}
	for i, s := range pointSuites() {
		t.Run(s.m.Name+"/point2", func(t *testing.T) { checkConsistency(t, s, uint64(600+i)) })
	}
}

// DTW must actually exhibit the triangle violation its Props.Metric = false
// declares — otherwise it could be upgraded to the indexed backends.
func TestDTWIsNotAMetric(t *testing.T) {
	dtw := DTW(AbsDiff)
	rng := rand.New(rand.NewPCG(700, 17))
	for trial := 0; trial < 20000; trial++ {
		a := randWalk(rng, 1+rng.IntN(5))
		b := randWalk(rng, 1+rng.IntN(5))
		c := randWalk(rng, 1+rng.IntN(5))
		if dtw(a, c) > dtw(a, b)+dtw(b, c)+1e-9 {
			return // violation found, as documented
		}
	}
	t.Error("no DTW triangle violation found in 20000 random trials; is Props.Metric = false still right?")
}

// The checker itself must catch a genuinely inconsistent distance: one that
// punishes short sequences, so every short SX is far from every SQ even when
// the full pair is close.
func TestFindInconsistencyCatchesBrokenDistance(t *testing.T) {
	broken := func(a, b []byte) float64 {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		d := 10 - n
		if d < 0 {
			d = 0
		}
		return float64(d)
	}
	q := []byte("ABABAB")
	x := []byte("ABABAB")
	w, bad := FindInconsistency(broken, q, x, 1e-9)
	if !bad {
		t.Fatal("broken distance passed the consistency check")
	}
	if w.XEnd-w.XStart >= len(x) {
		t.Errorf("witness %+v should be a proper subsequence", w)
	}
	if w.Best <= w.Base {
		t.Errorf("witness not a violation: best %v ≤ base %v", w.Best, w.Base)
	}
	if ConsistentOn(broken, q, x, 1e-9) {
		t.Error("ConsistentOn disagrees with FindInconsistency")
	}
	// And the tolerance must absorb the violation when large enough.
	if !ConsistentOn(broken, q, x, 100) {
		t.Error("tolerance 100 should absorb a violation of at most 9")
	}
}

// Consistency pinned on concrete pairs mirroring the public examples.
func TestConsistentOnExamples(t *testing.T) {
	if !ConsistentOn(DiscreteFrechet(AbsDiff), []float64{1, 2, 3, 4}, []float64{2, 2, 4, 4}, 1e-9) {
		t.Error("DFD inconsistent on the documented example")
	}
	// The ERP case that needs the empty counterpart: x's tail aligns with
	// gaps, so its cheapest counterpart in q is the empty sequence.
	if !ConsistentOn(ERP(AbsDiff, 0), []float64{100}, []float64{100, 1}, 1e-9) {
		t.Error("ERP inconsistent on the gap-tail example")
	}
}
