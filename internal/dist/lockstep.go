package dist

import "math"

// Lock-step distances compare sequences element by element: the i-th element
// of one sequence is paired with the i-th element of the other, with no
// warping and no gaps. They are defined only for equal lengths; on a length
// mismatch they return +Inf, which is safe everywhere in the framework (an
// infinite distance is never within a query radius). The framework enforces
// λ0 = 0 for lock-step measures, so all comparisons it issues are
// equal-length.

// Euclidean is the L2 distance over equal-length sequences under ground
// distance g: sqrt(Σ g(aᵢ,bᵢ)²). It is a metric whenever g is (Minkowski's
// inequality), and consistent because a subsequence's sum of squares is a
// subset of the whole.
func Euclidean[E any](g Ground[E]) Func[E] {
	return func(a, b []E) float64 {
		if len(a) != len(b) {
			return math.Inf(1)
		}
		var sum float64
		for i := range a {
			d := g(a[i], b[i])
			sum += d * d
		}
		return math.Sqrt(sum)
	}
}

// EuclideanMeasure is Euclidean bundled with its properties: a consistent
// lock-step metric with a rolling incremental kernel and squared-sum early
// abandoning.
func EuclideanMeasure[E any](g Ground[E]) Measure[E] {
	return Measure[E]{
		Name:    "euclidean",
		Fn:      Euclidean(g),
		Props:   Properties{Consistent: true, Metric: true, LockStep: true},
		Prepare: func(w []E) Prepared[E] { return &euclideanPrepared[E]{g: g, w: w} },
		Bounded: euclideanBounded(g),
	}
}

// Hamming counts the positions at which two equal-length sequences differ.
func Hamming[E comparable](a, b []E) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return float64(n)
}

// HammingMeasure is Hamming bundled with its properties: a consistent
// lock-step metric with a rolling incremental kernel and mismatch-count
// early abandoning.
func HammingMeasure[E comparable]() Measure[E] {
	return Measure[E]{
		Name:    "hamming",
		Fn:      Hamming[E],
		Props:   Properties{Consistent: true, Metric: true, LockStep: true},
		Prepare: func(w []E) Prepared[E] { return &hammingPrepared[E]{w: w} },
		Bounded: hammingBounded[E],
	}
}

func init() {
	const eucDesc = "lock-step L2 distance over equal-length sequences"
	RegisterBuiltin(EuclideanMeasure(AbsDiff), eucDesc)
	RegisterBuiltin(EuclideanMeasure(Point2Dist), eucDesc)
	const hamDesc = "lock-step mismatch count over equal-length sequences"
	RegisterBuiltin(HammingMeasure[byte](), hamDesc)
	RegisterBuiltin(HammingMeasure[float64](), hamDesc)
}
