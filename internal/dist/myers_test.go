package dist

import (
	"math/rand/v2"
	"testing"
)

// LevenshteinFast must agree exactly with the plain DP on 1000 random
// byte-string pairs, with lengths concentrated around the 64-character
// machine-word boundary where the bit-parallel path hands over to the
// fallback. This is the cross-check mandated for Myers' algorithm: the two
// implementations share no code on the ≤64 path.
func TestLevenshteinFastMatchesPlainOn1000Pairs(t *testing.T) {
	lev := Levenshtein[byte]()
	rng := rand.New(rand.NewPCG(64, 64))
	randLen := func() int {
		switch rng.IntN(4) {
		case 0: // the word-boundary band
			return 62 + rng.IntN(6) // 62..67
		case 1: // short strings
			return rng.IntN(8)
		default: // general case
			return rng.IntN(80)
		}
	}
	alphabets := []string{"AB", "ACDEFGHIKLMNPQRSTVWY", "abcdefghijklmnopqrstuvwxyz0123456789"}
	for trial := 0; trial < 1000; trial++ {
		alpha := alphabets[trial%len(alphabets)]
		a := randBytes(rng, randLen(), alpha)
		b := randBytes(rng, randLen(), alpha)
		want := lev(a, b)
		if got := LevenshteinFast(a, b); got != want {
			t.Fatalf("trial %d: LevenshteinFast(%q,%q) = %v, plain = %v", trial, a, b, got, want)
		}
		if got := LevenshteinBytes(a, b); got != want {
			t.Fatalf("trial %d: LevenshteinBytes(%q,%q) = %v, plain = %v", trial, a, b, got, want)
		}
	}
}

// Pin the exact word-boundary lengths: equal strings, one-edit strings and
// disjoint strings at pattern lengths 63, 64 and 65.
func TestLevenshteinFastWordBoundary(t *testing.T) {
	for _, m := range []int{63, 64, 65} {
		a := make([]byte, m)
		for i := range a {
			a[i] = 'A' + byte(i%4)
		}
		b := append([]byte(nil), a...)
		if d := LevenshteinFast(a, b); d != 0 {
			t.Errorf("m=%d: identical strings = %v", m, d)
		}
		b[m/2] = 'Z'
		if d := LevenshteinFast(a, b); d != 1 {
			t.Errorf("m=%d: one substitution = %v", m, d)
		}
		if d := LevenshteinFast(a, b[:m-1]); d != 2 {
			t.Errorf("m=%d: one substitution + one deletion = %v", m, d)
		}
		z := make([]byte, m)
		for i := range z {
			z[i] = 'z'
		}
		if d := LevenshteinFast(a, z); d != float64(m) {
			t.Errorf("m=%d: disjoint strings = %v, want %v", m, d, m)
		}
	}
}

// The bit-parallel path must be order-insensitive (the implementation swaps
// so the pattern is the shorter side).
func TestLevenshteinFastSymmetric(t *testing.T) {
	rng := rand.New(rand.NewPCG(65, 65))
	for trial := 0; trial < 100; trial++ {
		a := randBytes(rng, rng.IntN(70), "ABC")
		b := randBytes(rng, rng.IntN(70), "ABC")
		if ab, ba := LevenshteinFast(a, b), LevenshteinFast(b, a); ab != ba {
			t.Fatalf("asymmetric: d(a,b)=%v d(b,a)=%v", ab, ba)
		}
	}
}
