package dist

import "math"

// DiscreteFrechet returns the discrete Fréchet distance under ground
// distance g: the minimum, over all monotone couplings of the two sequences,
// of the MAXIMUM ground distance of any coupled pair (the classic
// leash-length formulation, Eiter & Mannila 1994). Because it aggregates by
// max rather than sum, bounded ground distances bound the whole measure —
// the effect behind the paper's skewed SONGS/DFD distribution. It satisfies
// the triangle inequality whenever g does, so the framework indexes it; it
// is consistent because restricting a coupling to a subsequence's columns
// can only lower the maximum.
//
// Both sequences empty is distance 0; exactly one empty is +Inf.
func DiscreteFrechet[E any](g Ground[E]) Func[E] {
	return func(a, b []E) float64 {
		n, m := len(a), len(b)
		if n == 0 || m == 0 {
			if n == m {
				return 0
			}
			return math.Inf(1)
		}
		prev := make([]float64, m+1)
		cur := make([]float64, m+1)
		for j := 1; j <= m; j++ {
			prev[j] = math.Inf(1)
		}
		for i := 1; i <= n; i++ {
			cur[0] = math.Inf(1)
			for j := 1; j <= m; j++ {
				reach := prev[j-1]
				if prev[j] < reach {
					reach = prev[j]
				}
				if cur[j-1] < reach {
					reach = cur[j-1]
				}
				if d := g(a[i-1], b[j-1]); d > reach {
					reach = d
				}
				cur[j] = reach
			}
			prev, cur = cur, prev
		}
		return prev[m]
	}
}

// DiscreteFrechetMeasure is DiscreteFrechet bundled with its properties: a
// consistent metric, accepted by every index backend, with row-minimum
// early abandoning.
func DiscreteFrechetMeasure[E any](g Ground[E]) Measure[E] {
	return Measure[E]{
		Name:    "dfd",
		Fn:      DiscreteFrechet(g),
		Props:   Properties{Consistent: true, Metric: true, LockStep: false},
		Bounded: frechetBounded(g),
	}
}

func init() {
	const desc = "discrete Fréchet distance (max-aggregated warping metric)"
	RegisterBuiltin(DiscreteFrechetMeasure(AbsDiff), desc)
	RegisterBuiltin(DiscreteFrechetMeasure(Point2Dist), desc)
}

// FrechetAlignment returns the discrete Fréchet distance of a and b together
// with an optimal alignment: a monotone coupling sequence from (0,0) to
// (len(a)-1, len(b)-1) whose maximum ground distance is the returned value.
// Returns (0, nil) when both inputs are empty and (+Inf, nil) when exactly
// one is.
func FrechetAlignment[E any](g Ground[E], a, b []E) (float64, []Coupling) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		if n == m {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	d := fullMatrix(n, m)
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			reach := d[i-1][j-1]
			if d[i-1][j] < reach {
				reach = d[i-1][j]
			}
			if d[i][j-1] < reach {
				reach = d[i][j-1]
			}
			if v := g(a[i-1], b[j-1]); v > reach {
				reach = v
			}
			d[i][j] = reach
		}
	}
	var rev []Coupling
	for i, j := n, m; i > 0 || j > 0; {
		rev = append(rev, Coupling{I: i - 1, J: j - 1})
		switch {
		case i > 1 && j > 1 && d[i-1][j-1] <= d[i-1][j] && d[i-1][j-1] <= d[i][j-1]:
			i, j = i-1, j-1
		case i > 1 && (j == 1 || d[i-1][j] <= d[i][j-1]):
			i--
		case j > 1:
			j--
		default:
			i, j = 0, 0
		}
	}
	return d[n][m], reverse(rev)
}
