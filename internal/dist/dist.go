// Package dist is the framework's distance-measure API: the capability-typed
// contract every other layer compiles against.
//
// The paper's central claim (Section 3) is genericity — one filter-and-verify
// framework that works for any distance measure satisfying the consistency
// property of Definition 1, and that gains metric indexing for free when the
// measure is additionally a metric. This package encodes that claim as types:
//
//   - Func is a distance between two sequences, Ground a distance between two
//     sequence elements;
//   - Properties is the capability record — Consistent, Metric, LockStep —
//     stating which assumptions a measure satisfies;
//   - Measure bundles a Func with its name and Properties, so downstream code
//     (core.NewMatcher in particular) can reject unsound measure/backend
//     pairings at construction time instead of silently returning wrong
//     answers: a non-consistent measure breaks the filter's losslessness
//     (Lemma 2), a non-metric measure breaks index pruning (Section 3.3), and
//     a lock-step measure admits no temporal shift (λ0 must be 0).
//
// Each supported measure comes in two flavours: a *Measure constructor
// returning the function bundled with its vetted properties (EuclideanMeasure,
// HammingMeasure, DTWMeasure, ERPMeasure, DiscreteFrechetMeasure,
// LevenshteinMeasure, LevenshteinFastMeasure, ProteinEditMeasure), and a bare
// constructor returning just the function (DTW, ERP, DiscreteFrechet,
// Levenshtein, LevenshteinBytes, LevenshteinFast, WeightedEdit) for callers
// that do their own bookkeeping. Claimed properties are enforced by the
// package's property-based tests: metric axioms on random inputs for every
// measure whose Props.Metric is true, and Definition-1 consistency via
// FindInconsistency for every measure whose Props.Consistent is true.
//
// All distance functions in this package accept empty slices without
// panicking. Lock-step distances return +Inf for length-mismatched inputs,
// which composes safely with both the filter (an infinite distance never
// falls within a query radius) and the consistency checker.
//
// Every built-in measure additionally self-registers its canonical
// instantiations per element type in the package's catalog (catalog.go), so
// callers that hold only a string — a CLI flag, a config entry — can
// resolve it to a typed Measure via Builtin and enumerate the supported
// matrix via Catalog. The public repro/registry package builds on exactly
// this surface.
package dist

import (
	"math"

	"repro/internal/seq"
)

// Ground is a distance between two sequence elements — the per-element cost
// that the warping distances (DTW, ERP, discrete Fréchet) and Euclidean
// aggregate over a pair of sequences. Index pruning and the Metric property
// of the aggregated measures require the ground distance itself to be a
// metric on the element type.
type Ground[E any] func(a, b E) float64

// Func is a distance between two sequences over alphabet E. The framework
// evaluates it on database windows, query segments and candidate
// subsequences; implementations must be safe for concurrent use (pure
// functions of their inputs).
type Func[E any] func(a, b []E) float64

// BoundedFunc is an early-abandoning distance evaluation: it returns the
// exact value of the underlying distance whenever that value is ≤ eps, and
// otherwise may return ANY value strictly greater than eps (often a cheap
// lower bound, or +Inf) as soon as the true distance provably exceeds the
// threshold. Range filtering only ever compares the result against eps, so
// threading the query radius into the kernel lets it stop mid-computation —
// a partial Euclidean sum past eps², a banded edit DP whose band minimum
// exceeds eps — without changing which items pass the filter.
type BoundedFunc[E any] func(a, b []E, eps float64) float64

// Properties is the capability record of a distance measure: the assumptions
// it satisfies, which determine the framework configurations it can soundly
// drive (core.validateMeasure consults exactly these three bits).
type Properties struct {
	// Consistent reports that the measure satisfies Definition 1 of the
	// paper: for any sequences Q and X and any subsequence SX of X there is
	// a (possibly empty) subsequence SQ of Q with δ(SQ, SX) ≤ δ(Q, X).
	// Consistency is what makes the window filter lossless (Lemma 2); the
	// framework rejects measures without it.
	Consistent bool
	// Metric reports that the measure is non-negative, symmetric, zero on
	// identical sequences and obeys the triangle inequality. Only metric
	// measures may drive the metric-index backends (reference net, cover
	// tree, MV); consistent-but-non-metric measures (DTW) are confined to
	// the linear-scan filter.
	Metric bool
	// LockStep reports that the measure compares sequences element by
	// element and is defined only for equal lengths (Euclidean, Hamming).
	// Lock-step measures admit no temporal shift, so they require λ0 = 0.
	LockStep bool
}

// Measure bundles a distance function with its name and properties. The
// fields are exported so callers can assemble custom measures; the
// constructors in this package return measures whose Props have been vetted
// by the package's property-based tests.
//
// Prepare and Bounded are optional capabilities: nil means the measure
// offers only the plain Fn evaluation, and every consumer falls back to it.
// When present they must agree exactly with Fn (the package's tests
// cross-check both against Fn on random inputs for every built-in measure).
type Measure[E any] struct {
	// Name identifies the measure in diagnostics and error messages.
	Name string
	// Fn is the distance function.
	Fn Func[E]
	// Props records the assumptions Fn satisfies.
	Props Properties
	// Prepare, when non-nil, builds the shared immutable half of an
	// incremental kernel for window w — the window binding plus its
	// preprocessing (Myers peq bit tables, edit base rows, ERP gap
	// columns). The Prepared mints stateful kernels evaluating d(·, w)
	// over growing left-hand prefixes, reusing the work shared by prefixes
	// that differ in one element (rolling lock-step sums, edit-DP row
	// reuse, Myers column streaming). The filter uses kernels to price all
	// 2λ0+1 segment lengths at one start for the cost of the longest, and
	// stores one Prepared per database window alongside the index so
	// concurrent workers share the preprocessing (see Prepared).
	Prepare func(w []E) Prepared[E]
	// Bounded, when non-nil, is the early-abandoning evaluation of Fn;
	// see BoundedFunc for the contract.
	Bounded BoundedFunc[E]
}

// NewKernel builds a one-off incremental kernel bound to w (Prepare plus a
// fresh state). It returns nil when the measure has no Prepare capability.
// Callers evaluating many windows should instead hold the Prepared values
// and rebind a single state per worker with BindKernel.
func (m Measure[E]) NewKernel(w []E) Kernel[E] {
	if m.Prepare == nil {
		return nil
	}
	return m.Prepare(w).NewState()
}

// Coupling is one element pairing in an optimal alignment, as recovered by
// DTWAlignment, FrechetAlignment and ERPAlignment: element I of the first
// sequence is aligned with element J of the second. In ERP alignments an
// index of Gap (-1) marks the element on the other side as aligned with the
// gap element.
type Coupling struct {
	I, J int
}

// Gap is the Coupling index marking an ERP gap alignment.
const Gap = -1

// AbsDiff is |a−b|, the ground distance for scalar series (SONGS pitch
// classes, univariate time series).
func AbsDiff(a, b float64) float64 { return math.Abs(a - b) }

// Point2Dist is the planar Euclidean ground distance, used for trajectory
// sequences (the TRAJ dataset).
func Point2Dist(a, b seq.Point2) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}
