package dist

import "math"

// ProteinEdit is a weighted edit distance over amino-acid strings whose
// substitution cost reflects physico-chemical similarity: each of the 20
// standard residues is placed in a three-dimensional feature space
// (Kyte–Doolittle hydropathy, side-chain volume, charge) and substitutions
// are priced by the weighted L1 distance between feature vectors, capped at
// 2. Indels cost 1.
//
// Unlike log-odds scoring schemes (BLOSUM, PAM), which are similarity
// scores and not distances, this construction is a true metric — the L1
// distance is a metric, capping a metric at a constant preserves the
// triangle inequality, and with every substitution at most twice the indel
// cost the resulting edit distance is metric too (Sellers 1974). That makes
// it an index-compatible stand-in for biological scoring: conservative
// substitutions (I↔L, D↔E) cost a fraction of an indel, radical ones
// (charged↔hydrophobic) approach the cap. Bytes outside the 20-letter
// alphabet are priced at the cap against everything but themselves, which
// keeps the metric property.

// aaFeature holds one residue's normalised physico-chemical coordinates.
type aaFeature struct {
	hydro, volume, charge float64
}

// aaFeatures maps residue bytes to features; aaKnown marks the 20 standard
// residues. Hydropathy is Kyte–Doolittle (−4.5..4.5), volume is side-chain
// volume in Å³ (60..228), charge is the net charge at physiological pH with
// histidine at +0.5. Each is normalised to unit scale below.
var (
	aaFeatures [256]aaFeature
	aaKnown    [256]bool
)

func init() {
	raw := map[byte][3]float64{ // hydropathy, volume, charge
		'A': {1.8, 88.6, 0}, 'R': {-4.5, 173.4, 1}, 'N': {-3.5, 114.1, 0},
		'D': {-3.5, 111.1, -1}, 'C': {2.5, 108.5, 0}, 'Q': {-3.5, 143.8, 0},
		'E': {-3.5, 138.4, -1}, 'G': {-0.4, 60.1, 0}, 'H': {-3.2, 153.2, 0.5},
		'I': {4.5, 166.7, 0}, 'L': {3.8, 166.7, 0}, 'K': {-3.9, 168.6, 1},
		'M': {1.9, 162.9, 0}, 'F': {2.8, 189.9, 0}, 'P': {-1.6, 112.7, 0},
		'S': {-0.8, 89.0, 0}, 'T': {-0.7, 116.1, 0}, 'W': {-0.9, 227.8, 0},
		'Y': {-1.3, 193.6, 0}, 'V': {4.2, 140.0, 0},
	}
	for c, f := range raw {
		aaFeatures[c] = aaFeature{hydro: f[0] / 9.0, volume: f[1] / 167.7, charge: f[2]}
		aaKnown[c] = true
	}
}

// proteinSubCost prices a substitution: the weighted L1 feature distance,
// capped at proteinSubCap. Unknown bytes sit at the cap against every other
// byte, preserving metricity.
func proteinSubCost(a, b byte) float64 {
	if a == b {
		return 0
	}
	if !aaKnown[a] || !aaKnown[b] {
		return proteinSubCap
	}
	fa, fb := aaFeatures[a], aaFeatures[b]
	d := 1.2*math.Abs(fa.hydro-fb.hydro) + 0.8*math.Abs(fa.volume-fb.volume) + 0.4*math.Abs(fa.charge-fb.charge)
	if d > proteinSubCap {
		return proteinSubCap
	}
	return d
}

const (
	// proteinSubCap bounds substitution costs at twice the indel cost, the
	// largest value that keeps the edit distance metric.
	proteinSubCap = 2
	// proteinIndel is the constant insertion/deletion cost.
	proteinIndel = 1
)

// ProteinEdit is the bare protein edit-distance function.
func ProteinEdit(a, b []byte) float64 {
	return editDP(len(a), len(b),
		func(i, j int) float64 { return proteinSubCost(a[i], b[j]) },
		func(int) float64 { return proteinIndel },
		func(int) float64 { return proteinIndel })
}

// ProteinEditMeasure is ProteinEdit bundled with its properties: a
// consistent metric, accepted by every index backend, with the row-reuse
// incremental kernel and the banded bounded evaluation (indels cost a
// constant, so the Ukkonen band applies).
func ProteinEditMeasure() Measure[byte] {
	return Measure[byte]{
		Name:    "protein-edit",
		Fn:      ProteinEdit,
		Props:   Properties{Consistent: true, Metric: true, LockStep: false},
		Prepare: proteinPrepare,
		Bounded: proteinBounded,
	}
}

func init() {
	RegisterBuiltin(ProteinEditMeasure(),
		"edit distance with physico-chemical amino-acid substitution costs")
}
