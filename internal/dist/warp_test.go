package dist

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/seq"
)

func TestDTWValues(t *testing.T) {
	dtw := DTW(AbsDiff)
	if d := dtw([]float64{1, 2, 3}, []float64{1, 2, 3}); d != 0 {
		t.Errorf("DTW identical = %v", d)
	}
	// Warping absorbs repeats at no cost.
	if d := dtw([]float64{1, 2}, []float64{1, 2, 2, 2}); d != 0 {
		t.Errorf("DTW repeat warp = %v, want 0", d)
	}
	if d := dtw([]float64{0}, []float64{5}); d != 5 {
		t.Errorf("DTW singletons = %v", d)
	}
	if d := dtw(nil, nil); d != 0 {
		t.Errorf("DTW empty/empty = %v", d)
	}
	if d := dtw(nil, []float64{1}); !math.IsInf(d, 1) {
		t.Errorf("DTW empty/nonempty = %v, want +Inf", d)
	}
	// The textbook triangle-inequality violation that bars DTW from metric
	// indexes: warping lets both d(a,b) and d(b,c) collapse while d(a,c)
	// stays large.
	a, b, c := []float64{0, 0, 0}, []float64{0, 4, 0}, []float64{0, 4, 4, 0}
	if dtw(a, c) > dtw(a, b)+dtw(b, c) {
		t.Logf("DTW violates triangle: d(a,c)=%v > %v+%v — as documented",
			dtw(a, c), dtw(a, b), dtw(b, c))
	}
}

func TestERPValues(t *testing.T) {
	erp := ERP(AbsDiff, 0)
	if d := erp([]float64{1, 2, 3}, []float64{1, 3}); d != 2 {
		t.Errorf("ERP = %v, want 2 (gap the 2)", d)
	}
	if d := erp(nil, []float64{3, 4}); d != 7 {
		t.Errorf("ERP empty vs [3,4] = %v, want 7 (total gap cost)", d)
	}
	if d := erp(nil, nil); d != 0 {
		t.Errorf("ERP empty/empty = %v", d)
	}
	if d := erp([]float64{1, 2}, []float64{1, 2}); d != 0 {
		t.Errorf("ERP identical = %v", d)
	}
}

func TestDiscreteFrechetValues(t *testing.T) {
	dfd := DiscreteFrechet(AbsDiff)
	if d := dfd([]float64{1, 2, 3, 4}, []float64{2, 2, 4, 4}); d != 1 {
		t.Errorf("DFD = %v, want 1", d)
	}
	// Max aggregation: one far-away element dominates.
	if d := dfd([]float64{0, 0, 100, 0}, []float64{0, 0, 0}); d != 100 {
		t.Errorf("DFD = %v, want 100", d)
	}
	if d := dfd(nil, nil); d != 0 {
		t.Errorf("DFD empty/empty = %v", d)
	}
	if d := dfd([]float64{1}, nil); !math.IsInf(d, 1) {
		t.Errorf("DFD nonempty/empty = %v, want +Inf", d)
	}
}

// checkMonotone verifies a warping alignment's structural invariants: it
// starts at (0,0), ends at (n-1,m-1) and advances each index by 0 or 1 per
// step (never both by 0).
func checkMonotone(t *testing.T, al []Coupling, n, m int) {
	t.Helper()
	if len(al) == 0 {
		t.Fatal("empty alignment")
	}
	if al[0] != (Coupling{0, 0}) {
		t.Fatalf("alignment starts at %v", al[0])
	}
	if last := al[len(al)-1]; last != (Coupling{n - 1, m - 1}) {
		t.Fatalf("alignment ends at %v, want (%d,%d)", last, n-1, m-1)
	}
	for k := 1; k < len(al); k++ {
		di, dj := al[k].I-al[k-1].I, al[k].J-al[k-1].J
		if di < 0 || di > 1 || dj < 0 || dj > 1 || (di == 0 && dj == 0) {
			t.Fatalf("non-monotone step %v -> %v", al[k-1], al[k])
		}
	}
}

func randWalk(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	v := 0.0
	for i := range s {
		v += rng.Float64()*2 - 1
		s[i] = v
	}
	return s
}

func TestDTWAlignmentAgreesWithDistance(t *testing.T) {
	dtw := DTW(AbsDiff)
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 50; trial++ {
		a := randWalk(rng, 1+rng.IntN(8))
		b := randWalk(rng, 1+rng.IntN(8))
		v, al := DTWAlignment(AbsDiff, a, b)
		if want := dtw(a, b); math.Abs(v-want) > 1e-9 {
			t.Fatalf("trial %d: alignment value %v, distance %v", trial, v, want)
		}
		checkMonotone(t, al, len(a), len(b))
		var sum float64
		for _, c := range al {
			sum += AbsDiff(a[c.I], b[c.J])
		}
		if math.Abs(sum-v) > 1e-9 {
			t.Fatalf("trial %d: coupling costs sum to %v, value %v", trial, sum, v)
		}
	}
}

func TestFrechetAlignmentAgreesWithDistance(t *testing.T) {
	dfd := DiscreteFrechet(Point2Dist)
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 50; trial++ {
		a := make([]seq.Point2, 1+rng.IntN(8))
		b := make([]seq.Point2, 1+rng.IntN(8))
		for i := range a {
			a[i] = seq.Point2{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		}
		for i := range b {
			b[i] = seq.Point2{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		}
		v, al := FrechetAlignment(Point2Dist, a, b)
		if want := dfd(a, b); math.Abs(v-want) > 1e-9 {
			t.Fatalf("trial %d: alignment value %v, distance %v", trial, v, want)
		}
		checkMonotone(t, al, len(a), len(b))
		maxG := 0.0
		for _, c := range al {
			if d := Point2Dist(a[c.I], b[c.J]); d > maxG {
				maxG = d
			}
		}
		if math.Abs(maxG-v) > 1e-9 {
			t.Fatalf("trial %d: coupling max %v, value %v", trial, maxG, v)
		}
	}
}

func TestERPAlignmentAgreesWithDistance(t *testing.T) {
	erp := ERP(AbsDiff, 0)
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 50; trial++ {
		a := randWalk(rng, rng.IntN(8))
		b := randWalk(rng, rng.IntN(8))
		v, al := ERPAlignment(AbsDiff, 0, a, b)
		if want := erp(a, b); math.Abs(v-want) > 1e-9 {
			t.Fatalf("trial %d: alignment value %v, distance %v", trial, v, want)
		}
		// Every element of each side appears exactly once, in order.
		var sum float64
		ai, bi := 0, 0
		for _, c := range al {
			switch {
			case c.I != Gap && c.J != Gap:
				sum += AbsDiff(a[c.I], b[c.J])
			case c.I != Gap:
				sum += AbsDiff(a[c.I], 0)
			case c.J != Gap:
				sum += AbsDiff(b[c.J], 0)
			default:
				t.Fatal("coupling with two gaps")
			}
			if c.I != Gap {
				if c.I != ai {
					t.Fatalf("trial %d: a index %d out of order (want %d)", trial, c.I, ai)
				}
				ai++
			}
			if c.J != Gap {
				if c.J != bi {
					t.Fatalf("trial %d: b index %d out of order (want %d)", trial, c.J, bi)
				}
				bi++
			}
		}
		if ai != len(a) || bi != len(b) {
			t.Fatalf("trial %d: alignment covers %d/%d and %d/%d elements",
				trial, ai, len(a), bi, len(b))
		}
		if math.Abs(sum-v) > 1e-9 {
			t.Fatalf("trial %d: coupling costs sum to %v, value %v", trial, sum, v)
		}
	}
}

// The pinned example from the public API tests: distance 2, three couplings
// (one of them a gap).
func TestERPAlignmentPinnedExample(t *testing.T) {
	v, al := ERPAlignment(AbsDiff, 0, []float64{1, 2, 3}, []float64{1, 3})
	if v != 2 {
		t.Errorf("value = %v, want 2", v)
	}
	if len(al) != 3 {
		t.Errorf("alignment = %v, want 3 couplings", al)
	}
	gaps := 0
	for _, c := range al {
		if c.I == Gap || c.J == Gap {
			gaps++
		}
	}
	if gaps != 1 {
		t.Errorf("alignment %v has %d gaps, want 1", al, gaps)
	}
}
