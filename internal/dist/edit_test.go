package dist

import (
	"math/rand/v2"
	"testing"
)

func TestLevenshteinValues(t *testing.T) {
	lev := Levenshtein[byte]()
	cases := []struct {
		a, b string
		want float64
	}{
		{"kitten", "sitting", 3},
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"flaw", "lawn", 2},
		{"intention", "execution", 5},
	}
	for _, c := range cases {
		if got := lev([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := LevenshteinBytes([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("LevenshteinBytes(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := LevenshteinFast([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("LevenshteinFast(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Levenshtein over a non-byte alphabet: runs and ints.
func TestLevenshteinGenericAlphabets(t *testing.T) {
	levInt := Levenshtein[int]()
	if got := levInt([]int{1, 2, 3, 4}, []int{1, 3, 4}); got != 1 {
		t.Errorf("int Levenshtein = %v", got)
	}
	levRune := Levenshtein[rune]()
	if got := levRune([]rune("über"), []rune("uber")); got != 1 {
		t.Errorf("rune Levenshtein = %v", got)
	}
}

// WeightedEdit with unit costs must reproduce Levenshtein exactly.
func TestWeightedEditUnitCostsIsLevenshtein(t *testing.T) {
	unit := WeightedEdit(
		func(a, b byte) float64 {
			if a == b {
				return 0
			}
			return 1
		},
		func(byte) float64 { return 1 },
	)
	lev := Levenshtein[byte]()
	rng := rand.New(rand.NewPCG(4, 4))
	for trial := 0; trial < 200; trial++ {
		a := randBytes(rng, rng.IntN(12), "abcd")
		b := randBytes(rng, rng.IntN(12), "abcd")
		if w, l := unit(a, b), lev(a, b); w != l {
			t.Fatalf("WeightedEdit(%q,%q) = %v, Levenshtein = %v", a, b, w, l)
		}
	}
}

// Asymmetric indel costs must be respected (cheaper to delete an 'x' than
// anything else).
func TestWeightedEditCustomCosts(t *testing.T) {
	we := WeightedEdit(
		func(a, b byte) float64 {
			if a == b {
				return 0
			}
			return 2
		},
		func(e byte) float64 {
			if e == 'x' {
				return 0.25
			}
			return 1
		},
	)
	if got := we([]byte("axb"), []byte("ab")); got != 0.25 {
		t.Errorf("cheap deletion = %v, want 0.25", got)
	}
	// Substituting at cost 2 ties with delete+insert (1+1); both give 2.
	if got := we([]byte("a"), []byte("b")); got != 2 {
		t.Errorf("substitution = %v, want 2", got)
	}
}

func TestProteinEditValues(t *testing.T) {
	if d := ProteinEdit([]byte("ACDEFGHIK"), []byte("ACDEFGHIK")); d != 0 {
		t.Errorf("identical proteins = %v", d)
	}
	// Conservative substitutions cost a fraction of an indel; radical ones
	// approach the cap of 2.
	consIL := proteinSubCost('I', 'L')
	consDE := proteinSubCost('D', 'E')
	radIR := proteinSubCost('I', 'R')
	if consIL <= 0 || consIL >= 0.5 {
		t.Errorf("I↔L cost %v, want small positive", consIL)
	}
	if consDE <= 0 || consDE >= 0.5 {
		t.Errorf("D↔E cost %v, want small positive", consDE)
	}
	if radIR < 1 || radIR > 2 {
		t.Errorf("I↔R cost %v, want near the cap", radIR)
	}
	if consIL >= radIR {
		t.Errorf("conservative I↔L (%v) not cheaper than radical I↔R (%v)", consIL, radIR)
	}
	// Unknown bytes sit at the cap against everything but themselves.
	if d := proteinSubCost('B', 'A'); d != proteinSubCap {
		t.Errorf("unknown byte sub cost = %v", d)
	}
	if d := proteinSubCost('B', 'B'); d != 0 {
		t.Errorf("unknown byte self cost = %v", d)
	}
	// A single conservative substitution beats an indel pair.
	a, b := []byte("AAILAA"), []byte("AAIIAA")
	if d := ProteinEdit(a, b); d != proteinSubCost('L', 'I') {
		t.Errorf("single substitution = %v, want %v", d, proteinSubCost('L', 'I'))
	}
	// Every substitution is at most twice the indel cost, the metric bound.
	for _, x := range []byte("ACDEFGHIKLMNPQRSTVWYB?") {
		for _, y := range []byte("ACDEFGHIKLMNPQRSTVWYB?") {
			if c := proteinSubCost(x, y); c > 2*proteinIndel {
				t.Errorf("sub(%c,%c) = %v exceeds 2×indel", x, y, c)
			}
			if c, r := proteinSubCost(x, y), proteinSubCost(y, x); c != r {
				t.Errorf("sub(%c,%c) = %v asymmetric (%v)", x, y, c, r)
			}
		}
	}
}

func randBytes(rng *rand.Rand, n int, alphabet string) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = alphabet[rng.IntN(len(alphabet))]
	}
	return s
}
