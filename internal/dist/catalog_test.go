package dist

import (
	"sort"
	"testing"

	"repro/internal/seq"
)

// TestCatalogEntriesRoundTrip verifies that every catalog entry is
// retrievable through the typed lookup at its element type and that the
// entry's capability bits match the retrieved measure.
func TestCatalogEntriesRoundTrip(t *testing.T) {
	cat := Catalog()
	if len(cat) == 0 {
		t.Fatal("empty catalog: the measure init registrations did not run")
	}
	if !sort.SliceIsSorted(cat, func(i, j int) bool {
		if cat[i].Name != cat[j].Name {
			return cat[i].Name < cat[j].Name
		}
		return cat[i].Elem < cat[j].Elem
	}) {
		t.Error("Catalog() is not sorted by (name, elem)")
	}
	for _, e := range cat {
		if e.Description == "" {
			t.Errorf("%s/%s: empty description", e.Name, e.Elem)
		}
		var m any
		var ok bool
		var name string
		var incr, bound bool
		switch e.Elem {
		case "byte":
			bm, found := Builtin[byte](e.Name)
			m, ok, name, incr, bound = bm, found, bm.Name, bm.Prepare != nil, bm.Bounded != nil
		case "float64":
			fm, found := Builtin[float64](e.Name)
			m, ok, name, incr, bound = fm, found, fm.Name, fm.Prepare != nil, fm.Bounded != nil
		case "point2":
			pm, found := Builtin[seq.Point2](e.Name)
			m, ok, name, incr, bound = pm, found, pm.Name, pm.Prepare != nil, pm.Bounded != nil
		default:
			t.Fatalf("%s/%s: unexpected element type", e.Name, e.Elem)
		}
		_ = m
		if !ok {
			t.Fatalf("%s/%s: in Catalog() but not retrievable via Builtin", e.Name, e.Elem)
		}
		if name != e.Name {
			t.Errorf("%s/%s: retrieved measure is named %q", e.Name, e.Elem, name)
		}
		if incr != e.Incremental || bound != e.Bounded {
			t.Errorf("%s/%s: capability bits (incr %v, bounded %v) disagree with entry (%v, %v)",
				e.Name, e.Elem, incr, bound, e.Incremental, e.Bounded)
		}
	}
}

// TestCatalogMisses verifies lookup misses: a registered name at an
// unregistered element type, and an unregistered name.
func TestCatalogMisses(t *testing.T) {
	if _, ok := Builtin[byte]("erp"); ok {
		t.Error("erp is not registered over byte but Builtin returned it")
	}
	if _, ok := Builtin[float64]("no-such-measure"); ok {
		t.Error("Builtin returned an unregistered name")
	}
	if len(CatalogFor("byte")) == 0 || len(CatalogFor("point2")) == 0 {
		t.Error("CatalogFor returned no entries for a populated element type")
	}
}

// TestElemName pins the element-type naming the catalog keys on.
func TestElemName(t *testing.T) {
	if got := ElemName[byte](); got != "byte" {
		t.Errorf("ElemName[byte] = %q", got)
	}
	if got := ElemName[float64](); got != "float64" {
		t.Errorf("ElemName[float64] = %q", got)
	}
	if got := ElemName[seq.Point2](); got != "point2" {
		t.Errorf("ElemName[seq.Point2] = %q", got)
	}
	if got := ElemName[int32](); got != "int32" {
		t.Errorf("ElemName[int32] = %q", got)
	}
}
