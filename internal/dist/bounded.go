package dist

import "math"

// Bounded (early-abandoning) evaluations.
//
// Range filtering never needs the exact distance of a pair that lies outside
// the query radius — only the verdict "greater than eps". Each function here
// evaluates its measure only as far as needed to either finish under the
// threshold or prove it is exceeded:
//
//   - the lock-step measures abandon once their running accumulator passes
//     the radius (sum of squares past eps², mismatch count past eps);
//   - the constant-indel edit distances run the Ukkonen-banded DP, visiting
//     only the O((2k+1)·n) cells with |i−j| ≤ k = ⌊eps/indel⌋ and abandoning
//     when the band's row minimum exceeds eps;
//   - the warping distances (DTW, ERP, discrete Fréchet) and variable-indel
//     edits keep the full row but abandon on its minimum, which lower-bounds
//     every completion because cell costs are non-negative.
//
// All of them satisfy the BoundedFunc contract: exact at or under eps,
// anything greater than eps otherwise.

// euclideanBounded is Euclidean with per-element abandoning on the squared
// sum.
func euclideanBounded[E any](g Ground[E]) BoundedFunc[E] {
	return func(a, b []E, eps float64) float64 {
		if len(a) != len(b) {
			return math.Inf(1)
		}
		// Guard the squared threshold by a relative margin: eps is usually
		// itself a rounded sqrt, so the exact-on-the-boundary sum can sit a
		// few ulps above eps² without the true distance exceeding eps.
		limit := eps * eps
		limit += 1e-12 * limit
		var sum float64
		for i := range a {
			d := g(a[i], b[i])
			sum += d * d
			if sum > limit {
				return math.Inf(1)
			}
		}
		return math.Sqrt(sum)
	}
}

// hammingBounded is Hamming with abandoning on the mismatch count.
func hammingBounded[E comparable](a, b []E, eps float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
			if float64(n) > eps {
				return math.Inf(1)
			}
		}
	}
	return float64(n)
}

// boundedEditBand evaluates the edit DP restricted to the Ukkonen band
// |i−j| ≤ k with k = ⌊eps/minIndel⌋, where minIndel > 0 lower-bounds every
// indel cost. A cell off the band needs at least k+1 indels to reconcile the
// length difference, so it costs more than eps and cannot lie on a path the
// caller cares about; treating off-band cells as +Inf therefore returns the
// exact distance whenever it is ≤ eps and a value > eps otherwise. The band
// row minimum additionally abandons the scan as soon as no completion can
// come back under eps.
func boundedEditBand(n, m int, sub func(i, j int) float64, delA func(i int) float64, delB func(j int) float64, minIndel, eps float64) float64 {
	diff := n - m
	if diff < 0 {
		diff = -diff
	}
	if float64(diff)*minIndel > eps {
		return float64(diff) * minIndel
	}
	if n == 0 || m == 0 {
		var sum float64
		for i := 0; i < n; i++ {
			sum += delA(i)
		}
		for j := 0; j < m; j++ {
			sum += delB(j)
		}
		return sum
	}
	var k int
	if kf := eps / minIndel; kf >= float64(n+m) {
		k = n + m
	} else {
		k = int(kf)
	}
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	hi0 := m
	if k < hi0 {
		hi0 = k
	}
	for j := 1; j <= hi0; j++ {
		prev[j] = prev[j-1] + delB(j-1)
	}
	if hi0+1 <= m {
		prev[hi0+1] = inf
	}
	for i := 1; i <= n; i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > m {
			hi = m
		}
		if lo > hi {
			return inf
		}
		da := delA(i - 1)
		if lo == 1 {
			if i <= k {
				cur[0] = prev[0] + da
			} else {
				cur[0] = inf
			}
		} else {
			cur[lo-1] = inf
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			best := prev[j-1] + sub(i-1, j-1)
			if v := prev[j] + da; v < best {
				best = v
			}
			if v := cur[j-1] + delB(j-1); v < best {
				best = v
			}
			cur[j] = best
			if best < rowMin {
				rowMin = best
			}
		}
		if hi+1 <= m {
			cur[hi+1] = inf
		}
		if rowMin > eps {
			return rowMin
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// levenshteinBounded is the banded unit-cost edit distance over any
// comparable alphabet.
func levenshteinBounded[E comparable]() BoundedFunc[E] {
	return func(a, b []E, eps float64) float64 {
		return boundedEditBand(len(a), len(b),
			func(i, j int) float64 {
				if a[i] == b[j] {
					return 0
				}
				return 1
			},
			func(int) float64 { return 1 },
			func(int) float64 { return 1 },
			1, eps)
	}
}

// proteinBounded is the banded protein edit distance (constant indel cost).
func proteinBounded(a, b []byte, eps float64) float64 {
	return boundedEditBand(len(a), len(b),
		func(i, j int) float64 { return proteinSubCost(a[i], b[j]) },
		func(int) float64 { return proteinIndel },
		func(int) float64 { return proteinIndel },
		proteinIndel, eps)
}

// erpBounded is ERP with row-minimum abandoning. ERP's indel cost g(e, gap)
// can be zero (for e = gap), so the band argument does not apply; the row
// minimum still lower-bounds every completion because all costs are
// non-negative.
func erpBounded[E any](g Ground[E], gap E) BoundedFunc[E] {
	return func(a, b []E, eps float64) float64 {
		n, m := len(a), len(b)
		prev := make([]float64, m+1)
		cur := make([]float64, m+1)
		for j := 1; j <= m; j++ {
			prev[j] = prev[j-1] + g(b[j-1], gap)
		}
		for i := 1; i <= n; i++ {
			ga := g(a[i-1], gap)
			cur[0] = prev[0] + ga
			rowMin := cur[0]
			for j := 1; j <= m; j++ {
				best := prev[j-1] + g(a[i-1], b[j-1])
				if v := prev[j] + ga; v < best {
					best = v
				}
				if v := cur[j-1] + g(b[j-1], gap); v < best {
					best = v
				}
				cur[j] = best
				if best < rowMin {
					rowMin = best
				}
			}
			if rowMin > eps {
				return rowMin
			}
			prev, cur = cur, prev
		}
		return prev[m]
	}
}

// frechetBounded is the discrete Fréchet distance with row-minimum
// abandoning: reach values along a coupling only grow (max aggregation), so
// the row minimum lower-bounds every completion.
func frechetBounded[E any](g Ground[E]) BoundedFunc[E] {
	return func(a, b []E, eps float64) float64 {
		n, m := len(a), len(b)
		if n == 0 || m == 0 {
			if n == m {
				return 0
			}
			return math.Inf(1)
		}
		inf := math.Inf(1)
		prev := make([]float64, m+1)
		cur := make([]float64, m+1)
		for j := 1; j <= m; j++ {
			prev[j] = inf
		}
		for i := 1; i <= n; i++ {
			cur[0] = inf
			rowMin := inf
			for j := 1; j <= m; j++ {
				reach := prev[j-1]
				if prev[j] < reach {
					reach = prev[j]
				}
				if cur[j-1] < reach {
					reach = cur[j-1]
				}
				if d := g(a[i-1], b[j-1]); d > reach {
					reach = d
				}
				cur[j] = reach
				if reach < rowMin {
					rowMin = reach
				}
			}
			if rowMin > eps {
				return rowMin
			}
			prev, cur = cur, prev
		}
		return prev[m]
	}
}

// dtwBounded is DTW with row-minimum abandoning — the classic DTW early
// abandon: every warping path visits one cell per row, and with non-negative
// ground costs the cell value lower-bounds the full path cost.
func dtwBounded[E any](g Ground[E]) BoundedFunc[E] {
	return func(a, b []E, eps float64) float64 {
		n, m := len(a), len(b)
		if n == 0 || m == 0 {
			if n == m {
				return 0
			}
			return math.Inf(1)
		}
		inf := math.Inf(1)
		prev := make([]float64, m+1)
		cur := make([]float64, m+1)
		for j := 1; j <= m; j++ {
			prev[j] = inf
		}
		for i := 1; i <= n; i++ {
			cur[0] = inf
			rowMin := inf
			for j := 1; j <= m; j++ {
				best := prev[j-1]
				if prev[j] < best {
					best = prev[j]
				}
				if cur[j-1] < best {
					best = cur[j-1]
				}
				cur[j] = g(a[i-1], b[j-1]) + best
				if cur[j] < rowMin {
					rowMin = cur[j]
				}
			}
			if rowMin > eps {
				return rowMin
			}
			prev, cur = cur, prev
		}
		return prev[m]
	}
}
