package dist

import "repro/internal/seq"

// ERP returns Edit distance with Real Penalty (Chen & Ng, VLDB 2004) under
// ground distance g with gap element gap: an edit distance whose
// substitution cost is g(aᵢ,bⱼ) and whose insertion/deletion cost is the
// ground distance to the fixed gap element. Because every operation is
// priced by a metric ground distance against a fixed reference point, ERP is
// a metric — the property that lets the paper index it — while still
// tolerating local time shifts like DTW. It is also consistent: restricting
// an optimal alignment to a subsequence's columns yields a valid cheaper
// alignment (aligning entirely with gaps when no element of the other side
// participates).
//
// ERP of an empty sequence against s is the total gap cost Σ g(sᵢ, gap).
func ERP[E any](g Ground[E], gap E) Func[E] {
	return func(a, b []E) float64 {
		n, m := len(a), len(b)
		prev := make([]float64, m+1)
		cur := make([]float64, m+1)
		for j := 1; j <= m; j++ {
			prev[j] = prev[j-1] + g(b[j-1], gap)
		}
		for i := 1; i <= n; i++ {
			cur[0] = prev[0] + g(a[i-1], gap)
			for j := 1; j <= m; j++ {
				best := prev[j-1] + g(a[i-1], b[j-1])        // substitute
				if v := prev[j] + g(a[i-1], gap); v < best { // gap b
					best = v
				}
				if v := cur[j-1] + g(b[j-1], gap); v < best { // gap a
					best = v
				}
				cur[j] = best
			}
			prev, cur = cur, prev
		}
		return prev[m]
	}
}

// ERPMeasure is ERP bundled with its properties: a consistent metric,
// accepted by every index backend, with the row-reuse incremental kernel
// and row-minimum early abandoning.
func ERPMeasure[E any](g Ground[E], gap E) Measure[E] {
	return Measure[E]{
		Name:    "erp",
		Fn:      ERP(g, gap),
		Props:   Properties{Consistent: true, Metric: true, LockStep: false},
		Prepare: erpPrepare(g, gap),
		Bounded: erpBounded(g, gap),
	}
}

func init() {
	const desc = "edit distance with real penalty (warping metric, fixed gap element)"
	RegisterBuiltin(ERPMeasure(AbsDiff, 0), desc)
	RegisterBuiltin(ERPMeasure(Point2Dist, seq.Point2{}), desc)
}

// ERPAlignment returns the ERP distance of a and b together with an optimal
// alignment. Every element of each sequence appears in exactly one coupling;
// an element aligned with the gap element is reported as a coupling whose
// other index is Gap (-1).
func ERPAlignment[E any](g Ground[E], gap E, a, b []E) (float64, []Coupling) {
	n, m := len(a), len(b)
	d := fullMatrix(n, m)
	d[0][0] = 0
	for j := 1; j <= m; j++ {
		d[0][j] = d[0][j-1] + g(b[j-1], gap)
	}
	for i := 1; i <= n; i++ {
		d[i][0] = d[i-1][0] + g(a[i-1], gap)
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			best := d[i-1][j-1] + g(a[i-1], b[j-1])
			if v := d[i-1][j] + g(a[i-1], gap); v < best {
				best = v
			}
			if v := d[i][j-1] + g(b[j-1], gap); v < best {
				best = v
			}
			d[i][j] = best
		}
	}
	var rev []Coupling
	const eps = 1e-12
	for i, j := n, m; i > 0 || j > 0; {
		switch {
		case i > 0 && j > 0 && d[i][j] >= d[i-1][j-1]+g(a[i-1], b[j-1])-eps:
			rev = append(rev, Coupling{I: i - 1, J: j - 1})
			i, j = i-1, j-1
		case i > 0 && d[i][j] >= d[i-1][j]+g(a[i-1], gap)-eps:
			rev = append(rev, Coupling{I: i - 1, J: Gap})
			i--
		default:
			rev = append(rev, Coupling{I: Gap, J: j - 1})
			j--
		}
	}
	return d[n][m], reverse(rev)
}
