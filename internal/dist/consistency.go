package dist

// Definition 1 of the paper: a distance measure δ is CONSISTENT if for any
// sequences Q and X and any (contiguous, non-empty) subsequence SX of X
// there exists a contiguous, possibly empty subsequence SQ of Q with
// δ(SQ, SX) ≤ δ(Q, X). Consistency is the sole property the framework's
// window filter needs for losslessness (Lemma 2): a match pair within ε
// guarantees every window inside the database subsequence has a query
// segment within ε. The empty counterpart matters for gap-priced distances:
// ERP may align a whole stretch of X against gaps, in which case the
// cheapest counterpart of that stretch is the empty sequence.
//
// ConsistentOn and FindInconsistency check the property exhaustively on one
// concrete pair — O(|X|²·|Q|²) distance evaluations — so they are test and
// diagnostic tools for vetting a Measure's Props.Consistent claim on small
// inputs, not production-path code.

// Inconsistency is a witness against Definition 1: the subsequence
// x[XStart:XEnd) whose best counterpart in q, at distance Best, exceeds the
// base distance δ(q, x) by more than the tolerance.
type Inconsistency struct {
	// XStart, XEnd delimit the offending subsequence of x.
	XStart, XEnd int
	// Best is the minimum of d(sq, x[XStart:XEnd)) over all contiguous
	// subsequences sq of q, including the empty one.
	Best float64
	// Base is d(q, x), the bound Best was required to meet.
	Base float64
}

// FindInconsistency exhaustively searches the pair (q, x) for a violation of
// Definition 1, returning a witness and true if one exists. tol absorbs
// floating-point noise in the comparison (Best ≤ Base + tol passes).
func FindInconsistency[E any](d Func[E], q, x []E, tol float64) (Inconsistency, bool) {
	base := d(q, x)
	for xs := 0; xs < len(x); xs++ {
		for xe := xs + 1; xe <= len(x); xe++ {
			sx := x[xs:xe]
			best := d(q[:0], sx) // the empty counterpart
			for qs := 0; qs <= len(q) && !(best <= base+tol); qs++ {
				for qe := qs + 1; qe <= len(q); qe++ {
					if v := d(q[qs:qe], sx); v < best {
						best = v
					}
				}
			}
			if !(best <= base+tol) { // also catches NaN
				return Inconsistency{XStart: xs, XEnd: xe, Best: best, Base: base}, true
			}
		}
	}
	return Inconsistency{Base: base}, false
}

// ConsistentOn reports whether the pair (q, x) exhibits no violation of
// Definition 1 under d; see FindInconsistency for the witness-returning
// variant.
func ConsistentOn[E any](d Func[E], q, x []E, tol float64) bool {
	_, bad := FindInconsistency(d, q, x, tol)
	return !bad
}
