package dist

import "math"

// DTW returns Dynamic Time Warping under ground distance g: the minimum,
// over all monotone couplings of the two sequences, of the sum of ground
// distances of the coupled pairs. DTW is consistent (restricting an optimal
// warping path to a subsequence's columns yields a valid cheaper path) but
// famously not a metric — it violates the triangle inequality — so the
// framework accepts it only with the linear-scan filter backend.
//
// Both sequences empty is distance 0; exactly one empty is +Inf (no coupling
// exists).
func DTW[E any](g Ground[E]) Func[E] {
	return func(a, b []E) float64 {
		n, m := len(a), len(b)
		if n == 0 || m == 0 {
			if n == m {
				return 0
			}
			return math.Inf(1)
		}
		// Two-row DP over the coupling matrix.
		prev := make([]float64, m+1)
		cur := make([]float64, m+1)
		for j := 1; j <= m; j++ {
			prev[j] = math.Inf(1)
		}
		for i := 1; i <= n; i++ {
			cur[0] = math.Inf(1)
			for j := 1; j <= m; j++ {
				best := prev[j-1]
				if prev[j] < best {
					best = prev[j]
				}
				if cur[j-1] < best {
					best = cur[j-1]
				}
				cur[j] = g(a[i-1], b[j-1]) + best
			}
			prev, cur = cur, prev
		}
		return prev[m]
	}
}

// DTWMeasure is DTW bundled with its properties: consistent, but NOT a
// metric — core.NewMatcher rejects it for every index backend except
// IndexLinearScan.
func DTWMeasure[E any](g Ground[E]) Measure[E] {
	return Measure[E]{
		Name:    "dtw",
		Fn:      DTW(g),
		Props:   Properties{Consistent: true, Metric: false, LockStep: false},
		Bounded: dtwBounded(g),
	}
}

func init() {
	const desc = "dynamic time warping (consistent, not a metric: linear backend only)"
	RegisterBuiltin(DTWMeasure(AbsDiff), desc)
	RegisterBuiltin(DTWMeasure(Point2Dist), desc)
}

// DTWAlignment returns the DTW distance of a and b under g together with an
// optimal alignment: a monotone sequence of couplings from (0,0) to
// (len(a)-1, len(b)-1) whose ground distances sum to the returned value.
// It materialises the full DP matrix, so it is meant for result reporting,
// not for the hot filtering path. Returns (0, nil) when both inputs are
// empty and (+Inf, nil) when exactly one is.
func DTWAlignment[E any](g Ground[E], a, b []E) (float64, []Coupling) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		if n == m {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	d := fullMatrix(n, m)
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			best := d[i-1][j-1]
			if d[i-1][j] < best {
				best = d[i-1][j]
			}
			if d[i][j-1] < best {
				best = d[i][j-1]
			}
			d[i][j] = g(a[i-1], b[j-1]) + best
		}
	}
	// Backtrack, preferring the diagonal to keep alignments short.
	var rev []Coupling
	for i, j := n, m; i > 0 || j > 0; {
		rev = append(rev, Coupling{I: i - 1, J: j - 1})
		switch {
		case i > 1 && j > 1 && d[i-1][j-1] <= d[i-1][j] && d[i-1][j-1] <= d[i][j-1]:
			i, j = i-1, j-1
		case i > 1 && (j == 1 || d[i-1][j] <= d[i][j-1]):
			i--
		case j > 1:
			j--
		default:
			i, j = 0, 0
		}
	}
	return d[n][m], reverse(rev)
}

// fullMatrix allocates an (n+1)×(m+1) DP matrix with +Inf borders and a 0
// origin, the shared start state of the warping alignments.
func fullMatrix(n, m int) [][]float64 {
	d := make([][]float64, n+1)
	backing := make([]float64, (n+1)*(m+1))
	for i := range d {
		d[i] = backing[i*(m+1) : (i+1)*(m+1)]
	}
	for j := 1; j <= m; j++ {
		d[0][j] = math.Inf(1)
	}
	for i := 1; i <= n; i++ {
		d[i][0] = math.Inf(1)
	}
	return d
}

func reverse(c []Coupling) []Coupling {
	for i, j := 0, len(c)-1; i < j; i, j = i+1, j-1 {
		c[i], c[j] = c[j], c[i]
	}
	return c
}
