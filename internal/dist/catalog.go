package dist

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/seq"
)

// Catalog of built-in measures.
//
// A Measure is a generic value — levenshtein exists over every comparable
// alphabet, ERP over every element type with a ground metric — but a CLI
// flag or a config file names a measure with a plain string. The catalog
// bridges the two: each measure file self-registers (in an init function)
// the canonical instantiation of its measure for the element types the
// framework's datasets use, keyed by (name, element type). Lookup is typed
// (Builtin[E] returns a Measure[E]) so downstream code never reflects; the
// untyped CatalogEntry view carries just the capability bits for listings
// and compatibility checks.
//
// Canonical instantiations fix the ground distance per element type: scalar
// series use AbsDiff (gap element 0 for ERP), planar points use Point2Dist
// (gap element the origin). Callers needing a different ground distance
// construct the measure directly; the catalog exists so that the common
// instantiations are nameable.

// CatalogEntry describes one registered (measure, element type) pair: the
// measure's vetted properties plus which optional fast-path capabilities its
// canonical instantiation carries.
type CatalogEntry struct {
	// Name is the measure name as reported by Measure.Name.
	Name string
	// Elem names the element type: "byte", "float64" or "point2".
	Elem string
	// Description is a one-line human-readable summary.
	Description string
	// Props are the measure's vetted properties.
	Props Properties
	// Incremental and Bounded report the optional capabilities.
	Incremental bool
	Bounded     bool
}

type catalogKey struct{ name, elem string }

var (
	catalogMu sync.RWMutex
	catalog   = map[catalogKey]any{} // holds Measure[E]
	entries   = map[catalogKey]CatalogEntry{}
)

// ElemName names the element type E as the catalog keys it: "byte",
// "float64", "point2", or the Go type name for anything else.
func ElemName[E any]() string {
	var z E
	switch any(z).(type) {
	case byte:
		return "byte"
	case float64:
		return "float64"
	case seq.Point2:
		return "point2"
	default:
		return fmt.Sprintf("%T", z)
	}
}

// RegisterBuiltin records m as the canonical instantiation of its name for
// element type E. It panics on a duplicate (name, element type) pair —
// registration happens in init functions, where a duplicate is a programming
// error, not a runtime condition.
func RegisterBuiltin[E any](m Measure[E], description string) {
	key := catalogKey{m.Name, ElemName[E]()}
	catalogMu.Lock()
	defer catalogMu.Unlock()
	if _, dup := catalog[key]; dup {
		panic(fmt.Sprintf("dist: duplicate builtin registration %q/%s", key.name, key.elem))
	}
	catalog[key] = m
	entries[key] = CatalogEntry{
		Name:        m.Name,
		Elem:        key.elem,
		Description: description,
		Props:       m.Props,
		Incremental: m.Prepare != nil,
		Bounded:     m.Bounded != nil,
	}
}

// Builtin returns the canonical Measure[E] registered under name, if any.
func Builtin[E any](name string) (Measure[E], bool) {
	catalogMu.RLock()
	v, ok := catalog[catalogKey{name, ElemName[E]()}]
	catalogMu.RUnlock()
	if !ok {
		return Measure[E]{}, false
	}
	return v.(Measure[E]), true
}

// Catalog returns every registered entry, sorted by name then element type.
func Catalog() []CatalogEntry {
	catalogMu.RLock()
	out := make([]CatalogEntry, 0, len(entries))
	for _, e := range entries {
		out = append(out, e)
	}
	catalogMu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Elem < out[j].Elem
	})
	return out
}

// CatalogFor returns the registered entries for one element type, sorted by
// name.
func CatalogFor(elem string) []CatalogEntry {
	all := Catalog()
	out := all[:0:0]
	for _, e := range all {
		if e.Elem == elem {
			out = append(out, e)
		}
	}
	return out
}
