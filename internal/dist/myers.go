package dist

// LevenshteinFast computes the byte-string edit distance with Myers'
// bit-parallel algorithm (Myers, JACM 1999): the DP column is packed into a
// 64-bit word as vertical delta bit-vectors, advancing a whole column per
// text character in a handful of word operations. Semantics are identical to
// LevenshteinBytes / Levenshtein[byte](); the bit-parallel path applies when
// the shorter string fits a machine word (≤ 64 bytes — every window the
// framework compares qualifies, the paper uses l = 20), with a transparent
// fallback to the byte DP beyond that.
func LevenshteinFast(a, b []byte) float64 {
	// The pattern (bit-packed side) is the shorter string.
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return float64(len(b))
	}
	if len(a) > 64 {
		return LevenshteinBytes(a, b)
	}
	return float64(myers64(a, b))
}

// myers64 runs the bit-parallel recurrence with pattern a (1 ≤ len(a) ≤ 64)
// against text b. Pv/Mv hold the positive/negative vertical deltas of the
// current DP column; each text character updates them via the Eq mask and
// the horizontal deltas Ph/Mh. The score tracks the bottom DP cell, starting
// at len(a) (the distance against the empty text).
func myers64(a, b []byte) int {
	var peq [256]uint64
	for i, c := range a {
		peq[c] |= 1 << uint(i)
	}
	pv := ^uint64(0)
	mv := uint64(0)
	score := len(a)
	last := uint64(1) << uint(len(a)-1)
	for _, c := range b {
		eq := peq[c]
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&last != 0 {
			score++
		} else if mh&last != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
	}
	return score
}

// LevenshteinFastMeasure is LevenshteinFast bundled with the Levenshtein
// properties (same function, faster evaluation): a consistent metric.
func LevenshteinFastMeasure() Measure[byte] {
	return Measure[byte]{
		Name:  "levenshtein-fast",
		Fn:    LevenshteinFast,
		Props: Properties{Consistent: true, Metric: true, LockStep: false},
	}
}
