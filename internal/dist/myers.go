package dist

import (
	"math"
	"math/bits"
	"sync"
)

// LevenshteinFast computes the byte-string edit distance with Myers'
// bit-parallel algorithm (Myers, JACM 1999): the DP column is packed into
// machine words as vertical delta bit-vectors, advancing a whole column per
// text character in a handful of word operations. Semantics are identical to
// LevenshteinBytes / Levenshtein[byte](). Patterns up to 64 bytes run in a
// single word; longer patterns use the block-based (multi-word) variant of
// Myers §4, which keeps bit-parallel speed — ⌈n/64⌉ word blocks per text
// character instead of n DP cells — for arbitrarily long inputs.
func LevenshteinFast(a, b []byte) float64 {
	// The pattern (bit-packed side) is the shorter string.
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return float64(len(b))
	}
	if len(a) > 64 {
		return float64(myersBlock(a, b))
	}
	return float64(myers64(a, b))
}

// myers64 runs the bit-parallel recurrence with pattern a (1 ≤ len(a) ≤ 64)
// against text b. Pv/Mv hold the positive/negative vertical deltas of the
// current DP column; each text character updates them via the Eq mask and
// the horizontal deltas Ph/Mh. The score tracks the bottom DP cell, starting
// at len(a) (the distance against the empty text).
func myers64(a, b []byte) int {
	var peq [256]uint64
	for i, c := range a {
		peq[c] |= 1 << uint(i)
	}
	pv := ^uint64(0)
	mv := uint64(0)
	score := len(a)
	last := uint64(1) << uint(len(a)-1)
	for _, c := range b {
		eq := peq[c]
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&last != 0 {
			score++
		} else if mh&last != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
	}
	return score
}

// blockScratch is the reusable working set of the multi-word recurrence:
// the per-character Eq masks (256×W words, kept all-zero between uses) and
// the delta/carry vectors. Pooled because the filter evaluates the distance
// once per segment↔window pair.
type blockScratch struct {
	peq        []uint64 // 256*w words, zeroed on return to the pool
	pv, mv, xh []uint64
}

var blockPool = sync.Pool{New: func() any { return &blockScratch{} }}

// grow sizes the scratch for pattern word count w. peq is lazily grown and
// relies on the pool invariant that it is all-zero.
func (s *blockScratch) grow(w int) {
	if cap(s.pv) < w {
		s.pv = make([]uint64, w)
		s.mv = make([]uint64, w)
		s.xh = make([]uint64, w)
	}
	s.pv, s.mv, s.xh = s.pv[:w], s.mv[:w], s.xh[:w]
	if len(s.peq) < 256*w {
		s.peq = make([]uint64, 256*w)
	}
}

// myersBlock is the block-based (multi-word) Myers recurrence for patterns
// longer than 64 bytes. It is the single-word recurrence evaluated on
// ⌈len(a)/64⌉-word bit-vectors: the only cross-word interactions are the
// carry of the match-propagating addition in Xh and the left shift of the
// horizontal deltas, both threaded explicitly through the block loop.
// Garbage bits above the pattern length in the last word never influence
// lower bits (addition carries and shifts propagate strictly upward), so the
// score bit at position len(a)−1 stays exact.
func myersBlock(a, b []byte) int {
	w := (len(a) + 63) >> 6
	s := blockPool.Get().(*blockScratch)
	s.grow(w)
	peq, pv, mv, xh := s.peq, s.pv, s.mv, s.xh
	for i, c := range a {
		peq[int(c)*w+(i>>6)] |= 1 << uint(i&63)
	}
	for k := 0; k < w; k++ {
		pv[k] = ^uint64(0)
		mv[k] = 0
	}
	score := len(a)
	lastWord := w - 1
	lastBit := uint64(1) << uint((len(a)-1)&63)
	for _, c := range b {
		row := peq[int(c)*w : int(c)*w+w]
		// Pass 1: Xh = (((Eq & Pv) + Pv) ^ Pv) | Eq with the addition carry
		// rippling across words.
		var carry uint64
		for k := 0; k < w; k++ {
			sum, c2 := bits.Add64(row[k]&pv[k], pv[k], carry)
			carry = c2
			xh[k] = (sum ^ pv[k]) | row[k]
		}
		// Pass 2: horizontal deltas, score update at the pattern's last row,
		// one-bit left shift across words (the +1 boundary enters at the
		// bottom), and the new vertical deltas.
		phCarry, mhCarry := uint64(1), uint64(0)
		for k := 0; k < w; k++ {
			xv := row[k] | mv[k]
			ph := mv[k] | ^(xh[k] | pv[k])
			mh := pv[k] & xh[k]
			if k == lastWord {
				if ph&lastBit != 0 {
					score++
				} else if mh&lastBit != 0 {
					score--
				}
			}
			phs := ph<<1 | phCarry
			mhs := mh<<1 | mhCarry
			phCarry, mhCarry = ph>>63, mh>>63
			pv[k] = mhs | ^(xv | phs)
			mv[k] = phs & xv
		}
	}
	for _, c := range a {
		for k := 0; k < w; k++ {
			peq[int(c)*w+k] = 0
		}
	}
	blockPool.Put(s)
	return score
}

// levenshteinFastBounded is LevenshteinFast with early abandoning: the
// bottom-row score can drop by at most 1 per remaining text character, so
// once score − remaining exceeds eps no completion can come back under it.
func levenshteinFastBounded(a, b []byte, eps float64) float64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	diff := len(b) - len(a)
	if float64(diff) > eps {
		return float64(diff)
	}
	if len(a) == 0 {
		return float64(len(b))
	}
	if len(a) > 64 {
		// The block path is already fast; banding it is future work.
		return float64(myersBlock(a, b))
	}
	var peq [256]uint64
	for i, c := range a {
		peq[c] |= 1 << uint(i)
	}
	pv := ^uint64(0)
	mv := uint64(0)
	score := len(a)
	last := uint64(1) << uint(len(a)-1)
	for j, c := range b {
		eq := peq[c]
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&last != 0 {
			score++
		} else if mh&last != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
		if remaining := len(b) - j - 1; float64(score-remaining) > eps {
			return math.Inf(1)
		}
	}
	return float64(score)
}

// myersKernel64 is the incremental form of the single-word recurrence: the
// pattern (the database window, ≤ 64 bytes) is bit-packed once at
// construction; each Feed advances the column by one query element and
// returns the current bottom-row score — d(fed prefix, w). Reset rewinds to
// the empty prefix without re-packing the pattern.
type myersKernel64 struct {
	peq    [256]uint64
	last   uint64
	m      int
	pv, mv uint64
	score  int
}

func newMyersKernel64(w []byte) *myersKernel64 {
	k := &myersKernel64{m: len(w), last: 1 << uint(len(w)-1)}
	for i, c := range w {
		k.peq[c] |= 1 << uint(i)
	}
	k.Reset()
	return k
}

func (k *myersKernel64) Feed(c byte) float64 {
	eq := k.peq[c]
	xv := eq | k.mv
	xh := (((eq & k.pv) + k.pv) ^ k.pv) | eq
	ph := k.mv | ^(xh | k.pv)
	mh := k.pv & xh
	if ph&k.last != 0 {
		k.score++
	} else if mh&k.last != 0 {
		k.score--
	}
	ph = ph<<1 | 1
	mh <<= 1
	k.pv = mh | ^(xv | ph)
	k.mv = ph & xv
	return float64(k.score)
}

func (k *myersKernel64) Reset() {
	k.pv = ^uint64(0)
	k.mv = 0
	k.score = k.m
}

// myersKernelBlock is the incremental multi-word kernel for windows longer
// than 64 bytes. Unlike myersBlock it owns its scratch (kernels are reused
// across many Reset/Feed cycles, so pooling would buy nothing).
type myersKernelBlock struct {
	peq     []uint64
	pv, mv  []uint64
	xh      []uint64
	w       int
	m       int
	lastBit uint64
	score   int
}

func newMyersKernelBlock(pattern []byte) *myersKernelBlock {
	w := (len(pattern) + 63) >> 6
	k := &myersKernelBlock{
		peq: make([]uint64, 256*w),
		pv:  make([]uint64, w), mv: make([]uint64, w), xh: make([]uint64, w),
		w: w, m: len(pattern),
		lastBit: 1 << uint((len(pattern)-1)&63),
	}
	for i, c := range pattern {
		k.peq[int(c)*w+(i>>6)] |= 1 << uint(i&63)
	}
	k.Reset()
	return k
}

func (k *myersKernelBlock) Feed(c byte) float64 {
	w := k.w
	row := k.peq[int(c)*w : int(c)*w+w]
	var carry uint64
	for i := 0; i < w; i++ {
		sum, c2 := bits.Add64(row[i]&k.pv[i], k.pv[i], carry)
		carry = c2
		k.xh[i] = (sum ^ k.pv[i]) | row[i]
	}
	phCarry, mhCarry := uint64(1), uint64(0)
	for i := 0; i < w; i++ {
		xv := row[i] | k.mv[i]
		ph := k.mv[i] | ^(k.xh[i] | k.pv[i])
		mh := k.pv[i] & k.xh[i]
		if i == w-1 {
			if ph&k.lastBit != 0 {
				k.score++
			} else if mh&k.lastBit != 0 {
				k.score--
			}
		}
		phs := ph<<1 | phCarry
		mhs := mh<<1 | mhCarry
		phCarry, mhCarry = ph>>63, mh>>63
		k.pv[i] = mhs | ^(xv | phs)
		k.mv[i] = phs & xv
	}
	return float64(k.score)
}

func (k *myersKernelBlock) Reset() {
	for i := range k.pv {
		k.pv[i] = ^uint64(0)
		k.mv[i] = 0
	}
	k.score = k.m
}

// myersKernel returns the incremental Levenshtein kernel bound to window w,
// choosing the single-word or block form by pattern length.
func myersKernel(w []byte) Kernel[byte] {
	switch {
	case len(w) == 0:
		return levenshteinKernel(w)
	case len(w) <= 64:
		return newMyersKernel64(w)
	default:
		return newMyersKernelBlock(w)
	}
}

// LevenshteinFastMeasure is LevenshteinFast bundled with the Levenshtein
// properties (same function, faster evaluation): a consistent metric, with
// the bit-parallel incremental kernel and score-slack early abandoning.
func LevenshteinFastMeasure() Measure[byte] {
	return Measure[byte]{
		Name:        "levenshtein-fast",
		Fn:          LevenshteinFast,
		Props:       Properties{Consistent: true, Metric: true, LockStep: false},
		Incremental: myersKernel,
		Bounded:     levenshteinFastBounded,
	}
}

func init() {
	RegisterBuiltin(LevenshteinFastMeasure(),
		"unit-cost edit distance via Myers' bit-parallel recurrence")
}
