package dist

import (
	"math"
	"sync"
)

// LevenshteinFast computes the byte-string edit distance with Myers'
// bit-parallel algorithm (Myers, JACM 1999): the DP column is packed into
// machine words as vertical delta bit-vectors, advancing a whole column per
// text character in a handful of word operations. Semantics are identical to
// LevenshteinBytes / Levenshtein[byte](). Patterns up to 64 bytes run in a
// single word; longer patterns use the block-based (multi-word) variant,
// which keeps bit-parallel speed — ⌈n/64⌉ word blocks per text character
// instead of n DP cells — for arbitrarily long inputs.
//
// Every variant in this file (plain, bounded, incremental kernel; single
// word and block) advances the DP column through the one shared word step,
// myersStep.
func LevenshteinFast(a, b []byte) float64 {
	// The pattern (bit-packed side) is the shorter string.
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return float64(len(b))
	}
	if len(a) > 64 {
		return float64(myersBlock(a, b))
	}
	return float64(myers64(a, b))
}

// myersStep advances one 64-bit word of the Myers column by one text
// character. pv/mv are the word's positive/negative vertical deltas, eq its
// pattern-match mask for the character, and hin the horizontal delta
// entering at the word's top boundary (-1, 0 or +1; the whole column's
// boundary row contributes +1 per character, so the bottom word chain
// starts at hin = +1). It returns the new vertical deltas, the outgoing
// horizontal delta at the word's top bit (the hin of the next word up —
// Hyyrö's carry formulation, which subsumes both the match-propagating
// addition carry and the delta shift carry of Myers §4), and the horizontal
// delta at scoreBit (+1, -1 or 0), with which callers track the DP value of
// their row of interest. Pass scoreBit = 0 when the word holds no tracked
// row.
func myersStep(pv, mv, eq uint64, hin int, scoreBit uint64) (pvOut, mvOut uint64, hout, scoreDelta int) {
	xv := eq | mv
	if hin < 0 {
		eq |= 1
	}
	xh := (((eq & pv) + pv) ^ pv) | eq
	ph := mv | ^(xh | pv)
	mh := pv & xh
	if ph&scoreBit != 0 {
		scoreDelta = 1
	} else if mh&scoreBit != 0 {
		scoreDelta = -1
	}
	if ph&(1<<63) != 0 {
		hout = 1
	} else if mh&(1<<63) != 0 {
		hout = -1
	}
	ph <<= 1
	mh <<= 1
	if hin < 0 {
		mh |= 1
	} else if hin > 0 {
		ph |= 1
	}
	pvOut = mh | ^(xv | ph)
	mvOut = ph & xv
	return pvOut, mvOut, hout, scoreDelta
}

// myers64 runs the bit-parallel recurrence with pattern a (1 ≤ len(a) ≤ 64)
// against text b. The score tracks the bottom DP cell, starting at len(a)
// (the distance against the empty text).
func myers64(a, b []byte) int {
	var peq [256]uint64
	for i, c := range a {
		peq[c] |= 1 << uint(i)
	}
	pv := ^uint64(0)
	mv := uint64(0)
	score := len(a)
	last := uint64(1) << uint(len(a)-1)
	for _, c := range b {
		var sd int
		pv, mv, _, sd = myersStep(pv, mv, peq[c], 1, last)
		score += sd
	}
	return score
}

// blockScratch is the reusable working set of the multi-word recurrence:
// the per-character Eq masks (256×W words, kept all-zero between uses), the
// delta vectors, and the per-block bottom-row scores the banded bounded
// path tracks. Pooled because the filter evaluates the distance once per
// segment↔window pair.
type blockScratch struct {
	peq    []uint64 // 256*w words, zeroed on return to the pool
	pv, mv []uint64
	scores []int
}

var blockPool = sync.Pool{New: func() any { return &blockScratch{} }}

// grow sizes the scratch for pattern word count w. peq is lazily grown and
// relies on the pool invariant that it is all-zero.
func (s *blockScratch) grow(w int) {
	if cap(s.pv) < w {
		s.pv = make([]uint64, w)
		s.mv = make([]uint64, w)
		s.scores = make([]int, w)
	}
	s.pv, s.mv, s.scores = s.pv[:w], s.mv[:w], s.scores[:w]
	if len(s.peq) < 256*w {
		s.peq = make([]uint64, 256*w)
	}
}

// release zeroes the peq rows touched by pattern a and returns the scratch
// to the pool.
func (s *blockScratch) release(a []byte, w int) {
	for _, c := range a {
		for k := 0; k < w; k++ {
			s.peq[int(c)*w+k] = 0
		}
	}
	blockPool.Put(s)
}

// myersBlock is the block-based (multi-word) Myers recurrence for patterns
// longer than 64 bytes: the single-word step chained bottom-up through the
// words, each word's outgoing horizontal delta feeding the next word's hin.
// Garbage bits above the pattern length in the last word never influence
// lower bits (the step's carries propagate strictly upward), so the score
// bit at position len(a)−1 stays exact.
func myersBlock(a, b []byte) int {
	w := (len(a) + 63) >> 6
	s := blockPool.Get().(*blockScratch)
	s.grow(w)
	peq, pv, mv := s.peq, s.pv, s.mv
	for i, c := range a {
		peq[int(c)*w+(i>>6)] |= 1 << uint(i&63)
	}
	for k := 0; k < w; k++ {
		pv[k] = ^uint64(0)
		mv[k] = 0
	}
	score := len(a)
	lastWord := w - 1
	lastBit := uint64(1) << uint((len(a)-1)&63)
	for _, c := range b {
		row := peq[int(c)*w : int(c)*w+w]
		hin := 1
		for k := 0; k < lastWord; k++ {
			pv[k], mv[k], hin, _ = myersStep(pv[k], mv[k], row[k], hin, 0)
		}
		var sd int
		pv[lastWord], mv[lastWord], _, sd = myersStep(pv[lastWord], mv[lastWord], row[lastWord], hin, lastBit)
		score += sd
	}
	s.release(a, w)
	return score
}

// levenshteinFastBounded is LevenshteinFast with early abandoning: the
// bottom-row score can drop by at most 1 per remaining text character, so
// once score − remaining exceeds eps no completion can come back under it.
// Patterns over 64 bytes run the banded block recurrence (myersBlockBounded),
// which additionally visits only the word blocks the Ukkonen band touches.
func levenshteinFastBounded(a, b []byte, eps float64) float64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	diff := len(b) - len(a)
	if float64(diff) > eps {
		return float64(diff)
	}
	if len(a) == 0 {
		return float64(len(b))
	}
	if len(a) > 64 {
		return myersBlockBounded(a, b, eps)
	}
	var peq [256]uint64
	for i, c := range a {
		peq[c] |= 1 << uint(i)
	}
	pv := ^uint64(0)
	mv := uint64(0)
	score := len(a)
	last := uint64(1) << uint(len(a)-1)
	for j, c := range b {
		var sd int
		pv, mv, _, sd = myersStep(pv, mv, peq[c], 1, last)
		score += sd
		if remaining := len(b) - j - 1; float64(score-remaining) > eps {
			return math.Inf(1)
		}
	}
	return float64(score)
}

// myersBlockBounded is the banded multi-word recurrence (edlib-style): with
// unit costs, a DP cell off the Ukkonen band |i−j| ≤ k = ⌊eps⌋ has value
// > eps, so only the word blocks the band intersects need advancing —
// roughly 2k/64+2 blocks per text character instead of all ⌈m/64⌉.
//
// Band maintenance is sound by an overestimate argument. A block first
// entered by the band's upper edge at text position j is initialised to the
// all-deletion column (pv all ones, bottom score = the block below's score
// plus the block's rows); that initialisation is ≥ the true DP values of
// those rows, which were off-band at j−1. Blocks the band's lower edge has
// passed are skipped, with hin = +1 fed into the lowest active block —
// again an overestimate (a horizontal delta never exceeds +1). Overestimates
// only ever propagate upward-bounded values: any cell whose true value is
// ≤ eps has an optimal path that stays inside the band (every cell on a
// ≤ eps path satisfies |i−j| ≤ value ≤ k) and is therefore computed exactly.
// So a result ≤ eps is exact and a result > eps proves the true distance
// exceeds eps — precisely the BoundedFunc contract.
//
// Callers guarantee len(a) > 64, len(a) ≤ len(b) and len(b)−len(a) ≤ eps.
func myersBlockBounded(a, b []byte, eps float64) float64 {
	m, n := len(a), len(b)
	var band int
	if eps >= float64(n) {
		band = n
	} else if eps > 0 {
		band = int(eps)
	}
	w := (m + 63) >> 6
	s := blockPool.Get().(*blockScratch)
	s.grow(w)
	peq, pv, mv, scores := s.peq, s.pv, s.mv, s.scores
	for i, c := range a {
		peq[int(c)*w+(i>>6)] |= 1 << uint(i&63)
	}
	lastWord := w - 1
	lastBit := uint64(1) << uint((m-1)&63)
	// fb..lb are the active blocks; blocks above lb are entered as the band
	// climbs, blocks below fb are abandoned as it descends.
	fb, lb := 0, -1
	extend := func() {
		lb++
		pv[lb] = ^uint64(0)
		mv[lb] = 0
		switch {
		case lb == 0:
			scores[0] = 64 // bottom row of block 0 in the all-deletion column
		case lb == lastWord:
			scores[lb] = scores[lb-1] + m - lastWord*64
		default:
			scores[lb] = scores[lb-1] + 64
		}
	}
	for j := 1; j <= n; j++ {
		// The band at text position j covers rows j−k … j+k.
		target := j + band
		if target > m {
			target = m
		}
		for lb < (target-1)>>6 {
			extend()
		}
		for (fb+1)*64 < j-band {
			fb++
		}
		ci := int(b[j-1])
		row := peq[ci*w : ci*w+w]
		hin := 1
		for k := fb; k <= lb; k++ {
			sbit := uint64(1) << 63
			if k == lastWord {
				sbit = lastBit
			}
			var sd int
			pv[k], mv[k], hin, sd = myersStep(pv[k], mv[k], row[k], hin, sbit)
			scores[k] += sd
		}
		if lb == lastWord && float64(scores[lastWord]-(n-j)) > eps {
			s.release(a, w)
			return math.Inf(1)
		}
	}
	res := math.Inf(1)
	if lb == lastWord {
		res = float64(scores[lastWord])
	}
	s.release(a, w)
	return res
}

// myersPrepared64 is the shared half of the single-word incremental kernel:
// the pattern (the database window, ≤ 64 bytes) bit-packed once. States
// minted from it carry only the two delta words and the running score.
type myersPrepared64 struct {
	peq  [256]uint64
	last uint64
	m    int
}

func (p *myersPrepared64) WindowLen() int { return p.m }

func (p *myersPrepared64) NewState() Kernel[byte] {
	s := &myersState64{p: p}
	s.Reset()
	return s
}

// myersState64 advances the column by one query element per Feed and
// returns the current bottom-row score — d(fed prefix, w).
type myersState64 struct {
	p      *myersPrepared64
	pv, mv uint64
	score  int
}

func (k *myersState64) Feed(c byte) float64 {
	var sd int
	k.pv, k.mv, _, sd = myersStep(k.pv, k.mv, k.p.peq[c], 1, k.p.last)
	k.score += sd
	return float64(k.score)
}

func (k *myersState64) Reset() {
	k.pv = ^uint64(0)
	k.mv = 0
	k.score = k.p.m
}

func (k *myersState64) Rebind(p Prepared[byte]) bool {
	mp, ok := p.(*myersPrepared64)
	if !ok {
		return false
	}
	k.p = mp
	k.Reset()
	return true
}

// myersBlockPrepared is the shared half of the multi-word kernel for
// windows longer than 64 bytes: the ⌈m/64⌉-word peq table (256·w words,
// the dominant kernel memory) built once per window.
type myersBlockPrepared struct {
	peq     []uint64
	w, m    int
	lastBit uint64
}

func (p *myersBlockPrepared) WindowLen() int { return p.m }

func (p *myersBlockPrepared) NewState() Kernel[byte] {
	s := &myersBlockState{p: p, pv: make([]uint64, p.w), mv: make([]uint64, p.w)}
	s.Reset()
	return s
}

// myersBlockState carries the per-worker delta vectors (2·w words — a
// fraction of the shared peq table's 256·w).
type myersBlockState struct {
	p      *myersBlockPrepared
	pv, mv []uint64
	score  int
}

func (k *myersBlockState) Feed(c byte) float64 {
	p := k.p
	w := p.w
	row := p.peq[int(c)*w : int(c)*w+w]
	hin := 1
	for i := 0; i < w-1; i++ {
		k.pv[i], k.mv[i], hin, _ = myersStep(k.pv[i], k.mv[i], row[i], hin, 0)
	}
	var sd int
	k.pv[w-1], k.mv[w-1], _, sd = myersStep(k.pv[w-1], k.mv[w-1], row[w-1], hin, p.lastBit)
	k.score += sd
	return float64(k.score)
}

func (k *myersBlockState) Reset() {
	for i := range k.pv {
		k.pv[i] = ^uint64(0)
		k.mv[i] = 0
	}
	k.score = k.p.m
}

func (k *myersBlockState) Rebind(p Prepared[byte]) bool {
	mp, ok := p.(*myersBlockPrepared)
	if !ok {
		return false
	}
	k.p = mp
	if cap(k.pv) < mp.w {
		k.pv = make([]uint64, mp.w)
		k.mv = make([]uint64, mp.w)
	} else {
		k.pv = k.pv[:mp.w]
		k.mv = k.mv[:mp.w]
	}
	k.Reset()
	return true
}

// myersPrepare builds the incremental Levenshtein kernel preprocessing for
// window w, choosing the single-word or block form by pattern length.
func myersPrepare(w []byte) Prepared[byte] {
	switch {
	case len(w) == 0:
		return levenshteinPrepare(w)
	case len(w) <= 64:
		p := &myersPrepared64{m: len(w), last: 1 << uint(len(w)-1)}
		for i, c := range w {
			p.peq[c] |= 1 << uint(i)
		}
		return p
	default:
		nw := (len(w) + 63) >> 6
		p := &myersBlockPrepared{
			peq: make([]uint64, 256*nw),
			w:   nw, m: len(w),
			lastBit: 1 << uint((len(w)-1)&63),
		}
		for i, c := range w {
			p.peq[int(c)*nw+(i>>6)] |= 1 << uint(i&63)
		}
		return p
	}
}

// LevenshteinFastMeasure is LevenshteinFast bundled with the Levenshtein
// properties (same function, faster evaluation): a consistent metric, with
// the bit-parallel incremental kernel and banded early abandoning.
func LevenshteinFastMeasure() Measure[byte] {
	return Measure[byte]{
		Name:    "levenshtein-fast",
		Fn:      LevenshteinFast,
		Props:   Properties{Consistent: true, Metric: true, LockStep: false},
		Prepare: myersPrepare,
		Bounded: levenshteinFastBounded,
	}
}

func init() {
	RegisterBuiltin(LevenshteinFastMeasure(),
		"unit-cost edit distance via Myers' bit-parallel recurrence")
}
