package store

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Background snapshot scheduling. PR 6 gave the store crash-safe
// persistence on demand (SnapshotFile) and on SIGTERM; a serving process
// also needs it on a clock, so that losing the process loses at most one
// interval of ingest. The scheduler below snapshots periodically, retries
// transient write failures with jittered exponential backoff (a full disk
// or flaky volume at tick time should not cost the whole interval), and
// surfaces its health as counters for /stats — a snapshot loop that fails
// silently is worse than none.

// SchedulerStats is a point-in-time snapshot of a snapshot scheduler's
// health, surfaced by subseqctl serve's /stats endpoint.
type SchedulerStats struct {
	// IntervalMillis echoes the configured period.
	IntervalMillis int64 `json:"interval_ms"`
	// Snapshots counts successful background snapshots; Retries counts
	// transient failures that were retried; Failures counts snapshot
	// rounds abandoned after exhausting retries.
	Snapshots int64 `json:"snapshots"`
	Retries   int64 `json:"retries"`
	Failures  int64 `json:"failures"`
	// LastSuccessUnix is when the newest on-disk snapshot landed (unix
	// seconds, 0 before the first); LastError is the most recent write
	// failure, cleared by the next success.
	LastSuccessUnix int64  `json:"last_success_unix,omitempty"`
	LastError       string `json:"last_error,omitempty"`
}

// Scheduler is a running background snapshot loop; Stop ends it.
type Scheduler struct {
	interval time.Duration
	snap     func() error
	cfg      schedConfig
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	snapshots atomic.Int64
	retries   atomic.Int64
	failures  atomic.Int64
	lastOK    atomic.Int64
	lastErr   atomic.Pointer[string]
}

// SchedulerOption tunes ScheduleSnapshots.
type SchedulerOption func(*schedConfig)

type schedConfig struct {
	retries int
	backoff time.Duration
	maxWait time.Duration
	onError func(error)
}

// WithSnapshotRetries sets how many times one snapshot round retries a
// transient failure before giving up until the next tick (default 3;
// values < 0 disable retrying).
func WithSnapshotRetries(n int) SchedulerOption {
	return func(c *schedConfig) {
		if n >= 0 {
			c.retries = n
		} else {
			c.retries = 0
		}
	}
}

// WithSnapshotBackoff sets the first retry delay and its cap; delays
// double per retry with ±25 % jitter so a fleet of servers does not
// hammer shared storage in lockstep (defaults 250ms, 5s).
func WithSnapshotBackoff(first, max time.Duration) SchedulerOption {
	return func(c *schedConfig) {
		if first > 0 {
			c.backoff = first
		}
		if max >= c.backoff {
			c.maxWait = max
		}
	}
}

// WithSnapshotOnError installs a callback invoked with every snapshot
// write failure (retried or final) — the serving daemon logs them.
func WithSnapshotOnError(fn func(error)) SchedulerOption {
	return func(c *schedConfig) { c.onError = fn }
}

// ScheduleSnapshots starts a background loop that writes a crash-safe
// snapshot of the store to path (via SnapshotFile: temp + sync + rename)
// every interval, retrying transient failures with jittered exponential
// backoff. The returned Scheduler reports health through Stats; Stop ends
// the loop and waits for any in-flight round to finish. Snapshots hold
// the store's read lock, so they run concurrently with queries and wait
// only for mutations in flight.
func (s *Store[E]) ScheduleSnapshots(path string, interval time.Duration, opts ...SchedulerOption) (*Scheduler, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("store: snapshot interval %v is not positive", interval)
	}
	cfg := schedConfig{retries: 3, backoff: 250 * time.Millisecond, maxWait: 5 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	sc := &Scheduler{
		interval: interval,
		snap:     func() error { return s.SnapshotFile(path) },
		cfg:      cfg,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go func() {
		defer close(sc.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-sc.stop:
				return
			case <-t.C:
				sc.runOnce()
			}
		}
	}()
	return sc, nil
}

// runOnce performs one snapshot round: try, then retry with backoff until
// success, retry exhaustion, or Stop.
func (sc *Scheduler) runOnce() {
	cfg := sc.cfg
	wait := cfg.backoff
	for attempt := 0; ; attempt++ {
		err := sc.snap()
		if err == nil {
			sc.snapshots.Add(1)
			sc.lastOK.Store(time.Now().Unix())
			sc.lastErr.Store(nil)
			return
		}
		if cfg.onError != nil {
			cfg.onError(err)
		}
		msg := err.Error()
		sc.lastErr.Store(&msg)
		if attempt >= cfg.retries {
			sc.failures.Add(1)
			return
		}
		sc.retries.Add(1)
		// ±25 % jitter, doubling up to the cap.
		d := wait + time.Duration(rand.Int64N(int64(wait)/2+1)) - wait/4
		select {
		case <-sc.stop:
			return
		case <-time.After(d):
		}
		if wait *= 2; wait > cfg.maxWait {
			wait = cfg.maxWait
		}
	}
}

// Stop ends the loop and waits for an in-flight snapshot round to finish.
// Idempotent.
func (sc *Scheduler) Stop() {
	sc.stopOnce.Do(func() { close(sc.stop) })
	<-sc.done
}

// Stats snapshots the scheduler's health counters.
func (sc *Scheduler) Stats() SchedulerStats {
	st := SchedulerStats{
		IntervalMillis:  sc.interval.Milliseconds(),
		Snapshots:       sc.snapshots.Load(),
		Retries:         sc.retries.Load(),
		Failures:        sc.failures.Load(),
		LastSuccessUnix: sc.lastOK.Load(),
	}
	if msg := sc.lastErr.Load(); msg != nil {
		st.LastError = *msg
	}
	return st
}
