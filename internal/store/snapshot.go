package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/seq"
)

// Snapshot wire format, version 1. Everything is little-endian and the
// whole stream is covered by a trailing CRC32 (IEEE), so any single-byte
// corruption is caught before a damaged index reaches a serving process.
//
//	offset  size  field
//	0       8     magic "SSNAPv1\0"
//	8       4     header length H (uint32, ≤ 1 MiB)
//	12      H     header (gob-encoded Header)
//	...     8     sequence block length S (uint64, ≤ 4 GiB)
//	...     S     sequences (gob-encoded []seq.Sequence[E], tombstones
//	              listed in Header.Tombstones — the decoder re-nils them)
//	...     8     TTL block length T (uint64, ≤ 4 GiB)
//	...     T     TTL table (gob-encoded []ttlEntry, sorted by SeqID)
//	...     8     index block length I (uint64, ≤ 4 GiB)
//	...     I     serialised index (refnet.Save bytes; I = 0 for backends
//	              with no serialised form, which Open rebuilds from the
//	              sequences)
//	...     4     CRC32-IEEE of every preceding byte
//
// The header names the measure, element type, backend and every
// construction parameter; Open refuses a snapshot whose header does not
// match the session it is being opened under (see MismatchError), so a
// byte-identical index can never be silently reinterpreted under a
// different distance.
const (
	snapMagic = "SSNAPv1\x00"

	// FormatVersion is the snapshot format version this build writes and
	// the only one it accepts.
	FormatVersion = 1

	maxHeaderBytes = 1 << 20
	maxBlockBytes  = 1 << 32
)

// Header is the snapshot's self-description: enough to reconstruct the
// matcher configuration and to refuse restoration under a mismatched
// session. Parameter fields hold the values the store was configured
// with (0 meaning "the default", exactly as in core.Config).
type Header struct {
	Version    int
	Measure    string // measure name (dist.Measure.Name)
	Elem       string // element type: "byte", "float64", "point2"
	Backend    string // index backend: "refnet", "covertree", "mv", "linear"
	Lambda     int
	Lambda0    int
	WindowLen  int // derived λ/2, for display
	Base       float64
	MaxParents int
	MVRefs     int
	Seed       uint64
	Sequences  int   // sequence IDs allocated (including tombstones)
	Live       int   // non-tombstoned sequences
	Windows    int   // indexed windows at snapshot time
	Tombstones []int // retired sequence IDs
}

// ttlEntry is one row of the serialised TTL table.
type ttlEntry struct {
	SeqID  int
	Expire int64 // unix nanoseconds
}

// CorruptError reports a snapshot stream that cannot be decoded: it
// carries the byte offset at which decoding failed and the reason.
type CorruptError struct {
	Offset int64
	Reason string
	Err    error
}

func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("store: corrupt snapshot at offset %d: %s: %v", e.Offset, e.Reason, e.Err)
	}
	return fmt.Sprintf("store: corrupt snapshot at offset %d: %s", e.Offset, e.Reason)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// MismatchError reports a well-formed snapshot that belongs to a
// different session: a field of its header disagrees with what the
// opener requires. Restoring anyway would silently reinterpret the index
// under the wrong distance or parameters, so Open refuses with the
// field, the snapshot's value and the required value spelled out.
type MismatchError struct {
	Field string // which header field disagrees
	Got   string // the snapshot's value
	Want  string // the opener's value
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("store: snapshot was taken under %s %q but this session requires %q; rebuild or open under the matching session", e.Field, e.Got, e.Want)
}

// parseBackend maps a header backend name to its core.IndexKind.
func parseBackend(name string) (core.IndexKind, bool) {
	for _, k := range []core.IndexKind{core.IndexRefNet, core.IndexCoverTree, core.IndexMV, core.IndexLinearScan} {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// crcWriter tees writes through a running CRC32 and tracks the offset.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
	off int64
}

func newCRCWriter(w io.Writer) *crcWriter {
	return &crcWriter{w: w, crc: crc32.NewIEEE()}
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc.Write(p[:n])
	cw.off += int64(n)
	return n, err
}

// crcReader tees reads through a running CRC32 and tracks the offset,
// minting CorruptErrors that carry it.
type crcReader struct {
	r   io.Reader
	crc hash.Hash32
	off int64
}

func newCRCReader(r io.Reader) *crcReader {
	return &crcReader{r: r, crc: crc32.NewIEEE()}
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc.Write(p[:n])
	cr.off += int64(n)
	return n, err
}

func (cr *crcReader) corrupt(reason string, err error) *CorruptError {
	return &CorruptError{Offset: cr.off, Reason: reason, Err: err}
}

// readBlock reads exactly n bytes, growing the buffer with the bytes
// actually present so a corrupt length claim cannot pre-allocate gigabytes.
func (cr *crcReader) readBlock(n int64, what string) ([]byte, error) {
	var buf bytes.Buffer
	copied, err := io.Copy(&buf, io.LimitReader(cr, n))
	if err != nil {
		return nil, cr.corrupt(fmt.Sprintf("reading %s", what), err)
	}
	if copied != n {
		return nil, cr.corrupt(fmt.Sprintf("%s truncated: %d of %d bytes", what, copied, n), io.ErrUnexpectedEOF)
	}
	return buf.Bytes(), nil
}

// header builds the store's self-description. Caller holds at least the
// read lock.
func (s *Store[E]) header() Header {
	db := s.mt.DB()
	h := Header{
		Version:    FormatVersion,
		Measure:    s.measure.Name,
		Elem:       dist.ElemName[E](),
		Backend:    s.cfg.Index.String(),
		Lambda:     s.cfg.Params.Lambda,
		Lambda0:    s.cfg.Params.Lambda0,
		WindowLen:  s.cfg.Params.WindowLen(),
		Base:       s.cfg.Base,
		MaxParents: s.cfg.MaxParents,
		MVRefs:     s.cfg.MVRefs,
		Seed:       s.cfg.Seed,
		Sequences:  len(db),
		Windows:    s.mt.NumWindows(),
	}
	for id, x := range db {
		if x == nil {
			h.Tombstones = append(h.Tombstones, id)
		} else {
			h.Live++
		}
	}
	return h
}

// writeSnapshot emits the full snapshot stream. Caller holds at least
// the read lock.
func (s *Store[E]) writeSnapshot(w io.Writer) error {
	cw := newCRCWriter(w)
	if _, err := cw.Write([]byte(snapMagic)); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}

	writeGob32 := func(v any, what string) error {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			return fmt.Errorf("store: snapshot: encoding %s: %w", what, err)
		}
		if err := binary.Write(cw, binary.LittleEndian, uint32(buf.Len())); err != nil {
			return fmt.Errorf("store: snapshot: %w", err)
		}
		_, err := cw.Write(buf.Bytes())
		return err
	}
	writeGob64 := func(v any, what string) error {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			return fmt.Errorf("store: snapshot: encoding %s: %w", what, err)
		}
		if err := binary.Write(cw, binary.LittleEndian, uint64(buf.Len())); err != nil {
			return fmt.Errorf("store: snapshot: %w", err)
		}
		_, err := cw.Write(buf.Bytes())
		return err
	}

	if err := writeGob32(s.header(), "header"); err != nil {
		return err
	}
	if err := writeGob64(s.mt.DB(), "sequences"); err != nil {
		return err
	}
	ttls := make([]ttlEntry, 0, len(s.expiry))
	for id, deadline := range s.expiry {
		ttls = append(ttls, ttlEntry{SeqID: id, Expire: deadline.UnixNano()})
	}
	// Sort so identical store states produce identical snapshot bytes.
	for i := 1; i < len(ttls); i++ {
		for j := i; j > 0 && ttls[j].SeqID < ttls[j-1].SeqID; j-- {
			ttls[j], ttls[j-1] = ttls[j-1], ttls[j]
		}
	}
	if err := writeGob64(ttls, "ttl table"); err != nil {
		return err
	}

	var index bytes.Buffer
	if s.cfg.Index == core.IndexRefNet {
		if err := s.mt.SaveIndex(&index); err != nil {
			return fmt.Errorf("store: snapshot: %w", err)
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, uint64(index.Len())); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if _, err := cw.Write(index.Bytes()); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}

	if err := binary.Write(w, binary.LittleEndian, cw.crc.Sum32()); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	return nil
}

// ReadHeader decodes and returns just the snapshot header from r,
// without restoring anything — the inspection path (subseqctl and the
// registry use it to explain what a snapshot contains, and to refuse
// mismatched restores before any decoding work happens). The stream CRC
// is NOT verified (that requires reading the whole stream; Open does).
func ReadHeader(r io.Reader) (Header, error) {
	cr := newCRCReader(r)
	h, err := readHeader(cr)
	if err != nil {
		return Header{}, err
	}
	return h, nil
}

func readHeader(cr *crcReader) (Header, error) {
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return Header{}, cr.corrupt("reading magic", err)
	}
	if string(magic) != snapMagic {
		return Header{}, &CorruptError{Offset: 0, Reason: fmt.Sprintf("bad magic %q (not a snapshot stream)", magic)}
	}
	var hlen uint32
	if err := binary.Read(cr, binary.LittleEndian, &hlen); err != nil {
		return Header{}, cr.corrupt("reading header length", err)
	}
	if hlen > maxHeaderBytes {
		return Header{}, cr.corrupt(fmt.Sprintf("header length %d exceeds cap %d", hlen, maxHeaderBytes), nil)
	}
	hbytes, err := cr.readBlock(int64(hlen), "header")
	if err != nil {
		return Header{}, err
	}
	var h Header
	if err := gob.NewDecoder(bytes.NewReader(hbytes)).Decode(&h); err != nil {
		return Header{}, cr.corrupt("decoding header", err)
	}
	if h.Version != FormatVersion {
		return Header{}, &CorruptError{Offset: cr.off, Reason: fmt.Sprintf("snapshot format version %d; this build reads version %d", h.Version, FormatVersion)}
	}
	return h, nil
}

// readBlock64 reads a uint64-framed block.
func (cr *crcReader) readBlock64(what string) ([]byte, error) {
	var blen uint64
	if err := binary.Read(cr, binary.LittleEndian, &blen); err != nil {
		return nil, cr.corrupt(fmt.Sprintf("reading %s length", what), err)
	}
	if blen > maxBlockBytes {
		return nil, cr.corrupt(fmt.Sprintf("%s length %d exceeds cap %d", what, blen, maxBlockBytes), nil)
	}
	return cr.readBlock(int64(blen), what)
}

// Open restores a Store from a snapshot stream written by Snapshot,
// under the measure m. The snapshot header is validated first: the
// element type and measure name must match m, and check (if non-nil) may
// impose further requirements — the registry passes a check that holds
// the header against the resolved session spec, so a mismatched restore
// is refused with the offending field explained rather than producing a
// silently wrong index. For the reference-net backend the index
// structure is decoded, not rebuilt: restoring computes zero distances.
func Open[E any](r io.Reader, m dist.Measure[E], check func(Header) error, opts ...Option) (*Store[E], error) {
	cr := newCRCReader(r)
	h, err := readHeader(cr)
	if err != nil {
		return nil, err
	}
	if elem := dist.ElemName[E](); h.Elem != elem {
		return nil, &MismatchError{Field: "element type", Got: h.Elem, Want: elem}
	}
	if h.Measure != m.Name {
		return nil, &MismatchError{Field: "measure", Got: h.Measure, Want: m.Name}
	}
	kind, ok := parseBackend(h.Backend)
	if !ok {
		return nil, &CorruptError{Offset: cr.off, Reason: fmt.Sprintf("unknown backend %q", h.Backend)}
	}
	if check != nil {
		if err := check(h); err != nil {
			return nil, err
		}
	}

	sbytes, err := cr.readBlock64("sequence block")
	if err != nil {
		return nil, err
	}
	var db []seq.Sequence[E]
	if err := gob.NewDecoder(bytes.NewReader(sbytes)).Decode(&db); err != nil {
		return nil, cr.corrupt("decoding sequences", err)
	}
	if len(db) != h.Sequences {
		return nil, cr.corrupt(fmt.Sprintf("header claims %d sequences, block holds %d", h.Sequences, len(db)), nil)
	}
	for _, id := range h.Tombstones {
		if id < 0 || id >= len(db) {
			return nil, cr.corrupt(fmt.Sprintf("tombstone id %d out of range [0,%d)", id, len(db)), nil)
		}
		db[id] = nil
	}

	tbytes, err := cr.readBlock64("TTL block")
	if err != nil {
		return nil, err
	}
	var ttls []ttlEntry
	if err := gob.NewDecoder(bytes.NewReader(tbytes)).Decode(&ttls); err != nil {
		return nil, cr.corrupt("decoding TTL table", err)
	}
	for _, e := range ttls {
		if e.SeqID < 0 || e.SeqID >= len(db) || db[e.SeqID] == nil {
			return nil, cr.corrupt(fmt.Sprintf("TTL entry for absent sequence %d", e.SeqID), nil)
		}
	}

	ibytes, err := cr.readBlock64("index block")
	if err != nil {
		return nil, err
	}

	// Verify the stream checksum before building anything from it.
	sum := cr.crc.Sum32()
	var stored uint32
	if err := binary.Read(cr, binary.LittleEndian, &stored); err != nil {
		return nil, cr.corrupt("reading checksum", err)
	}
	if stored != sum {
		return nil, cr.corrupt(fmt.Sprintf("checksum mismatch: stream %08x, computed %08x", stored, sum), nil)
	}

	cfg := core.Config{
		Params:     core.Params{Lambda: h.Lambda, Lambda0: h.Lambda0},
		Index:      kind,
		Base:       h.Base,
		MaxParents: h.MaxParents,
		MVRefs:     h.MVRefs,
		Seed:       h.Seed,
	}
	var mt *core.Matcher[E]
	switch {
	case kind == core.IndexRefNet:
		if len(ibytes) == 0 {
			return nil, &CorruptError{Offset: cr.off, Reason: "refnet snapshot has no index block"}
		}
		mt, err = core.NewMatcherFromSavedIndex(m, cfg, db, bytes.NewReader(ibytes))
	default:
		// Backends with no serialised form rebuild from the sequences.
		mt, err = core.NewMatcher(m, cfg, db)
	}
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	if mt.NumWindows() != h.Windows {
		return nil, fmt.Errorf("store: open: restored index holds %d windows, header claims %d", mt.NumWindows(), h.Windows)
	}
	s := adopt(m, cfg, mt, opts...)
	for _, e := range ttls {
		s.expiry[e.SeqID] = time.Unix(0, e.Expire)
	}
	return s, nil
}

// OpenFile is Open over a snapshot file.
func OpenFile[E any](path string, m dist.Measure[E], check func(Header) error, opts ...Option) (*Store[E], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	defer f.Close()
	return Open(f, m, check, opts...)
}

// Quarantine moves a snapshot that failed to restore out of the way —
// renamed to path + ".corrupt" — so the serving process can fall back to
// a fresh build without the next restart tripping over the same bad
// bytes, while keeping them on disk for forensics. An existing
// quarantined file at the target is overwritten (the newest corpse is
// the interesting one). Returns the quarantine path.
func Quarantine(path string) (string, error) {
	dst := path + ".corrupt"
	if err := os.Rename(path, dst); err != nil {
		return "", fmt.Errorf("store: quarantine %s: %w", path, err)
	}
	return dst, nil
}
