package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/seq"
)

func randSeq(rng *rand.Rand, n int) seq.Sequence[byte] {
	s := make(seq.Sequence[byte], n)
	for i := range s {
		s[i] = byte('A' + rng.Intn(4))
	}
	return s
}

func randDB(rng *rand.Rand, n, minLen, maxLen int) []seq.Sequence[byte] {
	db := make([]seq.Sequence[byte], n)
	for i := range db {
		db[i] = randSeq(rng, minLen+rng.Intn(maxLen-minLen+1))
	}
	return db
}

var testCfg = core.Config{Params: core.Params{Lambda: 12, Lambda0: 2}, MVRefs: 3}

func testStore(t *testing.T, kind core.IndexKind, opts ...Option) (*Store[byte], []seq.Sequence[byte], *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	db := randDB(rng, 8, 24, 40)
	cfg := testCfg
	cfg.Index = kind
	s, err := New(dist.LevenshteinMeasure[byte](), cfg, db, opts...)
	if err != nil {
		t.Fatalf("%v: New: %v", kind, err)
	}
	return s, db, rng
}

func sameMatches(t *testing.T, label string, got, want []core.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// A snapshot taken after live mutation restores to a store that answers
// bit-identically, without recomputing distances on the refnet backend.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, kind := range []core.IndexKind{core.IndexRefNet, core.IndexCoverTree, core.IndexMV, core.IndexLinearScan} {
		s, _, rng := testStore(t, kind)
		if _, err := s.Append(randSeq(rng, 30)); err != nil {
			t.Fatalf("%v: append: %v", kind, err)
		}
		if kind != core.IndexCoverTree {
			if _, err := s.Retire(2); err != nil {
				t.Fatalf("%v: retire: %v", kind, err)
			}
		}
		q := randSeq(rng, 26)
		const eps = 3
		want := s.Matcher().FindAll(q, eps)

		var buf bytes.Buffer
		if err := s.Snapshot(&buf); err != nil {
			t.Fatalf("%v: snapshot: %v", kind, err)
		}
		restored, err := Open(bytes.NewReader(buf.Bytes()), dist.LevenshteinMeasure[byte](), nil)
		if err != nil {
			t.Fatalf("%v: open: %v", kind, err)
		}
		sameMatches(t, fmt.Sprintf("%v restored", kind), restored.Matcher().FindAll(q, eps), want)
		if kind == core.IndexRefNet {
			if calls := restored.Matcher().BuildDistanceCalls(); calls != 0 {
				t.Errorf("refnet restore computed %d build distances, want 0", calls)
			}
		}
		ids, live := restored.Len()
		wantIDs, wantLive := s.Len()
		if ids != wantIDs || live != wantLive {
			t.Fatalf("%v: restored Len = (%d,%d), want (%d,%d)", kind, ids, live, wantIDs, wantLive)
		}
		// The restored store is live: mutate and query it.
		if _, err := restored.Append(randSeq(rng, 28)); err != nil {
			t.Fatalf("%v: append after restore: %v", kind, err)
		}
		if kind != core.IndexCoverTree {
			if _, err := restored.Retire(0); err != nil {
				t.Fatalf("%v: retire after restore: %v", kind, err)
			}
		}
	}
}

// ReadHeader describes a snapshot without restoring it.
func TestReadHeader(t *testing.T) {
	s, db, _ := testStore(t, core.IndexRefNet)
	if _, err := s.Retire(1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHeader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Measure != "levenshtein" || h.Elem != "byte" || h.Backend != "refnet" {
		t.Fatalf("header = %+v", h)
	}
	if h.Lambda != 12 || h.Lambda0 != 2 || h.WindowLen != 6 {
		t.Fatalf("header params = %+v", h)
	}
	if h.Sequences != len(db) || h.Live != len(db)-1 || len(h.Tombstones) != 1 || h.Tombstones[0] != 1 {
		t.Fatalf("header census = %+v", h)
	}
}

// Open refuses mismatched sessions with the offending field explained.
func TestOpenMismatchRejections(t *testing.T) {
	s, _, _ := testStore(t, core.IndexRefNet)
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	var mm *MismatchError
	if _, err := Open(bytes.NewReader(buf.Bytes()), dist.WeightedEditMeasure(), nil); !errors.As(err, &mm) {
		t.Fatalf("wrong measure: %v, want MismatchError", err)
	} else if mm.Field != "measure" {
		t.Fatalf("wrong measure rejected as %q", mm.Field)
	}
	if _, err := Open(bytes.NewReader(buf.Bytes()), dist.ERPMeasure(dist.AbsDiff, 0), nil); !errors.As(err, &mm) {
		t.Fatalf("wrong element type: %v, want MismatchError", err)
	} else if mm.Field != "element type" {
		t.Fatalf("wrong element type rejected as %q", mm.Field)
	}
	sentinel := errors.New("spec says no")
	if _, err := Open(bytes.NewReader(buf.Bytes()), dist.LevenshteinMeasure[byte](), func(Header) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("check rejection: %v, want sentinel", err)
	}
}

// Every truncation and every byte flip is caught: truncations as typed
// CorruptErrors, flips as some refusal (flips ahead of the checksum can
// surface as explained mismatches; none may restore silently).
func TestOpenCorruption(t *testing.T) {
	s, _, _ := testStore(t, core.IndexRefNet)
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	lev := dist.LevenshteinMeasure[byte]()

	for cut := 0; cut < len(blob); cut += 13 {
		_, err := Open(bytes.NewReader(blob[:cut]), lev, nil)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncation at %d: %v, want CorruptError", cut, err)
		}
		if ce.Offset < 0 || ce.Offset > int64(cut) {
			t.Fatalf("truncation at %d: offset witness %d out of range", cut, ce.Offset)
		}
	}
	for pos := 0; pos < len(blob); pos += 7 {
		mangled := append([]byte(nil), blob...)
		mangled[pos] ^= 0x40
		if _, err := Open(bytes.NewReader(mangled), lev, nil); err == nil {
			t.Fatalf("flip at %d restored silently", pos)
		}
	}
}

// TTL'd sequences are retired by Sweep once the injected clock passes
// their deadline, and deadlines survive a snapshot/restore.
func TestTTLSweep(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	s, db, rng := testStore(t, core.IndexRefNet, WithClock(now))

	res, err := s.Append(randSeq(rng, 30), WithTTL(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if retired, err := s.Sweep(); err != nil || len(retired) != 0 {
		t.Fatalf("premature sweep: %v, %v", retired, err)
	}

	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Open(bytes.NewReader(buf.Bytes()), dist.LevenshteinMeasure[byte](), nil, WithClock(now))
	if err != nil {
		t.Fatal(err)
	}
	if exp := restored.Expiries(); len(exp) != 1 || !exp[res.SeqID].Equal(clock.Add(10*time.Second)) {
		t.Fatalf("restored expiries = %v", exp)
	}

	clock = clock.Add(11 * time.Second)
	for _, st := range []*Store[byte]{s, restored} {
		retired, err := st.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		if len(retired) != 1 || retired[0] != res.SeqID {
			t.Fatalf("sweep retired %v, want [%d]", retired, res.SeqID)
		}
		if ids, live := st.Len(); ids != len(db)+1 || live != len(db) {
			t.Fatalf("after sweep Len = (%d,%d)", ids, live)
		}
		if retired, err := st.Sweep(); err != nil || len(retired) != 0 {
			t.Fatalf("second sweep: %v, %v", retired, err)
		}
	}
}

// SnapshotFile lands atomically and OpenFile restores it.
func TestSnapshotFile(t *testing.T) {
	s, _, rng := testStore(t, core.IndexRefNet)
	path := filepath.Join(t.TempDir(), "idx.snap")
	if err := s.SnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenFile(path, dist.LevenshteinMeasure[byte](), nil)
	if err != nil {
		t.Fatal(err)
	}
	q := randSeq(rng, 24)
	sameMatches(t, "file restore", restored.Matcher().FindAll(q, 3), s.Matcher().FindAll(q, 3))
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("snapshot left %d files in dir, want 1", len(ents))
	}
}

// Queries, appends, retires and snapshots interleave safely: the view
// guard drains in-flight query claims before each mutation. Run with
// -race; results are checked for internal consistency at the end.
func TestConcurrentMutationAndQueries(t *testing.T) {
	s, db, rng := testStore(t, core.IndexRefNet)
	pool := s.NewQueryPool(2)
	queries := make([]seq.Sequence[byte], 6)
	for i := range queries {
		queries[i] = randSeq(rng, 24)
	}
	extra := make([]seq.Sequence[byte], 12)
	for i := range extra {
		extra[i] = randSeq(rng, 26+i)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pool.FindAll([]seq.Sequence[byte]{queries[(g+i)%len(queries)]}, 3)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			pool.Submit(context.Background(), queries[i%len(queries)], 3).Await(context.Background())
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, x := range extra {
			if _, err := s.Append(x); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := s.Retire(i); err != nil {
				t.Errorf("retire %d: %v", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			var buf bytes.Buffer
			if err := s.Snapshot(&buf); err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
			if _, err := Open(bytes.NewReader(buf.Bytes()), dist.LevenshteinMeasure[byte](), nil); err != nil {
				t.Errorf("open mid-flight snapshot: %v", err)
				return
			}
		}
	}()

	// Let the mutators finish, then stop the query loops.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	go func() {
		time.Sleep(200 * time.Millisecond)
		close(stop)
	}()
	<-done
	pool.Close()

	// The settled store answers exactly like a rebuild over its final
	// database.
	final := append([]seq.Sequence[byte](nil), db...)
	final = append(final, extra...)
	for i := 0; i < 3; i++ {
		final[i] = nil
	}
	cfg := testCfg
	cfg.Index = core.IndexRefNet
	rebuilt, err := core.NewMatcher(dist.LevenshteinMeasure[byte](), cfg, final)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		got := sortedPairs(s.Matcher().FindAll(q, 3))
		want := sortedPairs(rebuilt.FindAll(q, 3))
		if len(got) != len(want) {
			t.Fatalf("query %d: %d matches after settle, rebuild finds %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("query %d match %d: %+v vs rebuild %+v", i, j, got[j], want[j])
			}
		}
	}
}

// sortedPairs canonicalises a match list for order-insensitive
// comparison (retire re-homes refnet orphans, so traversal order may
// differ from a fresh build while the match set is identical).
func sortedPairs(ms []core.Match) []core.Match {
	out := append([]core.Match(nil), ms...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b core.Match) bool {
	if a.SeqID != b.SeqID {
		return a.SeqID < b.SeqID
	}
	if a.XStart != b.XStart {
		return a.XStart < b.XStart
	}
	if a.XEnd != b.XEnd {
		return a.XEnd < b.XEnd
	}
	if a.QStart != b.QStart {
		return a.QStart < b.QStart
	}
	if a.QEnd != b.QEnd {
		return a.QEnd < b.QEnd
	}
	return a.Dist < b.Dist
}
