// Package store owns the live index lifecycle: a Store wraps a built
// Matcher and adds what a long-lived serving process needs on top of
// one-shot construction — streaming ingest (Append), deletion (Retire,
// with optional TTLs swept by Sweep) and zero-downtime persistence
// (Snapshot/Open, a versioned checksummed format described in
// docs/PERSISTENCE.md).
//
// # Consistency model
//
// The core Matcher's lifecycle methods mutate shared state and are not
// safe under concurrent queries; the Store is the tier that makes them
// safe. Every query runs as a guarded reader: the serving pool resolves
// the matcher through View (core.MatcherView), which takes the store's
// read lock for exactly one unit of query work — one batch-barrier call
// or one streaming claim. Mutations (Append, Retire, Sweep) take the
// write lock, so they wait only for claims already in flight — queries
// drain, the mutation applies, and the next claim sees the new index.
// Snapshot takes the read lock: it runs concurrently with queries and
// blocks only mutations, so the bytes written are one consistent view.
//
// Matcher returns the current matcher through an atomic pointer without
// touching the lock — the stats-peek path for monitoring handlers that
// must not queue behind a mutation.
package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/seq"
)

// Store is a live, mutable, persistable index over a sequence database.
// All methods are safe for concurrent use.
type Store[E any] struct {
	measure dist.Measure[E]
	cfg     core.Config

	mu  sync.RWMutex
	mt  *core.Matcher[E]
	cur atomic.Pointer[core.Matcher[E]]

	// expiry maps seqID → wall-clock deadline for sequences appended
	// with a TTL; Sweep retires the ones past due.
	expiry map[int]time.Time
	now    func() time.Time

	// snapshotWrap, when non-nil, wraps the temp-file writer used by
	// SnapshotFile — a test hook that simulates mid-write crashes (disk
	// full, process kill) to prove the previous snapshot survives.
	snapshotWrap func(io.Writer) io.Writer
}

// Option configures a Store at construction.
type Option func(*storeConfig)

type storeConfig struct {
	now func() time.Time
}

// WithClock substitutes the wall clock used for TTL bookkeeping (tests
// inject a fake clock; production uses time.Now).
func WithClock(now func() time.Time) Option {
	return func(c *storeConfig) { c.now = now }
}

// New builds a Store over db, constructing the underlying matcher.
func New[E any](m dist.Measure[E], cfg core.Config, db []seq.Sequence[E], opts ...Option) (*Store[E], error) {
	mt, err := core.NewMatcher(m, cfg, db)
	if err != nil {
		return nil, err
	}
	return adopt(m, cfg, mt, opts...), nil
}

// adopt wraps an already-built matcher.
func adopt[E any](m dist.Measure[E], cfg core.Config, mt *core.Matcher[E], opts ...Option) *Store[E] {
	sc := storeConfig{now: time.Now}
	for _, o := range opts {
		o(&sc)
	}
	s := &Store[E]{
		measure: m,
		cfg:     cfg,
		mt:      mt,
		expiry:  make(map[int]time.Time),
		now:     sc.now,
	}
	s.cur.Store(mt)
	return s
}

// Matcher returns the current matcher without taking the store lock
// (atomic peek). The returned matcher must only be used for read-only
// inspection (stats, counters); to answer queries against a consistent
// view, go through View or a pool built with NewQueryPool.
func (s *Store[E]) Matcher() *core.Matcher[E] { return s.cur.Load() }

// View pins the current matcher for one unit of query work and returns
// it with a release function; it implements core.MatcherView. Mutations
// wait for all outstanding views to release.
func (s *Store[E]) View() (*core.Matcher[E], func()) {
	s.mu.RLock()
	return s.mt, s.mu.RUnlock
}

// NewQueryPool returns a query pool whose every batch call and streaming
// claim resolves the store's current matcher under its read guard — the
// serving loop's entry point (see core.NewQueryPoolView).
func (s *Store[E]) NewQueryPool(workers int, opts ...core.PoolOption) *core.QueryPool[E] {
	return core.NewQueryPoolView(s.View, workers, opts...)
}

// AppendOption configures one Append.
type AppendOption func(*appendConfig)

type appendConfig struct {
	ttl time.Duration
}

// WithTTL schedules the appended sequence for retirement once d has
// elapsed; Sweep (called by the owner, typically on a timer) performs
// the retirement.
func WithTTL(d time.Duration) AppendOption {
	return func(c *appendConfig) { c.ttl = d }
}

// AppendResult reports what an Append did.
type AppendResult struct {
	SeqID   int
	Windows int // windows inserted into the index (λ/2-length full windows)
}

// Append inserts x into the live index. In-flight queries drain first;
// queries submitted after Append returns see the extended database
// exactly as if it had been indexed from scratch.
func (s *Store[E]) Append(x seq.Sequence[E], opts ...AppendOption) (AppendResult, error) {
	var ac appendConfig
	for _, o := range opts {
		o(&ac)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id, added, err := s.mt.AppendSequence(x)
	if err != nil {
		return AppendResult{}, err
	}
	if ac.ttl > 0 {
		s.expiry[id] = s.now().Add(ac.ttl)
	}
	s.cur.Store(s.mt)
	return AppendResult{SeqID: id, Windows: added}, nil
}

// Retire removes sequence seqID from the live index (tombstoning its ID)
// after draining in-flight queries. Backends with no deletion operation
// (the cover tree) return core.ErrRetireUnsupported.
func (s *Store[E]) Retire(seqID int) (removed int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retireLocked(seqID)
}

func (s *Store[E]) retireLocked(seqID int) (removed int, err error) {
	removed, err = s.mt.RetireSequence(seqID)
	if err != nil {
		return 0, err
	}
	delete(s.expiry, seqID)
	s.cur.Store(s.mt)
	return removed, nil
}

// Sweep retires every sequence whose TTL has expired, returning the IDs
// retired. The first retirement error aborts the sweep (already-retired
// IDs are still reported).
func (s *Store[E]) Sweep() (retired []int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	due := make([]int, 0, len(s.expiry))
	for id, deadline := range s.expiry {
		if !deadline.After(now) {
			due = append(due, id)
		}
	}
	sort.Ints(due)
	for _, id := range due {
		if _, err := s.retireLocked(id); err != nil {
			return retired, fmt.Errorf("store: sweep: retire %d: %w", id, err)
		}
		retired = append(retired, id)
	}
	return retired, nil
}

// Expiries returns the live TTL table (seqID → deadline), for stats.
func (s *Store[E]) Expiries() map[int]time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[int]time.Time, len(s.expiry))
	for id, t := range s.expiry {
		out[id] = t
	}
	return out
}

// Snapshot writes a versioned, checksummed snapshot of the store — raw
// sequences, TTL table and (for the reference-net backend) the serialised
// index — to w. It holds the read lock: concurrent queries proceed,
// mutations wait, and the bytes written are one consistent view. Open
// restores it.
func (s *Store[E]) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.writeSnapshot(w)
}

// SnapshotFile snapshots into path atomically: the bytes land in a
// temporary file in the same directory, synced, then renamed over path —
// a crash mid-write never leaves a truncated snapshot behind.
func (s *Store[E]) SnapshotFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	var w io.Writer = tmp
	if s.snapshotWrap != nil {
		w = s.snapshotWrap(tmp)
	}
	if err := s.Snapshot(w); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	return nil
}

// Len reports the number of sequence IDs allocated (including retired
// tombstones) and the number of live sequences.
func (s *Store[E]) Len() (ids, live int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	db := s.mt.DB()
	ids = len(db)
	for _, x := range db {
		if x != nil {
			live++
		}
	}
	return ids, live
}
