package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// The scheduler snapshots on a clock, the file restores to a
// bit-identical store, and Stop is idempotent.
func TestScheduleSnapshotsPeriodic(t *testing.T) {
	s, _, rng := testStore(t, core.IndexRefNet)
	path := filepath.Join(t.TempDir(), "live.snap")

	sc, err := s.ScheduleSnapshots(path, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "first snapshot", func() bool { return sc.Stats().Snapshots >= 1 })

	// Mutate, then wait for a tick that must capture the mutation.
	if _, err := s.Append(randSeq(rng, 30)); err != nil {
		t.Fatal(err)
	}
	after := sc.Stats().Snapshots
	waitFor(t, 5*time.Second, "post-append snapshot", func() bool { return sc.Stats().Snapshots >= after+2 })
	sc.Stop()
	sc.Stop() // idempotent

	st := sc.Stats()
	if st.Failures != 0 || st.LastError != "" {
		t.Fatalf("scheduler saw failures: %+v", st)
	}
	if st.LastSuccessUnix == 0 {
		t.Fatalf("LastSuccessUnix not recorded: %+v", st)
	}

	q := randSeq(rng, 26)
	const eps = 3
	want := s.Matcher().FindAll(q, eps)
	restored, err := OpenFile(path, dist.LevenshteinMeasure[byte](), nil)
	if err != nil {
		t.Fatal(err)
	}
	sameMatches(t, "restored from scheduled snapshot", restored.Matcher().FindAll(q, eps), want)
	ids, live := restored.Len()
	wantIDs, wantLive := s.Len()
	if ids != wantIDs || live != wantLive {
		t.Fatalf("restored Len = (%d,%d), want (%d,%d)", ids, live, wantIDs, wantLive)
	}
}

// A transient write failure (target directory missing) is retried with
// backoff inside the same round and recovers without losing the tick.
func TestScheduleSnapshotsRetryRecovers(t *testing.T) {
	s, _, _ := testStore(t, core.IndexLinearScan)
	dir := filepath.Join(t.TempDir(), "not-yet")
	path := filepath.Join(dir, "live.snap")

	var once sync.Once
	var seen []string
	var mu sync.Mutex
	sc, err := s.ScheduleSnapshots(path, 5*time.Millisecond,
		WithSnapshotRetries(10),
		WithSnapshotBackoff(2*time.Millisecond, 10*time.Millisecond),
		WithSnapshotOnError(func(err error) {
			mu.Lock()
			seen = append(seen, err.Error())
			mu.Unlock()
			// Heal the fault after the first failure: the same round's
			// retry should then succeed.
			once.Do(func() { os.MkdirAll(dir, 0o755) })
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "snapshot after recovery", func() bool { return sc.Stats().Snapshots >= 1 })
	sc.Stop()

	st := sc.Stats()
	if st.Retries == 0 {
		t.Fatalf("expected retries, got %+v", st)
	}
	if st.LastError != "" {
		t.Fatalf("LastError should clear on success: %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 || !strings.Contains(seen[0], "snapshot") {
		t.Fatalf("onError saw %q", seen)
	}
	if _, err := OpenFile(path, dist.LevenshteinMeasure[byte](), nil); err != nil {
		t.Fatalf("restore after recovery: %v", err)
	}
}

func TestScheduleSnapshotsRejectsBadInterval(t *testing.T) {
	s, _, _ := testStore(t, core.IndexLinearScan)
	if _, err := s.ScheduleSnapshots("x", 0); err == nil {
		t.Fatal("interval 0 accepted")
	}
}

// failAfter fails with errBoom once n bytes have been written — the
// mid-write crash shape (disk full, process kill) for SnapshotFile.
type failAfter struct {
	w io.Writer
	n int
}

var errBoom = errors.New("injected write failure")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errBoom
	}
	if len(p) > f.n {
		p = p[:f.n]
		n, err := f.w.Write(p)
		f.n -= n
		if err != nil {
			return n, err
		}
		return n, errBoom
	}
	n, err := f.w.Write(p)
	f.n -= n
	return n, err
}

// A crash halfway through writing a new snapshot must leave the previous
// snapshot byte-identical on disk and no temp litter behind — the
// write-to-temp + rename contract.
func TestSnapshotFileMidWriteCrashLeavesPreviousIntact(t *testing.T) {
	s, _, rng := testStore(t, core.IndexRefNet)
	dir := t.TempDir()
	path := filepath.Join(dir, "live.snap")

	if err := s.SnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate so the next snapshot would differ, then crash it mid-write.
	if _, err := s.Append(randSeq(rng, 30)); err != nil {
		t.Fatal(err)
	}
	s.snapshotWrap = func(w io.Writer) io.Writer { return &failAfter{w: w, n: len(before) / 2} }
	if err := s.SnapshotFile(path); !errors.Is(err, errBoom) {
		t.Fatalf("SnapshotFile error = %v, want errBoom", err)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Fatal("previous snapshot bytes changed after mid-write crash")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "live.snap" {
			t.Fatalf("temp litter left behind: %s", e.Name())
		}
	}

	// The surviving snapshot still restores; the healed store snapshots
	// the mutation on the next attempt.
	if _, err := OpenFile(path, dist.LevenshteinMeasure[byte](), nil); err != nil {
		t.Fatalf("restore of surviving snapshot: %v", err)
	}
	s.snapshotWrap = nil
	if err := s.SnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenFile(path, dist.LevenshteinMeasure[byte](), nil)
	if err != nil {
		t.Fatal(err)
	}
	ids, live := restored.Len()
	wantIDs, wantLive := s.Len()
	if ids != wantIDs || live != wantLive {
		t.Fatalf("healed snapshot Len = (%d,%d), want (%d,%d)", ids, live, wantIDs, wantLive)
	}
}

// A corrupt snapshot fails restore with a CorruptError and Quarantine
// moves it aside so a fresh build can proceed.
func TestQuarantineCorruptSnapshot(t *testing.T) {
	s, _, _ := testStore(t, core.IndexRefNet)
	dir := t.TempDir()
	path := filepath.Join(dir, "live.snap")
	if err := s.SnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-10] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = OpenFile(path, dist.LevenshteinMeasure[byte](), nil)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("restore of corrupt snapshot: %v, want CorruptError", err)
	}

	qpath, err := Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if qpath != path+".corrupt" {
		t.Fatalf("quarantine path = %q", qpath)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("original still present: %v", err)
	}
	moved, err := os.ReadFile(qpath)
	if err != nil {
		t.Fatal(err)
	}
	if string(moved) != string(raw) {
		t.Fatal("quarantined bytes differ from the corrupt snapshot")
	}
	if _, err := Quarantine(path); err == nil {
		t.Fatal("quarantining a missing file should fail")
	}
}
