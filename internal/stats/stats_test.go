package stats

import (
	"math"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, v := range []float64{0.5, 1.5, 1.6, 9.9} {
		h.Add(v)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total != 4 {
		t.Errorf("Total = %d", h.Total)
	}
	if got := h.Fraction(1); got != 0.5 {
		t.Errorf("Fraction(1) = %v", got)
	}
	if got := h.BinCenter(0); got != 0.5 {
		t.Errorf("BinCenter(0) = %v", got)
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(99)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Errorf("edge clamping failed: %v", h.Counts)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5} {
		h.Add(v)
	}
	for i, want := range []float64{0.25, 0.5, 0.75, 1} {
		if got := h.CDF(i); math.Abs(got-want) > 1e-12 {
			t.Errorf("CDF(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestHistogramInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestSparkline(t *testing.T) {
	h := NewHistogram(0, 3, 3)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	line := []rune(h.Sparkline())
	if len(line) != 3 {
		t.Fatalf("sparkline length %d", len(line))
	}
	if line[2] != ' ' {
		t.Errorf("empty bin should render as space, got %q", line[2])
	}
	if line[1] != '█' {
		t.Errorf("fullest bin should render as full block, got %q", line[1])
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("Std = %v, want sqrt(2)", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestSampleDistances(t *testing.T) {
	items := []float64{0, 1, 2, 3, 4}
	d := func(a, b float64) float64 { return math.Abs(a - b) }
	sample := SampleDistances(items, d, 100, 1)
	if len(sample) != 100 {
		t.Fatalf("sample size %d", len(sample))
	}
	for _, v := range sample {
		if v <= 0 || v > 4 {
			t.Errorf("impossible distance %v (identical pairs must be excluded)", v)
		}
	}
	if got := SampleDistances(items[:1], d, 10, 1); got != nil {
		t.Errorf("single item should yield nil, got %v", got)
	}
	// Determinism.
	s2 := SampleDistances(items, d, 100, 1)
	for i := range sample {
		if sample[i] != s2[i] {
			t.Fatal("same seed produced different samples")
		}
	}
}
