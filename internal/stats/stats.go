// Package stats provides the small statistics toolkit the experiment
// harness needs: histograms of pairwise distance samples (Figure 4 and the
// distribution overlays of Figures 10 and 12) and summary statistics.
package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
)

// Histogram is a fixed-bin histogram over [Min, Max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	// Total counts all observations, including out-of-range ones (clamped
	// into the edge bins).
	Total int
}

// NewHistogram creates a histogram with n bins spanning [min, max].
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic(fmt.Sprintf("stats: invalid histogram spec [%v,%v] n=%d", min, max, n))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, n)}
}

// Add records an observation; out-of-range values land in the edge bins.
func (h *Histogram) Add(v float64) {
	i := int(float64(len(h.Counts)) * (v - h.Min) / (h.Max - h.Min))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.Total++
}

// Fraction returns the share of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + w*(float64(i)+0.5)
}

// CDF returns the cumulative fraction of observations at or below the
// upper edge of bin i.
func (h *Histogram) CDF(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	c := 0
	for j := 0; j <= i && j < len(h.Counts); j++ {
		c += h.Counts[j]
	}
	return float64(c) / float64(h.Total)
}

// Sparkline renders the histogram as a one-line unicode bar chart, for
// terminal output of Figure 4.
func (h *Histogram) Sparkline() string {
	const ramp = " ▁▂▃▄▅▆▇█"
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return strings.Repeat(" ", len(h.Counts))
	}
	var b strings.Builder
	for _, c := range h.Counts {
		idx := c * (len([]rune(ramp)) - 1) / max
		b.WriteRune([]rune(ramp)[idx])
	}
	return b.String()
}

// Summary holds basic summary statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max         float64
	P25, Median, P75 float64
}

// Summarize computes summary statistics (the input is not modified).
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	var sum, sumSq float64
	for _, v := range s {
		sum += v
		sumSq += v * v
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	q := func(p float64) float64 {
		i := int(p * float64(len(s)-1))
		return s[i]
	}
	return Summary{
		N: len(s), Mean: mean, Std: math.Sqrt(variance),
		Min: s[0], Max: s[len(s)-1],
		P25: q(0.25), Median: q(0.5), P75: q(0.75),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f p25=%.3f med=%.3f p75=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.P25, s.Median, s.P75, s.Max)
}

// SampleDistances draws `pairs` random distinct pairs from items and
// returns their distances — the estimator behind the paper's distance
// distribution plots (Figure 4).
func SampleDistances[T any](items []T, dist func(a, b T) float64, pairs int, seed uint64) []float64 {
	if len(items) < 2 {
		return nil
	}
	rng := rand.New(rand.NewPCG(seed, 0x5a))
	out := make([]float64, 0, pairs)
	for len(out) < pairs {
		i := rng.IntN(len(items))
		j := rng.IntN(len(items))
		if i == j {
			continue
		}
		out = append(out, dist(items[i], items[j]))
	}
	return out
}
