// Package data provides seeded synthetic generators for the three dataset
// families of the paper's evaluation (Section 8):
//
//   - PROTEINS — strings over the 20-letter amino-acid alphabet, queried
//     with the Levenshtein distance (the paper used UniProt sequences);
//   - SONGS — pitch-class time series with values 0..11, queried with the
//     discrete Fréchet distance and ERP (the paper used the Million Song
//     Dataset);
//   - TRAJ — 2-D trajectories from a simulated parking lot, queried with
//     DFD and ERP (the paper used video-tracked trajectories [37]).
//
// The generators are substitutes for the paper's proprietary datasets; they
// are engineered to reproduce the property each experiment depends on —
// the distance distribution shape (Figure 4) and the presence of repeated
// similar segments. See DESIGN.md §4 for the substitution rationale.
//
// All generators are deterministic in their seed.
package data

import (
	"math"
	"math/rand/v2"

	"repro/internal/seq"
)

// Dataset bundles generated sequences with their fixed-length windows.
type Dataset[E any] struct {
	// Name identifies the dataset family ("proteins", "songs", "traj").
	Name string
	// Sequences are the raw database sequences.
	Sequences []seq.Sequence[E]
	// Windows are the λ/2-length windows of all sequences, the unit the
	// indexes store.
	Windows []seq.Window[E]
	// WindowLen is the window length used (the paper uses l = 20
	// throughout).
	WindowLen int
}

// aminoAcids is the 20-letter protein alphabet.
const aminoAcids = "ACDEFGHIKLMNPQRSTVWY"

// aaBackground approximates natural amino-acid background frequencies
// (per mille, Swiss-Prot order as in aminoAcids). Using a realistic skew
// matters: it sets the mode of the Levenshtein distance distribution
// between random windows (Figure 4, left).
var aaBackground = [20]float64{
	83, 14, 55, 67, 39, 71, 23, 59, 58, 97,
	24, 41, 47, 39, 55, 66, 53, 69, 11, 29,
}

// Proteins generates protein-like strings totalling at least numWindows
// windows of length windowLen. Sequences are stitched from three kinds of
// window-aligned segments, mimicking real protein architecture:
//
//   - domain copies: segments drawn from a shared template pool, point-
//     mutated at a per-copy rate between 5 % and 45 % — protein families
//     share domains at varying evolutionary distance, which is what puts
//     probability mass across the whole 2..20 Levenshtein range in the
//     paper's Figure 4 rather than concentrating it near the maximum;
//   - low-complexity runs: repeats of a short unit (real proteins have
//     poly-Q/poly-A runs and tandem repeats), contributing very low
//     distances;
//   - random linkers drawn from the natural background composition,
//     contributing the high-distance mode.
//
// A uniform random corpus would concentrate all pairwise distances in a
// band of 2–3 values, which both misrepresents the paper's data and
// degenerates every metric index (no hierarchy exists under distance
// concentration).
func Proteins(numWindows, windowLen int, seed uint64) Dataset[byte] {
	rng := rand.New(rand.NewPCG(seed, 0xa0))
	cum := cumulative(aaBackground[:])

	randRun := func(n int) []byte {
		m := make([]byte, n)
		for j := range m {
			m[j] = aminoAcids[sample(rng, cum)]
		}
		return m
	}

	// Domain template pool: 12 templates of 2–3 windows.
	templates := make([][]byte, 12)
	for i := range templates {
		templates[i] = randRun(windowLen * (2 + rng.IntN(2)))
	}

	const seqWindows = 20 // sequence length: 20 windows ≈ 400 residues
	numSeqs := (numWindows + seqWindows - 1) / seqWindows
	db := make([]seq.Sequence[byte], numSeqs)
	for i := range db {
		s := make(seq.Sequence[byte], 0, seqWindows*windowLen)
		for len(s) < seqWindows*windowLen {
			switch r := rng.Float64(); {
			case r < 0.55: // domain copy at a random evolutionary distance
				tpl := templates[rng.IntN(len(templates))]
				mu := 0.05 + rng.Float64()*0.40
				cp := make([]byte, len(tpl))
				for j, c := range tpl {
					if rng.Float64() < mu {
						c = aminoAcids[sample(rng, cum)]
					}
					cp[j] = c
				}
				s = append(s, cp...)
			case r < 0.70: // low-complexity repeat run
				unit := randRun(1 + rng.IntN(4))
				n := windowLen * (1 + rng.IntN(2))
				for len(unit) < n {
					unit = append(unit, unit...)
				}
				run := append([]byte(nil), unit[:n]...)
				for j := range run {
					if rng.Float64() < 0.05 {
						run[j] = aminoAcids[sample(rng, cum)]
					}
				}
				s = append(s, run...)
			default: // random linker
				s = append(s, randRun(windowLen*(1+rng.IntN(2)))...)
			}
		}
		db[i] = s[:seqWindows*windowLen]
	}
	return Dataset[byte]{
		Name:      "proteins",
		Sequences: db,
		Windows:   firstN(seq.PartitionAll(db, windowLen), numWindows),
		WindowLen: windowLen,
	}
}

// majorScale is the pitch-class set of the major scale.
var majorScale = [7]int{0, 2, 4, 5, 7, 9, 11}

// Songs generates melodic pitch-class sequences (values 0..11, stored as
// float64) totalling at least numWindows windows. Melodies are random
// walks over a key's scale degrees with occasional leaps, organised into
// repeated phrases — bounded values concentrate the discrete Fréchet
// distance into a narrow band while ERP, which sums costs, stays spread
// out (the contrast behind Figures 4 and 6).
func Songs(numWindows, windowLen int, seed uint64) Dataset[float64] {
	rng := rand.New(rand.NewPCG(seed, 0x50))
	const seqWindows = 10 // song length: 10 windows ≈ 200 notes
	numSeqs := (numWindows + seqWindows - 1) / seqWindows
	db := make([]seq.Sequence[float64], numSeqs)
	for i := range db {
		key := rng.IntN(12)
		// A phrase of 2 windows, repeated with variation.
		phraseLen := 2 * windowLen
		phrase := make([]float64, phraseLen)
		deg := rng.IntN(7)
		for j := range phrase {
			step := rng.IntN(5) - 2 // mostly small scale steps
			if rng.Float64() < 0.1 {
				step = rng.IntN(9) - 4 // occasional leap
			}
			deg = ((deg+step)%7 + 7) % 7
			phrase[j] = float64((majorScale[deg] + key) % 12)
		}
		s := make(seq.Sequence[float64], seqWindows*windowLen)
		for j := 0; j < len(s); j += phraseLen {
			for k := 0; k < phraseLen && j+k < len(s); k++ {
				v := phrase[k]
				if rng.Float64() < 0.15 { // ornament / variation
					d := ((int(v)+rng.IntN(5)-2)%12 + 12) % 12
					v = float64(d)
				}
				s[j+k] = v
			}
		}
		db[i] = s
	}
	return Dataset[float64]{
		Name:      "songs",
		Sequences: db,
		Windows:   firstN(seq.PartitionAll(db, windowLen), numWindows),
		WindowLen: windowLen,
	}
}

// Trajectories generates 2-D parking-lot trajectories totalling at least
// numWindows windows. Agents enter at a gate, drive along the main aisle,
// turn into one of several lanes and proceed to a parking spot, with speed
// variation and lateral noise; different spots and speeds give the
// wide-variance distance distribution of the paper's TRAJ dataset
// (Figures 4 and 7).
func Trajectories(numWindows, windowLen int, seed uint64) Dataset[seq.Point2] {
	rng := rand.New(rand.NewPCG(seed, 0x77))
	const seqWindows = 8 // a trajectory is ≈ 8 windows of samples
	numSeqs := (numWindows + seqWindows - 1) / seqWindows
	db := make([]seq.Sequence[seq.Point2], numSeqs)
	for i := range db {
		n := seqWindows * windowLen
		s := make(seq.Sequence[seq.Point2], 0, n)
		lane := float64(10 + rng.IntN(8)*10) // lane x-coordinate: 10..80
		spot := 10 + rng.Float64()*60        // spot y-coordinate
		gate := seq.Point2{X: rng.Float64() * 4, Y: rng.Float64() * 4}
		speed := 0.8 + rng.Float64()*1.2 // units per sample
		noise := func() float64 { return rng.NormFloat64() * 0.35 }

		pos := gate
		// Leg 1: along the aisle (y ≈ gate.Y) to the lane entrance.
		// Leg 2: up the lane (x ≈ lane) to the spot.
		target := []seq.Point2{{X: lane, Y: gate.Y}, {X: lane, Y: spot}}
		ti := 0
		for len(s) < n {
			dx, dy := target[ti].X-pos.X, target[ti].Y-pos.Y
			dist := dx*dx + dy*dy
			if dist < speed*speed {
				if ti+1 < len(target) {
					ti++
					continue
				}
				// Parked: idle with small jitter until the trajectory
				// reaches full length.
				s = append(s, seq.Point2{X: pos.X + noise()*0.3, Y: pos.Y + noise()*0.3})
				continue
			}
			norm := speed / math.Sqrt(dist)
			pos = seq.Point2{X: pos.X + dx*norm, Y: pos.Y + dy*norm}
			s = append(s, seq.Point2{X: pos.X + noise(), Y: pos.Y + noise()})
		}
		db[i] = s
	}
	return Dataset[seq.Point2]{
		Name:      "traj",
		Sequences: db,
		Windows:   firstN(seq.PartitionAll(db, windowLen), numWindows),
		WindowLen: windowLen,
	}
}

// RandomQuery produces a query by copying a random database subsequence of
// the given length and applying point mutations at the given rate using
// mutate. This mirrors the paper's query workload: "random queries of size
// similar to the smallest proteins in the dataset".
func RandomQuery[E any](ds Dataset[E], length int, mutationRate float64,
	mutate func(rng *rand.Rand, e E) E, seed uint64) seq.Sequence[E] {
	rng := rand.New(rand.NewPCG(seed, 0x9))
	for tries := 0; tries < 100; tries++ {
		s := ds.Sequences[rng.IntN(len(ds.Sequences))]
		if len(s) < length {
			continue
		}
		at := rng.IntN(len(s) - length + 1)
		q := make(seq.Sequence[E], length)
		copy(q, s[at:at+length])
		for i := range q {
			if rng.Float64() < mutationRate {
				q[i] = mutate(rng, q[i])
			}
		}
		return q
	}
	panic("data: no database sequence long enough for the requested query length")
}

// MutateAA substitutes a random amino acid.
func MutateAA(rng *rand.Rand, _ byte) byte { return aminoAcids[rng.IntN(20)] }

// MutatePitch substitutes a random pitch class.
func MutatePitch(rng *rand.Rand, _ float64) float64 { return float64(rng.IntN(12)) }

// MutatePoint jitters a trajectory point.
func MutatePoint(rng *rand.Rand, p seq.Point2) seq.Point2 {
	return seq.Point2{X: p.X + rng.NormFloat64(), Y: p.Y + rng.NormFloat64()}
}

// cumulative turns weights into a cumulative distribution.
func cumulative(w []float64) []float64 {
	out := make([]float64, len(w))
	var sum float64
	for i, v := range w {
		sum += v
		out[i] = sum
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// sample draws an index from a cumulative distribution.
func sample(rng *rand.Rand, cum []float64) int {
	u := rng.Float64()
	for i, c := range cum {
		if u <= c {
			return i
		}
	}
	return len(cum) - 1
}

func firstN[E any](wins []seq.Window[E], n int) []seq.Window[E] {
	if len(wins) > n {
		return wins[:n]
	}
	return wins
}
