package data

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/dist"
	"repro/internal/seq"
)

// By-name dataset loaders. The generators above are generic in their element
// type, so naming one with a string (a CLI flag, a config entry) needs a
// bridge from the name to the concrete instantiation; these functions are
// that bridge, the dataset counterpart of the measure catalog in
// internal/dist. Each family has a fixed element type, reported by ElemOf
// with the same names the catalog uses ("byte", "float64", "point2").

// DatasetNames lists the dataset families, in display order.
func DatasetNames() []string { return []string{"proteins", "songs", "traj"} }

// ElemOf names the element type of the dataset family, or ok=false for an
// unknown family.
func ElemOf(name string) (elem string, ok bool) {
	switch name {
	case "proteins":
		return "byte", true
	case "songs":
		return "float64", true
	case "traj":
		return "point2", true
	default:
		return "", false
	}
}

// Generate builds the named dataset at element type E. It fails when the
// name is unknown or names a family of a different element type.
func Generate[E any](name string, numWindows, windowLen int, seed uint64) (Dataset[E], error) {
	var ds Dataset[E]
	elem, ok := ElemOf(name)
	if !ok {
		return ds, fmt.Errorf("data: unknown dataset %q (datasets: proteins, songs, traj)", name)
	}
	if want := dist.ElemName[E](); elem != want {
		return ds, fmt.Errorf("data: dataset %q has element type %s, not %s", name, elem, want)
	}
	switch out := any(&ds).(type) {
	case *Dataset[byte]:
		*out = Proteins(numWindows, windowLen, seed)
	case *Dataset[float64]:
		*out = Songs(numWindows, windowLen, seed)
	case *Dataset[seq.Point2]:
		*out = Trajectories(numWindows, windowLen, seed)
	}
	return ds, nil
}

// MutatorFor returns the query point-mutation function of the named dataset
// family at element type E, for use with RandomQuery.
func MutatorFor[E any](name string) (func(rng *rand.Rand, e E) E, error) {
	elem, ok := ElemOf(name)
	if !ok {
		return nil, fmt.Errorf("data: unknown dataset %q (datasets: proteins, songs, traj)", name)
	}
	if want := dist.ElemName[E](); elem != want {
		return nil, fmt.Errorf("data: dataset %q has element type %s, not %s", name, elem, want)
	}
	var fn any
	switch elem {
	case "byte":
		fn = MutateAA
	case "float64":
		fn = MutatePitch
	case "point2":
		fn = MutatePoint
	}
	return fn.(func(rng *rand.Rand, e E) E), nil
}
