package data

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/refnet"
	"repro/internal/seq"
	"repro/internal/stats"
)

func TestProteinsShape(t *testing.T) {
	ds := Proteins(500, 20, 1)
	if len(ds.Windows) < 500 {
		t.Fatalf("got %d windows, want ≥ 500", len(ds.Windows))
	}
	if ds.WindowLen != 20 {
		t.Errorf("WindowLen = %d", ds.WindowLen)
	}
	for _, s := range ds.Sequences {
		for _, c := range s {
			if !strings.ContainsRune(aminoAcids, rune(c)) {
				t.Fatalf("non-amino-acid byte %q in sequence", c)
			}
		}
	}
	for _, w := range ds.Windows {
		if len(w.Data) != 20 {
			t.Fatalf("window length %d", len(w.Data))
		}
	}
}

func TestProteinsDeterministic(t *testing.T) {
	a := Proteins(100, 20, 7)
	b := Proteins(100, 20, 7)
	for i := range a.Sequences {
		if string(a.Sequences[i]) != string(b.Sequences[i]) {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := Proteins(100, 20, 8)
	same := true
	for i := range a.Sequences {
		if string(a.Sequences[i]) != string(c.Sequences[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestProteinsHaveMotifStructure(t *testing.T) {
	// Motif planting must create some low-distance window pairs: the
	// minimum sampled pairwise Levenshtein distance should be well below
	// the random-window mode (≈ 0.6–0.8 of the window length).
	ds := Proteins(2000, 20, 3)
	lev := dist.Levenshtein[byte]()
	ws := ds.Windows
	min, max := 20.0, 0.0
	for i := 0; i < 4000; i++ {
		a, b := ws[(i*7919)%len(ws)], ws[(i*104729+13)%len(ws)]
		if a.SeqID == b.SeqID && a.Ord == b.Ord {
			continue
		}
		d := lev(a.Data, b.Data)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min > 8 {
		t.Errorf("no similar window pairs found (min distance %v); motif planting ineffective", min)
	}
	if max < 12 {
		t.Errorf("max distance %v suspiciously low; corpus lacks diversity", max)
	}
}

func TestSongsShape(t *testing.T) {
	ds := Songs(300, 20, 2)
	if len(ds.Windows) < 300 {
		t.Fatalf("got %d windows", len(ds.Windows))
	}
	for _, s := range ds.Sequences {
		for _, v := range s {
			if v < 0 || v > 11 || v != float64(int(v)) {
				t.Fatalf("pitch %v outside 0..11", v)
			}
		}
	}
}

func TestSongsDFDSkewedERPSpread(t *testing.T) {
	// The paper's key observation (Figure 4): bounded pitches make the
	// DFD distribution narrow while ERP spreads out. Compare coefficients
	// of variation over the same window sample.
	ds := Songs(2000, 20, 4)
	dfd := dist.DiscreteFrechet(dist.AbsDiff)
	erp := dist.ERP(dist.AbsDiff, 0)
	var dfdSample, erpSample []float64
	ws := ds.Windows
	for i := 0; i < 3000; i++ {
		a, b := ws[(i*7919)%len(ws)], ws[(i*104729+13)%len(ws)]
		dfdSample = append(dfdSample, dfd(a.Data, b.Data))
		erpSample = append(erpSample, erp(a.Data, b.Data))
	}
	ds1 := stats.Summarize(dfdSample)
	ds2 := stats.Summarize(erpSample)
	// DFD values live in a narrow band (bounded by the pitch range 11);
	// ERP values range over a much wider span.
	if ds1.Max-ds1.Min >= ds2.Max-ds2.Min {
		t.Errorf("DFD spread %.2f not narrower than ERP spread %.2f",
			ds1.Max-ds1.Min, ds2.Max-ds2.Min)
	}
	if ds1.Max > 11 {
		t.Errorf("DFD on pitch classes cannot exceed 11, got %v", ds1.Max)
	}
}

func TestSongsDFDProducesMoreParentsThanERP(t *testing.T) {
	// The downstream property behind Figure 6: the concentrated DFD
	// distribution makes reference-net nodes acquire more parents than
	// the spread-out ERP distribution does on the same windows.
	ds := Songs(1500, 20, 4)
	avgParents := func(d func(a, b []float64) float64) float64 {
		net := refnet.New(func(a, b seq.Window[float64]) float64 { return d(a.Data, b.Data) })
		for _, w := range ds.Windows {
			net.Insert(w)
		}
		return net.Stats().AvgParents
	}
	dfdParents := avgParents(dist.DiscreteFrechet(dist.AbsDiff))
	erpParents := avgParents(dist.ERP(dist.AbsDiff, 0))
	if dfdParents <= erpParents {
		t.Errorf("DFD avg parents %.2f not above ERP %.2f; SONGS corpus lacks the paper's skew contrast",
			dfdParents, erpParents)
	}
	t.Logf("avg parents: DFD %.2f vs ERP %.2f", dfdParents, erpParents)
}

func TestTrajectoriesShape(t *testing.T) {
	ds := Trajectories(300, 20, 5)
	if len(ds.Windows) < 300 {
		t.Fatalf("got %d windows", len(ds.Windows))
	}
	for _, s := range ds.Sequences {
		for _, p := range s {
			if p.X < -10 || p.X > 110 || p.Y < -10 || p.Y > 110 {
				t.Fatalf("point %v outside the lot", p)
			}
		}
	}
	// Trajectories must actually move.
	s := ds.Sequences[0]
	d := dist.Point2Dist(s[0], s[len(s)-1])
	if d < 5 {
		t.Errorf("trajectory barely moves: start-end distance %v", d)
	}
}

func TestTrajDistanceSpreadWide(t *testing.T) {
	// TRAJ distances must have high variance for both DFD and ERP
	// (Figure 7's premise: wide-spread distances → few parents).
	ds := Trajectories(1000, 20, 6)
	dfd := dist.DiscreteFrechet(dist.Point2Dist)
	ws := ds.Windows
	var sample []float64
	for i := 0; i < 2000; i++ {
		a, b := ws[(i*7919)%len(ws)], ws[(i*104729+13)%len(ws)]
		sample = append(sample, dfd(a.Data, b.Data))
	}
	s := stats.Summarize(sample)
	if s.Std/s.Mean < 0.3 {
		t.Errorf("TRAJ DFD distances too concentrated: %v", s)
	}
}

func TestRandomQuery(t *testing.T) {
	ds := Proteins(200, 20, 9)
	q := RandomQuery(ds, 60, 0.1, MutateAA, 11)
	if len(q) != 60 {
		t.Fatalf("query length %d", len(q))
	}
	q2 := RandomQuery(ds, 60, 0.1, MutateAA, 11)
	if string(q) != string(q2) {
		t.Error("same seed produced different queries")
	}
	for _, c := range q {
		if !strings.ContainsRune(aminoAcids, rune(c)) {
			t.Fatalf("query contains non-amino-acid %q", c)
		}
	}
}
