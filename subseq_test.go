package subseq_test

import (
	"testing"

	subseq "repro"
)

// The root package is a facade; these tests pin its public surface and
// exercise one end-to-end path per feature area. Algorithmic depth is
// tested in the internal packages.

func TestPublicAPIEndToEnd(t *testing.T) {
	db := []subseq.Sequence[byte]{
		subseq.Sequence[byte]("AAAABBBBCCCCDDDDEEEEFFFF"),
		subseq.Sequence[byte]("XXXXCCCCDDDDEEEEYYYYZZZZ"),
	}
	q := subseq.Sequence[byte]("PPPPCCCCDDDDEEEEQQQQ")
	mt, err := subseq.NewMatcher(
		subseq.LevenshteinMeasure[byte](),
		subseq.Config{Params: subseq.Params{Lambda: 8, Lambda0: 1}},
		db,
	)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := mt.Longest(q, 0)
	if !ok {
		t.Fatal("no match for shared run")
	}
	if got := string(q[m.QStart:m.QEnd]); got != string(db[m.SeqID][m.XStart:m.XEnd]) {
		t.Errorf("exact match differs: %q vs %q", got, db[m.SeqID][m.XStart:m.XEnd])
	}
	if m.QLen() < 12 {
		t.Errorf("longest exact match %d, want ≥ 12 (CCCCDDDDEEEE)", m.QLen())
	}

	if _, ok := mt.Nearest(q, subseq.NearestOptions{EpsMax: 8, EpsInc: 1}); !ok {
		t.Error("nearest found nothing")
	}
	if all := mt.FindAll(q, 0); len(all) == 0 {
		t.Error("FindAll found nothing at eps=0")
	}

	oracle, err := subseq.NewBruteForce(subseq.LevenshteinMeasure[byte](),
		subseq.Params{Lambda: 8, Lambda0: 1}, db)
	if err != nil {
		t.Fatal(err)
	}
	if om, ok := oracle.Longest(q, 0); !ok || om.QLen() != m.QLen() {
		t.Errorf("oracle longest %v vs framework %v", om, m)
	}
}

func TestPublicRefNet(t *testing.T) {
	net := subseq.NewRefNet(subseq.AbsDiff, subseq.WithBase(0.5), subseq.WithMaxParents(3))
	for i := 0; i < 200; i++ {
		net.Insert(float64(i % 50))
	}
	if net.Len() != 200 {
		t.Errorf("Len = %d", net.Len())
	}
	got := net.Range(10, 1.5)
	want := 0
	for i := 0; i < 200; i++ {
		if v := float64(i % 50); v >= 8.5 && v <= 11.5 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("Range returned %d items, want %d", len(got), want)
	}
	if err := net.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPublicDistances(t *testing.T) {
	if d := subseq.LevenshteinFastMeasure().Fn([]byte("kitten"), []byte("sitting")); d != 3 {
		t.Errorf("LevenshteinFast = %v", d)
	}
	erp := subseq.ERPMeasure(subseq.AbsDiff, 0)
	if !erp.Props.Metric || !erp.Props.Consistent {
		t.Error("ERP properties wrong")
	}
	dtw := subseq.DTWMeasure(subseq.AbsDiff)
	if dtw.Props.Metric {
		t.Error("DTW must not be flagged metric")
	}
	v, al := subseq.ERPAlignment(subseq.AbsDiff, 0, []float64{1, 2, 3}, []float64{1, 3})
	if v != 2 || len(al) != 3 {
		t.Errorf("ERPAlignment = %v %v", v, al)
	}
	if !subseq.ConsistentOn(subseq.DiscreteFrechetMeasure(subseq.AbsDiff).Fn,
		[]float64{1, 2, 3, 4}, []float64{2, 2, 4, 4}, 1e-9) {
		t.Error("DFD inconsistent on a small pair")
	}
}

func TestPublicPartitionAndSegments(t *testing.T) {
	x := subseq.Sequence[int]{1, 2, 3, 4, 5, 6, 7}
	wins := subseq.Partition(0, x, 3)
	if len(wins) != 2 {
		t.Errorf("Partition → %d windows", len(wins))
	}
	segs := subseq.Segments(x, 2, 3)
	if len(segs) != 11 {
		t.Errorf("Segments → %d", len(segs))
	}
}

func TestPublicCoverTreeAndMV(t *testing.T) {
	items := make([]float64, 100)
	for i := range items {
		items[i] = float64(i)
	}
	ct := subseq.NewCoverTree(subseq.AbsDiff, 1)
	for _, v := range items {
		ct.Insert(v)
	}
	if got := ct.Range(50, 2); len(got) != 5 {
		t.Errorf("cover tree Range → %d items, want 5", len(got))
	}
	mv, err := subseq.NewMVIndex(items, 4, subseq.AbsDiff)
	if err != nil {
		t.Fatal(err)
	}
	if got := mv.Range(50, 2); len(got) != 5 {
		t.Errorf("MV Range → %d items, want 5", len(got))
	}
}
