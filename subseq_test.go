package subseq_test

import (
	"testing"

	subseq "repro"
)

// The root package is a facade; these tests pin its public surface and
// exercise one end-to-end path per feature area. Algorithmic depth is
// tested in the internal packages.

func TestPublicAPIEndToEnd(t *testing.T) {
	db := []subseq.Sequence[byte]{
		subseq.Sequence[byte]("AAAABBBBCCCCDDDDEEEEFFFF"),
		subseq.Sequence[byte]("XXXXCCCCDDDDEEEEYYYYZZZZ"),
	}
	q := subseq.Sequence[byte]("PPPPCCCCDDDDEEEEQQQQ")
	mt, err := subseq.NewMatcher(
		subseq.LevenshteinMeasure[byte](),
		subseq.Config{Params: subseq.Params{Lambda: 8, Lambda0: 1}},
		db,
	)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := mt.Longest(q, 0)
	if !ok {
		t.Fatal("no match for shared run")
	}
	if got := string(q[m.QStart:m.QEnd]); got != string(db[m.SeqID][m.XStart:m.XEnd]) {
		t.Errorf("exact match differs: %q vs %q", got, db[m.SeqID][m.XStart:m.XEnd])
	}
	if m.QLen() < 12 {
		t.Errorf("longest exact match %d, want ≥ 12 (CCCCDDDDEEEE)", m.QLen())
	}

	if _, ok := mt.Nearest(q, subseq.NearestOptions{EpsMax: 8, EpsInc: 1}); !ok {
		t.Error("nearest found nothing")
	}
	if all := mt.FindAll(q, 0); len(all) == 0 {
		t.Error("FindAll found nothing at eps=0")
	}

	oracle, err := subseq.NewBruteForce(subseq.LevenshteinMeasure[byte](),
		subseq.Params{Lambda: 8, Lambda0: 1}, db)
	if err != nil {
		t.Fatal(err)
	}
	if om, ok := oracle.Longest(q, 0); !ok || om.QLen() != m.QLen() {
		t.Errorf("oracle longest %v vs framework %v", om, m)
	}
}

func TestPublicRefNet(t *testing.T) {
	net := subseq.NewRefNet(subseq.AbsDiff, subseq.WithBase(0.5), subseq.WithMaxParents(3))
	for i := 0; i < 200; i++ {
		net.Insert(float64(i % 50))
	}
	if net.Len() != 200 {
		t.Errorf("Len = %d", net.Len())
	}
	got := net.Range(10, 1.5)
	want := 0
	for i := 0; i < 200; i++ {
		if v := float64(i % 50); v >= 8.5 && v <= 11.5 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("Range returned %d items, want %d", len(got), want)
	}
	if err := net.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPublicDistances(t *testing.T) {
	if d := subseq.LevenshteinFastMeasure().Fn([]byte("kitten"), []byte("sitting")); d != 3 {
		t.Errorf("LevenshteinFast = %v", d)
	}
	erp := subseq.ERPMeasure(subseq.AbsDiff, 0)
	if !erp.Props.Metric || !erp.Props.Consistent {
		t.Error("ERP properties wrong")
	}
	dtw := subseq.DTWMeasure(subseq.AbsDiff)
	if dtw.Props.Metric {
		t.Error("DTW must not be flagged metric")
	}
	v, al := subseq.ERPAlignment(subseq.AbsDiff, 0, []float64{1, 2, 3}, []float64{1, 3})
	if v != 2 || len(al) != 3 {
		t.Errorf("ERPAlignment = %v %v", v, al)
	}
	if !subseq.ConsistentOn(subseq.DiscreteFrechetMeasure(subseq.AbsDiff).Fn,
		[]float64{1, 2, 3, 4}, []float64{2, 2, 4, 4}, 1e-9) {
		t.Error("DFD inconsistent on a small pair")
	}
}

// The capability checks must surface through the public constructor: DTW is
// consistent but not a metric, so every backend except the linear scan must
// reject it; lock-step measures admit no temporal shift, so λ0 must be 0.
func TestPublicMeasureRejections(t *testing.T) {
	db := []subseq.Sequence[float64]{{1, 2, 3, 4, 5, 6, 7, 8}}
	dtw := subseq.DTWMeasure(subseq.AbsDiff)
	p := subseq.Params{Lambda: 4, Lambda0: 1}
	for _, kind := range []subseq.IndexKind{subseq.IndexRefNet, subseq.IndexCoverTree, subseq.IndexMV} {
		if _, err := subseq.NewMatcher(dtw, subseq.Config{Params: p, Index: kind}, db); err == nil {
			t.Errorf("DTW accepted with index %v; want rejection", kind)
		}
	}
	if _, err := subseq.NewMatcher(dtw, subseq.Config{Params: p, Index: subseq.IndexLinearScan}, db); err != nil {
		t.Errorf("DTW rejected with the linear-scan backend: %v", err)
	}

	for _, m := range []subseq.Measure[float64]{
		subseq.EuclideanMeasure(subseq.AbsDiff),
	} {
		if _, err := subseq.NewMatcher(m, subseq.Config{Params: subseq.Params{Lambda: 4, Lambda0: 1}}, db); err == nil {
			t.Errorf("lock-step measure %q accepted with λ0=1; want rejection", m.Name)
		}
		if _, err := subseq.NewMatcher(m, subseq.Config{Params: subseq.Params{Lambda: 4}}, db); err != nil {
			t.Errorf("lock-step measure %q rejected with λ0=0: %v", m.Name, err)
		}
	}
	bdb := []subseq.Sequence[byte]{subseq.Sequence[byte]("ABCDEFGH")}
	if _, err := subseq.NewMatcher(subseq.HammingMeasure[byte](),
		subseq.Config{Params: subseq.Params{Lambda: 4, Lambda0: 1}}, bdb); err == nil {
		t.Error("Hamming accepted with λ0=1; want rejection")
	}
}

// FindInconsistency is the witness-returning variant of ConsistentOn and
// must agree with it.
func TestPublicFindInconsistency(t *testing.T) {
	broken := func(a, b []float64) float64 { return float64(10 - min(len(a), len(b))) }
	q := []float64{1, 2, 3, 4, 5, 6}
	w, bad := subseq.FindInconsistency(broken, q, q, 1e-9)
	if !bad {
		t.Fatal("broken distance passed FindInconsistency")
	}
	if w.Best <= w.Base {
		t.Errorf("witness %+v is not a violation", w)
	}
	if subseq.ConsistentOn(broken, q, q, 1e-9) {
		t.Error("ConsistentOn disagrees with FindInconsistency")
	}
	good := subseq.LevenshteinMeasure[byte]()
	if _, bad := subseq.FindInconsistency(good.Fn, []byte("ABAB"), []byte("ABBA"), 1e-9); bad {
		t.Error("Levenshtein flagged inconsistent")
	}
}

func TestPublicPartitionAndSegments(t *testing.T) {
	x := subseq.Sequence[int]{1, 2, 3, 4, 5, 6, 7}
	wins := subseq.Partition(0, x, 3)
	if len(wins) != 2 {
		t.Errorf("Partition → %d windows", len(wins))
	}
	segs := subseq.Segments(x, 2, 3)
	if len(segs) != 11 {
		t.Errorf("Segments → %d", len(segs))
	}
}

func TestPublicCoverTreeAndMV(t *testing.T) {
	items := make([]float64, 100)
	for i := range items {
		items[i] = float64(i)
	}
	ct := subseq.NewCoverTree(subseq.AbsDiff, 1)
	for _, v := range items {
		ct.Insert(v)
	}
	if got := ct.Range(50, 2); len(got) != 5 {
		t.Errorf("cover tree Range → %d items, want 5", len(got))
	}
	mv, err := subseq.NewMVIndex(items, 4, subseq.AbsDiff)
	if err != nil {
		t.Fatal(err)
	}
	if got := mv.Range(50, 2); len(got) != 5 {
		t.Errorf("MV Range → %d items, want 5", len(got))
	}
}

func TestPublicBatchAndQueryPool(t *testing.T) {
	db := []subseq.Sequence[byte]{
		subseq.Sequence[byte]("AAAABBBBCCCCDDDDEEEEFFFF"),
		subseq.Sequence[byte]("XXXXCCCCDDDDEEEEYYYYZZZZ"),
	}
	qs := []subseq.Sequence[byte]{
		subseq.Sequence[byte]("PPPPCCCCDDDDEEEEQQQQ"),
		subseq.Sequence[byte]("MMMMAAAABBBBCCCCNNNN"),
		subseq.Sequence[byte]("GGGGHHHHIIIIJJJJKKKK"),
	}
	mt, err := subseq.NewMatcher(
		subseq.LevenshteinMeasure[byte](),
		subseq.Config{Params: subseq.Params{Lambda: 8, Lambda0: 1}},
		db,
	)
	if err != nil {
		t.Fatal(err)
	}
	batch := mt.FindAllBatch(qs, 1)
	pool := subseq.NewQueryPool(mt, 4)
	pooled := pool.FindAll(qs, 1)
	for i, q := range qs {
		want := mt.FindAll(q, 1)
		if len(batch[i]) != len(want) || len(pooled[i]) != len(want) {
			t.Fatalf("query %d: sequential %d, batch %d, pool %d matches",
				i, len(want), len(batch[i]), len(pooled[i]))
		}
		for j := range want {
			if batch[i][j] != want[j] || pooled[i][j] != want[j] {
				t.Fatalf("query %d match %d differs across paths", i, j)
			}
		}
	}
	if len(batch[0]) == 0 {
		t.Error("no matches for the planted shared run")
	}
	long, found := pool.Longest(qs, 1)
	if !found[0] || long[0].QLen() < 12 {
		t.Errorf("pool Longest = (%v, %v), want the ≥12-element run", long[0], found[0])
	}
}
