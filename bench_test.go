// Benchmarks regenerating the paper's evaluation (one per figure) plus
// micro-benchmarks of the index structures and ablations of the design
// decisions called out in DESIGN.md. Figure benches run the Small
// workloads; `go run ./cmd/experiments -size paper` regenerates full-scale
// numbers.
package subseq_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	subseq "repro"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/metric"
	"repro/internal/refnet"
	"repro/internal/seq"
	"repro/internal/shard"
)

// sinkRows prevents the compiler from discarding experiment results.
var sinkRows int

func benchFigure(b *testing.B, id string) {
	b.Helper()
	runner := experiments.Registry[id]
	for i := 0; i < b.N; i++ {
		for _, t := range runner(experiments.Small) {
			sinkRows += len(t.Rows)
		}
	}
}

func BenchmarkFig04DistanceDistributions(b *testing.B) { benchFigure(b, "fig04") }
func BenchmarkFig05SpaceProteins(b *testing.B)         { benchFigure(b, "fig05") }
func BenchmarkFig06SpaceSongs(b *testing.B)            { benchFigure(b, "fig06") }
func BenchmarkFig07SpaceTraj(b *testing.B)             { benchFigure(b, "fig07") }
func BenchmarkFig08QueryProteins(b *testing.B)         { benchFigure(b, "fig08") }
func BenchmarkFig09QuerySongsDFD(b *testing.B)         { benchFigure(b, "fig09") }
func BenchmarkFig10QueryTrajERP(b *testing.B)          { benchFigure(b, "fig10") }
func BenchmarkFig11QueryTrajDFD(b *testing.B)          { benchFigure(b, "fig11") }
func BenchmarkFig12MatchingWindows(b *testing.B)       { benchFigure(b, "fig12") }

// --- Index micro-benchmarks (PROTEINS windows, Levenshtein) ---

func proteinWindows(n int) []seq.Window[byte] {
	return data.Proteins(n, 20, 1).Windows[:n]
}

func windowLev(a, b seq.Window[byte]) float64 { return dist.LevenshteinFast(a.Data, b.Data) }

func BenchmarkRefNetInsert(b *testing.B) {
	wins := proteinWindows(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := refnet.New(metric.DistFunc[seq.Window[byte]](windowLev))
		for _, w := range wins {
			net.Insert(w)
		}
	}
}

func builtNet(wins []seq.Window[byte], opts ...refnet.Option) *refnet.Net[seq.Window[byte]] {
	net := refnet.New(metric.DistFunc[seq.Window[byte]](windowLev), opts...)
	for _, w := range wins {
		net.Insert(w)
	}
	return net
}

func BenchmarkRefNetRangeSmallRadius(b *testing.B) {
	wins := proteinWindows(5000)
	net := builtNet(wins)
	q := seq.Window[byte]{SeqID: -1, Data: wins[17].Data}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRows += len(net.Range(q, 2))
	}
}

func BenchmarkRefNetRangeLargeRadius(b *testing.B) {
	wins := proteinWindows(5000)
	net := builtNet(wins)
	q := seq.Window[byte]{SeqID: -1, Data: wins[17].Data}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRows += len(net.Range(q, 12))
	}
}

func BenchmarkCoverTreeRange(b *testing.B) {
	wins := proteinWindows(5000)
	ct := subseq.NewCoverTree(windowLev, 1)
	for _, w := range wins {
		ct.Insert(w)
	}
	q := seq.Window[byte]{SeqID: -1, Data: wins[17].Data}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRows += len(ct.Range(q, 2))
	}
}

func BenchmarkMVIndexRange(b *testing.B) {
	wins := proteinWindows(5000)
	idx, err := subseq.NewMVIndex(wins, 5, windowLev)
	if err != nil {
		b.Fatal(err)
	}
	q := seq.Window[byte]{SeqID: -1, Data: wins[17].Data}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRows += len(idx.Range(q, 2))
	}
}

func BenchmarkLinearScanRange(b *testing.B) {
	wins := proteinWindows(5000)
	ls := metric.NewLinearScan(metric.DistFunc[seq.Window[byte]](windowLev))
	for _, w := range wins {
		ls.Insert(w)
	}
	q := seq.Window[byte]{SeqID: -1, Data: wins[17].Data}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRows += len(ls.Range(q, 2))
	}
}

// --- Framework benchmarks ---

func proteinMatcher(b *testing.B, windows int) (*subseq.Matcher[byte], subseq.Sequence[byte]) {
	b.Helper()
	ds := data.Proteins(windows, 20, 1)
	mt, err := subseq.NewMatcher(subseq.LevenshteinFastMeasure(), subseq.Config{
		Params: subseq.Params{Lambda: 40, Lambda0: 1},
	}, ds.Sequences)
	if err != nil {
		b.Fatal(err)
	}
	q := data.RandomQuery(ds, 60, 0.1, data.MutateAA, 9)
	return mt, q
}

func BenchmarkMatcherFilterHits(b *testing.B) {
	mt, q := proteinMatcher(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRows += len(mt.FilterHits(q, 4))
	}
}

func BenchmarkMatcherLongest(b *testing.B) {
	mt, q := proteinMatcher(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := mt.Longest(q, 4); ok {
			sinkRows++
		}
	}
}

// --- Batch / worker-pool benchmarks ---

// proteinBatch builds a matcher plus a set of queries for the batched
// throughput benchmarks.
func proteinBatch(b *testing.B, windows, numQ int) (*subseq.Matcher[byte], []subseq.Sequence[byte]) {
	b.Helper()
	ds := data.Proteins(windows, 20, 1)
	mt, err := subseq.NewMatcher(subseq.LevenshteinFastMeasure(), subseq.Config{
		Params: subseq.Params{Lambda: 40, Lambda0: 1},
	}, ds.Sequences)
	if err != nil {
		b.Fatal(err)
	}
	qs := make([]subseq.Sequence[byte], numQ)
	for i := range qs {
		qs[i] = data.RandomQuery(ds, 60, 0.1, data.MutateAA, uint64(100+i))
	}
	return mt, qs
}

// BenchmarkMatcherSequentialQueries is the baseline the worker pool is
// measured against: the same query set answered one FindAll at a time.
func BenchmarkMatcherSequentialQueries(b *testing.B) {
	mt, qs := proteinBatch(b, 2000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			sinkRows += len(mt.FindAll(q, 2))
		}
	}
}

// BenchmarkMatcherBatch answers the same query set with the sequential
// batched path (shared index traversal, no goroutines).
func BenchmarkMatcherBatch(b *testing.B) {
	mt, qs := proteinBatch(b, 2000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ms := range mt.FindAllBatch(qs, 2) {
			sinkRows += len(ms)
		}
	}
}

// BenchmarkMatcherQueryPool adds the worker pool on top of the batched
// path — the multi-core configuration a serving deployment would run.
func BenchmarkMatcherQueryPool(b *testing.B) {
	mt, qs := proteinBatch(b, 2000, 16)
	pool := subseq.NewQueryPool(mt, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ms := range pool.FindAll(qs, 2) {
			sinkRows += len(ms)
		}
	}
}

// --- Streaming-engine benchmarks ---

// BenchmarkMatcherFilterBatch is the batch-barrier baseline the streaming
// engine is measured against: the protein query set answered by one
// FilterHitsBatch call (shared traversal, single-threaded).
func BenchmarkMatcherFilterBatch(b *testing.B) {
	mt, qs := proteinBatch(b, 2000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, hits := range mt.FilterHitsBatch(qs, 2) {
			sinkRows += len(hits)
		}
	}
}

// BenchmarkMatcherStreamFilter answers the same query set through the
// streaming submit path: per-query futures, with the engine coalescing the
// burst back into shared traversals. The acceptance bar for the serving
// path is ≥ 90% of BenchmarkMatcherFilterBatch's throughput; in practice
// the worker parallelism puts it well above.
func BenchmarkMatcherStreamFilter(b *testing.B) {
	mt, qs := proteinBatch(b, 2000, 16)
	pool := subseq.NewQueryPool(mt, 0)
	defer pool.Close()
	ctx := context.Background()
	futures := make([]*subseq.Future[[]subseq.Hit[byte]], len(qs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, q := range qs {
			futures[j] = pool.SubmitFilter(ctx, q, 2)
		}
		for _, f := range futures {
			hits, err := f.Await(ctx)
			if err != nil {
				b.Fatal(err)
			}
			sinkRows += len(hits)
		}
	}
}

// BenchmarkMatcherStreamFindAll is the full streamed Type I pipeline
// (filter + verify) — the configuration `subseqctl serve` runs per
// /query/findall request.
func BenchmarkMatcherStreamFindAll(b *testing.B) {
	mt, qs := proteinBatch(b, 2000, 16)
	pool := subseq.NewQueryPool(mt, 0)
	defer pool.Close()
	ctx := context.Background()
	futures := make([]*subseq.Future[[]subseq.Match], len(qs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, q := range qs {
			futures[j] = pool.Submit(ctx, q, 2)
		}
		for _, f := range futures {
			ms, err := f.Await(ctx)
			if err != nil {
				b.Fatal(err)
			}
			sinkRows += len(ms)
		}
	}
}

// --- Refnet kernel-traversal benchmarks ---

// refnetFilterBench builds a protein matcher on the refnet backend plus a
// query batch; kernel=false strips the Prepare/Bounded capabilities so the
// traversal evaluates every probe independently (the pre-kernel baseline).
func refnetFilterBench(b *testing.B, kernel bool) (*subseq.Matcher[byte], []subseq.Sequence[byte]) {
	b.Helper()
	ds := data.Proteins(2000, 20, 1)
	m := subseq.LevenshteinFastMeasure()
	if !kernel {
		m.Prepare = nil
		m.Bounded = nil
	}
	mt, err := subseq.NewMatcher(m, subseq.Config{
		Params: subseq.Params{Lambda: 40, Lambda0: 1},
		Index:  subseq.IndexRefNet,
	}, ds.Sequences)
	if err != nil {
		b.Fatal(err)
	}
	qs := make([]subseq.Sequence[byte], 16)
	for i := range qs {
		qs[i] = data.RandomQuery(ds, 60, 0.1, data.MutateAA, uint64(100+i))
	}
	return mt, qs
}

// BenchmarkRefnetFilterBatchKernel is the kernel-fed refnet filter: probes
// sharing a query offset are priced by one streamed kernel pass per visited
// node. The dist/op metric is the counted filter evaluations per batch —
// compare against BenchmarkRefnetFilterBatchPerProbe.
func BenchmarkRefnetFilterBatchKernel(b *testing.B) {
	mt, qs := refnetFilterBench(b, true)
	mt.ResetFilterCalls()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, hits := range mt.FilterHitsBatch(qs, 4) {
			sinkRows += len(hits)
		}
	}
	b.ReportMetric(float64(mt.FilterDistanceCalls())/float64(b.N), "dist/op")
}

// BenchmarkRefnetFilterBatchPerProbe is the pre-kernel baseline: one full
// evaluation per inconclusive probe at every visited node.
func BenchmarkRefnetFilterBatchPerProbe(b *testing.B) {
	mt, qs := refnetFilterBench(b, false)
	mt.ResetFilterCalls()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, hits := range mt.FilterHitsBatch(qs, 4) {
			sinkRows += len(hits)
		}
	}
	b.ReportMetric(float64(mt.FilterDistanceCalls())/float64(b.N), "dist/op")
}

// BenchmarkRefNetBatchRangeAllocs pins the traversal's allocation behaviour
// (the active-list freelist): steady-state allocs/op must track the result
// shape, not the number of inconclusive nodes.
func BenchmarkRefNetBatchRangeAllocs(b *testing.B) {
	wins := proteinWindows(3000)
	net := builtNet(wins)
	qs := make([]seq.Window[byte], 32)
	for i := range qs {
		qs[i] = seq.Window[byte]{SeqID: -1, Data: wins[i*37].Data}
	}
	net.BatchRange(qs, 4) // warm the pooled scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range net.BatchRange(qs, 4) {
			sinkRows += len(r)
		}
	}
}

// --- Ablations (design decisions from DESIGN.md §5) ---

// Ablation 1: generic DP Levenshtein vs byte-specialised DP vs Myers'
// bit-parallel implementation.
func BenchmarkAblationLevenshteinGeneric(b *testing.B) {
	d := dist.Levenshtein[byte]()
	x := []byte("ACDEFGHIKLMNPQRSTVWY")
	y := []byte("YWVTSRQPNMLKIHGFEDCA")
	for i := 0; i < b.N; i++ {
		sinkRows += int(d(x, y))
	}
}

func BenchmarkAblationLevenshteinBytesDP(b *testing.B) {
	x := []byte("ACDEFGHIKLMNPQRSTVWY")
	y := []byte("YWVTSRQPNMLKIHGFEDCA")
	for i := 0; i < b.N; i++ {
		sinkRows += int(dist.LevenshteinBytes(x, y))
	}
}

func BenchmarkAblationLevenshteinMyers(b *testing.B) {
	x := []byte("ACDEFGHIKLMNPQRSTVWY")
	y := []byte("YWVTSRQPNMLKIHGFEDCA")
	for i := 0; i < b.N; i++ {
		sinkRows += int(dist.LevenshteinFast(x, y))
	}
}

// Ablation 1b: past the 64-byte word boundary the block-based (multi-word)
// Myers path must stay bit-parallel — compare against the byte DP on the
// same 120-byte inputs.
func longAblationInputs() (x, y []byte) {
	x = make([]byte, 120)
	y = make([]byte, 120)
	aa := "ACDEFGHIKLMNPQRSTVWY"
	for i := range x {
		x[i] = aa[i%len(aa)]
		y[i] = aa[(i*7+3)%len(aa)]
	}
	return x, y
}

func BenchmarkAblationLevenshteinBytesDPLong(b *testing.B) {
	x, y := longAblationInputs()
	for i := 0; i < b.N; i++ {
		sinkRows += int(dist.LevenshteinBytes(x, y))
	}
}

func BenchmarkAblationLevenshteinMyersBlockLong(b *testing.B) {
	x, y := longAblationInputs()
	for i := 0; i < b.N; i++ {
		sinkRows += int(dist.LevenshteinFast(x, y))
	}
}

// Ablation 1c: the banded bounded block path on the same 120-byte inputs
// with a tight radius — the Ukkonen band advances ~2 word blocks per
// character instead of all of them and abandons on the score slack.
var sinkDist float64

func BenchmarkAblationMyersBandedBoundedLong(b *testing.B) {
	x, y := longAblationInputs()
	bounded := dist.LevenshteinFastMeasure().Bounded
	for i := 0; i < b.N; i++ {
		sinkDist += bounded(x, y, 8)
	}
}

// Ablation 2: stored-edge bounds in range queries on vs off. The custom
// metric reports distance computations per query alongside wall time.
func benchEdgeBounds(b *testing.B, on bool) {
	wins := proteinWindows(5000)
	counter := metric.NewCounter(metric.DistFunc[seq.Window[byte]](windowLev))
	net := refnet.New(counter.Distance, refnet.WithEdgeBounds(on))
	for _, w := range wins {
		net.Insert(w)
	}
	q := seq.Window[byte]{SeqID: -1, Data: wins[17].Data}
	counter.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRows += len(net.Range(q, 4))
	}
	b.ReportMetric(float64(counter.Calls())/float64(b.N), "dist/op")
}

func BenchmarkAblationEdgeBoundsOn(b *testing.B)  { benchEdgeBounds(b, true) }
func BenchmarkAblationEdgeBoundsOff(b *testing.B) { benchEdgeBounds(b, false) }

// Ablation 3: batched range queries vs sequential ones.
func BenchmarkAblationBatchRange(b *testing.B) {
	wins := proteinWindows(3000)
	net := builtNet(wins)
	qs := make([]seq.Window[byte], 32)
	for i := range qs {
		qs[i] = seq.Window[byte]{SeqID: -1, Data: wins[i*37].Data}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range net.BatchRange(qs, 4) {
			sinkRows += len(r)
		}
	}
}

func BenchmarkAblationSequentialRange(b *testing.B) {
	wins := proteinWindows(3000)
	net := builtNet(wins)
	qs := make([]seq.Window[byte], 32)
	for i := range qs {
		qs[i] = seq.Window[byte]{SeqID: -1, Data: wins[i*37].Data}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			sinkRows += len(net.Range(q, 4))
		}
	}
}

// --- Store lifecycle: snapshot/restore and live mutation (internal/store,
// docs/PERSISTENCE.md). RestoreVsRebuild is the headline pair: restoring a
// refnet snapshot decodes structure and computes zero distances, where a
// rebuild pays the full O(n · depth) insertion distance bill. ---

// benchStore builds a refnet-backed store over n PROTEINS windows.
func benchStore(b *testing.B, n int) *subseq.Store[byte] {
	b.Helper()
	ds := data.Proteins(n, 20, 1)
	st, err := subseq.NewStore(dist.LevenshteinFastMeasure(), subseq.Config{
		Params: subseq.Params{Lambda: 40, Lambda0: 1},
	}, ds.Sequences)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// benchSnapshot is one serialised store, shared by the decode-side benches.
func benchSnapshot(b *testing.B, n int) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := benchStore(b, n).Snapshot(&buf); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkSnapshotSave(b *testing.B) {
	st := benchStore(b, 5000)
	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Snapshot(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotLoad(b *testing.B) {
	blob := benchSnapshot(b, 5000)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := subseq.OpenStore(bytes.NewReader(blob), dist.LevenshteinFastMeasure(), nil)
		if err != nil {
			b.Fatal(err)
		}
		sinkRows += st.Matcher().NumWindows()
	}
}

// BenchmarkRestoreVsRebuild puts the two restart paths side by side over
// the same 5000-window database; dist/op counts the index-construction
// distance evaluations each path pays (restore: zero).
func BenchmarkRestoreVsRebuild(b *testing.B) {
	ds := data.Proteins(5000, 20, 1)
	cfg := subseq.Config{Params: subseq.Params{Lambda: 40, Lambda0: 1}}
	blob := benchSnapshot(b, 5000)
	b.Run("Restore", func(b *testing.B) {
		var calls int64
		for i := 0; i < b.N; i++ {
			st, err := subseq.OpenStore(bytes.NewReader(blob), dist.LevenshteinFastMeasure(), nil)
			if err != nil {
				b.Fatal(err)
			}
			calls += st.Matcher().BuildDistanceCalls()
		}
		b.ReportMetric(float64(calls)/float64(b.N), "dist/op")
	})
	b.Run("Rebuild", func(b *testing.B) {
		var calls int64
		for i := 0; i < b.N; i++ {
			st, err := subseq.NewStore(dist.LevenshteinFastMeasure(), cfg, ds.Sequences)
			if err != nil {
				b.Fatal(err)
			}
			calls += st.Matcher().BuildDistanceCalls()
		}
		b.ReportMetric(float64(calls)/float64(b.N), "dist/op")
	})
}

// BenchmarkStoreAppend measures live ingest while a query worker keeps
// the read side busy: every append drains in-flight query claims (the
// store's write lock), so this prices mutation under serving load.
func BenchmarkStoreAppend(b *testing.B) {
	st := benchStore(b, 2000)
	pool := st.NewQueryPool(2)
	defer pool.Close()
	q := data.Proteins(8, 20, 99).Sequences[0][:30]
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sinkRows += len(pool.FindAll([]subseq.Sequence[byte]{q}, 2))
			}
		}
	}()
	x := data.Proteins(8, 20, 7).Sequences[0][:40] // two windows per append
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Append(x); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// BenchmarkGatewayHotQuery prices the gateway result cache on its
// design workload: one hot findall query hammered through a two-shard
// fleet. With the cache off every request scatters to the shards and
// recomputes the query; with it on, every request after the first is a
// canonical-key cache hit served from gateway memory. The ratio of the
// two sub-benchmarks is the hit-path latency reduction (the acceptance
// floor is 5×).
func BenchmarkGatewayHotQuery(b *testing.B) {
	ds := data.Proteins(160, 20, 1)
	numSeqs := len(ds.Sequences)
	plan, err := shard.Partition(numSeqs, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := subseq.Config{Params: subseq.Params{Lambda: 40, Lambda0: 1}}
	newShard := func(lo, hi int) *httptest.Server {
		st, err := subseq.NewStore(dist.LevenshteinFastMeasure(), cfg, ds.Sequences[lo:hi])
		if err != nil {
			b.Fatal(err)
		}
		mt := st.Matcher()
		mux := http.NewServeMux()
		mux.HandleFunc("POST /query/findall", func(w http.ResponseWriter, r *http.Request) {
			var req struct {
				Query string  `json:"query"`
				Eps   float64 `json:"eps"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			ms := mt.FindAll(seq.Sequence[byte](req.Query), req.Eps)
			out := shard.MatchesResponse{Count: len(ms), Matches: make([]shard.Match, len(ms))}
			for i, m := range ms {
				out.Matches[i] = shard.Match{
					SeqID: m.SeqID + lo, QStart: m.QStart, QEnd: m.QEnd,
					XStart: m.XStart, XEnd: m.XEnd, Dist: m.Dist,
				}
			}
			json.NewEncoder(w).Encode(out)
		})
		ts := httptest.NewServer(mux)
		b.Cleanup(ts.Close)
		return ts
	}
	urls := make([]string, len(plan.Ranges))
	for i, r := range plan.Ranges {
		urls[i] = newShard(r.Lo, r.Hi).URL
	}
	body := []byte(fmt.Sprintf(`{"query":%q,"eps":4}`, string(ds.Sequences[0][:60])))
	run := func(b *testing.B, opts ...shard.GatewayOption) {
		gw, err := shard.NewGateway(plan, urls, opts...)
		if err != nil {
			b.Fatal(err)
		}
		gts := httptest.NewServer(gw.Handler())
		defer gts.Close()
		client := gts.Client()
		post := func() {
			resp, err := client.Post(gts.URL+"/query/findall", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			n, _ := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || n == 0 {
				b.Fatalf("findall answered %d with %d bytes", resp.StatusCode, n)
			}
		}
		post() // warm: the cached run measures pure hits
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post()
		}
	}
	b.Run("Uncached", func(b *testing.B) { run(b) })
	b.Run("Cached", func(b *testing.B) { run(b, shard.WithCache(64<<20, 0)) })
}
