// Package subseq is a generic framework for efficient and effective
// subsequence retrieval in string and time-series databases, reproducing
//
//	Haohan Zhu, George Kollios, Vassilis Athitsos.
//	"A Generic Framework for Efficient and Effective Subsequence
//	Retrieval." PVLDB 5(11), 2012.
//
// Given a database of sequences and a query sequence Q, the framework
// finds pairs of similar subsequences (SQ ⊆ Q, SX ⊆ X) under any distance
// measure that is "consistent" (Definition 1 of the paper) — Euclidean,
// Hamming, DTW, ERP, the discrete Fréchet distance and the Levenshtein
// distance all qualify — using metric indexing (the paper's Reference Net)
// when the distance is additionally a metric.
//
// # Quick start
//
//	m := subseq.LevenshteinMeasure[byte]()
//	matcher, err := subseq.NewMatcher(m, subseq.Config{
//	    Params: subseq.Params{Lambda: 40, Lambda0: 2},
//	}, db) // db is a []subseq.Sequence[byte]
//	...
//	match, ok := matcher.Longest(query, 4) // longest pair within distance 4
//
// Three query types are supported (Section 3.2 of the paper): FindAll
// (Type I, all similar pairs), Longest (Type II) and Nearest (Type III).
//
// # Packages
//
// The implementation lives in internal packages; this package is the
// stable public surface. The Reference Net is additionally exposed
// directly (NewRefNet) because it is a useful general-purpose metric index
// independent of subsequence retrieval. The sibling package repro/registry
// names the building blocks — every built-in measure, index backend and
// dataset family is resolvable by string (registry.Measure[byte]
// ("levenshtein"), registry.Backend("covertree")) with capability
// validation, which is what the subseqctl CLI runs on.
package subseq

import (
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/covertree"
	"repro/internal/dist"
	"repro/internal/metric"
	"repro/internal/refindex"
	"repro/internal/refnet"
	"repro/internal/seq"
	"repro/internal/store"
)

// Sequence is an ordered series of elements over an arbitrary alphabet.
type Sequence[E any] = seq.Sequence[E]

// Window is a fixed-length database window (the indexed unit).
type Window[E any] = seq.Window[E]

// Segment is a variable-length query segment.
type Segment[E any] = seq.Segment[E]

// Point2 is a point in the plane, the element type for trajectories.
type Point2 = seq.Point2

// Ground is a distance between two sequence elements.
type Ground[E any] = dist.Ground[E]

// DistanceFunc is a distance between two sequences.
type DistanceFunc[E any] = dist.Func[E]

// Measure bundles a distance function with its name, properties
// (metricity, consistency, lock-step) and optional fast-path capabilities
// (Prepare incremental kernels, Bounded early-abandoning evaluation).
type Measure[E any] = dist.Measure[E]

// IncrementalKernel is a stateful evaluator of d(·, w) over growing
// prefixes, minted from a Measure's Prepare capability; the filter uses it
// to price all segment lengths at a query offset in one pass.
type IncrementalKernel[E any] = dist.Kernel[E]

// PreparedKernel is the shared immutable half of an incremental kernel —
// the window binding plus its preprocessing, built once per database window
// and safe for concurrent use. Mint per-worker mutable kernels with
// NewState, or rebind one state across windows with BindKernel.
type PreparedKernel[E any] = dist.Prepared[E]

// BindKernel points state at p, reusing the state's buffers when it came
// from the same kernel family (no allocation) and minting a fresh state
// otherwise.
func BindKernel[E any](state IncrementalKernel[E], p PreparedKernel[E]) IncrementalKernel[E] {
	return dist.BindKernel(state, p)
}

// BoundedDistanceFunc is an early-abandoning distance evaluation, the
// optional Bounded capability of a Measure: exact at or under eps, anything
// greater than eps otherwise.
type BoundedDistanceFunc[E any] = dist.BoundedFunc[E]

// Properties describes the assumptions a distance measure satisfies.
type Properties = dist.Properties

// Coupling is one element pairing in an optimal alignment.
type Coupling = dist.Coupling

// Params carries the framework parameters λ (minimum match length) and λ0
// (maximum temporal shift).
type Params = core.Params

// Config configures a Matcher (parameters, index backend, ǫ′, nummax).
type Config = core.Config

// IndexKind selects the metric-index backend for the window filter.
type IndexKind = core.IndexKind

// Index backends.
const (
	IndexRefNet     = core.IndexRefNet
	IndexCoverTree  = core.IndexCoverTree
	IndexMV         = core.IndexMV
	IndexLinearScan = core.IndexLinearScan
)

// Matcher is the subsequence-retrieval engine (steps 1–5 of the paper's
// framework).
type Matcher[E any] = core.Matcher[E]

// Match is a reported pair of similar subsequences.
type Match = core.Match

// Hit is a filtered segment↔window pair (steps 3–4 output).
type Hit[E any] = core.Hit[E]

// NearestOptions tunes Nearest (query Type III).
type NearestOptions = core.NearestOptions

// QueryPool drives a Matcher from a fixed set of worker goroutines,
// answering large query batches with multi-core throughput. It has two
// faces: the batch-barrier methods (FindAll, Longest, FilterHits, Nearest)
// take a complete query slice and block until every answer is back, while
// the streaming methods (Submit, SubmitFilter, SubmitLongest,
// SubmitNearest) accept queries one at a time and return per-query
// Futures, answering them from a long-lived worker set that coalesces
// concurrent submissions into the same shared index traversals the batch
// path uses. The streaming face adds context cancellation, a bounded
// in-flight queue with backpressure and graceful Close — the shape a
// serving daemon needs (see subseqctl serve and docs/SERVING.md).
type QueryPool[E any] = core.QueryPool[E]

// PoolOption tunes a QueryPool's streaming engine.
type PoolOption = core.PoolOption

// WithQueueDepth bounds the streaming engine's in-flight submissions
// (submitted but not completed); Submit blocks once the bound is reached.
// The default is 1024.
func WithQueueDepth(n int) PoolOption { return core.WithQueueDepth(n) }

// WithMaxCoalesce caps how many streaming submissions one worker claim may
// answer in a single batched call (default 64).
func WithMaxCoalesce(n int) PoolOption { return core.WithMaxCoalesce(n) }

// NewQueryPool returns a pool of the given concurrency over mt; workers
// ≤ 0 selects GOMAXPROCS. The batch methods are stateless between calls
// and safe for concurrent use; the streaming worker set starts lazily on
// the first Submit and stops at Close.
func NewQueryPool[E any](mt *Matcher[E], workers int, opts ...PoolOption) *QueryPool[E] {
	return core.NewQueryPool(mt, workers, opts...)
}

// Future is the pending result of a streaming submission; Await blocks
// until the result is ready or the context is done.
type Future[T any] = core.Future[T]

// QueryResult is the outcome of a streamed Longest or Nearest submission.
type QueryResult = core.QueryResult

// StreamStats is a snapshot of a QueryPool's streaming-engine activity
// (pending and in-flight submissions, coalescing effectiveness).
type StreamStats = core.StreamStats

// ErrPoolClosed is returned by futures whose submission arrived after the
// pool's streaming engine was closed.
var ErrPoolClosed = core.ErrPoolClosed

// Admission control and load shedding (see docs/SERVING.md, "Operating
// under load"): a streaming submission may carry a deadline, a priority
// and a tenant, and the pool may shed work instead of blocking when its
// in-flight budget is exhausted.

// ErrQueueFull is returned (via the submission's Future) when the pool's
// shed policy rejects a submission because the in-flight budget is
// exhausted. subseqctl serve maps it to HTTP 429 with a Retry-After.
var ErrQueueFull = core.ErrQueueFull

// ErrDeadlineExceeded is returned when a submission's deadline (set with
// WithSubmitDeadline or WithSubmitTimeout) passes before a worker prices
// the query — expired work is dropped before it costs anything. subseqctl
// serve maps it to HTTP 504.
var ErrDeadlineExceeded = core.ErrDeadlineExceeded

// ErrWorkerCrashed wraps a panic recovered while answering a claim: the
// affected futures fail with it and the worker keeps serving. subseqctl
// serve maps it to HTTP 500.
var ErrWorkerCrashed = core.ErrWorkerCrashed

// ShedPolicy selects what a pool does when a submission arrives with the
// in-flight budget exhausted.
type ShedPolicy = core.ShedPolicy

// Shed policies: block the submitter (default), reject the newcomer with
// ErrQueueFull, or evict the newest queued query of the most-loaded
// tenant to make room (per-tenant fair share).
const (
	ShedBlock        = core.ShedBlock
	ShedRejectNewest = core.ShedRejectNewest
	ShedFairShare    = core.ShedFairShare
)

// ParseShedPolicy resolves a policy name ("block", "reject",
// "reject-newest", "fair", "fair-share"); "" selects ShedBlock.
func ParseShedPolicy(name string) (ShedPolicy, error) { return core.ParseShedPolicy(name) }

// WithShedPolicy sets the pool's shed policy (default ShedBlock).
func WithShedPolicy(p ShedPolicy) PoolOption { return core.WithShedPolicy(p) }

// SubmitOption attaches per-submission admission metadata to a streaming
// Submit call.
type SubmitOption = core.SubmitOption

// WithSubmitDeadline drops the submission with ErrDeadlineExceeded if a
// worker has not started pricing it by t.
func WithSubmitDeadline(t time.Time) SubmitOption { return core.WithSubmitDeadline(t) }

// WithSubmitTimeout is WithSubmitDeadline at now+d.
func WithSubmitTimeout(d time.Duration) SubmitOption { return core.WithSubmitTimeout(d) }

// WithPriority biases claim seeding toward higher-priority submissions
// (default 0; ties keep arrival order).
func WithPriority(p int) SubmitOption { return core.WithPriority(p) }

// WithTenant attributes the submission to a tenant for fair-share
// accounting (see ShedFairShare).
func WithTenant(id string) SubmitOption { return core.WithTenant(id) }

// LatencyStats summarises one of the pool's HDR-style latency histograms
// (queue wait, end-to-end) as reported in StreamStats.
type LatencyStats = core.LatencyStats

// LatencyBucket is one histogram bucket of a LatencyStats.
type LatencyBucket = core.LatencyBucket

// DefaultQueueDepth is the streaming engine's in-flight bound when
// WithQueueDepth is not given.
const DefaultQueueDepth = core.DefaultQueueDepth

// BruteForce answers the three query types exhaustively; it is the
// correctness oracle and the baseline the framework's filtering replaces.
type BruteForce[E any] = core.BruteForce[E]

// NewMatcher builds a matcher over db: it validates the configuration,
// partitions the database into windows of length λ/2 and builds the
// window index.
func NewMatcher[E any](m Measure[E], cfg Config, db []Sequence[E]) (*Matcher[E], error) {
	return core.NewMatcher(m, cfg, db)
}

// NewBruteForce builds an exhaustive matcher with the same semantics.
func NewBruteForce[E any](m Measure[E], p Params, db []Sequence[E]) (*BruteForce[E], error) {
	return core.NewBruteForce(m, p, db)
}

// Distance measures. Each *Measure constructor returns the function
// bundled with its properties; the bare constructors return just the
// function.

// EuclideanMeasure is the L2 distance over equal-length sequences.
func EuclideanMeasure[E any](g Ground[E]) Measure[E] { return dist.EuclideanMeasure(g) }

// HammingMeasure counts positions at which equal-length sequences differ.
func HammingMeasure[E comparable]() Measure[E] { return dist.HammingMeasure[E]() }

// DTWMeasure is Dynamic Time Warping (consistent but not a metric; only
// the IndexLinearScan backend accepts it).
func DTWMeasure[E any](g Ground[E]) Measure[E] { return dist.DTWMeasure(g) }

// ERPMeasure is Edit distance with Real Penalty, a consistent metric.
func ERPMeasure[E any](g Ground[E], gap E) Measure[E] { return dist.ERPMeasure(g, gap) }

// DiscreteFrechetMeasure is the discrete Fréchet distance, a consistent
// metric.
func DiscreteFrechetMeasure[E any](g Ground[E]) Measure[E] { return dist.DiscreteFrechetMeasure(g) }

// LevenshteinMeasure is the unit-cost edit distance over any comparable
// alphabet.
func LevenshteinMeasure[E comparable]() Measure[E] { return dist.LevenshteinMeasure[E]() }

// LevenshteinFastMeasure is the byte-string edit distance using Myers'
// bit-parallel algorithm (identical semantics, much faster for strings up
// to 64 characters).
func LevenshteinFastMeasure() Measure[byte] { return dist.LevenshteinFastMeasure() }

// WeightedEdit is a generalised edit distance with caller-supplied
// substitution and indel costs.
func WeightedEdit[E any](sub func(a, b E) float64, indel func(E) float64) DistanceFunc[E] {
	return dist.WeightedEdit(sub, indel)
}

// WeightedEditMeasure is a vetted WeightedEdit instance over byte strings
// (mismatch 1.5, indel 1): a consistent metric with incremental and bounded
// evaluation, accepted by every index backend.
func WeightedEditMeasure() Measure[byte] { return dist.WeightedEditMeasure() }

// ProteinEditMeasure is a weighted edit distance over amino-acid strings
// with physico-chemical substitution costs — a metric, index-compatible
// stand-in for biological scoring schemes.
func ProteinEditMeasure() Measure[byte] { return dist.ProteinEditMeasure() }

// Ground distances.

// AbsDiff is |a−b| for scalar series.
func AbsDiff(a, b float64) float64 { return dist.AbsDiff(a, b) }

// Point2Dist is the planar Euclidean ground distance.
func Point2Dist(a, b Point2) float64 { return dist.Point2Dist(a, b) }

// Alignment recovery.

// DTWAlignment returns the DTW distance and an optimal alignment.
func DTWAlignment[E any](g Ground[E], a, b []E) (float64, []Coupling) {
	return dist.DTWAlignment(g, a, b)
}

// FrechetAlignment returns the discrete Fréchet distance and an optimal
// alignment.
func FrechetAlignment[E any](g Ground[E], a, b []E) (float64, []Coupling) {
	return dist.FrechetAlignment(g, a, b)
}

// ERPAlignment returns the ERP distance and an optimal alignment
// including gap couplings.
func ERPAlignment[E any](g Ground[E], gap E, a, b []E) (float64, []Coupling) {
	return dist.ERPAlignment(g, gap, a, b)
}

// ConsistentOn checks the paper's consistency property (Definition 1)
// exhaustively on the pair (q, x); see FindInconsistency for the
// witness-returning variant.
func ConsistentOn[E any](d DistanceFunc[E], q, x []E, tol float64) bool {
	return dist.ConsistentOn(d, q, x, tol)
}

// Inconsistency is a witness against Definition 1, returned by
// FindInconsistency: the subsequence x[XStart:XEnd) whose best counterpart
// in q (at distance Best) exceeds the base distance d(q, x) by more than the
// tolerance.
type Inconsistency = dist.Inconsistency

// FindInconsistency exhaustively searches the pair (q, x) for a violation of
// the consistency property, returning a witness and true if one exists. Use
// it to vet a custom Measure's Consistent claim on small inputs before
// handing it to NewMatcher.
func FindInconsistency[E any](d DistanceFunc[E], q, x []E, tol float64) (Inconsistency, bool) {
	return dist.FindInconsistency(d, q, x, tol)
}

// The Reference Net, exposed as a general-purpose metric index.

// RefNet is the paper's linear-space hierarchical metric index.
type RefNet[T any] = refnet.Net[T]

// RefNetNode is a handle to an inserted item, accepted by Delete.
type RefNetNode[T any] = refnet.Node[T]

// RefNetStats summarises a net's structure and space.
type RefNetStats = refnet.Stats

// Neighbor is one k-nearest-neighbour result from RefNet.KNN.
type Neighbor[T any] = refnet.Neighbor[T]

// NewRefNet returns an empty reference net over the given metric distance.
// Options: WithBase (ǫ′), WithMaxParents (nummax).
func NewRefNet[T any](d func(a, b T) float64, opts ...refnet.Option) *RefNet[T] {
	return refnet.New(metric.DistFunc[T](d), opts...)
}

// LoadRefNet reads a net previously written with RefNet.Save, re-attaching
// the distance function. Loading performs no distance computations.
func LoadRefNet[T any](r io.Reader, d func(a, b T) float64) (*RefNet[T], error) {
	return refnet.Load(r, d)
}

// WithBase sets the net's base radius ǫ′ (default 1).
func WithBase(base float64) refnet.Option { return refnet.WithBase(base) }

// WithMaxParents caps the number of lists a node may appear in (nummax).
func WithMaxParents(n int) refnet.Option { return refnet.WithMaxParents(n) }

// CoverTree is the single-parent baseline index.
type CoverTree[T any] = covertree.Tree[T]

// NewCoverTree returns an empty cover tree with base radius ǫ′.
func NewCoverTree[T any](d func(a, b T) float64, base float64) *CoverTree[T] {
	return covertree.New(metric.DistFunc[T](d), base)
}

// MVIndex is the reference-based baseline index with Maximum-Variance
// reference selection.
type MVIndex[T any] = refindex.Index[T]

// NewMVIndex builds a reference-based index with k references.
func NewMVIndex[T any](items []T, k int, d func(a, b T) float64) (*MVIndex[T], error) {
	return refindex.Build(items, k, metric.DistFunc[T](d), refindex.Options{})
}

// The live index lifecycle (internal/store): streaming ingest, deletion
// and zero-downtime snapshot/restore over a running matcher. See
// docs/PERSISTENCE.md.

// Store wraps a Matcher with the lifecycle a long-lived serving process
// needs: Append/Retire mutate the live index while queries run (queries
// go through View or a pool from Store.NewQueryPool and drain before
// each mutation), Sweep retires TTL-expired sequences, and
// Snapshot/OpenStore persist and restore the whole state through a
// versioned, checksummed format.
type Store[E any] = store.Store[E]

// StoreOption configures a Store at construction (WithClock).
type StoreOption = store.Option

// AppendOption configures one Store.Append (AppendTTL).
type AppendOption = store.AppendOption

// AppendResult reports what a Store.Append did.
type AppendResult = store.AppendResult

// SnapshotHeader is a snapshot's self-description: measure, element
// type, backend, parameters and sequence census. OpenStore validates it
// against the opening session before restoring anything.
type SnapshotHeader = store.Header

// SnapshotCorruptError reports a snapshot stream that cannot be decoded,
// with the byte offset at which decoding failed.
type SnapshotCorruptError = store.CorruptError

// SnapshotMismatchError reports a well-formed snapshot that belongs to a
// different session (wrong measure, element type or parameters).
type SnapshotMismatchError = store.MismatchError

// ErrRetireUnsupported is returned by Store.Retire on backends with no
// deletion operation (the cover tree baseline).
var ErrRetireUnsupported = core.ErrRetireUnsupported

// NewStore builds a live Store over db (see NewMatcher for the
// construction semantics; the Store adds mutation and persistence).
func NewStore[E any](m Measure[E], cfg Config, db []Sequence[E], opts ...StoreOption) (*Store[E], error) {
	return store.New(m, cfg, db, opts...)
}

// OpenStore restores a Store from a snapshot stream written by
// Store.Snapshot. The element type and measure must match the snapshot's
// header; check (optional) may impose further requirements — the
// registry's OpenStore passes one that holds the header against a full
// session spec. Refnet-backed snapshots restore without recomputing any
// distances.
func OpenStore[E any](r io.Reader, m Measure[E], check func(SnapshotHeader) error, opts ...StoreOption) (*Store[E], error) {
	return store.Open(r, m, check, opts...)
}

// OpenStoreFile is OpenStore over a snapshot file.
func OpenStoreFile[E any](path string, m Measure[E], check func(SnapshotHeader) error, opts ...StoreOption) (*Store[E], error) {
	return store.OpenFile(path, m, check, opts...)
}

// ReadSnapshotHeader decodes just the header of a snapshot stream — the
// inspection path; nothing is restored and the stream CRC is not
// verified.
func ReadSnapshotHeader(r io.Reader) (SnapshotHeader, error) {
	return store.ReadHeader(r)
}

// AppendTTL schedules a sequence appended with it for retirement once d
// has elapsed (Store.Sweep performs the retirement).
func AppendTTL(d time.Duration) AppendOption { return store.WithTTL(d) }

// SnapshotScheduler is a running background snapshot loop started by
// Store.ScheduleSnapshots: a crash-safe SnapshotFile every interval, with
// jittered-backoff retries on transient write failure and health counters
// for monitoring. Stop ends it.
type SnapshotScheduler = store.Scheduler

// SnapshotSchedulerStats is a SnapshotScheduler's health snapshot.
type SnapshotSchedulerStats = store.SchedulerStats

// SnapshotSchedulerOption tunes Store.ScheduleSnapshots
// (WithSnapshotRetries, WithSnapshotBackoff, WithSnapshotOnError).
type SnapshotSchedulerOption = store.SchedulerOption

// WithSnapshotRetries bounds per-round retries of a failed background
// snapshot (default 3).
func WithSnapshotRetries(n int) SnapshotSchedulerOption { return store.WithSnapshotRetries(n) }

// WithSnapshotBackoff sets the first retry delay and its cap (defaults
// 250ms, 5s); delays double with ±25% jitter.
func WithSnapshotBackoff(first, max time.Duration) SnapshotSchedulerOption {
	return store.WithSnapshotBackoff(first, max)
}

// WithSnapshotOnError installs a callback for background snapshot write
// failures.
func WithSnapshotOnError(fn func(error)) SnapshotSchedulerOption {
	return store.WithSnapshotOnError(fn)
}

// QuarantineSnapshot moves a snapshot that failed to restore aside
// (renamed to path + ".corrupt") so a fresh build can proceed while the
// bad bytes stay available for forensics; it returns the quarantine path.
func QuarantineSnapshot(path string) (string, error) { return store.Quarantine(path) }

// WithClock substitutes the Store's wall clock for TTL bookkeeping.
func WithClock(now func() time.Time) StoreOption { return store.WithClock(now) }

// MatcherView resolves the matcher answering one unit of query work plus
// a release function — the hook NewQueryPoolView pools query against a
// mutable Store instead of a fixed Matcher.
type MatcherView[E any] = core.MatcherView[E]

// NewQueryPoolView is NewQueryPool over a MatcherView: every batch call
// and streaming claim resolves the matcher afresh and holds its guard
// only for that unit of work. Store.NewQueryPool is the common way in.
func NewQueryPoolView[E any](view MatcherView[E], workers int, opts ...PoolOption) *QueryPool[E] {
	return core.NewQueryPoolView(view, workers, opts...)
}

// Partition splits a sequence into consecutive windows of length l.
func Partition[E any](seqID int, x Sequence[E], l int) []Window[E] {
	return seq.Partition(seqID, x, l)
}

// Segments extracts every segment of q with length in [minLen, maxLen].
func Segments[E any](q Sequence[E], minLen, maxLen int) []Segment[E] {
	return seq.Segments(q, minLen, maxLen)
}
