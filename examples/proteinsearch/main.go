// Proteinsearch: local-alignment-style motif search over a synthetic
// protein database under the Levenshtein distance — the paper's PROTEINS
// scenario. A motif is planted with mutations into a few database
// sequences; the framework retrieves the mutated occurrences from a query
// containing the clean motif, without scanning the database exhaustively.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	subseq "repro"
	"repro/registry"
)

const aminoAcids = "ACDEFGHIKLMNPQRSTVWY"

func randProtein(rng *rand.Rand, n int) subseq.Sequence[byte] {
	s := make(subseq.Sequence[byte], n)
	for i := range s {
		s[i] = aminoAcids[rng.IntN(20)]
	}
	return s
}

func main() {
	rng := rand.New(rand.NewPCG(42, 1))

	// The motif we will search for: a 30-residue "domain".
	motif := randProtein(rng, 30)

	// Database: 40 random proteins of 200 residues; plant the motif with
	// 10% point mutations into three of them.
	db := make([]subseq.Sequence[byte], 40)
	planted := map[int]int{} // seqID → position
	for i := range db {
		db[i] = randProtein(rng, 200)
	}
	for _, target := range []int{7, 19, 33} {
		at := rng.IntN(200 - len(motif))
		planted[target] = at
		for j, c := range motif {
			if rng.Float64() < 0.10 {
				c = aminoAcids[rng.IntN(20)]
			}
			db[target][at+j] = c
		}
	}

	// λ = 20 (windows of 10), λ0 = 2: tolerate a couple of indels of
	// drift between the matched spans. The fast bit-parallel Levenshtein
	// is exactly equivalent to the generic one; "myers" is its registry
	// alias.
	measure, err := registry.Measure[byte]("myers")
	if err != nil {
		log.Fatal(err)
	}
	matcher, err := subseq.NewMatcher(
		measure,
		subseq.Config{Params: subseq.Params{Lambda: 20, Lambda0: 2}},
		db,
	)
	if err != nil {
		log.Fatal(err)
	}

	// The query: the clean motif embedded in unrelated flanking residues.
	query := append(append(randProtein(rng, 25), motif...), randProtein(rng, 25)...)

	fmt.Printf("database: %d proteins, %d windows; motif length %d planted in sequences 7, 19, 33\n\n",
		len(db), matcher.NumWindows(), len(motif))

	// Retrieve every similar pair at edit distance ≤ 6 and report the hit
	// regions per database sequence (Type I + aggregation).
	found := map[int]subseq.Match{}
	for _, m := range matcher.FindAll(query, 6) {
		best, ok := found[m.SeqID]
		if !ok || m.Dist < best.Dist || (m.Dist == best.Dist && m.XLen() > best.XLen()) {
			found[m.SeqID] = m
		}
	}
	for seqID, m := range found {
		at, wasPlanted := planted[seqID]
		fmt.Printf("sequence %2d: best match x[%d:%d] distance %.0f (planted=%v at %d)\n",
			seqID, m.XStart, m.XEnd, m.Dist, wasPlanted, at)
	}

	hits, misses := 0, 0
	for target := range planted {
		if _, ok := found[target]; ok {
			hits++
		} else {
			misses++
		}
	}
	fmt.Printf("\nrecovered %d of %d planted occurrences (%d spurious)\n",
		hits, len(planted), len(found)-hits)

	filter := matcher.FilterDistanceCalls()
	naive := int64(matcher.NumWindows()) * 5 * int64(len(query)) // (2λ0+1)|Q| segments
	fmt.Printf("filter distance calls: %d (naive all-segments scan would be ~%d)\n", filter, naive)
}
