// Quickstart: find similar subsequences between a query string and a tiny
// database under the Levenshtein distance, exercising all three query
// types of the paper (range, longest, nearest). The measure is resolved by
// name through the registry — swap the string for any measure
// `subseqctl list` prints (e.g. "weighted-edit", "protein-edit") to rerun
// the same program under a different distance.
package main

import (
	"fmt"
	"log"

	subseq "repro"
	"repro/registry"
)

func main() {
	// A database of three sequences. The second one shares the region
	// "GREENEGGSANDHAM" with the query, up to one substitution.
	db := []subseq.Sequence[byte]{
		subseq.Sequence[byte]("THEQUICKBROWNFOXJUMPSOVERTHELAZYDOG"),
		subseq.Sequence[byte]("XXXXGREENEGGSANDHAMXXXXXXXXXXXXXXXX"),
		subseq.Sequence[byte]("LOREMIPSUMDOLORSITAMETCONSECTETURAD"),
	}
	query := subseq.Sequence[byte]("IDONOTLIKEGREENEGGSANDHAMIAMSAM")

	// λ = 8: matches must span at least 8 characters; windows are λ/2 = 4.
	// λ0 = 1: matched subsequences may differ in length by at most 1.
	measure, err := registry.Measure[byte]("levenshtein")
	if err != nil {
		log.Fatal(err)
	}
	matcher, err := subseq.NewMatcher(
		measure,
		subseq.Config{Params: subseq.Params{Lambda: 8, Lambda0: 1}},
		db,
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d windows from %d sequences\n\n", matcher.NumWindows(), len(db))

	// Type II: the longest similar subsequence pair within distance 1.
	if m, ok := matcher.Longest(query, 1); ok {
		fmt.Printf("longest match within distance 1:\n")
		fmt.Printf("  query   [%d:%d] %q\n", m.QStart, m.QEnd, query[m.QStart:m.QEnd])
		fmt.Printf("  db[%d]   [%d:%d] %q\n", m.SeqID, m.XStart, m.XEnd, db[m.SeqID][m.XStart:m.XEnd])
		fmt.Printf("  distance %.0f\n\n", m.Dist)
	}

	// Type III: the closest pair of subsequences, searched with growing
	// radius up to 6.
	if m, ok := matcher.Nearest(query, subseq.NearestOptions{EpsMax: 6, EpsInc: 1}); ok {
		fmt.Printf("nearest pair: %v\n", m)
		fmt.Printf("  %q ~ %q\n\n", query[m.QStart:m.QEnd], db[m.SeqID][m.XStart:m.XEnd])
	}

	// Type I: every similar pair at distance 0 (exact repeats). The paper
	// notes this query type returns many overlapping results by the
	// consistency property.
	all := matcher.FindAll(query, 0)
	fmt.Printf("type I found %d exact pairs of length ≥ 8 (overlapping variants included)\n", len(all))

	// Accounting: the filter's distance computations vs a naive scan.
	fmt.Printf("\nindex build distance calls: %d\n", matcher.BuildDistanceCalls())
	fmt.Printf("query filter distance calls: %d\n", matcher.FilterDistanceCalls())
	fmt.Printf("verification distance calls: %d\n", matcher.VerifyDistanceCalls())
}
