// Trajectorysearch: sub-path retrieval over 2-D trajectories under ERP —
// the paper's TRAJ scenario. Vehicles cross a simulated parking lot along
// lanes; given a query trajectory that repeats part of one vehicle's path
// with noise, the framework finds which stored trajectory contains the
// matching sub-path, although the full trajectories are dissimilar.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	subseq "repro"
	"repro/registry"
)

// drive simulates a noisy trajectory through waypoints, sampled at ~unit
// speed.
func drive(rng *rand.Rand, speed float64, waypoints ...subseq.Point2) subseq.Sequence[subseq.Point2] {
	var out subseq.Sequence[subseq.Point2]
	pos := waypoints[0]
	for _, w := range waypoints[1:] {
		for {
			dx, dy := w.X-pos.X, w.Y-pos.Y
			if dx*dx+dy*dy < speed*speed {
				break
			}
			n := speed / hyp(dx, dy)
			pos = subseq.Point2{X: pos.X + dx*n, Y: pos.Y + dy*n}
			out = append(out, subseq.Point2{
				X: pos.X + rng.NormFloat64()*0.2,
				Y: pos.Y + rng.NormFloat64()*0.2,
			})
		}
	}
	return out
}

func hyp(x, y float64) float64 {
	return subseq.Point2Dist(subseq.Point2{}, subseq.Point2{X: x, Y: y})
}

func main() {
	rng := rand.New(rand.NewPCG(7, 7))

	// Database: vehicles entering at the gate (0,0), driving the aisle,
	// then turning into different lanes.
	lanes := []float64{10, 20, 30, 40, 50, 60}
	db := make([]subseq.Sequence[subseq.Point2], len(lanes))
	for i, lane := range lanes {
		db[i] = drive(rng, 1.0,
			subseq.Point2{X: 0, Y: 0},
			subseq.Point2{X: lane, Y: 0},
			subseq.Point2{X: lane, Y: 30 + rng.Float64()*30},
		)
	}

	// ERP over planar points; the registry's canonical point2 ERP uses the
	// planar Euclidean ground distance with the origin as the gap element.
	// λ = 16 (windows of 8), λ0 = 2.
	measure, err := registry.Measure[subseq.Point2]("erp")
	if err != nil {
		log.Fatal(err)
	}
	matcher, err := subseq.NewMatcher(
		measure,
		subseq.Config{Params: subseq.Params{Lambda: 16, Lambda0: 2}},
		db,
	)
	if err != nil {
		log.Fatal(err)
	}

	// Query: re-drive the middle of lane-40's path (vehicle 3), with its
	// own sampling noise — a different vehicle taking the same turn.
	query := drive(rng, 1.0,
		subseq.Point2{X: 25, Y: 0},
		subseq.Point2{X: 40, Y: 0},
		subseq.Point2{X: 40, Y: 25},
	)

	fmt.Printf("database: %d trajectories, %d windows; query of %d samples repeats part of lane 40\n\n",
		len(db), matcher.NumWindows(), len(query))

	m, ok := matcher.Longest(query, 12)
	if !ok {
		log.Fatal("no similar sub-path found")
	}
	fmt.Printf("longest similar sub-path within ERP 12:\n")
	fmt.Printf("  query[%d:%d] (%d samples) matches trajectory %d [%d:%d]\n",
		m.QStart, m.QEnd, m.QLen(), m.SeqID, m.XStart, m.XEnd)
	fmt.Printf("  ERP distance %.2f\n", m.Dist)
	fmt.Printf("  trajectory %d drives lane x=%.0f\n\n", m.SeqID, lanes[m.SeqID])

	if lanes[m.SeqID] == 40 {
		fmt.Println("correct: the matching sub-path belongs to the lane-40 vehicle")
	} else {
		fmt.Println("unexpected: matched the wrong trajectory")
	}

	// Compare against DTW via a linear-scan filter: DTW is consistent but
	// not a metric, so the framework rejects metric indexes for it and
	// the linear filter must be requested explicitly — registry.Compatible
	// is the up-front check subseqctl uses to explain such rejections.
	dtwMeasure, err := registry.Measure[subseq.Point2]("dtw")
	if err != nil {
		log.Fatal(err)
	}
	linear, err := registry.Backend("linear")
	if err != nil {
		log.Fatal(err)
	}
	dtwMatcher, err := subseq.NewMatcher(
		dtwMeasure,
		subseq.Config{
			Params: subseq.Params{Lambda: 16, Lambda0: 2},
			Index:  linear.Kind,
		},
		db,
	)
	if err != nil {
		log.Fatal(err)
	}
	if m, ok := dtwMatcher.Longest(query, 12); ok {
		fmt.Printf("\nDTW (linear filter) longest: query[%d:%d] ~ trajectory %d, distance %.2f\n",
			m.QStart, m.QEnd, m.SeqID, m.Dist)
	}
}
