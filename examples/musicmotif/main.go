// Musicmotif: melodic motif retrieval over pitch-class series under the
// discrete Fréchet distance — the paper's SONGS scenario. A four-bar
// phrase reappears, transposed-free but ornamented, inside one of several
// synthetic "songs"; the framework locates it from a hummed (noisy) query.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	subseq "repro"
	"repro/registry"
)

var majorScale = []int{0, 2, 4, 5, 7, 9, 11}

// melody generates n notes as a random walk over a key's scale degrees.
func melody(rng *rand.Rand, key, n int) subseq.Sequence[float64] {
	s := make(subseq.Sequence[float64], n)
	deg := rng.IntN(7)
	for i := range s {
		deg = ((deg+rng.IntN(5)-2)%7 + 7) % 7
		s[i] = float64((majorScale[deg] + key) % 12)
	}
	return s
}

func main() {
	rng := rand.New(rand.NewPCG(11, 3))

	// The phrase to find: 32 notes in C major.
	phrase := melody(rng, 0, 32)

	// Database: 12 songs of 160 notes in random keys; song 5 contains the
	// phrase with light ornamentation.
	db := make([]subseq.Sequence[float64], 12)
	for i := range db {
		db[i] = melody(rng, rng.IntN(12), 160)
	}
	const target, at = 5, 70
	for j, v := range phrase {
		if rng.Float64() < 0.12 { // ornament: nudge the pitch within the scale
			v = float64((int(v) + []int{-1, 1, 2}[rng.IntN(3)] + 12) % 12)
		}
		db[target][at+j] = v
	}

	// DFD over pitch classes; λ = 16 (windows of 8), λ0 = 1. The registry
	// resolves "frechet" to the canonical scalar DFD instantiation (ground
	// distance |a−b|).
	measure, err := registry.Measure[float64]("frechet")
	if err != nil {
		log.Fatal(err)
	}
	matcher, err := subseq.NewMatcher(
		measure,
		subseq.Config{Params: subseq.Params{Lambda: 16, Lambda0: 1}},
		db,
	)
	if err != nil {
		log.Fatal(err)
	}

	// Query: the phrase as "hummed" — every note within a semitone.
	query := make(subseq.Sequence[float64], len(phrase))
	for i, v := range phrase {
		query[i] = float64((int(v) + rng.IntN(2)) % 12)
	}

	fmt.Printf("database: %d songs, %d windows; phrase of %d notes hidden in song %d at %d\n\n",
		len(db), matcher.NumWindows(), len(phrase), target, at)

	// Find the closest melodic match with growing DFD radius.
	m, ok := matcher.Nearest(query, subseq.NearestOptions{EpsMax: 6, EpsInc: 0.5})
	if !ok {
		log.Fatal("no melodic match found")
	}
	fmt.Printf("nearest melodic match: song %d [%d:%d], DFD %.1f\n", m.SeqID, m.XStart, m.XEnd, m.Dist)
	if m.SeqID == target && m.XStart >= at-16 && m.XEnd <= at+len(phrase)+16 {
		fmt.Println("correct: located the ornamented phrase")
	} else {
		fmt.Println("note: nearest match is elsewhere (random melodies can collide at small alphabets)")
	}

	// Show how the filter narrowed the search: hits per radius.
	for _, eps := range []float64{1, 2, 3} {
		hits := matcher.FilterHits(query, eps)
		perSong := map[int]int{}
		for _, h := range hits {
			perSong[h.Window.SeqID]++
		}
		fmt.Printf("eps=%.0f: %d segment hits across %d songs (song %d: %d)\n",
			eps, len(hits), len(perSong), target, perSong[target])
	}
}
