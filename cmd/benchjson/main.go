// Command benchjson converts `go test -bench` output (read from stdin) into
// a JSON summary, for the `make bench` target's BENCH_<date>.json artefact.
// The raw text input is what benchstat consumes; the JSON mirrors it
// field-for-field so dashboards and diff scripts need no Go-bench parser.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' . | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Entry is one benchmark result line.
type Entry struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Extra holds additional reported metrics (B/op, allocs/op, custom
	// ReportMetric units like dist/op), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Summary is the whole run.
type Summary struct {
	Date    string  `json:"date"`
	Context string  `json:"context,omitempty"` // goos/goarch/pkg/cpu lines
	Entries []Entry `json:"entries"`
}

func main() {
	sum := Summary{Date: time.Now().UTC().Format(time.RFC3339)}
	var ctx []string
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			ctx = append(ctx, line)
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Name: fields[0], Iterations: iters}
		// Remaining fields come in value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				e.NsPerOp = v
				continue
			}
			if e.Extra == nil {
				e.Extra = map[string]float64{}
			}
			e.Extra[fields[i+1]] = v
		}
		sum.Entries = append(sum.Entries, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	sum.Context = strings.Join(ctx, "; ")
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
