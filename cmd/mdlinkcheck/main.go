// Command mdlinkcheck verifies that relative links in the repository's
// markdown files resolve to existing files, so documentation rot is caught
// in CI. External links (http, https, mailto) and pure-anchor links are
// skipped; a relative link's anchor fragment is stripped before the file
// check.
//
// Usage:
//
//	mdlinkcheck [root]
//
// root defaults to the current directory. Exits non-zero listing every
// broken link as file:line: target.
package main

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links [text](target). Nested brackets and
// reference-style links are out of scope — the repo's docs use inline
// links only.
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// codeSpanRE matches inline code spans, which may contain bracketed text
// (generic Go expressions like `Measure[E](name)`) that is not a link.
var codeSpanRE = regexp.MustCompile("`[^`]*`")

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
			return nil
		}
		broken += checkFile(path)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdlinkcheck:", err)
		os.Exit(2)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdlinkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// checkFile reports the file's broken relative links on stderr and returns
// their count. Fenced code blocks are skipped: they hold example output,
// not navigable links.
func checkFile(path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdlinkcheck:", err)
		return 1
	}
	defer f.Close()
	broken := 0
	inFence := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(text), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		text = codeSpanRE.ReplaceAllString(text, "")
		for _, m := range linkRE.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if target == "" ||
				strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "%s:%d: broken link %s\n", path, line, m[1])
				broken++
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "mdlinkcheck:", err)
		broken++
	}
	return broken
}
