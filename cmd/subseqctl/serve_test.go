package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/registry"
)

// newTestServer builds an in-process serving stack over a tiny session,
// wrapped in an httptest.Server. The returned cleanup closes the pool.
func newTestServer(t *testing.T, dataset, measure, backend string) (*httptest.Server, registry.ServerConfig) {
	t.Helper()
	spec := newSpec(dataset, measure, backend)
	s, err := newSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.newServer(registry.ServerSpec{SessionSpec: spec, Workers: 2, QueueDepth: 16}, "")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(qs.handler())
	t.Cleanup(func() { ts.Close(); qs.close() })
	return ts, qs.config()
}

// newTestServerSpec is newTestServer over a caller-built ServerSpec, for
// tests exercising the robustness knobs (shedding, timeouts, background
// snapshots); restore names a snapshot file to restore from.
func newTestServerSpec(t *testing.T, spec registry.ServerSpec, restore string) (*httptest.Server, queryServer) {
	t.Helper()
	s, err := newSession(spec.SessionSpec)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.newServer(spec, restore)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(qs.handler())
	t.Cleanup(func() { ts.Close(); qs.close() })
	return ts, qs
}

// postJSON POSTs body to path and decodes the JSON response into out,
// returning the HTTP status.
func postJSON(t *testing.T, ts *httptest.Server, path, body string, out any) int {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s: invalid JSON %q: %v", path, raw, err)
		}
	}
	return resp.StatusCode
}

// getJSON GETs path and decodes the JSON response into out.
func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("%s: invalid JSON %q: %v", path, raw, err)
	}
	return resp.StatusCode
}

// All four query endpoints answer end to end on a byte dataset, and their
// answers agree with the library run directly on the same session.
func TestServeEndpointsByteDataset(t *testing.T) {
	ts, _ := newTestServer(t, "proteins", "levenshtein-fast", "refnet")
	// The query is a verbatim subsequence of the generated dataset (same
	// family/seed as newSpec), so exact matches are guaranteed to exist.
	ds, err := registry.GenerateDataset[byte]("proteins", 30, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := fmt.Sprintf("%q", ds.Sequences[0][:16])

	var fa matchesResponse
	if code := postJSON(t, ts, "/query/findall", `{"query":`+q+`,"eps":2}`, &fa); code != http.StatusOK {
		t.Fatalf("findall status %d", code)
	}
	if fa.Count != len(fa.Matches) {
		t.Fatalf("findall count %d != %d matches", fa.Count, len(fa.Matches))
	}
	if fa.Count == 0 {
		t.Fatal("findall returned no matches for a verbatim database subsequence")
	}

	var lg bestResponse
	if code := postJSON(t, ts, "/query/longest", `{"query":`+q+`,"eps":2}`, &lg); code != http.StatusOK {
		t.Fatalf("longest status %d", code)
	}
	if !lg.Found || lg.Match == nil {
		t.Fatal("longest found nothing for a verbatim database subsequence")
	}
	if lg.Match.QEnd <= lg.Match.QStart {
		t.Fatalf("longest returned empty span %+v", lg.Match)
	}

	var nr bestResponse
	if code := postJSON(t, ts, "/query/nearest", `{"query":`+q+`,"eps_max":4}`, &nr); code != http.StatusOK {
		t.Fatalf("nearest status %d", code)
	}
	if !nr.Found || nr.Match == nil {
		t.Fatal("nearest found nothing for a verbatim database subsequence")
	}

	var fl hitsResponse
	if code := postJSON(t, ts, "/query/filter", `{"query":`+q+`,"eps":2}`, &fl); code != http.StatusOK {
		t.Fatalf("filter status %d", code)
	}
	if fl.Count != len(fl.Hits) || fl.Count == 0 {
		t.Fatalf("filter count %d, hits %d", fl.Count, len(fl.Hits))
	}
	for _, h := range fl.Hits {
		if h.WindowEnd <= h.WindowStart || h.SegEnd <= h.SegStart {
			t.Fatalf("degenerate hit %+v", h)
		}
	}
}

// The float64 and point2 datasets decode their own query encodings.
func TestServeElementTypedQueries(t *testing.T) {
	ts, _ := newTestServer(t, "songs", "dfd", "refnet")
	var fl hitsResponse
	if code := postJSON(t, ts, "/query/filter",
		`{"query":[1,2,3,4,5,6,7,8,9,10,11,0,1,2],"eps":4}`, &fl); code != http.StatusOK {
		t.Fatalf("songs filter status %d", code)
	}

	tp, _ := newTestServer(t, "traj", "erp", "refnet")
	var fa matchesResponse
	if code := postJSON(t, tp, "/query/findall",
		`{"query":[[0,0],[1,1],[2,2],[3,3],[4,4],[5,5],[6,6],[7,7],[8,8],[9,9],[10,10],[11,11]],"eps":40}`,
		&fa); code != http.StatusOK {
		t.Fatalf("traj findall status %d", code)
	}
	// Wrong encoding for the element type is a 400, not a panic.
	var er errorResponse
	if code := postJSON(t, tp, "/query/findall", `{"query":"ABC","eps":1}`, &er); code != http.StatusBadRequest {
		t.Fatalf("mistyped query status %d, want 400", code)
	}
	if er.Error == "" {
		t.Fatal("mistyped query produced no error message")
	}
}

// The serving answers must be bit-identical to the library's: run the same
// query through the endpoint and through Matcher.FindAll directly.
func TestServeMatchesLibrary(t *testing.T) {
	spec := newSpec("proteins", "levenshtein-fast", "refnet")
	mt, ds, err := registry.NewMatcher[byte](spec)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]byte, 16)
	copy(q, ds.Sequences[0][:16])
	want := mt.FindAll(q, 5)

	ts, _ := newTestServer(t, "proteins", "levenshtein-fast", "refnet")
	var fa matchesResponse
	if code := postJSON(t, ts, "/query/findall",
		fmt.Sprintf(`{"query":%q,"eps":5}`, q), &fa); code != http.StatusOK {
		t.Fatalf("findall status %d", code)
	}
	if len(want) != fa.Count {
		t.Fatalf("endpoint %d matches, library %d", fa.Count, len(want))
	}
	for i, m := range want {
		w := fa.Matches[i]
		if w.SeqID != m.SeqID || w.QStart != m.QStart || w.QEnd != m.QEnd ||
			w.XStart != m.XStart || w.XEnd != m.XEnd || w.Dist != m.Dist {
			t.Fatalf("match %d: endpoint %+v, library %v", i, w, m)
		}
	}
}

// Bad requests are 400s with JSON error bodies; wrong methods are 405s.
func TestServeRequestValidation(t *testing.T) {
	ts, _ := newTestServer(t, "proteins", "", "refnet")
	cases := []struct {
		path, body string
	}{
		{"/query/findall", `{}`},                                     // missing query
		{"/query/findall", `{"query":"AC"}`},                         // missing eps
		{"/query/findall", `{"query":"AC","eps":-1}`},                // negative eps
		{"/query/findall", `not json`},                               // malformed body
		{"/query/findall", `{"query":"AC","epsilon":1}`},             // unknown field
		{"/query/nearest", `{"query":"AC"}`},                         // missing eps_max
		{"/query/nearest", `{"query":"AC","eps_max":-2}`},            // bad eps_max
		{"/query/nearest", `{"query":"AC","eps_max":2,"eps_inc":0}`}, // bad eps_inc
		{"/query/filter", `{"query":[1,2],"eps":1}`},                 // wrong element encoding
	}
	for _, c := range cases {
		var er errorResponse
		if code := postJSON(t, ts, c.path, c.body, &er); code != http.StatusBadRequest {
			t.Errorf("POST %s %s: status %d, want 400", c.path, c.body, code)
		} else if er.Error == "" {
			t.Errorf("POST %s %s: empty error body", c.path, c.body)
		}
	}
	resp, err := http.Get(ts.URL + "/query/findall")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query/findall: status %d, want 405", resp.StatusCode)
	}
}

// /stats echoes the resolved configuration and live counters; /healthz
// reports readiness. After queries, the distance tallies and streaming
// counters must have moved.
func TestServeStats(t *testing.T) {
	ts, cfg := newTestServer(t, "proteins", "levenshtein-fast", "covertree")
	var health struct {
		OK         bool `json:"ok"`
		NumWindows int  `json:"num_windows"`
	}
	if code := getJSON(t, ts, "/healthz", &health); code != http.StatusOK || !health.OK {
		t.Fatalf("healthz = %+v (status %d)", health, code)
	}
	for i := 0; i < 3; i++ {
		var fa matchesResponse
		postJSON(t, ts, "/query/findall", `{"query":"ACDEFGHIKLMNPQRS","eps":6}`, &fa)
	}
	var st statsResponse
	if code := getJSON(t, ts, "/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Config.Measure.Name != cfg.Measure.Name || st.Config.Backend.Name != "covertree" {
		t.Fatalf("stats config %+v does not echo the session", st.Config)
	}
	if st.Config.Lambda != 2*st.Config.WindowLen {
		t.Fatalf("stats lambda %d != 2×%d", st.Config.Lambda, st.Config.WindowLen)
	}
	if st.NumWindows != health.NumWindows {
		t.Fatalf("stats windows %d, healthz windows %d", st.NumWindows, health.NumWindows)
	}
	if st.DistanceCalls.Build <= 0 || st.DistanceCalls.Filter <= 0 {
		t.Fatalf("distance tallies did not move: %+v", st.DistanceCalls)
	}
	if st.Stream.Submitted < 3 || st.Stream.Completed < 3 {
		t.Fatalf("stream counters did not move: %+v", st.Stream)
	}
	if st.Stream.Workers != 2 || st.Stream.QueueDepth != 16 {
		t.Fatalf("stream config %+v does not echo the spec", st.Stream)
	}
}

// The admin surface mutates the live store end to end: append a
// sequence (queries then find it), retire it (queries stop finding it),
// snapshot to a file, and restore that file into a second server that
// answers identically without re-indexing.
func TestServeAdminLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, "proteins", "levenshtein-fast", "refnet")

	// A distinctive sequence not present in the generated dataset.
	novel := strings.Repeat("WYWYAC", 4)
	q := fmt.Sprintf("%q", novel[:14])

	var before matchesResponse
	postJSON(t, ts, "/query/findall", `{"query":`+q+`,"eps":1}`, &before)

	var ar appendResponse
	if code := postJSON(t, ts, "/admin/append", fmt.Sprintf(`{"sequence":%q}`, novel), &ar); code != http.StatusOK {
		t.Fatalf("append status %d", code)
	}
	if ar.WindowsAdded != len(novel)/6 {
		t.Fatalf("append added %d windows, want %d", ar.WindowsAdded, len(novel)/6)
	}
	var after matchesResponse
	postJSON(t, ts, "/query/findall", `{"query":`+q+`,"eps":1}`, &after)
	found := false
	for _, m := range after.Matches {
		if m.SeqID == ar.SeqID {
			found = true
		}
	}
	if !found {
		t.Fatalf("appended sequence %d not found by queries (before %d, after %d matches)",
			ar.SeqID, before.Count, after.Count)
	}

	// Snapshot while the appended sequence is live.
	snap := filepath.Join(t.TempDir(), "live.snap")
	var sr snapshotResponse
	if code := postJSON(t, ts, "/admin/snapshot", fmt.Sprintf(`{"path":%q}`, snap), &sr); code != http.StatusOK {
		t.Fatalf("snapshot status %d", code)
	}
	if sr.Bytes <= 0 {
		t.Fatalf("snapshot reported %d bytes", sr.Bytes)
	}

	var rr retireResponse
	if code := postJSON(t, ts, "/admin/retire", fmt.Sprintf(`{"seq_id":%d}`, ar.SeqID), &rr); code != http.StatusOK {
		t.Fatalf("retire status %d", code)
	}
	if rr.WindowsRemoved != ar.WindowsAdded {
		t.Fatalf("retire removed %d windows, appended %d", rr.WindowsRemoved, ar.WindowsAdded)
	}
	var gone matchesResponse
	postJSON(t, ts, "/query/findall", `{"query":`+q+`,"eps":1}`, &gone)
	for _, m := range gone.Matches {
		if m.SeqID == ar.SeqID {
			t.Fatalf("retired sequence %d still matches", ar.SeqID)
		}
	}
	var er errorResponse
	if code := postJSON(t, ts, "/admin/retire", fmt.Sprintf(`{"seq_id":%d}`, ar.SeqID), &er); code != http.StatusBadRequest {
		t.Fatalf("double retire status %d, want 400", code)
	}

	// Restore the snapshot into a fresh server: the appended sequence is
	// back (the snapshot predates the retire) and queries answer
	// identically, with zero build distances (refnet decode, not rebuild).
	spec := newSpec("proteins", "levenshtein-fast", "refnet")
	s2, err := newSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	qs2, err := s2.newServer(registry.ServerSpec{SessionSpec: spec, Workers: 2, QueueDepth: 16}, snap)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(qs2.handler())
	defer func() { ts2.Close(); qs2.close() }()

	var restoredMatches matchesResponse
	postJSON(t, ts2, "/query/findall", `{"query":`+q+`,"eps":1}`, &restoredMatches)
	if restoredMatches.Count != after.Count {
		t.Fatalf("restored server finds %d matches, original found %d", restoredMatches.Count, after.Count)
	}
	for i := range restoredMatches.Matches {
		if restoredMatches.Matches[i] != after.Matches[i] {
			t.Fatalf("restored match %d = %+v, original %+v", i, restoredMatches.Matches[i], after.Matches[i])
		}
	}
	var st2 statsResponse
	getJSON(t, ts2, "/stats", &st2)
	if !st2.Store.Restored {
		t.Fatal("/stats does not report restored=true")
	}
	if st2.DistanceCalls.Build != 0 {
		t.Fatalf("restored server computed %d build distances, want 0", st2.DistanceCalls.Build)
	}

	// A restore under mismatched session flags is refused with the field
	// named.
	wrong := newSpec("proteins", "weighted-edit", "refnet")
	s3, err := newSession(wrong)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s3.newServer(registry.ServerSpec{SessionSpec: wrong}, snap); err == nil {
		t.Fatal("restore under the wrong measure was accepted")
	} else if !strings.Contains(err.Error(), "measure") {
		t.Fatalf("mismatch rejection does not name the field: %v", err)
	}
}

// Admin requests are validated like query requests.
func TestServeAdminValidation(t *testing.T) {
	ts, _ := newTestServer(t, "proteins", "levenshtein-fast", "refnet")
	cases := []struct {
		path, body string
	}{
		{"/admin/append", `{}`},                                 // missing sequence
		{"/admin/append", `{"sequence":[1,2]}`},                 // wrong element encoding
		{"/admin/append", `{"sequence":"AC","ttl_seconds":-1}`}, // negative TTL
		{"/admin/retire", `{}`},                                 // missing seq_id
		{"/admin/retire", `{"seq_id":99999}`},                   // unknown sequence
		{"/admin/snapshot", `{}`},                               // missing path
	}
	for _, c := range cases {
		var er errorResponse
		if code := postJSON(t, ts, c.path, c.body, &er); code != http.StatusBadRequest {
			t.Errorf("POST %s %s: status %d, want 400", c.path, c.body, code)
		} else if er.Error == "" {
			t.Errorf("POST %s %s: empty error body", c.path, c.body)
		}
	}
	// The cover tree has no deletion: retire is a 409 capability conflict.
	tc, _ := newTestServer(t, "proteins", "levenshtein-fast", "covertree")
	var er errorResponse
	if code := postJSON(t, tc, "/admin/retire", `{"seq_id":0}`, &er); code != http.StatusConflict {
		t.Errorf("covertree retire status %d, want 409", code)
	}
}

// Under the reject policy, slamming a depth-1 queue sheds requests with
// 429 + Retry-After while the surviving requests still answer 200; the
// shed/completed tallies on /stats account for every request.
func TestServeShedsWith429UnderSlam(t *testing.T) {
	spec := registry.ServerSpec{
		SessionSpec: newSpec("proteins", "levenshtein-fast", "refnet"),
		Workers:     1, QueueDepth: 1, Shed: "reject",
	}
	ts, _ := newTestServerSpec(t, spec, "")

	body := `{"query":"ACDEFGHIKLMNPQRSACDEFGHIKLMNPQRS","eps":8}`
	var ok, shed atomic.Int64
	// Requests race a depth-1 queue; retry rounds until at least one is
	// shed (scheduling may serialise a round on a loaded machine).
	for round := 0; round < 10 && shed.Load() == 0; round++ {
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/query/findall", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				defer resp.Body.Close()
				io.Copy(io.Discard, resp.Body)
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
					shed.Add(1)
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
			}()
		}
		wg.Wait()
	}
	if ok.Load() == 0 || shed.Load() == 0 {
		t.Fatalf("slam produced %d ok, %d shed; want both > 0", ok.Load(), shed.Load())
	}
	var st statsResponse
	getJSON(t, ts, "/stats", &st)
	if st.Stream.Shed != shed.Load() {
		t.Fatalf("/stats shed = %d, clients saw %d", st.Stream.Shed, shed.Load())
	}
	if st.Config.Shed != "reject" {
		t.Fatalf("/stats shed policy = %q", st.Config.Shed)
	}
	if st.Stream.Latency.Count == 0 || st.Stream.QueueWait.Count == 0 {
		t.Fatalf("latency histograms did not move: %+v", st.Stream)
	}
}

// -request-timeout turns an unpriceable deadline into a 504: a timeout
// that has already passed by submission time is dropped before a worker
// prices it.
func TestServeRequestTimeout504(t *testing.T) {
	spec := registry.ServerSpec{
		SessionSpec: newSpec("proteins", "levenshtein-fast", "refnet"),
		Workers:     1, QueueDepth: 4, RequestTimeout: time.Nanosecond,
	}
	ts, _ := newTestServerSpec(t, spec, "")
	var er errorResponse
	if code := postJSON(t, ts, "/query/findall", `{"query":"ACDEFGHIKLMNPQRS","eps":2}`, &er); code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", code)
	}
	if er.Error == "" {
		t.Fatal("504 with empty error body")
	}
}

// A bad shed policy or a snapshot interval without a path is refused at
// resolution, before anything is built.
func TestServeSpecValidation(t *testing.T) {
	base := newSpec("proteins", "levenshtein-fast", "refnet")
	if _, err := (registry.ServerSpec{SessionSpec: base, Shed: "yolo"}).Resolve(); err == nil {
		t.Fatal("bad shed policy accepted")
	}
	if _, err := (registry.ServerSpec{SessionSpec: base, SnapshotInterval: time.Second}).Resolve(); err == nil {
		t.Fatal("snapshot interval without a path accepted")
	}
	if _, err := (registry.ServerSpec{SessionSpec: base, RequestTimeout: -time.Second}).Resolve(); err == nil {
		t.Fatal("negative request timeout accepted")
	}
}

// -snapshot-interval snapshots in the background: the file appears, the
// scheduler's health shows on /stats, and the snapshot restores into a
// server that answers identically.
func TestServeSnapshotInterval(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "auto.snap")
	spec := registry.ServerSpec{
		SessionSpec: newSpec("proteins", "levenshtein-fast", "refnet"),
		Workers:     2, QueueDepth: 16,
		SnapshotInterval: 20 * time.Millisecond, SnapshotPath: snap,
	}
	ts, _ := newTestServerSpec(t, spec, "")

	deadline := time.Now().Add(5 * time.Second)
	var st statsResponse
	for {
		getJSON(t, ts, "/stats", &st)
		if st.Snapshots != nil && st.Snapshots.Snapshots >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no background snapshot within 5s: %+v", st.Snapshots)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Snapshots.Failures != 0 || st.Snapshots.LastError != "" {
		t.Fatalf("scheduler reported failures: %+v", st.Snapshots)
	}

	q := `{"query":"ACDEFGHIKLMNPQRS","eps":4}`
	var want matchesResponse
	postJSON(t, ts, "/query/findall", q, &want)

	ts2, qs2 := newTestServerSpec(t, registry.ServerSpec{
		SessionSpec: spec.SessionSpec, Workers: 2, QueueDepth: 16,
	}, snap)
	if !qs2.wasRestored() {
		t.Fatal("background snapshot did not restore")
	}
	var got matchesResponse
	postJSON(t, ts2, "/query/findall", q, &got)
	if got.Count != want.Count {
		t.Fatalf("restored server finds %d matches, original %d", got.Count, want.Count)
	}
}

// A corrupt -restore snapshot is quarantined (moved to .corrupt) and the
// index rebuilt, instead of wedging the start in a crash loop; a
// mismatched snapshot stays a hard error.
func TestServeQuarantinesCorruptRestore(t *testing.T) {
	spec := newSpec("proteins", "levenshtein-fast", "refnet")
	st, _, err := registry.NewStore[byte](spec)
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "live.snap")
	if err := st.SnapshotFile(snap); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-8] ^= 0xFF
	if err := os.WriteFile(snap, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	ts, qs := newTestServerSpec(t, registry.ServerSpec{SessionSpec: spec, Workers: 2, QueueDepth: 16}, snap)
	if qs.wasRestored() {
		t.Fatal("corrupt snapshot reported as restored")
	}
	if _, err := os.Stat(snap + ".corrupt"); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
	if _, err := os.Stat(snap); !os.IsNotExist(err) {
		t.Fatalf("corrupt snapshot still in place: %v", err)
	}
	// The rebuilt server answers queries.
	var fa matchesResponse
	if code := postJSON(t, ts, "/query/findall", `{"query":"ACDEFGHIKLMNPQRS","eps":4}`, &fa); code != http.StatusOK {
		t.Fatalf("rebuilt server findall status %d", code)
	}
	var sr statsResponse
	getJSON(t, ts, "/stats", &sr)
	if sr.Store.Restored {
		t.Fatal("/stats claims restored=true after a quarantined rebuild")
	}
}

// TestServeSmokeBinary is the end-to-end smoke: build the real subseqctl
// binary, start `serve` on a synthetic dataset, issue one query per
// endpoint over real HTTP, check every JSON shape, then shut the daemon
// down gracefully with SIGTERM. CI runs this via `make serve-smoke`.
func TestServeSmokeBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "subseqctl")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building subseqctl: %v", err)
	}
	cmd := exec.Command(bin, "serve",
		"-addr", "127.0.0.1:0", "-dataset", "proteins",
		"-windows", "200", "-windowlen", "10", "-workers", "2")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints its resolved address; scrape the port from it.
	addrRE := regexp.MustCompile(`on http://(\S+)`)
	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		if m := addrRE.FindStringSubmatch(sc.Text()); m != nil {
			base = "http://" + m[1]
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon never printed its address: %v", sc.Err())
	}
	// Keep draining stdout so the child never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()

	client := &http.Client{Timeout: 10 * time.Second}
	post := func(path, body string) map[string]any {
		t.Helper()
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, raw)
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("POST %s: invalid JSON %q: %v", path, raw, err)
		}
		return m
	}
	q := `"ACDEFGHIKLMNPQRSTVWY"`
	for path, keys := range map[string][]string{
		"/query/findall": {"count", "matches"},
		"/query/longest": {"found"},
		"/query/filter":  {"count", "hits"},
	} {
		m := post(path, `{"query":`+q+`,"eps":8}`)
		for _, k := range keys {
			if _, ok := m[k]; !ok {
				t.Fatalf("%s response lacks %q: %v", path, k, m)
			}
		}
	}
	if m := post("/query/nearest", `{"query":`+q+`,"eps_max":10}`); m["found"] == nil {
		t.Fatalf("nearest response lacks \"found\": %v", m)
	}
	resp, err := client.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st statsResponse
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("/stats: invalid JSON %q: %v", raw, err)
	}
	if st.Stream.Completed < 4 {
		t.Fatalf("/stats reports %d completed submissions, want >= 4", st.Stream.Completed)
	}
	// Under -addr :0 the daemon must echo the address it actually bound,
	// not the requested one.
	if want := strings.TrimPrefix(base, "http://"); st.Config.Addr != want {
		t.Fatalf("/stats addr = %q, want bound address %q", st.Config.Addr, want)
	}
	if !bytes.Contains(raw, []byte(`"measure"`)) || !bytes.Contains(raw, []byte(`"distance_calls"`)) {
		t.Fatalf("/stats body lacks config/tally sections: %s", raw)
	}

	// Graceful shutdown: SIGTERM, then the process must exit cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	doneCh := make(chan error, 1)
	go func() { doneCh <- cmd.Wait() }()
	select {
	case err := <-doneCh:
		if err != nil {
			t.Fatalf("daemon exited with %v after SIGTERM", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down within 15s of SIGTERM")
	}
}

// buildSubseqctl compiles the real binary into a temp dir.
func buildSubseqctl(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "subseqctl")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building subseqctl: %v", err)
	}
	return bin
}

// startServeBinary starts `bin serve args...` and scrapes the bound
// address from its stdout.
func startServeBinary(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	return startBinary(t, bin, "serve", args...)
}

// startBinary starts `bin sub args...` and scrapes the bound address
// ("on http://…", printed by both serve and gateway) from its stdout,
// draining the rest of the pipe in the background.
func startBinary(t *testing.T, bin, sub string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{sub}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrRE := regexp.MustCompile(`on http://(\S+)`)
	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		if m := addrRE.FindStringSubmatch(sc.Text()); m != nil {
			base = "http://" + m[1]
			break
		}
	}
	if base == "" {
		cmd.Process.Kill()
		t.Fatalf("daemon never printed its address: %v", sc.Err())
	}
	go func() {
		for sc.Scan() {
		}
	}()
	return cmd, base
}

// stopServeBinary SIGTERMs the daemon and waits for a clean exit.
func stopServeBinary(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	doneCh := make(chan error, 1)
	go func() { doneCh <- cmd.Wait() }()
	select {
	case err := <-doneCh:
		if err != nil {
			t.Fatalf("daemon exited with %v after SIGTERM", err)
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon did not shut down within 15s of SIGTERM")
	}
}

// TestSnapshotSmokeBinary is the persistence end-to-end smoke CI runs
// via `make snapshot-smoke`: serve, mutate over the admin API, snapshot,
// restart from the snapshot in a fresh process, and check the restored
// daemon answers byte-identically without re-indexing — then exercise
// -snapshot-on-sigterm and verify that snapshot restores too.
func TestSnapshotSmokeBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}
	bin := buildSubseqctl(t)
	dir := t.TempDir()
	snapLive := filepath.Join(dir, "live.snap")
	snapTerm := filepath.Join(dir, "sigterm.snap")
	session := []string{"-dataset", "proteins", "-windows", "150", "-windowlen", "8", "-workers", "2"}

	cmd, base := startServeBinary(t, bin, append([]string{"-addr", "127.0.0.1:0"}, session...)...)
	defer cmd.Process.Kill()
	client := &http.Client{Timeout: 10 * time.Second}
	postRaw := func(base, path, body string) (int, []byte) {
		t.Helper()
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}

	// Mutate the live index, then capture a query answer to replay later.
	novel := strings.Repeat("WYWYACDE", 3)
	code, raw := postRaw(base, "/admin/append", fmt.Sprintf(`{"sequence":%q}`, novel))
	if code != http.StatusOK {
		t.Fatalf("append status %d: %s", code, raw)
	}
	query := fmt.Sprintf(`{"query":%q,"eps":1}`, novel[:16])
	code, wantAnswer := postRaw(base, "/query/findall", query)
	if code != http.StatusOK {
		t.Fatalf("findall status %d", code)
	}
	var fa matchesResponse
	if err := json.Unmarshal(wantAnswer, &fa); err != nil || fa.Count == 0 {
		t.Fatalf("findall found nothing for the appended sequence: %s (%v)", wantAnswer, err)
	}
	if code, raw := postRaw(base, "/admin/snapshot", fmt.Sprintf(`{"path":%q}`, snapLive)); code != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", code, raw)
	}
	stopServeBinary(t, cmd)

	// Restart from the snapshot: same answers, zero re-indexing work. The
	// restarted daemon also snapshots in the background (-snapshot-interval).
	snapAuto := filepath.Join(dir, "auto.snap")
	cmd2, base2 := startServeBinary(t, bin,
		append([]string{"-addr", "127.0.0.1:0", "-restore", snapLive, "-snapshot-on-sigterm", snapTerm,
			"-snapshot-interval", "150ms", "-snapshot-path", snapAuto}, session...)...)
	defer cmd2.Process.Kill()
	code, gotAnswer := postRaw(base2, "/query/findall", query)
	if code != http.StatusOK {
		t.Fatalf("restored findall status %d", code)
	}
	if !bytes.Equal(gotAnswer, wantAnswer) {
		t.Fatalf("restored daemon answered differently:\n got %s\nwant %s", gotAnswer, wantAnswer)
	}
	resp, err := client.Get(base2 + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var st statsResponse
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("/stats: invalid JSON %q: %v", raw, err)
	}
	if !st.Store.Restored {
		t.Fatalf("/stats does not report restored=true: %s", raw)
	}
	if st.DistanceCalls.Build != 0 {
		t.Fatalf("restored daemon computed %d build distances, want 0 (refnet decodes, never rebuilds)", st.DistanceCalls.Build)
	}
	// The background scheduler flag landed a snapshot on its own clock.
	autoDeadline := time.Now().Add(10 * time.Second)
	for {
		if info, err := os.Stat(snapAuto); err == nil && info.Size() > 0 {
			break
		}
		if time.Now().After(autoDeadline) {
			t.Fatal("-snapshot-interval wrote no snapshot within 10s")
		}
		time.Sleep(50 * time.Millisecond)
	}
	stopServeBinary(t, cmd2)

	// The SIGTERM snapshot landed and restores in-process.
	info, err := os.Stat(snapTerm)
	if err != nil || info.Size() == 0 {
		t.Fatalf("-snapshot-on-sigterm left no snapshot: %v", err)
	}
	spec := registry.SessionSpec{Dataset: "proteins", Windows: 150, WindowLen: 8}
	st3, err := registry.OpenStoreFile[byte](snapTerm, spec)
	if err != nil {
		t.Fatalf("restoring the SIGTERM snapshot: %v", err)
	}
	if _, live := st3.Len(); live == 0 {
		t.Fatal("SIGTERM snapshot restored an empty store")
	}
}
