package main

import (
	"fmt"
	"strings"
	"testing"
)

// Fuzzing for the gateway's topology-decoding path — the inputs an
// operator (flags) or a remote fleet (discovery responses) feed it at
// startup. The invariants mirror the parse-query fuzzing: never panic,
// and never accept an input that violates the structures the gateway
// then routes by — a malformed plan or replica grouping that slipped
// through here would misdirect every query after it.

// FuzzGatewayPlanFlag hammers the -ranges flag parser. An accepted plan
// must satisfy the partition invariants (contiguous cover of [0, Seqs)
// starting at 0) and survive a render/re-parse round trip unchanged.
func FuzzGatewayPlanFlag(f *testing.F) {
	seeds := []string{
		"0-3,3-6",
		"0-1",
		"0-0",
		"0-3,4-6",
		"3-0",
		"-1-2",
		"0-3,3-2",
		"a-b",
		"0-9999999999999999999",
		"",
		",",
		"0-3,,3-6",
		"  0-3 , 3-6  ",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		plan, err := planFromFlag(s)
		if err != nil {
			return
		}
		if len(plan.Ranges) == 0 {
			t.Fatalf("planFromFlag(%q) accepted an empty plan", s)
		}
		lo := 0
		for i, r := range plan.Ranges {
			if r.Lo != lo || r.Hi <= r.Lo {
				t.Fatalf("planFromFlag(%q) accepted non-contiguous range %d: %+v", s, i, plan.Ranges)
			}
			lo = r.Hi
		}
		if plan.Seqs != lo {
			t.Fatalf("planFromFlag(%q): Seqs = %d, ranges end at %d", s, plan.Seqs, lo)
		}
		// Round trip: render the accepted plan back to flag syntax and
		// re-parse; the plan is its own canonical form.
		parts := make([]string, len(plan.Ranges))
		for i, r := range plan.Ranges {
			parts[i] = fmt.Sprintf("%d-%d", r.Lo, r.Hi)
		}
		rendered := strings.Join(parts, ",")
		again, err := planFromFlag(rendered)
		if err != nil {
			t.Fatalf("re-parsing rendered plan %q: %v", rendered, err)
		}
		if again.Seqs != plan.Seqs || len(again.Ranges) != len(plan.Ranges) {
			t.Fatalf("round trip changed the plan: %+v vs %+v", plan, again)
		}
	})
}

// FuzzReplicaGroups hammers the -shard/-replicas grouping. Accepted
// groups must partition the input: every group non-empty, every URL
// non-empty and comma-free, and the total replica count preserved.
func FuzzReplicaGroups(f *testing.F) {
	f.Add("http://a http://b http://c http://d", 2)
	f.Add("http://a,http://b http://c", 1)
	f.Add("a b c", 3)
	f.Add("a,,b", 1)
	f.Add("a b c", 2)
	f.Add("", 1)
	f.Add("a", 0)
	f.Add("a,b c,d", 2)
	f.Fuzz(func(t *testing.T, entriesSpec string, n int) {
		entries := strings.Fields(entriesSpec)
		groups, err := replicaGroups(entries, n)
		if err != nil {
			return
		}
		if len(entries) > 0 && len(groups) == 0 {
			t.Fatalf("replicaGroups(%q, %d) accepted but returned no groups", entries, n)
		}
		total := 0
		for gi, g := range groups {
			if len(g) == 0 {
				t.Fatalf("replicaGroups(%q, %d): group %d is empty", entries, n, gi)
			}
			total += len(g)
			for _, u := range g {
				if u == "" || strings.Contains(u, ",") {
					t.Fatalf("replicaGroups(%q, %d): bad URL %q in group %d", entries, n, u, gi)
				}
			}
		}
		// Count preservation: chunked spelling keeps every entry; the
		// explicit spelling splits each entry into its commas' worth.
		wantTotal := 0
		for _, e := range entries {
			wantTotal += strings.Count(e, ",") + 1
		}
		if total != wantTotal {
			t.Fatalf("replicaGroups(%q, %d) kept %d replicas, want %d", entries, n, total, wantTotal)
		}
	})
}

// FuzzDiscoverStatsProbe hammers the /stats-discovery decoding with two
// arbitrary response bodies standing in for a two-range fleet. Malformed
// bodies must be rejected cleanly, and any plan assembled from accepted
// probes must satisfy the partition invariants.
func FuzzDiscoverStatsProbe(f *testing.F) {
	f.Add([]byte(`{"config":{"shard_lo":0,"shard_hi":4},"store":{"sequences":4}}`),
		[]byte(`{"config":{"shard_lo":4,"shard_hi":9},"store":{"sequences":5}}`))
	f.Add([]byte(`{"config":{"shard_lo":0,"shard_hi":0},"store":{"sequences":3}}`),
		[]byte(`{"config":{"shard_lo":0,"shard_hi":0},"store":{"sequences":2}}`))
	f.Add([]byte(`{"config":{"shard_lo":0,"shard_hi":4}}`), []byte(`{"store":{"sequences":2}}`))
	f.Add([]byte(`{"config":{"shard_lo":-1,"shard_hi":4}}`), []byte(`{}`))
	f.Add([]byte(`{"config":{"shard_lo":4,"shard_hi":0}}`), []byte(`null`))
	f.Add([]byte(`not json`), []byte(``))
	f.Add([]byte(`{"config":{"shard_lo":1e18,"shard_hi":1e18}}`), []byte(`{"store":{"sequences":1e18}}`))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		pa, errA := parseProbe(a)
		pb, errB := parseProbe(b)
		if errA != nil || errB != nil {
			return
		}
		if pa.Config.ShardLo < 0 || pa.Config.ShardHi < 0 || pa.Store.Sequences < 0 {
			t.Fatalf("parseProbe(%q) accepted negative topology: %+v", a, pa)
		}
		plan, err := planFromProbes([]shardProbe{pa, pb})
		if err != nil {
			return
		}
		if len(plan.Ranges) != 2 {
			t.Fatalf("planFromProbes accepted %d ranges from 2 probes", len(plan.Ranges))
		}
		lo := 0
		for i, r := range plan.Ranges {
			if r.Lo != lo || r.Hi <= r.Lo {
				t.Fatalf("probes (%q, %q) produced non-contiguous plan: range %d of %+v", a, b, i, plan.Ranges)
			}
			lo = r.Hi
		}
		if plan.Seqs != lo {
			t.Fatalf("probes (%q, %q): Seqs = %d, ranges end at %d", a, b, plan.Seqs, lo)
		}
	})
}
